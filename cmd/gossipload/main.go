// Command gossipload is the closed-loop load generator for the
// networked gossip router. Self-hosted (no -addr) it runs the full
// benchmark sweep — an in-process server per cell, connection counts ×
// read fractions, p50/p95/p99 latency, the in-process baseline ratio —
// and can write the benchcheck-validated BENCH_net.json. Pointed at a
// live server with -addr it drives that server instead and prints the
// per-cell table (no JSON; an external server's drain cannot be
// audited from here).
//
// Usage:
//
//	gossipload                                   # full sweep, self-hosted
//	gossipload -json BENCH_net.json              # ...writing the artifact
//	gossipload -conns 64,1024 -read 0.5,0.9      # narrower sweep
//	gossipload -addr 127.0.0.1:7946 -conns 256   # drive a live gossipd -listen
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/net/client"
)

func main() {
	addr := flag.String("addr", "", "drive a live server at this address instead of self-hosting")
	conns := flag.String("conns", "64,256,1024,4096", "comma-separated connection sweep")
	reads := flag.String("read", "0,0.5,0.9", "comma-separated lookup fractions")
	dur := flag.Duration("dur", 400*time.Millisecond, "per-cell measurement window")
	pipeline := flag.Int("pipeline", 8, "unicasts per pipelined window")
	payload := flag.Int("payload", 64, "unicast payload bytes")
	jsonPath := flag.String("json", "", "write the report as JSON to this path (self-hosted only)")
	adaptive := flag.Bool("adaptive", false, "self-hosted only: attach the adaptive control plane to each cell's server")
	flag.Parse()

	connList, err := parseInts(*conns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gossipload: -conns: %v\n", err)
		os.Exit(2)
	}
	readList, err := parseFloats(*reads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gossipload: -read: %v\n", err)
		os.Exit(2)
	}

	if *addr != "" {
		if *jsonPath != "" {
			fmt.Fprintln(os.Stderr, "gossipload: -json requires self-hosted mode (no -addr)")
			os.Exit(2)
		}
		if *adaptive {
			fmt.Fprintln(os.Stderr, "gossipload: -adaptive requires self-hosted mode (attach the controller to the external server via gossipd -adaptive instead)")
			os.Exit(2)
		}
		driveExternal(*addr, connList, readList, *dur, *pipeline, *payload)
		return
	}

	rep, err := bench.NetBench(bench.NetConfig{
		Duration:     *dur,
		Conns:        connList,
		ReadFracs:    readList,
		Pipeline:     *pipeline,
		PayloadBytes: *payload,
		Adaptive:     *adaptive,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gossipload: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(rep.Format())
	if *jsonPath != "" {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(out, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "gossipload: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

// driveExternal sweeps the cells against a live server.
func driveExternal(addr string, conns []int, reads []float64, dur time.Duration, pipeline, payload int) {
	fmt.Printf("gossipload — driving %s (%v cells, pipeline %d, %dB payloads)\n", addr, dur, pipeline, payload)
	fmt.Printf("%-7s%7s%12s%12s%10s%10s%10s%8s%8s\n",
		"conns", "read%", "ops", "ops/s", "p50(µs)", "p95(µs)", "p99(µs)", "shed", "errors")
	for _, frac := range reads {
		for _, n := range conns {
			res, err := client.RunLoad(client.LoadConfig{
				Addr:         addr,
				Conns:        n,
				Duration:     dur,
				ReadFrac:     frac,
				Pipeline:     pipeline,
				PayloadBytes: payload,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "gossipload: cell conns=%d read=%.2f: %v\n", n, frac, err)
				os.Exit(1)
			}
			fmt.Printf("%-7d%7.0f%12d%12.0f%10.1f%10.1f%10.1f%8d%8d\n",
				n, frac*100, res.Ops, res.OpsPerSec(),
				float64(res.Hist.Quantile(0.50))/1e3,
				float64(res.Hist.Quantile(0.95))/1e3,
				float64(res.Hist.Quantile(0.99))/1e3,
				res.Shed, res.Errors)
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v < 0 || v > 1 {
			return nil, fmt.Errorf("bad entry %q (want 0..1)", f)
		}
		out = append(out, v)
	}
	return out, nil
}
