// Command benchall regenerates the paper's evaluation (§6): every
// figure's series, printed as aligned tables. By default it reproduces
// the scaling figures on the virtual-time simulator (the 32-core
// substitute, DESIGN.md substitution 3); -real additionally measures
// real execution on this host.
//
// Usage:
//
//	benchall                 # all figures, simulated
//	benchall -exp fig21      # one experiment
//	benchall -exp fig19      # the Fig 19 commutativity function
//	benchall -exp ablation   # design-choice ablations A1–A5
//	benchall -exp lockmech   # lock-mechanism v2 vs v1 microbenchmark
//	                           (real execution; writes BENCH_lockmech.json)
//	benchall -exp hotpath    # fused-prologue vs sequential-prologue
//	                           (real execution; writes BENCH_hotpath.json)
//	benchall -exp chaos      # fault-injection and recovery experiment
//	                           (real execution; writes BENCH_chaos.json)
//	benchall -exp telemetry  # observability-layer overhead + trace audit
//	                           (real execution; writes BENCH_telemetry.json)
//	benchall -exp optimistic # hybrid lock-free reads vs pessimistic prologue
//	                           (real execution; writes BENCH_optimistic.json)
//	benchall -exp resilience # graceful degradation under slow-hold injection
//	                           (real execution; writes BENCH_resilience.json)
//	benchall -exp net        # gossipd over TCP: connection sweep with
//	                           p50/p95/p99 latency and the in-process ratio
//	                           (real execution; writes BENCH_net.json)
//	benchall -exp net -netconns 16 -netdur 100ms   # short CI smoke cell
//	benchall -exp adaptive   # control plane vs static knob profiles
//	                           (real execution; writes BENCH_adaptive.json)
//	benchall -real           # include real-execution measurements
//	benchall -scale 50000    # simulated transactions per thread
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/adtspecs"
	"repro/internal/apps/gossip"
	"repro/internal/apps/intruder"
	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	exp := flag.String("exp", "all",
		"experiment: fig19|fig21|fig22|fig22-readheavy|fig22-writeheavy|fig23|fig23-5050|fig24|fig25|ablation|lockmech|hotpath|chaos|telemetry|optimistic|resilience|net|adaptive|stats|all")
	scale := flag.Int("scale", 20000, "simulated transactions per thread")
	real := flag.Bool("real", false, "also run real-execution measurements on this host")
	realOps := flag.Int("realops", 30000, "real-execution operations per thread")
	netConns := flag.String("netconns", "", "for -exp net: comma-separated connection sweep (default 64,256,1024,4096)")
	netDur := flag.Duration("netdur", 0, "for -exp net: per-cell measurement window (default 400ms)")
	flag.Parse()

	cfg := bench.SimConfig{TxnsPerThread: *scale, Seed: 1}
	want := func(id string) bool { return *exp == "all" || *exp == id }
	ran := false

	if want("fig19") {
		printFig19()
		ran = true
	}
	if want("stats") {
		fmt.Println(bench.StatsReport(20000, 4))
		ran = true
	}
	// The lockmech microbenchmark measures real execution (not the
	// simulator), so it only runs when asked for explicitly.
	if *exp == "lockmech" {
		rep := bench.LockmechBench(bench.LockmechConfig{TotalOps: *scale * 10})
		fmt.Println(rep.Format())
		out, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile("BENCH_lockmech.json", append(out, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchall: writing BENCH_lockmech.json: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote BENCH_lockmech.json")
		ran = true
	}
	// The hotpath experiment also measures real execution, so it only
	// runs when asked for explicitly.
	if *exp == "hotpath" {
		rep := bench.HotpathBench(bench.HotpathConfig{OpsPerThread: *scale, TotalOps: *scale * 5})
		fmt.Println(rep.Format())
		out, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile("BENCH_hotpath.json", append(out, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchall: writing BENCH_hotpath.json: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote BENCH_hotpath.json")
		ran = true
	}
	// The telemetry experiment measures real execution with the
	// observability layer attached, so it only runs when asked for
	// explicitly.
	if *exp == "telemetry" {
		rep, err := bench.TelemetryBench(bench.TelemetryConfig{OpsPerThread: *scale})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchall: telemetry experiment: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep.Format())
		out, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile("BENCH_telemetry.json", append(out, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchall: writing BENCH_telemetry.json: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote BENCH_telemetry.json")
		ran = true
	}
	// The optimistic experiment measures real execution of the hybrid
	// lock-free read path, so it only runs when asked for explicitly.
	if *exp == "optimistic" {
		rep := bench.OptimisticBench(bench.OptimisticConfig{OpsPerThread: *scale})
		fmt.Println(rep.Format())
		out, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile("BENCH_optimistic.json", append(out, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchall: writing BENCH_optimistic.json: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote BENCH_optimistic.json")
		ran = true
	}
	// The resilience experiment sweeps a time-based slow-hold saboteur
	// over the policied and unpolicied router — real execution only.
	if *exp == "resilience" {
		rep := bench.ResilienceBench(bench.ResilienceConfig{})
		fmt.Println(rep.Format())
		out, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile("BENCH_resilience.json", append(out, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchall: writing BENCH_resilience.json: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote BENCH_resilience.json")
		ran = true
	}
	// The net experiment serves the router over real TCP sockets and
	// sweeps client connection counts — real execution only.
	if *exp == "net" {
		ncfg := bench.NetConfig{Duration: *netDur}
		if *netConns != "" {
			for _, f := range strings.Split(*netConns, ",") {
				var n int
				if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &n); err != nil || n <= 0 {
					fmt.Fprintf(os.Stderr, "benchall: bad -netconns entry %q\n", f)
					os.Exit(2)
				}
				ncfg.Conns = append(ncfg.Conns, n)
			}
		}
		rep, err := bench.NetBench(ncfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchall: net experiment: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep.Format())
		out, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile("BENCH_net.json", append(out, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchall: writing BENCH_net.json: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote BENCH_net.json")
		ran = true
	}
	// The adaptive experiment races the control plane against static
	// knob profiles — real execution only.
	if *exp == "adaptive" {
		rep := bench.AdaptiveBench(bench.AdaptiveConfig{OpsPerThread: *scale})
		fmt.Println(rep.Format())
		out, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile("BENCH_adaptive.json", append(out, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchall: writing BENCH_adaptive.json: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote BENCH_adaptive.json")
		ran = true
	}
	// The chaos experiment injects real panics and delays into real
	// execution, so it too only runs when asked for explicitly.
	if *exp == "chaos" {
		rep := bench.ChaosBench(bench.ChaosConfig{})
		fmt.Println(rep.Format())
		out, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile("BENCH_chaos.json", append(out, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchall: writing BENCH_chaos.json: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote BENCH_chaos.json")
		ran = true
	}
	type figFn struct {
		id string
		fn func(bench.SimConfig) *bench.Figure
	}
	for _, f := range []figFn{
		{"fig21", bench.Fig21Sim},
		{"fig22", bench.Fig22Sim},
		{"fig22-readheavy", func(c bench.SimConfig) *bench.Figure {
			return bench.Fig22SimMix(c, bench.GraphMix{FindSucc: 45, FindPred: 45, Insert: 8, Remove: 2}, "fig22-readheavy")
		}},
		{"fig22-writeheavy", func(c bench.SimConfig) *bench.Figure {
			return bench.Fig22SimMix(c, bench.GraphMix{FindSucc: 25, FindPred: 25, Insert: 30, Remove: 20}, "fig22-writeheavy")
		}},
		{"fig23", bench.Fig23Sim},
		{"fig23-5050", func(c bench.SimConfig) *bench.Figure {
			return bench.Fig23SimMix(c, 50, "fig23-5050")
		}},
		{"fig24", bench.Fig24Sim},
		{"fig25", bench.Fig25Sim},
		{"ablation", bench.AblationSim},
	} {
		if !want(f.id) {
			continue
		}
		fmt.Println(f.fn(cfg).Format())
		ran = true
	}

	if *real {
		rcfg := bench.RealConfig{OpsPerThread: *realOps, Threads: []int{1, 2, 4, 8}}
		if want("fig21") {
			fmt.Println(bench.Fig21Real(rcfg).Format())
		}
		if want("fig22") {
			fmt.Println(bench.Fig22Real(rcfg).Format())
		}
		if want("fig23") {
			fmt.Println(bench.Fig23Real(rcfg).Format())
		}
		if want("fig24") {
			wcfg := intruder.PaperConfig()
			fmt.Println(bench.Fig24Real(rcfg, wcfg).Format())
		}
		if want("fig25") {
			fmt.Println(bench.Fig25Real(rcfg, gossip.PaperMPerf(1)).Format())
		}
	}

	if !ran && !*real {
		fmt.Fprintf(os.Stderr, "benchall: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// printFig19 reproduces the commutativity function table of Fig 19.
func printFig19() {
	spec := adtspecs.Set()
	phi := core.NewFixedPhi(2, 1, map[core.Value]int{5: 0})
	sets := []core.SymSet{
		core.SymSetOf(core.SymOpOf("add", core.Star())),
		core.SymSetOf(core.SymOpOf("add", core.ConstArg(5))),
		core.SymSetOf(core.SymOpOf("add", core.VarArg("i")), core.SymOpOf("remove", core.VarArg("j"))),
	}
	tbl := core.NewModeTable(spec, sets, core.TableOptions{Phi: phi, DisableMerging: true})
	modes := tbl.Modes()
	fmt.Println("Fig19 — commutativity function F_c for the Set ADT")
	fmt.Println("(symbolic sets {add(*)}, {add(5)}, {add(i),remove(j)}; φ onto {α1,α2}, φ(5)=α1)")
	width := 0
	for _, m := range modes {
		if len(m.Key()) > width {
			width = len(m.Key())
		}
	}
	fmt.Printf("%-*s", width+2, "")
	for _, m := range modes {
		fmt.Printf("%*s", width+2, m.Key())
	}
	fmt.Println()
	for i, m := range modes {
		fmt.Printf("%-*s", width+2, m.Key())
		for j := range modes {
			fmt.Printf("%*s", width+2, fmt.Sprint(tbl.Commute(core.ModeID(i), core.ModeID(j))))
		}
		fmt.Println()
	}
	fmt.Println(strings.Repeat("-", 20))
	fmt.Println()
}
