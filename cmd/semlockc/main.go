// Command semlockc is the semantic-locking compiler for atomic sections
// (the Go analogue of the paper's Java compiler): it reads a Go source
// file whose functions are annotated //semlock:atomic, synthesizes
// atomicity- and deadlock-free locking per Golan-Gueta et al. (PPoPP
// 2015), and writes the rewritten source.
//
// Usage:
//
//	semlockc -in annotated.go -out generated.go      # rewrite
//	semlockc -in annotated.go -plan                  # print the plan
//	semlockc -in annotated.go -plan -counters        # plan + counter map
//	semlockc -in annotated.go -verify                # print the certificate
//
// The -plan output is the paper's notation (compare Fig 2): each atomic
// section with its inserted lock/unlockAll statements and refined
// symbolic sets, plus a per-class summary of the compiled locking modes.
// The default stage is the full pipeline (prologue fusion included);
// -stage rewinds the plan view to an earlier paper figure.
//
// The -verify mode re-proves the OS2PL obligations of §3.3 (coverage,
// two-phase, ordering) on the synthesized output with the internal/verify
// checker and prints the per-section certificate; any falsified
// obligation is reported with a counterexample path and a non-zero exit.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gosrc"
	"repro/internal/synth"
)

func main() {
	in := flag.String("in", "", "annotated Go source file (required)")
	out := flag.String("out", "", "output file for the rewritten source (default: stdout)")
	planOnly := flag.Bool("plan", false, "print the synthesized locking plan instead of code")
	verifyOnly := flag.Bool("verify", false, "print the OS2PL certificate for the synthesized sections instead of code")
	counters := flag.Bool("counters", false, "with -plan: also map each lock site to the runtime counters it bumps")
	stage := flag.String("stage", "fuse",
		"pipeline stage: insert|redundant|localset|earlyrelease|nullchecks|refine|fuse|optimistic (the paper's Figs 13-15, 26, 27, 28, 17, 2, then prologue fusion, then the hybrid optimistic rewrite)")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "semlockc: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := gosrc.ParseFile(*in, nil)
	if err != nil {
		fail(err)
	}
	st, ok := stages[*stage]
	if !ok {
		fmt.Fprintf(os.Stderr, "semlockc: unknown stage %q\n", *stage)
		os.Exit(2)
	}
	res, err := gosrc.CompileAt(f, st)
	if err != nil {
		fail(err)
	}
	if *verifyOnly {
		// CompileAt already fails synthesis on a falsified obligation;
		// re-run the checker to print the positive certificate.
		if vs := synth.VerifyResult(res); len(vs) > 0 {
			for _, v := range vs {
				fmt.Fprintln(os.Stderr, v.Error())
			}
			os.Exit(1)
		}
		for _, sec := range res.Sections {
			fmt.Printf("verify: %s: certified (coverage, two-phase, ordering)\n", sec.Name)
		}
		return
	}
	if *planOnly {
		fmt.Print(gosrc.PlanText(res))
		if *counters {
			fmt.Println()
			fmt.Print(synth.CounterMap(res))
		}
		return
	}
	if *counters {
		fail(fmt.Errorf("-counters only applies to -plan"))
	}
	if st < synth.StageFuse {
		fail(fmt.Errorf("-stage %q only applies to -plan; code generation needs the full pipeline", *stage))
	}
	src, err := gosrc.Generate(f, res)
	if err != nil {
		fail(err)
	}
	if *out == "" {
		fmt.Print(src)
		return
	}
	if err := os.WriteFile(*out, []byte(src), 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "semlockc: wrote %s (%d functions)\n", *out, len(f.Functions))
}

// stages maps the -stage names to pipeline stages.
var stages = map[string]synth.Stage{
	"insert":       synth.StageInsert,
	"redundant":    synth.StageRemoveRedundant,
	"localset":     synth.StageElideLocalSet,
	"earlyrelease": synth.StageEarlyRelease,
	"nullchecks":   synth.StageNullChecks,
	"refine":       synth.StageRefine,
	"fuse":         synth.StageFuse,
	"optimistic":   synth.StageOptimistic,
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "semlockc:", err)
	os.Exit(1)
}
