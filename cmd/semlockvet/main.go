// Command semlockvet runs the repository's lint suite (internal/lint)
// over the module: paddedcopy, txndiscipline, modemask, unlockpath,
// abortpath.
//
// Usage:
//
//	semlockvet [packages]
//
// Package patterns default to ./... and are resolved by `go list` from
// the enclosing module root. Exits 1 if any analyzer reports a finding.
package main

import (
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	patterns := os.Args[1:]
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, lint.All())
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "semlockvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	fmt.Printf("semlockvet: %d packages clean\n", len(pkgs))
}
