// Command semlockvet runs the repository's lint suite over the module:
// the per-package analyzers of internal/lint, the whole-program
// analyzers of internal/lint/interproc (guardedby, rankorder), and the
// global lock-order embedding check over every synthesized plan
// (internal/modules/planreg + verify.GlobalOrder).
//
// Usage:
//
//	semlockvet [flags] [packages]
//
// The analyzer list in -help is generated from the registries, so it
// cannot rot. Package patterns default to ./... and are resolved by
// `go list` from the enclosing module root. Exits 1 if any analyzer
// reports a finding, 2 on load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/interproc"
	"repro/internal/modules/planreg"
)

// jsonDiag is the -json wire format: one object per line, stable field
// names (the CI problem-matcher and artifact tooling key on these).
type jsonDiag struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Column   int      `json:"column"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Witness  []string `json:"witness,omitempty"`
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), "usage: semlockvet [flags] [packages]\n\nper-package analyzers:\n")
	for _, a := range lint.All() {
		fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(flag.CommandLine.Output(), "\nwhole-program analyzers:\n")
	for _, a := range interproc.All() {
		fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(flag.CommandLine.Output(), "\nflags:\n")
	flag.PrintDefaults()
}

func main() {
	jsonOut := flag.Bool("json", false, "emit one JSON diagnostic per line on stdout instead of text on stderr")
	plans := flag.Bool("plans", true, "cross-check every synthesized plan's certificate against the global lock-order graph")
	flag.Usage = usage
	flag.Parse()

	pkgs, err := lint.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, lint.All())
	diags = append(diags, lint.RunProgram(pkgs, interproc.All())...)

	if *plans {
		g := planreg.GlobalOrder()
		for _, problem := range g.Check() {
			diags = append(diags, lint.Diagnostic{
				Analyzer: "globalorder",
				Message:  problem,
			})
		}
		if !*jsonOut {
			fmt.Printf("semlockvet: global lock order over synthesized plans: %d classes, %d edges\n",
				g.Classes(), g.Edges())
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			enc.Encode(jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Witness:  d.Witness,
			})
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
	}

	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "semlockvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Printf("semlockvet: %d packages clean\n", len(pkgs))
	}
}
