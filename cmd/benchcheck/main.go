// Command benchcheck schema-validates the BENCH_*.json artifacts the
// benchall experiments write, so CI fails loudly when a report loses a
// field or a criterion instead of silently uploading a hollow artifact.
//
// The expected schema is selected by filename: BENCH_lockmech.json,
// BENCH_hotpath.json, BENCH_chaos.json, BENCH_telemetry.json,
// BENCH_optimistic.json, BENCH_resilience.json, BENCH_net.json and
// BENCH_adaptive.json each have a required set of top-level fields
// (which must be present and non-empty) and required criteria keys
// (which must be present and finite). Unknown BENCH_ filenames are an
// error — a new experiment must register its schema here.
//
// Usage:
//
//	benchcheck BENCH_hotpath.json BENCH_telemetry.json
//	benchcheck -chaos-strict BENCH_chaos.json
//	benchcheck -chaos-strict BENCH_resilience.json
//
// -chaos-strict additionally enforces the chaos pass condition on the
// criteria values themselves: zero leaked locks, zero leaked waiters,
// zero quiescence failures, zero telemetry mismatches. On resilience
// reports it enforces the degradation criterion instead: the policied
// router retains >= 2x the blocking router's completed throughput at
// the harshest injection rate, with zero leaks. On adaptive reports it
// enforces the control-plane acceptance: the controller's paired
// geomean matches or beats the best static profile, the static
// profiles actually diverge, and pure observation costs <= 5%.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// schema lists what a report kind must contain.
type schema struct {
	fields   []string // required non-empty top-level fields
	criteria []string // required keys under "criteria"
}

var schemas = map[string]schema{
	"lockmech": {
		fields: []string{"gomaxprocs", "total_ops_per_cell", "cells", "speedup_v2_over_v1", "criteria"},
		criteria: []string{
			"wildcard_vs_fine_contended_speedup",
			"uncontended_fastpath_v2_over_v1_ns_ratio",
		},
	},
	"hotpath": {
		fields: []string{"gomaxprocs", "app_ops_per_thread", "core_ops_per_cell",
			"app_cells", "app_speedup_fused_over_sequential", "mode_cells", "batch_cells",
			"watchdog_cells", "criteria"},
		criteria: []string{
			"gossip_fused_over_sequential_T8plus",
			"intruder_fused_over_sequential_T2plus",
			"mode_memo_allocs_per_op",
			"unwatched_over_watched_ns_ratio",
		},
	},
	"chaos": {
		fields: []string{"gomaxprocs", "cells", "criteria"},
		criteria: []string{
			"recovery_ratio_min",
			"leaked_locks_total",
			"quiesce_failures",
			"telemetry_holds_mismatch",
			"panic_recovery_mismatch",
			"leaked_waiters_total",
		},
	},
	"telemetry": {
		fields: []string{"gomaxprocs", "app_ops_per_thread", "app_cells",
			"on_over_off_by_threads", "snapshot_cell", "trace_sections_checked",
			"trace_order_mismatches", "predicted_max_at_rank", "criteria"},
		criteria: []string{
			"telemetry_on_over_off_throughput_geomean",
			"telemetry_overhead_pct",
			"trace_sections_checked",
			"trace_order_mismatches",
		},
	},
	"optimistic": {
		fields: []string{"gomaxprocs", "ops_per_thread", "cells",
			"ratio_optimistic_over_pessimistic", "criteria"},
		criteria: []string{
			"optimistic_over_pessimistic_f99_T8plus",
			"validation_failure_rate_f99",
			"f50_worst_regression_pct",
			"torn_scans",
		},
	},
	"resilience": {
		fields: []string{"gomaxprocs", "workers", "points", "policy_state", "criteria"},
		criteria: []string{
			"retention_at_max_hold",
			"retention_at_zero_hold",
			"policies_engaged_at_max_hold",
			"leaked_locks_total",
			"leaked_waiters_total",
			"quiesce_failures",
		},
	},
	"net": {
		fields: []string{"gomaxprocs", "cell_seconds", "points", "inproc_baseline",
			"net_over_inproc_ratio", "criteria"},
		criteria: []string{
			"steady_frame_allocs_per_op",
			"leaked_conns_total",
			"leaked_locks_total",
			"leaked_waiters_total",
			"quiesce_failures",
			"drain_failures",
			"max_conns_swept",
			"net_over_inproc_at_read50",
		},
	},
	"adaptive": {
		fields: []string{"gomaxprocs", "ops_per_thread", "cells",
			"ratio_adaptive_over_profile", "final_knobs", "criteria"},
		criteria: []string{
			"adaptive_over_best_static_geomean",
			"adaptive_over_best_static_worst_workload",
			"controller_off_overhead_pct",
			"static_spread",
			"scan_preempt_adaptive_over_best_static",
			"churn_preempt_adaptive_over_best_static",
			"rangestore_f99_adaptive_over_best_static",
		},
	},
}

// netStrictZero are the net criteria enforced unconditionally: a
// nonzero steady-state allocation count or any leaked resource is a
// regression of the wire path's core claims, never a host-speed matter.
// The sweep floor (max_conns_swept) is informational so a short CI
// smoke cell still validates.
var netStrictZero = []string{
	"steady_frame_allocs_per_op",
	"leaked_conns_total",
	"leaked_locks_total",
	"leaked_waiters_total",
	"quiesce_failures",
	"drain_failures",
}

// chaosStrictZero are the chaos criteria that must be exactly zero for
// a passing run; -chaos-strict turns their values into exit status.
var chaosStrictZero = []string{
	"leaked_locks_total",
	"leaked_waiters_total",
	"quiesce_failures",
	"telemetry_holds_mismatch",
	"panic_recovery_mismatch",
}

func main() {
	chaosStrict := flag.Bool("chaos-strict", false,
		"for chaos reports, also require the leak/quiesce/telemetry-mismatch criteria to be exactly zero; for resilience reports, enforce the >=2x degradation retention and zero-leak criteria")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no files given")
		os.Exit(2)
	}

	failed := false
	for _, path := range flag.Args() {
		if errs := checkFile(path, *chaosStrict); len(errs) > 0 {
			failed = true
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, e)
			}
		} else {
			fmt.Printf("benchcheck: %s: ok\n", path)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// kindOf maps BENCH_<kind>.json to its schema key.
func kindOf(path string) string {
	base := filepath.Base(path)
	if len(base) > len("BENCH_")+len(".json") && base[:6] == "BENCH_" && filepath.Ext(base) == ".json" {
		return base[6 : len(base)-len(".json")]
	}
	return ""
}

func checkFile(path string, chaosStrict bool) []error {
	kind := kindOf(path)
	sch, ok := schemas[kind]
	if !ok {
		return []error{fmt.Errorf("unknown report kind %q (expected BENCH_<lockmech|hotpath|chaos|telemetry|optimistic|resilience|net|adaptive>.json)", kind)}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return []error{err}
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		return []error{fmt.Errorf("not a JSON object: %w", err)}
	}

	var errs []error
	for _, f := range sch.fields {
		v, present := top[f]
		if !present {
			errs = append(errs, fmt.Errorf("missing field %q", f))
			continue
		}
		// Zero numbers are legitimate values (a mismatch count of 0 is
		// the passing case); only structural emptiness fails.
		if s := string(v); s == "null" || s == "{}" || s == "[]" || s == `""` {
			errs = append(errs, fmt.Errorf("field %q is empty (%s)", f, s))
		}
	}

	var criteria map[string]float64
	if v, present := top["criteria"]; present {
		if err := json.Unmarshal(v, &criteria); err != nil {
			errs = append(errs, fmt.Errorf("criteria is not a string→number map: %w", err))
		}
	}
	for _, k := range sch.criteria {
		v, present := criteria[k]
		if !present {
			errs = append(errs, fmt.Errorf("missing criterion %q", k))
			continue
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			errs = append(errs, fmt.Errorf("criterion %q is not finite: %v", k, v))
		}
	}
	// A telemetry report that checked no schedules proves nothing.
	if kind == "telemetry" {
		if v, present := criteria["trace_sections_checked"]; present && v <= 0 {
			errs = append(errs, fmt.Errorf("criterion trace_sections_checked = %v, want > 0", v))
		}
	}
	// A torn scan is a validated optimistic read that observed half of
	// an atomic pair write — a protocol soundness failure, never a
	// tuning matter. Unlike the throughput criteria (host-dependent),
	// this one is enforced unconditionally.
	if kind == "optimistic" {
		if v, present := criteria["torn_scans"]; present && v != 0 {
			errs = append(errs, fmt.Errorf("criterion torn_scans = %v, want 0", v))
		}
	}

	if kind == "net" {
		for _, k := range netStrictZero {
			if v, present := criteria[k]; present && v != 0 {
				errs = append(errs, fmt.Errorf("criterion %q = %v, want 0", k, v))
			}
		}
	}

	if kind == "chaos" && chaosStrict {
		for _, k := range chaosStrictZero {
			if v, present := criteria[k]; present && v != 0 {
				errs = append(errs, fmt.Errorf("strict: criterion %q = %v, want 0", k, v))
			}
		}
		if v, present := criteria["recovery_ratio_min"]; present && v < 0.8 {
			errs = append(errs, fmt.Errorf("strict: recovery_ratio_min = %v, want >= 0.8", v))
		}
	}
	// The adaptive acceptance criteria are throughput ratios, so they
	// are host-speed-independent but still noise-sensitive on short
	// runs; like the chaos/resilience conditions they are enforced only
	// under the strict flag, so a short CI smoke cell schema-validates
	// without flaking while a full run must actually win.
	if kind == "adaptive" && chaosStrict {
		if v, present := criteria["adaptive_over_best_static_geomean"]; present && v < 1.0 {
			errs = append(errs, fmt.Errorf("strict: adaptive_over_best_static_geomean = %v, want >= 1.0", v))
		}
		if v, present := criteria["static_spread"]; present && v < 1.1 {
			errs = append(errs, fmt.Errorf("strict: static_spread = %v, want >= 1.1 (workloads must have opposite sweet spots for the experiment to mean anything)", v))
		}
		if v, present := criteria["controller_off_overhead_pct"]; present && v > 5.0 {
			errs = append(errs, fmt.Errorf("strict: controller_off_overhead_pct = %v, want <= 5.0", v))
		}
	}
	// The resilience degradation criterion: at the harshest injection
	// rate, the policied router must retain at least twice the blocking
	// router's completed throughput, with nothing leaked.
	if kind == "resilience" && chaosStrict {
		for _, k := range []string{"leaked_locks_total", "leaked_waiters_total", "quiesce_failures"} {
			if v, present := criteria[k]; present && v != 0 {
				errs = append(errs, fmt.Errorf("strict: criterion %q = %v, want 0", k, v))
			}
		}
		if v, present := criteria["retention_at_max_hold"]; present && v < 2.0 {
			errs = append(errs, fmt.Errorf("strict: retention_at_max_hold = %v, want >= 2.0", v))
		}
		if v, present := criteria["policies_engaged_at_max_hold"]; present && v <= 0 {
			errs = append(errs, fmt.Errorf("strict: policies_engaged_at_max_hold = %v, want > 0", v))
		}
	}
	return errs
}
