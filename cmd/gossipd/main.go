// Command gossipd runs the GossipRouter reproduction (§6.2) under the
// MPerf workload and reports routing throughput per synchronization
// policy — the runnable form of the Fig 25 experiment.
//
// On SIGINT or SIGTERM the daemon shuts down gracefully: the workers
// stop accepting new messages, routes already inside an atomic section
// drain (bounded by a deadline), and the lock instances are audited for
// leaked holder counts before exit.
//
// With -debug-addr the daemon serves live observability over HTTP while
// the workload runs:
//
//	/debug/vars     expvar JSON, including the "semlock" variable — the
//	                telemetry snapshot of every registered lock group
//	/debug/semlock  the same snapshot alone, indented
//	/debug/pprof/   the standard pprof index (profile, trace, symbol, ...)
//
// Serving the debug endpoints also turns on wait-duration sampling
// (core.SetWaitTiming), so snapshots include cumulative blocked time.
//
// Usage:
//
//	gossipd                          # paper workload, all policies
//	gossipd -clients 8 -messages 1000 -workers 4
//	gossipd -policy ours
//	gossipd -policy ours -debug-addr localhost:6060
//	gossipd -policy ours -resilience                  # policied router
//	gossipd -policy ours -resilience -patience 300us -retries 3 -hedge-budget 150us
//	gossipd -policy ours -adaptive                    # telemetry-tuned knobs
//	gossipd -listen :7946                             # serve the wire protocol
//	gossipd -listen :7946 -resilience -debug-addr localhost:6060
//
// -adaptive attaches the control plane of internal/controlplane: a
// feedback controller snapshots the telemetry registry on a ticker and
// retunes spin bounds, the optimistic gate, and summary scanning per
// mechanism group, with hysteresis. With -debug-addr, /debug/semlock
// reports the live knob values, decide rates, and apply counts per
// group (the controller registers itself as a policy source). Works in
// both the MPerf workload mode and the -listen daemon mode.
//
// -listen switches gossipd from the self-contained MPerf workload to a
// network daemon: the ours router served over the TCP wire protocol of
// internal/net/wire (drive it with gossipload -addr). SIGINT/SIGTERM
// drains exactly like the workload mode — stop accepting, finish
// in-flight sections, flush responses, audit for leaked connections and
// holds. With -debug-addr, /debug/semlock additionally carries the
// per-connection and per-frame-type counters ("net" rows); with
// -resilience, requests run admission-gated and refusals go back to
// clients as wire-level error frames.
//
// -resilience wraps the ours router in the resilience layer: every
// route becomes a budgeted bounded-patience section behind a circuit
// breaker and admission gate, and shed messages are counted instead of
// wedging a worker. With -debug-addr, /debug/semlock additionally
// reports the live policy state (breaker state, budget level, shed and
// hedge counts) alongside the lock-group snapshot.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/apps/gossip"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/modules/plan"
	"repro/internal/net/server"
	"repro/internal/resilience"
	"repro/internal/telemetry"
)

// drainDeadline bounds how long shutdown waits for in-flight routes.
const drainDeadline = 5 * time.Second

func main() {
	clients := flag.Int("clients", 16, "MPerf clients (paper: 16)")
	messages := flag.Int("messages", 5000, "messages per client (paper: 5000)")
	unicast := flag.Int("unicast", 10, "percent unicast messages")
	sendCost := flag.Int("sendcost", 60, "synthetic per-frame I/O cost")
	workers := flag.Int("workers", 4, "router worker count (the paper's active cores)")
	policy := flag.String("policy", "", "run one policy only (ours|global|2pl|manual)")
	debugAddr := flag.String("debug-addr", "", "serve expvar/pprof/telemetry on this address (e.g. localhost:6060)")
	resil := flag.Bool("resilience", false, "wrap the ours router in the resilience layer (budgeted retries, breaker, gate, hedged lookups)")
	patience := flag.Duration("patience", 500*time.Microsecond, "with -resilience: per-acquisition patience bound")
	retries := flag.Int("retries", 2, "with -resilience: budgeted retry attempts per stalled section")
	hedgeBudget := flag.Duration("hedge-budget", 200*time.Microsecond, "with -resilience: pessimistic latency before a lookup hedges optimistically")
	listen := flag.String("listen", "", "serve the wire protocol on this TCP address (e.g. :7946) instead of running the MPerf workload")
	adaptive := flag.Bool("adaptive", false, "attach the adaptive control plane: retune spin bounds, the optimistic gate, and summary scanning per mechanism from live telemetry (ours policy only)")
	flag.Parse()

	if *debugAddr != "" {
		// Wait-duration sampling is off by default (it costs two clock
		// reads per blocked acquisition); a debug listener means an
		// operator wants the full picture.
		core.SetWaitTiming(true)
		telemetry.Default.Publish()
		mux := http.NewServeMux()
		mux.Handle("/debug/vars", expvar.Handler())
		mux.Handle("/debug/semlock", telemetry.Default.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "gossipd: debug listener: %v\n", err)
			}
		}()
		fmt.Printf("gossipd: debug endpoints on http://%s/debug/{vars,semlock,pprof/}\n", *debugAddr)
	}

	if *listen != "" {
		serveListen(*listen, *sendCost, *resil, *adaptive, *debugAddr != "", *patience, *retries, *hedgeBudget)
		return
	}

	cfg := gossip.MPerfConfig{
		Clients: *clients, Messages: *messages,
		UnicastRatio: *unicast, SendCost: *sendCost, Workers: *workers,
	}
	want := gossip.Policies()
	if *policy != "" {
		want = []string{*policy}
	}
	expected := gossip.ExpectedFrames(cfg)
	fmt.Printf("MPerf: %d clients × %d messages (%d%% unicast), %d workers, expecting %d frames\n",
		cfg.Clients, cfg.Messages, cfg.UnicastRatio, cfg.Workers, expected)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	interrupted := false
	for _, pol := range want {
		r := gossip.New(pol, cfg.SendCost, plan.Options{})
		var ctl *controlplane.Controller
		if *debugAddr != "" || *adaptive {
			if o, ok := r.(*gossip.Ours); ok {
				// Live provider: each scrape re-walks the group table, so
				// new groups appear in later snapshots. MPerf creates its
				// one group in the first moments of the run and only routes
				// after that; a scrape racing that initial burst may see a
				// partial member list (Sems is documented as introspection,
				// not a synchronized view), never a torn counter — the
				// counters themselves are atomics.
				telemetry.Default.RegisterProvider(pol, "Map", o.Sems)
			}
		}
		if *adaptive {
			if _, ok := r.(*gossip.Ours); ok {
				ctl = controlplane.New(controlplane.Config{
					Registry: telemetry.Default,
					// With a debug listener the operator turned wait timing
					// on explicitly; don't let the controller toggle it back
					// off during quiet spells.
					ManageWaitTiming: *debugAddr == "",
				})
				ctl.Start()
				// The controller registers itself as a policy source, so
				// /debug/semlock shows live knob values and decide rates
				// per mechanism group.
			} else {
				fmt.Fprintf(os.Stderr, "gossipd: -adaptive applies to the ours policy only; running %s untuned\n", pol)
			}
		}
		var wrapped *gossip.Resilient
		var mgr *resilience.Manager
		if *resil {
			if o, ok := r.(*gossip.Ours); ok {
				rp := resilience.New("gossipd", resilience.Config{
					Patience:    *patience,
					Retries:     *retries,
					Backoff:     resilience.Backoff{Base: 50 * time.Microsecond, Max: time.Millisecond},
					HedgeBudget: *hedgeBudget,
					Budget:      &resilience.BudgetConfig{Capacity: 10000, RefillPerSec: 1e5},
					Breaker:     &resilience.BreakerConfig{TripStallRate: 1000, Cooldown: time.Millisecond, Probes: 3},
					Gate:        &resilience.GateConfig{MaxConcurrent: 2 * cfg.Workers, QueueDepth: 4 * cfg.Workers, QueueTimeout: time.Millisecond, PressureOn: 16, PressureOff: 4},
				})
				wrapped = gossip.NewResilient(o, rp)
				// nil registry without a debug listener: policy state is
				// only worth publishing where an operator can scrape it.
				var reg *telemetry.Registry
				if *debugAddr != "" {
					reg = telemetry.Default
				}
				mgr = resilience.NewManager(reg, time.Millisecond)
				mgr.Add(rp)
				mgr.Start()
				r = wrapped
			} else {
				fmt.Fprintf(os.Stderr, "gossipd: -resilience applies to the ours policy only; running %s unwrapped\n", pol)
			}
		}
		stop := make(chan struct{})
		done := make(chan gossip.MPerfResult, 1)
		start := time.Now()
		go func() { done <- gossip.RunMPerfUntil(r, cfg, stop) }()

		var res gossip.MPerfResult
		select {
		case res = <-done:
		case s := <-sigc:
			interrupted = true
			fmt.Printf("gossipd: %v: stopped accepting messages, draining in-flight routes (deadline %v)\n",
				s, drainDeadline)
			close(stop)
			select {
			case res = <-done:
			case <-time.After(drainDeadline):
				fmt.Fprintf(os.Stderr, "gossipd: drain deadline exceeded with routes still in flight\n")
				os.Exit(1)
			}
		}
		elapsed := time.Since(start)
		if mgr != nil {
			mgr.Stop()
		}
		if ctl != nil {
			ctl.Stop()
			fmt.Printf("%-8s adaptive: %d knob applies over %d ticks\n", pol, ctl.Applies(), ctl.Ticks())
		}

		dropped := uint64(0)
		if wrapped != nil {
			dropped = wrapped.Dropped.Load()
		}
		status := "OK"
		switch {
		case interrupted:
			status = "INTERRUPTED"
		case res.FramesDelivered != expected && dropped == 0:
			status = "FRAME MISMATCH"
		case res.FramesDelivered > expected:
			// Shedding only ever removes frames; extras are a real bug.
			status = "FRAME MISMATCH"
		case dropped > 0:
			// A policied run under overload delivers fewer frames by
			// design; the drops are accounted, not lost.
			status = "OK (degraded)"
		}
		fmt.Printf("%-8s routed %6d msgs, delivered %7d frames in %8v (%7.0f msgs/s)  [%s]\n",
			pol, res.Handled, res.FramesDelivered, elapsed.Round(time.Millisecond),
			float64(res.Handled)/elapsed.Seconds(), status)
		if wrapped != nil {
			fmt.Printf("%-8s resilience: %d message(s) shed under policy; see /debug/semlock policy state for breaker/budget/gate detail\n",
				pol, dropped)
		}

		if interrupted {
			// Audit the lock state before exiting: after a clean drain
			// every holder count must be back to zero.
			if wrapped != nil {
				r = wrapped.Ours // audit the underlying lock instances
			}
			if o, ok := r.(*gossip.Ours); ok {
				leaked := int64(0)
				for _, s := range o.Sems() {
					leaked += s.OutstandingHolds()
				}
				fmt.Printf("gossipd: drained cleanly, leaked locks: %d\n", leaked)
				if leaked != 0 {
					os.Exit(1)
				}
			} else {
				fmt.Printf("gossipd: drained cleanly (policy %s has no lock audit)\n", pol)
			}
			return
		}
	}
}

// serveListen is the -listen daemon mode: the ours router behind the
// TCP wire protocol, with the same drain discipline and leak audit as
// the workload mode.
func serveListen(addr string, sendCost int, resil, adaptive, debug bool, patience time.Duration, retries int, hedgeBudget time.Duration) {
	waiters0 := core.WaitersOutstanding()
	cfg := server.Config{Addr: addr, SendCost: sendCost}
	var mgr *resilience.Manager
	if resil {
		rp := resilience.New("gossipd-net", resilience.Config{
			Patience:    patience,
			Retries:     retries,
			Backoff:     resilience.Backoff{Base: 50 * time.Microsecond, Max: time.Millisecond},
			HedgeBudget: hedgeBudget,
			Budget:      &resilience.BudgetConfig{Capacity: 10000, RefillPerSec: 1e5},
			Breaker:     &resilience.BreakerConfig{TripStallRate: 1000, Cooldown: time.Millisecond, Probes: 3},
			Gate:        &resilience.GateConfig{MaxConcurrent: 64, QueueDepth: 256, QueueTimeout: time.Millisecond, PressureOn: 16, PressureOff: 4},
		})
		cfg.Policy = rp
		var reg *telemetry.Registry
		if debug {
			reg = telemetry.Default
		}
		mgr = resilience.NewManager(reg, time.Millisecond)
		mgr.Add(rp)
		mgr.Start()
	}
	s, err := server.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gossipd: listen: %v\n", err)
		os.Exit(1)
	}
	if debug || adaptive {
		telemetry.Default.RegisterProvider("gossipd-net", "Map", s.Router().Sems)
	}
	if debug {
		telemetry.Default.RegisterNetSource("gossipd-net", s.NetStats)
	}
	var ctl *controlplane.Controller
	if adaptive {
		ctl = controlplane.New(controlplane.Config{
			Registry:         telemetry.Default,
			ManageWaitTiming: !debug,
		})
		ctl.Start()
	}
	errc := make(chan error, 1)
	go func() { errc <- s.Serve() }()
	fmt.Printf("gossipd: serving the wire protocol on %s (resilience %v)\n", s.Addr(), resil)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "gossipd: accept loop: %v\n", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Printf("gossipd: %v: stopped accepting, draining %d connection(s) (deadline %v)\n",
			sig, s.ActiveConns(), drainDeadline)
	}
	if err := s.Shutdown(drainDeadline); err != nil {
		fmt.Fprintf(os.Stderr, "gossipd: %v\n", err)
		os.Exit(1)
	}
	if mgr != nil {
		mgr.Stop()
	}
	if ctl != nil {
		ctl.Stop()
		fmt.Printf("gossipd: adaptive: %d knob applies over %d ticks\n", ctl.Applies(), ctl.Ticks())
	}

	leaked := int64(0)
	for _, sem := range s.Router().Sems() {
		leaked += sem.OutstandingHolds()
	}
	leakedWaiters := core.WaitersOutstanding() - waiters0
	st := s.NetStats()[0]
	fmt.Printf("gossipd: drained cleanly — %d conns served, %d frames in / %d out, leaked conns: %d, leaked locks: %d, leaked waiters: %d\n",
		st.Conns["accepted"], st.Frames["in.total"], st.Frames["out.total"],
		s.ActiveConns(), leaked, leakedWaiters)
	if s.ActiveConns() != 0 || leaked != 0 || leakedWaiters != 0 {
		os.Exit(1)
	}
}
