// Command gossipd runs the GossipRouter reproduction (§6.2) under the
// MPerf workload and reports routing throughput per synchronization
// policy — the runnable form of the Fig 25 experiment.
//
// Usage:
//
//	gossipd                          # paper workload, all policies
//	gossipd -clients 8 -messages 1000 -workers 4
//	gossipd -policy ours
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/apps/gossip"
	"repro/internal/modules/plan"
)

func main() {
	clients := flag.Int("clients", 16, "MPerf clients (paper: 16)")
	messages := flag.Int("messages", 5000, "messages per client (paper: 5000)")
	unicast := flag.Int("unicast", 10, "percent unicast messages")
	sendCost := flag.Int("sendcost", 60, "synthetic per-frame I/O cost")
	workers := flag.Int("workers", 4, "router worker count (the paper's active cores)")
	policy := flag.String("policy", "", "run one policy only (ours|global|2pl|manual)")
	flag.Parse()

	cfg := gossip.MPerfConfig{
		Clients: *clients, Messages: *messages,
		UnicastRatio: *unicast, SendCost: *sendCost, Workers: *workers,
	}
	want := gossip.Policies()
	if *policy != "" {
		want = []string{*policy}
	}
	expected := gossip.ExpectedFrames(cfg)
	fmt.Printf("MPerf: %d clients × %d messages (%d%% unicast), %d workers, expecting %d frames\n",
		cfg.Clients, cfg.Messages, cfg.UnicastRatio, cfg.Workers, expected)
	for _, pol := range want {
		r := gossip.New(pol, cfg.SendCost, plan.Options{})
		start := time.Now()
		res := gossip.RunMPerf(r, cfg)
		elapsed := time.Since(start)
		status := "OK"
		if res.FramesDelivered != expected {
			status = "FRAME MISMATCH"
		}
		fmt.Printf("%-8s routed %6d msgs, delivered %7d frames in %8v (%7.0f msgs/s)  [%s]\n",
			pol, res.Handled, res.FramesDelivered, elapsed.Round(time.Millisecond),
			float64(res.Handled)/elapsed.Seconds(), status)
	}
}
