package resilience

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// GateConfig tunes an admission gate. Zero-valued fields take the
// defaults documented per field.
type GateConfig struct {
	// MaxConcurrent is the in-flight transaction cap while pressured.
	// Default 4.
	MaxConcurrent int
	// QueueDepth bounds the FIFO of transactions waiting for a slot
	// while pressured; arrivals beyond it are shed immediately.
	// Default 16.
	QueueDepth int
	// QueueTimeout bounds how long a queued transaction waits for a slot
	// before being shed. Default 1ms.
	QueueTimeout time.Duration
	// PressureOn / PressureOff are the outstanding-waiter thresholds the
	// Manager's control loop applies with hysteresis: pressure turns on
	// at >= PressureOn and off at <= PressureOff. PressureOn <= 0
	// disables telemetry-driven pressure (SetPressure may still be
	// called directly). Default off threshold: PressureOn/2.
	PressureOn  int64
	PressureOff int64
}

// Gate is admission control: unpressured it admits everything for the
// cost of one mutex acquisition; pressured it caps in-flight
// transactions, queues a bounded FIFO of waiters, and sheds the rest
// with ErrShed. Shedding happens before acquisition — a shed
// transaction holds no locks, so refusing it protects the sections
// already in flight without adding deadlock or priority-inversion
// pressure.
type Gate struct {
	name string
	cfg  GateConfig

	mu        sync.Mutex
	pressured bool
	inflight  int
	queue     []*gateWaiter

	admitted  atomic.Uint64
	queuedN   atomic.Uint64
	shed      atomic.Uint64
	qTimeouts atomic.Uint64
}

// gateWaiter is one queued arrival. admitted is set under mu by the
// slot hand-off before ch closes, so a waiter whose timer raced the
// hand-off can tell (under mu) whether the slot is already its own.
type gateWaiter struct {
	ch       chan struct{}
	admitted bool
}

// NewGate creates an unpressured gate named name.
func NewGate(name string, cfg GateConfig) *Gate {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = time.Millisecond
	}
	if cfg.PressureOff <= 0 {
		cfg.PressureOff = cfg.PressureOn / 2
	}
	return &Gate{name: name, cfg: cfg}
}

// SetPressure flips the gate's pressure state. Releasing pressure
// drains the whole queue — every waiter is admitted, because the
// condition that justified making them wait is gone.
func (g *Gate) SetPressure(on bool) {
	g.mu.Lock()
	was := g.pressured
	g.pressured = on
	if was && !on {
		g.handLocked()
	}
	g.mu.Unlock()
}

// Pressured reports the current pressure state.
func (g *Gate) Pressured() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.pressured
}

// Enter asks for admission, blocking in the bounded queue if the gate
// is pressured and full. nil means admitted — the caller MUST call Exit
// when its section finishes (success, stall, or panic). ErrShed means
// refused: the queue was full or the queue wait timed out, and the
// caller holds nothing.
func (g *Gate) Enter() error {
	g.mu.Lock()
	if !g.pressured || g.inflight < g.cfg.MaxConcurrent {
		g.inflight++
		g.mu.Unlock()
		g.admitted.Add(1)
		return nil
	}
	if len(g.queue) >= g.cfg.QueueDepth {
		g.mu.Unlock()
		g.shed.Add(1)
		return fmt.Errorf("resilience: gate %s queue full (%d): %w", g.name, g.cfg.QueueDepth, ErrShed)
	}
	w := &gateWaiter{ch: make(chan struct{})}
	g.queue = append(g.queue, w)
	g.mu.Unlock()
	g.queuedN.Add(1)

	timer := time.NewTimer(g.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case <-w.ch:
		// Slot handed over: inflight was already incremented for us.
		g.admitted.Add(1)
		return nil
	case <-timer.C:
		g.mu.Lock()
		if w.admitted {
			// The hand-off raced the timer and won; the slot is ours.
			g.mu.Unlock()
			g.admitted.Add(1)
			return nil
		}
		for i, q := range g.queue {
			if q == w {
				g.queue = append(g.queue[:i], g.queue[i+1:]...)
				break
			}
		}
		g.mu.Unlock()
		g.qTimeouts.Add(1)
		g.shed.Add(1)
		return fmt.Errorf("resilience: gate %s queue wait exceeded %v: %w", g.name, g.cfg.QueueTimeout, ErrShed)
	}
}

// Exit releases an admitted caller's slot, handing it to the queue head
// if one is waiting.
func (g *Gate) Exit() {
	g.mu.Lock()
	g.inflight--
	g.handLocked()
	g.mu.Unlock()
}

// handLocked admits queued waiters while slots are available (all of
// them once pressure is off). Callers hold mu.
func (g *Gate) handLocked() {
	for len(g.queue) > 0 && (!g.pressured || g.inflight < g.cfg.MaxConcurrent) {
		w := g.queue[0]
		g.queue = g.queue[1:]
		w.admitted = true
		g.inflight++
		close(w.ch)
	}
}

// Stats returns the gate's telemetry row.
func (g *Gate) Stats() telemetry.PolicyStats {
	g.mu.Lock()
	state := "open"
	if g.pressured {
		state = "pressured"
	}
	inflight, depth := g.inflight, len(g.queue)
	g.mu.Unlock()
	return telemetry.PolicyStats{
		Policy: g.name,
		Kind:   "gate",
		State:  state,
		Counters: map[string]uint64{
			"admitted":       g.admitted.Load(),
			"queued":         g.queuedN.Load(),
			"shed":           g.shed.Load(),
			"queue_timeouts": g.qTimeouts.Load(),
		},
		Rates: map[string]float64{
			"inflight":    float64(inflight),
			"queue_depth": float64(depth),
		},
	}
}
