package resilience_test

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/adtspecs"
	"repro/internal/core"
)

// keyedTable builds the standard keyed-map table used across the
// runtime's tests: a key set (get/put/remove on one key — modes on the
// same φ bucket self-conflict, modes on different buckets commute) plus
// a size set.
func keyedTable(t *testing.T) (*core.ModeTable, core.SetRef) {
	t.Helper()
	keySet := core.SymSetOf(
		core.SymOpOf("get", core.VarArg("k")),
		core.SymOpOf("put", core.VarArg("k"), core.Star()),
		core.SymOpOf("remove", core.VarArg("k")))
	tbl := core.NewModeTable(adtspecs.Map(), []core.SymSet{keySet},
		core.TableOptions{Phi: core.NewPhi(8)})
	return tbl, tbl.Set(keySet)
}

// checkGoroutines fails the test if the goroutine count has not settled
// back to the baseline (small slack for runtime background goroutines).
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d, baseline %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
