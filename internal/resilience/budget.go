package resilience

import (
	"sync"
	"sync/atomic"
	"time"
)

// BudgetConfig tunes a retry budget. The zero value is not useful; use
// DefaultBudgetConfig as a starting point.
type BudgetConfig struct {
	// Capacity is the maximum number of banked retry tokens — the burst
	// of retries the policy tolerates before refusals start.
	Capacity float64
	// RefillPerSec is the sustained retry rate the bucket refills at.
	RefillPerSec float64
}

// DefaultBudgetConfig allows a burst of 50 retries refilling at 100/s —
// generous for a healthy runtime, a hard wall for a retry storm.
func DefaultBudgetConfig() BudgetConfig {
	return BudgetConfig{Capacity: 50, RefillPerSec: 100}
}

// Budget is a token-bucket retry budget shared by every caller of a
// policy: each retry after a StallError withdraws one token, and an
// empty bucket turns the retry into an ErrBudgetExhausted failure. The
// bound is global per policy — N callers stalling together can spend at
// most the bucket, not N buckets — which is what keeps a contention
// storm from amplifying itself.
type Budget struct {
	mu     sync.Mutex
	cfg    BudgetConfig
	tokens float64
	last   time.Time

	granted atomic.Uint64
	denied  atomic.Uint64
}

// NewBudget creates a full bucket.
func NewBudget(cfg BudgetConfig) *Budget {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultBudgetConfig().Capacity
	}
	if cfg.RefillPerSec <= 0 {
		cfg.RefillPerSec = DefaultBudgetConfig().RefillPerSec
	}
	return &Budget{cfg: cfg, tokens: cfg.Capacity, last: time.Now()}
}

// TryWithdraw takes one retry token if available.
func (b *Budget) TryWithdraw() bool {
	now := time.Now()
	b.mu.Lock()
	b.tokens += now.Sub(b.last).Seconds() * b.cfg.RefillPerSec
	if b.tokens > b.cfg.Capacity {
		b.tokens = b.cfg.Capacity
	}
	b.last = now
	ok := b.tokens >= 1
	if ok {
		b.tokens--
	}
	b.mu.Unlock()
	if ok {
		b.granted.Add(1)
	} else {
		b.denied.Add(1)
	}
	return ok
}

// Tokens returns the current (refilled) token level.
func (b *Budget) Tokens() float64 {
	now := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.tokens + now.Sub(b.last).Seconds()*b.cfg.RefillPerSec
	if t > b.cfg.Capacity {
		t = b.cfg.Capacity
	}
	return t
}

// Counts returns the lifetime granted/denied withdrawal counts.
func (b *Budget) Counts() (granted, denied uint64) {
	return b.granted.Load(), b.denied.Load()
}
