package resilience

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Manager owns the signal plumbing for a set of policies: it installs
// the unified stall feed (one clock for timeout-path and watchdog
// stalls), fans every event into the policies' breaker windows, runs
// the control loop that samples outstanding-waiter telemetry into
// breaker windows and gate pressure, and registers each policy's state
// with a telemetry registry so /debug/semlock shows breaker states,
// budget levels, and shed counts.
type Manager struct {
	interval time.Duration
	reg      *telemetry.Registry
	feed     *telemetry.StallFeed

	mu       sync.Mutex
	policies []*Policy
	prev     func(core.StallEvent)
	stop     chan struct{}
	done     chan struct{}
}

// NewManager creates a manager sampling waiter telemetry every
// interval (default 1ms). reg may be nil to skip telemetry
// registration.
func NewManager(reg *telemetry.Registry, interval time.Duration) *Manager {
	if interval <= 0 {
		interval = time.Millisecond
	}
	return &Manager{
		interval: interval,
		reg:      reg,
		feed:     telemetry.NewStallFeed(time.Second, 8),
	}
}

// Feed returns the manager's unified stall feed.
func (m *Manager) Feed() *telemetry.StallFeed { return m.feed }

// Add registers a policy: its breaker joins the stall fan-out and its
// state rows join the registry's snapshots.
func (m *Manager) Add(p *Policy) {
	m.mu.Lock()
	m.policies = append(m.policies, p)
	m.mu.Unlock()
	if m.reg != nil {
		m.reg.RegisterPolicySource(p.Name(), p.Stats)
	}
}

// Start installs the stall feed as the process-wide observer and
// launches the control loop. Idempotent while running.
func (m *Manager) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stop != nil {
		return
	}
	m.prev = m.feed.Install()
	m.feed.Subscribe(m.fan)
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go m.loop(m.stop, m.done)
}

// fan delivers one stall event to every policy's breaker window.
func (m *Manager) fan(ev core.StallEvent) {
	m.mu.Lock()
	policies := m.policies
	m.mu.Unlock()
	for _, p := range policies {
		p.ObserveStall(ev)
	}
}

// loop samples the parked-waiter population — the same process counter
// telemetry snapshots export as waiters_outstanding — into every
// policy's breaker window and gate pressure hysteresis.
func (m *Manager) loop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(m.interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			n := core.WaitersOutstanding()
			m.mu.Lock()
			policies := m.policies
			m.mu.Unlock()
			for _, p := range policies {
				p.ObserveWaiters(n)
			}
		}
	}
}

// Stop halts the control loop and restores the previously installed
// stall observer. Safe to call when never started.
func (m *Manager) Stop() {
	m.mu.Lock()
	stop, done := m.stop, m.done
	prev := m.prev
	m.stop, m.done, m.prev = nil, nil, nil
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
	core.SetStallObserver(prev)
}

// Unregister removes every policy's telemetry registration (used by
// benchmarks that build and tear down managers repeatedly against the
// shared Default registry).
func (m *Manager) Unregister() {
	if m.reg == nil {
		return
	}
	m.mu.Lock()
	policies := m.policies
	m.mu.Unlock()
	for _, p := range policies {
		m.reg.UnregisterPolicySource(p.Name())
	}
}

// Stats returns every registered policy's current telemetry rows.
func (m *Manager) Stats() []telemetry.PolicyStats {
	m.mu.Lock()
	policies := m.policies
	m.mu.Unlock()
	var out []telemetry.PolicyStats
	for _, p := range policies {
		out = append(out, p.Stats()...)
	}
	return out
}
