package resilience_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/resilience"
)

// TestBreakerStateMachine walks the full cycle deterministically:
// closed → (stall rate) open → (cooldown) half-open → (probe failure)
// open again → (cooldown + consecutive probe successes) closed.
func TestBreakerStateMachine(t *testing.T) {
	b := resilience.NewBreaker("t", resilience.BreakerConfig{
		Window:        200 * time.Millisecond,
		Buckets:       4,
		TripStallRate: 10, // 2 events in the 200ms window
		Cooldown:      20 * time.Millisecond,
		Probes:        2,
	})
	if b.State() != resilience.BreakerClosed {
		t.Fatalf("initial state %v", b.State())
	}
	done, err := b.Allow()
	if err != nil {
		t.Fatalf("closed Allow: %v", err)
	}
	done(true)

	// Trip on windowed stall rate.
	for i := 0; i < 5; i++ {
		b.RecordStall(core.StallEvent{})
	}
	if _, err := b.Allow(); !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("tripped Allow: %v, want ErrBreakerOpen", err)
	}
	if b.State() != resilience.BreakerOpen {
		t.Fatalf("state after trip %v", b.State())
	}
	// Still open inside the cooldown.
	if _, err := b.Allow(); !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("cooldown Allow: %v", err)
	}

	// Cooldown elapses → half-open; a failed probe reopens.
	time.Sleep(25 * time.Millisecond)
	done, err = b.Allow()
	if err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	if b.State() != resilience.BreakerHalfOpen {
		t.Fatalf("state during probe %v", b.State())
	}
	done(false)
	if b.State() != resilience.BreakerOpen {
		t.Fatalf("state after failed probe %v", b.State())
	}

	// Cooldown again → half-open → Probes consecutive successes close.
	time.Sleep(25 * time.Millisecond)
	for i := 0; i < 2; i++ {
		done, err = b.Allow()
		if err != nil {
			t.Fatalf("probe %d refused: %v", i, err)
		}
		done(true)
	}
	if b.State() != resilience.BreakerClosed {
		t.Fatalf("state after successful probes %v", b.State())
	}
	// Closed again: traffic flows (the stall window has decayed by now
	// or the next trip is legitimate — either way Allow must not panic
	// and done must be single-shot safe).
	if done, err := b.Allow(); err == nil {
		done(true)
		done(true) // double-invoke must be a no-op
	}
}

// TestBreakerHalfOpenProbeQuota: while half-open, at most Probes
// concurrent attempts are admitted; the rest are refused.
func TestBreakerHalfOpenProbeQuota(t *testing.T) {
	b := resilience.NewBreaker("t", resilience.BreakerConfig{
		TripStallRate: 1,
		Cooldown:      time.Millisecond,
		Probes:        2,
	})
	for i := 0; i < 10; i++ {
		b.RecordStall(core.StallEvent{})
	}
	if _, err := b.Allow(); !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatal("breaker did not trip")
	}
	time.Sleep(2 * time.Millisecond)

	d1, err1 := b.Allow()
	d2, err2 := b.Allow()
	if err1 != nil || err2 != nil {
		t.Fatalf("probe admissions: %v, %v", err1, err2)
	}
	if _, err := b.Allow(); !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("third concurrent probe admitted: %v", err)
	}
	d1(true)
	d2(true)
	if b.State() != resilience.BreakerClosed {
		t.Fatalf("state after probe successes %v", b.State())
	}
}

// TestBreakerConcurrentProbesRace hammers the state machine from many
// goroutines — concurrent Allow/done with mixed outcomes racing
// RecordStall and ObserveWaiters — then verifies the breaker still
// converges: with stalls stopped and only successes voting, it must end
// closed. Run under -race.
func TestBreakerConcurrentProbesRace(t *testing.T) {
	// TripStallRate 20 over a 50ms window: a single stall event in the
	// window trips, so the feeder keeps the breaker cycling through
	// open/half-open/closed for the whole hammer.
	b := resilience.NewBreaker("t", resilience.BreakerConfig{
		Window:        50 * time.Millisecond,
		Buckets:       4,
		TripStallRate: 20,
		TripWaiters:   64,
		Cooldown:      time.Millisecond,
		Probes:        3,
	})
	var wg, feederWG sync.WaitGroup
	stopStalls := make(chan struct{})
	feederWG.Add(1)
	go func() {
		defer feederWG.Done()
		for {
			select {
			case <-stopStalls:
				return
			default:
				b.RecordStall(core.StallEvent{})
				b.ObserveWaiters(rand.Int63n(128))
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				done, err := b.Allow()
				if err != nil {
					if !errors.Is(err, resilience.ErrBreakerOpen) {
						t.Errorf("unexpected refusal: %v", err)
					}
					time.Sleep(time.Duration(r.Intn(200)) * time.Microsecond)
					continue
				}
				if r.Intn(3) == 0 {
					done(false)
				} else {
					done(true)
				}
				time.Sleep(time.Duration(r.Intn(50)) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	close(stopStalls)
	feederWG.Wait()

	// Pressure is gone: drive success-only traffic until it converges
	// closed (the stall window decays within 50ms).
	deadline := time.Now().Add(5 * time.Second)
	for b.State() != resilience.BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never re-closed; state %v, stats %+v", b.State(), b.Stats())
		}
		if done, err := b.Allow(); err == nil {
			done(true)
		}
		time.Sleep(time.Millisecond)
	}
	st := b.Stats()
	if st.Counters["admitted"] == 0 || st.Counters["tripped"] == 0 {
		t.Fatalf("hammer left no trace: %+v", st.Counters)
	}
}
