package resilience_test

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/resilience"
)

// TestBudgetTokenBucket: withdrawals drain the bucket, refill restores
// it at the configured rate.
func TestBudgetTokenBucket(t *testing.T) {
	b := resilience.NewBudget(resilience.BudgetConfig{Capacity: 2, RefillPerSec: 50})
	if !b.TryWithdraw() || !b.TryWithdraw() {
		t.Fatal("full bucket refused a withdrawal")
	}
	if b.TryWithdraw() {
		t.Fatal("empty bucket granted a withdrawal")
	}
	granted, denied := b.Counts()
	if granted != 2 || denied != 1 {
		t.Fatalf("counts = (%d,%d), want (2,1)", granted, denied)
	}
	// 50 tokens/s → one token well within a second.
	deadline := time.Now().Add(5 * time.Second)
	for !b.TryWithdraw() {
		if time.Now().After(deadline) {
			t.Fatal("bucket never refilled")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPolicyBudgetExhaustionTyped: a section that stalls on every
// attempt must come back as ErrBudgetExhausted once the bucket is empty
// — with the underlying *StallError still recoverable — and leak no
// goroutines. Run under -race.
func TestPolicyBudgetExhaustionTyped(t *testing.T) {
	tbl, keys := keyedTable(t)
	s := core.NewSemantic(tbl)
	km := keys.Mode(1)
	s.Acquire(km) // permanent conflicting holder

	before := runtime.NumGoroutine()
	p := resilience.New("t", resilience.Config{
		Patience: 2 * time.Millisecond,
		Retries:  10,
		Backoff:  resilience.Backoff{Base: 50 * time.Microsecond, Max: 200 * time.Microsecond},
		Budget:   &resilience.BudgetConfig{Capacity: 2, RefillPerSec: 0.001},
	})

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for g := range errs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = p.Run(func(tx *core.Txn) error {
				return p.Acquire(tx, s, km, 0)
			})
		}(g)
	}
	wg.Wait()

	sawExhausted := false
	for _, err := range errs {
		if err == nil {
			t.Fatal("acquisition against a live holder succeeded")
		}
		var stall *core.StallError
		if !errors.As(err, &stall) {
			t.Fatalf("error chain lost the StallError: %v", err)
		}
		if errors.Is(err, resilience.ErrBudgetExhausted) {
			sawExhausted = true
		}
	}
	// 4 goroutines × up to 10 retries against a 2-token bucket: the
	// budget must have been the binding constraint for someone.
	if !sawExhausted {
		t.Fatalf("no caller hit ErrBudgetExhausted: %v", errs)
	}
	s.Release(km)
	if err := s.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
	checkGoroutines(t, before)
}

// TestPolicyRetrySucceeds: a stall on the first attempt followed by a
// release must succeed on a budgeted retry.
func TestPolicyRetrySucceeds(t *testing.T) {
	tbl, keys := keyedTable(t)
	s := core.NewSemantic(tbl)
	km := keys.Mode(2)
	s.Acquire(km)

	p := resilience.New("t", resilience.Config{
		Patience: 5 * time.Millisecond,
		Retries:  3,
		Backoff:  resilience.Backoff{Base: 100 * time.Microsecond, Max: time.Millisecond},
		Budget:   &resilience.BudgetConfig{Capacity: 10, RefillPerSec: 100},
	})
	// Release the blocker after the first attempt has had time to stall.
	go func() {
		time.Sleep(8 * time.Millisecond)
		s.Release(km)
	}()
	ran := 0
	err := p.Run(func(tx *core.Txn) error {
		ran++
		return p.Acquire(tx, s, km, 0)
	})
	if err != nil {
		t.Fatalf("budgeted retry failed: %v", err)
	}
	if ran < 2 {
		t.Fatalf("section ran %d times, want a retry", ran)
	}
	if err := s.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}

// TestGateQueueAndShed: a pressured gate caps in-flight sections,
// queues FIFO, sheds beyond the queue bound with ErrShed, and drains
// the queue when pressure lifts.
func TestGateQueueAndShed(t *testing.T) {
	g := resilience.NewGate("t", resilience.GateConfig{
		MaxConcurrent: 1,
		QueueDepth:    1,
		QueueTimeout:  time.Minute,
	})
	g.SetPressure(true)
	if err := g.Enter(); err != nil {
		t.Fatalf("first Enter under capacity: %v", err)
	}
	// Second arrival queues; it must be admitted when the first exits.
	admitted := make(chan error, 1)
	go func() { admitted <- g.Enter() }()
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().Counters["queued"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second arrival never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Third arrival: queue full → immediate shed.
	if err := g.Enter(); !errors.Is(err, resilience.ErrShed) {
		t.Fatalf("over-queue Enter: %v, want ErrShed", err)
	}
	g.Exit()
	if err := <-admitted; err != nil {
		t.Fatalf("queued arrival refused: %v", err)
	}
	g.Exit()

	// Queue timeout sheds.
	gt := resilience.NewGate("t2", resilience.GateConfig{
		MaxConcurrent: 1,
		QueueDepth:    4,
		QueueTimeout:  5 * time.Millisecond,
	})
	gt.SetPressure(true)
	if err := gt.Enter(); err != nil {
		t.Fatal(err)
	}
	if err := gt.Enter(); !errors.Is(err, resilience.ErrShed) {
		t.Fatalf("queue-timeout Enter: %v, want ErrShed", err)
	}
	gt.Exit()

	// Pressure release drains the whole queue.
	gd := resilience.NewGate("t3", resilience.GateConfig{
		MaxConcurrent: 1,
		QueueDepth:    8,
		QueueTimeout:  time.Minute,
	})
	gd.SetPressure(true)
	if err := gd.Enter(); err != nil {
		t.Fatal(err)
	}
	results := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() { results <- gd.Enter() }()
	}
	deadline = time.Now().Add(5 * time.Second)
	for gd.Stats().Counters["queued"] < 3 {
		if time.Now().After(deadline) {
			t.Fatal("arrivals never queued")
		}
		time.Sleep(time.Millisecond)
	}
	gd.SetPressure(false)
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			t.Fatalf("queued arrival after pressure release: %v", err)
		}
	}
}

// TestGateConcurrencyRace hammers Enter/Exit against pressure flips.
// Run under -race; the invariant is only that every admitted Enter is
// balanced and nothing deadlocks or panics.
func TestGateConcurrencyRace(t *testing.T) {
	g := resilience.NewGate("t", resilience.GateConfig{
		MaxConcurrent: 2,
		QueueDepth:    4,
		QueueTimeout:  500 * time.Microsecond,
	})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		on := false
		for {
			select {
			case <-stop:
				g.SetPressure(false)
				return
			default:
				on = !on
				g.SetPressure(on)
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if err := g.Enter(); err == nil {
					time.Sleep(10 * time.Microsecond)
					g.Exit()
				} else if !errors.Is(err, resilience.ErrShed) {
					t.Errorf("unexpected Enter error: %v", err)
				}
			}
		}()
	}
	close(stop)
	wg.Wait()
	st := g.Stats()
	if st.Rates["inflight"] != 0 || st.Rates["queue_depth"] != 0 {
		t.Fatalf("gate not quiescent after hammer: %+v", st.Rates)
	}
}

// TestManagerWiresSignals: the manager's stall feed must reach policy
// breakers, waiter samples must drive gate pressure hysteresis, and
// Stop must restore the previous observer.
func TestManagerWiresSignals(t *testing.T) {
	prev := core.SetStallObserver(nil)
	defer core.SetStallObserver(prev)

	m := resilience.NewManager(nil, time.Millisecond)
	p := resilience.New("t", resilience.Config{
		Patience: time.Millisecond,
		Breaker:  &resilience.BreakerConfig{TripStallRate: 1, Cooldown: time.Minute},
		Gate:     &resilience.GateConfig{PressureOn: 4, PressureOff: 1, QueueTimeout: time.Millisecond},
	})
	m.Add(p)
	m.Start()
	defer m.Stop()

	// A real stall must land in the breaker window via the feed.
	tbl, keys := keyedTable(t)
	s := core.NewSemantic(tbl)
	km := keys.Mode(3)
	s.Acquire(km)
	for i := 0; i < 5; i++ {
		if err := s.AcquireWithin(km, time.Millisecond); err == nil {
			t.Fatal("acquisition against a live holder succeeded")
		}
	}
	s.Release(km)
	if _, err := p.Breaker().Allow(); !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("breaker untouched by stall feed: %v", err)
	}

	// Waiter pressure hysteresis.
	p.ObserveWaiters(10)
	if !p.Gate().Pressured() {
		t.Fatal("gate not pressured at waiters=10")
	}
	p.ObserveWaiters(2) // between off(1) and on(4): unchanged
	if !p.Gate().Pressured() {
		t.Fatal("hysteresis released pressure early")
	}
	p.ObserveWaiters(0)
	if p.Gate().Pressured() {
		t.Fatal("gate still pressured at waiters=0")
	}
}
