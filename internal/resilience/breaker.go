package resilience

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// BreakerState is the circuit breaker's state-machine position.
type BreakerState int32

const (
	// BreakerClosed: traffic flows; every Allow re-checks the trip
	// conditions against the sliding windows.
	BreakerClosed BreakerState = iota
	// BreakerOpen: traffic is refused with ErrBreakerOpen until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: up to Probes concurrent attempts are admitted as
	// probes; Probes consecutive successes close the breaker, any
	// failure reopens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes a circuit breaker. Zero-valued fields take the
// defaults documented per field.
type BreakerConfig struct {
	// Window / Buckets shape the sliding windows both trip signals are
	// measured over. Defaults: 1s over 8 buckets.
	Window  time.Duration
	Buckets int
	// TripStallRate is the windowed stall rate (events/sec on the
	// unified stall feed) at or above which the breaker opens. <= 0
	// disables rate tripping.
	TripStallRate float64
	// TripWaiters is the windowed-max outstanding-waiter count at or
	// above which the breaker opens. <= 0 disables waiter tripping.
	TripWaiters int64
	// Cooldown is how long an open breaker refuses before moving to
	// half-open. Default 50ms.
	Cooldown time.Duration
	// Probes is both the half-open concurrency cap and the consecutive
	// successes required to close. Default 3.
	Probes int
}

// Breaker is a circuit breaker over one policy's traffic, driven by the
// two windowed signals the runtime already measures: the unified stall
// feed (RecordStall) and the outstanding-waiter gauge (ObserveWaiters).
// Admission is Allow; the returned done func reports the attempt's
// outcome so half-open probes can vote on recovery.
type Breaker struct {
	name string
	cfg  BreakerConfig

	stalls  *telemetry.RateWindow
	waiters *telemetry.GaugeWindow

	mu       sync.Mutex
	state    BreakerState
	openedAt time.Time
	probing  int // probes in flight while half-open
	probeOK  int // consecutive probe successes this half-open episode

	statev   atomic.Int32 // mirror of state for lock-free State()
	tripped  atomic.Uint64
	rejected atomic.Uint64
	admitted atomic.Uint64
	probes   atomic.Uint64
	reopened atomic.Uint64
	reclosed atomic.Uint64
}

// NewBreaker creates a closed breaker named name (the telemetry row
// key).
func NewBreaker(name string, cfg BreakerConfig) *Breaker {
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 8
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 50 * time.Millisecond
	}
	if cfg.Probes <= 0 {
		cfg.Probes = 3
	}
	return &Breaker{
		name:    name,
		cfg:     cfg,
		stalls:  telemetry.NewRateWindow(cfg.Window, cfg.Buckets),
		waiters: telemetry.NewGaugeWindow(cfg.Window, cfg.Buckets),
	}
}

// RecordStall feeds one stall observation into the breaker's window.
// Wired to the unified stall feed by the Manager, so timeout-path and
// watchdog stalls land in the same window by construction.
func (b *Breaker) RecordStall(core.StallEvent) { b.stalls.Add(1) }

// ObserveWaiters feeds one outstanding-waiter gauge sample.
func (b *Breaker) ObserveWaiters(n int64) { b.waiters.Observe(n) }

// noopDone is handed to closed-state admissions: their outcome carries
// no state-machine weight, so sharing one func keeps Allow
// allocation-free on the common path.
var noopDone = func(bool) {}

// Allow asks the breaker to admit one attempt. On admission it returns
// a done func the caller MUST invoke with the attempt's outcome (true =
// success or non-stall failure, false = stall); on refusal it returns
// ErrBreakerOpen. Closed-state admissions get a shared no-op done;
// half-open admissions get a probe callback that votes on recovery.
func (b *Breaker) Allow() (done func(ok bool), err error) {
	b.mu.Lock()
	switch b.state {
	case BreakerClosed:
		if b.tripLocked() {
			b.mu.Unlock()
			b.rejected.Add(1)
			return nil, fmt.Errorf("resilience: breaker %s tripped: %w", b.name, ErrBreakerOpen)
		}
		b.mu.Unlock()
		b.admitted.Add(1)
		return noopDone, nil
	case BreakerOpen:
		if time.Since(b.openedAt) < b.cfg.Cooldown {
			b.mu.Unlock()
			b.rejected.Add(1)
			return nil, fmt.Errorf("resilience: breaker %s cooling down: %w", b.name, ErrBreakerOpen)
		}
		b.setStateLocked(BreakerHalfOpen)
		b.probing, b.probeOK = 0, 0
		fallthrough
	default: // BreakerHalfOpen
		if b.probing >= b.cfg.Probes {
			b.mu.Unlock()
			b.rejected.Add(1)
			return nil, fmt.Errorf("resilience: breaker %s probe quota full: %w", b.name, ErrBreakerOpen)
		}
		b.probing++
		b.mu.Unlock()
		b.probes.Add(1)
		b.admitted.Add(1)
		var once sync.Once
		return func(ok bool) { once.Do(func() { b.probeDone(ok) }) }, nil
	}
}

// tripLocked evaluates the trip conditions. Callers hold mu.
func (b *Breaker) tripLocked() bool {
	trip := false
	if b.cfg.TripStallRate > 0 && b.stalls.Rate() >= b.cfg.TripStallRate {
		trip = true
	}
	if b.cfg.TripWaiters > 0 && b.waiters.Max() >= b.cfg.TripWaiters {
		trip = true
	}
	if trip {
		b.setStateLocked(BreakerOpen)
		b.openedAt = time.Now()
		b.tripped.Add(1)
	}
	return trip
}

// probeDone records a half-open probe's outcome: any failure reopens
// immediately (restarting the cooldown), Probes consecutive successes
// close.
func (b *Breaker) probeDone(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.probing > 0 {
		b.probing--
	}
	if b.state != BreakerHalfOpen {
		return // a concurrent probe already decided the episode
	}
	if !ok {
		b.setStateLocked(BreakerOpen)
		b.openedAt = time.Now()
		b.probeOK = 0
		b.reopened.Add(1)
		return
	}
	b.probeOK++
	if b.probeOK >= b.cfg.Probes {
		b.setStateLocked(BreakerClosed)
		b.reclosed.Add(1)
	}
}

func (b *Breaker) setStateLocked(s BreakerState) {
	b.state = s
	b.statev.Store(int32(s))
}

// State returns the current state without taking the lock.
func (b *Breaker) State() BreakerState { return BreakerState(b.statev.Load()) }

// Stats returns the breaker's telemetry row.
func (b *Breaker) Stats() telemetry.PolicyStats {
	return telemetry.PolicyStats{
		Policy: b.name,
		Kind:   "breaker",
		State:  b.State().String(),
		Counters: map[string]uint64{
			"admitted": b.admitted.Load(),
			"rejected": b.rejected.Load(),
			"tripped":  b.tripped.Load(),
			"probes":   b.probes.Load(),
			"reopened": b.reopened.Load(),
			"reclosed": b.reclosed.Load(),
		},
		Rates: map[string]float64{
			"stall_rate":  b.stalls.Rate(),
			"waiters_max": float64(b.waiters.Max()),
		},
	}
}
