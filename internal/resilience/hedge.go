package resilience

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// HedgeOutcome reports which side of a hedged read produced the
// returned value.
type HedgeOutcome uint8

const (
	// HedgePessimistic: the lock-based side won (the hedge never
	// launched, failed validation, or validated too late).
	HedgePessimistic HedgeOutcome = iota
	// HedgeWon: the optimistic hedge validated first; the pessimistic
	// acquisition was cancelled (or its late result discarded).
	HedgeWon
	// HedgeError: neither side produced a value; the returned error is
	// the pessimistic side's.
	HedgeError
)

func (o HedgeOutcome) String() string {
	switch o {
	case HedgeWon:
		return "hedge"
	case HedgeError:
		return "error"
	default:
		return "pessimistic"
	}
}

// winner CAS values: 0 undecided.
const (
	hedgeUndecided int32 = iota
	hedgePessWon
	hedgeHedgeWon
)

// HedgedRead races a read-only section's pessimistic execution against
// a deferred optimistic hedge (a free function because Go methods
// cannot be generic; the policy supplies budget, patience, and
// counters).
//
// The pessimistic closure runs immediately in its own atomic section,
// locking via p.AcquireCancel with the supplied cancel channel. If it
// is still blocked when the policy's HedgeBudget elapses, the
// optimistic closure launches inside core.Txn.TryOptimistic in a second
// transaction: Observe-validated reads against the PR 6 version
// counters, no locks. Whichever side finishes first claims a
// compare-and-swap; the loser is cancelled cleanly — a winning hedge
// closes cancel so the parked pessimistic acquisition withdraws with
// core.ErrCanceled and holds nothing, while a validated-but-late hedge
// simply discards its snapshot (reads mutate nothing, so "no
// double-commit" means exactly one side's value is ever returned).
//
// Both sides are joined before returning: the pessimistic side runs on
// the calling goroutine and the hedge's completion is awaited, so a
// HedgedRead leaks no goroutine regardless of outcome. Stalled attempts
// (neither side won) retry under the policy's budget like Run.
//
// The section must be genuinely read-only: the optimistic closure runs
// WITHOUT locks and must only Observe and read; the pessimistic closure
// must tolerate cancellation between its lock calls.
func HedgedRead[T any](p *Policy,
	pessimistic func(tx *core.Txn, cancel <-chan struct{}) (T, error),
	optimistic func(tx *core.Txn) (T, bool),
) (T, HedgeOutcome, error) {
	var val T
	outcome := HedgeError
	err := p.retryLoop(func() error {
		v, o, err := hedgeOnce(p, pessimistic, optimistic)
		val, outcome = v, o
		return err
	})
	return val, outcome, err
}

type hedgeResult[T any] struct {
	val T
	won bool
}

func hedgeOnce[T any](p *Policy,
	pessimistic func(tx *core.Txn, cancel <-chan struct{}) (T, error),
	optimistic func(tx *core.Txn) (T, bool),
) (T, HedgeOutcome, error) {
	if p.cfg.HedgeBudget <= 0 {
		var v T
		var err error
		core.Atomically(func(tx *core.Txn) { v, err = pessimistic(tx, nil) })
		if err != nil {
			var zero T
			return zero, HedgeError, err
		}
		return v, HedgePessimistic, nil
	}

	var winner atomic.Int32
	cancel := make(chan struct{})
	hedgeDone := make(chan hedgeResult[T], 1)
	timer := time.AfterFunc(p.cfg.HedgeBudget, func() {
		p.hedgesLaunched.Add(1)
		var out hedgeResult[T]
		core.Atomically(func(tx *core.Txn) {
			validated := tx.TryOptimistic(func(tx *core.Txn) bool {
				v, ok := optimistic(tx)
				if !ok {
					return false
				}
				out.val = v
				return true
			})
			if validated && winner.CompareAndSwap(hedgeUndecided, hedgeHedgeWon) {
				out.won = true
				// Revoke the pessimistic side: its parked acquisition
				// withdraws with ErrCanceled, holding nothing.
				close(cancel)
			}
		})
		hedgeDone <- out
	})

	var pval T
	var perr error
	core.Atomically(func(tx *core.Txn) { pval, perr = pessimistic(tx, cancel) })
	if perr == nil {
		winner.CompareAndSwap(hedgeUndecided, hedgePessWon)
	}

	// Join the hedge if its timer fired (Stop reports whether it was
	// stopped before running): the engine never returns with the hedge
	// goroutine still in flight.
	var hres hedgeResult[T]
	launched := !timer.Stop()
	if launched {
		hres = <-hedgeDone
	}

	switch winner.Load() {
	case hedgeHedgeWon:
		p.hedgeWins.Add(1)
		if errors.Is(perr, core.ErrCanceled) {
			p.hedgeCancels.Add(1)
		}
		return hres.val, HedgeWon, nil
	case hedgePessWon:
		if launched {
			p.hedgeLosses.Add(1)
		}
		return pval, HedgePessimistic, nil
	default:
		var zero T
		return zero, HedgeError, perr
	}
}
