// Package resilience is the policy layer between applications and the
// semantic-lock runtime: it turns the detection machinery PRs 3 and 5
// built — bounded acquisition with StallError, the stall Watchdog, the
// telemetry Registry — into action, so an injected slow hold degrades
// throughput instead of collapsing it.
//
// Four cooperating pieces, each independently optional per Policy:
//
//   - Budget: a token-bucket retry budget. Retries after a StallError
//     are bounded globally per policy, not per caller, so a contention
//     storm cannot multiply itself through synchronized re-attempts;
//     attempts that do retry back off with full jitter.
//
//   - Breaker: a circuit breaker driven by the unified stall feed
//     (core.SetStallObserver → telemetry.StallFeed) and the windowed
//     outstanding-waiter gauge. Closed → Open on windowed stall rate or
//     waiter pressure, Open → HalfOpen after a cooldown, HalfOpen →
//     Closed after consecutive successful probes (→ Open again on any
//     probe failure).
//
//   - Gate: admission control. Under waiter pressure new transactions
//     queue in a bounded FIFO or are shed with ErrShed. Shedding
//     happens BEFORE acquisition: a shed transaction holds nothing, so
//     it cannot contribute to deadlock pressure, priority inversion, or
//     the very waiter population that triggered the pressure — the gate
//     protects the sections already in flight.
//
//   - HedgedRead: a read-only section whose pessimistic acquisition
//     exceeds a latency budget races a TryOptimistic hedge; whichever
//     validates first wins and the loser is cancelled cleanly (the
//     pessimistic side via core.ErrCanceled, the hedge by discarding
//     its validated-but-late snapshot).
//
// Policies expose every counter through telemetry.PolicyStats
// (Registry.RegisterPolicySource), and a Manager runs the control loop
// that feeds waiter telemetry into breakers and gate pressure.
package resilience

import (
	"errors"
	"math/rand"
	"time"
)

// ErrShed is returned by the admission gate when a transaction is
// refused before acquisition: the bounded queue was full, or the queue
// wait timed out. Check with errors.Is; a shed transaction held
// nothing, so the caller may simply drop the work or retry later.
var ErrShed = errors.New("resilience: shed by admission control")

// ErrBreakerOpen is returned when a circuit breaker refuses admission:
// the windowed stall rate or waiter pressure tripped it and the
// cooldown (or probe quota) has not yet readmitted traffic.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// ErrBudgetExhausted is returned when a stalled attempt wanted to retry
// but the policy's token-bucket budget was empty. The underlying
// StallError is joined into the chain, so errors.As still recovers it.
var ErrBudgetExhausted = errors.New("resilience: retry budget exhausted")

// Backoff shapes the jittered delay between budgeted retries: attempt n
// sleeps a uniformly random duration in (0, min(Max, Base·2ⁿ)]. Full
// jitter rather than equal jitter — the point of the delay is to
// decorrelate retriers that stalled on the same holder, and full jitter
// decorrelates hardest.
type Backoff struct {
	Base time.Duration
	Max  time.Duration
}

func (b Backoff) sleep(attempt int) {
	base := b.Base
	if base <= 0 {
		base = 100 * time.Microsecond
	}
	max := b.Max
	if max <= 0 {
		max = 5 * time.Millisecond
	}
	d := base << uint(attempt)
	if d <= 0 || d > max {
		d = max
	}
	time.Sleep(time.Duration(rand.Int63n(int64(d))) + 1)
}
