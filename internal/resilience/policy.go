package resilience

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Config assembles one policy. Budget, Breaker, and Gate are each
// optional (nil disables the component); HedgeBudget <= 0 disables
// hedging, making HedgedRead run its pessimistic side directly.
type Config struct {
	// Patience bounds each individual lock acquisition (Acquire /
	// AcquireCancel use LockWithin with this patience). Default 500µs.
	Patience time.Duration
	// Retries caps the number of budgeted re-attempts after a stalled
	// section, on top of the initial attempt. Default 1; negative means
	// zero (no retries).
	Retries int
	// Backoff shapes the jittered delay between retries.
	Backoff Backoff
	// HedgeBudget is the pessimistic-acquisition latency after which
	// HedgedRead launches its optimistic hedge.
	HedgeBudget time.Duration

	Budget  *BudgetConfig
	Breaker *BreakerConfig
	Gate    *GateConfig
}

// DefaultConfig enables all four components with conservative settings:
// 500µs patience, one budgeted retry, a 1s/8-bucket breaker tripping at
// 500 stalls/s, a 4-deep gate, and a 200µs hedge budget.
func DefaultConfig() Config {
	b := DefaultBudgetConfig()
	return Config{
		Patience:    500 * time.Microsecond,
		Retries:     1,
		Backoff:     Backoff{Base: 100 * time.Microsecond, Max: 2 * time.Millisecond},
		HedgeBudget: 200 * time.Microsecond,
		Budget:      &b,
		Breaker:     &BreakerConfig{TripStallRate: 500, Cooldown: 2 * time.Millisecond, Probes: 3},
		Gate:        &GateConfig{MaxConcurrent: 4, QueueDepth: 16, QueueTimeout: time.Millisecond, PressureOn: 8},
	}
}

// Policy bundles the enabled components for one traffic class and is
// the object applications hold: Run wraps a whole section in
// gate→breaker→budgeted-retry, Acquire/AcquireCancel are the bounded
// per-lock calls inside a section, and HedgedRead (free function —
// methods cannot be generic) is the read race.
type Policy struct {
	name    string
	cfg     Config
	budget  *Budget
	breaker *Breaker
	gate    *Gate

	runs           atomic.Uint64
	stallFailures  atomic.Uint64
	retries        atomic.Uint64
	hedgesLaunched atomic.Uint64
	hedgeWins      atomic.Uint64
	hedgeLosses    atomic.Uint64
	hedgeCancels   atomic.Uint64
}

// New creates a policy named name (the telemetry key) from cfg.
func New(name string, cfg Config) *Policy {
	if cfg.Patience <= 0 {
		cfg.Patience = 500 * time.Microsecond
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	p := &Policy{name: name, cfg: cfg}
	if cfg.Budget != nil {
		p.budget = NewBudget(*cfg.Budget)
	}
	if cfg.Breaker != nil {
		p.breaker = NewBreaker(name, *cfg.Breaker)
	}
	if cfg.Gate != nil {
		p.gate = NewGate(name, *cfg.Gate)
	}
	return p
}

// Name returns the policy's telemetry key.
func (p *Policy) Name() string { return p.name }

// Breaker returns the policy's breaker, nil if disabled.
func (p *Policy) Breaker() *Breaker { return p.breaker }

// Gate returns the policy's gate, nil if disabled.
func (p *Policy) Gate() *Gate { return p.gate }

// Budget returns the policy's retry budget, nil if disabled.
func (p *Policy) Budget() *Budget { return p.budget }

// Acquire is the policy-bounded lock call for use inside a Run section:
// LockWithin with the policy's patience. A returned *StallError aborts
// the section (return it from the section closure) and Run decides
// whether the budget admits a retry.
func (p *Policy) Acquire(tx *core.Txn, s *core.Semantic, m core.ModeID, rank int) error {
	return tx.LockWithin(s, m, rank, p.cfg.Patience)
}

// AcquireCancel is Acquire with a cancellation channel, for the
// pessimistic side of a hedged read.
func (p *Policy) AcquireCancel(tx *core.Txn, s *core.Semantic, m core.ModeID, rank int, cancel <-chan struct{}) error {
	return tx.LockWithinCancel(s, m, rank, p.cfg.Patience, cancel)
}

// Retryable reports whether err is a stall — the one failure class the
// budgeted retry loop re-attempts. Cancellations, sheds, and breaker
// refusals are deliberate outcomes, not transient contention.
func Retryable(err error) bool {
	var stall *core.StallError
	return errors.As(err, &stall)
}

// Run executes section as one policied atomic section:
// gate admission → breaker admission → core.Atomically(section), with
// stalled attempts retried under the budget with jittered backoff. The
// section closure returns an error to abort (typically a *StallError
// from Acquire); held locks release through the section epilogue before
// the retry, so nothing is held across a backoff sleep.
func (p *Policy) Run(section func(tx *core.Txn) error) error {
	return p.retryLoop(func() error {
		var serr error
		core.Atomically(func(tx *core.Txn) { serr = section(tx) })
		return serr
	})
}

// retryLoop is the budgeted-retry engine shared by Run and HedgedRead.
func (p *Policy) retryLoop(attempt func() error) error {
	for try := 0; ; try++ {
		err := p.guarded(attempt)
		if err == nil || !Retryable(err) {
			return err
		}
		p.stallFailures.Add(1)
		if try >= p.cfg.Retries {
			return err
		}
		if p.budget != nil && !p.budget.TryWithdraw() {
			return errors.Join(ErrBudgetExhausted, err)
		}
		p.retries.Add(1)
		p.cfg.Backoff.sleep(try)
	}
}

// guarded runs one attempt inside the gate and breaker. The breaker's
// done callback runs via defer so a panicking section (chaos injection)
// still votes — as a failure — instead of leaking a half-open probe
// slot.
func (p *Policy) guarded(attempt func() error) error {
	if p.gate != nil {
		if err := p.gate.Enter(); err != nil {
			return err
		}
		defer p.gate.Exit()
	}
	var done func(bool)
	if p.breaker != nil {
		d, err := p.breaker.Allow()
		if err != nil {
			return err
		}
		done = d
	}
	p.runs.Add(1)
	ok := false
	defer func() {
		if done != nil {
			done(ok)
		}
	}()
	err := attempt()
	ok = err == nil || !Retryable(err)
	return err
}

// ObserveStall feeds one unified-stall-feed event into the breaker
// window. Wired by the Manager.
func (p *Policy) ObserveStall(ev core.StallEvent) {
	if p.breaker != nil {
		p.breaker.RecordStall(ev)
	}
}

// ObserveWaiters feeds one outstanding-waiter sample into the breaker
// window and applies the gate's pressure hysteresis. Wired by the
// Manager's control loop.
func (p *Policy) ObserveWaiters(n int64) {
	if p.breaker != nil {
		p.breaker.ObserveWaiters(n)
	}
	if p.gate != nil && p.cfg.Gate.PressureOn > 0 {
		if n >= p.cfg.Gate.PressureOn {
			p.gate.SetPressure(true)
		} else if n <= p.cfg.Gate.PressureOff {
			p.gate.SetPressure(false)
		}
	}
}

// Stats returns one telemetry row per enabled component plus the
// policy-level retry/hedge row, suitable for
// telemetry.Registry.RegisterPolicySource.
func (p *Policy) Stats() []telemetry.PolicyStats {
	out := []telemetry.PolicyStats{{
		Policy: p.name,
		Kind:   "policy",
		Counters: map[string]uint64{
			"runs":            p.runs.Load(),
			"stall_failures":  p.stallFailures.Load(),
			"retries":         p.retries.Load(),
			"hedges_launched": p.hedgesLaunched.Load(),
			"hedge_wins":      p.hedgeWins.Load(),
			"hedge_losses":    p.hedgeLosses.Load(),
			"hedge_cancels":   p.hedgeCancels.Load(),
		},
	}}
	if p.budget != nil {
		granted, denied := p.budget.Counts()
		out = append(out, telemetry.PolicyStats{
			Policy:   p.name,
			Kind:     "budget",
			Counters: map[string]uint64{"granted": granted, "denied": denied},
			Rates:    map[string]float64{"tokens": p.budget.Tokens()},
		})
	}
	if p.breaker != nil {
		out = append(out, p.breaker.Stats())
	}
	if p.gate != nil {
		out = append(out, p.gate.Stats())
	}
	return out
}
