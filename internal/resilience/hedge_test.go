package resilience_test

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/resilience"
)

// TestHedgedReadPessimisticFast: with no contention the pessimistic
// side finishes inside the hedge budget, the hedge never launches, and
// the pessimistic value is returned.
func TestHedgedReadPessimisticFast(t *testing.T) {
	tbl, keys := keyedTable(t)
	s := core.NewSemantic(tbl)
	km := keys.Mode(1)
	p := resilience.New("t", resilience.Config{
		Patience:    10 * time.Millisecond,
		HedgeBudget: 50 * time.Millisecond,
	})
	v, outcome, err := resilience.HedgedRead(p,
		func(tx *core.Txn, cancel <-chan struct{}) (int, error) {
			if err := p.AcquireCancel(tx, s, km, 0, cancel); err != nil {
				return 0, err
			}
			return 41, nil
		},
		func(tx *core.Txn) (int, bool) {
			if !tx.Observe(s, km, 0) {
				return 0, false
			}
			return 42, true
		})
	if err != nil || outcome != resilience.HedgePessimistic || v != 41 {
		t.Fatalf("got (%d, %v, %v), want (41, pessimistic, nil)", v, outcome, err)
	}
	if err := s.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}

// TestHedgedReadWinsOnStall: a pessimistic acquisition blocked by a
// live conflicting holder must lose to the optimistic hedge observing
// an unconflicted instance region, and the canceled pessimistic side
// must withdraw holding nothing.
func TestHedgedReadWinsOnStall(t *testing.T) {
	tbl, keys := keyedTable(t)
	s := core.NewSemantic(tbl)
	kmBlocked := keys.Mode(1) // held by the blocker for the whole test
	kmFree := keys.Mode(2)    // different φ bucket: observably quiet
	s.Acquire(kmBlocked)
	before := runtime.NumGoroutine()

	p := resilience.New("t", resilience.Config{
		Patience:    200 * time.Millisecond,
		HedgeBudget: time.Millisecond,
	})
	start := time.Now()
	v, outcome, err := resilience.HedgedRead(p,
		func(tx *core.Txn, cancel <-chan struct{}) (int, error) {
			if err := p.AcquireCancel(tx, s, kmBlocked, 0, cancel); err != nil {
				return 0, err
			}
			return 1, nil
		},
		func(tx *core.Txn) (int, bool) {
			if !tx.Observe(s, kmFree, 0) {
				return 0, false
			}
			return 2, true
		})
	if err != nil || outcome != resilience.HedgeWon || v != 2 {
		t.Fatalf("got (%d, %v, %v), want (2, hedge, nil)", v, outcome, err)
	}
	// The hedge decided the race long before the pessimistic patience.
	if waited := time.Since(start); waited > 100*time.Millisecond {
		t.Errorf("hedged read took %v — pessimistic patience leaked into the hedge path", waited)
	}
	var wins uint64
	for _, row := range p.Stats() {
		if row.Kind == "policy" {
			wins = row.Counters["hedge_wins"]
		}
	}
	if wins != 1 {
		t.Errorf("hedge_wins = %d, want 1", wins)
	}
	s.Release(kmBlocked)
	if err := s.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
	if n := core.WaitersOutstanding(); n != 0 {
		t.Fatalf("canceled pessimistic side leaked %d waiter(s)", n)
	}
	checkGoroutines(t, before)
}

// TestHedgedReadNoDoubleCommitHammer races hedged readers against a
// writer that keeps two counters equal inside one locked section. A
// torn read — from either side of the hedge, or from both sides
// committing — would observe a != b. Run under -race.
func TestHedgedReadNoDoubleCommitHammer(t *testing.T) {
	tbl, keys := keyedTable(t)
	s := core.NewSemantic(tbl)
	km := keys.Mode(3)
	// Guarded by km; written only inside locked sections. Atomics keep
	// the lock-free optimistic reads visible to the race detector as
	// synchronized — the torn-pair oracle (a == b in every serial state)
	// is still enforced purely by the semantic lock and validation.
	var a, b atomic.Int64

	p := resilience.New("t", resilience.Config{
		Patience:    5 * time.Millisecond,
		Retries:     50,
		Backoff:     resilience.Backoff{Base: 20 * time.Microsecond, Max: 200 * time.Microsecond},
		Budget:      &resilience.BudgetConfig{Capacity: 1000, RefillPerSec: 100000},
		HedgeBudget: 100 * time.Microsecond,
	})
	before := runtime.NumGoroutine()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = p.Run(func(tx *core.Txn) error {
				if err := p.Acquire(tx, s, km, 0); err != nil {
					return err
				}
				a.Add(1)
				time.Sleep(10 * time.Microsecond) // widen the torn window
				b.Add(1)
				return nil
			})
		}
	}()

	var reads, hedgeWins atomic.Int64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				type pair struct{ a, b int64 }
				v, outcome, err := resilience.HedgedRead(p,
					func(tx *core.Txn, cancel <-chan struct{}) (pair, error) {
						if err := p.AcquireCancel(tx, s, km, 0, cancel); err != nil {
							return pair{}, err
						}
						return pair{a.Load(), b.Load()}, nil
					},
					func(tx *core.Txn) (pair, bool) {
						if !tx.Observe(s, km, 0) {
							return pair{}, false
						}
						return pair{a.Load(), b.Load()}, true
					})
				if err != nil {
					if !resilience.Retryable(err) && !errors.Is(err, resilience.ErrBudgetExhausted) {
						t.Errorf("unexpected read error: %v", err)
						return
					}
					continue
				}
				if v.a != v.b {
					t.Errorf("torn read: a=%d b=%d (outcome %v)", v.a, v.b, outcome)
					return
				}
				reads.Add(1)
				if outcome == resilience.HedgeWon {
					hedgeWins.Add(1)
				}
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	if reads.Load() == 0 {
		t.Fatal("hammer completed no reads")
	}
	t.Logf("reads=%d hedgeWins=%d a=%d", reads.Load(), hedgeWins.Load(), a.Load())
	if err := s.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
	if n := core.WaitersOutstanding(); n != 0 {
		t.Fatalf("leaked %d waiter(s)", n)
	}
	checkGoroutines(t, before)
}
