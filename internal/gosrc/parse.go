// Package gosrc is the Go frontend of the semlockc compiler: it parses
// Go source files containing functions marked //semlock:atomic,
// translates their bodies into the atomic-section IR (internal/ir),
// runs the synthesis pipeline (internal/synth), and emits a rewritten
// Go file in which the synthesized semantic-locking statements are
// inserted as calls against the semadt/core runtime — the Go analogue
// of the paper's Java compiler.
//
// Supported input subset (documented in README):
//
//   - ADT parameters typed *semadt.Map / *semadt.Set / *semadt.Queue /
//     *semadt.Multimap;
//   - local ADT variables declared with a //semlock:var NAME CLASS
//     directive in the function's doc comment, assigned from ADT method
//     results or from semadt.NewX(...) allocations;
//   - optional //semlock:class NAME KEY directives refining the pointer
//     abstraction: the variable forms the equivalence class KEY instead
//     of its type's default class (the analogue of a points-to split);
//   - statements: (re)assignments, ADT method calls, if/else with
//     x == nil / x != nil or opaque conditions, for loops;
//   - everything else is treated as opaque thread-local computation.
package gosrc

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"strings"

	"repro/internal/ir"
)

// adtTypes maps semadt type names to ADT class/spec names.
var adtTypes = map[string]string{
	"Map":      "Map",
	"Set":      "Set",
	"Queue":    "Queue",
	"Multimap": "Multimap",
}

// ctorClasses maps semadt constructor names to class names.
var ctorClasses = map[string]string{
	"NewMap":      "Map",
	"NewSet":      "Set",
	"NewQueue":    "Queue",
	"NewMultimap": "Multimap",
}

// File is the parse result of one input file.
type File struct {
	Package   string
	Fset      *token.FileSet
	Functions []*Function
}

// Function is one //semlock:atomic function: its IR section, the
// original declaration (for signature reproduction), and the per-method
// rendering details the generator needs.
type Function struct {
	Name    string
	Decl    *ast.FuncDecl
	Section *ir.Atomic
	// ADTParams lists parameter names that are ADT pointers (emitted
	// with their original wrapper types).
	ADTParams map[string]string // name → class
	// LocalADTs lists directive-declared ADT locals (emitted as
	// core.Value and asserted at use).
	LocalADTs map[string]string // name → class
	// ClassKeys holds //semlock:class overrides: variable → class key.
	ClassKeys map[string]string
}

// ParseFile parses Go source and extracts every annotated function.
func ParseFile(filename string, src any) (*File, error) {
	fset := token.NewFileSet()
	af, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("gosrc: %w", err)
	}
	out := &File{Package: af.Name.Name, Fset: fset}
	for _, decl := range af.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		if !hasDirective(fd.Doc, "//semlock:atomic") {
			continue
		}
		fn, err := parseFunction(fset, fd)
		if err != nil {
			return nil, fmt.Errorf("gosrc: %s: %w", fd.Name.Name, err)
		}
		out.Functions = append(out.Functions, fn)
	}
	if len(out.Functions) == 0 {
		return nil, fmt.Errorf("gosrc: %s contains no //semlock:atomic functions", filename)
	}
	return out, nil
}

func hasDirective(doc *ast.CommentGroup, d string) bool {
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), d) {
			return true
		}
	}
	return false
}

func parseFunction(fset *token.FileSet, fd *ast.FuncDecl) (*Function, error) {
	fn := &Function{
		Name:      fd.Name.Name,
		Decl:      fd,
		ADTParams: map[string]string{},
		LocalADTs: map[string]string{},
		ClassKeys: map[string]string{},
	}
	sec := &ir.Atomic{Name: fd.Name.Name}

	// Parameters.
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			class := adtClassOfType(field.Type)
			typeText := renderNode(fset, field.Type)
			for _, name := range field.Names {
				if class != "" {
					fn.ADTParams[name.Name] = class
					sec.Vars = append(sec.Vars, ir.Param{Name: name.Name, Type: class, IsADT: true, NonNull: true})
				} else {
					sec.Vars = append(sec.Vars, ir.Param{Name: name.Name, Type: typeText})
				}
			}
		}
	}

	// //semlock:class NAME KEY directives (abstraction refinement).
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if !strings.HasPrefix(text, "//semlock:class ") {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(text, "//semlock:class "))
		if len(fields) != 2 {
			return nil, fmt.Errorf("bad directive %q (want //semlock:class NAME KEY)", text)
		}
		fn.ClassKeys[fields[0]] = fields[1]
	}

	// //semlock:var NAME CLASS directives.
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if !strings.HasPrefix(text, "//semlock:var ") {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(text, "//semlock:var "))
		if len(fields) != 2 {
			return nil, fmt.Errorf("bad directive %q (want //semlock:var NAME CLASS)", text)
		}
		name, class := fields[0], fields[1]
		if _, ok := adtTypes[class]; !ok {
			return nil, fmt.Errorf("directive %q: unknown ADT class %q", text, class)
		}
		fn.LocalADTs[name] = class
		sec.Vars = append(sec.Vars, ir.Param{Name: name, Type: class, IsADT: true})
	}

	p := &funcParser{fset: fset, fn: fn, sec: sec}
	body, err := p.block(fd.Body.List)
	if err != nil {
		return nil, err
	}
	sec.Body = body
	fn.Section = sec
	return fn, nil
}

// adtClassOfType recognizes *semadt.X parameter types.
func adtClassOfType(t ast.Expr) string {
	star, ok := t.(*ast.StarExpr)
	if !ok {
		return ""
	}
	sel, ok := star.X.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "semadt" {
		return ""
	}
	return adtTypes[sel.Sel.Name]
}

type funcParser struct {
	fset *token.FileSet
	fn   *Function
	sec  *ir.Atomic
}

func (p *funcParser) isADT(name string) bool {
	_, a := p.fn.ADTParams[name]
	_, b := p.fn.LocalADTs[name]
	return a || b
}

func (p *funcParser) block(stmts []ast.Stmt) (ir.Block, error) {
	var out ir.Block
	for _, s := range stmts {
		irs, err := p.stmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, irs...)
	}
	return out, nil
}

func (p *funcParser) stmt(s ast.Stmt) ([]ir.Stmt, error) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		return p.assign(x)
	case *ast.ExprStmt:
		if call, recv, method, ok := p.adtCall(x.X); ok {
			c, err := p.lowerCall(call, recv, method, "")
			if err != nil {
				return nil, err
			}
			return []ir.Stmt{c}, nil
		}
		// Opaque side effect (e.g. a helper call on thread-local state).
		return []ir.Stmt{&ir.Assign{Lhs: "_", Rhs: p.opaque(x.X)}}, nil
	case *ast.IfStmt:
		return p.ifStmt(x)
	case *ast.ForStmt:
		return p.forStmt(x)
	case *ast.DeclStmt:
		// var declarations: record names, no IR effect.
		return nil, nil
	case *ast.ReturnStmt:
		return nil, fmt.Errorf("return inside an atomic section is not supported (line %d)",
			p.fset.Position(s.Pos()).Line)
	case *ast.IncDecStmt:
		if id, ok := x.X.(*ast.Ident); ok {
			return []ir.Stmt{&ir.Assign{Lhs: id.Name, Rhs: ir.Opaque{
				Text:  renderNode(p.fset, x),
				Reads: []string{id.Name},
			}}}, nil
		}
		return []ir.Stmt{&ir.Assign{Lhs: "_", Rhs: p.opaqueText(renderNode(p.fset, x), nil)}}, nil
	default:
		return nil, fmt.Errorf("unsupported statement %T (line %d)", s, p.fset.Position(s.Pos()).Line)
	}
}

func (p *funcParser) assign(x *ast.AssignStmt) ([]ir.Stmt, error) {
	if len(x.Lhs) != 1 || len(x.Rhs) != 1 {
		return nil, fmt.Errorf("multi-assignments are not supported (line %d)", p.fset.Position(x.Pos()).Line)
	}
	lhsID, ok := x.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, fmt.Errorf("assignment to non-identifier (line %d)", p.fset.Position(x.Pos()).Line)
	}
	lhs := lhsID.Name
	rhs := x.Rhs[0]

	// ADT allocation: semadt.NewX(...)
	if class, ok := p.ctorClass(rhs); ok {
		if !p.isADT(lhs) {
			return nil, fmt.Errorf("variable %q allocated an ADT but lacks a //semlock:var directive", lhs)
		}
		return []ir.Stmt{&ir.Assign{Lhs: lhs, NewType: class}}, nil
	}
	// ADT method call result.
	if call, recv, method, ok := p.adtCall(rhs); ok {
		c, err := p.lowerCall(call, recv, method, lhs)
		if err != nil {
			return nil, err
		}
		return []ir.Stmt{c}, nil
	}
	// Plain thread-local assignment.
	switch r := rhs.(type) {
	case *ast.Ident:
		if r.Name == "nil" {
			return []ir.Stmt{&ir.Assign{Lhs: lhs, Rhs: p.opaqueText("nil", nil)}}, nil
		}
		return []ir.Stmt{&ir.Assign{Lhs: lhs, Rhs: ir.VarRef{Name: r.Name}}}, nil
	case *ast.BasicLit:
		return []ir.Stmt{&ir.Assign{Lhs: lhs, Rhs: ir.Lit{Val: litValue(r)}}}, nil
	default:
		return []ir.Stmt{&ir.Assign{Lhs: lhs, Rhs: p.opaque(rhs)}}, nil
	}
}

// ctorClass recognizes semadt.NewX(...) allocations.
func (p *funcParser) ctorClass(e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "semadt" {
		return "", false
	}
	class, ok := ctorClasses[sel.Sel.Name]
	return class, ok
}

// adtCall recognizes recv.Method(...) on an ADT variable, possibly
// through a generated-style assertion recv.(*semadt.X).Method(...).
func (p *funcParser) adtCall(e ast.Expr) (*ast.CallExpr, string, string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, "", "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", "", false
	}
	switch recv := sel.X.(type) {
	case *ast.Ident:
		if p.isADT(recv.Name) {
			return call, recv.Name, sel.Sel.Name, true
		}
	case *ast.TypeAssertExpr:
		if id, ok := recv.X.(*ast.Ident); ok && p.isADT(id.Name) {
			return call, id.Name, sel.Sel.Name, true
		}
	}
	return nil, "", "", false
}

// lowerCall translates an ADT method call. Method names are lowered to
// the spec's convention (Get → get).
func (p *funcParser) lowerCall(call *ast.CallExpr, recv, method, assign string) (ir.Stmt, error) {
	args := make([]ir.Expr, len(call.Args))
	for i, a := range call.Args {
		switch arg := a.(type) {
		case *ast.Ident:
			if arg.Name == "nil" {
				args[i] = ir.Opaque{Text: "nil"}
			} else {
				args[i] = ir.VarRef{Name: arg.Name}
			}
		case *ast.BasicLit:
			args[i] = ir.Lit{Val: litValue(arg)}
		default:
			args[i] = p.opaque(a)
		}
	}
	return &ir.Call{
		Recv:   recv,
		Method: lowerMethod(method),
		Args:   args,
		Assign: assign,
	}, nil
}

// lowerMethod maps Go method names (Get, PutIfAbsent) to spec names
// (get, putIfAbsent).
func lowerMethod(m string) string {
	if m == "" {
		return m
	}
	return strings.ToLower(m[:1]) + m[1:]
}

func (p *funcParser) ifStmt(x *ast.IfStmt) ([]ir.Stmt, error) {
	if x.Init != nil {
		return nil, fmt.Errorf("if with init statement is not supported (line %d)", p.fset.Position(x.Pos()).Line)
	}
	cond := p.cond(x.Cond)
	thenB, err := p.block(x.Body.List)
	if err != nil {
		return nil, err
	}
	var elseB ir.Block
	switch e := x.Else.(type) {
	case nil:
	case *ast.BlockStmt:
		elseB, err = p.block(e.List)
		if err != nil {
			return nil, err
		}
	case *ast.IfStmt:
		elseB, err = p.ifStmt(e)
		if err != nil {
			return nil, err
		}
	}
	return []ir.Stmt{&ir.If{Cond: cond, Then: thenB, Else: elseB}}, nil
}

func (p *funcParser) forStmt(x *ast.ForStmt) ([]ir.Stmt, error) {
	var out []ir.Stmt
	if x.Init != nil {
		init, err := p.stmt(x.Init)
		if err != nil {
			return nil, err
		}
		out = append(out, init...)
	}
	var cond ir.Cond = ir.OpaqueCond{Text: "true"}
	if x.Cond != nil {
		cond = p.cond(x.Cond)
	}
	body, err := p.block(x.Body.List)
	if err != nil {
		return nil, err
	}
	if x.Post != nil {
		post, err := p.stmt(x.Post)
		if err != nil {
			return nil, err
		}
		body = append(body, post...)
	}
	out = append(out, &ir.While{Cond: cond, Body: body})
	return out, nil
}

// cond recognizes x == nil / x != nil; everything else is opaque.
func (p *funcParser) cond(e ast.Expr) ir.Cond {
	if be, ok := e.(*ast.BinaryExpr); ok {
		if id, lit, ok2 := identVsNil(be); ok2 {
			_ = lit
			if be.Op == token.EQL {
				return ir.IsNull{Var: id}
			}
			if be.Op == token.NEQ {
				return ir.NotNull{Var: id}
			}
		}
	}
	return ir.OpaqueCond{Text: renderNode(p.fset, e), Reads: identsIn(e)}
}

func identVsNil(be *ast.BinaryExpr) (string, string, bool) {
	x, okX := be.X.(*ast.Ident)
	y, okY := be.Y.(*ast.Ident)
	if okX && okY && y.Name == "nil" {
		return x.Name, "nil", true
	}
	if okX && okY && x.Name == "nil" {
		return y.Name, "nil", true
	}
	return "", "", false
}

func (p *funcParser) opaque(e ast.Expr) ir.Opaque {
	return p.opaqueText(renderNode(p.fset, e), identsIn(e))
}

func (p *funcParser) opaqueText(text string, reads []string) ir.Opaque {
	return ir.Opaque{Text: text, Reads: reads}
}

// identsIn collects identifier names read by an expression.
func identsIn(e ast.Expr) []string {
	var out []string
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name != "nil" && id.Name != "true" && id.Name != "false" {
			out = append(out, id.Name)
		}
		return true
	})
	return out
}

func litValue(l *ast.BasicLit) any {
	switch l.Kind {
	case token.INT:
		var v int
		fmt.Sscanf(l.Value, "%d", &v)
		return v
	case token.STRING:
		return strings.Trim(l.Value, `"`)
	default:
		return l.Value
	}
}

func renderNode(fset *token.FileSet, n ast.Node) string {
	var b strings.Builder
	printer.Fprint(&b, fset, n)
	return b.String()
}
