package gosrc

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCommittedGeneratedFilesUpToDate regenerates the committed compiler
// examples from their annotated inputs and compares byte for byte — the
// committed outputs must always match what semlockc produces today.
func TestCommittedGeneratedFilesUpToDate(t *testing.T) {
	cases := []struct {
		input, output string
	}{
		{"../../examples/compiler/demo/input.go.txt", "../../examples/compiler/demo/demo_semlock.go"},
		{"../../examples/compiler/cia/input.go.txt", "../../examples/compiler/cia/cia_semlock.go"},
	}
	for _, c := range cases {
		t.Run(filepath.Base(filepath.Dir(c.input)), func(t *testing.T) {
			f, err := ParseFile(c.input, nil)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Compile(f)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Generate(f, res)
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(c.output)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != want {
				t.Errorf("%s is stale; regenerate with:\n  go run ./cmd/semlockc -in %s -out %s",
					c.output, c.input, c.output)
			}
		})
	}
}
