package gosrc

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/ir"
)

// batchSrc is a two-function file whose second function receives a fused
// prologue: Set appears first in the program, so it sorts before Map in
// the lock order, and Both's first call pulls the later Set lock up to
// it (§3.3's LS), producing two adjacent acquisitions that StageFuse
// merges.
const batchSrc = `package demo

import "repro/internal/semadt"

//semlock:atomic
func Warm(s *semadt.Set, k int) {
	s.Add(k)
}

//semlock:atomic
func Both(m *semadt.Map, s2 *semadt.Set, k, j int) {
	m.Put(k, s2)
	s2.Add(j)
}
`

// TestGenerateFusedBatch: the compiler fuses the adjacent locks of Both
// and gosrc emits a single tx.LockBatch call with one BatchLock per
// constituent, in rank order; the generated source still parses.
func TestGenerateFusedBatch(t *testing.T) {
	f, err := ParseFile("batch.go", batchSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	out := ir.Print(res.Sections[1])
	if !strings.Contains(out, "lockBatch") {
		t.Fatalf("expected a fused prologue in Both:\n%s", out)
	}
	src, err := Generate(f, res)
	if err != nil {
		t.Fatalf("Generate: %v\n%s", err, src)
	}
	fset := token.NewFileSet()
	if _, perr := parser.ParseFile(fset, "gen.go", src, 0); perr != nil {
		t.Fatalf("generated source does not parse: %v\n%s", perr, src)
	}
	if !strings.Contains(src, "tx.LockBatch(") {
		t.Errorf("generated source missing tx.LockBatch call:\n%s", src)
	}
	for _, want := range []string{
		"core.BatchLock{Sem: semadt.SemOf(s2), Mode: ",
		"core.BatchLock{Sem: semadt.SemOf(m), Mode: ",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q:\n%s", want, src)
		}
	}
	// Rank order inside the batch: the Set constituent precedes the Map
	// constituent.
	if i, j := strings.Index(src, "SemOf(s2)"), strings.Index(src, "SemOf(m), Mode"); i < 0 || j < 0 || i > j {
		t.Errorf("batch constituents out of rank order (s2 at %d, m at %d)", i, j)
	}
}
