package gosrc

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
)

// multiSrc has two annotated functions over one shared Map — the
// restrictions-graph and lock order must be computed across both
// sections (§3.2: "computed for all the atomic sections in the
// program").
const multiSrc = `package registry

import "repro/internal/semadt"

//semlock:atomic
//semlock:var members Set
func AddMember(index *semadt.Map, group int, member int) {
	members := index.Get(group)
	if members == nil {
		members = semadt.NewSet(nil)
		index.Put(group, members)
	}
	members.(*semadt.Set).Add(member)
}

//semlock:atomic
//semlock:var members Set
func HasMember(index *semadt.Map, group int, member int) {
	members := index.Get(group)
	found := false
	if members != nil {
		found = members.(*semadt.Set).Contains(member)
	}
	_ = found
}
`

func TestMultiFunctionCompile(t *testing.T) {
	f, err := ParseFile("registry.go", multiSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Functions) != 2 {
		t.Fatalf("parsed %d functions, want 2", len(f.Functions))
	}
	res, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	// Map must rank before Set in both sections (Set instances are
	// obtained through the Map).
	if res.Rank("Map") >= res.Rank("Set") {
		t.Errorf("Map rank %d should precede Set rank %d", res.Rank("Map"), res.Rank("Set"))
	}
	add := ir.Print(res.Sections[0])
	has := ir.Print(res.Sections[1])
	if !strings.Contains(add, "index.lock({get(group),put(group,*)})") {
		t.Errorf("AddMember plan:\n%s", add)
	}
	if !strings.Contains(add, "members.lock({add(member)})") {
		t.Errorf("AddMember must lock the member set for add:\n%s", add)
	}
	if !strings.Contains(has, "index.lock({get(group)})") {
		t.Errorf("HasMember plan:\n%s", has)
	}
	if !strings.Contains(has, "members.lock({contains(member)})") {
		t.Errorf("HasMember must lock the member set for contains:\n%s", has)
	}
	// Both sections share the same Map mode table.
	if res.Tables["Map"] == nil || res.Tables["Set"] == nil {
		t.Fatal("tables missing")
	}
	// Reads commute: contains modes always commute with each other.
	tbl := res.Tables["Set"]
	cRef := tbl.Set(lockSetOf(t, res.Sections[1], "members"))
	m1 := cRef.Mode(1)
	if !tbl.Commute(m1, m1) {
		t.Error("contains modes must self-commute")
	}

	// Generated output compiles both functions against one plan.
	src, err := Generate(f, res)
	if err != nil {
		t.Fatalf("%v\n%s", err, src)
	}
	for _, want := range []string{"func AddMember(", "func HasMember(", "_semlockPlan"} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}

// lockSetOf finds the symbolic set the section's first lock of v uses.
func lockSetOf(t *testing.T, sec *ir.Atomic, v string) core.SymSet {
	t.Helper()
	var found core.SymSet
	var walk func(b ir.Block)
	walk = func(b ir.Block) {
		for _, s := range b {
			switch x := s.(type) {
			case *ir.LV:
				if x.Var == v && found == nil {
					found = x.Set
				}
			case *ir.If:
				walk(x.Then)
				walk(x.Else)
			case *ir.While:
				walk(x.Body)
			}
		}
	}
	walk(sec.Body)
	if found == nil {
		t.Fatalf("no lock of %q", v)
	}
	return found
}
