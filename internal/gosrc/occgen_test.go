package gosrc

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/synth"
)

// occSrc has a read-only function (Lookup: both calls declared
// observers) and a mutator (Store). Compiling at StageOptimistic must
// wrap exactly Lookup in the hybrid envelope.
const occSrc = `package demo

import "repro/internal/semadt"

//semlock:atomic
func Lookup(m *semadt.Map, s *semadt.Set, k, j int) {
	v := m.Get(k)
	_ = v
	has := s.Contains(j)
	_ = has
}

//semlock:atomic
func Store(m *semadt.Map, s *semadt.Set, k, j int) {
	m.Put(k, j)
	s.Add(j)
}
`

// TestGenerateOptimistic: CompileAt(StageOptimistic) wraps the read-only
// function, Generate emits tx.TryOptimistic with tx.Observe calls and
// the unchanged pessimistic fallback, and the generated source parses.
func TestGenerateOptimistic(t *testing.T) {
	f, err := ParseFile("occ.go", occSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CompileAt(f, synth.StageOptimistic)
	if err != nil {
		t.Fatal(err)
	}
	if out := ir.Print(res.Sections[0]); !strings.Contains(out, "optimistic {") {
		t.Fatalf("Lookup not rewritten:\n%s", out)
	}
	if out := ir.Print(res.Sections[1]); strings.Contains(out, "optimistic {") {
		t.Fatalf("Store must stay pessimistic:\n%s", out)
	}

	src, err := Generate(f, res)
	if err != nil {
		t.Fatalf("Generate: %v\n%s", err, src)
	}
	fset := token.NewFileSet()
	if _, perr := parser.ParseFile(fset, "gen.go", src, 0); perr != nil {
		t.Fatalf("generated source does not parse: %v\n%s", perr, src)
	}
	for _, want := range []string{
		"if !tx.TryOptimistic(func(tx *core.Txn) bool {",
		"if !tx.Observe(semadt.SemOf(m), ",
		"if !tx.Observe(semadt.SemOf(s), ",
		"return false",
		"return true",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q:\n%s", want, src)
		}
	}
	// The fallback still locks: the pessimistic acquisitions survive
	// inside the envelope's else-branch.
	if !strings.Contains(src, "tx.Lock") {
		t.Errorf("generated source lost the pessimistic fallback:\n%s", src)
	}
	// The mutator keeps plain locking with no envelope of its own:
	// exactly one TryOptimistic in the file.
	if n := strings.Count(src, "tx.TryOptimistic"); n != 1 {
		t.Errorf("expected exactly 1 TryOptimistic, found %d:\n%s", n, src)
	}
}
