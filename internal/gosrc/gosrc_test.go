package gosrc

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/ir"
)

// demoSrc is a Fig 1-shaped annotated input (the Intruder-inspired
// section) in the supported Go subset.
const demoSrc = `package demo

import "repro/internal/semadt"

//semlock:atomic
//semlock:var set Set
func Process(m *semadt.Map, q *semadt.Queue, id, x, y int, flag bool) {
	set := m.Get(id)
	if set == nil {
		set = semadt.NewSet(nil)
		m.Put(id, set)
	}
	set.(*semadt.Set).Add(x)
	set.(*semadt.Set).Add(y)
	if flag {
		q.Enqueue(set)
		m.Remove(id)
	}
}
`

func parseDemo(t *testing.T) *File {
	t.Helper()
	f, err := ParseFile("demo.go", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestParseDemo: the frontend reconstructs the Fig 1 IR from Go source.
func TestParseDemo(t *testing.T) {
	f := parseDemo(t)
	if f.Package != "demo" || len(f.Functions) != 1 {
		t.Fatalf("parse: pkg=%s funcs=%d", f.Package, len(f.Functions))
	}
	fn := f.Functions[0]
	if fn.Name != "Process" {
		t.Fatalf("name = %s", fn.Name)
	}
	if fn.ADTParams["m"] != "Map" || fn.ADTParams["q"] != "Queue" {
		t.Errorf("ADT params = %v", fn.ADTParams)
	}
	if fn.LocalADTs["set"] != "Set" {
		t.Errorf("locals = %v", fn.LocalADTs)
	}
	got := ir.Print(fn.Section)
	want := `atomic Process {
  set=m.get(id);
  if(set==null) {
    set=new Set();
    m.put(id, set);
  }
  set.add(x);
  set.add(y);
  if(flag) {
    q.enqueue(set);
    m.remove(id);
  }
}
`
	if got != want {
		t.Errorf("parsed IR:\n%s\nwant:\n%s", got, want)
	}
}

// TestCompileDemo: the synthesized plan matches the Fig 2 shape.
func TestCompileDemo(t *testing.T) {
	f := parseDemo(t)
	res, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	out := ir.Print(res.Sections[0])
	for _, want := range []string{
		"m.lock({get(id),put(id,*),remove(id)});",
		"set.lock({add(*)});",
		"q.lock({enqueue(set)});",
		"q.unlockAll();",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("plan missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(PlanText(res), "Map: 64 modes") {
		t.Error("PlanText missing class summary")
	}
}

// TestGenerateDemo: the rewritten Go parses and contains the inserted
// locking statements. (examples/compiled holds a committed, compiling
// copy of this output.)
func TestGenerateDemo(t *testing.T) {
	f := parseDemo(t)
	res, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Generate(f, res)
	if err != nil {
		t.Fatalf("Generate: %v\n%s", err, src)
	}
	fset := token.NewFileSet()
	if _, perr := parser.ParseFile(fset, "gen.go", src, 0); perr != nil {
		t.Fatalf("generated source does not parse: %v\n%s", perr, src)
	}
	for _, want := range []string{
		"func Process(m *semadt.Map, q *semadt.Queue, id, x, y int, flag bool) {",
		"core.Atomically(func(tx *core.Txn) {",
		"tx.Lock(semadt.SemOf(m), _semlockMode(_semlockSite0, semadt.ID(id)), 0)",
		"tx.Lock(semadt.SemOf(set)",
		"set = semadt.NewSet(_semlockTblSet)",
		"set.(*semadt.Set).Add(x)",
		"tx.UnlockInstance(semadt.SemOf(q))",
		"m.Remove(id)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q:\n%s", want, src)
		}
	}
}

// TestParseErrors: unsupported constructs fail with diagnostics.
func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no annotation": `package p
func F() {}`,
		"return inside": `package p
//semlock:atomic
func F(m *semadt.Map) { if m != nil { return } }`,
		"bad directive": `package p
//semlock:atomic
//semlock:var set
func F(m *semadt.Map) {}`,
		"unknown class": `package p
//semlock:atomic
//semlock:var s Blob
func F(m *semadt.Map) {}`,
		"ctor without directive": `package p
//semlock:atomic
func F(m *semadt.Map) { s := semadt.NewSet(nil); m.Put(1, s) }`,
	}
	for name, src := range cases {
		if _, err := ParseFile(name+".go", src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

// TestParseLoops: for loops lower to While (+ hoisted init, appended post).
func TestParseLoops(t *testing.T) {
	src := `package p

//semlock:atomic
func Sum(m *semadt.Map, n int) {
	sum := 0
	for i := 0; i < n; i++ {
		v := m.Get(i)
		sum = sum + 1
		_ = v
	}
}
`
	f, err := ParseFile("loop.go", src)
	if err != nil {
		t.Fatal(err)
	}
	out := ir.Print(f.Functions[0].Section)
	for _, want := range []string{"while(i < n)", "v=m.get(i);", "i++"} {
		if !strings.Contains(out, want) {
			t.Errorf("loop IR missing %q:\n%s", want, out)
		}
	}
	// The loop makes m self-reachable but m is never reassigned, so no
	// wrapping is needed and synthesis succeeds.
	if _, err := Compile(f); err != nil {
		t.Fatalf("Compile: %v", err)
	}
}
