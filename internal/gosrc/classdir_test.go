package gosrc

import (
	"strings"
	"testing"
)

// graphSrc uses //semlock:class to split the two multimaps into
// separate equivalence classes — the compiler-facing form of the Graph
// module's abstraction.
const graphSrc = `package g

import "repro/internal/semadt"

//semlock:atomic
//semlock:class succs MM$succs
//semlock:class preds MM$preds
func InsertEdge(succs *semadt.Multimap, preds *semadt.Multimap, s int, d int) {
	ok := succs.Put(s, d)
	if ok {
		preds.Put(d, s)
	}
}

//semlock:atomic
//semlock:class succs MM$succs
//semlock:class preds MM$preds
func FindSuccessors(succs *semadt.Multimap, preds *semadt.Multimap, n int) {
	out := succs.Get(n)
	_ = out
}
`

// TestClassDirective: the directive splits the classes, giving each
// multimap its own table and rank instead of one merged Multimap class.
func TestClassDirective(t *testing.T) {
	f, err := ParseFile("g.go", graphSrc)
	if err != nil {
		t.Fatal(err)
	}
	if f.Functions[0].ClassKeys["succs"] != "MM$succs" {
		t.Fatalf("class keys = %v", f.Functions[0].ClassKeys)
	}
	res, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables["MM$succs"] == nil || res.Tables["MM$preds"] == nil {
		t.Fatalf("tables for split classes missing: %v", keysOf(res.Tables))
	}
	if res.Rank("MM$succs") == res.Rank("MM$preds") {
		t.Error("split classes must have distinct ranks")
	}
	out := PlanText(res)
	if !strings.Contains(out, "succs.lock({put(d,s),put(s,d)})") &&
		!strings.Contains(out, "succs.lock({put(s,d)})") {
		t.Errorf("insert plan unexpected:\n%s", out)
	}
}

// TestClassDirectiveBad: malformed directives are rejected.
func TestClassDirectiveBad(t *testing.T) {
	src := `package g
//semlock:atomic
//semlock:class onlyname
func F(m *semadt.Map) {}`
	if _, err := ParseFile("g.go", src); err == nil {
		t.Error("malformed //semlock:class must fail")
	}
}

// TestWithoutClassDirectiveMerges: without directives the two multimaps
// share one class and the same-class pair needs LV2's dynamic ordering.
func TestWithoutClassDirectiveMerges(t *testing.T) {
	src := strings.ReplaceAll(graphSrc, "//semlock:class succs MM$succs\n", "")
	src = strings.ReplaceAll(src, "//semlock:class preds MM$preds\n", "")
	f, err := ParseFile("g.go", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables["Multimap"] == nil {
		t.Fatalf("merged class table missing: %v", keysOf(res.Tables))
	}
	out := PlanText(res)
	if !strings.Contains(out, "lock2(preds,succs") {
		t.Errorf("same-class pair should use dynamically ordered locking:\n%s", out)
	}
}

func keysOf[V any](m map[string]V) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
