// Package serial checks serializability of recorded concurrent
// executions — the correctness property S2PL guarantees (§2.3: "An
// execution that satisfies S2PL is a serializable execution").
//
// A test runs a small burst of transactions concurrently, recording
// each transaction's ADT operations together with their observed
// results. The checker then searches for a serial order of the
// transactions whose sequential replay against model ADTs reproduces
// every observed result. If no such order exists the execution was not
// serializable. The search is exponential in the burst size, so bursts
// are kept small (≤ ~8 transactions) and repeated many times.
package serial

import (
	"fmt"
	"reflect"

	"repro/internal/core"
)

// OpRecord is one observed ADT operation: which instance (by id), the
// operation, and the result the concurrent execution returned.
type OpRecord struct {
	Instance uint64
	Op       core.Op
	Result   core.Value
}

// TxnLog is one transaction's recorded operations, in program order.
type TxnLog struct {
	ID  int
	Ops []OpRecord
}

// Model replays operations sequentially; implementations are the
// reference (single-threaded) ADT semantics.
type Model interface {
	// Apply executes op on the model instance and returns its result.
	Apply(instance uint64, op core.Op) core.Value
	// Clone returns a deep copy (the search backtracks).
	Clone() Model
}

// Check reports whether some permutation of the logs replays against
// the model (starting from initial) reproducing every recorded result.
// It returns the witness order when one exists.
func Check(initial Model, logs []TxnLog) (order []int, ok bool) {
	n := len(logs)
	if n > 10 {
		panic(fmt.Sprintf("serial: burst of %d transactions is too large to check", n))
	}
	used := make([]bool, n)
	var rec func(m Model, chosen []int) ([]int, bool)
	rec = func(m Model, chosen []int) ([]int, bool) {
		if len(chosen) == n {
			return append([]int(nil), chosen...), true
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			next := m.Clone()
			if !replay(next, logs[i]) {
				continue
			}
			used[i] = true
			if res, ok := rec(next, append(chosen, logs[i].ID)); ok {
				used[i] = false
				return res, true
			}
			used[i] = false
		}
		return nil, false
	}
	return rec(initial, nil)
}

// replay applies one transaction's ops to the model and compares
// results.
func replay(m Model, log TxnLog) bool {
	for _, r := range log.Ops {
		got := m.Apply(r.Instance, r.Op)
		if !resultEqual(got, r.Result) {
			return false
		}
	}
	return true
}

func resultEqual(a, b core.Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	// Slices (multimap gets) compare as multisets.
	av, aok := a.([]core.Value)
	bv, bok := b.([]core.Value)
	if aok && bok {
		if len(av) != len(bv) {
			return false
		}
		counts := make(map[core.Value]int, len(av))
		for _, x := range av {
			counts[x]++
		}
		for _, x := range bv {
			counts[x]--
			if counts[x] < 0 {
				return false
			}
		}
		return true
	}
	return reflect.DeepEqual(a, b)
}

// ---- reference models ----

// MapsAndSets is a Model covering the Map, Set, Queue and Multimap
// classes used by the paper's running examples and modules. Instances
// are keyed by their semantic-lock ids; unknown instances materialize
// empty on first use.
type MapsAndSets struct {
	Kind map[uint64]string // instance id → "Map" | "Set" | "Queue" | "Multimap"
	maps map[uint64]map[core.Value]core.Value
	sets map[uint64]map[core.Value]bool
	qs   map[uint64][]core.Value
	mms  map[uint64]map[core.Value]map[core.Value]bool
}

// NewMapsAndSets creates an empty model with the given instance kinds.
func NewMapsAndSets(kind map[uint64]string) *MapsAndSets {
	return &MapsAndSets{
		Kind: kind,
		maps: map[uint64]map[core.Value]core.Value{},
		sets: map[uint64]map[core.Value]bool{},
		qs:   map[uint64][]core.Value{},
		mms:  map[uint64]map[core.Value]map[core.Value]bool{},
	}
}

// Clone deep-copies the model state.
func (m *MapsAndSets) Clone() Model {
	c := NewMapsAndSets(m.Kind)
	for id, mm := range m.maps {
		n := make(map[core.Value]core.Value, len(mm))
		for k, v := range mm {
			n[k] = v
		}
		c.maps[id] = n
	}
	for id, ss := range m.sets {
		n := make(map[core.Value]bool, len(ss))
		for k := range ss {
			n[k] = true
		}
		c.sets[id] = n
	}
	for id, q := range m.qs {
		c.qs[id] = append([]core.Value(nil), q...)
	}
	for id, mm := range m.mms {
		n := make(map[core.Value]map[core.Value]bool, len(mm))
		for k, vs := range mm {
			nv := make(map[core.Value]bool, len(vs))
			for v := range vs {
				nv[v] = true
			}
			n[k] = nv
		}
		c.mms[id] = n
	}
	return c
}

// Apply executes one operation per the sequential ADT specifications.
func (m *MapsAndSets) Apply(inst uint64, op core.Op) core.Value {
	switch m.Kind[inst] {
	case "Map":
		mm := m.maps[inst]
		if mm == nil {
			mm = map[core.Value]core.Value{}
			m.maps[inst] = mm
		}
		switch op.Method {
		case "get":
			return mm[op.Args[0]]
		case "put":
			old := mm[op.Args[0]]
			mm[op.Args[0]] = op.Args[1]
			return old
		case "remove":
			old := mm[op.Args[0]]
			delete(mm, op.Args[0])
			return old
		case "containsKey":
			_, ok := mm[op.Args[0]]
			return ok
		case "size":
			return len(mm)
		}
	case "Set":
		ss := m.sets[inst]
		if ss == nil {
			ss = map[core.Value]bool{}
			m.sets[inst] = ss
		}
		switch op.Method {
		case "add":
			ss[op.Args[0]] = true
			return nil
		case "remove":
			delete(ss, op.Args[0])
			return nil
		case "contains":
			return ss[op.Args[0]]
		case "size":
			return len(ss)
		case "clear":
			m.sets[inst] = map[core.Value]bool{}
			return nil
		}
	case "Multimap":
		mm := m.mms[inst]
		if mm == nil {
			mm = map[core.Value]map[core.Value]bool{}
			m.mms[inst] = mm
		}
		switch op.Method {
		case "put":
			k, v := op.Args[0], op.Args[1]
			if mm[k] == nil {
				mm[k] = map[core.Value]bool{}
			}
			if mm[k][v] {
				return false
			}
			mm[k][v] = true
			return true
		case "get":
			var out []core.Value
			for v := range mm[op.Args[0]] {
				out = append(out, v)
			}
			return out
		case "remove":
			k, v := op.Args[0], op.Args[1]
			if !mm[k][v] {
				return false
			}
			delete(mm[k], v)
			return true
		case "removeAll":
			var out []core.Value
			for v := range mm[op.Args[0]] {
				out = append(out, v)
			}
			delete(mm, op.Args[0])
			return out
		case "containsEntry":
			return mm[op.Args[0]][op.Args[1]]
		case "size":
			n := 0
			for _, vs := range mm {
				n += len(vs)
			}
			return n
		}
	case "Queue":
		switch op.Method {
		case "enqueue":
			m.qs[inst] = append(m.qs[inst], op.Args[0])
			return nil
		case "dequeue":
			q := m.qs[inst]
			if len(q) == 0 {
				return nil
			}
			v := q[0]
			m.qs[inst] = q[1:]
			return v
		case "size":
			return len(m.qs[inst])
		case "isEmpty":
			return len(m.qs[inst]) == 0
		}
	}
	panic(fmt.Sprintf("serial: model cannot apply %s on %s instance %d", op, m.Kind[inst], inst))
}
