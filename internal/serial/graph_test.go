package serial_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/adtspecs"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/modules/graph"
	"repro/internal/serial"
	"repro/internal/synth"
)

// TestGraphBurstsSerializable runs bursts of the Graph module's four
// synthesized sections (find-succ / find-pred / insert / remove) over a
// tiny node space through the interpreter and demands a serial witness
// for every burst — the Multimap-typed instance of the §2.3 theorem.
func TestGraphBurstsSerializable(t *testing.T) {
	res, err := synth.Synthesize(&synth.Program{
		Sections: graph.Sections(),
		Specs:    adtspecs.All(),
		ClassOf:  graph.ClassOf,
	}, synth.Options{StopAfter: synth.StageRefine, Phi: core.NewPhi(4), MaxModes: 64})
	if err != nil {
		t.Fatal(err)
	}
	e := interp.NewExecutor(res, true)
	e.EvalOpaque = func(text string, env map[string]core.Value) core.Value {
		if text == "ok" {
			b, _ := env["ok"].(bool)
			return b
		}
		panic("unexpected opaque " + text)
	}

	const bursts = 40
	const perBurst = 6
	for b := 0; b < bursts; b++ {
		succs := e.NewInstance("Multimap$succs", "Multimap")
		preds := e.NewInstance("Multimap$preds", "Multimap")
		kinds := map[uint64]string{
			succs.Sem.ID(): "Multimap",
			preds.Sem.ID(): "Multimap",
		}
		var mu sync.Mutex
		logs := make([]serial.TxnLog, perBurst)
		var wg sync.WaitGroup
		for i := 0; i < perBurst; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(b*100 + i)))
				var ops []serial.OpRecord
				env := map[string]core.Value{
					"succs": succs, "preds": preds,
					"s": rng.Intn(3), "d": rng.Intn(3), "n": rng.Intn(3),
					"out": nil, "ok": false,
				}
				si := rng.Intn(4)
				err := e.RunWithHook(si, env, func(inst uint64, o core.Op, r core.Value) {
					ops = append(ops, serial.OpRecord{Instance: inst, Op: o, Result: r})
				})
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				logs[i] = serial.TxnLog{ID: i, Ops: ops}
				mu.Unlock()
			}(i)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		model := serial.NewMapsAndSets(kinds)
		if _, ok := serial.Check(model, logs); !ok {
			for _, l := range logs {
				t.Logf("txn %d: %v", l.ID, l.Ops)
			}
			t.Fatalf("burst %d: graph execution not serializable", b)
		}
	}
}
