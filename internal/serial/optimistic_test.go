package serial_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/adtspecs"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/serial"
	"repro/internal/synth"
)

// occSections builds the mixed program: "lookup" is read-only and gets
// the optimistic envelope at StageOptimistic; "update" stays
// pessimistic.
func occSections() *synth.Program {
	lookup := &ir.Atomic{
		Name: "lookup",
		Vars: []ir.Param{
			{Name: "m", Type: "Map", IsADT: true, NonNull: true},
			{Name: "k", Type: "int"}, {Name: "v", Type: "val"},
		},
		Body: ir.Block{
			&ir.Call{Recv: "m", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "k"}}, Assign: "v"},
		},
	}
	update := &ir.Atomic{
		Name: "update",
		Vars: []ir.Param{
			{Name: "m", Type: "Map", IsADT: true, NonNull: true},
			{Name: "k", Type: "int"}, {Name: "x", Type: "val"},
		},
		Body: ir.Block{
			&ir.Call{Recv: "m", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "k"}}, Assign: "x"},
			&ir.Call{Recv: "m", Method: "put", Args: []ir.Expr{ir.VarRef{Name: "k"}, ir.VarRef{Name: "x2"}}},
		},
	}
	update.Vars = append(update.Vars, ir.Param{Name: "x2", Type: "val"})
	return &synth.Program{Sections: []*ir.Atomic{lookup, update}, Specs: adtspecs.All()}
}

// TestMixedBurstsSerializable: bursts mixing optimistic lookups with
// pessimistic updates on a contended key space must all have a serial
// witness. An optimistic transaction enters the history only when its
// validation commits (the interpreter buffers its records), logically at
// the validation point — so the burst's logs are an ordinary history and
// the standard checker applies.
func TestMixedBurstsSerializable(t *testing.T) {
	res, err := synth.Synthesize(occSections(), synth.Options{StopAfter: synth.StageOptimistic, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Sections[0].Body[0].(*ir.Optimistic); !ok {
		t.Fatalf("lookup not rewritten: %T", res.Sections[0].Body[0])
	}
	e := interp.NewExecutor(res, true)

	var hits, retries uint64
	const bursts = 60
	const txns = 6
	for b := 0; b < bursts; b++ {
		m := e.NewInstance("Map", "Map")
		kinds := map[uint64]string{m.Sem.ID(): "Map"}
		var mu sync.Mutex
		logs := make([]serial.TxnLog, txns)
		var wg sync.WaitGroup
		for i := 0; i < txns; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				var ops []serial.OpRecord
				var env map[string]core.Value
				si := 0
				if i%2 == 0 {
					si = 1 // writer
					env = map[string]core.Value{"m": m, "k": i % 2, "x": nil, "x2": b*txns + i}
				} else {
					env = map[string]core.Value{"m": m, "k": i % 2, "v": nil}
				}
				err := e.RunWithHook(si, env, func(inst uint64, o core.Op, r core.Value) {
					ops = append(ops, serial.OpRecord{Instance: inst, Op: o, Result: r})
				})
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				logs[i] = serial.TxnLog{ID: i, Ops: ops}
				mu.Unlock()
			}(i)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		model := serial.NewMapsAndSets(kinds)
		if _, ok := serial.Check(model, logs); !ok {
			for _, l := range logs {
				t.Logf("txn %d: %v", l.ID, l.Ops)
			}
			t.Fatalf("burst %d: mixed optimistic/pessimistic history has no serial witness", b)
		}
		st := m.Sem.Stats()
		hits += st.OptimisticHits
		retries += st.OptimisticRetries
	}
	if hits == 0 {
		t.Errorf("no optimistic commit in %d bursts (retries=%d); envelope never exercised", bursts, retries)
	}
}

// TestOptimisticRaceHammer races TryOptimistic readers against batched
// pessimistic writers (core.Txn.LockBatch → AcquireBatch) over a
// two-instance invariant: writers advance two counters in lockstep under
// both locks, readers snapshot both lock-free and validate. Every
// validated read must see the invariant intact — and under -race the
// version-counter protocol itself is checked for races.
func TestOptimisticRaceHammer(t *testing.T) {
	keySet := core.SymSetOf(
		core.SymOpOf("get", core.VarArg("k")),
		core.SymOpOf("put", core.VarArg("k"), core.Star()),
		core.SymOpOf("remove", core.VarArg("k")))
	tbl := core.NewModeTable(adtspecs.Map(), []core.SymSet{keySet},
		core.TableOptions{Phi: core.NewPhi(4)})
	a, b := core.NewSemantic(tbl), core.NewSemantic(tbl)
	amode := tbl.Set(keySet).Mode(1)
	bmode := tbl.Set(keySet).Mode(1)

	var x, y atomic.Int64
	const writers, readers, iters = 2, 4, 2000

	var wg sync.WaitGroup
	torn := make(chan [2]int64, readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := core.NewTxn()
			for i := 0; i < iters; i++ {
				tx.LockBatch(
					core.BatchLock{Sem: a, Mode: amode, Rank: 0},
					core.BatchLock{Sem: b, Mode: bmode, Rank: 1},
				)
				x.Add(1)
				y.Add(1)
				tx.UnlockAll()
				tx.Reset()
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := core.NewTxn()
			for i := 0; i < iters; i++ {
				var rx, ry int64
				ok := tx.TryOptimistic(func(tx *core.Txn) bool {
					if !tx.Observe(a, amode, 0) || !tx.Observe(b, bmode, 1) {
						return false
					}
					rx = x.Load()
					ry = y.Load()
					return true
				})
				if ok && rx != ry {
					torn <- [2]int64{rx, ry}
					return
				}
				tx.Reset()
			}
		}()
	}
	wg.Wait()
	close(torn)
	for pair := range torn {
		t.Fatalf("validated optimistic read saw torn invariant: x=%d y=%d", pair[0], pair[1])
	}

	// After the writers drain, the optimistic path must commit again
	// (the adaptive gate reopens after its probe interval at worst).
	tx := core.NewTxn()
	committed := false
	for i := 0; i < 10000 && !committed; i++ {
		committed = tx.TryOptimistic(func(tx *core.Txn) bool {
			return tx.Observe(a, amode, 0) && tx.Observe(b, bmode, 1)
		})
		tx.Reset()
	}
	if !committed {
		t.Error("optimistic path never recovered after contention drained")
	}
	if hits := a.Stats().OptimisticHits; hits == 0 {
		t.Error("no optimistic hits recorded on instance a")
	}
}
