package serial_test

import (
	"sync"
	"testing"

	"repro/internal/adtspecs"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/papersec"
	"repro/internal/serial"
	"repro/internal/synth"
)

func op(m string, args ...core.Value) core.Op { return core.NewOp(m, args...) }

// TestCheckAcceptsSerialHistory: a genuinely serial history passes.
func TestCheckAcceptsSerialHistory(t *testing.T) {
	model := serial.NewMapsAndSets(map[uint64]string{1: "Map"})
	logs := []serial.TxnLog{
		{ID: 0, Ops: []serial.OpRecord{
			{Instance: 1, Op: op("put", "k", 10), Result: nil},
		}},
		{ID: 1, Ops: []serial.OpRecord{
			{Instance: 1, Op: op("get", "k"), Result: 10},
			{Instance: 1, Op: op("put", "k", 20), Result: 10},
		}},
		{ID: 2, Ops: []serial.OpRecord{
			{Instance: 1, Op: op("get", "k"), Result: 20},
		}},
	}
	order, ok := serial.Check(model, logs)
	if !ok {
		t.Fatal("serial history rejected")
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("witness order = %v, want [0 1 2]", order)
	}
}

// TestCheckRejectsNonSerializable: a classic lost-update anomaly — two
// transactions both read 0 and both write back 1 — has no serial
// witness.
func TestCheckRejectsNonSerializable(t *testing.T) {
	model := serial.NewMapsAndSets(map[uint64]string{1: "Map"})
	model.Apply(1, op("put", "k", 0))
	logs := []serial.TxnLog{
		{ID: 0, Ops: []serial.OpRecord{
			{Instance: 1, Op: op("get", "k"), Result: 0},
			{Instance: 1, Op: op("put", "k", 1), Result: 0},
		}},
		{ID: 1, Ops: []serial.OpRecord{
			{Instance: 1, Op: op("get", "k"), Result: 0},
			{Instance: 1, Op: op("put", "k", 1), Result: 0},
		}},
	}
	if _, ok := serial.Check(model, logs); ok {
		t.Error("lost-update history accepted as serializable")
	}
}

// TestCheckPermutes: a history serial only in a non-submission order is
// found.
func TestCheckPermutes(t *testing.T) {
	model := serial.NewMapsAndSets(map[uint64]string{1: "Map"})
	logs := []serial.TxnLog{
		{ID: 0, Ops: []serial.OpRecord{
			{Instance: 1, Op: op("get", "k"), Result: 5}, // must run after ID 1
		}},
		{ID: 1, Ops: []serial.OpRecord{
			{Instance: 1, Op: op("put", "k", 5), Result: nil},
		}},
	}
	order, ok := serial.Check(model, logs)
	if !ok || order[0] != 1 {
		t.Errorf("order = %v ok=%v, want [1 0]", order, ok)
	}
}

// TestFig1BurstsSerializable is the headline check: repeated bursts of
// concurrent synthesized Fig 1 transactions on a contended key space
// record their operation results, and every burst must have a serial
// witness — the S2PL serializability theorem (§2.3) observed end to
// end.
func TestFig1BurstsSerializable(t *testing.T) {
	prog := &synth.Program{Specs: adtspecs.All()}
	prog.Sections = append(prog.Sections, papersec.Fig1())
	res, err := synth.Synthesize(prog, synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e := interp.NewExecutor(res, true)

	const bursts = 60
	const txnsPerBurst = 6
	tid := 0
	for b := 0; b < bursts; b++ {
		mapInst := e.NewInstance("Map", "Map")
		queueInst := e.NewInstance("Queue", "Queue")
		kinds := map[uint64]string{
			mapInst.Sem.ID():   "Map",
			queueInst.Sem.ID(): "Queue",
		}
		var mu sync.Mutex
		logs := make([]serial.TxnLog, txnsPerBurst)
		var wg sync.WaitGroup
		for i := 0; i < txnsPerBurst; i++ {
			wg.Add(1)
			go func(i, tid int) {
				defer wg.Done()
				var ops []serial.OpRecord
				env := map[string]core.Value{
					"map": mapInst, "queue": queueInst, "set": nil,
					"id": tid % 2, "x": 2 * tid, "y": 2*tid + 1,
					"flag": tid%3 != 0,
				}
				err := e.RunWithHook(0, env, func(inst uint64, o core.Op, r core.Value) {
					ops = append(ops, serial.OpRecord{Instance: inst, Op: o, Result: r})
				})
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				logs[i] = serial.TxnLog{ID: i, Ops: ops}
				mu.Unlock()
			}(i, tid)
			tid++
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		// Fresh Set instances appear inside the burst; register their
		// kinds from the logs.
		for _, l := range logs {
			for _, r := range l.Ops {
				if _, known := kinds[r.Instance]; !known {
					kinds[r.Instance] = "Set"
				}
			}
		}
		model := serial.NewMapsAndSets(kinds)
		if _, ok := serial.Check(model, logs); !ok {
			for _, l := range logs {
				t.Logf("txn %d: %v", l.ID, l.Ops)
			}
			t.Fatalf("burst %d: no serial witness — serializability violated", b)
		}
	}
}

// TestFig4BurstsSerializable: the two-Set transfer-style section under
// contention, including dynamically ordered two-instance locking.
func TestFig4BurstsSerializable(t *testing.T) {
	prog := &synth.Program{Specs: adtspecs.All()}
	prog.Sections = append(prog.Sections, papersec.Fig4())
	res, err := synth.Synthesize(prog, synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e := interp.NewExecutor(res, true)

	for b := 0; b < 60; b++ {
		s1 := e.NewInstance("Set", "Set")
		s2 := e.NewInstance("Set", "Set")
		kinds := map[uint64]string{s1.Sem.ID(): "Set", s2.Sem.ID(): "Set"}
		var mu sync.Mutex
		const n = 6
		logs := make([]serial.TxnLog, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				var ops []serial.OpRecord
				x, y := s1, s2
				if i%2 == 1 {
					x, y = s2, s1
				}
				env := map[string]core.Value{"x": x, "y": y, "i": 0}
				err := e.RunWithHook(0, env, func(inst uint64, o core.Op, r core.Value) {
					ops = append(ops, serial.OpRecord{Instance: inst, Op: o, Result: r})
				})
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				logs[i] = serial.TxnLog{ID: i, Ops: ops}
				mu.Unlock()
			}(i)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		model := serial.NewMapsAndSets(kinds)
		if _, ok := serial.Check(model, logs); !ok {
			t.Fatalf("burst %d: Fig 4 execution not serializable", b)
		}
	}
}
