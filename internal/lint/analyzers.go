package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/adtspecs"
)

// ---------------------------------------------------------------------
// paddedcopy
// ---------------------------------------------------------------------

// PaddedCopy flags copies of internal/padded counter types. The padded
// types exist to pin one hot atomic counter per cache line; a by-value
// copy duplicates the counter (updates split between the copies) and is
// never what the lock mechanism means. They must move by pointer or
// live in-place inside arrays.
var PaddedCopy = &Analyzer{
	Name: "paddedcopy",
	Doc:  "flags internal/padded counters copied by value",
	Run:  runPaddedCopy,
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func paddedTypeName(t types.Type) (string, bool) {
	n, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/padded") {
		return "", false
	}
	if _, isStruct := n.Underlying().(*types.Struct); !isStruct {
		return "", false
	}
	return obj.Name(), true
}

func runPaddedCopy(p *Pass) {
	if strings.HasSuffix(p.PkgPath, "internal/padded") {
		return // the package's own internals are exempt
	}
	checkField := func(f *ast.Field, what string) {
		if name, ok := paddedTypeName(p.TypeOf(f.Type)); ok {
			p.Reportf(f.Pos(), "padded.%s %s by value; use *padded.%s", name, what, name)
		}
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncType:
				if x.Params != nil {
					for _, f := range x.Params.List {
						checkField(f, "passed")
					}
				}
				if x.Results != nil {
					for _, f := range x.Results.List {
						checkField(f, "returned")
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range x.Rhs {
					if _, isLit := rhs.(*ast.CompositeLit); isLit {
						continue // zero-value initialization, not a copy
					}
					if _, isCall := rhs.(*ast.CallExpr); isCall {
						continue // the offending result type is flagged at its signature
					}
					if len(x.Lhs) == len(x.Rhs) && isBlank(x.Lhs[i]) {
						continue // discarded, not duplicated
					}
					if name, ok := paddedTypeName(p.TypeOf(rhs)); ok {
						p.Reportf(rhs.Pos(), "assignment copies padded.%s by value", name)
					}
				}
			case *ast.ValueSpec:
				for i, v := range x.Values {
					if _, isLit := v.(*ast.CompositeLit); isLit {
						continue
					}
					if _, isCall := v.(*ast.CallExpr); isCall {
						continue
					}
					if i < len(x.Names) && x.Names[i].Name == "_" {
						continue
					}
					if name, ok := paddedTypeName(p.TypeOf(v)); ok {
						p.Reportf(v.Pos(), "declaration copies padded.%s by value", name)
					}
				}
			case *ast.RangeStmt:
				if x.Value != nil {
					if name, ok := paddedTypeName(p.TypeOf(x.Value)); ok {
						p.Reportf(x.Value.Pos(), "range copies padded.%s elements by value; index the slice instead", name)
					}
				}
			}
			return true
		})
	}
}

// ---------------------------------------------------------------------
// txndiscipline
// ---------------------------------------------------------------------

// TxnDiscipline flags direct calls to the raw lock mechanism —
// core.Semantic's Acquire, TryAcquire, Release — outside internal/core.
// Every acquisition in the system must flow through core.Txn, which
// enforces the LOCAL_SET re-lock elision, the two-phase rule, and the
// OS2PL rank order; a raw Acquire bypasses all three. (Test files are
// not loaded by semlockvet, so benchmarks of the bare mechanism remain
// possible.)
var TxnDiscipline = &Analyzer{
	Name: "txndiscipline",
	Doc:  "flags raw Semantic lock calls outside internal/core",
	Run:  runTxnDiscipline,
}

var rawLockMethods = map[string]bool{"Acquire": true, "TryAcquire": true, "Release": true}

// namedFromCore reports whether t (possibly behind a pointer) is the
// named core type.
func namedFromCore(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/core")
}

func runTxnDiscipline(p *Pass) {
	if strings.HasSuffix(p.PkgPath, "internal/core") {
		return // the transaction layer itself drives the mechanism
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !rawLockMethods[sel.Sel.Name] {
				return true
			}
			if namedFromCore(p.TypeOf(sel.X), "Semantic") {
				p.Reportf(call.Pos(),
					"raw Semantic.%s outside internal/core; acquire through core.Txn so two-phase and OS2PL order are enforced",
					sel.Sel.Name)
			}
			return true
		})
	}
}

// ---------------------------------------------------------------------
// modemask
// ---------------------------------------------------------------------

// ModeMask flags mask construction of the form `1 << slot` (an untyped
// constant shifted by a non-constant count) in a context where the
// shift adopts type int. The lock mechanism's wait and conflict masks
// are uint64 words; an int-typed shift truncates slots ≥ 31 on 32-bit
// builds and invites a sign-bit surprise at slot 63. Write
// `uint64(1) << (slot & 63)` so the width is explicit.
var ModeMask = &Analyzer{
	Name: "modemask",
	Doc:  "flags untyped-constant shifts that default to int where a 64-bit mask is intended",
	Run:  runModeMask,
}

func runModeMask(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || be.Op != token.SHL {
				return true
			}
			xtv, xok := p.Info.Types[be.X]
			if !xok || xtv.Value == nil {
				return true // shifted operand is not a constant
			}
			if ytv, yok := p.Info.Types[be.Y]; !yok || ytv.Value != nil {
				return true // constant count: a width, not a runtime mask
			}
			tv, ok := p.Info.Types[be]
			if !ok {
				return true
			}
			basic, ok := tv.Type.(*types.Basic)
			if !ok || basic.Kind() != types.Int {
				return true
			}
			p.Reportf(be.Pos(),
				"constant %s shifted by a variable count defaults to int; write uint64(%s) << ... for a 64-bit mask",
				xtv.Value, xtv.Value)
			return true
		})
	}
}

// ---------------------------------------------------------------------
// unlockpath
// ---------------------------------------------------------------------

// UnlockPath checks, in internal/modules, that a function which locks
// through a core.Txn releases on every return path: either a deferred
// UnlockAll, or an explicit UnlockAll/UnlockInstance between the lock
// and each return. The check is syntactic (source order approximates
// paths), which is exactly right for the module code's straight-line
// lock/work/unlock shape — and `defer tx.UnlockAll()` is always the
// recommended fix it suggests.
var UnlockPath = &Analyzer{
	Name: "unlockpath",
	Doc:  "flags Txn locks in internal/modules without UnlockAll on every return path",
	Run:  runUnlockPath,
}

func runUnlockPath(p *Pass) {
	if !strings.Contains(p.PkgPath, "internal/modules") {
		return
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			p.checkUnlockPaths(fn)
		}
	}
}

func (p *Pass) checkUnlockPaths(fn *ast.FuncDecl) {
	var firstLock token.Pos = token.NoPos
	var lockRecv string
	var unlockPositions []token.Pos
	deferredUnlock := false

	isTxnCall := func(call *ast.CallExpr, methods map[string]bool) (string, bool) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !methods[sel.Sel.Name] {
			return "", false
		}
		if !namedFromCore(p.TypeOf(sel.X), "Txn") {
			return "", false
		}
		return exprText(sel.X), true
	}
	lockMethods := map[string]bool{"Lock": true, "LockOrdered": true}
	unlockMethods := map[string]bool{"UnlockAll": true, "UnlockInstance": true}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			if _, ok := isTxnCall(x.Call, unlockMethods); ok {
				deferredUnlock = true
			}
			// defer func() { ...; tx.UnlockAll(); ... }()
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if _, ok := isTxnCall(call, unlockMethods); ok {
							deferredUnlock = true
						}
					}
					return true
				})
			}
		case *ast.CallExpr:
			if recv, ok := isTxnCall(x, lockMethods); ok {
				if firstLock == token.NoPos {
					firstLock, lockRecv = x.Pos(), recv
				}
			}
			if _, ok := isTxnCall(x, unlockMethods); ok {
				unlockPositions = append(unlockPositions, x.Pos())
			}
		}
		return true
	})

	if firstLock == token.NoPos || deferredUnlock {
		return
	}
	unlockBetween := func(lo, hi token.Pos) bool {
		for _, u := range unlockPositions {
			if u > lo && u <= hi {
				return true
			}
		}
		return false
	}
	flagged := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // returns inside closures are not this function's paths
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() < firstLock {
			return true
		}
		if !unlockBetween(firstLock, ret.Pos()) {
			p.Reportf(ret.Pos(),
				"return leaves %s locked: no UnlockAll between the Lock and this return; prefer defer %s.UnlockAll()",
				lockRecv, lockRecv)
			flagged = true
		}
		return true
	})
	// A function with no return statements still needs a release before
	// falling off the end.
	if !flagged && !unlockBetween(firstLock, fn.Body.End()) {
		p.Reportf(firstLock, "%s.Lock without any UnlockAll in %s; prefer defer %s.UnlockAll()",
			lockRecv, fn.Name.Name, lockRecv)
	}
}

// ---------------------------------------------------------------------
// abortpath
// ---------------------------------------------------------------------

// AbortPath flags functions that create a core.Txn — core.NewTxn(),
// core.NewCheckedTxn(), or a pool checkout asserted to *core.Txn —
// without a panic-safe release: a deferred UnlockAll (directly or
// inside a deferred func literal) or a Txn.Atomically section. An
// in-line UnlockAll is not enough: a panic between the lock and the
// release strands the holder counts forever (no other goroutine can
// clean them up), which is exactly the failure the runtime's panic-safe
// epilogue exists to prevent. A transaction whose ownership leaves the
// function through a return statement is the caller's to guard;
// deliberate other shapes carry //semlockvet:ignore with a reason.
var AbortPath = &Analyzer{
	Name: "abortpath",
	Doc:  "flags Txn creation without a deferred UnlockAll or Atomically guard",
	Run:  runAbortPath,
}

func runAbortPath(p *Pass) {
	if strings.HasSuffix(p.PkgPath, "internal/core") {
		return // the epilogue's own plumbing lives here
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			p.checkAbortScope(fn.Name.Name, fn.Body)
		}
	}
}

// abortCreation is one Txn acquisition site within a scope.
type abortCreation struct {
	pos     token.Pos
	obj     types.Object // the bound variable, if any
	escaped bool         // ownership left through a return statement
}

// checkAbortScope analyzes one function-like scope (a FuncDecl body or
// a func literal's body; nested literals are separate scopes).
func (p *Pass) checkAbortScope(name string, body *ast.BlockStmt) {
	isTxnPtr := func(t types.Type) bool {
		ptr, ok := t.(*types.Pointer)
		return ok && namedFromCore(ptr.Elem(), "Txn")
	}
	// newTxn reports whether e mints or checks out a transaction.
	newTxn := func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "NewTxn" && sel.Sel.Name != "NewCheckedTxn") {
				return false
			}
			t := p.TypeOf(x)
			return t != nil && isTxnPtr(t)
		case *ast.TypeAssertExpr:
			return x.Type != nil && isTxnPtr(p.TypeOf(x.Type))
		}
		return false
	}
	isTxnMethod := func(call *ast.CallExpr, method string) bool {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		return ok && sel.Sel.Name == method && namedFromCore(p.TypeOf(sel.X), "Txn")
	}

	var creations []*abortCreation
	byObj := map[types.Object][]*abortCreation{} // one variable may bind several creation sites
	recorded := map[token.Pos]bool{}
	guarded := false
	var lits []*ast.FuncLit

	record := func(e ast.Expr, lhs ast.Expr) {
		if !newTxn(e) || recorded[e.Pos()] {
			return
		}
		recorded[e.Pos()] = true
		c := &abortCreation{pos: e.Pos()}
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			if obj := p.Info.Defs[id]; obj != nil {
				c.obj = obj
			} else if obj := p.Info.Uses[id]; obj != nil {
				c.obj = obj
			}
		}
		creations = append(creations, c)
		if c.obj != nil {
			byObj[c.obj] = append(byObj[c.obj], c)
		}
	}
	// markEscaped marks every creation referenced inside e — by its
	// bound variable or as the creation expression itself.
	markEscaped := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				for _, c := range byObj[p.Info.Uses[x]] {
					c.escaped = true
				}
			case *ast.CallExpr, *ast.TypeAssertExpr:
				if expr := n.(ast.Expr); newTxn(expr) {
					record(expr, nil)
					for _, c := range creations {
						if c.pos == expr.Pos() {
							c.escaped = true
						}
					}
				}
			}
			return true
		})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, x)
			return false // its own scope
		case *ast.DeferStmt:
			if isTxnMethod(x.Call, "UnlockAll") {
				guarded = true
			}
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok && isTxnMethod(call, "UnlockAll") {
						guarded = true
					}
					return true
				})
				lits = append(lits, lit)
			}
			return false // a deferred Put(tx) is cleanup, not an ownership escape
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				markEscaped(res)
			}
			return true
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i, rhs := range x.Rhs {
					record(rhs, x.Lhs[i])
				}
			}
			return true
		case *ast.ValueSpec:
			for i, v := range x.Values {
				if i < len(x.Names) {
					record(v, x.Names[i])
				}
			}
			return true
		case *ast.CallExpr:
			if isTxnMethod(x, "Atomically") {
				guarded = true
			}
			record(x, nil) // a discarded or nested creation still leaks
			return true
		case *ast.TypeAssertExpr:
			record(x, nil)
			return true
		}
		return true
	})

	if !guarded {
		for _, c := range creations {
			if !c.escaped {
				p.Reportf(c.pos,
					"core.Txn created in %s without a panic-safe release; wrap the section in Atomically or defer UnlockAll",
					name)
			}
		}
	}
	for _, lit := range lits {
		p.checkAbortScope("func literal", lit.Body)
	}
}

// ---------------------------------------------------------------------
// batchable
// ---------------------------------------------------------------------

// Batchable flags runs of adjacent Txn.Lock calls on the same
// transaction at the same rank. Such a run is a fused prologue written
// long-hand: Txn.LockBatch acquires the same constituents in one call,
// sorts them into the OS2PL (rank, unique-id) order itself, and — when
// they land on one instance — claims them in a single pass with one
// union-mask waiter instead of one waiter per constituent. The check is
// deliberately narrow: only statement-adjacent calls in the same block
// qualify (anything between them may depend on the partial lock set),
// and calls whose rank expressions differ are left alone because fusion
// must never cross a rank boundary — the inner acquisition order IS the
// OS2PL order, and batching across ranks would let a lower-rank
// constituent block while higher-rank locks are already held.
var Batchable = &Analyzer{
	Name: "batchable",
	Doc:  "flags adjacent same-rank Txn.Lock calls that could be one LockBatch",
	Run:  runBatchable,
}

func runBatchable(p *Pass) {
	if strings.HasSuffix(p.PkgPath, "internal/core") {
		return // the batch implementation expands into these calls
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			p.checkBatchableRuns(block.List)
			return true
		})
	}
}

// lockCallInfo describes one `tx.Lock(sem, mode, rank)` statement.
type lockCallInfo struct {
	pos  token.Pos
	recv string // receiver expression, textually
	rank string // rank argument: constant value or expression text
}

// rankText renders a rank argument for comparison: constant ranks
// compare by value, everything else by expression source shape.
func (p *Pass) rankText(e ast.Expr) string {
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
		return "const:" + tv.Value.ExactString()
	}
	switch x := e.(type) {
	case *ast.Ident:
		return "expr:" + x.Name
	case *ast.SelectorExpr:
		return "expr:" + exprText(x)
	}
	return "" // unique: never considered equal to another rank
}

func (p *Pass) checkBatchableRuns(stmts []ast.Stmt) {
	asLock := func(s ast.Stmt) (lockCallInfo, bool) {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return lockCallInfo{}, false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) != 3 {
			return lockCallInfo{}, false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Lock" || !namedFromCore(p.TypeOf(sel.X), "Txn") {
			return lockCallInfo{}, false
		}
		return lockCallInfo{pos: call.Pos(), recv: exprText(sel.X), rank: p.rankText(call.Args[2])}, true
	}
	for i := 0; i < len(stmts); {
		first, ok := asLock(stmts[i])
		if !ok || first.rank == "" {
			i++
			continue
		}
		j := i + 1
		for j < len(stmts) {
			next, ok := asLock(stmts[j])
			if !ok || next.recv != first.recv || next.rank != first.rank {
				break
			}
			j++
		}
		if run := j - i; run >= 2 {
			p.Reportf(first.pos,
				"%d adjacent %s.Lock calls at one rank; fuse into a single %s.LockBatch so same-instance constituents are claimed in one pass",
				run, first.recv, first.recv)
		}
		i = j
	}
}

// exprText renders a simple receiver expression for diagnostics.
func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	default:
		return "txn"
	}
}

// ---------------------------------------------------------------------
// retrypath
// ---------------------------------------------------------------------

// RetryPath checks the discipline around the bounded-acquisition
// surface (Txn.LockWithin / LockWithinCancel, Semantic.AcquireWithin /
// AcquireWithinCancel). Two shapes defeat the point of a patience
// bound:
//
//   - a discarded error (expression statement or blank assignment): the
//     acquisition can time out, report a StallError — and the caller
//     proceeds as if the lock were held. The bound becomes dead code
//     and the section races its conflictors.
//   - an unbounded `for {}` loop re-attempting a bounded acquisition
//     with no retry budget: the StallError is handled, but by turning a
//     blocked waiter into an infinite retry storm — under a real stall
//     this burns CPU forever and amplifies the overload the patience
//     bound was meant to surface. Bound the loop, or gate each attempt
//     with resilience.Budget.TryWithdraw (resilience.Policy.Run does
//     both and adds backoff).
//
// internal/core (the mechanism) and internal/resilience (the sanctioned
// retry loop) are exempt; test files are not loaded by semlockvet.
var RetryPath = &Analyzer{
	Name: "retrypath",
	Doc:  "flags discarded bounded-acquisition errors and unbounded stall-retry loops without a budget",
	Run:  runRetryPath,
}

// namedFromPkg reports whether t (possibly behind a pointer) is the
// named type from a package whose import path ends in pkgSuffix.
func namedFromPkg(t types.Type, pkgSuffix, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// boundedAcqCall reports whether call is one of the bounded-acquisition
// entry points, and renders it for diagnostics.
func (p *Pass) boundedAcqCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "LockWithin", "LockWithinCancel":
		if namedFromCore(p.TypeOf(sel.X), "Txn") {
			return exprText(sel.X) + "." + sel.Sel.Name, true
		}
	case "AcquireWithin", "AcquireWithinCancel":
		if namedFromCore(p.TypeOf(sel.X), "Semantic") {
			return exprText(sel.X) + "." + sel.Sel.Name, true
		}
	}
	return "", false
}

func runRetryPath(p *Pass) {
	if strings.HasSuffix(p.PkgPath, "internal/core") || strings.HasSuffix(p.PkgPath, "internal/resilience") {
		return // the mechanism and the sanctioned retry loop live here
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok {
					if name, ok := p.boundedAcqCall(call); ok {
						p.Reportf(call.Pos(),
							"%s error discarded; a timed-out acquisition returns a StallError with the lock NOT held — handle it or the patience bound is dead code",
							name)
					}
				}
			case *ast.AssignStmt:
				if len(x.Lhs) != len(x.Rhs) {
					return true
				}
				for i, rhs := range x.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isBlank(x.Lhs[i]) {
						continue
					}
					if name, ok := p.boundedAcqCall(call); ok {
						p.Reportf(call.Pos(),
							"%s error assigned to _; a timed-out acquisition returns a StallError with the lock NOT held — handle it or the patience bound is dead code",
							name)
					}
				}
			case *ast.ForStmt:
				if x.Cond == nil {
					p.checkUnboundedRetry(x)
				}
			}
			return true
		})
	}
}

// checkUnboundedRetry flags a `for {}` loop that re-attempts a bounded
// acquisition without withdrawing from a retry budget. Function
// literals inside the loop are separate control flow (a spawned worker
// retrying is that goroutine's loop, not this one) and are skipped.
func (p *Pass) checkUnboundedRetry(loop *ast.ForStmt) {
	var acq string
	budgeted := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := p.boundedAcqCall(call); ok && acq == "" {
			acq = name
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "TryWithdraw":
				if namedFromPkg(p.TypeOf(sel.X), "internal/resilience", "Budget") {
					budgeted = true
				}
			case "Run", "Acquire", "AcquireCancel":
				// Delegating to the policy layer IS the budgeted path.
				if namedFromPkg(p.TypeOf(sel.X), "internal/resilience", "Policy") {
					budgeted = true
				}
			}
		}
		return true
	})
	if acq != "" && !budgeted {
		p.Reportf(loop.Pos(),
			"unbounded for-loop retries %s without a retry budget; bound the iterations or gate each attempt with Budget.TryWithdraw (resilience.Policy.Run does both)",
			acq)
	}
}

// ---------------------------------------------------------------------
// occpure
// ---------------------------------------------------------------------

// OccPure checks //semlock:readonly markers. The marker, placed on a
// //semlock:atomic function, asserts that the section only observes its
// ADTs — the property that makes it eligible for the optimistic
// lock-free envelope at synth.StageOptimistic. The assertion is easy to
// break silently during maintenance: add one Put to a marked lookup and
// the synthesizer quietly stops emitting the envelope (eligibility is
// recomputed, so nothing is unsound), but the fast path the marker
// promised is gone. OccPure makes that drift loud: inside a marked
// section it flags every call to a semadt method that is not a declared
// observer of its class, and every store to package-level state. The
// real soundness certificate is internal/verify's optimistic obligation
// — this is the early, syntactic tripwire. Deliberate exceptions carry
// //semlockvet:ignore occpure -- <reason>.
var OccPure = &Analyzer{
	Name: "occpure",
	Doc:  "flags mutations of shared ADT state inside //semlock:readonly sections",
	Run:  runOccPure,
}

// occObservers maps semadt class name -> spec-level observer set, built
// from the same adtspecs declarations the synthesizer's eligibility
// check consults, so the analyzer and the rewrite cannot disagree about
// what counts as an observation.
var occObservers = adtspecs.All()

// occLowerMethod mirrors gosrc's Go-name -> spec-name mapping
// (Get -> get, PutIfAbsent -> putIfAbsent).
func occLowerMethod(m string) string {
	if m == "" {
		return m
	}
	return strings.ToLower(m[:1]) + m[1:]
}

func hasDocDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// occRootIdent unwraps selectors, indexing, derefs, and parens to the
// base identifier of an assignment target.
func occRootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func runOccPure(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDocDirective(fn.Doc, "//semlock:readonly") {
				continue
			}
			if !hasDocDirective(fn.Doc, "//semlock:atomic") {
				p.Reportf(fn.Pos(),
					"//semlock:readonly on %s without //semlock:atomic; the marker asserts an atomic section is observation-only",
					fn.Name.Name)
				continue
			}
			p.checkOccPure(fn)
		}
	}
}

func (p *Pass) checkOccPure(fn *ast.FuncDecl) {
	// callFuns collects every expression in call position, so a mutator
	// reference that is NOT immediately called — a method value bound to
	// a variable, deferred, or handed to go — is flagged at its capture
	// site instead of slipping through.
	callFuns := make(map[ast.Expr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			f := c.Fun
			for {
				paren, ok := f.(*ast.ParenExpr)
				if !ok {
					break
				}
				f = paren.X
			}
			callFuns[f] = true
		}
		return true
	})
	// semadtClass returns the semadt type name of a receiver expression.
	semadtClass := func(e ast.Expr) (string, bool) {
		t := p.TypeOf(e)
		if t == nil {
			return "", false
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		n, ok := t.(*types.Named)
		if !ok {
			return "", false
		}
		obj := n.Obj()
		if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/semadt") {
			return "", false
		}
		return obj.Name(), true
	}
	isPkgLevel := func(id *ast.Ident) bool {
		obj := p.Info.Uses[id]
		v, ok := obj.(*types.Var)
		return ok && v.Parent() == p.Pkg.Scope()
	}
	flagStore := func(lhs ast.Expr) {
		if id := occRootIdent(lhs); id != nil && isPkgLevel(id) {
			p.Reportf(lhs.Pos(),
				"store to package-level %s inside //semlock:readonly section %s; the optimistic envelope may run this body and discard it, so it must not write shared state",
				id.Name, fn.Name.Name)
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			class, ok := semadtClass(sel.X)
			if !ok || sel.Sel.Name == "Sem" {
				return true
			}
			m := occLowerMethod(sel.Sel.Name)
			if spec := occObservers[class]; spec == nil || !spec.IsObserver(m) {
				p.Reportf(x.Pos(),
					"call %s.%s mutates %s state inside //semlock:readonly section %s; drop the marker or move the mutation out",
					exprText(sel.X), sel.Sel.Name, class, fn.Name.Name)
			}
		case *ast.SelectorExpr:
			// A method value (m.Put) or method expression
			// ((*semadt.Map).Put) escaping call position: the mutator
			// can then run through defer, go, or any later call, out of
			// sight of the CallExpr case above.
			if callFuns[x] || x.Sel.Name == "Sem" {
				return true
			}
			class, ok := semadtClass(x.X)
			if !ok {
				return true
			}
			if sel, isSel := p.Info.Selections[x]; isSel {
				if _, isFunc := sel.Obj().(*types.Func); !isFunc {
					return true
				}
			} else if _, isFunc := p.Info.Uses[x.Sel].(*types.Func); !isFunc {
				return true
			}
			m := occLowerMethod(x.Sel.Name)
			if spec := occObservers[class]; spec == nil || !spec.IsObserver(m) {
				p.Reportf(x.Pos(),
					"method value %s.%s captures a mutator of %s inside //semlock:readonly section %s; deferred or spawned, it still mutates state the optimistic envelope may discard",
					exprText(x.X), x.Sel.Name, class, fn.Name.Name)
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				flagStore(lhs)
			}
		case *ast.IncDecStmt:
			flagStore(x.X)
		}
		return true
	})
}
