// Package lint is a small go/analysis-style checker for this
// repository's runtime invariants — the properties the lock mechanism
// and transaction layer rely on but the compiler cannot enforce. It is
// built on the standard library only (go/ast, go/parser, go/types), so
// the module keeps its zero-dependency property; the framework mirrors
// golang.org/x/tools/go/analysis closely enough that the analyzers could
// be ported verbatim if the dependency ever becomes available.
//
// The analyzers:
//
//   - paddedcopy: internal/padded counters must never be copied by
//     value — a copy duplicates the hot counter and silently splits
//     updates across two cache lines.
//   - txndiscipline: the raw lock mechanism (core.Semantic's Acquire /
//     TryAcquire / Release) must only be driven through core.Txn, which
//     enforces the two-phase and OS2PL rules; direct calls outside
//     internal/core bypass the protocol.
//   - modemask: lock-mode masks are 64-bit; shifting an untyped
//     constant by a non-constant count in int context silently builds a
//     31-bit mask on the way to a uint64 word.
//   - unlockpath: in internal/modules, a function that locks through a
//     Txn must release on every return path (defer tx.UnlockAll() or an
//     explicit unlock before each return).
//   - abortpath: a function that creates a core.Txn (NewTxn,
//     NewCheckedTxn, or a pool checkout asserted to *core.Txn) must
//     guard its release against panics — a deferred UnlockAll or an
//     Atomically section — unless it returns the transaction to its
//     caller.
//   - batchable: adjacent Txn.Lock calls at the same rank are a fused
//     prologue written long-hand; Txn.LockBatch acquires the same
//     constituents in one call and claims same-instance runs in a
//     single pass.
//   - occpure: a //semlock:atomic function marked //semlock:readonly
//     asserts it only observes its ADTs (the optimistic-envelope
//     eligibility property); mutator calls or stores to package-level
//     state inside such a section break the assertion silently.
//   - retrypath: a bounded acquisition (LockWithin / AcquireWithin and
//     their Cancel variants) signals stalls through its error; a
//     discarded error proceeds without the lock, and an unbounded
//     `for {}` retry without a resilience budget turns one stall into
//     a retry storm.
//
// Deliberate exceptions — plan transcriptions in internal/modules and
// internal/apps, and benchmarks of the bare mechanism — carry
// //semlockvet:ignore or //semlockvet:file-ignore directives with a
// mandatory reason (see directives.go).
//
// cmd/semlockvet is the command-line driver.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check, in the shape of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	PkgPath  string
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Diagnostic is one finding. Whole-program analyzers additionally carry
// a Witness: the interprocedural path (caller chain, escape point,
// acquisition sequence) demonstrating how the violating state is
// reached, one step per line.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Witness  []string
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
	for _, w := range d.Witness {
		s += "\n    " + w
	}
	return s
}

// All returns the repository's per-package analyzers. Whole-program
// analyzers (guardedby, rankorder) live in internal/lint/interproc and
// run through RunProgram.
func All() []*Analyzer {
	return []*Analyzer{PaddedCopy, TxnDiscipline, ModeMask, UnlockPath, AbortPath, Batchable, OccPure, RetryPath}
}

// ProgramAnalyzer is one whole-program check: unlike Analyzer it sees
// every loaded package at once, so it can build a call graph and reason
// across function and package boundaries. The interprocedural analyzers
// of internal/lint/interproc implement this interface.
type ProgramAnalyzer struct {
	Name string
	Doc  string
	Run  func(*ProgramPass)
}

// ProgramPass carries the whole loaded program through one
// whole-program analyzer.
type ProgramPass struct {
	Analyzer *ProgramAnalyzer
	Pkgs     []*Package

	diags *[]Diagnostic
}

// Report records a fully-formed diagnostic (the analyzer name is filled
// in by the pass).
func (p *ProgramPass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	*p.diags = append(*p.diags, d)
}

// Reportf records a diagnostic at pos, resolved through pkg's FileSet.
func (p *ProgramPass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:     pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// RunProgram applies whole-program analyzers to the loaded packages and
// returns the findings sorted by position. The same //semlockvet:ignore
// and //semlockvet:file-ignore directives that scope per-package
// analyzers apply, keyed by the file the diagnostic lands in; malformed
// directives are NOT re-reported here (Run already reports them), so
// running both entry points over one load never duplicates findings.
func RunProgram(pkgs []*Package, analyzers []*ProgramAnalyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		a.Run(&ProgramPass{Analyzer: a, Pkgs: pkgs, diags: &raw})
	}
	var diags []Diagnostic
	sups := make([]*suppressions, 0, len(pkgs))
	for _, pkg := range pkgs {
		sups = append(sups, parseSuppressions(pkg, func(Diagnostic) {}))
	}
	for _, d := range raw {
		covered := false
		for _, s := range sups {
			if s.covers(d) {
				covered = true
				break
			}
		}
		if !covered {
			diags = append(diags, d)
		}
	}
	sortDiags(diags)
	return diags
}

// Run applies the analyzers to the packages and returns the findings
// sorted by position. Findings covered by a //semlockvet:ignore or
// //semlockvet:file-ignore directive (see directives.go) are dropped;
// malformed directives are themselves reported.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			a.Run(&Pass{
				Analyzer: a,
				PkgPath:  pkg.PkgPath,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &raw,
			})
		}
		sup := parseSuppressions(pkg, func(d Diagnostic) { diags = append(diags, d) })
		for _, d := range raw {
			if !sup.covers(d) {
				diags = append(diags, d)
			}
		}
	}
	sortDiags(diags)
	return diags
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
