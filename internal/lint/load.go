package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
}

// Load resolves the package patterns with `go list` from dir (or the
// enclosing module root when dir is "."), parses each package's
// non-test sources, and type-checks them with the standard library's
// source importer — no external dependencies. Test files are covered by
// `go vet` in CI; this loader deliberately checks the shipped sources.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command("go", append([]string{"list", "-json"}, patterns...)...)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		p, err := typecheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, lp listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		PkgPath: lp.ImportPath, Dir: lp.Dir,
		Fset: fset, Files: files, Types: tpkg, Info: info,
	}, nil
}

// moduleRoot walks up from dir to the directory holding go.mod, so the
// driver works from any subdirectory of the module.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}
