package lint

import (
	"strings"
)

// Suppression directives. Some code drives the raw lock mechanism on
// purpose — the internal/modules and internal/apps "ours" types are
// hand transcriptions of synthesized plans, and internal/bench measures
// the bare mechanism. Those files opt out per analyzer with
//
//	//semlockvet:file-ignore <analyzer> -- <reason>
//
// anywhere in the file, or a single finding is silenced with
//
//	//semlockvet:ignore <analyzer> -- <reason>
//
// trailing the offending line or on the line directly above it. The
// reason is mandatory: a directive without one is itself reported, so
// suppressions stay auditable.

const directivePrefix = "semlockvet:"

// suppressions holds the parsed directives of one package.
type suppressions struct {
	// file maps filename -> analyzer names ignored for the whole file.
	file map[string]map[string]bool
	// line maps filename -> directive line -> analyzer names; a
	// directive suppresses findings on its own line and the next.
	line map[string]map[int]map[string]bool
}

func (s *suppressions) covers(d Diagnostic) bool {
	if s.file[d.Pos.Filename][d.Analyzer] {
		return true
	}
	lines := s.line[d.Pos.Filename]
	return lines[d.Pos.Line][d.Analyzer] || lines[d.Pos.Line-1][d.Analyzer]
}

// parseSuppressions scans a package's comments for directives.
// Malformed ones are reported through report.
func parseSuppressions(pkg *Package, report func(d Diagnostic)) *suppressions {
	s := &suppressions{
		file: make(map[string]map[string]bool),
		line: make(map[string]map[int]map[string]bool),
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				verb, rest, _ := strings.Cut(strings.TrimPrefix(text, directivePrefix), " ")
				spec, reason, hasReason := strings.Cut(rest, "--")
				name := strings.TrimSpace(spec)
				malformed := func(why string) {
					report(Diagnostic{Pos: pos, Analyzer: "directive",
						Message: "malformed " + directivePrefix + verb + " directive: " + why})
				}
				if verb != "ignore" && verb != "file-ignore" {
					malformed("unknown verb (want ignore or file-ignore)")
					continue
				}
				if name == "" || !hasReason || strings.TrimSpace(reason) == "" {
					malformed("want //" + directivePrefix + verb + " <analyzer> -- <reason>")
					continue
				}
				if verb == "file-ignore" {
					m := s.file[pos.Filename]
					if m == nil {
						m = make(map[string]bool)
						s.file[pos.Filename] = m
					}
					m[name] = true
					continue
				}
				byLine := s.line[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					s.line[pos.Filename] = byLine
				}
				m := byLine[pos.Line]
				if m == nil {
					m = make(map[string]bool)
					byLine[pos.Line] = m
				}
				m[name] = true
			}
		}
	}
	return s
}
