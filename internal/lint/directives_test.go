package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSrc builds a Package with just enough state for directive
// parsing (no type-checking: suppressions are purely syntactic).
func parseSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &Package{PkgPath: "repro/tdata", Fset: fset, Files: []*ast.File{f}}
}

// TestDirectiveScoping pins the coverage rules: a line ignore covers
// its own line and the next, a file ignore covers its whole file (and
// only that file), and both are keyed by analyzer name.
func TestDirectiveScoping(t *testing.T) {
	src := `package tdata

//semlockvet:ignore occpure -- warm-up path runs before traffic
var a int

//semlockvet:file-ignore txndiscipline -- fixture: bench drives the raw mechanism
var b int
`
	pkg := parseSrc(t, src)
	var malformed []Diagnostic
	sup := parseSuppressions(pkg, func(d Diagnostic) { malformed = append(malformed, d) })
	if len(malformed) != 0 {
		t.Fatalf("well-formed directives reported as malformed: %v", malformed)
	}

	cases := []struct {
		name     string
		analyzer string
		file     string
		line     int
		want     bool
	}{
		{"ignore covers its own line", "occpure", "fix.go", 3, true},
		{"ignore covers the next line", "occpure", "fix.go", 4, true},
		{"ignore stops two lines below", "occpure", "fix.go", 5, false},
		{"ignore does not reach back up", "occpure", "fix.go", 2, false},
		{"ignore is analyzer-keyed", "paddedcopy", "fix.go", 3, false},
		{"file-ignore covers the top of the file", "txndiscipline", "fix.go", 1, true},
		{"file-ignore covers below the directive", "txndiscipline", "fix.go", 7, true},
		{"file-ignore is analyzer-keyed", "modemask", "fix.go", 7, false},
		{"ignore is file-keyed", "occpure", "other.go", 3, false},
		{"file-ignore is file-keyed", "txndiscipline", "other.go", 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := Diagnostic{Pos: token.Position{Filename: tc.file, Line: tc.line}, Analyzer: tc.analyzer}
			if got := sup.covers(d); got != tc.want {
				t.Errorf("covers(%s at %s:%d) = %v, want %v", tc.analyzer, tc.file, tc.line, got, tc.want)
			}
		})
	}
}

// TestDirectiveMalformed pins the malformed shapes: every one is
// reported as a "directive" finding and suppresses nothing.
func TestDirectiveMalformed(t *testing.T) {
	cases := []struct {
		name      string
		directive string
		wantMsg   string
	}{
		{"missing reason", "//semlockvet:ignore occpure", "want //semlockvet:ignore <analyzer> -- <reason>"},
		{"empty reason after separator", "//semlockvet:ignore occpure -- ", "want //semlockvet:ignore"},
		{"missing analyzer", "//semlockvet:ignore -- some reason", "want //semlockvet:ignore"},
		{"unknown verb", "//semlockvet:suppress occpure -- some reason", "unknown verb"},
		{"file-ignore missing analyzer", "//semlockvet:file-ignore -- some reason", "want //semlockvet:file-ignore"},
		{"file-ignore missing reason", "//semlockvet:file-ignore occpure", "want //semlockvet:file-ignore"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := "package tdata\n\n" + tc.directive + "\nvar a int\n"
			pkg := parseSrc(t, src)
			var malformed []Diagnostic
			sup := parseSuppressions(pkg, func(d Diagnostic) { malformed = append(malformed, d) })
			if len(malformed) != 1 {
				t.Fatalf("want exactly 1 malformed report, got %v", malformed)
			}
			if malformed[0].Analyzer != "directive" {
				t.Errorf("malformed report analyzer = %q, want \"directive\"", malformed[0].Analyzer)
			}
			if !strings.Contains(malformed[0].Message, tc.wantMsg) {
				t.Errorf("message %q does not contain %q", malformed[0].Message, tc.wantMsg)
			}
			// A malformed directive must not suppress anything — on its
			// line, the next, or file-wide.
			for _, line := range []int{3, 4} {
				d := Diagnostic{Pos: token.Position{Filename: "fix.go", Line: line}, Analyzer: "occpure"}
				if sup.covers(d) {
					t.Errorf("malformed directive suppressed a finding at line %d", line)
				}
			}
		})
	}
}

// TestDirectiveOnWrongNode: a trailing directive on a line suppresses
// that line's findings even though the comment is attached to a
// different AST node than the offending expression, and a doc-comment
// directive does NOT blanket the whole declaration below it — only the
// directive's own line and the next.
func TestDirectiveOnWrongNode(t *testing.T) {
	src := `package tdata

// f's doc comment carries the directive three lines above the body.
//semlockvet:ignore occpure -- pinned: doc position, not body position
func f() {
	_ = 1
	_ = 2
}
`
	pkg := parseSrc(t, src)
	sup := parseSuppressions(pkg, func(Diagnostic) {})
	if !sup.covers(Diagnostic{Pos: token.Position{Filename: "fix.go", Line: 5}, Analyzer: "occpure"}) {
		t.Errorf("directive should cover the line directly below it (the func line)")
	}
	for _, line := range []int{6, 7} {
		if sup.covers(Diagnostic{Pos: token.Position{Filename: "fix.go", Line: line}, Analyzer: "occpure"}) {
			t.Errorf("doc-comment directive must not blanket the body (line %d)", line)
		}
	}
}
