// Fixture for the guardedby whole-program analyzer. Each `want`
// comment marks a line the analyzer must flag; everything else must
// stay silent.
package tdata

import (
	"repro/internal/adt"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/resilience"
	"repro/internal/semadt"
)

type store struct {
	m    *semadt.Map
	q    *adt.Queue
	mu   cc.GlobalLock
	rank int
}

// Get is guarded: the operation runs inside an Atomically section.
func (s *store) Get(k core.Value) core.Value {
	var v core.Value
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(s.m.Sem(), core.ModeID(0), s.rank)
		v = s.m.Get(k)
	})
	return v
}

// Peek is exported and reads the map with no section: flagged.
func (s *store) Peek(k core.Value) core.Value {
	return s.m.Get(k) // want "reachable outside any atomic section"
}

// Evict reaches a naked operation through an unguarded helper call:
// the witness shows the chain Evict -> sweep.
func (s *store) Evict() {
	s.sweep()
}

func (s *store) sweep() {
	s.q.Dequeue() // want "reachable outside any atomic section"
}

// Size is guarded by the certified cc baseline.
func (s *store) Size() int {
	s.mu.Enter()
	defer s.mu.Exit()
	return s.q.Size()
}

// Snapshot's map is thread-local until returned: exempt.
func Snapshot() *adt.HashMap {
	m := adt.NewHashMap()
	m.Put(1, 2)
	return m
}

// Spawn leaks a locally built queue into a goroutine: the operation
// escapes any section the spawner might hold.
func Spawn() {
	q := adt.NewQueue()
	go func() {
		q.Enqueue(1) // want "reachable outside any atomic section"
	}()
}

// fill receives the transaction, so the section obligation is its
// callers' by contract: the naked operation is not flagged here.
func fill(tx *core.Txn, m *semadt.Map) {
	_ = tx
	m.Put(1, 2)
}

// Fill discharges fill's obligation inside a section.
func Fill(s *store) {
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(s.m.Sem(), core.ModeID(0), s.rank)
		fill(tx, s.m)
	})
}

// Compiled is a //semlock:atomic section: the compiler wraps the whole
// body in a transaction, so its operations are guarded.
//
//semlock:atomic
func Compiled(s *store) {
	s.m.Put(1, 2)
}

// Unsafe is suppressed by a directive with a reason.
func (s *store) Unsafe() core.Value {
	return s.m.Get(9) //semlockvet:ignore guardedby -- fixture: deliberate unguarded read
}

// PoliciedPut is guarded: Policy.Run wraps its closure in
// core.Atomically, so the operations inside are section-guarded.
func PoliciedPut(pol *resilience.Policy, s *store) error {
	return pol.Run(func(tx *core.Txn) error {
		if err := pol.Acquire(tx, s.m.Sem(), core.ModeID(0), s.rank); err != nil {
			return err
		}
		s.m.Put(1, 2)
		return nil
	})
}

// HedgedGet is guarded on both sides: HedgedRead runs the pessimistic
// closure in its own atomic section and the optimistic closure inside
// TryOptimistic.
func HedgedGet(pol *resilience.Policy, s *store) (core.Value, error) {
	v, _, err := resilience.HedgedRead(pol,
		func(tx *core.Txn, cancel <-chan struct{}) (core.Value, error) {
			if err := pol.AcquireCancel(tx, s.m.Sem(), core.ModeID(0), s.rank, cancel); err != nil {
				return nil, err
			}
			return s.m.Get(1), nil
		},
		func(tx *core.Txn) (core.Value, bool) {
			if !tx.Observe(s.m.Sem(), core.ModeID(0), s.rank) {
				return nil, false
			}
			return s.m.Get(1), true
		})
	return v, err
}

// PolicyLikeButNot: a closure handed to an arbitrary higher-order
// function stays an escape — only the resilience entry points certify
// their arguments.
func PolicyLikeButNot(run func(func(tx *core.Txn) error) error, s *store) error {
	return run(func(tx *core.Txn) error {
		s.m.Put(3, 4) // want "reachable outside any atomic section"
		return nil
	})
}
