// Fixture for the guardedby whole-program analyzer. Each `want`
// comment marks a line the analyzer must flag; everything else must
// stay silent.
package tdata

import (
	"repro/internal/adt"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/semadt"
)

type store struct {
	m    *semadt.Map
	q    *adt.Queue
	mu   cc.GlobalLock
	rank int
}

// Get is guarded: the operation runs inside an Atomically section.
func (s *store) Get(k core.Value) core.Value {
	var v core.Value
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(s.m.Sem(), core.ModeID(0), s.rank)
		v = s.m.Get(k)
	})
	return v
}

// Peek is exported and reads the map with no section: flagged.
func (s *store) Peek(k core.Value) core.Value {
	return s.m.Get(k) // want "reachable outside any atomic section"
}

// Evict reaches a naked operation through an unguarded helper call:
// the witness shows the chain Evict -> sweep.
func (s *store) Evict() {
	s.sweep()
}

func (s *store) sweep() {
	s.q.Dequeue() // want "reachable outside any atomic section"
}

// Size is guarded by the certified cc baseline.
func (s *store) Size() int {
	s.mu.Enter()
	defer s.mu.Exit()
	return s.q.Size()
}

// Snapshot's map is thread-local until returned: exempt.
func Snapshot() *adt.HashMap {
	m := adt.NewHashMap()
	m.Put(1, 2)
	return m
}

// Spawn leaks a locally built queue into a goroutine: the operation
// escapes any section the spawner might hold.
func Spawn() {
	q := adt.NewQueue()
	go func() {
		q.Enqueue(1) // want "reachable outside any atomic section"
	}()
}

// fill receives the transaction, so the section obligation is its
// callers' by contract: the naked operation is not flagged here.
func fill(tx *core.Txn, m *semadt.Map) {
	_ = tx
	m.Put(1, 2)
}

// Fill discharges fill's obligation inside a section.
func Fill(s *store) {
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(s.m.Sem(), core.ModeID(0), s.rank)
		fill(tx, s.m)
	})
}

// Compiled is a //semlock:atomic section: the compiler wraps the whole
// body in a transaction, so its operations are guarded.
//
//semlock:atomic
func Compiled(s *store) {
	s.m.Put(1, 2)
}

// Unsafe is suppressed by a directive with a reason.
func (s *store) Unsafe() core.Value {
	return s.m.Get(9) //semlockvet:ignore guardedby -- fixture: deliberate unguarded read
}
