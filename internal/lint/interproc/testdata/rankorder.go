// Fixture for the rankorder whole-program analyzer: a descending
// constant pair, a symbolic two-section cycle, an interprocedural
// cycle through a Txn-passing helper, and branch/TwoPL shapes that
// must stay silent.
package tdata

import (
	"repro/internal/cc"
	"repro/internal/core"
)

type pair struct {
	a, b         *core.Semantic
	rankA, rankB int
}

// TransferAB and TransferBA acquire the two symbolic ranks in opposite
// orders: the global lock-order graph has a cycle.
func (p *pair) TransferAB() {
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(p.a, core.ModeID(0), p.rankA)
		tx.Lock(p.b, core.ModeID(0), p.rankB)
	})
}

func (p *pair) TransferBA() {
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(p.b, core.ModeID(0), p.rankB)
		tx.Lock(p.a, core.ModeID(0), p.rankA)
	})
}

// Shrink acquires constant ranks in descending order on one
// transaction: reported directly, no graph needed.
func Shrink(a, b *core.Semantic) {
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(a, core.ModeID(0), 2)
		tx.Lock(b, core.ModeID(0), 1) // want "rank 1 acquired after rank 2"
	})
}

type grid struct {
	x, y         *core.Semantic
	rankX, rankY int
}

func lockY(tx *core.Txn, g *grid) {
	tx.Lock(g.y, core.ModeID(0), g.rankY)
}

// CrossXY locks X then reaches Y through the helper; CrossYX locks in
// the opposite order: an interprocedural cycle whose witness crosses
// the lockY splice.
func (g *grid) CrossXY() {
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(g.x, core.ModeID(0), g.rankX)
		lockY(tx, g)
	})
}

func (g *grid) CrossYX() {
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(g.y, core.ModeID(0), g.rankY)
		tx.Lock(g.x, core.ModeID(0), g.rankX)
	})
}

type opt struct {
	a, b   *core.Semantic
	r1, r2 int
}

// Pick's arms are alternatives: they impose no mutual order, so the
// opposite arrangement in PickRev is not a cycle.
func (o *opt) Pick(c bool) {
	core.Atomically(func(tx *core.Txn) {
		if c {
			tx.Lock(o.a, core.ModeID(0), o.r1)
		} else {
			tx.Lock(o.b, core.ModeID(0), o.r2)
		}
	})
}

func (o *opt) PickRev(c bool) {
	core.Atomically(func(tx *core.Txn) {
		if c {
			tx.Lock(o.b, core.ModeID(0), o.r2)
		} else {
			tx.Lock(o.a, core.ModeID(0), o.r1)
		}
	})
}

type bank struct {
	l1, l2 *cc.InstanceLock
}

// Move and Audit agree on the baseline instance-lock order: silent.
func (b *bank) Move() {
	var tx cc.TwoPL
	defer tx.UnlockAll()
	tx.Lock(b.l1)
	tx.Lock(b.l2)
}

func (b *bank) Audit() {
	var tx cc.TwoPL
	defer tx.UnlockAll()
	tx.LockOrdered(b.l1, b.l2)
}
