// Package interproc is the whole-program half of the repository's lint
// suite: a stdlib-only interprocedural analysis engine (call-graph
// construction over every loaded package, per-function summaries, and a
// simple instance-flow/escape lattice for values of semantic-ADT types)
// powering two analyzers that per-package passes cannot express:
//
//   - guardedby: proves every call to a semantic-ADT operation (the
//     internal/adt containers and their internal/semadt wrappers) is
//     dominated by an enclosing atomic section's Txn — reached from
//     core.Atomically / Txn.Atomically / Txn.TryOptimistic, the
//     resilience layer's section entries (resilience.Policy.Run and
//     resilience.HedgedRead run their closures inside core.Atomically),
//     a //semlock:atomic-compiled section, or an explicitly certified
//     baseline guard (internal/cc, or a hand-transcribed plan's raw
//     Semantic acquisition) — and reports the interprocedural witness
//     (caller chain from an unguarded entry point, the spawn or escape
//     point, the receiver's instance-flow origin) for any operation
//     reachable outside one. //semlockvet:ignore with a reason is the
//     only escape hatch.
//
//   - rankorder: extracts the static rank argument of every hand-written
//     Txn.Lock / LockWithin / LockOrdered / LockBatch / Observe site
//     (and the cc.TwoPL baseline's ordered instance locks), builds the
//     program-wide lock-order graph over those rank symbols — splicing
//     the acquisition sequences of helpers that receive the transaction
//     as a parameter into their callers — and proves it acyclic,
//     printing the cycle as a potential-deadlock counterexample
//     otherwise. Together with internal/verify's GlobalOrder embedding
//     check over the synthesized plans (exact class ranks), this
//     extends the per-section OS2PL certificate to a global claim.
//
// Both analyzers implement lint.ProgramAnalyzer and run through
// lint.RunProgram; cmd/semlockvet wires them in next to the per-package
// suite.
//
// The engine is deliberately conservative where Go makes static
// resolution hard: calls through interfaces and function values resolve
// to no callee (instead, every method with an exported name, every
// main/init, and every function referenced as a value counts as an
// entry point), goroutine bodies never inherit their spawner's section
// (a spawned goroutine runs outside the transaction by construction),
// and loop back-edges add no ordering constraints (a fresh transaction
// per iteration is the common shape; the runtime's checked order
// assertion covers the rest).
package interproc

import "repro/internal/lint"

// All returns the whole-program analyzers, in the order semlockvet runs
// them.
func All() []*lint.ProgramAnalyzer {
	return []*lint.ProgramAnalyzer{GuardedBy, RankOrder}
}
