package interproc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint"
)

// RankOrder proves the program-wide lock-order graph acyclic. Every
// hand-written Txn.Lock / LockWithin / LockOrdered / LockBatch /
// Observe site contributes its static rank argument as a node; two
// acquisitions on the same transaction in source order contribute an
// edge (earlier → later), with helper functions that receive the
// transaction spliced into their callers' sequences. The cc.TwoPL
// baseline's instance locks participate the same way, keyed by the
// lock field instead of a rank. A cycle is a potential deadlock and is
// printed as a counterexample path; two constant ranks acquired in
// descending order are reported directly (the checked runtime would
// panic on that transaction at the second acquisition).
//
// Synthesized sections don't go through this text-level analysis: their
// exact class ranks are exported by internal/synth and embedded into
// internal/verify's GlobalOrder, which cmd/semlockvet cross-checks
// alongside this analyzer.
var RankOrder = &lint.ProgramAnalyzer{
	Name: "rankorder",
	Doc:  "prove the program-wide semantic-lock rank order acyclic across all hand-written acquisition sites",
	Run:  runRankOrder,
}

// ---- rank scope model (filled in by the engine's body scan) ----

// rankSym is one node of the lock-order graph: a constant rank, a
// struct field or package-level variable holding a rank, or a
// function-local symbol.
type rankSym struct {
	scope   string // "" for constants; package path or funcKey otherwise
	name    string
	val     int64
	isConst bool
}

func (r rankSym) key() string {
	if r.isConst {
		return fmt.Sprintf("rank %d", r.val)
	}
	return r.scope + "::" + r.name
}

func (r rankSym) String() string {
	if r.isConst {
		return fmt.Sprintf("rank %d", r.val)
	}
	return r.name
}

// rankItem is one element of an acquisition sequence.
type rankItem interface{ isRankItem() }

// rankLock is one acquisition site; batch/ordered forms carry several
// symbols acquired as one sorted group (no intra-group edges — the
// runtime orders the constituents).
type rankLock struct {
	syms []rankSym
	pos  token.Pos
}

// rankBranch holds the alternative sequences of an if/else: each arm
// extends the same prefix but the arms impose no order on each other.
type rankBranch struct {
	alts [][]rankItem
}

// rankCall marks a call that hands the transaction to a helper whose
// top-level sequence splices in here.
type rankCall struct {
	callee funcKey
	pos    token.Pos
}

func (*rankLock) isRankItem()   {}
func (*rankBranch) isRankItem() {}
func (*rankCall) isRankItem()   {}

// rankScope is one transaction's acquisition sequence: the function's
// top-level statements for a Txn-parameter helper, or one
// Atomically/TryOptimistic literal.
type rankScope struct {
	items []rankItem
}

func (s *scanner) emit(ctx *guardCtx, item rankItem) {
	if ctx.scope == nil {
		ctx.scope = &rankScope{}
	}
	ctx.scope.items = append(ctx.scope.items, item)
}

// recordRankEvents extracts the rank symbols of a guard-acquisition
// call into the current scope.
func (s *scanner) recordRankEvents(call *ast.CallExpr, ctx *guardCtx) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selObj, isMethod := s.pkg.Info.Selections[sel]
	if !isMethod {
		return
	}
	fn, _ := selObj.Obj().(*types.Func)
	if fn == nil {
		return
	}
	recv := selObj.Recv()
	switch {
	case isTxnType(recv):
		switch fn.Name() {
		case "Lock", "LockWithin", "Observe":
			if len(call.Args) >= 3 {
				s.emit(ctx, &rankLock{syms: []rankSym{s.symOf(call.Args[2])}, pos: call.Pos()})
			}
		case "LockOrdered":
			if len(call.Args) >= 1 {
				s.emit(ctx, &rankLock{syms: []rankSym{s.symOf(call.Args[0])}, pos: call.Pos()})
			}
		case "LockBatch":
			var group []rankSym
			for _, a := range call.Args {
				lit := compositeOf(a)
				if lit == nil {
					continue // spread slice or prebuilt value: rank unknown
				}
				if rankExpr := batchRankExpr(s.pkg, lit); rankExpr != nil {
					group = appendSym(group, s.symOf(rankExpr))
				}
			}
			if len(group) > 0 {
				s.emit(ctx, &rankLock{syms: group, pos: call.Pos()})
			}
		}
	case isTwoPLType(recv):
		switch fn.Name() {
		case "Lock":
			if len(call.Args) >= 1 {
				s.emit(ctx, &rankLock{syms: []rankSym{s.symOf(call.Args[0])}, pos: call.Pos()})
			}
		case "LockOrdered":
			var group []rankSym
			for _, a := range call.Args {
				group = appendSym(group, s.symOf(a))
			}
			if len(group) > 0 {
				s.emit(ctx, &rankLock{syms: group, pos: call.Pos()})
			}
		}
	}
}

func compositeOf(e ast.Expr) *ast.CompositeLit {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return e
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if cl, ok := e.X.(*ast.CompositeLit); ok {
				return cl
			}
		}
	}
	return nil
}

// batchRankExpr finds the Rank field of a core.BatchLock literal
// (keyed or positional — Rank is the third field).
func batchRankExpr(pkg *lint.Package, lit *ast.CompositeLit) ast.Expr {
	for i, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Rank" {
				return kv.Value
			}
			continue
		}
		if i == 2 {
			return el
		}
	}
	return nil
}

// symOf maps a rank (or instance-lock) expression to its graph symbol.
func (s *scanner) symOf(e ast.Expr) rankSym {
	if v, ok := constIntOf(s.pkg, e); ok {
		return rankSym{isConst: true, val: v}
	}
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if obj, ok := s.pkg.Info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil {
			if obj.IsField() {
				recvName := "?"
				if t := s.pkg.Info.TypeOf(e.X); t != nil {
					if pt, ok := t.(*types.Pointer); ok {
						t = pt.Elem()
					}
					if n, ok := t.(*types.Named); ok {
						recvName = n.Obj().Name()
					}
				}
				return rankSym{scope: obj.Pkg().Path(), name: recvName + "." + e.Sel.Name}
			}
			return rankSym{scope: obj.Pkg().Path(), name: e.Sel.Name}
		}
	case *ast.Ident:
		if obj, ok := s.pkg.Info.Uses[e].(*types.Var); ok && obj.Pkg() != nil {
			if obj.Parent() == obj.Pkg().Scope() {
				return rankSym{scope: obj.Pkg().Path(), name: e.Name}
			}
			return rankSym{scope: string(s.fi.key), name: e.Name}
		}
	}
	return rankSym{scope: string(s.fi.key), name: exprText(e)}
}

func appendSym(syms []rankSym, s rankSym) []rankSym {
	for _, have := range syms {
		if have.key() == s.key() {
			return syms
		}
	}
	return append(syms, s)
}

// ---- graph construction and checking ----

type lockRef struct {
	sym rankSym
	pos token.Pos
	fn  *funcInfo
}

type orderEdge struct {
	from, to lockRef
}

type rankGraph struct {
	pass *lint.ProgramPass
	p    *program
	// first witness site per (from,to) symbol pair
	edges map[[2]string]*orderEdge
	// direct constant inversions, deduped by reporting position
	reported map[string]bool
}

func runRankOrder(pass *lint.ProgramPass) {
	p := buildProgram(pass.Pkgs)
	g := &rankGraph{
		pass:     pass,
		p:        p,
		edges:    make(map[[2]string]*orderEdge),
		reported: make(map[string]bool),
	}
	for _, key := range p.order {
		fi := p.funcs[key]
		for _, scope := range fi.scopes {
			g.walk(scope.items, nil, fi, 0, map[funcKey]bool{key: true})
		}
	}
	g.checkCycles()
}

const maxPrior = 64

// walk threads the prior-acquisition set through one sequence,
// emitting an edge for every (earlier, later) pair and splicing
// Txn-passing callees.
func (g *rankGraph) walk(items []rankItem, prior []lockRef, owner *funcInfo, depth int, stack map[funcKey]bool) []lockRef {
	for _, it := range items {
		switch it := it.(type) {
		case *rankLock:
			refs := make([]lockRef, 0, len(it.syms))
			for _, sym := range it.syms {
				refs = append(refs, lockRef{sym: sym, pos: it.pos, fn: owner})
			}
			for _, to := range refs {
				for _, from := range prior {
					g.addPair(from, to)
				}
			}
			for _, r := range refs {
				prior = appendRef(prior, r)
			}
		case *rankBranch:
			base := prior
			merged := append([]lockRef(nil), base...)
			for _, alt := range it.alts {
				out := g.walk(alt, append([]lockRef(nil), base...), owner, depth, stack)
				for _, r := range out {
					merged = appendRef(merged, r)
				}
			}
			prior = merged
		case *rankCall:
			callee := g.p.funcs[it.callee]
			if callee == nil || stack[it.callee] || depth >= 8 {
				continue
			}
			stack[it.callee] = true
			out := g.walk(callee.topScope.items, prior, callee, depth+1, stack)
			delete(stack, it.callee)
			// A callee-local rank symbol names a per-invocation value:
			// the binding dies when the call returns, and the same name
			// on a later call is a different rank. Keeping it in the
			// prior set would manufacture cross-call edges between
			// unrelated values (observed as a spurious self-cycle
			// through the interpreter's dynamically ranked runStmt).
			prior = prior[:0:0]
			for _, r := range out {
				if !r.sym.isConst && r.sym.scope == string(it.callee) {
					continue
				}
				prior = append(prior, r)
			}
		}
		if len(prior) > maxPrior {
			prior = prior[len(prior)-maxPrior:]
		}
	}
	return prior
}

func appendRef(prior []lockRef, r lockRef) []lockRef {
	for _, have := range prior {
		if have.sym.key() == r.sym.key() {
			return prior
		}
	}
	return append(prior, r)
}

func (g *rankGraph) site(r lockRef) string {
	return fmt.Sprintf("%s in %s", r.fn.pkg.Fset.Position(r.pos), r.fn.name)
}

func (g *rankGraph) addPair(from, to lockRef) {
	if from.sym.key() == to.sym.key() {
		return // same symbol: the runtime's instance-id order governs
	}
	if from.sym.isConst && to.sym.isConst && from.sym.val > to.sym.val {
		// A descending constant pair needs no graph: the checked
		// runtime panics at the second acquisition.
		posKey := g.site(from) + "|" + g.site(to)
		if g.reported[posKey] {
			return
		}
		g.reported[posKey] = true
		g.pass.Report(lint.Diagnostic{
			Pos: to.fn.pkg.Fset.Position(to.pos),
			Message: fmt.Sprintf("rank %d acquired after rank %d on the same transaction: OS2PL ranks must be non-decreasing",
				to.sym.val, from.sym.val),
			Witness: []string{
				fmt.Sprintf("rank %d acquired first at %s", from.sym.val, g.site(from)),
				fmt.Sprintf("rank %d acquired second at %s", to.sym.val, g.site(to)),
			},
		})
		return
	}
	ek := [2]string{from.sym.key(), to.sym.key()}
	if _, have := g.edges[ek]; !have {
		g.edges[ek] = &orderEdge{from: from, to: to}
	}
}

// checkCycles proves the accumulated symbol graph acyclic, reporting
// each cycle (one per strongly-connected entanglement) as a
// potential-deadlock counterexample.
func (g *rankGraph) checkCycles() {
	adj := make(map[string][]string)
	for ek := range g.edges {
		adj[ek[0]] = append(adj[ek[0]], ek[1])
	}
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, outs := range adj {
		sort.Strings(outs)
	}

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var stack []string
	onStack := make(map[string]int) // node -> index in stack

	var dfs func(n string) []string
	dfs = func(n string) []string {
		color[n] = gray
		onStack[n] = len(stack)
		stack = append(stack, n)
		for _, m := range adj[n] {
			switch color[m] {
			case white:
				if cyc := dfs(m); cyc != nil {
					return cyc
				}
			case gray:
				return append(append([]string(nil), stack[onStack[m]:]...), m)
			}
		}
		stack = stack[:len(stack)-1]
		delete(onStack, n)
		color[n] = black
		return nil
	}

	for _, n := range nodes {
		if color[n] != white {
			continue
		}
		cyc := dfs(n)
		if cyc == nil {
			continue
		}
		g.reportCycle(cyc)
		// Mark everything involved black so one entanglement reports
		// one counterexample instead of a cascade.
		for _, m := range cyc {
			color[m] = black
		}
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			delete(onStack, top)
			color[top] = black
		}
	}
}

func (g *rankGraph) reportCycle(cyc []string) {
	// cyc is a node-key path n0 ... nk with n0 == nk.
	var names []string
	var witness []string
	var pos token.Position
	for i := 0; i+1 < len(cyc); i++ {
		e := g.edges[[2]string{cyc[i], cyc[i+1]}]
		if e == nil {
			continue
		}
		names = append(names, e.from.sym.String())
		witness = append(witness, fmt.Sprintf("%s acquired before %s at %s",
			e.from.sym, e.to.sym, g.site(e.to)))
		if i == 0 {
			pos = e.to.fn.pkg.Fset.Position(e.to.pos)
		}
	}
	if len(names) == 0 {
		return
	}
	names = append(names, names[0])
	g.pass.Report(lint.Diagnostic{
		Pos: pos,
		Message: "global lock-order cycle (potential deadlock): " +
			strings.Join(names, " -> "),
		Witness: witness,
	})
}
