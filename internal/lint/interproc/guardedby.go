package interproc

import (
	"fmt"
	"go/token"

	"repro/internal/lint"
)

// GuardedBy proves every semantic-ADT operation is dominated by an
// enclosing atomic section. The proof is an exposure analysis over the
// call graph: entry points are main/init, every function or method
// with an exported name (interface dispatch and reflection make
// anything exported reachable from unguarded code), and every function
// referenced as a value; exposure propagates through call edges that
// are not themselves dominated by a guard acquisition. A function whose
// whole body runs inside a section (an Atomically argument or a
// //semlock:atomic declaration) absorbs exposure; a function that
// receives the *core.Txn transfers the obligation to its callers by
// contract. Operations on instances the flow lattice proves
// thread-local (constructed locally, not yet escaped) are exempt.
// Goroutines escape their spawner's section by construction, so
// operations inside spawned or escaping literals are flagged no matter
// how the enclosing function is reached.
var GuardedBy = &lint.ProgramAnalyzer{
	Name: "guardedby",
	Doc:  "prove every semantic-ADT operation is dominated by an enclosing atomic section or certified baseline guard",
	Run:  runGuardedBy,
}

// exposure records how a function becomes reachable from unguarded
// code: the entry-point cause for roots, or the unguarded call edge
// from its parent.
type exposure struct {
	parent funcKey
	pos    token.Pos
	cause  string
}

func runGuardedBy(pass *lint.ProgramPass) {
	p := buildProgram(pass.Pkgs)

	exposed := make(map[funcKey]*exposure)
	var queue []funcKey
	expose := func(k funcKey, e *exposure) {
		if exposed[k] == nil {
			exposed[k] = e
			queue = append(queue, k)
		}
	}

	for _, k := range p.order {
		fi := p.funcs[k]
		// Goroutine targets first: a spawn escapes the spawner's
		// section even when the spawner only ever runs guarded.
		for _, c := range fi.calls {
			if !c.isGo {
				continue
			}
			if callee := p.funcs[c.callee]; callee != nil && !callee.sectionGuarded && !callee.hasTxnParam {
				expose(c.callee, &exposure{parent: k, pos: c.pos,
					cause: "spawned as a goroutine (escapes any enclosing section)"})
			}
		}
		if exemptPkg(fi.pkg.PkgPath) || fi.sectionGuarded || fi.hasTxnParam {
			continue
		}
		switch {
		case fi.rootCause != "":
			expose(k, &exposure{cause: fi.rootCause})
		case fi.isMain:
			expose(k, &exposure{cause: "main/init entry point"})
		case fi.exported:
			expose(k, &exposure{cause: "exported API (callable from unguarded code)"})
		}
	}

	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		fi := p.funcs[k]
		for _, c := range fi.calls {
			if c.guarded && !c.isGo {
				continue
			}
			callee := p.funcs[c.callee]
			if callee == nil || callee.sectionGuarded || callee.hasTxnParam {
				continue
			}
			expose(c.callee, &exposure{parent: k, pos: c.pos, cause: "called without a dominating guard"})
		}
	}

	for _, k := range p.order {
		fi := p.funcs[k]
		if exemptPkg(fi.pkg.PkgPath) {
			continue
		}
		exp := exposed[k]
		for _, op := range fi.ops {
			if op.guarded || !op.shared {
				continue
			}
			if exp == nil && !op.spawned {
				continue // only reachable through guarded paths
			}
			witness := witnessChain(p, exposed, k)
			if op.spawned {
				witness = append(witness,
					"operation runs inside a spawned goroutine or escaping func literal: it executes outside any enclosing atomic section")
			}
			witness = append(witness, op.flow)
			pass.Report(lint.Diagnostic{
				Pos: op.pkg.Fset.Position(op.pos),
				Message: fmt.Sprintf("%s.%s() on %s is reachable outside any atomic section",
					op.recv, op.method, op.class),
				Witness: witness,
			})
		}
	}
}

// witnessChain renders the caller chain from an entry point down to fn,
// one step per line, root first.
func witnessChain(p *program, exposed map[funcKey]*exposure, fn funcKey) []string {
	type step struct {
		key funcKey
		exp *exposure
	}
	var chain []step
	seen := make(map[funcKey]bool)
	for k := fn; k != "" && !seen[k] && len(chain) < 20; {
		seen[k] = true
		e := exposed[k]
		if e == nil {
			break
		}
		chain = append(chain, step{key: k, exp: e})
		k = e.parent
	}
	if len(chain) == 0 {
		return nil
	}
	// chain is leaf→root; render root-first.
	var lines []string
	root := chain[len(chain)-1]
	if fi := p.funcs[root.key]; fi != nil {
		lines = append(lines, fmt.Sprintf("entry point: %s — %s", fi.name, root.exp.cause))
	}
	for i := len(chain) - 2; i >= 0; i-- {
		st := chain[i]
		fi := p.funcs[st.key]
		parent := p.funcs[st.exp.parent]
		if fi == nil || parent == nil {
			continue
		}
		lines = append(lines, fmt.Sprintf("%s reaches %s (%s) at %s",
			parent.name, fi.name, st.exp.cause, parent.pkg.Fset.Position(st.exp.pos)))
	}
	return lines
}
