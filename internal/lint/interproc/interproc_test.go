package interproc

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// loadFixture type-checks testdata files as one package, the same way
// internal/lint's own tests do: the source importer resolves the
// fixture's repro/... imports because testdata/ sits inside the module.
func loadFixture(t *testing.T, pkgPath string, filenames ...string) *lint.Package {
	t.Helper()
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, filepath.Join("testdata", name), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking %v as %s: %v", filenames, pkgPath, err)
	}
	return &lint.Package{PkgPath: pkgPath, Dir: "testdata", Fset: fset, Files: files, Types: tpkg, Info: info}
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

func wantsOf(t *testing.T, filename string) map[int][]string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", filename))
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[int][]string)
	for i, line := range strings.Split(string(src), "\n") {
		for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
			wants[i+1] = append(wants[i+1], m[1])
		}
	}
	return wants
}

func matchWants(t *testing.T, file string, diags []lint.Diagnostic) {
	t.Helper()
	wants := wantsOf(t, file)
	for _, d := range diags {
		line := d.Pos.Line
		matched := -1
		for i, w := range wants[line] {
			if strings.Contains(d.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding: %s", d)
			continue
		}
		wants[line] = append(wants[line][:matched], wants[line][matched+1:]...)
	}
	for line, rest := range wants {
		for _, w := range rest {
			t.Errorf("%s:%d: expected a finding containing %q, got none", file, line, w)
		}
	}
}

func findDiag(diags []lint.Diagnostic, substr string) *lint.Diagnostic {
	for i := range diags {
		if strings.Contains(diags[i].Message, substr) {
			return &diags[i]
		}
	}
	return nil
}

func witnessText(d *lint.Diagnostic) string { return strings.Join(d.Witness, "\n") }

// TestGuardedBy pins the fixture findings exactly and checks the
// interprocedural witness chains.
func TestGuardedBy(t *testing.T) {
	pkg := loadFixture(t, "repro/tdata", "guardedby.go")
	diags := lint.RunProgram([]*lint.Package{pkg}, []*lint.ProgramAnalyzer{GuardedBy})
	matchWants(t, "guardedby.go", diags)

	// The helper's finding must name the exposing caller chain.
	sweep := findDiag(diags, "s.q.Dequeue()")
	if sweep == nil {
		t.Fatalf("no finding for sweep's Dequeue; got %v", diags)
	}
	w := witnessText(sweep)
	if !strings.Contains(w, "Evict") || !strings.Contains(w, "sweep") {
		t.Errorf("sweep witness should trace Evict -> sweep, got:\n%s", w)
	}

	peek := findDiag(diags, "s.m.Get()")
	if peek == nil {
		t.Fatalf("no finding for Peek's Get; got %v", diags)
	}
	if !strings.Contains(witnessText(peek), "exported API") {
		t.Errorf("Peek witness should name the exported entry point, got:\n%s", witnessText(peek))
	}

	spawn := findDiag(diags, "q.Enqueue()")
	if spawn == nil {
		t.Fatalf("no finding for the spawned Enqueue; got %v", diags)
	}
	if !strings.Contains(witnessText(spawn), "goroutine") {
		t.Errorf("spawned-op witness should mention the goroutine escape, got:\n%s", witnessText(spawn))
	}
}

// TestRankOrder: one constant inversion, the two seeded cycles (one of
// them interprocedural through the lockY splice), and nothing else.
func TestRankOrder(t *testing.T) {
	pkg := loadFixture(t, "repro/tdata", "rankorder.go")
	diags := lint.RunProgram([]*lint.Package{pkg}, []*lint.ProgramAnalyzer{RankOrder})

	inv := findDiag(diags, "rank 1 acquired after rank 2")
	if inv == nil {
		t.Fatalf("no constant-inversion finding; got %v", diags)
	}
	if len(inv.Witness) != 2 || !strings.Contains(witnessText(inv), "acquired first") {
		t.Errorf("inversion witness should show both sites, got:\n%s", witnessText(inv))
	}

	var cycles []*lint.Diagnostic
	for i := range diags {
		if strings.Contains(diags[i].Message, "lock-order cycle") {
			cycles = append(cycles, &diags[i])
		}
	}
	if len(cycles) != 2 {
		t.Fatalf("want 2 cycle findings (pair + grid), got %d: %v", len(cycles), diags)
	}
	var pairCyc, gridCyc *lint.Diagnostic
	for _, c := range cycles {
		switch {
		case strings.Contains(c.Message, "pair.rank"):
			pairCyc = c
		case strings.Contains(c.Message, "grid.rank"):
			gridCyc = c
		}
	}
	if pairCyc == nil || gridCyc == nil {
		t.Fatalf("cycles should name pair.rank* and grid.rank* symbols: %v", diags)
	}
	if !strings.Contains(witnessText(gridCyc), "lockY") {
		t.Errorf("grid cycle witness should cross the lockY splice, got:\n%s", witnessText(gridCyc))
	}

	if len(diags) != 3 {
		t.Errorf("want exactly 3 findings, got %d: %v", len(diags), diags)
	}

	// The branch arms of Pick/PickRev and the TwoPL baseline order must
	// contribute no findings — covered by the count above, but make the
	// intent explicit: no cycle may mention opt or bank symbols.
	for _, c := range cycles {
		if strings.Contains(c.Message, "opt.") || strings.Contains(c.Message, "bank.") {
			t.Errorf("false cycle through branch arms or TwoPL baseline: %s", c.Message)
		}
	}
}
