package interproc

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint"
)

// funcKey canonically names a function or method across separately
// type-checked packages. lint.Load type-checks every package with its
// own run of the source importer, so the *types.Func for
// repro/internal/adt.(*HashMap).Put seen from package A is a different
// object than the one seen from package B; the rendered
// "pkgpath.(*Recv).Name" string is the identity that survives.
type funcKey string

// origin classifies where an ADT-typed value came from, the top of the
// instance-flow lattice. Everything except a never-escaping local
// construction is conservatively shared.
type originKind int

const (
	originShared originKind = iota // param, field, global, unknown producer
	originLocal                    // constructed here by an adt/semadt constructor
)

// valInfo tracks one ADT-typed local (or parameter) of a function.
type valInfo struct {
	kind      originKind
	why       string    // human description for the witness
	escapePos token.Pos // earliest point the value escapes this function (NoPos = never)
	escapeWhy string
}

// opSite is one call to a semantic-ADT operation.
type opSite struct {
	pos     token.Pos
	pkg     *lint.Package
	recv    string // rendered receiver expression
	class   string // receiver type, e.g. "adt.HashMap"
	method  string
	guarded bool // dominated by a section entry or local guard acquisition
	spawned bool // inside a goroutine/escaping literal: outside any enclosing section
	shared  bool // receiver may be visible to other goroutines at this point
	flow    string
}

// callEdge is one statically resolved call.
type callEdge struct {
	callee  funcKey
	pos     token.Pos
	guarded bool
	isGo    bool
}

// funcInfo is the per-function summary.
type funcInfo struct {
	key      funcKey
	pkg      *lint.Package
	decl     *ast.FuncDecl
	name     string // display name, e.g. "(*Ours).Get"
	exported bool
	isMain   bool // main() or init() in package main (or any init)
	// sectionGuarded: the whole body runs inside a section — the decl
	// carries //semlock:atomic, or the function itself is passed to
	// core.Atomically.
	sectionGuarded bool
	hasTxnParam    bool // receives *core.Txn: obligation transfers to callers
	rootCause      string

	ops      []*opSite
	calls    []*callEdge
	topScope *rankScope
	scopes   []*rankScope
}

type program struct {
	pkgs  []*lint.Package
	funcs map[funcKey]*funcInfo
	order []funcKey
}

// exemptPkg: packages whose own bodies are the implementation of the
// checked machinery rather than clients of it.
func exemptPkg(path string) bool {
	for _, suf := range []string{
		"internal/adt", "internal/semadt", "internal/cc",
		"internal/core", "internal/lint",
	} {
		if strings.HasSuffix(path, suf) {
			return true
		}
	}
	return false
}

func buildProgram(pkgs []*lint.Package) *program {
	p := &program{pkgs: pkgs, funcs: make(map[funcKey]*funcInfo)}
	// Pass 1: register every declared function so call edges can point
	// at not-yet-scanned callees.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				key := keyOf(obj)
				fi := &funcInfo{
					key:      key,
					pkg:      pkg,
					decl:     fd,
					name:     displayName(fd, pkg),
					exported: ast.IsExported(fd.Name.Name),
					isMain: fd.Name.Name == "init" ||
						(fd.Name.Name == "main" && pkg.Types.Name() == "main"),
					hasTxnParam: signatureTakesTxn(obj),
					topScope:    &rankScope{},
				}
				if hasDocDirective(fd.Doc, "//semlock:atomic") {
					fi.sectionGuarded = true
				}
				p.funcs[key] = fi
				p.order = append(p.order, key)
			}
		}
	}
	sort.Slice(p.order, func(i, j int) bool { return p.order[i] < p.order[j] })
	// Pass 2: scan bodies (op sites, call edges, rank scopes, escapes).
	for _, key := range p.order {
		fi := p.funcs[key]
		s := &scanner{p: p, pkg: fi.pkg, fi: fi, vals: make(map[types.Object]*valInfo)}
		s.prepass()
		ctx := &guardCtx{guarded: fi.sectionGuarded, scope: fi.topScope}
		s.scanStmts(fi.decl.Body.List, ctx)
		fi.scopes = append([]*rankScope{fi.topScope}, fi.scopes...)
	}
	return p
}

// keyOf renders the canonical cross-package identity of fn.
func keyOf(fn *types.Func) funcKey {
	if fn.Pkg() == nil {
		return funcKey("builtin." + fn.Name())
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if pt, ok := t.(*types.Pointer); ok {
			t = pt.Elem()
			ptr = "*"
		}
		name := "?"
		if n, ok := t.(*types.Named); ok {
			name = n.Obj().Name()
		}
		return funcKey(fn.Pkg().Path() + ".(" + ptr + name + ")." + fn.Name())
	}
	return funcKey(fn.Pkg().Path() + "." + fn.Name())
}

func displayName(fd *ast.FuncDecl, pkg *lint.Package) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		return "(" + exprText(fd.Recv.List[0].Type) + ")." + fd.Name.Name
	}
	return pkg.Types.Name() + "." + fd.Name.Name
}

func signatureTakesTxn(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isTxnType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// ---- type predicates ----

// namedFrom reports the named type behind pointers if its package path
// ends in pkgSuffix.
func namedFrom(t types.Type, pkgSuffix string) (string, bool) {
	if t == nil {
		return "", false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", false
	}
	if !strings.HasSuffix(n.Obj().Pkg().Path(), pkgSuffix) {
		return "", false
	}
	return n.Obj().Name(), true
}

func isADTType(t types.Type) (string, bool) {
	if name, ok := namedFrom(t, "internal/adt"); ok {
		return "adt." + name, true
	}
	if name, ok := namedFrom(t, "internal/semadt"); ok {
		return "semadt." + name, true
	}
	return "", false
}

func isTxnType(t types.Type) bool {
	n, ok := namedFrom(t, "internal/core")
	return ok && n == "Txn"
}

func isTwoPLType(t types.Type) bool {
	n, ok := namedFrom(t, "internal/cc")
	return ok && n == "TwoPL"
}

// ---- the per-function scanner ----

type guardCtx struct {
	guarded   bool // inside an Atomically/TryOptimistic literal or a section-guarded decl
	guardSeen bool // a local guard acquisition appeared earlier in source order
	spawned   bool // inside a go-statement literal or a literal that escapes
	scope     *rankScope
}

type scanner struct {
	p    *program
	pkg  *lint.Package
	fi   *funcInfo
	vals map[types.Object]*valInfo
}

// prepass seeds the instance-flow lattice: classify every ADT-typed
// parameter and local, and record the earliest escape of each locally
// constructed instance (captured by a spawned/escaping literal, stored
// through a selector or index, sent on a channel, returned, or passed
// to another function).
func (s *scanner) prepass() {
	fd := s.fi.decl
	seed := func(fl *ast.FieldList, why string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				obj := s.pkg.Info.Defs[name]
				if obj == nil {
					continue
				}
				if _, ok := isADTType(obj.Type()); ok {
					s.vals[obj] = &valInfo{kind: originShared, why: why}
				}
			}
		}
	}
	seed(fd.Recv, "receiver")
	seed(fd.Type.Params, "parameter (callers may share the instance)")

	classify := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := s.pkg.Info.Defs[id]
		if obj == nil {
			obj = s.pkg.Info.Uses[id] // re-assignment of an existing local
		}
		if obj == nil {
			return
		}
		if _, ok := isADTType(obj.Type()); !ok {
			return
		}
		if prev, seen := s.vals[obj]; seen && prev.kind == originShared {
			return // once shared, stays shared
		}
		if rhs != nil && isConstructorCall(s.pkg, rhs) {
			s.vals[obj] = &valInfo{kind: originLocal, why: "constructed locally"}
			return
		}
		s.vals[obj] = &valInfo{kind: originShared, why: "produced by an untracked expression"}
	}

	escape := func(e ast.Expr, pos token.Pos, why string) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		obj := s.pkg.Info.Uses[id]
		if obj == nil {
			return
		}
		if v, tracked := s.vals[obj]; tracked && v.kind == originLocal {
			if v.escapePos == token.NoPos || pos < v.escapePos {
				v.escapePos = pos
				v.escapeWhy = why
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				classify(lhs, rhs)
				// A store through a selector/index publishes the RHS.
				if _, isIdent := lhs.(*ast.Ident); !isIdent && rhs != nil {
					escape(rhs, n.Pos(), "stored into "+exprText(lhs))
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, name := range vs.Names {
							var rhs ast.Expr
							if i < len(vs.Values) {
								rhs = vs.Values[i]
							}
							classify(name, rhs)
						}
					}
				}
			}
		case *ast.SendStmt:
			escape(n.Value, n.Pos(), "sent on a channel")
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				escape(r, n.Pos(), "returned to the caller")
			}
		case *ast.CallExpr:
			if isConstructorCall(s.pkg, n) {
				return true
			}
			for _, a := range n.Args {
				escape(a, n.Pos(), "passed to "+exprText(n.Fun))
			}
		case *ast.GoStmt:
			// Captures inside the spawned literal escape; the literal
			// case below covers the idents. The call's direct args
			// escape too.
			for _, a := range n.Call.Args {
				escape(a, n.Pos(), "handed to a spawned goroutine")
			}
		case *ast.FuncLit:
			switch litClass(s.pkg, fd.Body, n) {
			case litInherits, litSection:
				return true // runs synchronously: captures are not escapes
			}
			pos := n.Pos()
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					escape(id, pos, "captured by an escaping func literal")
				}
				return true
			})
			return true
		}
		return true
	})
}

// litClass classifies how a func literal relates to its enclosing
// guard context.
type litKind int

const (
	litEscapes  litKind = iota // go target, assigned, passed to an opaque call
	litInherits                // deferred or immediately invoked: same goroutine, same section
	litSection                 // argument of Atomically/TryOptimistic: starts/continues a section
)

// litClass finds the immediate use of lit inside body. Linear in the
// body size, but bodies are small and this runs once per literal.
func litClass(pkg *lint.Package, body *ast.BlockStmt, lit *ast.FuncLit) litKind {
	kind := litEscapes
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if n.Call.Fun == lit {
				kind = litEscapes
				return false
			}
		case *ast.DeferStmt:
			if n.Call.Fun == lit {
				kind = litInherits
				return false
			}
		case *ast.CallExpr:
			if n.Fun == lit {
				kind = litInherits // immediately invoked
				return false
			}
			for _, a := range n.Args {
				if a == lit {
					if isSectionEntry(pkg, n) || isTryOptimistic(pkg, n) || isPolicySection(pkg, n) {
						kind = litSection
					} else {
						kind = litEscapes
					}
					return false
				}
			}
		}
		return true
	})
	return kind
}

// isConstructorCall reports whether e constructs a fresh ADT instance:
// a call to a package-level function of internal/adt or internal/semadt
// (their exported constructors are the only such functions), or a
// composite literal of an ADT type.
func isConstructorCall(pkg *lint.Package, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		if _, isMethod := pkg.Info.Selections[sel]; isMethod {
			return false
		}
		fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		path := fn.Pkg().Path()
		return strings.HasSuffix(path, "internal/adt") || strings.HasSuffix(path, "internal/semadt")
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return isConstructorCall(pkg, e.X)
		}
	case *ast.CompositeLit:
		_, ok := isADTType(pkg.Info.TypeOf(e))
		return ok
	}
	return false
}

// ---- guard-relevant call classification ----

// isSectionEntry: core.Atomically(fn) or (*core.Txn).Atomically(fn).
func isSectionEntry(pkg *lint.Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if selObj, isMethod := pkg.Info.Selections[sel]; isMethod {
		fn, _ := selObj.Obj().(*types.Func)
		return fn != nil && fn.Name() == "Atomically" && isTxnType(selObj.Recv())
	}
	fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
	return fn != nil && fn.Name() == "Atomically" && fn.Pkg() != nil &&
		strings.HasSuffix(fn.Pkg().Path(), "internal/core")
}

// isPolicySection: (*resilience.Policy).Run(section) or
// resilience.HedgedRead(p, pessimistic, optimistic). The resilience
// layer runs every closure argument inside core.Atomically (HedgedRead
// additionally wraps its optimistic side in TryOptimistic), so the
// literal bodies are section-guarded exactly like Atomically arguments.
// HedgedRead is generic; an explicit instantiation shows up as an
// IndexExpr around the selector and is unwrapped first.
func isPolicySection(pkg *lint.Package, call *ast.CallExpr) bool {
	fun := call.Fun
	switch x := fun.(type) {
	case *ast.IndexExpr:
		fun = x.X
	case *ast.IndexListExpr:
		fun = x.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if selObj, isMethod := pkg.Info.Selections[sel]; isMethod {
		fn, _ := selObj.Obj().(*types.Func)
		if fn == nil || fn.Name() != "Run" {
			return false
		}
		n, ok := namedFrom(selObj.Recv(), "internal/resilience")
		return ok && n == "Policy"
	}
	fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
	return fn != nil && fn.Name() == "HedgedRead" && fn.Pkg() != nil &&
		strings.HasSuffix(fn.Pkg().Path(), "internal/resilience")
}

// isTryOptimistic: (*core.Txn).TryOptimistic(fn) — body runs on the
// same transaction, so it both enters a section and (for rank scoping)
// continues the current scope.
func isTryOptimistic(pkg *lint.Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selObj, isMethod := pkg.Info.Selections[sel]
	if !isMethod {
		return false
	}
	fn, _ := selObj.Obj().(*types.Func)
	return fn != nil && fn.Name() == "TryOptimistic" && isTxnType(selObj.Recv())
}

// guard method sets, keyed by receiver type.
var (
	txnGuardMethods = map[string]bool{
		"Lock": true, "LockWithin": true, "LockBatch": true,
		"LockOrdered": true, "Observe": true,
	}
	semGuardMethods = map[string]bool{"Acquire": true, "TryAcquire": true}
	ccGuardMethods  = map[string]map[string]bool{
		"GlobalLock": {"Enter": true},
		"TwoPL":      {"Lock": true, "LockOrdered": true},
		"Striped": {
			"Lock": true, "RLock": true, "LockAll": true, "LockPair": true,
		},
	}
	// Hand-optimized baselines guard ADT compounds with raw stdlib
	// mutexes (gossip's per-group RWMutex, for example). Those are
	// certified the same way as internal/cc: the obligation is "some
	// mutual-exclusion discipline dominates the op", not "the discipline
	// is ours".
	syncGuardMethods = map[string]map[string]bool{
		"Mutex":   {"Lock": true, "TryLock": true},
		"RWMutex": {"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true},
	}
)

// isGuardAcquire: a call that certifies the following source-order
// statements of the current function as protected — a Txn acquisition,
// a raw Semantic acquisition (hand-transcribed plan), or an
// internal/cc baseline guard.
func isGuardAcquire(pkg *lint.Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selObj, isMethod := pkg.Info.Selections[sel]
	if !isMethod {
		return false
	}
	fn, _ := selObj.Obj().(*types.Func)
	if fn == nil {
		return false
	}
	recv := selObj.Recv()
	if isTxnType(recv) && txnGuardMethods[fn.Name()] {
		return true
	}
	if n, ok := namedFrom(recv, "internal/core"); ok && n == "Semantic" && semGuardMethods[fn.Name()] {
		return true
	}
	if n, ok := namedFrom(recv, "internal/cc"); ok {
		if set := ccGuardMethods[n]; set != nil && set[fn.Name()] {
			return true
		}
	}
	if n, ok := namedFrom(recv, "sync"); ok {
		if set := syncGuardMethods[n]; set != nil && set[fn.Name()] {
			return true
		}
	}
	return false
}

// adtOp reports whether call is a semantic-ADT operation and describes
// it. Sem() is the wiring accessor, not an operation on the state.
func adtOp(pkg *lint.Package, call *ast.CallExpr) (recv ast.Expr, class, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", false
	}
	selObj, isMethod := pkg.Info.Selections[sel]
	if !isMethod {
		return nil, "", "", false
	}
	fn, _ := selObj.Obj().(*types.Func)
	if fn == nil || fn.Name() == "Sem" {
		return nil, "", "", false
	}
	class, isADT := isADTType(selObj.Recv())
	if !isADT {
		return nil, "", "", false
	}
	return sel.X, class, fn.Name(), true
}

// resolveCallee statically resolves a call's target, or "" for dynamic
// calls (interface dispatch, function values).
func resolveCallee(pkg *lint.Package, call *ast.CallExpr) funcKey {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return keyOf(fn)
		}
	case *ast.SelectorExpr:
		if selObj, isMethod := pkg.Info.Selections[fun]; isMethod {
			if fn, ok := selObj.Obj().(*types.Func); ok {
				if _, isIface := selObj.Recv().Underlying().(*types.Interface); isIface {
					return "" // dynamic dispatch
				}
				return keyOf(fn)
			}
			return ""
		}
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return keyOf(fn)
		}
	}
	return ""
}

// ---- ordered body walk ----

func (s *scanner) scanStmts(list []ast.Stmt, ctx *guardCtx) {
	for _, st := range list {
		s.scanStmt(st, ctx)
	}
}

func (s *scanner) scanStmt(st ast.Stmt, ctx *guardCtx) {
	switch st := st.(type) {
	case *ast.BlockStmt:
		s.scanStmts(st.List, ctx)
	case *ast.ExprStmt:
		s.scanExpr(st.X, ctx)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.scanExpr(e, ctx)
		}
		for _, e := range st.Lhs {
			if _, isIdent := e.(*ast.Ident); !isIdent {
				s.scanExpr(e, ctx)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.scanExpr(v, ctx)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.scanExpr(e, ctx)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, ctx)
		}
		s.scanExpr(st.Cond, ctx)
		// Branch-aware rank scoping: each arm sees the same prefix but
		// not each other, so then-only and else-only acquisitions never
		// produce a spurious mutual order.
		branch := &rankBranch{}
		outer := ctx.scope
		thenScope := &rankScope{}
		ctx.scope = thenScope
		s.scanStmts(st.Body.List, ctx)
		branch.alts = append(branch.alts, thenScope.items)
		if st.Else != nil {
			elseScope := &rankScope{}
			ctx.scope = elseScope
			s.scanStmt(st.Else, ctx)
			branch.alts = append(branch.alts, elseScope.items)
		}
		ctx.scope = outer
		if len(branch.alts[0]) > 0 || (len(branch.alts) > 1 && len(branch.alts[1]) > 0) {
			s.emit(ctx, branch)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, ctx)
		}
		if st.Cond != nil {
			s.scanExpr(st.Cond, ctx)
		}
		if st.Post != nil {
			s.scanStmt(st.Post, ctx)
		}
		s.scanStmts(st.Body.List, ctx)
	case *ast.RangeStmt:
		s.scanExpr(st.X, ctx)
		s.scanStmts(st.Body.List, ctx)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, ctx)
		}
		if st.Tag != nil {
			s.scanExpr(st.Tag, ctx)
		}
		s.scanClauses(st.Body.List, ctx, func(c ast.Stmt, inner *guardCtx) []ast.Stmt {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				return nil
			}
			for _, e := range cc.List {
				s.scanExpr(e, inner)
			}
			return cc.Body
		})
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, ctx)
		}
		s.scanStmt(st.Assign, ctx)
		s.scanClauses(st.Body.List, ctx, func(c ast.Stmt, inner *guardCtx) []ast.Stmt {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				return nil
			}
			return cc.Body
		})
	case *ast.SelectStmt:
		s.scanClauses(st.Body.List, ctx, func(c ast.Stmt, inner *guardCtx) []ast.Stmt {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				return nil
			}
			if cc.Comm != nil {
				s.scanStmt(cc.Comm, inner)
			}
			return cc.Body
		})
	case *ast.SendStmt:
		s.scanExpr(st.Chan, ctx)
		s.scanExpr(st.Value, ctx)
	case *ast.GoStmt:
		s.scanGo(st, ctx)
	case *ast.DeferStmt:
		s.scanDefer(st, ctx)
	case *ast.LabeledStmt:
		s.scanStmt(st.Stmt, ctx)
	case *ast.IncDecStmt:
		s.scanExpr(st.X, ctx)
	}
}

// scanClauses walks switch/select clause bodies as alternatives: like
// the arms of an if, the clauses of one switch extend the same rank
// prefix but impose no acquisition order on each other.
func (s *scanner) scanClauses(clauses []ast.Stmt, ctx *guardCtx, body func(ast.Stmt, *guardCtx) []ast.Stmt) {
	branch := &rankBranch{}
	outer := ctx.scope
	any := false
	for _, c := range clauses {
		clauseScope := &rankScope{}
		ctx.scope = clauseScope
		stmts := body(c, ctx)
		s.scanStmts(stmts, ctx)
		if len(clauseScope.items) > 0 {
			any = true
		}
		branch.alts = append(branch.alts, clauseScope.items)
	}
	ctx.scope = outer
	if any {
		s.emit(ctx, branch)
	}
}

// scanGo: the spawned body runs outside any enclosing section — its
// operations are flagged regardless of how the spawner is reached, and
// a named target becomes an entry point of the exposure analysis.
func (s *scanner) scanGo(st *ast.GoStmt, ctx *guardCtx) {
	for _, a := range st.Call.Args {
		s.scanExpr(a, ctx)
	}
	if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
		s.scanStmts(lit.Body.List, &guardCtx{spawned: true, scope: &rankScope{}})
		return
	}
	if callee := resolveCallee(s.pkg, st.Call); callee != "" {
		s.fi.calls = append(s.fi.calls, &callEdge{callee: callee, pos: st.Pos(), isGo: true})
	}
}

func (s *scanner) scanDefer(st *ast.DeferStmt, ctx *guardCtx) {
	for _, a := range st.Call.Args {
		s.scanExpr(a, ctx)
	}
	if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
		// A deferred literal runs on the same goroutine before the
		// section epilogue releases the locks, so it inherits the
		// current context (snapshot at the defer site — conservative).
		inner := *ctx
		s.scanStmts(lit.Body.List, &inner)
		return
	}
	s.recordCall(st.Call, ctx)
}

func (s *scanner) scanExpr(e ast.Expr, ctx *guardCtx) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		s.scanCall(e, ctx)
	case *ast.FuncLit:
		// A literal reaching here was not consumed by a recognized
		// call shape: it is assigned, returned, or passed onward, and
		// may run on any goroutine at any time.
		s.scanStmts(e.Body.List, &guardCtx{spawned: true, scope: &rankScope{}})
	case *ast.Ident:
		if fn, ok := s.pkg.Info.Uses[e].(*types.Func); ok {
			s.p.markValueRef(keyOf(fn))
		}
	case *ast.SelectorExpr:
		if selObj, isMethod := s.pkg.Info.Selections[e]; isMethod && selObj.Kind() == types.MethodVal {
			if fn, ok := selObj.Obj().(*types.Func); ok {
				s.p.markValueRef(keyOf(fn))
			}
		} else if fn, ok := s.pkg.Info.Uses[e.Sel].(*types.Func); ok {
			s.p.markValueRef(keyOf(fn))
		}
		s.scanExpr(e.X, ctx)
	case *ast.ParenExpr:
		s.scanExpr(e.X, ctx)
	case *ast.UnaryExpr:
		s.scanExpr(e.X, ctx)
	case *ast.BinaryExpr:
		s.scanExpr(e.X, ctx)
		s.scanExpr(e.Y, ctx)
	case *ast.StarExpr:
		s.scanExpr(e.X, ctx)
	case *ast.IndexExpr:
		s.scanExpr(e.X, ctx)
		s.scanExpr(e.Index, ctx)
	case *ast.SliceExpr:
		s.scanExpr(e.X, ctx)
		s.scanExpr(e.Low, ctx)
		s.scanExpr(e.High, ctx)
		s.scanExpr(e.Max, ctx)
	case *ast.TypeAssertExpr:
		s.scanExpr(e.X, ctx)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				s.scanExpr(kv.Value, ctx)
				continue
			}
			s.scanExpr(el, ctx)
		}
	case *ast.KeyValueExpr:
		s.scanExpr(e.Value, ctx)
	}
}

func (s *scanner) scanCall(call *ast.CallExpr, ctx *guardCtx) {
	// 1. Section entries: the literal body is guarded and gets its own
	// rank scope. Atomically starts a fresh transaction; TryOptimistic
	// runs on the enclosing one, but its Observe events never advance
	// the rank watermark and are discarded before any fallback locks
	// (core.Txn.TryOptimistic resets optSnaps), so for ordering
	// purposes the body is an isolated alternative too. The resilience
	// layer's Policy.Run and HedgedRead run their closures inside
	// core.Atomically, each on a fresh transaction, so the same applies.
	if isSectionEntry(s.pkg, call) || isTryOptimistic(s.pkg, call) || isPolicySection(s.pkg, call) {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			s.scanExpr(sel.X, ctx)
		}
		for _, a := range call.Args {
			if lit, ok := a.(*ast.FuncLit); ok {
				inner := &guardCtx{guarded: true, spawned: ctx.spawned, scope: &rankScope{}}
				s.fi.scopes = append(s.fi.scopes, inner.scope)
				s.scanStmts(lit.Body.List, inner)
				continue
			}
			// A named function passed whole to Atomically runs
			// entirely inside the section.
			if fn := funcRefOf(s.pkg, a); fn != "" {
				s.p.markSectionGuarded(fn)
				continue
			}
			s.scanExpr(a, ctx)
		}
		return
	}

	// 2. Guard acquisitions certify subsequent statements; Txn lock
	// calls additionally contribute rank events.
	if isGuardAcquire(s.pkg, call) {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			s.scanExpr(sel.X, ctx)
		}
		for _, a := range call.Args {
			s.scanExpr(a, ctx)
		}
		s.recordRankEvents(call, ctx)
		ctx.guardSeen = true
		return
	}

	// 3. ADT operations.
	if recvExpr, class, method, ok := adtOp(s.pkg, call); ok {
		site := &opSite{
			pos:     call.Pos(),
			pkg:     s.pkg,
			recv:    exprText(recvExpr),
			class:   class,
			method:  method,
			guarded: ctx.guarded || ctx.guardSeen,
			spawned: ctx.spawned,
			shared:  true,
			flow:    "receiver " + exprText(recvExpr) + " may be shared",
		}
		if id, isIdent := recvExpr.(*ast.Ident); isIdent {
			if obj := s.pkg.Info.Uses[id]; obj != nil {
				if v, tracked := s.vals[obj]; tracked {
					switch {
					case v.kind == originLocal && v.escapePos == token.NoPos:
						site.shared = false
						site.flow = "receiver " + id.Name + " is thread-local (" + v.why + ", never escapes)"
					case v.kind == originLocal && call.Pos() < v.escapePos:
						site.shared = false
						site.flow = fmt.Sprintf("receiver %s is still thread-local here (escapes at %s: %s)",
							id.Name, s.pkg.Fset.Position(v.escapePos), v.escapeWhy)
					case v.kind == originLocal:
						site.flow = fmt.Sprintf("receiver %s escaped at %s (%s)",
							id.Name, s.pkg.Fset.Position(v.escapePos), v.escapeWhy)
					default:
						site.flow = "receiver " + id.Name + ": " + v.why
					}
				}
			}
		}
		s.fi.ops = append(s.fi.ops, site)
		s.scanExpr(call.Fun.(*ast.SelectorExpr).X, ctx)
		for _, a := range call.Args {
			s.scanExpr(a, ctx)
		}
		return
	}

	// 4. Everything else: a call edge if statically resolvable.
	s.recordCall(call, ctx)
}

func (s *scanner) recordCall(call *ast.CallExpr, ctx *guardCtx) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		s.scanExpr(sel.X, ctx)
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		s.scanStmts(lit.Body.List, ctx) // immediately invoked: inherits
	}
	callee := resolveCallee(s.pkg, call)
	if callee != "" {
		s.fi.calls = append(s.fi.calls, &callEdge{
			callee:  callee,
			pos:     call.Pos(),
			guarded: ctx.guarded || ctx.guardSeen,
		})
		// Helpers that receive the transaction splice their acquisition
		// sequence into the caller's rank scope.
		for _, a := range call.Args {
			t := s.pkg.Info.TypeOf(a)
			if isTxnType(t) || isTwoPLType(t) {
				s.emit(ctx, &rankCall{callee: callee, pos: call.Pos()})
				break
			}
		}
	}
	for _, a := range call.Args {
		s.scanExpr(a, ctx)
	}
}

// funcRefOf resolves an expression that names a function (not a call).
func funcRefOf(pkg *lint.Package, e ast.Expr) funcKey {
	switch e := e.(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
			return keyOf(fn)
		}
	case *ast.SelectorExpr:
		if selObj, isMethod := pkg.Info.Selections[e]; isMethod {
			if fn, ok := selObj.Obj().(*types.Func); ok {
				return keyOf(fn)
			}
			return ""
		}
		if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
			return keyOf(fn)
		}
	}
	return ""
}

// markValueRef: a function referenced as a value can be called from
// anywhere — treat it as an entry point.
func (p *program) markValueRef(key funcKey) {
	if fi := p.funcs[key]; fi != nil && fi.rootCause == "" {
		fi.rootCause = "referenced as a function value"
	}
}

func (p *program) markSectionGuarded(key funcKey) {
	if fi := p.funcs[key]; fi != nil {
		fi.sectionGuarded = true
	}
}

// ---- misc ----

func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprText(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + exprText(e.X)
	case *ast.IndexExpr:
		return exprText(e.X) + "[" + exprText(e.Index) + "]"
	case *ast.CallExpr:
		return exprText(e.Fun) + "(...)"
	case *ast.ParenExpr:
		return "(" + exprText(e.X) + ")"
	case *ast.TypeAssertExpr:
		return exprText(e.X) + ".(...)"
	case *ast.BasicLit:
		return e.Value
	default:
		return "?"
	}
}

func hasDocDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

func constIntOf(pkg *lint.Package, e ast.Expr) (int64, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
