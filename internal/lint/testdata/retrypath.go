// Fixture for the retrypath analyzer: a bounded acquisition's error is
// the stall signal — discarding it races the section against the
// holders it failed to displace, and retrying it in an unbounded loop
// without a budget turns one stall into a retry storm.
package tdata

import (
	"time"

	"repro/internal/core"
	"repro/internal/resilience"
)

func discardedAsStatement(tx *core.Txn, sem *core.Semantic, m core.ModeID) {
	tx.LockWithin(sem, m, 0, time.Millisecond) // want "error discarded"
}

func discardedCancelVariant(tx *core.Txn, sem *core.Semantic, m core.ModeID, cancel <-chan struct{}) {
	tx.LockWithinCancel(sem, m, 0, time.Millisecond, cancel) // want "error discarded"
}

func discardedRawAcquire(sem *core.Semantic, m core.ModeID) {
	sem.AcquireWithin(m, time.Millisecond) // want "error discarded"
	sem.Release(m)                         // fixture: release to keep the snippet self-consistent
}

func blankAssigned(sem *core.Semantic, m core.ModeID, cancel <-chan struct{}) {
	_ = sem.AcquireWithinCancel(m, time.Millisecond, cancel) // want "assigned to _"
}

func handledErrorIsClean(tx *core.Txn, sem *core.Semantic, m core.ModeID) error {
	if err := tx.LockWithin(sem, m, 0, time.Millisecond); err != nil {
		return err
	}
	defer tx.UnlockAll()
	return nil
}

func unboundedRetryStorm(sem *core.Semantic, m core.ModeID) {
	for { // want "unbounded for-loop retries"
		if err := sem.AcquireWithin(m, time.Millisecond); err == nil {
			sem.Release(m)
			return
		}
	}
}

func counterBoundedRetryIsClean(tx *core.Txn, sem *core.Semantic, m core.ModeID) bool {
	for i := 0; i < 5; i++ {
		if err := tx.LockWithin(sem, m, 0, time.Millisecond); err == nil {
			tx.UnlockAll()
			return true
		}
	}
	return false
}

func budgetGatedRetryIsClean(sem *core.Semantic, m core.ModeID, budget *resilience.Budget) bool {
	for {
		if !budget.TryWithdraw() {
			return false
		}
		if err := sem.AcquireWithin(m, time.Millisecond); err == nil {
			sem.Release(m)
			return true
		}
	}
}

func policyDelegationIsClean(pol *resilience.Policy, sem *core.Semantic, m core.ModeID) {
	for {
		err := pol.Run(func(tx *core.Txn) error {
			return pol.Acquire(tx, sem, m, 0)
		})
		if err == nil {
			return
		}
	}
}

func spawnedWorkerIsItsOwnLoop(sem *core.Semantic, m core.ModeID, done chan error) {
	for {
		go func() {
			done <- sem.AcquireWithin(m, time.Millisecond)
		}()
		if <-done == nil {
			sem.Release(m)
			return
		}
	}
}

func suppressedOnPurpose(tx *core.Txn, sem *core.Semantic, m core.ModeID) {
	tx.LockWithin(sem, m, 0, time.Millisecond) //semlockvet:ignore retrypath -- fixture: demonstrates the escape hatch
	tx.UnlockAll()
}
