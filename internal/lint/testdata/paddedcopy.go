// Fixture for the paddedcopy analyzer. Lines expecting a finding carry
// a want marker checked by lint_test.go.
package tdata

import "repro/internal/padded"

type holder struct {
	hits *padded.Int32 // pointers are fine
}

func byValueParam(c padded.Int32) {} // want "padded.Int32 passed by value"

func byValueReturn() padded.Uint64 { // want "padded.Uint64 returned by value"
	var u padded.Uint64
	return u
}

func copies(h *holder, all []padded.Int32) {
	local := *h.hits // want "assignment copies padded.Int32 by value"
	_ = local
	var decl = *h.hits // want "declaration copies padded.Int32 by value"
	_ = decl
	for _, c := range all { // want "range copies padded.Int32 elements by value"
		_ = c
	}
}

func clean(h *holder, all []padded.Int32) {
	var zero padded.Int32 // declaring in place is fine
	_ = zero
	p := h.hits // copying the pointer is fine
	_ = p
	for i := range all { // indexing instead of copying is fine
		all[i].Add(1)
	}
}
