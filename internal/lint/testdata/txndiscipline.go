// Fixture for the txndiscipline analyzer and for the suppression
// directives (this fixture is type-checked under a package path that is
// NOT internal/core, so raw Semantic calls are findings).
package tdata

import "repro/internal/core"

type locked struct {
	sem *core.Semantic
}

func raw(l *locked, m core.ModeID) {
	l.sem.Acquire(m)          // want "raw Semantic.Acquire outside internal/core"
	ok := l.sem.TryAcquire(m) // want "raw Semantic.TryAcquire outside internal/core"
	_ = ok
	l.sem.Release(m) // want "raw Semantic.Release outside internal/core"
}

func disciplined(l *locked, m core.ModeID) {
	tx := core.NewTxn()
	defer tx.UnlockAll()
	tx.Lock(l.sem, m, 0) // the Txn layer is the sanctioned entry point
}

func suppressedInline(l *locked, m core.ModeID) {
	l.sem.Acquire(m) //semlockvet:ignore txndiscipline -- fixture exercises trailing suppression
	//semlockvet:ignore txndiscipline -- fixture exercises directive on the preceding line
	l.sem.Release(m)
}

// unrelatedAcquire makes sure the analyzer matches on the receiver
// type, not the method name alone.
type pool struct{}

func (pool) Acquire(core.ModeID) {}

func falsePositiveGuard(p pool, m core.ModeID) {
	p.Acquire(m) // not a core.Semantic: no finding
}
