// Fixture for the unlockpath analyzer; lint_test.go type-checks it
// under the package path repro/internal/modules/tdata so the
// modules-only gate applies.
package tdata

import (
	"errors"

	"repro/internal/core"
)

func earlyReturnLeak(tx *core.Txn, sem *core.Semantic, m core.ModeID, fail bool) error {
	tx.Lock(sem, m, 0)
	if fail {
		return errors.New("bail") // want "return leaves tx locked"
	}
	tx.UnlockAll()
	return nil
}

func neverUnlocks(tx *core.Txn, sem *core.Semantic, m core.ModeID) {
	tx.Lock(sem, m, 0) // want "tx.Lock without any UnlockAll in neverUnlocks"
}

func deferredIsClean(tx *core.Txn, sem *core.Semantic, m core.ModeID, fail bool) error {
	tx.Lock(sem, m, 0)
	defer tx.UnlockAll()
	if fail {
		return errors.New("bail")
	}
	return nil
}

func deferredClosureIsClean(tx *core.Txn, sem *core.Semantic, m core.ModeID) {
	tx.Lock(sem, m, 0)
	defer func() {
		tx.UnlockAll()
		tx.Reset()
	}()
}

func explicitOnEachPath(tx *core.Txn, sem *core.Semantic, m core.ModeID, fail bool) error {
	tx.LockOrdered(0, m, sem)
	if fail {
		tx.UnlockAll()
		return errors.New("bail")
	}
	tx.UnlockAll()
	return nil
}

func closureReturnIsNotAPath(tx *core.Txn, sem *core.Semantic, m core.ModeID) func() int {
	tx.Lock(sem, m, 0)
	f := func() int { return 1 } // a closure's return does not leave this frame
	tx.UnlockAll()
	return f
}
