// Fixture for malformed suppression directives: a directive without a
// reason (or with an unknown verb) suppresses nothing and is itself
// reported, so typo'd suppressions cannot silently disable a check.
package tdata

import "repro/internal/core"

type box struct{ sem *core.Semantic }

func bad(b *box, m core.ModeID) {
	//semlockvet:ignore txndiscipline // want "malformed semlockvet:ignore directive"
	b.sem.Acquire(m) // want "raw Semantic.Acquire"
	//semlockvet:frob txndiscipline -- bogus verb // want "unknown verb"
	b.sem.Release(m) // want "raw Semantic.Release"
}
