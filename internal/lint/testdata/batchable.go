// Fixture for the batchable analyzer: adjacent same-rank Txn.Lock
// calls should be fused into one Txn.LockBatch.
package tdata

import "repro/internal/core"

type sems struct {
	a, b, c *core.Semantic
	rank    int
}

const fixedRank = 3

func adjacentSameConstRank(s *sems, m core.ModeID) {
	tx := core.NewTxn()
	defer tx.UnlockAll()
	tx.Lock(s.a, m, 1) // want "3 adjacent tx.Lock calls at one rank"
	tx.Lock(s.b, m, 1)
	tx.Lock(s.c, m, 1)
}

func adjacentNamedConstRank(s *sems, m core.ModeID) {
	tx := core.NewTxn()
	defer tx.UnlockAll()
	tx.Lock(s.a, m, fixedRank) // want "2 adjacent tx.Lock calls at one rank"
	tx.Lock(s.b, m, 3)         // 3 == fixedRank: constants compare by value
}

func adjacentFieldRank(s *sems, m core.ModeID) {
	tx := core.NewTxn()
	defer tx.UnlockAll()
	tx.Lock(s.a, m, s.rank) // want "2 adjacent tx.Lock calls at one rank"
	tx.Lock(s.b, m, s.rank)
}

func differentRanks(s *sems, m core.ModeID) {
	tx := core.NewTxn()
	defer tx.UnlockAll()
	tx.Lock(s.a, m, 1) // fusion never crosses a rank boundary: no finding
	tx.Lock(s.b, m, 2)
}

func interveningStatement(s *sems, m core.ModeID) (n int) {
	tx := core.NewTxn()
	defer tx.UnlockAll()
	tx.Lock(s.a, m, 1) // the statement between may depend on the partial lock set
	n++
	tx.Lock(s.b, m, 1)
	return n
}

func differentTxns(s *sems, m core.ModeID) {
	tx := core.NewTxn()
	tx2 := core.NewTxn()
	defer tx.UnlockAll()
	defer tx2.UnlockAll()
	tx.Lock(s.a, m, 1) // two transactions: not one prologue
	tx2.Lock(s.b, m, 1)
}

func alreadyBatched(s *sems, m core.ModeID) {
	tx := core.NewTxn()
	defer tx.UnlockAll()
	tx.LockBatch(
		core.BatchLock{Sem: s.a, Mode: m, Rank: 1},
		core.BatchLock{Sem: s.b, Mode: m, Rank: 1},
	)
}

func suppressed(s *sems, m core.ModeID) {
	tx := core.NewTxn()
	defer tx.UnlockAll()
	tx.Lock(s.a, m, 1) //semlockvet:ignore batchable -- fixture exercises suppression
	tx.Lock(s.b, m, 1)
}
