// Fixture for occpure: //semlock:readonly sections must not mutate
// shared ADT state or package-level variables.
package tdata

import "repro/internal/semadt"

var hitCount int

//semlock:atomic
//semlock:readonly
func cleanLookup(m *semadt.Map, s *semadt.Set, k, j int) {
	v := m.Get(k)
	_ = v
	n := m.Size() // observer: fine
	has := s.Contains(j)
	local := n // local state: fine
	local++
	_, _ = has, local
}

//semlock:atomic
//semlock:readonly
func leakyCachingLookup(m *semadt.Map, k int) {
	v := m.Get(k)
	m.Put(k, v) // want "mutates Map state"
}

//semlock:atomic
//semlock:readonly
func membershipProbe(s *semadt.Set, q *semadt.Queue, j int) {
	if !s.Contains(j) {
		s.Add(j) // want "mutates Set state"
	}
	_ = q.Dequeue() // want "mutates Queue state"
}

//semlock:atomic
//semlock:readonly
func countedLookup(m *semadt.Map, k int) {
	_ = m.ContainsKey(k)
	hitCount++ // want "store to package-level hitCount"
}

//semlock:readonly
func notASection(m *semadt.Map, k int) { // want "without //semlock:atomic"
	_ = m.Get(k)
}

//semlock:atomic
func unmarkedMutator(m *semadt.Map, k int) {
	m.Put(k, k) // unmarked sections may mutate freely
}

//semlock:atomic
//semlock:readonly
func warmingLookup(m *semadt.Map, k int) {
	if m.Get(k) == nil {
		//semlockvet:ignore occpure -- cache warm-up runs before the server accepts traffic
		m.Put(k, k)
	}
}
