// Fixture for occpure: //semlock:readonly sections must not mutate
// shared ADT state or package-level variables.
package tdata

import "repro/internal/semadt"

var hitCount int

//semlock:atomic
//semlock:readonly
func cleanLookup(m *semadt.Map, s *semadt.Set, k, j int) {
	v := m.Get(k)
	_ = v
	n := m.Size() // observer: fine
	has := s.Contains(j)
	local := n // local state: fine
	local++
	_, _ = has, local
}

//semlock:atomic
//semlock:readonly
func leakyCachingLookup(m *semadt.Map, k int) {
	v := m.Get(k)
	m.Put(k, v) // want "mutates Map state"
}

//semlock:atomic
//semlock:readonly
func membershipProbe(s *semadt.Set, q *semadt.Queue, j int) {
	if !s.Contains(j) {
		s.Add(j) // want "mutates Set state"
	}
	_ = q.Dequeue() // want "mutates Queue state"
}

//semlock:atomic
//semlock:readonly
func countedLookup(m *semadt.Map, k int) {
	_ = m.ContainsKey(k)
	hitCount++ // want "store to package-level hitCount"
}

//semlock:readonly
func notASection(m *semadt.Map, k int) { // want "without //semlock:atomic"
	_ = m.Get(k)
}

//semlock:atomic
func unmarkedMutator(m *semadt.Map, k int) {
	m.Put(k, k) // unmarked sections may mutate freely
}

//semlock:atomic
//semlock:readonly
func warmingLookup(m *semadt.Map, k int) {
	if m.Get(k) == nil {
		//semlockvet:ignore occpure -- cache warm-up runs before the server accepts traffic
		m.Put(k, k)
	}
}

//semlock:atomic
//semlock:readonly
func deferredMutation(m *semadt.Map, k int) {
	defer m.Remove(k) // want "mutates Map state"
	_ = m.Get(k)
}

//semlock:atomic
//semlock:readonly
func spawnedMutation(s *semadt.Set, j int) {
	go s.Clear() // want "mutates Set state"
	_ = s.Contains(j)
}

//semlock:atomic
//semlock:readonly
func capturedMutator(m *semadt.Map, k int) {
	f := m.Put // want "captures a mutator"
	g := m.Get // observer method value: fine
	defer f(k, k)
	_ = g(k)
}

//semlock:atomic
//semlock:readonly
func methodExprMutator(m *semadt.Map, k int) {
	h := (*semadt.Map).Remove // want "captures a mutator"
	h(m, k)
}
