// Fixture for the abortpath analyzer: creating (or checking out) a
// core.Txn obliges the function to guard its release against panics —
// a deferred UnlockAll or an Atomically section — unless ownership is
// returned to the caller.
package tdata

import (
	"sync"

	"repro/internal/core"
)

func inlineReleaseIsNotPanicSafe(sem *core.Semantic, m core.ModeID) {
	tx := core.NewTxn() // want "without a panic-safe release"
	tx.Lock(sem, m, 0)
	tx.UnlockAll()
}

func checkedNeverReleases(sem *core.Semantic, m core.ModeID) {
	tx := core.NewCheckedTxn() // want "without a panic-safe release"
	tx.Lock(sem, m, 0)
}

func discardedCreationLeaks() {
	core.NewTxn() // want "without a panic-safe release"
}

var txnPool = sync.Pool{New: func() any { return core.NewTxn() }} // returned: caller guards

func pooledInlineRelease(sem *core.Semantic, m core.ModeID) {
	tx := txnPool.Get().(*core.Txn) // want "without a panic-safe release"
	tx.Lock(sem, m, 0)
	tx.UnlockAll()
	txnPool.Put(tx) // handing back to the pool is cleanup, not a guard
}

func deferredUnlockIsClean(sem *core.Semantic, m core.ModeID) {
	tx := core.NewTxn()
	defer tx.UnlockAll()
	tx.Lock(sem, m, 0)
}

func deferredClosureIsClean(sem *core.Semantic, m core.ModeID) {
	tx := txnPool.Get().(*core.Txn)
	defer func() {
		tx.UnlockAll()
		tx.Reset()
		txnPool.Put(tx)
	}()
	tx.Lock(sem, m, 0)
}

func atomicallyIsClean(sem *core.Semantic, m core.ModeID) {
	tx := core.NewTxn()
	tx.Atomically(func(tx *core.Txn) {
		tx.Lock(sem, m, 0)
	})
}

func handoffByReturnIsClean() *core.Txn {
	return core.NewTxn()
}

func handoffVariableIsClean(checked bool) *core.Txn {
	var tx *core.Txn
	if checked {
		tx = core.NewCheckedTxn()
	} else {
		tx = core.NewTxn()
	}
	return tx
}

func suppressedOnPurpose(sem *core.Semantic, m core.ModeID) {
	tx := core.NewTxn() //semlockvet:ignore abortpath -- fixture: demonstrates the escape hatch
	tx.Lock(sem, m, 0)
	tx.UnlockAll()
}
