// Fixture for the modemask analyzer.
package tdata

func intMask(slot int) uint64 {
	m := 1 << slot // want "constant 1 shifted by a variable count defaults to int"
	return uint64(m)
}

func explicitMask(slot int) uint64 {
	return uint64(1) << (slot & 63) // explicit width: clean
}

func contextMask(slot int) uint64 {
	var w uint64 = 1 << slot // shift adopts uint64 from the context: clean
	return w
}

func constCount() int {
	return 1 << 5 // constant count is a width, not a runtime mask: clean
}
