package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture type-checks one testdata file under a chosen package path
// (the path matters: unlockpath gates on internal/modules, and
// txndiscipline exempts internal/core). The source importer resolves
// the fixture's repro/... imports because testdata/ sits inside the
// module.
func loadFixture(t *testing.T, pkgPath string, filenames ...string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, filepath.Join("testdata", name), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking %v as %s: %v", filenames, pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Dir: "testdata", Fset: fset, Files: files, Types: tpkg, Info: info}
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// wantsOf scans a fixture for `// want "substring"` markers, keyed by
// 1-based line number.
func wantsOf(t *testing.T, filename string) map[int][]string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", filename))
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[int][]string)
	for i, line := range strings.Split(string(src), "\n") {
		for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
			wants[i+1] = append(wants[i+1], m[1])
		}
	}
	return wants
}

// TestAnalyzers runs each analyzer over its fixture and requires the
// findings to match the fixture's want markers exactly — every finding
// has a marker on its line, every marker is hit.
func TestAnalyzers(t *testing.T) {
	cases := []struct {
		file     string
		pkgPath  string
		analyzer *Analyzer
	}{
		{"paddedcopy.go", "repro/tdata", PaddedCopy},
		{"txndiscipline.go", "repro/tdata", TxnDiscipline},
		{"modemask.go", "repro/tdata", ModeMask},
		{"unlockpath.go", "repro/internal/modules/tdata", UnlockPath},
		{"abortpath.go", "repro/tdata", AbortPath},
		{"batchable.go", "repro/tdata", Batchable},
		{"directives.go", "repro/tdata", TxnDiscipline},
		{"occpure.go", "repro/tdata", OccPure},
		{"retrypath.go", "repro/tdata", RetryPath},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer.Name+"/"+tc.file, func(t *testing.T) {
			pkg := loadFixture(t, tc.pkgPath, tc.file)
			diags := Run([]*Package{pkg}, []*Analyzer{tc.analyzer})
			wants := wantsOf(t, tc.file)
			for _, d := range diags {
				line := d.Pos.Line
				matched := -1
				for i, w := range wants[line] {
					if strings.Contains(d.Message, w) {
						matched = i
						break
					}
				}
				if matched < 0 {
					t.Errorf("unexpected finding: %s", d)
					continue
				}
				wants[line] = append(wants[line][:matched], wants[line][matched+1:]...)
			}
			for line, rest := range wants {
				for _, w := range rest {
					t.Errorf("%s:%d: expected a finding containing %q, got none", tc.file, line, w)
				}
			}
		})
	}
}

// TestPathGates checks the package-path scoping: unlockpath is silent
// outside internal/modules, and txndiscipline is silent inside
// internal/core (where driving the raw mechanism is the job).
func TestPathGates(t *testing.T) {
	outside := loadFixture(t, "repro/tdata", "unlockpath.go")
	if diags := Run([]*Package{outside}, []*Analyzer{UnlockPath}); len(diags) != 0 {
		t.Errorf("unlockpath fired outside internal/modules: %v", diags)
	}
	inCore := loadFixture(t, "repro/internal/core", "txndiscipline.go")
	if diags := Run([]*Package{inCore}, []*Analyzer{TxnDiscipline}); len(diags) != 0 {
		t.Errorf("txndiscipline fired inside internal/core: %v", diags)
	}
	abortInCore := loadFixture(t, "repro/internal/core", "abortpath.go")
	if diags := Run([]*Package{abortInCore}, []*Analyzer{AbortPath}); len(diags) != 0 {
		t.Errorf("abortpath fired inside internal/core: %v", diags)
	}
	retryInCore := loadFixture(t, "repro/internal/core", "retrypath.go")
	if diags := Run([]*Package{retryInCore}, []*Analyzer{RetryPath}); len(diags) != 0 {
		t.Errorf("retrypath fired inside internal/core: %v", diags)
	}
	retryInResilience := loadFixture(t, "repro/internal/resilience", "retrypath.go")
	if diags := Run([]*Package{retryInResilience}, []*Analyzer{RetryPath}); len(diags) != 0 {
		t.Errorf("retrypath fired inside internal/resilience: %v", diags)
	}
}

// TestLoadModulePackage exercises the go list loader on a real package
// of this module.
func TestLoadModulePackage(t *testing.T) {
	pkgs, err := Load(".", "./internal/padded")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || !strings.HasSuffix(pkgs[0].PkgPath, "internal/padded") {
		t.Fatalf("loaded %v, want exactly internal/padded", pkgs)
	}
	if diags := Run(pkgs, All()); len(diags) != 0 {
		t.Errorf("internal/padded should be clean: %v", diags)
	}
}
