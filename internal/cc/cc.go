// Package cc provides the baseline concurrency-control mechanisms the
// paper's evaluation compares against (§6): a single global lock
// (Global), standard two-phase locking with one exclusive lock per ADT
// instance acquired in a fixed order (2PL), and lock striping (the
// building block of the hand-crafted Manual variants).
package cc

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// GlobalLock serializes whole atomic sections — the Global baseline.
type GlobalLock struct {
	mu sync.Mutex
}

// Enter begins the section.
func (g *GlobalLock) Enter() { g.mu.Lock() }

// Exit ends the section.
func (g *GlobalLock) Exit() { g.mu.Unlock() }

// instanceLockIDs provides the unique ids used for ordered acquisition.
var instanceLockIDs atomic.Uint64

// InstanceLock is the per-ADT-instance exclusive lock of the 2PL
// baseline. The paper derives this variant from the output of §3:
// instead of locking operations of instance A, a plain lock protecting
// A is acquired, in the same OS2PL order.
type InstanceLock struct {
	mu   sync.Mutex
	id   uint64
	rank int
}

// NewInstanceLock creates a lock with the given class rank.
func NewInstanceLock(rank int) *InstanceLock {
	return &InstanceLock{id: instanceLockIDs.Add(1), rank: rank}
}

// TwoPL is a transaction of the 2PL baseline: exclusive instance locks
// acquired in (rank, id) order and released together.
type TwoPL struct {
	held []*InstanceLock
}

// Lock acquires l unless already held. Callers must respect (rank, id)
// order across Lock calls; LockOrdered handles same-rank groups.
func (t *TwoPL) Lock(l *InstanceLock) {
	if l == nil || t.holds(l) {
		return
	}
	l.mu.Lock()
	t.held = append(t.held, l)
}

// LockOrdered acquires a group of same-rank locks in id order,
// skipping nils and duplicates.
func (t *TwoPL) LockOrdered(ls ...*InstanceLock) {
	sorted := make([]*InstanceLock, 0, len(ls))
	for _, l := range ls {
		if l != nil {
			sorted = append(sorted, l)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].id < sorted[j].id })
	for _, l := range sorted {
		t.Lock(l)
	}
}

func (t *TwoPL) holds(l *InstanceLock) bool {
	for _, h := range t.held {
		if h == l {
			return true
		}
	}
	return false
}

// UnlockAll releases every held lock.
func (t *TwoPL) UnlockAll() {
	for i := len(t.held) - 1; i >= 0; i-- {
		t.held[i].mu.Unlock()
	}
	t.held = t.held[:0]
}

// Striped is a fixed array of locks indexed by key hash — the classic
// lock-striping technique used by the Manual baselines (§6.1 uses 64
// stripes, as in Hawkins et al.).
type Striped struct {
	locks []sync.RWMutex
}

// NewStriped creates n stripes.
func NewStriped(n int) *Striped {
	return &Striped{locks: make([]sync.RWMutex, n)}
}

// N returns the stripe count.
func (s *Striped) N() int { return len(s.locks) }

// indexOf buckets a key.
func (s *Striped) indexOf(k core.Value) int {
	return int(core.HashOf(k) % uint64(len(s.locks)))
}

// Lock exclusively locks the stripe of k.
func (s *Striped) Lock(k core.Value) { s.locks[s.indexOf(k)].Lock() }

// Unlock releases the stripe of k.
func (s *Striped) Unlock(k core.Value) { s.locks[s.indexOf(k)].Unlock() }

// RLock read-locks the stripe of k.
func (s *Striped) RLock(k core.Value) { s.locks[s.indexOf(k)].RLock() }

// RUnlock releases a read lock on the stripe of k.
func (s *Striped) RUnlock(k core.Value) { s.locks[s.indexOf(k)].RUnlock() }

// LockAll exclusively acquires every stripe in index order (the
// stop-the-world path of hand-crafted variants, e.g. the cache flush).
func (s *Striped) LockAll() {
	for i := range s.locks {
		s.locks[i].Lock()
	}
}

// UnlockAll releases every stripe.
func (s *Striped) UnlockAll() {
	for i := range s.locks {
		s.locks[i].Unlock()
	}
}

// LockPair exclusively locks the stripes of two keys in index order
// (once when they collide), for hand-crafted two-key sections.
func (s *Striped) LockPair(a, b core.Value) {
	i, j := s.indexOf(a), s.indexOf(b)
	if i == j {
		s.locks[i].Lock()
		return
	}
	if i > j {
		i, j = j, i
	}
	s.locks[i].Lock()
	s.locks[j].Lock()
}

// UnlockPair undoes LockPair.
func (s *Striped) UnlockPair(a, b core.Value) {
	i, j := s.indexOf(a), s.indexOf(b)
	if i == j {
		s.locks[i].Unlock()
		return
	}
	s.locks[i].Unlock()
	s.locks[j].Unlock()
}
