package cc

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGlobalLockExcludes(t *testing.T) {
	var g GlobalLock
	var inside, violations atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Enter()
				if inside.Add(1) != 1 {
					violations.Add(1)
				}
				inside.Add(-1)
				g.Exit()
			}
		}()
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Errorf("%d violations", violations.Load())
	}
}

func TestTwoPLOrderedNoDeadlock(t *testing.T) {
	a, b := NewInstanceLock(0), NewInstanceLock(0)
	done := make(chan struct{}, 2)
	run := func(x, y *InstanceLock) {
		for i := 0; i < 2000; i++ {
			var tx TwoPL
			tx.LockOrdered(x, y)
			tx.UnlockAll()
		}
		done <- struct{}{}
	}
	go run(a, b)
	go run(b, a)
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("deadlock in ordered 2PL")
		}
	}
}

func TestTwoPLIdempotentLock(t *testing.T) {
	l := NewInstanceLock(0)
	var tx TwoPL
	tx.Lock(l)
	tx.Lock(l) // absorbed
	tx.Lock(nil)
	tx.UnlockAll()
	// Re-lockable afterwards (UnlockAll fully released).
	tx.Lock(l)
	tx.UnlockAll()
}

func TestTwoPLLockOrderedDedup(t *testing.T) {
	a, b := NewInstanceLock(0), NewInstanceLock(0)
	var tx TwoPL
	tx.LockOrdered(b, nil, a, b, a)
	if len(tx.held) != 2 {
		t.Errorf("held %d locks, want 2", len(tx.held))
	}
	tx.UnlockAll()
}

func TestStripedDistinctParallel(t *testing.T) {
	s := NewStriped(8)
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	// Find two keys in distinct stripes.
	k1, k2 := 0, -1
	for k := 1; k < 100; k++ {
		if s.indexOf(k) != s.indexOf(k1) {
			k2 = k
			break
		}
	}
	if k2 == -1 {
		t.Fatal("no distinct stripes found")
	}
	s.Lock(k1)
	acquired := make(chan struct{})
	go func() {
		s.Lock(k2)
		s.Unlock(k2)
		close(acquired)
	}()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("distinct stripes must not block each other")
	}
	s.Unlock(k1)
}

func TestStripedReadersShare(t *testing.T) {
	s := NewStriped(4)
	s.RLock(1)
	s.RLock(1) // second reader must not block
	s.RUnlock(1)
	s.RUnlock(1)
}

func TestStripedLockPair(t *testing.T) {
	s := NewStriped(8)
	// Same stripe: must lock once (no self-deadlock).
	var same int
	for k := 1; k < 200; k++ {
		if s.indexOf(k) == s.indexOf(0) {
			same = k
			break
		}
	}
	s.LockPair(0, same)
	s.UnlockPair(0, same)

	// Opposite orders from two goroutines: index ordering prevents
	// deadlock.
	done := make(chan struct{}, 2)
	run := func(a, b int) {
		for i := 0; i < 2000; i++ {
			s.LockPair(a, b)
			s.UnlockPair(a, b)
		}
		done <- struct{}{}
	}
	go run(1, 2)
	go run(2, 1)
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("LockPair deadlocked")
		}
	}
}

func TestStripedLockAll(t *testing.T) {
	s := NewStriped(16)
	s.LockAll()
	// Every stripe is exclusively held.
	probe := make(chan struct{})
	go func() {
		s.Lock(3)
		s.Unlock(3)
		close(probe)
	}()
	select {
	case <-probe:
		t.Fatal("stripe acquired while LockAll held")
	case <-time.After(50 * time.Millisecond):
	}
	s.UnlockAll()
	select {
	case <-probe:
	case <-time.After(5 * time.Second):
		t.Fatal("stripe never released")
	}
}
