package padded

import (
	"testing"
	"unsafe"
)

// The whole point of the package is the layout; assert it.
func TestLayout(t *testing.T) {
	if s := unsafe.Sizeof(Int32{}); s != CacheLineSize {
		t.Errorf("Int32 size = %d, want %d", s, CacheLineSize)
	}
	if s := unsafe.Sizeof(Uint64{}); s != CacheLineSize {
		t.Errorf("Uint64 size = %d, want %d", s, CacheLineSize)
	}
	// Slice elements must land in distinct cache lines.
	xs := make([]Int32, 4)
	for i := 1; i < len(xs); i++ {
		d := uintptr(unsafe.Pointer(&xs[i])) - uintptr(unsafe.Pointer(&xs[i-1]))
		if d != CacheLineSize {
			t.Errorf("adjacent Int32 elements %d bytes apart, want %d", d, CacheLineSize)
		}
	}
}

func TestOps(t *testing.T) {
	var i Int32
	if i.Add(5) != 5 || i.Load() != 5 {
		t.Error("Int32 Add/Load")
	}
	if !i.CompareAndSwap(5, 7) || i.Load() != 7 {
		t.Error("Int32 CompareAndSwap")
	}
	i.Store(1)
	if i.Load() != 1 {
		t.Error("Int32 Store")
	}
	var u Uint64
	if u.Add(3) != 3 || u.Load() != 3 {
		t.Error("Uint64 Add/Load")
	}
	u.Store(9)
	if u.Load() != 9 {
		t.Error("Uint64 Store")
	}
}
