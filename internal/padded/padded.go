// Package padded provides cache-line-padded atomic counters for the
// lock mechanism's hot arrays. The per-mode counters of Fig 20 are
// written on every acquisition; laying adjacent modes' counters in the
// same cache line makes logically-independent acquisitions contend in
// hardware (false sharing). Each padded type occupies exactly one
// 64-byte slot, so consecutive slice elements never share a line.
//
// The types deliberately expose only the atomic operations the lock
// mechanism uses; tests assert the 64-byte layout so a refactor cannot
// silently reintroduce sharing.
package padded

import "sync/atomic"

// CacheLineSize is the assumed coherence granule. 64 bytes covers
// amd64, arm64 (where the spatial prefetcher makes 128 the safer pair
// size, but 64 already separates adjacent counters), and riscv64.
const CacheLineSize = 64

// Int32 is an atomic int32 alone in its cache line.
type Int32 struct {
	v atomic.Int32
	_ [CacheLineSize - 4]byte
}

// Load atomically loads the value.
func (p *Int32) Load() int32 { return p.v.Load() }

// Store atomically stores v.
func (p *Int32) Store(v int32) { p.v.Store(v) }

// Add atomically adds delta and returns the new value.
func (p *Int32) Add(delta int32) int32 { return p.v.Add(delta) }

// CompareAndSwap executes the compare-and-swap operation.
func (p *Int32) CompareAndSwap(old, new int32) bool { return p.v.CompareAndSwap(old, new) }

// Int64 is an atomic int64 alone in its cache line.
type Int64 struct {
	v atomic.Int64
	_ [CacheLineSize - 8]byte
}

// Load atomically loads the value.
func (p *Int64) Load() int64 { return p.v.Load() }

// Store atomically stores v.
func (p *Int64) Store(v int64) { p.v.Store(v) }

// Add atomically adds delta and returns the new value.
func (p *Int64) Add(delta int64) int64 { return p.v.Add(delta) }

// Uint64 is an atomic uint64 alone in its cache line.
type Uint64 struct {
	v atomic.Uint64
	_ [CacheLineSize - 8]byte
}

// Load atomically loads the value.
func (p *Uint64) Load() uint64 { return p.v.Load() }

// Store atomically stores v.
func (p *Uint64) Store(v uint64) { p.v.Store(v) }

// Add atomically adds delta and returns the new value.
func (p *Uint64) Add(delta uint64) uint64 { return p.v.Add(delta) }

// Swap atomically stores v and returns the previous value.
func (p *Uint64) Swap(v uint64) uint64 { return p.v.Swap(v) }

// CompareAndSwap executes the compare-and-swap operation.
func (p *Uint64) CompareAndSwap(old, new uint64) bool { return p.v.CompareAndSwap(old, new) }
