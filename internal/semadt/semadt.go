// Package semadt provides "ADTs with semantic locking" (§2.2): the
// shared containers of internal/adt paired with their per-instance
// semantic locks. These are the types that code rewritten by the
// semlockc compiler (internal/gosrc) manipulates: every instance exposes
// Sem() for the inserted lock statements, while the standard API stays
// the familiar container interface.
package semadt

import (
	"repro/internal/adt"
	"repro/internal/core"
)

// Instance is implemented by every ADT-with-semantic-locking type.
type Instance interface {
	// Sem returns the instance's semantic lock.
	Sem() *core.Semantic
}

// Map is a Map ADT with semantic locking.
type Map struct {
	m   *adt.HashMap
	sem *core.Semantic
}

// NewMap creates a Map instance governed by the compiled mode table of
// its equivalence class.
func NewMap(tbl *core.ModeTable) *Map {
	return &Map{m: adt.NewHashMap(), sem: core.NewSemantic(tbl)}
}

// Sem returns the semantic lock.
func (x *Map) Sem() *core.Semantic { return x.sem }

// Get returns the binding of k (nil when absent).
func (x *Map) Get(k core.Value) core.Value { return x.m.Get(k) }

// Put binds k to v, returning the previous value.
func (x *Map) Put(k, v core.Value) core.Value { return x.m.Put(k, v) }

// Remove unbinds k, returning the removed value.
func (x *Map) Remove(k core.Value) core.Value { return x.m.Remove(k) }

// ContainsKey reports whether k is bound.
func (x *Map) ContainsKey(k core.Value) bool { return x.m.ContainsKey(k) }

// PutIfAbsent binds k to v when absent, returning the existing value.
func (x *Map) PutIfAbsent(k, v core.Value) core.Value { return x.m.PutIfAbsent(k, v) }

// Size returns the binding count.
func (x *Map) Size() int { return x.m.Size() }

// Clear removes all bindings.
func (x *Map) Clear() { x.m.Clear() }

// Values returns a snapshot of the bound values.
func (x *Map) Values() []core.Value { return x.m.Values() }

// Set is a Set ADT with semantic locking (Fig 3a).
type Set struct {
	s   *adt.HashSet
	sem *core.Semantic
}

// NewSet creates a Set instance governed by its class's mode table.
func NewSet(tbl *core.ModeTable) *Set {
	return &Set{s: adt.NewHashSet(), sem: core.NewSemantic(tbl)}
}

// Sem returns the semantic lock.
func (x *Set) Sem() *core.Semantic { return x.sem }

// Add inserts v.
func (x *Set) Add(v core.Value) { x.s.Add(v) }

// Remove deletes v.
func (x *Set) Remove(v core.Value) { x.s.Remove(v) }

// Contains reports membership.
func (x *Set) Contains(v core.Value) bool { return x.s.Contains(v) }

// Size returns the element count.
func (x *Set) Size() int { return x.s.Size() }

// Clear removes every element.
func (x *Set) Clear() { x.s.Clear() }

// Queue is a Queue ADT with semantic locking.
type Queue struct {
	q   *adt.Queue
	sem *core.Semantic
}

// NewQueue creates a Queue instance governed by its class's mode table.
func NewQueue(tbl *core.ModeTable) *Queue {
	return &Queue{q: adt.NewQueue(), sem: core.NewSemantic(tbl)}
}

// Sem returns the semantic lock.
func (x *Queue) Sem() *core.Semantic { return x.sem }

// Enqueue appends v.
func (x *Queue) Enqueue(v core.Value) { x.q.Enqueue(v) }

// Dequeue removes the oldest element (nil when empty).
func (x *Queue) Dequeue() core.Value {
	v, _ := x.q.Dequeue()
	return v
}

// IsEmpty reports emptiness.
func (x *Queue) IsEmpty() bool { return x.q.IsEmpty() }

// Size returns the element count.
func (x *Queue) Size() int { return x.q.Size() }

// Multimap is a Multimap ADT with semantic locking.
type Multimap struct {
	m   *adt.Multimap
	sem *core.Semantic
}

// NewMultimap creates a Multimap instance governed by its class's table.
func NewMultimap(tbl *core.ModeTable) *Multimap {
	return &Multimap{m: adt.NewMultimap(), sem: core.NewSemantic(tbl)}
}

// Sem returns the semantic lock.
func (x *Multimap) Sem() *core.Semantic { return x.sem }

// Put associates v with k.
func (x *Multimap) Put(k, v core.Value) bool { return x.m.Put(k, v) }

// Get returns a snapshot of k's values.
func (x *Multimap) Get(k core.Value) []core.Value { return x.m.Get(k) }

// Remove deletes the entry (k, v).
func (x *Multimap) Remove(k, v core.Value) bool { return x.m.Remove(k, v) }

// RemoveAll deletes every entry of k.
func (x *Multimap) RemoveAll(k core.Value) []core.Value { return x.m.RemoveAll(k) }

// ContainsEntry reports whether (k, v) is present.
func (x *Multimap) ContainsEntry(k, v core.Value) bool { return x.m.ContainsEntry(k, v) }

// Size returns the entry count.
func (x *Multimap) Size() int { return x.m.Size() }

// SemOf returns v's semantic lock when v is an Instance, else nil —
// the helper generated lock statements use on possibly-nil variables.
func SemOf(v core.Value) *core.Semantic {
	if v == nil {
		return nil
	}
	if inst, ok := v.(Instance); ok {
		return inst.Sem()
	}
	return nil
}

// ID returns the identity of an ADT value for φ (mode selection over
// pointer-valued arguments); non-ADT values pass through.
func ID(v core.Value) core.Value {
	if inst, ok := v.(Instance); ok {
		return inst.Sem().ID()
	}
	return v
}
