package semadt

import (
	"sync"
	"testing"

	"repro/internal/adtspecs"
	"repro/internal/core"
)

func tableFor(t *testing.T, adtName string) *core.ModeTable {
	t.Helper()
	spec := adtspecs.All()[adtName]
	return core.NewModeTable(spec, []core.SymSet{spec.AllOpsSet()}, core.TableOptions{Phi: core.NewPhi(4)})
}

func TestMapWrapper(t *testing.T) {
	m := NewMap(tableFor(t, "Map"))
	if m.Sem() == nil {
		t.Fatal("no semantic lock")
	}
	if m.Put("k", 1) != nil || m.Get("k") != 1 || !m.ContainsKey("k") {
		t.Error("map basics broken")
	}
	if m.PutIfAbsent("k", 9) != 1 || m.Size() != 1 {
		t.Error("putIfAbsent broken")
	}
	if len(m.Values()) != 1 {
		t.Error("values broken")
	}
	if m.Remove("k") != 1 {
		t.Error("remove broken")
	}
	m.Put("a", 1)
	m.Clear()
	if m.Size() != 0 {
		t.Error("clear broken")
	}
}

func TestSetQueueMultimapWrappers(t *testing.T) {
	s := NewSet(tableFor(t, "Set"))
	s.Add(1)
	s.Add(1)
	if s.Size() != 1 || !s.Contains(1) {
		t.Error("set broken")
	}
	s.Remove(1)
	s.Clear()

	q := NewQueue(tableFor(t, "Queue"))
	if !q.IsEmpty() || q.Dequeue() != nil {
		t.Error("fresh queue broken")
	}
	q.Enqueue("a")
	q.Enqueue("b")
	if q.Size() != 2 || q.Dequeue() != "a" || q.Dequeue() != "b" {
		t.Error("queue order broken")
	}

	mm := NewMultimap(tableFor(t, "Multimap"))
	if !mm.Put("k", 1) || mm.Put("k", 1) {
		t.Error("multimap put broken")
	}
	if !mm.ContainsEntry("k", 1) || len(mm.Get("k")) != 1 || mm.Size() != 1 {
		t.Error("multimap reads broken")
	}
	if !mm.Remove("k", 1) || len(mm.RemoveAll("k")) != 0 {
		t.Error("multimap removes broken")
	}
}

func TestSemOfAndID(t *testing.T) {
	m := NewMap(tableFor(t, "Map"))
	if SemOf(m) != m.Sem() {
		t.Error("SemOf must return the instance lock")
	}
	if SemOf(nil) != nil || SemOf(42) != nil {
		t.Error("SemOf of non-instances must be nil")
	}
	if ID(m) != m.Sem().ID() {
		t.Error("ID of an instance must be its lock id")
	}
	if ID(7) != 7 {
		t.Error("ID must pass plain values through")
	}
}

// TestWrapperConcurrent exercises the wrappers under goroutines (the
// underlying containers are linearizable; this is a smoke test of the
// pairing).
func TestWrapperConcurrent(t *testing.T) {
	m := NewMap(tableFor(t, "Map"))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := g*1000 + i
				m.Put(k, k)
				if m.Get(k) != k {
					t.Errorf("lost %d", k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if m.Size() != 2000 {
		t.Errorf("size = %d", m.Size())
	}
}
