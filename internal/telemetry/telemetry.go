// Package telemetry is the observability layer of the semantic-lock
// runtime: an always-on, allocation-free view of where acquisitions go
// under contention. The counters themselves live inside internal/core —
// per-mechanism padded cells maintained on the acquisition paths
// (fast-path vs slow-path, batch vs single, block events, cumulative
// wait nanos, stalls) plus process-wide section abort/panic counters —
// so registering an instance here costs nothing on the hot path; this
// package only aggregates atomic snapshots of counters the runtime
// maintains anyway, grouped by the application-level name and ADT class
// the instances were registered under.
//
// Exporters: Snapshot for programmatic use, Publish for expvar
// (/debug/vars), and Handler for a standalone JSON endpoint. cmd/gossipd
// wires all of them behind its -debug-addr flag.
package telemetry

import (
	"encoding/json"
	"expvar"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// GroupStats is the aggregated acquisition statistics of one registered
// group of instances sharing an ADT class: the sums of the instances'
// core.LockStats plus their outstanding holder counts.
type GroupStats struct {
	Group     string `json:"group"`
	Class     string `json:"class"`
	Instances int    `json:"instances"`
	FastPath  uint64 `json:"fast_path"`
	Slow      uint64 `json:"slow"`
	Waits     uint64 `json:"waits"`
	Batches   uint64 `json:"batches"`
	Stalls    uint64 `json:"stalls"`
	// WaitNanos is cumulative measured blocking time; zero unless
	// core.SetWaitTiming(true) or a Watchdog was active while waiters
	// parked (see core.LockStats.WaitNanos).
	WaitNanos int64 `json:"wait_nanos"`
	// OutstandingHolds is the instances' total live holder count at
	// snapshot time — nonzero while sections are executing, and a leak
	// indicator once a workload has drained (cf. Semantic.CheckQuiesced).
	OutstandingHolds int64 `json:"outstanding_holds"`
	// OptimisticHits / OptimisticRetries split the instances' completed
	// optimistic attempts (core.Txn.TryOptimistic) into validated
	// lock-free commits and discarded runs that re-ran through the
	// pessimistic fallback. A high retry share means the adaptive gate
	// is (or should be) closing the optimistic path for these instances.
	// OptimisticRefusals counts attempts turned away at observation time
	// before any body ran — a visible conflicting holder or a closed
	// mechanism; cheap, and deliberately excluded from the retry count
	// (see core.LockStats.OptimisticRefusals).
	OptimisticHits     uint64 `json:"optimistic_hits"`
	OptimisticRetries  uint64 `json:"optimistic_retries"`
	OptimisticRefusals uint64 `json:"optimistic_refusals"`
}

// PolicyStats is one resilience-policy component's state at snapshot
// time: a breaker's state machine position, a retry budget's token
// level, a gate's queue depth, a hedge engine's win/loss split. The
// shape is deliberately generic (string state + counter/rate maps) so
// telemetry does not import the resilience package; sources register
// the concrete values via RegisterPolicySource.
type PolicyStats struct {
	Policy   string             `json:"policy"`
	Kind     string             `json:"kind"`            // "breaker" | "budget" | "gate" | "hedge"
	State    string             `json:"state,omitempty"` // state-machine position, when the kind has one
	Counters map[string]uint64  `json:"counters,omitempty"`
	Rates    map[string]float64 `json:"rates,omitempty"`
}

// Snapshot is one atomic-per-counter view of the runtime: per-group
// aggregates plus the process-wide counters (parked-waiter population,
// panics recovered by section epilogues, section aborts) and any
// registered resilience-policy state. Counters are loaded individually
// without stopping the world, so a snapshot taken mid-workload is
// internally consistent per counter, not across counters.
type Snapshot struct {
	Groups                 []GroupStats  `json:"groups"`
	Policies               []PolicyStats `json:"policies,omitempty"`
	Net                    []NetStats    `json:"net,omitempty"`
	WaitersOutstanding     int64         `json:"waiters_outstanding"`
	SectionPanicsRecovered uint64        `json:"section_panics_recovered"`
	SectionAborts          uint64        `json:"section_aborts"`
}

// group is one registered instance collection. Exactly one of sems and
// provider is set.
type group struct {
	name     string
	class    string
	sems     []*core.Semantic
	provider func() []*core.Semantic
}

// policySource is one registered resilience-policy state provider.
type policySource struct {
	name string
	fn   func() []PolicyStats
}

// Registry maps application-level groups of Semantic instances to
// snapshot rows. Registration is cheap (it records the instance
// pointers, nothing more); all cost is on the snapshot reader.
// A Registry is safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	groups   []*group
	policies []policySource
	net      []netSource
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Default is the process-wide registry that Publish-based exporters
// (cmd/gossipd -debug-addr) read from.
var Default = NewRegistry()

// Register adds a fixed set of instances under (group, class). Multiple
// Register calls with the same names accumulate into one snapshot row.
func (r *Registry) Register(groupName, class string, sems ...*core.Semantic) {
	g := &group{name: groupName, class: class, sems: append([]*core.Semantic(nil), sems...)}
	r.mu.Lock()
	r.groups = append(r.groups, g)
	r.mu.Unlock()
}

// RegisterProvider adds a dynamic instance source under (group, class):
// every snapshot calls provider for the current instance list. The
// provider must be safe to call from the snapshot reader's goroutine —
// if the application mutates its instance collection concurrently (as
// gossip.Ours.Sems does during membership churn), snapshot only during
// quiescence or have the provider do its own synchronization.
func (r *Registry) RegisterProvider(groupName, class string, provider func() []*core.Semantic) {
	g := &group{name: groupName, class: class, provider: provider}
	r.mu.Lock()
	r.groups = append(r.groups, g)
	r.mu.Unlock()
}

// RegisterPolicySource adds a resilience-policy state provider under
// name: every snapshot calls fn and appends its rows to
// Snapshot.Policies. Like instance providers, fn runs on the snapshot
// reader's goroutine and must be internally synchronized.
func (r *Registry) RegisterPolicySource(name string, fn func() []PolicyStats) {
	r.mu.Lock()
	r.policies = append(r.policies, policySource{name: name, fn: fn})
	r.mu.Unlock()
}

// UnregisterPolicySource removes every policy source registered under
// name.
func (r *Registry) UnregisterPolicySource(name string) {
	r.mu.Lock()
	kept := r.policies[:0]
	for _, p := range r.policies {
		if p.name != name {
			kept = append(kept, p)
		}
	}
	for i := len(kept); i < len(r.policies); i++ {
		r.policies[i] = policySource{}
	}
	r.policies = kept
	r.mu.Unlock()
}

// Unregister removes every group registered under groupName.
func (r *Registry) Unregister(groupName string) {
	r.mu.Lock()
	kept := r.groups[:0]
	for _, g := range r.groups {
		if g.name != groupName {
			kept = append(kept, g)
		}
	}
	// Clear the dropped tail so unregistered groups don't pin instances.
	for i := len(kept); i < len(r.groups); i++ {
		r.groups[i] = nil
	}
	r.groups = kept
	r.mu.Unlock()
}

// Snapshot aggregates the current counter values into one Snapshot.
// Rows are sorted by (group, class).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	groups := append([]*group(nil), r.groups...)
	policies := append([]policySource(nil), r.policies...)
	netSources := append([]netSource(nil), r.net...)
	r.mu.Unlock()

	type key struct{ group, class string }
	rows := make(map[key]*GroupStats)
	order := make([]key, 0, len(groups))
	for _, g := range groups {
		k := key{g.name, g.class}
		row, ok := rows[k]
		if !ok {
			row = &GroupStats{Group: g.name, Class: g.class}
			rows[k] = row
			order = append(order, k)
		}
		sems := g.sems
		if g.provider != nil {
			sems = g.provider()
		}
		for _, s := range sems {
			if s == nil {
				continue
			}
			st := s.Stats()
			row.Instances++
			row.FastPath += st.FastPath
			row.Slow += st.Slow
			row.Waits += st.Waits
			row.Batches += st.Batches
			row.Stalls += st.Stalls
			row.WaitNanos += st.WaitNanos
			row.OutstandingHolds += s.OutstandingHolds()
			row.OptimisticHits += st.OptimisticHits
			row.OptimisticRetries += st.OptimisticRetries
			row.OptimisticRefusals += st.OptimisticRefusals
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].group != order[j].group {
			return order[i].group < order[j].group
		}
		return order[i].class < order[j].class
	})
	out := Snapshot{
		Groups:                 make([]GroupStats, 0, len(order)),
		WaitersOutstanding:     core.WaitersOutstanding(),
		SectionPanicsRecovered: core.SectionPanicsRecovered(),
		SectionAborts:          core.SectionAborts(),
	}
	for _, k := range order {
		out.Groups = append(out.Groups, *rows[k])
	}
	for _, p := range policies {
		out.Policies = append(out.Policies, p.fn()...)
	}
	for _, s := range netSources {
		out.Net = append(out.Net, s.fn()...)
	}
	return out
}

// RegisteredGroup is one registered group's identity plus its current
// instance list, with providers resolved at call time. The adaptive
// control plane walks these to pair each group's telemetry deltas with
// the core.Tuner handles it should retune — the registry is the single
// source of "which instances belong to which workload", so the
// controller needs no second registration channel.
type RegisteredGroup struct {
	Group string
	Class string
	Sems  []*core.Semantic
}

// Groups returns the currently registered groups with their instance
// lists. Rows with the same (group, class) are merged, matching the
// Snapshot aggregation, and sorted the same way. Providers are invoked
// on the caller's goroutine under the same rules as Snapshot.
func (r *Registry) Groups() []RegisteredGroup {
	r.mu.Lock()
	groups := append([]*group(nil), r.groups...)
	r.mu.Unlock()

	type key struct{ group, class string }
	rows := make(map[key]*RegisteredGroup)
	order := make([]key, 0, len(groups))
	for _, g := range groups {
		k := key{g.name, g.class}
		row, ok := rows[k]
		if !ok {
			row = &RegisteredGroup{Group: g.name, Class: g.class}
			rows[k] = row
			order = append(order, k)
		}
		sems := g.sems
		if g.provider != nil {
			sems = g.provider()
		}
		for _, s := range sems {
			if s != nil {
				row.Sems = append(row.Sems, s)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].group != order[j].group {
			return order[i].group < order[j].group
		}
		return order[i].class < order[j].class
	})
	out := make([]RegisteredGroup, 0, len(order))
	for _, k := range order {
		out = append(out, *rows[k])
	}
	return out
}

// expvar registration is process-global and panics on duplicate names,
// so the "semlock" variable is created once and reads whichever
// registry Publish was called on most recently.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// Publish exposes the registry's snapshot as the expvar variable
// "semlock" (visible at /debug/vars wherever expvar's handler is
// mounted). Safe to call repeatedly and from multiple registries; the
// variable reflects the most recently published registry.
func (r *Registry) Publish() {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("semlock", expvar.Func(func() any {
			if reg := expvarReg.Load(); reg != nil {
				return reg.Snapshot()
			}
			return Snapshot{}
		}))
	})
}

// Handler returns an http.Handler serving the registry's snapshot as
// indented JSON — the standalone form of the expvar export, mounted at
// /debug/semlock by cmd/gossipd.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}
