// Windowed rates: the resilience layer's breakers act on "stalls per
// second over the last N milliseconds", not lifetime counters, so this
// file adds small bucketed sliding windows and the StallFeed that fills
// one from core's unified stall-observer hook (core.SetStallObserver).
// Both stall clocks — bounded-acquisition timeouts and watchdog
// threshold scans — arrive on the same feed, so a breaker can never see
// two contradictory stall counts.

package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// RateWindow is a bucketed sliding-window event counter: Add records
// events now, Sum/Rate report over the trailing window only. The window
// is split into buckets; as time advances, expired buckets are zeroed
// lazily on the next access, so an idle window decays to zero without a
// background goroutine. Mutex-based — stall events are rare by
// definition, so the lock is never contended on a healthy runtime.
type RateWindow struct {
	mu        sync.Mutex
	bucketDur time.Duration
	buckets   []uint64
	head      int       // index of the bucket covering headStart
	headStart time.Time // start of the head bucket's interval
	total     uint64    // lifetime count, never decayed
}

// NewRateWindow creates a window covering the trailing `window` duration
// in `buckets` equal slices. buckets < 1 is treated as 1; window must be
// positive. When window is not divisible by buckets the bucket duration
// rounds UP (ceilDiv), so the covered span buckets×bucketDur is always
// >= the requested window — truncating here made a 1s/7-bucket window
// silently cover 994ms, under-reporting every rate read from it.
func NewRateWindow(window time.Duration, buckets int) *RateWindow {
	if buckets < 1 {
		buckets = 1
	}
	if window <= 0 {
		window = time.Second
	}
	return &RateWindow{
		bucketDur: ceilDiv(window, buckets),
		buckets:   make([]uint64, buckets),
		headStart: time.Now(),
	}
}

// ceilDiv splits window into n bucket durations rounding up, so the
// buckets jointly cover at least the requested window. A sliding window
// that covers slightly more than asked overcounts nothing — Sum still
// only reads recorded events — while one that covers less silently
// drops the tail of the requested span.
func ceilDiv(window time.Duration, n int) time.Duration {
	return (window + time.Duration(n) - 1) / time.Duration(n)
}

// advanceLocked rotates the ring so the head bucket covers now, zeroing
// every bucket whose interval expired. Callers hold mu.
func (w *RateWindow) advanceLocked(now time.Time) {
	steps := int(now.Sub(w.headStart) / w.bucketDur)
	if steps <= 0 {
		return
	}
	if steps >= len(w.buckets) {
		for i := range w.buckets {
			w.buckets[i] = 0
		}
		w.head = 0
		w.headStart = now
		return
	}
	for i := 0; i < steps; i++ {
		w.head = (w.head + 1) % len(w.buckets)
		w.buckets[w.head] = 0
	}
	w.headStart = w.headStart.Add(time.Duration(steps) * w.bucketDur)
}

// Add records n events at the current time.
func (w *RateWindow) Add(n uint64) {
	w.mu.Lock()
	w.advanceLocked(time.Now())
	w.buckets[w.head] += n
	w.total += n
	w.mu.Unlock()
}

// Sum returns the event count inside the trailing window.
func (w *RateWindow) Sum() uint64 {
	w.mu.Lock()
	w.advanceLocked(time.Now())
	var s uint64
	for _, b := range w.buckets {
		s += b
	}
	w.mu.Unlock()
	return s
}

// Rate returns events per second over the trailing window.
func (w *RateWindow) Rate() float64 {
	span := w.bucketDur * time.Duration(len(w.buckets))
	return float64(w.Sum()) / span.Seconds()
}

// Total returns the lifetime event count (never decayed).
func (w *RateWindow) Total() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total
}

// GaugeWindow tracks the maximum of a sampled gauge (outstanding
// waiters) over a trailing window, with the same lazy bucket rotation
// as RateWindow: Observe records a sample, Max reports the largest
// sample still inside the window. Breakers trip on the windowed max so
// a momentary dip between two samples cannot mask sustained pressure.
type GaugeWindow struct {
	mu        sync.Mutex
	bucketDur time.Duration
	buckets   []int64
	head      int
	headStart time.Time
}

// NewGaugeWindow creates a max-window covering the trailing `window`
// duration in `buckets` equal slices. As in NewRateWindow, the bucket
// duration rounds up so the covered span is never less than requested.
func NewGaugeWindow(window time.Duration, buckets int) *GaugeWindow {
	if buckets < 1 {
		buckets = 1
	}
	if window <= 0 {
		window = time.Second
	}
	return &GaugeWindow{
		bucketDur: ceilDiv(window, buckets),
		buckets:   make([]int64, buckets),
		headStart: time.Now(),
	}
}

func (w *GaugeWindow) advanceLocked(now time.Time) {
	steps := int(now.Sub(w.headStart) / w.bucketDur)
	if steps <= 0 {
		return
	}
	if steps >= len(w.buckets) {
		for i := range w.buckets {
			w.buckets[i] = 0
		}
		w.head = 0
		w.headStart = now
		return
	}
	for i := 0; i < steps; i++ {
		w.head = (w.head + 1) % len(w.buckets)
		w.buckets[w.head] = 0
	}
	w.headStart = w.headStart.Add(time.Duration(steps) * w.bucketDur)
}

// Observe records one gauge sample at the current time.
func (w *GaugeWindow) Observe(v int64) {
	w.mu.Lock()
	w.advanceLocked(time.Now())
	if v > w.buckets[w.head] {
		w.buckets[w.head] = v
	}
	w.mu.Unlock()
}

// Max returns the largest sample inside the trailing window.
func (w *GaugeWindow) Max() int64 {
	w.mu.Lock()
	w.advanceLocked(time.Now())
	var m int64
	for _, b := range w.buckets {
		if b > m {
			m = b
		}
	}
	w.mu.Unlock()
	return m
}

// StallFeed is the single funnel for core's stall observations: Install
// registers it as the process-wide stall observer, after which every
// bounded-acquisition timeout and every watchdog threshold report lands
// in one RateWindow and is fanned out to subscribers (resilience
// breakers keep per-policy windows this way). One feed, one clock — the
// satellite fix for StallError.Waited and Watchdog reports previously
// being two unrelated counts.
type StallFeed struct {
	win      *RateWindow
	timeouts atomic.Uint64
	watchdog atomic.Uint64

	mu   sync.Mutex
	subs []func(core.StallEvent)
}

// NewStallFeed creates a feed whose windowed rate covers the trailing
// `window` duration in `buckets` slices.
func NewStallFeed(window time.Duration, buckets int) *StallFeed {
	return &StallFeed{win: NewRateWindow(window, buckets)}
}

// Install registers the feed as the process-wide stall observer and
// returns the previously installed observer (chained: the feed forwards
// every event to it, so installing a feed never silences an existing
// consumer). Uninstall by calling core.SetStallObserver with the
// returned value — or nil to clear everything.
func (f *StallFeed) Install() (prev func(core.StallEvent)) {
	prev = core.SetStallObserver(f.observe)
	f.mu.Lock()
	if prev != nil {
		f.subs = append(f.subs, prev)
	}
	f.mu.Unlock()
	return prev
}

// Subscribe adds a synchronous consumer called for every stall event.
// Subscribers run on the stalling goroutine or the watchdog sampler —
// keep them brief and never acquire semantic locks inside.
func (f *StallFeed) Subscribe(fn func(core.StallEvent)) {
	f.mu.Lock()
	f.subs = append(f.subs, fn)
	f.mu.Unlock()
}

func (f *StallFeed) observe(ev core.StallEvent) {
	f.win.Add(1)
	if ev.Source == core.StallWatchdog {
		f.watchdog.Add(1)
	} else {
		f.timeouts.Add(1)
	}
	f.mu.Lock()
	subs := f.subs
	f.mu.Unlock()
	for _, fn := range subs {
		fn(ev)
	}
}

// Rate returns stall events per second over the trailing window.
func (f *StallFeed) Rate() float64 { return f.win.Rate() }

// Sum returns the stall events inside the trailing window.
func (f *StallFeed) Sum() uint64 { return f.win.Sum() }

// Counts returns the lifetime event counts by source.
func (f *StallFeed) Counts() (timeouts, watchdog uint64) {
	return f.timeouts.Load(), f.watchdog.Load()
}
