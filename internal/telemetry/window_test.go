package telemetry_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

func TestRateWindowDecays(t *testing.T) {
	w := telemetry.NewRateWindow(40*time.Millisecond, 4)
	w.Add(10)
	if s := w.Sum(); s != 10 {
		t.Fatalf("Sum = %d, want 10", s)
	}
	if tot := w.Total(); tot != 10 {
		t.Fatalf("Total = %d, want 10", tot)
	}
	// After a full window passes the sum decays to zero; the lifetime
	// total does not.
	time.Sleep(60 * time.Millisecond)
	if s := w.Sum(); s != 0 {
		t.Fatalf("Sum after window = %d, want 0", s)
	}
	if tot := w.Total(); tot != 10 {
		t.Fatalf("Total after window = %d, want 10", tot)
	}
	// New events land in a fresh bucket.
	w.Add(3)
	if s := w.Sum(); s != 3 {
		t.Fatalf("Sum after re-add = %d, want 3", s)
	}
	if r := w.Rate(); r <= 0 {
		t.Fatalf("Rate = %v, want > 0", r)
	}
}

func TestGaugeWindowMaxDecays(t *testing.T) {
	w := telemetry.NewGaugeWindow(40*time.Millisecond, 4)
	w.Observe(7)
	w.Observe(3) // lower sample must not shrink the max
	if m := w.Max(); m != 7 {
		t.Fatalf("Max = %d, want 7", m)
	}
	time.Sleep(60 * time.Millisecond)
	if m := w.Max(); m != 0 {
		t.Fatalf("Max after window = %d, want 0", m)
	}
}

// TestStallFeedUnifiesClocks: both core stall sources must land in the
// feed's single window, split by source in the lifetime counts, and fan
// out to subscribers.
func TestStallFeedUnifiesClocks(t *testing.T) {
	f := telemetry.NewStallFeed(time.Second, 4)
	prev := f.Install()
	defer core.SetStallObserver(prev)

	var mu sync.Mutex
	var seen []core.StallEvent
	f.Subscribe(func(ev core.StallEvent) {
		mu.Lock()
		seen = append(seen, ev)
		mu.Unlock()
	})

	tbl, keys, _ := keyedTable(t)
	s := core.NewSemantic(tbl)
	m := keys.Mode(1)
	s.Acquire(m)
	if err := s.AcquireWithin(m, 5*time.Millisecond); err == nil {
		t.Fatal("acquisition against a live holder succeeded")
	}
	s.Release(m)

	if got := f.Sum(); got != 1 {
		t.Fatalf("windowed sum = %d, want 1", got)
	}
	timeouts, watchdog := f.Counts()
	if timeouts != 1 || watchdog != 0 {
		t.Fatalf("counts = (%d,%d), want (1,0)", timeouts, watchdog)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || seen[0].Source != core.StallTimeout {
		t.Fatalf("subscriber saw %+v, want one timeout event", seen)
	}
}

func TestPolicySourcesInSnapshot(t *testing.T) {
	r := telemetry.NewRegistry()
	r.RegisterPolicySource("p1", func() []telemetry.PolicyStats {
		return []telemetry.PolicyStats{{Policy: "p1", Kind: "breaker", State: "closed",
			Counters: map[string]uint64{"tripped": 2}}}
	})
	snap := r.Snapshot()
	if len(snap.Policies) != 1 {
		t.Fatalf("Policies = %+v, want 1 row", snap.Policies)
	}
	p := snap.Policies[0]
	if p.Policy != "p1" || p.Kind != "breaker" || p.State != "closed" || p.Counters["tripped"] != 2 {
		t.Fatalf("row = %+v", p)
	}
	r.UnregisterPolicySource("p1")
	if snap := r.Snapshot(); len(snap.Policies) != 0 {
		t.Fatalf("Policies after unregister = %+v, want none", snap.Policies)
	}
}
