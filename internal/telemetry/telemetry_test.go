package telemetry_test

import (
	"encoding/json"
	"expvar"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/adtspecs"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/papersec"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

func keyedTable(t *testing.T) (*core.ModeTable, core.SetRef, core.SetRef) {
	t.Helper()
	keySet := core.SymSetOf(
		core.SymOpOf("get", core.VarArg("k")),
		core.SymOpOf("put", core.VarArg("k"), core.Star()),
		core.SymOpOf("remove", core.VarArg("k")))
	sizeSet := core.SymSetOf(core.SymOpOf("size"))
	tbl := core.NewModeTable(adtspecs.Map(), []core.SymSet{keySet, sizeSet},
		core.TableOptions{Phi: core.NewPhi(4)})
	return tbl, tbl.Set(keySet), tbl.Set(sizeSet)
}

// TestRegistrySnapshotAggregates: the snapshot rows must equal the sums
// of the registered instances' own Stats.
func TestRegistrySnapshotAggregates(t *testing.T) {
	tbl, keys, _ := keyedTable(t)
	a, b := core.NewSemantic(tbl), core.NewSemantic(tbl)
	for i := 0; i < 10; i++ {
		m := keys.Mode(i)
		a.Acquire(m)
		a.Release(m)
		if i < 5 {
			b.Acquire(m)
			b.Release(m)
		}
	}
	m0 := keys.Mode(0)
	b.Acquire(m0) // leave one hold outstanding

	r := telemetry.NewRegistry()
	r.Register("maps", "Map", a, b)
	snap := r.Snapshot()
	if len(snap.Groups) != 1 {
		t.Fatalf("got %d rows, want 1", len(snap.Groups))
	}
	row := snap.Groups[0]
	if row.Group != "maps" || row.Class != "Map" || row.Instances != 2 {
		t.Errorf("row identity = %+v", row)
	}
	want := a.Stats().FastPath + b.Stats().FastPath
	if row.FastPath != want {
		t.Errorf("FastPath = %d, want %d", row.FastPath, want)
	}
	if row.OutstandingHolds != 1 {
		t.Errorf("OutstandingHolds = %d, want 1", row.OutstandingHolds)
	}
	b.Release(m0)
	if got := r.Snapshot().Groups[0].OutstandingHolds; got != 0 {
		t.Errorf("OutstandingHolds after release = %d, want 0", got)
	}
}

// TestRegistryProviderAndUnregister: provider-backed groups re-read
// their instance list each snapshot; Unregister removes all groups of
// a name.
func TestRegistryProviderAndUnregister(t *testing.T) {
	tbl, keys, _ := keyedTable(t)
	var mu sync.Mutex
	var sems []*core.Semantic
	r := telemetry.NewRegistry()
	r.RegisterProvider("dyn", "Map", func() []*core.Semantic {
		mu.Lock()
		defer mu.Unlock()
		return append([]*core.Semantic(nil), sems...)
	})
	if got := r.Snapshot().Groups[0].Instances; got != 0 {
		t.Fatalf("Instances = %d, want 0", got)
	}
	s := core.NewSemantic(tbl)
	m := keys.Mode(1)
	s.Acquire(m)
	s.Release(m)
	mu.Lock()
	sems = append(sems, s)
	mu.Unlock()
	row := r.Snapshot().Groups[0]
	if row.Instances != 1 || row.FastPath != 1 {
		t.Errorf("row = %+v, want 1 instance with 1 fast-path acquire", row)
	}
	r.Unregister("dyn")
	if n := len(r.Snapshot().Groups); n != 0 {
		t.Errorf("groups after Unregister = %d, want 0", n)
	}
}

// TestSectionCountersInSnapshot: panics recovered by Atomically and
// Txn.Abort calls show up in the snapshot (as monotone process-wide
// counters, asserted by delta).
func TestSectionCountersInSnapshot(t *testing.T) {
	r := telemetry.NewRegistry()
	before := r.Snapshot()
	func() {
		defer func() {
			if _, ok := recover().(*core.SectionPanic); !ok {
				t.Error("expected *core.SectionPanic")
			}
		}()
		core.Atomically(func(*core.Txn) { panic("boom") })
	}()
	core.Atomically(func(tx *core.Txn) { tx.Abort() })
	after := r.Snapshot()
	if d := after.SectionPanicsRecovered - before.SectionPanicsRecovered; d != 1 {
		t.Errorf("SectionPanicsRecovered delta = %d, want 1", d)
	}
	if d := after.SectionAborts - before.SectionAborts; d != 1 {
		t.Errorf("SectionAborts delta = %d, want 1", d)
	}
}

// TestPublishAndHandler: the expvar variable and the JSON handler both
// serve a decodable snapshot.
func TestPublishAndHandler(t *testing.T) {
	tbl, keys, _ := keyedTable(t)
	s := core.NewSemantic(tbl)
	m := keys.Mode(2)
	s.Acquire(m)
	s.Release(m)
	r := telemetry.NewRegistry()
	r.Register("pub", "Map", s)
	r.Publish()
	r.Publish() // idempotent — must not panic on the duplicate expvar name

	v := expvar.Get("semlock")
	if v == nil {
		t.Fatal("expvar semlock not published")
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar JSON: %v", err)
	}
	if len(snap.Groups) != 1 || snap.Groups[0].FastPath != 1 {
		t.Errorf("expvar snapshot = %+v", snap)
	}

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/semlock", nil))
	snap = telemetry.Snapshot{}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("handler JSON: %v", err)
	}
	if len(snap.Groups) != 1 || snap.Groups[0].Group != "pub" {
		t.Errorf("handler snapshot = %+v", snap)
	}
}

// TestTraceMatchesVerifierSchedule runs the synthesized Fig 7 section
// on traced unchecked transactions and asserts every recorded schedule
// realizes the verifier's predicted order — the telemetry twin of the
// checked-transaction crosscheck, exercising StartTrace/TraceEvents
// plus ScheduleWidths/CheckSchedule end to end.
func TestTraceMatchesVerifierSchedule(t *testing.T) {
	seeder := &ir.Atomic{
		Name: "seed",
		Vars: []ir.Param{
			{Name: "m", Type: "Map", IsADT: true, NonNull: true},
			{Name: "s", Type: "Set", IsADT: true, NonNull: true},
			{Name: "k", Type: "int"},
		},
		Body: ir.Block{
			&ir.Call{Recv: "m", Method: "put", Args: []ir.Expr{ir.VarRef{Name: "k"}, ir.VarRef{Name: "s"}}},
		},
	}
	res, err := synth.Synthesize(
		&synth.Program{Sections: []*ir.Atomic{papersec.Fig7(), seeder}, Specs: adtspecs.All()},
		synth.DefaultOptions(),
	)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	maxAtRank := telemetry.ScheduleWidths(res, 0)
	if len(maxAtRank) < 2 {
		t.Fatalf("fig7 should lock several classes, got rank map %v", maxAtRank)
	}

	e := interp.NewExecutor(res, false)
	e.EvalOpaque = func(text string, env map[string]core.Value) core.Value {
		if text == "s1!=null && s2!=null" {
			return env["s1"] != nil && env["s2"] != nil
		}
		t.Fatalf("unexpected opaque condition %q", text)
		return nil
	}
	m := e.NewInstance("Map", "Map")
	q := e.NewInstance("Queue", "Queue")
	const keys = 4
	for k := 0; k < keys; k++ {
		env := map[string]core.Value{"m": m, "s": e.NewInstance("Set", "Set"), "k": k}
		if err := e.Run(1, env); err != nil {
			t.Fatalf("seed: %v", err)
		}
	}

	rng := rand.New(rand.NewSource(1))
	tx := core.NewTxn()
	for i := 0; i < 200; i++ {
		tx.Reset()
		tx.StartTrace(64)
		env := map[string]core.Value{
			"m": m, "q": q, "s1": nil, "s2": nil,
			"key1": rng.Intn(keys), "key2": rng.Intn(keys),
		}
		if err := e.RunWithTxn(0, env, tx, nil); err != nil {
			t.Fatal(err)
		}
		ev := tx.TraceEvents()
		if len(ev) == 0 || tx.TraceTotal() != len(ev) {
			t.Fatalf("trace lost events: total=%d, got %d", tx.TraceTotal(), len(ev))
		}
		if err := telemetry.CheckSchedule(ev, maxAtRank); err != nil {
			t.Fatalf("iteration %d: %v (events %v)", i, err, ev)
		}
	}
}

// TestTraceEqualsCheckedLog: on a checked transaction the trace ring
// (when large enough) must record exactly the acquisitions the checked
// log records — both feed off recordHeld.
func TestTraceEqualsCheckedLog(t *testing.T) {
	tbl, keys, _ := keyedTable(t)
	a, b := core.NewSemantic(tbl), core.NewSemantic(tbl)
	tx := core.NewCheckedTxn()
	tx.StartTrace(8)
	tx.LockBatch(
		core.BatchLock{Sem: a, Mode: keys.Mode(0), Rank: 1},
		core.BatchLock{Sem: b, Mode: keys.Mode(1), Rank: 1},
	)
	tx.UnlockAll()
	log := tx.Acquisitions()
	ev := tx.TraceEvents()
	if len(log) != 2 || len(ev) != len(log) {
		t.Fatalf("log %v, trace %v", log, ev)
	}
	for i := range log {
		if log[i] != ev[i] {
			t.Fatalf("event %d: log %+v != trace %+v", i, log[i], ev[i])
		}
	}
	tx.Reset()
	if tx.TraceEvents() != nil || tx.TraceTotal() != 0 {
		t.Error("Reset must clear the trace")
	}
}
