package telemetry

// NetStats is one network listener's counter row at snapshot time:
// connection lifecycle gauges plus per-frame-type traffic counters. The
// shape mirrors PolicyStats — a name plus generic counter maps — so
// telemetry does not import the server package; the server maintains
// padded atomic counters on its hot path (registration and counting are
// allocation-free) and materializes the maps only when a snapshot
// reader asks.
type NetStats struct {
	Server string `json:"server"`
	// Conns holds connection lifecycle counters: accepted, active,
	// closed, drain outcomes.
	Conns map[string]uint64 `json:"conns,omitempty"`
	// Frames holds per-frame-type counters, keyed "in.<kind>" and
	// "out.<kind>", plus totals and error/shed accounting.
	Frames map[string]uint64 `json:"frames,omitempty"`
}

// netSource is one registered network-listener state provider.
type netSource struct {
	name string
	fn   func() []NetStats
}

// RegisterNetSource adds a network-listener counter provider under
// name: every snapshot calls fn and appends its rows to Snapshot.Net.
// fn runs on the snapshot reader's goroutine and must be internally
// synchronized (atomic counter loads suffice).
func (r *Registry) RegisterNetSource(name string, fn func() []NetStats) {
	r.mu.Lock()
	r.net = append(r.net, netSource{name: name, fn: fn})
	r.mu.Unlock()
}

// UnregisterNetSource removes every network source registered under
// name.
func (r *Registry) UnregisterNetSource(name string) {
	r.mu.Lock()
	kept := r.net[:0]
	for _, s := range r.net {
		if s.name != name {
			kept = append(kept, s)
		}
	}
	for i := len(kept); i < len(r.net); i++ {
		r.net[i] = netSource{}
	}
	r.net = kept
	r.mu.Unlock()
}
