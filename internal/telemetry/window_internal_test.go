package telemetry

import (
	"testing"
	"time"
)

// TestWindowBucketDurationCoversRequest pins the satellite fix for the
// truncating bucket division: for every (window, buckets) pair —
// divisible or not — buckets×bucketDur must cover at least the
// requested window. Before the fix, 1s over 7 buckets yielded 142ms
// buckets covering 994ms, so every Rate/Sum read from such a window
// silently dropped the tail of the span it claimed to report.
func TestWindowBucketDurationCoversRequest(t *testing.T) {
	cases := []struct {
		window  time.Duration
		buckets int
		want    time.Duration // expected bucketDur (ceil division)
	}{
		{time.Second, 1, time.Second},
		{time.Second, 4, 250 * time.Millisecond},
		{time.Second, 7, 142857143 * time.Nanosecond}, // ceil(1e9/7), not 142857142
		{time.Second, 3, 333333334 * time.Nanosecond}, // ceil(1e9/3)
		{100 * time.Millisecond, 6, 16666667 * time.Nanosecond},
		{7 * time.Nanosecond, 3, 3 * time.Nanosecond},
		{3 * time.Nanosecond, 7, time.Nanosecond},
		// buckets < 1 is treated as 1; non-positive window defaults 1s.
		{time.Second, 0, time.Second},
		{0, 5, 200 * time.Millisecond},
	}
	for _, c := range cases {
		rw := NewRateWindow(c.window, c.buckets)
		if rw.bucketDur != c.want {
			t.Errorf("NewRateWindow(%v, %d).bucketDur = %v, want %v",
				c.window, c.buckets, rw.bucketDur, c.want)
		}
		gw := NewGaugeWindow(c.window, c.buckets)
		if gw.bucketDur != c.want {
			t.Errorf("NewGaugeWindow(%v, %d).bucketDur = %v, want %v",
				c.window, c.buckets, gw.bucketDur, c.want)
		}
		// The structural guarantee the fix exists for: covered span is
		// never below the requested window.
		wantWindow := c.window
		if wantWindow <= 0 {
			wantWindow = time.Second
		}
		if covered := rw.bucketDur * time.Duration(len(rw.buckets)); covered < wantWindow {
			t.Errorf("RateWindow(%v, %d) covers %v < requested %v",
				c.window, c.buckets, covered, wantWindow)
		}
	}
}
