package telemetry_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// TestOptimisticCountersInSnapshot: hits, retries, and refusals
// recorded by core.Txn.TryOptimistic surface in the snapshot row and in
// its JSON form under the documented field names.
func TestOptimisticCountersInSnapshot(t *testing.T) {
	tbl, keys, _ := keyedTable(t)
	s := core.NewSemantic(tbl)
	mode := keys.Mode(1)

	tx := core.NewTxn()
	// One validated lock-free commit.
	if !tx.TryOptimistic(func(tx *core.Txn) bool {
		return tx.Observe(s, mode, 0)
	}) {
		t.Fatal("uncontended optimistic run failed")
	}
	tx.Reset()
	// One refused observation: a conflicting holder turns the attempt
	// away before any body runs — a refusal, not a retry.
	holder := core.NewTxn()
	holder.Lock(s, mode, 0)
	if tx.TryOptimistic(func(tx *core.Txn) bool {
		return tx.Observe(s, mode, 0)
	}) {
		t.Fatal("optimistic run must fail while a conflicting mode is held")
	}
	holder.UnlockAll()
	tx.Reset()
	// One genuine retry: the body completes but a conflicting acquire
	// inside the read window invalidates it.
	if tx.TryOptimistic(func(tx *core.Txn) bool {
		if !tx.Observe(s, mode, 0) {
			return false
		}
		w := core.NewTxn()
		w.Lock(s, mode, 0)
		w.UnlockAll()
		return true
	}) {
		t.Fatal("optimistic run must fail validation after an in-window conflict")
	}

	r := telemetry.NewRegistry()
	r.Register("occ", "Map", s)
	row := r.Snapshot().Groups[0]
	if row.OptimisticHits != 1 {
		t.Errorf("OptimisticHits = %d, want 1", row.OptimisticHits)
	}
	if row.OptimisticRetries != 1 {
		t.Errorf("OptimisticRetries = %d, want 1", row.OptimisticRetries)
	}
	if row.OptimisticRefusals != 1 {
		t.Errorf("OptimisticRefusals = %d, want 1", row.OptimisticRefusals)
	}

	raw, err := json.Marshal(row)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"optimistic_hits":1`, `"optimistic_retries":1`, `"optimistic_refusals":1`} {
		if !strings.Contains(string(raw), field) {
			t.Errorf("JSON row missing %s: %s", field, raw)
		}
	}
}

// TestSnapshotAllocsPerInstance: aggregation stays allocation-free per
// instance — the allocations of a snapshot depend on the number of rows,
// not on how many instances feed them, so wide registries (gossip's
// per-group member maps) snapshot without per-instance garbage.
func TestSnapshotAllocsPerInstance(t *testing.T) {
	tbl, _, _ := keyedTable(t)

	mk := func(n int) *telemetry.Registry {
		r := telemetry.NewRegistry()
		sems := make([]*core.Semantic, n)
		for i := range sems {
			sems[i] = core.NewSemantic(tbl)
		}
		r.Register("g", "Map", sems...)
		return r
	}
	small, large := mk(1), mk(64)

	allocs := func(r *telemetry.Registry) float64 {
		return testing.AllocsPerRun(100, func() {
			snap := r.Snapshot()
			if len(snap.Groups) != 1 {
				t.Fatal("unexpected row count")
			}
		})
	}
	a1, a64 := allocs(small), allocs(large)
	if a64 > a1 {
		t.Errorf("snapshot allocations grow with instance count: 1 instance = %.0f, 64 instances = %.0f", a1, a64)
	}
}
