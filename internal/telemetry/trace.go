// Trace-side telemetry: comparing a transaction's recorded acquisition
// schedule (core.Txn.StartTrace / TraceEvents) against the OS2PL order
// the static verifier certified for the section. ScheduleWidths derives
// the prediction from a synthesized section; CheckSchedule asserts one
// recorded schedule realizes it. Together they close the loop Locksynth
// argues for: runtime evidence that the synthesized protocol is the one
// actually executing.
package telemetry

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/synth"
)

// ScheduleWidths derives the verifier's predicted acquisition schedule
// of synthesized section si: for every class rank the section may lock,
// the maximum number of same-rank acquisitions any single execution can
// perform. An LV contributes one acquisition at its class's rank, an
// LV2 up to len(Vars) (same-rank instances ordered dynamically by
// unique id), and a fused LockBatch the sum of its entries per rank —
// fusion never reorders across a rank boundary, so the batch realizes
// the same schedule the unfused statements did.
func ScheduleWidths(res *synth.Result, si int) map[int]int {
	maxAtRank := map[int]int{}
	bump := func(rank, width int) {
		if maxAtRank[rank] < width {
			maxAtRank[rank] = width
		}
	}
	rankOf := func(v string) int {
		k, _ := res.Classes.ClassOfVar(si, v)
		return res.Rank(k)
	}
	var walk func(b ir.Block)
	walk = func(b ir.Block) {
		for _, s := range b {
			switch x := s.(type) {
			case *ir.LV:
				bump(rankOf(x.Var), 1)
			case *ir.LV2:
				bump(rankOf(x.Vars[0]), len(x.Vars))
			case *ir.LockBatch:
				perRank := map[int]int{}
				for _, e := range x.Entries {
					perRank[rankOf(e.Vars[0])] += len(e.Vars)
				}
				for rank, w := range perRank {
					bump(rank, w)
				}
			case *ir.If:
				walk(x.Then)
				walk(x.Else)
			case *ir.While:
				walk(x.Body)
			}
		}
	}
	walk(res.Sections[si].Body)
	return maxAtRank
}

// CheckSchedule asserts that one recorded acquisition schedule — a
// checked transaction's Acquisitions log or a traced transaction's
// TraceEvents — is a realization of the verifier's prediction: ranks
// non-decreasing across the schedule, instance ids strictly increasing
// within each equal-rank group, and every rank and group width drawn
// from the section's lock statements (maxAtRank, as computed by
// ScheduleWidths). A nil error means the runtime executed exactly the
// certified OS2PL order.
func CheckSchedule(events []core.Acquisition, maxAtRank map[int]int) error {
	for i := 0; i < len(events); {
		j := i
		for j < len(events) && events[j].Rank == events[i].Rank {
			j++
		}
		width, known := maxAtRank[events[i].Rank]
		if !known {
			return fmt.Errorf("telemetry: acquisition at rank %d matches no lock statement", events[i].Rank)
		}
		if j-i > width {
			return fmt.Errorf("telemetry: %d acquisitions at rank %d, statically at most %d",
				j-i, events[i].Rank, width)
		}
		for k := i + 1; k < j; k++ {
			if events[k].ID <= events[k-1].ID {
				return fmt.Errorf("telemetry: ids not increasing within rank %d group: %v",
					events[i].Rank, events)
			}
		}
		if j < len(events) && events[j].Rank < events[i].Rank {
			return fmt.Errorf("telemetry: ranks not increasing: %v", events)
		}
		i = j
	}
	return nil
}
