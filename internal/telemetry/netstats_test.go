package telemetry

import (
	"encoding/json"
	"testing"
)

// TestNetSourceSnapshot: registered network sources appear in
// snapshots, accumulate across sources, and disappear on unregister.
func TestNetSourceSnapshot(t *testing.T) {
	r := NewRegistry()
	if got := r.Snapshot().Net; len(got) != 0 {
		t.Fatalf("empty registry has %d net rows", len(got))
	}
	calls := 0
	r.RegisterNetSource("gossipd", func() []NetStats {
		calls++
		return []NetStats{{
			Server: "gossipd",
			Conns:  map[string]uint64{"accepted": 3, "active": 1},
			Frames: map[string]uint64{"in.lookup": 10, "out.bool": 10, "shed": 2},
		}}
	})
	r.RegisterNetSource("second", func() []NetStats {
		return []NetStats{{Server: "second", Conns: map[string]uint64{"accepted": 1}}}
	})
	snap := r.Snapshot()
	if calls != 1 || len(snap.Net) != 2 {
		t.Fatalf("calls=%d rows=%d, want 1 call and 2 rows", calls, len(snap.Net))
	}
	if snap.Net[0].Server != "gossipd" || snap.Net[0].Frames["in.lookup"] != 10 {
		t.Fatalf("row 0 = %+v", snap.Net[0])
	}
	// The rows survive the JSON export path (/debug/semlock).
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		Net []NetStats `json:"net"`
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Net) != 2 || back.Net[0].Conns["accepted"] != 3 {
		t.Fatalf("JSON round-trip lost net rows: %+v", back.Net)
	}

	r.UnregisterNetSource("gossipd")
	snap = r.Snapshot()
	if len(snap.Net) != 1 || snap.Net[0].Server != "second" {
		t.Fatalf("after unregister: %+v", snap.Net)
	}
}
