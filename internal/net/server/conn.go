package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"net"

	"repro/internal/apps/gossip"
	"repro/internal/core"
	"repro/internal/net/wire"
)

// conn is one client connection: a reader goroutine that decodes,
// batches, and runs sections, and a writer goroutine that flushes
// encoded responses — decoupled through a two-buffer swap so the reader
// starts the next batch while the previous batch's responses are still
// in the kernel's send queue.
//
// Every buffer here is connection-owned and reused: frame slots (one
// per batch position, so a fused unicast run can alias all its payloads
// at once), the parsed-request scratch, the SendReq scratch, the
// LockBatch scratch, the intern table, and the two response buffers.
// After warmup the loop allocates nothing.
type conn struct {
	s  *Server
	nc net.Conn
	br *bufio.Reader

	// Response buffers circulate reader→writeCh→writer→freeCh→reader.
	// Capacity 2 on both channels means neither side ever blocks handing
	// a buffer back.
	writeCh    chan []byte
	freeCh     chan []byte
	writerDone chan struct{}

	// frameBufs[i] backs the i-th frame of the current batch; parsed
	// requests alias these slots until the batch is processed.
	frameBufs [][]byte
	reqs      []wire.Req
	sendReqs  []gossip.SendReq
	sc        gossip.BatchScratch

	// names interns decoded group/member names into pre-boxed
	// core.Values: the map lookup keyed by string(b) is allocation-free
	// on a hit, so a steady connection boxes each name exactly once.
	names map[string]core.Value
}

// maxIntern caps one connection's intern table; a client cycling
// through more names than this re-boxes the overflow per request
// instead of growing without bound.
const maxIntern = 4096

func newConn(s *Server, nc net.Conn) *conn {
	c := &conn{
		s:          s,
		nc:         nc,
		br:         bufio.NewReaderSize(nc, 32<<10),
		writeCh:    make(chan []byte, 2),
		freeCh:     make(chan []byte, 2),
		writerDone: make(chan struct{}),
		frameBufs:  make([][]byte, s.cfg.MaxBatch),
		reqs:       make([]wire.Req, 0, s.cfg.MaxBatch),
		sendReqs:   make([]gossip.SendReq, 0, s.cfg.MaxBatch),
		names:      make(map[string]core.Value),
	}
	c.freeCh <- make([]byte, 0, 4<<10)
	c.freeCh <- make([]byte, 0, 4<<10)
	return c
}

func (c *conn) intern(b []byte) core.Value {
	if v, ok := c.names[string(b)]; ok {
		return v
	}
	s := string(b)
	v := core.Value(s)
	if len(c.names) < maxIntern {
		c.names[s] = v
	}
	return v
}

// readLoop is the connection's request side. It owns the deferred
// teardown: close the write channel, wait for the writer to flush what
// it has, close the socket, and only then drop off the server's
// connection set — so Shutdown's wait observes fully-flushed,
// fully-closed connections.
func (c *conn) readLoop() {
	go c.writeLoop()
	defer func() {
		close(c.writeCh)
		<-c.writerDone
		c.nc.Close()
		c.s.mu.Lock()
		delete(c.s.conns, c)
		c.s.mu.Unlock()
		c.s.Stats.Closed.Add(1)
		c.s.Stats.Active.Add(-1)
		c.s.wg.Done()
	}()
	resp := <-c.freeCh
	for {
		if c.s.closing.Load() {
			return
		}
		// Blocking read of the batch's first frame.
		body, buf, err := wire.ReadFrame(c.br, c.frameBufs[0], c.s.cfg.MaxFrame)
		c.frameBufs[0] = buf
		if err != nil {
			if errors.Is(err, wire.ErrFrameTooLarge) {
				// The stream cannot be resynced past an oversized frame:
				// tell the client why, flush, close.
				c.s.Stats.Decode.Add(1)
				c.writeCh <- c.respErr(resp, wire.CodeMalformed)
			}
			// EOF, reset, or the shutdown read deadline: just close.
			return
		}
		c.reqs = c.reqs[:0]
		req, perr := wire.ParseReq(body)
		if perr != nil {
			c.s.Stats.Decode.Add(1)
			c.writeCh <- c.respErr(resp, wire.CodeMalformed)
			return
		}
		c.s.Stats.FramesIn[int(req.Kind)].Add(1)
		c.reqs = append(c.reqs, req)

		// Drain frames the client already pipelined: peek each length
		// prefix and take the frame only if it is completely buffered, so
		// the drain never blocks mid-batch. Each frame lands in its own
		// slot; a run of adjacent unicasts then fuses into one section.
		for len(c.reqs) < c.s.cfg.MaxBatch {
			if c.br.Buffered() < wire.HeaderLen {
				break
			}
			hdr, _ := c.br.Peek(wire.HeaderLen)
			n := int(binary.BigEndian.Uint32(hdr))
			if n > c.s.cfg.MaxFrame || c.br.Buffered() < wire.HeaderLen+n {
				// Oversized (next blocking read reports it) or not fully
				// buffered yet: stop draining, serve what we have.
				break
			}
			slot := len(c.reqs)
			body, buf, err := wire.ReadFrame(c.br, c.frameBufs[slot], c.s.cfg.MaxFrame)
			c.frameBufs[slot] = buf
			if err != nil {
				c.writeCh <- c.process(c.reqs, resp)
				return
			}
			req, perr := wire.ParseReq(body)
			if perr != nil {
				// Answer the well-formed prefix, then the error, then close.
				resp = c.process(c.reqs, resp)
				c.s.Stats.Decode.Add(1)
				c.writeCh <- c.respErr(resp, wire.CodeMalformed)
				return
			}
			c.s.Stats.FramesIn[int(req.Kind)].Add(1)
			c.reqs = append(c.reqs, req)
		}

		c.writeCh <- c.process(c.reqs, resp)
		resp = <-c.freeCh
	}
}

// writeLoop flushes encoded response buffers and hands them back. On a
// write error it closes the socket (unblocking the reader) and keeps
// draining so buffer circulation never deadlocks.
func (c *conn) writeLoop() {
	defer close(c.writerDone)
	failed := false
	for buf := range c.writeCh {
		if !failed && len(buf) > 0 {
			if _, err := c.nc.Write(buf); err != nil {
				failed = true
				c.nc.Close()
			}
		}
		c.freeCh <- buf[:0]
	}
}

// process answers a batch of parsed requests in order, fusing each run
// of ≥2 adjacent unicasts into one UnicastBatchV section.
func (c *conn) process(reqs []wire.Req, resp []byte) []byte {
	for i := 0; i < len(reqs); {
		if reqs[i].Kind == wire.KindUnicast {
			j := i + 1
			for j < len(reqs) && reqs[j].Kind == wire.KindUnicast {
				j++
			}
			if j-i >= 2 {
				resp = c.unicastRun(reqs[i:j], resp)
				i = j
				continue
			}
		}
		resp = c.handleOne(reqs[i], resp)
		i++
	}
	return resp
}

// unicastRun routes a pipelined run of unicasts through the fused
// LockBatch prologue. Under a policy the whole run is admitted or
// refused as one unit — a shed answers every frame in the run with the
// same error code, before any lock is touched.
func (c *conn) unicastRun(run []wire.Req, resp []byte) []byte {
	c.sendReqs = c.sendReqs[:0]
	for i := range run {
		c.sendReqs = append(c.sendReqs, gossip.SendReq{
			Group:   c.intern(run[i].Group),
			Dst:     c.intern(run[i].A),
			Payload: run[i].Payload,
		})
	}
	c.s.Stats.Batches.Add(1)
	c.s.Stats.Batched.Add(uint64(len(run)))
	if r := c.s.resil; r != nil {
		if err := r.UnicastBatchErrV(c.sendReqs, &c.sc); err != nil {
			code := errCode(err)
			for range run {
				resp = c.respErr(resp, code)
			}
			return resp
		}
	} else {
		c.s.ours.UnicastBatchV(c.sendReqs, &c.sc)
	}
	for range run {
		resp = c.respOK(resp)
	}
	return resp
}

func (c *conn) handleOne(req wire.Req, resp []byte) []byte {
	switch req.Kind {
	case wire.KindRegister:
		g, m := c.intern(req.Group), c.intern(req.A)
		// Registration is membership churn, not the steady state: the
		// sink map keys allocate here and nowhere else.
		sink := c.s.sink(string(req.Group), string(req.A))
		if r := c.s.resil; r != nil {
			if err := r.RegisterErrV(g, m, sink); err != nil {
				return c.respErr(resp, errCode(err))
			}
		} else {
			c.s.ours.RegisterV(g, m, sink)
		}
		return c.respOK(resp)

	case wire.KindUnregister:
		g, m := c.intern(req.Group), c.intern(req.A)
		if r := c.s.resil; r != nil {
			if err := r.UnregisterErrV(g, m); err != nil {
				return c.respErr(resp, errCode(err))
			}
		} else {
			c.s.ours.UnregisterV(g, m)
		}
		return c.respOK(resp)

	case wire.KindUnicast:
		g, m := c.intern(req.Group), c.intern(req.A)
		if r := c.s.resil; r != nil {
			if err := r.UnicastErrV(g, m, req.Payload); err != nil {
				return c.respErr(resp, errCode(err))
			}
		} else {
			c.s.ours.UnicastV(g, m, req.Payload)
		}
		return c.respOK(resp)

	case wire.KindMulticast:
		g := c.intern(req.Group)
		if r := c.s.resil; r != nil {
			if err := r.MulticastErrV(g, req.Payload); err != nil {
				return c.respErr(resp, errCode(err))
			}
		} else {
			c.s.ours.MulticastV(g, req.Payload)
		}
		return c.respOK(resp)

	case wire.KindLookup:
		g, m := c.intern(req.Group), c.intern(req.A)
		if r := c.s.resil; r != nil {
			found, err := r.LookupErrV(g, m)
			if err != nil {
				return c.respErr(resp, errCode(err))
			}
			return c.respBool(resp, found)
		}
		return c.respBool(resp, c.s.ours.LookupV(g, m))
	}
	// ParseReq admits no other kinds; answer malformed defensively.
	return c.respErr(resp, wire.CodeMalformed)
}

func (c *conn) respOK(resp []byte) []byte {
	c.s.Stats.FramesOut[wire.KindOK].Add(1)
	return wire.AppendOK(resp)
}

func (c *conn) respBool(resp []byte, v bool) []byte {
	c.s.Stats.FramesOut[wire.KindBool].Add(1)
	return wire.AppendBool(resp, v)
}

func (c *conn) respErr(resp []byte, code byte) []byte {
	c.s.Stats.FramesOut[wire.KindErr].Add(1)
	c.s.Stats.Errors.Add(1)
	if code == wire.CodeShed || code == wire.CodeBreakerOpen {
		c.s.Stats.Shed.Add(1)
	}
	return wire.AppendErr(resp, code)
}

// Exerciser drives the server's decode→handle→encode path without a
// socket: the alloc-pin test and the in-process benchmark baseline run
// the exact handling code the reader goroutines run, minus the kernel.
// One Exerciser is one virtual connection (own intern table and
// scratch); it is not safe for concurrent use.
type Exerciser struct{ c *conn }

// Exerciser returns a new virtual connection over the server's router.
func (s *Server) Exerciser() *Exerciser {
	return &Exerciser{c: &conn{
		s:        s,
		reqs:     make([]wire.Req, 0, s.cfg.MaxBatch),
		sendReqs: make([]gossip.SendReq, 0, s.cfg.MaxBatch),
		names:    make(map[string]core.Value),
	}}
}

// Handle parses one frame body and appends its response frame to resp.
func (e *Exerciser) Handle(body, resp []byte) ([]byte, error) {
	req, err := wire.ParseReq(body)
	if err != nil {
		return resp, err
	}
	e.c.s.Stats.FramesIn[int(req.Kind)].Add(1)
	e.c.reqs = append(e.c.reqs[:0], req)
	return e.c.process(e.c.reqs, resp), nil
}

// HandleBatch parses a pipelined run of bodies and processes it with
// the same unicast-run fusion the reader applies.
func (e *Exerciser) HandleBatch(bodies [][]byte, resp []byte) ([]byte, error) {
	e.c.reqs = e.c.reqs[:0]
	for _, b := range bodies {
		req, err := wire.ParseReq(b)
		if err != nil {
			return resp, err
		}
		e.c.s.Stats.FramesIn[int(req.Kind)].Add(1)
		e.c.reqs = append(e.c.reqs, req)
	}
	return e.c.process(e.c.reqs, resp), nil
}
