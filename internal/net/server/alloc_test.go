package server

import (
	"testing"
	"time"

	"repro/internal/net/wire"
)

// TestServerFramePathAllocs is the tentpole's 0 allocs/op pin: the
// steady-state decode→handle→encode path, run through the Exerciser
// (the identical code the reader goroutines execute, minus the socket
// syscalls, which allocate nothing either). Registration is membership
// churn and exempt; lookup, unicast, and the fused batch path must be
// allocation-free once the connection's buffers and intern table are
// warm.
func TestServerFramePathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation heap-allocates stack closures; the 0 allocs/op pin holds on the normal build")
	}
	s, err := New(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(time.Second)

	e := s.Exerciser()
	body := func(f []byte, err error) []byte {
		if err != nil {
			t.Fatal(err)
		}
		return f[wire.HeaderLen:] // Append* emit header+body; Handle takes the body
	}
	reg := body(wire.AppendRegister(nil, "g", "m"))
	look := body(wire.AppendLookup(nil, "g", "m"))
	uni := body(wire.AppendUnicast(nil, "g", "m", []byte("payload")))

	resp := make([]byte, 0, 1<<10)
	if resp, err = e.Handle(reg, resp); err != nil {
		t.Fatal(err)
	}

	if n := testing.AllocsPerRun(2000, func() {
		resp, _ = e.Handle(look, resp[:0])
	}); n != 0 {
		t.Errorf("lookup frame path allocs/op = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(2000, func() {
		resp, _ = e.Handle(uni, resp[:0])
	}); n != 0 {
		t.Errorf("unicast frame path allocs/op = %v, want 0", n)
	}

	// The fused pipeline path: a batch of adjacent unicasts through
	// HandleBatch (parse → intern → UnicastBatchV → encode).
	batch := [][]byte{uni, uni, uni, uni, uni, uni, uni, uni}
	if resp, err = e.HandleBatch(batch, resp[:0]); err != nil {
		t.Fatal(err) // warm the LockBatch scratch
	}
	if n := testing.AllocsPerRun(2000, func() {
		resp, _ = e.HandleBatch(batch, resp[:0])
	}); n != 0 {
		t.Errorf("batched unicast frame path allocs/op = %v, want 0", n)
	}
}
