package server

import (
	"bufio"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/net/wire"
	"repro/internal/resilience"
)

// client is a minimal test-side wire client over one connection.
type client struct {
	t   *testing.T
	nc  net.Conn
	br  *bufio.Reader
	buf []byte
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	return &client{t: t, nc: nc, br: bufio.NewReader(nc)}
}

func (c *client) close() { c.nc.Close() }

func (c *client) send(frames ...[]byte) {
	c.t.Helper()
	var all []byte
	for _, f := range frames {
		all = append(all, f...)
	}
	if _, err := c.nc.Write(all); err != nil {
		c.t.Fatalf("write: %v", err)
	}
}

func (c *client) recv() wire.Resp {
	c.t.Helper()
	body, buf, err := wire.ReadFrame(c.br, c.buf, 0)
	c.buf = buf
	if err != nil {
		c.t.Fatalf("read response: %v", err)
	}
	resp, err := wire.ParseResp(body)
	if err != nil {
		c.t.Fatalf("parse response: %v", err)
	}
	return resp
}

// recvErr reads one frame tolerating stream end; ok reports whether a
// response arrived.
func (c *client) recvErr() (wire.Resp, bool) {
	body, buf, err := wire.ReadFrame(c.br, c.buf, 0)
	c.buf = buf
	if err != nil {
		return wire.Resp{}, false
	}
	resp, err := wire.ParseResp(body)
	if err != nil {
		return wire.Resp{}, false
	}
	return resp, true
}

func frame(f []byte, err error) []byte {
	if err != nil {
		panic(err) // encode helpers only fail on invalid names
	}
	return f
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	go s.Serve()
	return s
}

func checkNoLeaks(t *testing.T, s *Server) {
	t.Helper()
	if n := s.ActiveConns(); n != 0 {
		t.Errorf("leaked connections: %d", n)
	}
	leaked := int64(0)
	for _, sem := range s.Router().Sems() {
		leaked += sem.OutstandingHolds()
		if err := sem.CheckQuiesced(); err != nil {
			t.Errorf("quiesce: %v", err)
		}
	}
	if leaked != 0 {
		t.Errorf("leaked holds: %d", leaked)
	}
	if n := core.WaitersOutstanding(); n != 0 {
		t.Errorf("leaked waiters: %d", n)
	}
}

// TestServerEndToEnd: the full request vocabulary over a real socket —
// membership answers and delivered-frame accounting must match what the
// in-process router would produce.
func TestServerEndToEnd(t *testing.T) {
	s := startServer(t, Config{})
	defer s.Shutdown(5 * time.Second)

	c := dial(t, s.Addr().String())
	defer c.close()

	c.send(frame(wire.AppendRegister(nil, "g0", "m0")))
	if r := c.recv(); r.Kind != wire.KindOK {
		t.Fatalf("register: %+v", r)
	}
	c.send(frame(wire.AppendRegister(nil, "g0", "m1")))
	if r := c.recv(); r.Kind != wire.KindOK {
		t.Fatalf("register: %+v", r)
	}

	c.send(frame(wire.AppendLookup(nil, "g0", "m0")))
	if r := c.recv(); r.Kind != wire.KindBool || !r.Bool {
		t.Fatalf("lookup registered member: %+v", r)
	}
	c.send(frame(wire.AppendLookup(nil, "g0", "absent")))
	if r := c.recv(); r.Kind != wire.KindBool || r.Bool {
		t.Fatalf("lookup absent member: %+v", r)
	}
	c.send(frame(wire.AppendLookup(nil, "nogroup", "m0")))
	if r := c.recv(); r.Kind != wire.KindBool || r.Bool {
		t.Fatalf("lookup absent group: %+v", r)
	}

	c.send(frame(wire.AppendUnicast(nil, "g0", "m0", []byte("hello"))))
	if r := c.recv(); r.Kind != wire.KindOK {
		t.Fatalf("unicast: %+v", r)
	}
	c.send(frame(wire.AppendMulticast(nil, "g0", []byte("all"))))
	if r := c.recv(); r.Kind != wire.KindOK {
		t.Fatalf("multicast: %+v", r)
	}

	// m0 got the unicast and the multicast; m1 only the multicast.
	if got := s.Sink("g0", "m0").Frames.Load(); got != 2 {
		t.Errorf("m0 frames = %d, want 2", got)
	}
	if got := s.Sink("g0", "m1").Frames.Load(); got != 1 {
		t.Errorf("m1 frames = %d, want 1", got)
	}

	c.send(frame(wire.AppendUnregister(nil, "g0", "m0")))
	if r := c.recv(); r.Kind != wire.KindOK {
		t.Fatalf("unregister: %+v", r)
	}
	c.send(frame(wire.AppendLookup(nil, "g0", "m0")))
	if r := c.recv(); r.Kind != wire.KindBool || r.Bool {
		t.Fatalf("lookup after unregister: %+v", r)
	}

	c.close()
	if err := s.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	checkNoLeaks(t, s)

	st := s.NetStats()[0]
	if st.Frames["in.total"] != 9 || st.Frames["out.total"] != 9 {
		t.Errorf("frame totals = %d in / %d out, want 9/9", st.Frames["in.total"], st.Frames["out.total"])
	}
}

// TestServerPipelining: a burst of unicasts written in one segment is
// drained as one batch and fused into LockBatch prologues; responses
// come back in request order.
func TestServerPipelining(t *testing.T) {
	s := startServer(t, Config{MaxBatch: 16})
	defer s.Shutdown(5 * time.Second)

	c := dial(t, s.Addr().String())
	defer c.close()
	c.send(frame(wire.AppendRegister(nil, "g", "m")))
	c.recv()

	const burst = 8
	for round := 0; round < 20; round++ {
		var frames [][]byte
		for i := 0; i < burst; i++ {
			frames = append(frames, frame(wire.AppendUnicast(nil, "g", "m", []byte("p"))))
		}
		// One lookup at the tail: the response order pin — OKs for every
		// unicast, then exactly one Bool.
		frames = append(frames, frame(wire.AppendLookup(nil, "g", "m")))
		c.send(frames...)
		for i := 0; i < burst; i++ {
			if r := c.recv(); r.Kind != wire.KindOK {
				t.Fatalf("round %d resp %d: %+v", round, i, r)
			}
		}
		if r := c.recv(); r.Kind != wire.KindBool || !r.Bool {
			t.Fatalf("round %d tail lookup: %+v", round, r)
		}
	}

	if got := s.Sink("g", "m").Frames.Load(); got != 20*burst {
		t.Errorf("delivered frames = %d, want %d", got, 20*burst)
	}
	// Single-segment bursts batch on loopback; require the fused path to
	// have fired at least once across 20 rounds.
	if s.Stats.Batches.Load() == 0 {
		t.Errorf("no fused batches across %d pipelined bursts", 20)
	}
	if b, f := s.Stats.Batches.Load(), s.Stats.Batched.Load(); f < 2*b {
		t.Errorf("batched frames %d < 2×batches %d", f, b)
	}
}

// TestServerMalformed: garbage and oversized frames get one
// CodeMalformed error frame and a closed connection — never a panic,
// never a desynced stream. The server survives to serve a new client.
func TestServerMalformed(t *testing.T) {
	s := startServer(t, Config{MaxFrame: 1 << 10})
	defer s.Shutdown(5 * time.Second)

	// Unknown kind.
	c := dial(t, s.Addr().String())
	c.send(wire.AppendFrame(nil, []byte{0x7f, 1, 'g'}))
	if r, ok := c.recvErr(); !ok || r.Kind != wire.KindErr || r.Code != wire.CodeMalformed {
		t.Fatalf("unknown kind: %+v ok=%v", r, ok)
	}
	if _, err := c.br.ReadByte(); err != io.EOF {
		t.Fatalf("connection not closed after malformed frame: %v", err)
	}
	c.close()

	// Oversized length prefix: rejected before the body is read.
	c = dial(t, s.Addr().String())
	c.send([]byte{0xff, 0xff, 0xff, 0xff})
	if r, ok := c.recvErr(); !ok || r.Kind != wire.KindErr || r.Code != wire.CodeMalformed {
		t.Fatalf("oversized frame: %+v ok=%v", r, ok)
	}
	c.close()

	// Trailing garbage on a fixed-shape request, pipelined after a good
	// one: the good prefix is answered first.
	c = dial(t, s.Addr().String())
	bad := wire.AppendFrame(nil, []byte{byte(wire.KindLookup), 1, 'g', 1, 'm', 'x'})
	c.send(frame(wire.AppendRegister(nil, "g", "m")), bad)
	if r := c.recv(); r.Kind != wire.KindOK {
		t.Fatalf("good prefix not answered: %+v", r)
	}
	if r, ok := c.recvErr(); !ok || r.Kind != wire.KindErr || r.Code != wire.CodeMalformed {
		t.Fatalf("trailing garbage: %+v ok=%v", r, ok)
	}
	c.close()

	if got := s.Stats.Decode.Load(); got != 3 {
		t.Errorf("decode errors = %d, want 3", got)
	}

	// A fresh client is unaffected.
	c = dial(t, s.Addr().String())
	defer c.close()
	c.send(frame(wire.AppendLookup(nil, "g", "m")))
	if r := c.recv(); r.Kind != wire.KindBool || !r.Bool {
		t.Fatalf("server did not survive malformed clients: %+v", r)
	}
}

// TestServerShedChaos: a chaos hook holds a unicast section open while
// a second client's requests arrive; the 1-deep admission gate must
// refuse them with wire-level shed frames BEFORE any lock is touched,
// and the refused connection keeps serving afterwards.
func TestServerShedChaos(t *testing.T) {
	policy := resilience.New("net-test", resilience.Config{
		Patience: 500 * time.Microsecond,
		Gate: &resilience.GateConfig{
			MaxConcurrent: 1,
			QueueDepth:    1,
			QueueTimeout:  500 * time.Microsecond,
		},
	})
	// The gate admits everything until pressured; this test is about the
	// refusal path, so put it under pressure directly (the Manager's
	// control loop does this from waiter telemetry in production).
	policy.Gate().SetPressure(true)
	s := startServer(t, Config{Policy: policy})
	defer s.Shutdown(5 * time.Second)

	var trap atomic.Bool
	entered := make(chan struct{})
	release := make(chan struct{})
	s.Router().FaultHook = func(site string) {
		if site == "unicast" && trap.CompareAndSwap(true, false) {
			close(entered)
			<-release
		}
	}

	a := dial(t, s.Addr().String())
	defer a.close()
	b := dial(t, s.Addr().String())
	defer b.close()

	a.send(frame(wire.AppendRegister(nil, "g", "m")))
	if r := a.recv(); r.Kind != wire.KindOK {
		t.Fatalf("register: %+v", r)
	}

	// Client A's unicast enters its section and parks on the chaos hook,
	// occupying the gate's only slot.
	trap.Store(true)
	a.send(frame(wire.AppendUnicast(nil, "g", "m", []byte("slow"))))
	<-entered

	// Client B's lookups now hit a full gate; past the queue timeout
	// they are shed as error frames, and B's connection stays up.
	shed := 0
	for i := 0; i < 10; i++ {
		b.send(frame(wire.AppendLookup(nil, "g", "m")))
		r := b.recv()
		switch {
		case r.Kind == wire.KindErr && (r.Code == wire.CodeShed || r.Code == wire.CodeBreakerOpen):
			shed++
		case r.Kind == wire.KindBool:
			// Queue slot won the race; legal.
		default:
			t.Fatalf("request %d: unexpected response %+v", i, r)
		}
	}
	if shed == 0 {
		t.Fatalf("no requests shed while the gate was held")
	}

	close(release)
	if r := a.recv(); r.Kind != wire.KindOK {
		t.Fatalf("slow unicast after release: %+v", r)
	}
	// The shed connection serves normally once the hold clears.
	b.send(frame(wire.AppendLookup(nil, "g", "m")))
	if r := b.recv(); r.Kind != wire.KindBool || !r.Bool {
		t.Fatalf("connection dead after sheds: %+v", r)
	}
	if got := s.Stats.Shed.Load(); int(got) < shed {
		t.Errorf("shed counter = %d, observed %d shed frames", got, shed)
	}
}

// TestServerDrain: shutdown under live load from many connections. The
// drain must complete inside the deadline and leave zero connections,
// zero outstanding holds, zero parked waiters — the -race run of this
// test is the ISSUE's graceful-drain acceptance gate.
func TestServerDrain(t *testing.T) {
	s := startServer(t, Config{})

	const clients = 8
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", s.Addr().String())
			if err != nil {
				return
			}
			defer nc.Close()
			br := bufio.NewReader(nc)
			var buf []byte
			reg, _ := wire.AppendRegister(nil, "g", string(rune('a'+w)))
			uni, _ := wire.AppendUnicast(nil, "g", string(rune('a'+w)), []byte("x"))
			look, _ := wire.AppendLookup(nil, "g", string(rune('a'+w)))
			if _, err := nc.Write(reg); err != nil {
				return
			}
			for {
				body, b, err := wire.ReadFrame(br, buf, 0)
				buf = b
				if err != nil {
					return // server closed us mid-drain: expected
				}
				if _, err := wire.ParseResp(body); err != nil {
					return
				}
				var out []byte
				out = append(out, uni...)
				out = append(out, uni...)
				out = append(out, look...)
				if _, err := nc.Write(out); err != nil {
					return
				}
				// Drain the two extra responses of the burst.
				for i := 0; i < 2; i++ {
					if body, buf, err = wire.ReadFrame(br, buf, 0); err != nil {
						return
					}
					_ = body
				}
			}
		}(w)
	}

	time.Sleep(30 * time.Millisecond) // let traffic build
	if err := s.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown under load: %v", err)
	}
	wg.Wait()
	checkNoLeaks(t, s)
}
