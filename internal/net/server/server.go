// Package server puts the gossip router behind a real TCP listener:
// the wire package's length-prefixed frames arrive on per-connection
// reader goroutines, run through the same semlock-compiled sections the
// in-process benchmarks measure, and leave through per-connection
// writer goroutines — so every scaling claim the lock mechanism makes
// is exercised across syscalls, scheduler churn, and GC pressure.
//
// Hot-path discipline: the steady-state decode→handle→encode path
// allocates nothing. Frame bodies land in per-connection reusable
// buffers, group/member names are interned into pre-boxed core.Values
// once per connection (the router's V entry points take them boxed, so
// no string header is re-allocated per request), responses are encoded
// into a pair of swap buffers shared with the writer goroutine, and the
// per-frame-type counters are padded atomics.
//
// Pipelining: when a client has more requests already buffered on the
// connection, the reader drains up to MaxBatch of them and a run of
// adjacent unicasts becomes ONE atomic section with a fused LockBatch
// prologue (gossip.UnicastBatchV) — the network-fed form of the PR 4
// prologue fusion. Responses keep request order.
//
// Resilience: with a Policy configured, every section runs
// admission-gated and breaker-checked (gossip.Resilient); a refusal
// becomes a wire error frame (CodeShed, CodeBreakerOpen, CodeStall,
// CodeBudget) written before any lock is touched, and the connection
// keeps serving.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apps/gossip"
	"repro/internal/core"
	"repro/internal/modules/plan"
	"repro/internal/net/wire"
	"repro/internal/padded"
	"repro/internal/resilience"
	"repro/internal/telemetry"
)

// Config assembles a server.
type Config struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:0", ":7946").
	Addr string
	// SendCost is the synthetic per-delivered-frame downstream I/O cost
	// burned by the member sinks (the same DESIGN.md substitution 5 the
	// in-process MPerf uses, which keeps the in-process-vs-networked
	// comparison honest: only the request wire path differs).
	SendCost int
	// MaxBatch caps how many already-buffered frames the reader drains
	// per wakeup; runs of adjacent unicasts inside the drain are fused
	// into one LockBatch prologue. 0 means 16; 1 disables batching.
	MaxBatch int
	// MaxFrame caps one frame body; 0 means 64 KiB.
	MaxFrame int
	// PlanOpt parameterizes plan synthesis when the server builds its
	// own router.
	PlanOpt plan.Options
	// Router, when non-nil, serves this router instead of building one
	// (benchmarks share one router between wire and in-process cells).
	Router *gossip.Ours
	// Policy, when non-nil, routes every section through the resilience
	// layer; refusals become wire error frames.
	Policy *resilience.Policy
}

// Counters is the server's allocation-free hot-path accounting: padded
// atomics bumped by the connection goroutines, materialized into
// telemetry.NetStats rows only when a snapshot reader asks.
type Counters struct {
	Accepted padded.Uint64
	Closed   padded.Uint64
	Active   padded.Int64

	FramesIn  [wire.KindMax]padded.Uint64 // by request kind
	FramesOut [wire.KindMax]padded.Uint64 // by response kind
	Shed      padded.Uint64               // error frames from admission refusals (shed | breaker open)
	Errors    padded.Uint64               // all error frames sent
	Decode    padded.Uint64               // malformed/oversized frames (connection closed after)
	Batches   padded.Uint64               // fused unicast batches executed
	Batched   padded.Uint64               // frames inside those batches
}

// Server is one TCP listener over one gossip router.
type Server struct {
	cfg   Config
	ln    net.Listener
	ours  *gossip.Ours
	resil *gossip.Resilient

	Stats Counters

	mu    sync.Mutex
	conns map[*conn]struct{}
	sinks map[sinkKey]*gossip.Conn

	closing  atomic.Bool
	wg       sync.WaitGroup // accept loop + connection goroutines
	acceptWG sync.WaitGroup
}

type sinkKey struct{ group, member string }

// New creates a server and starts listening (but not accepting; call
// Serve).
func New(cfg Config) (*Server, error) {
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 16
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 1
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = 64 << 10
	}
	ours := cfg.Router
	if ours == nil {
		ours = gossip.NewOursFused(cfg.SendCost, cfg.PlanOpt)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		ln:    ln,
		ours:  ours,
		conns: make(map[*conn]struct{}),
		sinks: make(map[sinkKey]*gossip.Conn),
	}
	if cfg.Policy != nil {
		s.resil = gossip.NewResilient(ours, cfg.Policy)
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Router returns the served router (lock audit, telemetry providers).
func (s *Server) Router() *gossip.Ours { return s.ours }

// Serve runs the accept loop until Shutdown (or a fatal listener
// error). It blocks; run it on its own goroutine.
func (s *Server) Serve() error {
	s.acceptWG.Add(1)
	defer s.acceptWG.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			if s.closing.Load() {
				return nil
			}
			return err
		}
		if s.closing.Load() {
			nc.Close()
			continue
		}
		s.Stats.Accepted.Add(1)
		s.Stats.Active.Add(1)
		c := newConn(s, nc)
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go c.readLoop()
	}
}

// Shutdown drains the server, reusing the gossipd discipline: stop
// accepting, let every in-flight request finish and its response flush,
// then close the connections. It returns an error if the drain misses
// the deadline with connections still busy; ActiveConns reports what
// leaked.
func (s *Server) Shutdown(deadline time.Duration) error {
	s.closing.Store(true)
	s.ln.Close()
	s.acceptWG.Wait()
	// Unblock idle readers parked in a socket read: a deadline in the
	// past makes the pending read return immediately, and the reader
	// observes closing and exits after flushing. Busy readers finish
	// their current batch first — the deadline only affects the socket
	// read, never a section in flight.
	s.mu.Lock()
	for c := range s.conns {
		c.nc.SetReadDeadline(time.Unix(1, 0))
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-time.After(deadline):
		return fmt.Errorf("server: drain deadline %v exceeded with %d connection(s) still busy", deadline, s.ActiveConns())
	}
}

// ActiveConns returns the live connection gauge.
func (s *Server) ActiveConns() int64 { return s.Stats.Active.Load() }

// sink returns the delivery sink registered under (group, member),
// creating it on first registration. Idempotent re-registration reuses
// the sink so its delivered-frame counters survive membership churn.
func (s *Server) sink(group, member string) *gossip.Conn {
	k := sinkKey{group, member}
	s.mu.Lock()
	c, ok := s.sinks[k]
	if !ok {
		c = gossip.NewConn(member, s.cfg.SendCost)
		s.sinks[k] = c
	}
	s.mu.Unlock()
	return c
}

// Sink exposes a delivery sink for tests and benchmarks (nil when the
// member never registered).
func (s *Server) Sink(group, member string) *gossip.Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sinks[sinkKey{group, member}]
}

// NetStats materializes the counters into telemetry rows; register it
// with telemetry.Registry.RegisterNetSource. Map building happens here,
// on the snapshot reader — never on the wire path.
func (s *Server) NetStats() []telemetry.NetStats {
	row := telemetry.NetStats{
		Server: s.ln.Addr().String(),
		Conns: map[string]uint64{
			"accepted": s.Stats.Accepted.Load(),
			"closed":   s.Stats.Closed.Load(),
			"active":   uint64(s.Stats.Active.Load()),
		},
		Frames: map[string]uint64{
			"shed":           s.Stats.Shed.Load(),
			"errors":         s.Stats.Errors.Load(),
			"decode_errors":  s.Stats.Decode.Load(),
			"batches":        s.Stats.Batches.Load(),
			"batched_frames": s.Stats.Batched.Load(),
		},
	}
	var totalIn, totalOut uint64
	for k := 0; k < wire.KindMax; k++ {
		if n := s.Stats.FramesIn[k].Load(); n > 0 {
			row.Frames["in."+wire.Kind(k).String()] = n
			totalIn += n
		}
		if n := s.Stats.FramesOut[k].Load(); n > 0 {
			row.Frames["out."+wire.Kind(k).String()] = n
			totalOut += n
		}
	}
	row.Frames["in.total"] = totalIn
	row.Frames["out.total"] = totalOut
	return []telemetry.NetStats{row}
}

// errCode maps a section failure to its wire code. Budget exhaustion is
// checked before the stall it wraps (errors.Join keeps both in the
// chain).
func errCode(err error) byte {
	var stall *core.StallError
	switch {
	case errors.Is(err, resilience.ErrShed):
		return wire.CodeShed
	case errors.Is(err, resilience.ErrBreakerOpen):
		return wire.CodeBreakerOpen
	case errors.Is(err, resilience.ErrBudgetExhausted):
		return wire.CodeBudget
	case errors.As(err, &stall):
		return wire.CodeStall
	}
	return wire.CodeInternal
}
