package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// TestRequestRoundTrip: every encode helper's output parses back to the
// same request through ReadFrame + ParseReq.
func TestRequestRoundTrip(t *testing.T) {
	payload := []byte("the payload \x00\xff bytes")
	cases := []struct {
		name string
		enc  func(dst []byte) ([]byte, error)
		want Req
	}{
		{"register", func(d []byte) ([]byte, error) { return AppendRegister(d, "g", "m") },
			Req{Kind: KindRegister, Group: []byte("g"), A: []byte("m")}},
		{"unregister", func(d []byte) ([]byte, error) { return AppendUnregister(d, "grp", "mem") },
			Req{Kind: KindUnregister, Group: []byte("grp"), A: []byte("mem")}},
		{"lookup", func(d []byte) ([]byte, error) { return AppendLookup(d, "g", "m") },
			Req{Kind: KindLookup, Group: []byte("g"), A: []byte("m")}},
		{"unicast", func(d []byte) ([]byte, error) { return AppendUnicast(d, "g", "dst", payload) },
			Req{Kind: KindUnicast, Group: []byte("g"), A: []byte("dst"), Payload: payload}},
		{"unicast-empty-payload", func(d []byte) ([]byte, error) { return AppendUnicast(d, "g", "dst", nil) },
			Req{Kind: KindUnicast, Group: []byte("g"), A: []byte("dst"), Payload: []byte{}}},
		{"multicast", func(d []byte) ([]byte, error) { return AppendMulticast(d, "g", payload) },
			Req{Kind: KindMulticast, Group: []byte("g"), Payload: payload}},
	}
	for _, tc := range cases {
		frame, err := tc.enc(nil)
		if err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		body, _, err := ReadFrame(bytes.NewReader(frame), nil, 0)
		if err != nil {
			t.Fatalf("%s: ReadFrame: %v", tc.name, err)
		}
		got, err := ParseReq(body)
		if err != nil {
			t.Fatalf("%s: ParseReq: %v", tc.name, err)
		}
		if got.Kind != tc.want.Kind || !bytes.Equal(got.Group, tc.want.Group) ||
			!bytes.Equal(got.A, tc.want.A) || !bytes.Equal(got.Payload, tc.want.Payload) {
			t.Fatalf("%s: got %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// TestResponseRoundTrip: the three response shapes survive the wire.
func TestResponseRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		frame []byte
		want  Resp
	}{
		{AppendOK(nil), Resp{Kind: KindOK}},
		{AppendBool(nil, true), Resp{Kind: KindBool, Bool: true}},
		{AppendBool(nil, false), Resp{Kind: KindBool, Bool: false}},
		{AppendErr(nil, CodeShed), Resp{Kind: KindErr, Code: CodeShed}},
	} {
		body, _, err := ReadFrame(bytes.NewReader(tc.frame), nil, 0)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		got, err := ParseResp(body)
		if err != nil {
			t.Fatalf("ParseResp: %v", err)
		}
		if got != tc.want {
			t.Fatalf("got %+v, want %+v", got, tc.want)
		}
	}
}

// TestPipelinedFrames: multiple frames on one stream decode in order
// with one reused buffer — the server's reader-loop shape.
func TestPipelinedFrames(t *testing.T) {
	var stream []byte
	var err error
	stream, err = AppendRegister(stream, "g", "m1")
	if err != nil {
		t.Fatal(err)
	}
	stream, err = AppendUnicast(stream, "g", "m1", []byte("p1"))
	if err != nil {
		t.Fatal(err)
	}
	stream, err = AppendLookup(stream, "g", "m1")
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(stream)
	var buf []byte
	var kinds []Kind
	for {
		var body []byte
		body, buf, err = ReadFrame(r, buf, 0)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		req, err := ParseReq(body)
		if err != nil {
			t.Fatalf("ParseReq: %v", err)
		}
		kinds = append(kinds, req.Kind)
	}
	want := []Kind{KindRegister, KindUnicast, KindLookup}
	if len(kinds) != len(want) {
		t.Fatalf("decoded %d frames, want %d", len(kinds), len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("frame %d: kind %v, want %v", i, kinds[i], want[i])
		}
	}
}

// TestMalformed: truncation at every prefix of a valid frame, trailing
// garbage, empty names, unknown kinds — all error, none panic.
func TestMalformed(t *testing.T) {
	frame, err := AppendUnicast(nil, "grp", "dst", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix of the stream either hits EOF (header cut) or
	// ErrUnexpectedEOF (body cut) — never a parse success.
	for i := 0; i < len(frame); i++ {
		_, _, err := ReadFrame(bytes.NewReader(frame[:i]), nil, 0)
		if err == nil {
			t.Fatalf("prefix %d: ReadFrame succeeded on truncated input", i)
		}
	}
	// Truncated bodies handed straight to ParseReq.
	body, _, err := ReadFrame(bytes.NewReader(frame), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	full, err := ParseReq(body)
	if err != nil || full.Kind != KindUnicast {
		t.Fatalf("full body must parse, got %v", err)
	}
	// A fixed-shape request with trailing garbage is malformed.
	reg, err := AppendRegister(nil, "g", "m")
	if err != nil {
		t.Fatal(err)
	}
	regBody := append(append([]byte(nil), reg[HeaderLen:]...), 0xAA)
	if _, err := ParseReq(regBody); !errors.Is(err, ErrMalformed) {
		t.Fatalf("trailing garbage: got %v, want ErrMalformed", err)
	}
	// Name length pointing past the body.
	if _, err := ParseReq([]byte{byte(KindLookup), 10, 'g'}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("overlong name length: got %v, want ErrMalformed", err)
	}
	// Empty name.
	if _, err := ParseReq([]byte{byte(KindLookup), 0, 1, 'm'}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("empty name: got %v, want ErrMalformed", err)
	}
	// Unknown kind.
	if _, err := ParseReq([]byte{0x7f, 1, 'g'}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("unknown kind: got %v, want ErrMalformed", err)
	}
	// Empty body.
	if _, err := ParseReq(nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("empty body: got %v, want ErrMalformed", err)
	}
	// Response parser on the same classes.
	if _, err := ParseResp([]byte{byte(KindOK), 0}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("oversized OK: got %v, want ErrMalformed", err)
	}
	if _, err := ParseResp([]byte{byte(KindBool), 2}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("bool out of range: got %v, want ErrMalformed", err)
	}
}

// TestOversized: a length prefix past the cap is refused before the
// body is read, under both the protocol cap and a caller cap.
func TestOversized(t *testing.T) {
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := ReadFrame(bytes.NewReader(huge), nil, 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("4GiB prefix: got %v, want ErrFrameTooLarge", err)
	}
	frame, err := AppendMulticast(nil, "g", bytes.Repeat([]byte{'x'}, 1024))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFrame(bytes.NewReader(frame), nil, 64); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("caller cap: got %v, want ErrFrameTooLarge", err)
	}
	// Encode side refuses to build an oversized frame at all.
	if _, err := AppendMulticast(nil, "g", make([]byte, MaxBody)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("encode oversize: got %v, want ErrFrameTooLarge", err)
	}
	if _, err := AppendRegister(nil, strings.Repeat("g", 256), "m"); !errors.Is(err, ErrBadName) {
		t.Fatalf("encode long name: got %v, want ErrBadName", err)
	}
	if _, err := AppendLookup(nil, "", "m"); !errors.Is(err, ErrBadName) {
		t.Fatalf("encode empty name: got %v, want ErrBadName", err)
	}
}

// TestDecodeAllocs: ParseReq and ParseResp are allocation-free, and
// ReadFrame stops allocating once its buffer has grown to the frame
// size — the wire half of the server's 0 allocs/op discipline.
func TestDecodeAllocs(t *testing.T) {
	frame, err := AppendUnicast(nil, "group-name", "member-name", bytes.Repeat([]byte{'p'}, 256))
	if err != nil {
		t.Fatal(err)
	}
	body := frame[HeaderLen:]
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := ParseReq(body); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("ParseReq allocs/op = %v, want 0", n)
	}
	ok := AppendOK(nil)
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := ParseResp(ok[HeaderLen:]); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("ParseResp allocs/op = %v, want 0", n)
	}
	r := bytes.NewReader(frame)
	buf := make([]byte, 0, len(frame))
	if n := testing.AllocsPerRun(1000, func() {
		r.Reset(frame)
		var err error
		_, buf, err = ReadFrame(r, buf, 0)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("ReadFrame steady-state allocs/op = %v, want 0", n)
	}
}
