// Package wire is the gossip router's binary wire protocol: compact
// length-prefixed frames designed so the server's steady-state
// decode→handle→encode path allocates nothing.
//
// Frame layout (all integers big-endian):
//
//	frame    := length:uint32 | body            length = len(body), ≤ MaxBody
//	body     := kind:byte | fields
//
// Request bodies:
//
//	Register   := 0x01 | name(group) | name(member)
//	Unregister := 0x02 | name(group) | name(member)
//	Unicast    := 0x03 | name(group) | name(dst) | payload…
//	Multicast  := 0x04 | name(group) | payload…
//	Lookup     := 0x05 | name(group) | name(member)
//
//	name       := len:uint8 | bytes              len ≥ 1 (empty names are malformed)
//	payload    := the remainder of the body (may be empty)
//
// Response bodies:
//
//	OK    := 0x10
//	Bool  := 0x11 | value:byte                   lookup result (0 or 1)
//	Err   := 0x1f | code:byte                    see the Code* constants
//
// The decoder never allocates: ParseReq returns subslices of the body
// it was handed, so the caller owns buffer reuse (the server interns
// names per connection and recycles the frame buffer between reads).
// Malformed input — truncated names, trailing garbage on fixed-shape
// requests, oversized frames, unknown kinds — returns an error, never
// panics: the fuzz corpus in testdata pins that.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Kind is the frame discriminator byte.
type Kind byte

// Request and response kinds.
const (
	KindInvalid    Kind = 0x00
	KindRegister   Kind = 0x01
	KindUnregister Kind = 0x02
	KindUnicast    Kind = 0x03
	KindMulticast  Kind = 0x04
	KindLookup     Kind = 0x05

	KindOK   Kind = 0x10
	KindBool Kind = 0x11
	KindErr  Kind = 0x1f

	// KindMax bounds the discriminator space; the server sizes its
	// per-frame-type counter arrays with it.
	KindMax = 0x20
)

// String names the kind for counters and diagnostics.
func (k Kind) String() string {
	switch k {
	case KindRegister:
		return "register"
	case KindUnregister:
		return "unregister"
	case KindUnicast:
		return "unicast"
	case KindMulticast:
		return "multicast"
	case KindLookup:
		return "lookup"
	case KindOK:
		return "ok"
	case KindBool:
		return "bool"
	case KindErr:
		return "err"
	}
	return fmt.Sprintf("kind(0x%02x)", byte(k))
}

// Error codes carried by KindErr frames: the wire form of the
// resilience layer's refusals plus the protocol's own failures.
const (
	CodeMalformed   byte = 1 // request did not parse; the connection is closed after sending
	CodeShed        byte = 2 // resilience.ErrShed — refused by admission control before any lock
	CodeBreakerOpen byte = 3 // resilience.ErrBreakerOpen — circuit breaker rejected the section
	CodeStall       byte = 4 // core.StallError — bounded acquisition gave up past the retry budget
	CodeBudget      byte = 5 // resilience.ErrBudgetExhausted — stalled and the retry budget was dry
	CodeInternal    byte = 6 // any other section failure
)

// CodeString names an error code.
func CodeString(c byte) string {
	switch c {
	case CodeMalformed:
		return "malformed"
	case CodeShed:
		return "shed"
	case CodeBreakerOpen:
		return "breaker-open"
	case CodeStall:
		return "stall"
	case CodeBudget:
		return "budget-exhausted"
	case CodeInternal:
		return "internal"
	}
	return fmt.Sprintf("code(%d)", c)
}

// Size limits. MaxBody bounds a whole frame body (oversized length
// prefixes are rejected before any read); MaxName bounds group/member
// names (a name length byte can express nothing larger).
const (
	MaxBody = 1 << 20
	MaxName = 255

	// HeaderLen is the frame length prefix.
	HeaderLen = 4
)

// Errors returned by the decode paths. ErrFrameTooLarge and
// ErrMalformed close the connection (the stream cannot be resynced);
// io errors propagate as-is.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxBody")
	ErrMalformed     = errors.New("wire: malformed frame")
)

// Req is one parsed request. Group/A/Payload are subslices of the body
// passed to ParseReq — valid only until the caller reuses that buffer.
// A is the second name when the kind has one (member or dst).
type Req struct {
	Kind    Kind
	Group   []byte
	A       []byte
	Payload []byte
}

// Resp is one parsed response.
type Resp struct {
	Kind Kind
	Bool bool // KindBool value
	Code byte // KindErr code
}

// ReadFrame reads one length-prefixed frame body from r into buf,
// growing buf as needed, and returns the body slice (aliasing the
// returned buffer, which the caller should keep for the next call).
// A length prefix over max (or MaxBody, whichever is smaller) returns
// ErrFrameTooLarge without consuming the body.
func ReadFrame(r io.Reader, buf []byte, max int) ([]byte, []byte, error) {
	if max <= 0 || max > MaxBody {
		max = MaxBody
	}
	// The header is read into the reusable buffer, not a local array: a
	// local escapes through the io.Reader interface and would cost one
	// allocation per frame.
	if cap(buf) < HeaderLen {
		buf = make([]byte, HeaderLen, 512)
	}
	buf = buf[:cap(buf)]
	if _, err := io.ReadFull(r, buf[:HeaderLen]); err != nil {
		return nil, buf, err
	}
	n := int(binary.BigEndian.Uint32(buf[:HeaderLen]))
	if n > max {
		return nil, buf, ErrFrameTooLarge
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:cap(buf)]
	if _, err := io.ReadFull(r, buf[:n]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, buf, err
	}
	return buf[:n], buf, nil
}

// AppendFrame appends the length prefix and body to dst.
func AppendFrame(dst, body []byte) []byte {
	var hdr [HeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// appendName appends one length-prefixed name. Callers must have
// validated the length (encode helpers do).
func appendName(dst []byte, s string) []byte {
	dst = append(dst, byte(len(s)))
	return append(dst, s...)
}

// nameOK reports whether s fits the wire shape.
func nameOK(s string) bool { return len(s) >= 1 && len(s) <= MaxName }

// ErrBadName is returned by encode helpers handed an empty or oversized
// name.
var ErrBadName = errors.New("wire: name must be 1..255 bytes")

// AppendRegister appends a complete Register request frame to dst.
func AppendRegister(dst []byte, group, member string) ([]byte, error) {
	return appendPair(dst, KindRegister, group, member)
}

// AppendUnregister appends a complete Unregister request frame to dst.
func AppendUnregister(dst []byte, group, member string) ([]byte, error) {
	return appendPair(dst, KindUnregister, group, member)
}

// AppendLookup appends a complete Lookup request frame to dst.
func AppendLookup(dst []byte, group, member string) ([]byte, error) {
	return appendPair(dst, KindLookup, group, member)
}

func appendPair(dst []byte, k Kind, group, member string) ([]byte, error) {
	if !nameOK(group) || !nameOK(member) {
		return dst, ErrBadName
	}
	body := 1 + 1 + len(group) + 1 + len(member)
	var hdr [HeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(body))
	dst = append(dst, hdr[:]...)
	dst = append(dst, byte(k))
	dst = appendName(dst, group)
	return appendName(dst, member), nil
}

// AppendUnicast appends a complete Unicast request frame to dst.
func AppendUnicast(dst []byte, group, to string, payload []byte) ([]byte, error) {
	if !nameOK(group) || !nameOK(to) {
		return dst, ErrBadName
	}
	body := 1 + 1 + len(group) + 1 + len(to) + len(payload)
	if body > MaxBody {
		return dst, ErrFrameTooLarge
	}
	var hdr [HeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(body))
	dst = append(dst, hdr[:]...)
	dst = append(dst, byte(KindUnicast))
	dst = appendName(dst, group)
	dst = appendName(dst, to)
	return append(dst, payload...), nil
}

// AppendMulticast appends a complete Multicast request frame to dst.
func AppendMulticast(dst []byte, group string, payload []byte) ([]byte, error) {
	if !nameOK(group) {
		return dst, ErrBadName
	}
	body := 1 + 1 + len(group) + len(payload)
	if body > MaxBody {
		return dst, ErrFrameTooLarge
	}
	var hdr [HeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(body))
	dst = append(dst, hdr[:]...)
	dst = append(dst, byte(KindMulticast))
	dst = appendName(dst, group)
	return append(dst, payload...), nil
}

// AppendOK appends a complete OK response frame to dst.
func AppendOK(dst []byte) []byte {
	return append(dst, 0, 0, 0, 1, byte(KindOK))
}

// AppendBool appends a complete Bool response frame to dst.
func AppendBool(dst []byte, v bool) []byte {
	b := byte(0)
	if v {
		b = 1
	}
	return append(dst, 0, 0, 0, 2, byte(KindBool), b)
}

// AppendErr appends a complete Err response frame to dst.
func AppendErr(dst []byte, code byte) []byte {
	return append(dst, 0, 0, 0, 2, byte(KindErr), code)
}

// parseName consumes one length-prefixed name from b, returning the
// name and the remainder.
func parseName(b []byte) (name, rest []byte, err error) {
	if len(b) < 1 {
		return nil, nil, ErrMalformed
	}
	n := int(b[0])
	if n < 1 || len(b) < 1+n {
		return nil, nil, ErrMalformed
	}
	return b[1 : 1+n], b[1+n:], nil
}

// ParseReq decodes one request body. The returned slices alias body.
func ParseReq(body []byte) (Req, error) {
	var r Req
	if len(body) < 1 {
		return r, ErrMalformed
	}
	r.Kind = Kind(body[0])
	rest := body[1:]
	var err error
	switch r.Kind {
	case KindRegister, KindUnregister, KindLookup:
		if r.Group, rest, err = parseName(rest); err != nil {
			return Req{}, err
		}
		if r.A, rest, err = parseName(rest); err != nil {
			return Req{}, err
		}
		if len(rest) != 0 {
			// Fixed-shape requests admit no trailing bytes: garbage here
			// means the stream is out of sync.
			return Req{}, ErrMalformed
		}
	case KindUnicast:
		if r.Group, rest, err = parseName(rest); err != nil {
			return Req{}, err
		}
		if r.A, rest, err = parseName(rest); err != nil {
			return Req{}, err
		}
		r.Payload = rest
	case KindMulticast:
		if r.Group, rest, err = parseName(rest); err != nil {
			return Req{}, err
		}
		r.Payload = rest
	default:
		return Req{}, ErrMalformed
	}
	return r, nil
}

// ParseResp decodes one response body.
func ParseResp(body []byte) (Resp, error) {
	var r Resp
	if len(body) < 1 {
		return r, ErrMalformed
	}
	r.Kind = Kind(body[0])
	switch r.Kind {
	case KindOK:
		if len(body) != 1 {
			return Resp{}, ErrMalformed
		}
	case KindBool:
		if len(body) != 2 || body[1] > 1 {
			return Resp{}, ErrMalformed
		}
		r.Bool = body[1] == 1
	case KindErr:
		if len(body) != 2 {
			return Resp{}, ErrMalformed
		}
		r.Code = body[1]
	default:
		return Resp{}, ErrMalformed
	}
	return r, nil
}
