package wire

import (
	"bytes"
	"io"
	"testing"
)

// seedBodies returns valid request/response bodies used as fuzz seeds
// (alongside the committed corpus under testdata/fuzz).
func seedBodies(t interface{ Fatal(...any) }) [][]byte {
	var out [][]byte
	add := func(frame []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, frame[HeaderLen:])
	}
	add(AppendRegister(nil, "g", "m"))
	add(AppendUnregister(nil, "group", "member"))
	add(AppendLookup(nil, "g", "m"))
	add(AppendUnicast(nil, "g", "dst", []byte("payload")))
	add(AppendMulticast(nil, "g", nil))
	out = append(out, AppendOK(nil)[HeaderLen:])
	out = append(out, AppendBool(nil, true)[HeaderLen:])
	out = append(out, AppendErr(nil, CodeStall)[HeaderLen:])
	return out
}

// FuzzParseReq: any byte string either parses into a request whose
// re-encoding round-trips, or errors — it must never panic, and the
// parsed slices must stay inside the input body.
func FuzzParseReq(f *testing.F) {
	for _, b := range seedBodies(f) {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{byte(KindLookup), 10, 'g'})
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := ParseReq(body)
		if err != nil {
			return
		}
		// Re-encode and re-parse: the codec must agree with itself.
		var frame []byte
		switch req.Kind {
		case KindRegister:
			frame, err = AppendRegister(nil, string(req.Group), string(req.A))
		case KindUnregister:
			frame, err = AppendUnregister(nil, string(req.Group), string(req.A))
		case KindLookup:
			frame, err = AppendLookup(nil, string(req.Group), string(req.A))
		case KindUnicast:
			frame, err = AppendUnicast(nil, string(req.Group), string(req.A), req.Payload)
		case KindMulticast:
			frame, err = AppendMulticast(nil, string(req.Group), req.Payload)
		default:
			t.Fatalf("parse accepted unknown kind %v", req.Kind)
		}
		if err != nil {
			t.Fatalf("accepted request failed to re-encode: %v", err)
		}
		if !bytes.Equal(frame[HeaderLen:], body) {
			t.Fatalf("re-encode mismatch:\n in %x\nout %x", body, frame[HeaderLen:])
		}
	})
}

// FuzzParseResp: same contract for the response parser.
func FuzzParseResp(f *testing.F) {
	for _, b := range seedBodies(f) {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		resp, err := ParseResp(body)
		if err != nil {
			return
		}
		var frame []byte
		switch resp.Kind {
		case KindOK:
			frame = AppendOK(nil)
		case KindBool:
			frame = AppendBool(nil, resp.Bool)
		case KindErr:
			frame = AppendErr(nil, resp.Code)
		default:
			t.Fatalf("parse accepted unknown kind %v", resp.Kind)
		}
		if !bytes.Equal(frame[HeaderLen:], body) {
			t.Fatalf("re-encode mismatch:\n in %x\nout %x", body, frame[HeaderLen:])
		}
	})
}

// FuzzReadFrame: arbitrary streams never panic the framer, and
// whatever it accepts respects the size cap.
func FuzzReadFrame(f *testing.F) {
	for _, b := range seedBodies(f) {
		f.Add(AppendFrame(nil, b))
	}
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, stream []byte) {
		r := bytes.NewReader(stream)
		var buf []byte
		for {
			var body []byte
			var err error
			body, buf, err = ReadFrame(r, buf, 4096)
			if err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF || err == ErrFrameTooLarge {
					return
				}
				t.Fatalf("unexpected error class: %v", err)
			}
			if len(body) > 4096 {
				t.Fatalf("accepted %d-byte body past the 4096 cap", len(body))
			}
			_, _ = ParseReq(body) // must not panic
		}
	})
}
