package client

import (
	"math/bits"
	"time"
)

// Hist is a log-bucketed latency histogram: bucket i counts samples in
// [2^(i-1), 2^i) nanoseconds, so 64 fixed buckets cover every duration
// with ≤ 2× quantile error — plenty for p50/p95/p99 over a sweep, at
// zero allocation and one increment per sample. Not safe for concurrent
// use; each load worker records into its own and the results are
// merged.
type Hist struct {
	counts [65]uint64
	n      uint64
	sum    uint64
}

// Record adds one latency sample.
func (h *Hist) Record(d time.Duration) {
	ns := uint64(d)
	if d < 0 {
		ns = 0
	}
	h.counts[bits.Len64(ns)]++
	h.n++
	h.sum += ns
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.n }

// Mean returns the exact (un-bucketed) mean of the recorded samples.
func (h *Hist) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sum / h.n)
}

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.n += o.n
	h.sum += o.sum
}

// Quantile returns the q-th (0..1) latency estimate: the geometric
// midpoint of the bucket holding the q-th sample.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	target := uint64(q * float64(h.n))
	if target >= h.n {
		target = h.n - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if c > 0 && seen > target {
			if i == 0 {
				return 0
			}
			lo := uint64(1) << (i - 1)
			return time.Duration(lo + lo/2) // midpoint of [2^(i-1), 2^i)
		}
	}
	return 0
}
