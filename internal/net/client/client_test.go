package client_test

import (
	"testing"
	"time"

	"repro/internal/net/client"
	"repro/internal/net/server"
)

func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Shutdown(5 * time.Second) })
	return s
}

// TestClientRoundTrip: every RPC against a live server, including the
// pipelined window.
func TestClientRoundTrip(t *testing.T) {
	s := startServer(t, server.Config{})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Register("g", "m"); err != nil {
		t.Fatalf("register: %v", err)
	}
	if found, err := c.Lookup("g", "m"); err != nil || !found {
		t.Fatalf("lookup = %v, %v; want true", found, err)
	}
	if found, err := c.Lookup("g", "nope"); err != nil || found {
		t.Fatalf("absent lookup = %v, %v; want false", found, err)
	}
	if err := c.Unicast("g", "m", []byte("one")); err != nil {
		t.Fatalf("unicast: %v", err)
	}
	if err := c.Multicast("g", []byte("all")); err != nil {
		t.Fatalf("multicast: %v", err)
	}
	ok, shed, err := c.UnicastWindow("g", "m", []byte("w"), 8)
	if err != nil || ok != 8 || shed != 0 {
		t.Fatalf("window = %d ok, %d shed, %v; want 8, 0, nil", ok, shed, err)
	}
	if got := s.Sink("g", "m").Frames.Load(); got != 10 {
		t.Errorf("delivered frames = %d, want 10", got)
	}
	if err := c.Unregister("g", "m"); err != nil {
		t.Fatalf("unregister: %v", err)
	}
	if found, _ := c.Lookup("g", "m"); found {
		t.Fatal("member present after unregister")
	}
}

// TestHistQuantiles: the log-bucket histogram answers quantiles within
// its documented 2× bucket error.
func TestHistQuantiles(t *testing.T) {
	var h client.Hist
	// 90 samples near 1µs, 9 near 100µs, 1 near 10ms.
	for i := 0; i < 90; i++ {
		h.Record(time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Record(100 * time.Microsecond)
	}
	h.Record(10 * time.Millisecond)

	if got := h.Quantile(0.5); got < 500*time.Nanosecond || got > 2*time.Microsecond {
		t.Errorf("p50 = %v, want ≈1µs", got)
	}
	if got := h.Quantile(0.95); got < 50*time.Microsecond || got > 200*time.Microsecond {
		t.Errorf("p95 = %v, want ≈100µs", got)
	}
	if got := h.Quantile(0.999); got < 5*time.Millisecond || got > 20*time.Millisecond {
		t.Errorf("p99.9 = %v, want ≈10ms", got)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}

	var other client.Hist
	other.Record(time.Microsecond)
	other.Merge(&h)
	if other.Count() != 101 {
		t.Errorf("merged count = %d", other.Count())
	}
}

// TestRunLoadSmoke: a short closed-loop cell completes with work done,
// zero hard errors, and a populated histogram; the server drains clean
// afterwards.
func TestRunLoadSmoke(t *testing.T) {
	s := startServer(t, server.Config{})
	res, err := client.RunLoad(client.LoadConfig{
		Addr:     s.Addr().String(),
		Conns:    4,
		Duration: 80 * time.Millisecond,
		ReadFrac: 0.5,
		Pipeline: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.Errors != 0 {
		t.Fatalf("hard errors: %d", res.Errors)
	}
	if res.Hist.Count() == 0 || res.Hist.Quantile(0.99) == 0 {
		t.Fatalf("histogram empty: count=%d", res.Hist.Count())
	}
	if res.OpsPerSec() <= 0 {
		t.Fatalf("ops/sec = %v", res.OpsPerSec())
	}
	if err := s.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown after load: %v", err)
	}
	if n := s.ActiveConns(); n != 0 {
		t.Fatalf("leaked connections: %d", n)
	}
}
