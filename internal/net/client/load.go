package client

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// LoadConfig is one closed-loop load cell: Conns workers, each with its
// own connection, issuing a ReadFrac/1-ReadFrac mix of lookups and
// pipelined unicast windows for Duration.
type LoadConfig struct {
	Addr     string
	Conns    int
	Duration time.Duration
	// ReadFrac is the fraction of iterations that are lookups; the rest
	// are unicast windows.
	ReadFrac float64
	// Pipeline is the unicasts per window (default 1; >1 exercises the
	// server's adjacent-unicast batch fusion).
	Pipeline int
	// PayloadBytes sizes the unicast payload (default 64).
	PayloadBytes int
	// Groups/Members shape the membership universe the setup phase
	// registers (defaults 4 and 8).
	Groups  int
	Members int
	// WarmupOps are per-worker unmeasured iterations before the window
	// opens (buffer growth, interning, TCP slow start). The measurement
	// window opens only after every worker has warmed up, so Duration
	// buys measured operations at any connection count. Default 16.
	WarmupOps int
}

// LoadResult aggregates one cell.
type LoadResult struct {
	Conns   int
	Ops     uint64 // completed operations (each unicast in a window counts once)
	Shed    uint64 // operations refused by the server's admission control
	Errors  uint64 // hard failures (I/O, protocol, internal)
	Elapsed time.Duration
	Hist    Hist // per-operation round-trip latency
}

// OpsPerSec is the cell's completed-operation throughput.
func (r *LoadResult) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

func (c *LoadConfig) defaults() {
	if c.Conns <= 0 {
		c.Conns = 1
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 1
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 64
	}
	if c.Groups <= 0 {
		c.Groups = 4
	}
	if c.Members <= 0 {
		c.Members = 8
	}
	if c.WarmupOps <= 0 {
		c.WarmupOps = 16
	}
}

// SeedMembership registers the Groups×Members universe over one
// connection, so a cell (or an external target) has members to hit.
// Registration is idempotent on the server, so repeated cells against
// one server are fine.
func SeedMembership(addr string, groups, members int) error {
	c, err := Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	for g := 0; g < groups; g++ {
		for m := 0; m < members; m++ {
			if err := c.Register(groupName(g), memberName(m)); err != nil {
				return fmt.Errorf("seed register g%d/m%d: %w", g, m, err)
			}
		}
	}
	return nil
}

func groupName(g int) string  { return fmt.Sprintf("g%d", g) }
func memberName(m int) string { return fmt.Sprintf("m%d", m) }

// RunLoad runs one closed-loop cell against a serving address. Every
// worker owns one connection and measures the full round-trip of each
// iteration; sheds count as completed-but-refused (they have latency
// too, but only delivered work enters Ops and the histogram). A worker
// that hits a hard failure stops; the cell reports it in Errors.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	cfg.defaults()
	if err := SeedMembership(cfg.Addr, cfg.Groups, cfg.Members); err != nil {
		return nil, err
	}

	// Dial everything before the window opens so slow accept queues
	// don't eat into the measurement.
	conns := make([]*Conn, cfg.Conns)
	for i := range conns {
		c, err := Dial(cfg.Addr)
		if err != nil {
			for _, pc := range conns[:i] {
				pc.Close()
			}
			return nil, fmt.Errorf("dial conn %d: %w", i, err)
		}
		conns[i] = c
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	payload := make([]byte, cfg.PayloadBytes)
	readThreshold := int(cfg.ReadFrac * 1000)
	res := &LoadResult{Conns: cfg.Conns}
	var mu sync.Mutex
	var wg sync.WaitGroup

	// The window opens only after every worker finishes warmup: a clock
	// that starts before warmup would leave slow hosts × many workers
	// with zero measured iterations. `deadline` is written before the
	// close, so workers reading it after <-open are race-free.
	var warm sync.WaitGroup
	open := make(chan struct{})
	var deadline time.Time

	for w := 0; w < cfg.Conns; w++ {
		wg.Add(1)
		warm.Add(1)
		go func(w int, c *Conn) {
			defer wg.Done()
			var h Hist
			var ops, shed, hardErrs uint64
			g := groupName(w % cfg.Groups)
			m := memberName(w % cfg.Members)
			fail := func(err error) bool {
				// Connection teardown at cell end is not a workload error.
				if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
					return true
				}
				hardErrs++
				return true
			}
			// iter runs iteration i, recording it when measure is set, and
			// reports whether the worker can continue.
			iter := func(i int, measure bool) bool {
				t0 := time.Now()
				// Mix by a fixed per-worker stride so every worker honors
				// ReadFrac without shared state.
				if (i*611+w*263)%1000 < readThreshold {
					if _, err := c.Lookup(g, m); err != nil {
						var re *RespError
						if errors.As(err, &re) && re.Shed() {
							shed++
							return true
						}
						return !fail(err)
					}
					if measure {
						h.Record(time.Since(t0))
						ops++
					}
				} else {
					nok, nshed, err := c.UnicastWindow(g, m, payload, cfg.Pipeline)
					shed += uint64(nshed)
					if err != nil {
						var re *RespError
						if !errors.As(err, &re) {
							return !fail(err)
						}
						hardErrs++
						return true
					}
					if measure {
						d := time.Since(t0)
						for j := 0; j < nok; j++ {
							h.Record(d)
						}
						ops += uint64(nok)
					}
				}
				return true
			}

			alive := true
			for i := 0; i < cfg.WarmupOps && alive; i++ {
				alive = iter(i, false)
			}
			warm.Done()
			if alive {
				<-open
				for i := cfg.WarmupOps; !time.Now().After(deadline); i++ {
					if !iter(i, true) {
						break
					}
				}
			}
			mu.Lock()
			res.Ops += ops
			res.Shed += shed
			res.Errors += hardErrs
			res.Hist.Merge(&h)
			mu.Unlock()
		}(w, conns[w])
	}
	warm.Wait()
	windowStart := time.Now()
	deadline = windowStart.Add(cfg.Duration)
	close(open)
	wg.Wait()
	res.Elapsed = time.Since(windowStart)
	return res, nil
}
