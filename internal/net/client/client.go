// Package client is the wire protocol's client side: a blocking
// per-connection RPC surface over the frames in internal/net/wire, a
// pipelined window primitive that exercises the server's batch fusion,
// and a closed-loop load generator that sweeps connection counts and
// read fractions for the networked benchmark.
//
// Like the server, a Conn owns all its buffers: one encode buffer and
// one frame-read buffer, reused across calls, so a steady client loop
// does not allocate either.
package client

import (
	"bufio"
	"fmt"
	"net"

	"repro/internal/net/wire"
)

// RespError is a server-side refusal carried in a KindErr frame: the
// wire form of a shed, an open breaker, a stall, or a decode error.
type RespError struct{ Code byte }

func (e *RespError) Error() string {
	return "wire: server refused: " + wire.CodeString(e.Code)
}

// Shed reports whether the refusal is load shedding (admission gate or
// breaker) — expected under pressure, and accounted separately from
// hard failures by the load generator.
func (e *RespError) Shed() bool {
	return e.Code == wire.CodeShed || e.Code == wire.CodeBreakerOpen
}

// Conn is one client connection. Not safe for concurrent use; the load
// generator gives each worker goroutine its own.
type Conn struct {
	nc  net.Conn
	br  *bufio.Reader
	buf []byte
	out []byte
}

// Dial connects to a gossip server.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Conn{
		nc:  nc,
		br:  bufio.NewReaderSize(nc, 32<<10),
		out: make([]byte, 0, 4<<10),
	}, nil
}

// Close closes the connection.
func (c *Conn) Close() error { return c.nc.Close() }

// flush writes the accumulated request bytes.
func (c *Conn) flush() error {
	if len(c.out) == 0 {
		return nil
	}
	_, err := c.nc.Write(c.out)
	c.out = c.out[:0]
	return err
}

// recv reads one response frame.
func (c *Conn) recv() (wire.Resp, error) {
	body, buf, err := wire.ReadFrame(c.br, c.buf, 0)
	c.buf = buf
	if err != nil {
		return wire.Resp{}, err
	}
	return wire.ParseResp(body)
}

// expectOK maps one response to the RPC's error result.
func (c *Conn) expectOK() error {
	resp, err := c.recv()
	if err != nil {
		return err
	}
	switch resp.Kind {
	case wire.KindOK:
		return nil
	case wire.KindErr:
		return &RespError{Code: resp.Code}
	}
	return fmt.Errorf("wire: unexpected %v response", resp.Kind)
}

// Register adds member to group.
func (c *Conn) Register(group, member string) error {
	out, err := wire.AppendRegister(c.out[:0], group, member)
	if err != nil {
		return err
	}
	c.out = out
	if err := c.flush(); err != nil {
		return err
	}
	return c.expectOK()
}

// Unregister removes member from group.
func (c *Conn) Unregister(group, member string) error {
	out, err := wire.AppendUnregister(c.out[:0], group, member)
	if err != nil {
		return err
	}
	c.out = out
	if err := c.flush(); err != nil {
		return err
	}
	return c.expectOK()
}

// Unicast sends payload to one member of group.
func (c *Conn) Unicast(group, to string, payload []byte) error {
	out, err := wire.AppendUnicast(c.out[:0], group, to, payload)
	if err != nil {
		return err
	}
	c.out = out
	if err := c.flush(); err != nil {
		return err
	}
	return c.expectOK()
}

// Multicast sends payload to every member of group.
func (c *Conn) Multicast(group string, payload []byte) error {
	out, err := wire.AppendMulticast(c.out[:0], group, payload)
	if err != nil {
		return err
	}
	c.out = out
	if err := c.flush(); err != nil {
		return err
	}
	return c.expectOK()
}

// Lookup reports whether member is registered in group.
func (c *Conn) Lookup(group, member string) (bool, error) {
	out, err := wire.AppendLookup(c.out[:0], group, member)
	if err != nil {
		return false, err
	}
	c.out = out
	if err := c.flush(); err != nil {
		return false, err
	}
	resp, err := c.recv()
	if err != nil {
		return false, err
	}
	switch resp.Kind {
	case wire.KindBool:
		return resp.Bool, nil
	case wire.KindErr:
		return false, &RespError{Code: resp.Code}
	}
	return false, fmt.Errorf("wire: unexpected %v response", resp.Kind)
}

// UnicastWindow pipelines n unicasts in one write and reads all n
// responses — the client side of the server's adjacent-unicast batch
// fusion. It returns how many were delivered and how many the server
// shed; any other failure (I/O, protocol, non-shed refusal) is the
// error.
func (c *Conn) UnicastWindow(group, to string, payload []byte, n int) (ok, shed int, err error) {
	out := c.out[:0]
	for i := 0; i < n; i++ {
		if out, err = wire.AppendUnicast(out, group, to, payload); err != nil {
			return 0, 0, err
		}
	}
	c.out = out
	if err := c.flush(); err != nil {
		return 0, 0, err
	}
	for i := 0; i < n; i++ {
		resp, err := c.recv()
		if err != nil {
			return ok, shed, err
		}
		switch {
		case resp.Kind == wire.KindOK:
			ok++
		case resp.Kind == wire.KindErr:
			re := &RespError{Code: resp.Code}
			if !re.Shed() {
				return ok, shed, re
			}
			shed++
		default:
			return ok, shed, fmt.Errorf("wire: unexpected %v response", resp.Kind)
		}
	}
	return ok, shed, nil
}
