package gossip

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/modules/plan"
)

// TestLookupVariantsAgree: the optimistic Lookup and the pessimistic
// baseline answer identically across membership churn, and the
// uncontended optimistic path actually commits lock-free.
func TestLookupVariantsAgree(t *testing.T) {
	r := NewOurs(0, plan.Options{})
	r.Register("g", "alice", NewConn("alice", 0))
	r.Register("g", "bob", NewConn("bob", 0))

	cases := []struct {
		group, member string
		want          bool
	}{
		{"g", "alice", true},
		{"g", "bob", true},
		{"g", "carol", false},
		{"nope", "alice", false},
	}
	for _, c := range cases {
		if got := r.Lookup(c.group, c.member); got != c.want {
			t.Errorf("Lookup(%q,%q) = %v, want %v", c.group, c.member, got, c.want)
		}
		if got := r.LookupPessimistic(c.group, c.member); got != c.want {
			t.Errorf("LookupPessimistic(%q,%q) = %v, want %v", c.group, c.member, got, c.want)
		}
	}
	r.Unregister("g", "alice")
	if r.Lookup("g", "alice") {
		t.Error("Lookup sees alice after unregister")
	}
	if st := r.groupsSem.Stats(); st.OptimisticHits == 0 {
		t.Errorf("uncontended lookups never committed optimistically: %+v", st)
	}
}

// TestLookupConcurrentChurn races optimistic lookups against
// register/unregister churn: answers must always be booleans computed
// from a validated window (exercised under -race via the package's
// race-enabled CI lane), and lookups of members outside the churn set
// must stay true throughout.
func TestLookupConcurrentChurn(t *testing.T) {
	r := NewOurs(0, plan.Options{})
	r.Register("g", "stable", NewConn("stable", 0))

	const workers, iters = 4, 400
	var wg sync.WaitGroup
	errCh := make(chan error, workers+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := NewConn("churn", 0)
		for i := 0; i < iters; i++ {
			r.Register("g", "churn", c)
			r.Unregister("g", "churn")
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if !r.Lookup("g", "stable") {
					errCh <- fmt.Errorf("stable member vanished from a validated lookup")
					return
				}
				r.Lookup("g", "churn") // either answer is valid mid-churn
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := r.groupsSem.Stats()
	if st.OptimisticHits+st.OptimisticRetries == 0 {
		t.Errorf("no optimistic attempts recorded under churn: %+v", st)
	}
}
