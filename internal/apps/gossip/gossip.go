// Package gossip is a from-scratch reproduction of the JGroups
// GossipRouter benchmark (§6.2): a routing server whose main state is a
// routing table consisting of an unbounded number of Map ADTs — an
// outer Map from group name to a per-group member Map, created
// dynamically on registration.
//
// The atomic sections contain I/O: routing a message writes to member
// connections inside the section. The paper treats these I/O operations
// as thread-local, which is only possible because semantic locking
// never rolls back (irrevocable operations, §6.2). The network is
// replaced by an in-process transport (DESIGN.md substitution 5): a
// Conn counts delivered frames and burns a small calibrated cost per
// send, standing in for the socket write.
package gossip

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/adt"
	"repro/internal/adtspecs"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/modules/plan"
)

// Conn is an in-process client connection: the I/O sink of the router.
type Conn struct {
	Member   string
	Frames   atomic.Int64
	Bytes    atomic.Int64
	sendCost int
}

// NewConn creates a connection whose Send burns sendCost units of
// synthetic work per frame (the stand-in for a socket write).
func NewConn(member string, sendCost int) *Conn {
	return &Conn{Member: member, sendCost: sendCost}
}

// Send delivers one frame.
func (c *Conn) Send(payload []byte) {
	// Synthetic serialization cost.
	s := 0
	for i := 0; i < c.sendCost; i++ {
		s += i
	}
	if s == -1 {
		panic("unreachable")
	}
	c.Frames.Add(1)
	c.Bytes.Add(int64(len(payload)))
}

// Router handles the four message kinds under one synchronization
// policy.
type Router interface {
	Register(group, member string, conn *Conn)
	Unregister(group, member string)
	Unicast(group, dst string, payload []byte)
	Multicast(group string, payload []byte)
}

// Sections returns the router's atomic sections in IR.
func Sections() []*ir.Atomic {
	vars := func() []ir.Param {
		return []ir.Param{
			{Name: "groups", Type: "Map", IsADT: true, NonNull: true},
			{Name: "members", Type: "Map", IsADT: true},
			{Name: "g", Type: "string"},
			{Name: "m", Type: "string"},
			{Name: "dst", Type: "string"},
			{Name: "conn", Type: "Conn"},
			{Name: "c", Type: "Conn"},
			{Name: "cs", Type: "list"},
		}
	}
	return []*ir.Atomic{
		{
			Name: "register",
			Vars: vars(),
			Body: ir.Block{
				&ir.Call{Recv: "groups", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "g"}}, Assign: "members"},
				&ir.If{
					Cond: ir.IsNull{Var: "members"},
					Then: ir.Block{
						&ir.Assign{Lhs: "members", NewType: "Map"},
						&ir.Call{Recv: "groups", Method: "put", Args: []ir.Expr{ir.VarRef{Name: "g"}, ir.VarRef{Name: "members"}}},
					},
				},
				&ir.Call{Recv: "members", Method: "put", Args: []ir.Expr{ir.VarRef{Name: "m"}, ir.VarRef{Name: "conn"}}},
			},
		},
		{
			Name: "unregister",
			Vars: vars(),
			Body: ir.Block{
				&ir.Call{Recv: "groups", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "g"}}, Assign: "members"},
				&ir.If{
					Cond: ir.NotNull{Var: "members"},
					Then: ir.Block{
						&ir.Call{Recv: "members", Method: "remove", Args: []ir.Expr{ir.VarRef{Name: "m"}}},
					},
				},
			},
		},
		{
			Name: "unicast",
			Vars: vars(),
			Body: ir.Block{
				&ir.Call{Recv: "groups", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "g"}}, Assign: "members"},
				&ir.If{
					Cond: ir.NotNull{Var: "members"},
					Then: ir.Block{
						&ir.Call{Recv: "members", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "dst"}}, Assign: "c"},
						&ir.If{
							Cond: ir.NotNull{Var: "c"},
							Then: ir.Block{
								// I/O: thread-local, not an ADT op.
								&ir.Assign{Lhs: "c", Rhs: ir.Opaque{Text: "send(c, payload)", Reads: []string{"c"}}},
							},
						},
					},
				},
			},
		},
		{
			Name: "multicast",
			Vars: vars(),
			Body: ir.Block{
				&ir.Call{Recv: "groups", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "g"}}, Assign: "members"},
				&ir.If{
					Cond: ir.NotNull{Var: "members"},
					Then: ir.Block{
						&ir.Call{Recv: "members", Method: "values", Assign: "cs"},
						// I/O loop over cs: thread-local.
						&ir.Assign{Lhs: "cs", Rhs: ir.Opaque{Text: "sendAll(cs, payload)", Reads: []string{"cs"}}},
					},
				},
			},
		},
	}
}

// ClassOf splits the outer group map and the (unboundedly many) inner
// member maps into two classes — the member maps are one class, as the
// points-to abstraction allocates them at a single site.
func ClassOf(sec *ir.Atomic, v string) string {
	switch v {
	case "groups":
		return "Map$groups"
	case "members":
		return "Map$members"
	}
	return sec.ADTType(v)
}

var planCache = plan.NewCache(func(opt plan.Options) *plan.Plan {
	return plan.MustBuild(Sections(), adtspecs.All(), ClassOf, opt)
})

// BuildPlan synthesizes the router; plans are memoized per Options.
// register's {put(m,conn)} instantiates n² modes, so the default
// MaxModes cap coarsens φ — members are still spread over 32 buckets.
func BuildPlan(opt plan.Options) *plan.Plan { return planCache.Get(opt) }

// New creates the named variant: "ours", "global", "2pl" or "manual".
// sendCost is the per-frame synthetic I/O cost.
func New(policy string, sendCost int, opt plan.Options) Router {
	switch policy {
	case "ours":
		return NewOurs(sendCost, opt)
	case "ours-fused":
		return NewOursFused(sendCost, opt)
	case "global":
		return &global{groups: adt.NewHashMap()}
	case "2pl":
		return &twoPL{groups: adt.NewHashMap(), groupsL: cc.NewInstanceLock(0)}
	case "manual":
		return &manual{groups: adt.NewHashMap()}
	default:
		panic(fmt.Sprintf("gossip: unknown policy %q", policy))
	}
}

// Policies lists the variants in the order Fig 25 plots them.
func Policies() []string { return []string{"ours", "global", "2pl", "manual"} }

// Ours executes the synthesized plan. Each inner member map carries its
// own Semantic instance (the class has unboundedly many instances).
// Sections run under core.Atomically on pooled transactions, so a panic
// anywhere inside a section — including one injected through FaultHook —
// releases every held lock before unwinding.
type Ours struct {
	groups     *adt.HashMap
	groupsSem  *core.Semantic
	memTable   *core.ModeTable
	groupsRank int
	memRank    int

	// FaultHook, when non-nil, is called once per section at its fault
	// point — after every lock of the section is held, before the last
	// ADT mutation — with the section name ("register", "unregister",
	// "unicast", "multicast"). The chaos harness injects panics and
	// delays here. A panic thrown by the hook escapes the section as a
	// *core.SectionPanic with all locks released.
	FaultHook func(site string)

	regGroups func(...core.Value) core.ModeID // register: groups {get(g),put(g,*)}
	regMem    func(...core.Value) core.ModeID // register: members {put(m,conn)}
	unregG    func(...core.Value) core.ModeID // unregister: groups {get(g)}
	unregMem  func(...core.Value) core.ModeID // unregister: members {remove(m)}
	uniG      func(...core.Value) core.ModeID // unicast: groups {get(g)}
	uniMem    func(...core.Value) core.ModeID // unicast: members {get(dst)}
	mcG       func(...core.Value) core.ModeID // multicast: groups {get(g)}
	mcMem     func(...core.Value) core.ModeID // multicast: members {values()}

	// fused selects the fused-prologue hot path (-exp hotpath): mode
	// selection goes through the fixed-arity interned selectors and the
	// transaction memo (Txn.CachedMode1) instead of the variadic Binder
	// closures, so repeated acquisitions on the same group/member values
	// neither allocate nor re-hash through φ. The two locks themselves
	// stay sequential — the member map is only known after the get on
	// the outer map, under the outer lock — so the fused win here is the
	// mode-construction half of the prologue.
	fused        bool
	regGroupsRef core.SetRef
	regMem2      func(core.Value, core.Value) core.ModeID
	unregGRef    core.SetRef
	unregMemRef  core.SetRef
	uniGRef      core.SetRef
	uniMemRef    core.SetRef
	mcGRef       core.SetRef
	mcMemMode    core.ModeID
}

// memberMap is one inner ADT instance: a map plus its semantic lock.
type memberMap struct {
	m   *adt.HashMap
	sem *core.Semantic
}

// NewOurs creates the semantic-locking router with access to the
// concrete type (fault hook, lock introspection); New("ours", ...)
// returns the same thing as a Router.
func NewOurs(sendCost int, opt plan.Options) *Ours {
	_ = sendCost
	p := BuildPlan(opt)
	o := &Ours{groups: adt.NewHashMap()}
	o.groupsSem = core.NewSemantic(p.Table("Map$groups"))
	o.memTable = p.Table("Map$members")
	o.groupsRank = p.Rank("Map$groups")
	o.memRank = p.Rank("Map$members")
	o.regGroups = p.Ref(0, "groups").Binder("g")
	o.regMem = p.Ref(0, "members").Binder("m", "conn")
	o.unregG = p.Ref(1, "groups").Binder("g")
	o.unregMem = p.Ref(1, "members").Binder("m")
	o.uniG = p.Ref(2, "groups").Binder("g")
	o.uniMem = p.Ref(2, "members").Binder("dst")
	o.mcG = p.Ref(3, "groups").Binder("g")
	o.mcMem = p.Ref(3, "members").Binder()
	o.regGroupsRef = p.Ref(0, "groups")
	o.regMem2 = p.Ref(0, "members").Binder2("m", "conn")
	o.unregGRef = p.Ref(1, "groups")
	o.unregMemRef = p.Ref(1, "members")
	o.uniGRef = p.Ref(2, "groups")
	o.uniMemRef = p.Ref(2, "members")
	o.mcGRef = p.Ref(3, "groups")
	o.mcMemMode = p.Ref(3, "members").Mode()
	return o
}

// NewOursFused is NewOurs with the fused-prologue hot path enabled; see
// the fused field. New("ours-fused", ...) returns the same thing as a
// Router.
func NewOursFused(sendCost int, opt plan.Options) *Ours {
	o := NewOurs(sendCost, opt)
	o.fused = true
	return o
}

func (o *Ours) fault(site string) {
	if o.FaultHook != nil {
		o.FaultHook(site)
	}
}

// Sems returns the semantic locks of every live instance: the outer
// groups lock first, then one per member map. Quiescence introspection
// only — the walk over the group table is unsynchronized, so call it
// when no sections are in flight.
func (o *Ours) Sems() []*core.Semantic {
	out := []*core.Semantic{o.groupsSem}
	//semlockvet:ignore guardedby -- quiescence introspection: documented to run only when no sections are in flight
	for _, v := range o.groups.Values() {
		out = append(out, v.(*memberMap).sem)
	}
	return out
}

func (o *Ours) Register(group, member string, conn *Conn) {
	if o.fused {
		o.registerFused(group, member, conn)
		return
	}
	mg := o.regGroups(group)
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(o.groupsSem, mg, o.groupsRank)
		var mm *memberMap
		if v := o.groups.Get(group); v != nil {
			mm = v.(*memberMap)
		} else {
			mm = &memberMap{m: adt.NewHashMap(), sem: core.NewSemantic(o.memTable)}
			o.groups.Put(group, mm)
		}
		tx.Lock(mm.sem, o.regMem(member, conn), o.memRank)
		o.fault("register")
		mm.m.Put(member, conn)
	})
}

func (o *Ours) registerFused(group, member string, conn *Conn) {
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(o.groupsSem, tx.CachedMode1(o.regGroupsRef, group), o.groupsRank)
		var mm *memberMap
		if v := o.groups.Get(group); v != nil {
			mm = v.(*memberMap)
		} else {
			mm = &memberMap{m: adt.NewHashMap(), sem: core.NewSemantic(o.memTable)}
			o.groups.Put(group, mm)
		}
		tx.Lock(mm.sem, o.regMem2(member, conn), o.memRank)
		o.fault("register")
		mm.m.Put(member, conn)
	})
}

func (o *Ours) Unregister(group, member string) {
	if o.fused {
		o.unregisterFused(group, member)
		return
	}
	mg := o.unregG(group)
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(o.groupsSem, mg, o.groupsRank)
		if v := o.groups.Get(group); v != nil {
			mm := v.(*memberMap)
			tx.Lock(mm.sem, o.unregMem(member), o.memRank)
			o.fault("unregister")
			mm.m.Remove(member)
		}
	})
}

func (o *Ours) unregisterFused(group, member string) {
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(o.groupsSem, tx.CachedMode1(o.unregGRef, group), o.groupsRank)
		if v := o.groups.Get(group); v != nil {
			mm := v.(*memberMap)
			tx.Lock(mm.sem, tx.CachedMode1(o.unregMemRef, member), o.memRank)
			o.fault("unregister")
			mm.m.Remove(member)
		}
	})
}

func (o *Ours) Unicast(group, dst string, payload []byte) {
	if o.fused {
		o.unicastFused(group, dst, payload)
		return
	}
	mg := o.uniG(group)
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(o.groupsSem, mg, o.groupsRank)
		if v := o.groups.Get(group); v != nil {
			mm := v.(*memberMap)
			tx.Lock(mm.sem, o.uniMem(dst), o.memRank)
			o.fault("unicast")
			if c := mm.m.Get(dst); c != nil {
				c.(*Conn).Send(payload) // I/O inside the section
			}
		}
	})
}

func (o *Ours) unicastFused(group, dst string, payload []byte) {
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(o.groupsSem, tx.CachedMode1(o.uniGRef, group), o.groupsRank)
		if v := o.groups.Get(group); v != nil {
			mm := v.(*memberMap)
			tx.Lock(mm.sem, tx.CachedMode1(o.uniMemRef, dst), o.memRank)
			o.fault("unicast")
			if c := mm.m.Get(dst); c != nil {
				c.(*Conn).Send(payload) // I/O inside the section
			}
		}
	})
}

func (o *Ours) Multicast(group string, payload []byte) {
	if o.fused {
		o.multicastFused(group, payload)
		return
	}
	mg := o.mcG(group)
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(o.groupsSem, mg, o.groupsRank)
		if v := o.groups.Get(group); v != nil {
			mm := v.(*memberMap)
			tx.Lock(mm.sem, o.mcMem(), o.memRank)
			o.fault("multicast")
			for _, c := range mm.m.Values() {
				c.(*Conn).Send(payload) // I/O inside the section
			}
		}
	})
}

func (o *Ours) multicastFused(group string, payload []byte) {
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(o.groupsSem, tx.CachedMode1(o.mcGRef, group), o.groupsRank)
		if v := o.groups.Get(group); v != nil {
			mm := v.(*memberMap)
			tx.Lock(mm.sem, o.mcMemMode, o.memRank)
			o.fault("multicast")
			for _, c := range mm.m.Values() {
				c.(*Conn).Send(payload) // I/O inside the section
			}
		}
	})
}

// Lookup reports whether member is currently registered in group — the
// router's read-only membership probe. It is the hybrid-execution fast
// path: both ADT operations are observers (get on the outer map, get on
// the member map), so the section first runs lock-free under
// TryOptimistic, observing the two mechanisms it would have locked and
// validating their version counters at the end, and only re-runs under
// the pessimistic prologue (LookupPessimistic's body) when validation
// fails or the per-instance adaptive gate has closed the optimistic
// path. The observed modes are exactly the modes the pessimistic path
// locks — unicast's {get(g)} / {get(dst)} — so the conflict predicate
// is the one the plan's certificate already covers. The individual ADT
// reads are safe without the semantic locks because every adt structure
// is linearizable on its own (internal mutex); what validation adds is
// that the two reads happened inside one conflict-free window.
func (o *Ours) Lookup(group, member string) bool {
	var found bool
	core.Atomically(func(tx *core.Txn) {
		if tx.TryOptimistic(func(tx *core.Txn) bool {
			if !tx.Observe(o.groupsSem, tx.CachedMode1(o.uniGRef, group), o.groupsRank) {
				return false
			}
			found = false
			if v := o.groups.Get(group); v != nil {
				mm := v.(*memberMap)
				if !tx.Observe(mm.sem, tx.CachedMode1(o.uniMemRef, member), o.memRank) {
					return false
				}
				found = mm.m.Get(member) != nil
			}
			return true
		}) {
			return
		}
		found = o.lookupLocked(tx, group, member)
	})
	return found
}

// LookupPessimistic is the same query under the ordinary pessimistic
// prologue — the baseline the optimistic experiment compares against,
// and the body Lookup falls back to.
func (o *Ours) LookupPessimistic(group, member string) bool {
	var found bool
	core.Atomically(func(tx *core.Txn) {
		found = o.lookupLocked(tx, group, member)
	})
	return found
}

func (o *Ours) lookupLocked(tx *core.Txn, group, member string) bool {
	tx.Lock(o.groupsSem, tx.CachedMode1(o.uniGRef, group), o.groupsRank)
	if v := o.groups.Get(group); v != nil {
		mm := v.(*memberMap)
		tx.Lock(mm.sem, tx.CachedMode1(o.uniMemRef, member), o.memRank)
		return mm.m.Get(member) != nil
	}
	return false
}

// global serializes every section.
type global struct {
	mu     cc.GlobalLock
	groups *adt.HashMap
}

func (g *global) inner(group string, create bool) *adt.HashMap {
	if v := g.groups.Get(group); v != nil {
		return v.(*adt.HashMap)
	}
	if !create {
		return nil
	}
	m := adt.NewHashMap()
	g.groups.Put(group, m)
	return m
}

func (g *global) Register(group, member string, conn *Conn) {
	g.mu.Enter()
	defer g.mu.Exit()
	g.inner(group, true).Put(member, conn)
}

func (g *global) Unregister(group, member string) {
	g.mu.Enter()
	defer g.mu.Exit()
	if m := g.inner(group, false); m != nil {
		m.Remove(member)
	}
}

func (g *global) Unicast(group, dst string, payload []byte) {
	g.mu.Enter()
	defer g.mu.Exit()
	if m := g.inner(group, false); m != nil {
		if c := m.Get(dst); c != nil {
			c.(*Conn).Send(payload)
		}
	}
}

func (g *global) Multicast(group string, payload []byte) {
	g.mu.Enter()
	defer g.mu.Exit()
	if m := g.inner(group, false); m != nil {
		for _, c := range m.Values() {
			c.(*Conn).Send(payload)
		}
	}
}

// twoPL locks the outer instance, then the touched inner instance.
type twoPL struct {
	groups  *adt.HashMap
	groupsL *cc.InstanceLock
}

type lockedInner struct {
	m *adt.HashMap
	l *cc.InstanceLock
}

func (t *twoPL) inner(group string, create bool) *lockedInner {
	if v := t.groups.Get(group); v != nil {
		return v.(*lockedInner)
	}
	if !create {
		return nil
	}
	li := &lockedInner{m: adt.NewHashMap(), l: cc.NewInstanceLock(1)}
	t.groups.Put(group, li)
	return li
}

func (t *twoPL) Register(group, member string, conn *Conn) {
	var tx cc.TwoPL
	tx.Lock(t.groupsL)
	defer tx.UnlockAll()
	li := t.inner(group, true)
	tx.Lock(li.l)
	li.m.Put(member, conn)
}

func (t *twoPL) Unregister(group, member string) {
	var tx cc.TwoPL
	tx.Lock(t.groupsL)
	defer tx.UnlockAll()
	if li := t.inner(group, false); li != nil {
		tx.Lock(li.l)
		li.m.Remove(member)
	}
}

func (t *twoPL) Unicast(group, dst string, payload []byte) {
	var tx cc.TwoPL
	tx.Lock(t.groupsL)
	defer tx.UnlockAll()
	if li := t.inner(group, false); li != nil {
		tx.Lock(li.l)
		if c := li.m.Get(dst); c != nil {
			c.(*Conn).Send(payload)
		}
	}
}

func (t *twoPL) Multicast(group string, payload []byte) {
	var tx cc.TwoPL
	tx.Lock(t.groupsL)
	defer tx.UnlockAll()
	if li := t.inner(group, false); li != nil {
		tx.Lock(li.l)
		for _, c := range li.m.Values() {
			c.(*Conn).Send(payload)
		}
	}
}

// manual is the hand-optimized variant (in the spirit of optimizing the
// output of [9]): an RWMutex on the outer table and one RWMutex per
// group; routes take read locks (sends to different members proceed in
// parallel), membership changes take the group's write lock.
type manual struct {
	outer  sync.RWMutex
	groups *adt.HashMap
}

type rwInner struct {
	mu sync.RWMutex
	m  *adt.HashMap
}

func (m *manual) inner(group string, create bool) *rwInner {
	m.outer.RLock()
	v := m.groups.Get(group)
	m.outer.RUnlock()
	if v != nil {
		return v.(*rwInner)
	}
	if !create {
		return nil
	}
	m.outer.Lock()
	defer m.outer.Unlock()
	if v := m.groups.Get(group); v != nil {
		return v.(*rwInner)
	}
	ri := &rwInner{m: adt.NewHashMap()}
	m.groups.Put(group, ri)
	return ri
}

func (m *manual) Register(group, member string, conn *Conn) {
	ri := m.inner(group, true)
	ri.mu.Lock()
	ri.m.Put(member, conn)
	ri.mu.Unlock()
}

func (m *manual) Unregister(group, member string) {
	if ri := m.inner(group, false); ri != nil {
		ri.mu.Lock()
		ri.m.Remove(member)
		ri.mu.Unlock()
	}
}

func (m *manual) Unicast(group, dst string, payload []byte) {
	if ri := m.inner(group, false); ri != nil {
		ri.mu.RLock()
		if c := ri.m.Get(dst); c != nil {
			c.(*Conn).Send(payload)
		}
		ri.mu.RUnlock()
	}
}

func (m *manual) Multicast(group string, payload []byte) {
	if ri := m.inner(group, false); ri != nil {
		ri.mu.RLock()
		for _, c := range ri.m.Values() {
			c.(*Conn).Send(payload)
		}
		ri.mu.RUnlock()
	}
}
