package gossip

import (
	"testing"

	"repro/internal/modules/plan"
)

// TestPlanGolden pins the router's four synthesized sections. Two
// details worth reading in the output: register releases the outer
// groups map as soon as the member map's lock is held (early lock
// release, Appendix A), and the multicast's member-map lock is the
// values() read mode held across the sends — the irrevocable-I/O
// pattern §6.2 highlights.
func TestPlanGolden(t *testing.T) {
	p := BuildPlan(plan.Options{})
	wants := []string{`atomic register {
  groups.lock({get(g),put(g,*)});
  members=groups.get(g);
  if(members==null) {
    members=new Map();
    groups.put(g, members);
  }
  members.lock({put(m,conn)});
  groups.unlockAll();
  members.put(m, conn);
  members.unlockAll();
}
`, `atomic unregister {
  groups.lock({get(g)});
  members=groups.get(g);
  if(members!=null) {
    members.lock({remove(m)});
    members.remove(m);
  }
  groups.unlockAll();
  if(members!=null) members.unlockAll();
}
`, `atomic unicast {
  groups.lock({get(g)});
  members=groups.get(g);
  if(members!=null) {
    members.lock({get(dst)});
    c=members.get(dst);
    if(c!=null) {
      c=send(c, payload);
    }
  }
  groups.unlockAll();
  if(members!=null) members.unlockAll();
}
`, `atomic multicast {
  groups.lock({get(g)});
  members=groups.get(g);
  if(members!=null) {
    members.lock({values()});
    cs=members.values();
    cs=sendAll(cs, payload);
  }
  groups.unlockAll();
  if(members!=null) members.unlockAll();
}
`}
	for i, want := range wants {
		if got := p.Print(i); got != want {
			t.Errorf("section %d plan:\n%s\nwant:\n%s", i, got, want)
		}
	}
}
