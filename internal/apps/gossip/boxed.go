// Boxed-key entry points for the networked wire path.
//
// Converting a Go string to the runtime's Value (an interface) heap-
// allocates a string header at every call site, which is where all four
// steady-state allocations of the string-keyed router methods come
// from. The TCP server interns each group/member name it decodes into a
// pre-boxed core.Value once per connection, so the V variants below —
// the same fused sections, taking already-boxed keys — run the whole
// decode→route→respond path without allocating.
//
// The V variants are the fused-prologue forms (interned mode selectors,
// transaction memo); semantically they are identical to the string
// methods, and TestBoxedEquivalence pins that.

package gossip

import (
	"repro/internal/adt"
	"repro/internal/core"
)

// RegisterV is Register with pre-boxed keys.
func (o *Ours) RegisterV(group, member core.Value, conn *Conn) {
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(o.groupsSem, tx.CachedMode1(o.regGroupsRef, group), o.groupsRank)
		var mm *memberMap
		if v := o.groups.Get(group); v != nil {
			mm = v.(*memberMap)
		} else {
			mm = &memberMap{m: adt.NewHashMap(), sem: core.NewSemantic(o.memTable)}
			o.groups.Put(group, mm)
		}
		tx.Lock(mm.sem, o.regMem2(member, conn), o.memRank)
		o.fault("register")
		mm.m.Put(member, conn)
	})
}

// UnregisterV is Unregister with pre-boxed keys.
func (o *Ours) UnregisterV(group, member core.Value) {
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(o.groupsSem, tx.CachedMode1(o.unregGRef, group), o.groupsRank)
		if v := o.groups.Get(group); v != nil {
			mm := v.(*memberMap)
			tx.Lock(mm.sem, tx.CachedMode1(o.unregMemRef, member), o.memRank)
			o.fault("unregister")
			mm.m.Remove(member)
		}
	})
}

// UnicastV is Unicast with pre-boxed keys.
func (o *Ours) UnicastV(group, dst core.Value, payload []byte) {
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(o.groupsSem, tx.CachedMode1(o.uniGRef, group), o.groupsRank)
		if v := o.groups.Get(group); v != nil {
			mm := v.(*memberMap)
			tx.Lock(mm.sem, tx.CachedMode1(o.uniMemRef, dst), o.memRank)
			o.fault("unicast")
			if c := mm.m.Get(dst); c != nil {
				c.(*Conn).Send(payload) // I/O inside the section
			}
		}
	})
}

// MulticastV is Multicast with a pre-boxed key.
func (o *Ours) MulticastV(group core.Value, payload []byte) {
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(o.groupsSem, tx.CachedMode1(o.mcGRef, group), o.groupsRank)
		if v := o.groups.Get(group); v != nil {
			mm := v.(*memberMap)
			tx.Lock(mm.sem, o.mcMemMode, o.memRank)
			o.fault("multicast")
			for _, c := range mm.m.Values() {
				c.(*Conn).Send(payload) // I/O inside the section
			}
		}
	})
}

// LookupV is Lookup with pre-boxed keys: optimistic first, pessimistic
// fallback, same as the string form.
func (o *Ours) LookupV(group, member core.Value) bool {
	var found bool
	core.Atomically(func(tx *core.Txn) {
		if tx.TryOptimistic(func(tx *core.Txn) bool {
			if !tx.Observe(o.groupsSem, tx.CachedMode1(o.uniGRef, group), o.groupsRank) {
				return false
			}
			found = false
			if v := o.groups.Get(group); v != nil {
				mm := v.(*memberMap)
				if !tx.Observe(mm.sem, tx.CachedMode1(o.uniMemRef, member), o.memRank) {
					return false
				}
				found = mm.m.Get(member) != nil
			}
			return true
		}) {
			return
		}
		found = o.lookupLockedV(tx, group, member)
	})
	return found
}

func (o *Ours) lookupLockedV(tx *core.Txn, group, member core.Value) bool {
	tx.Lock(o.groupsSem, tx.CachedMode1(o.uniGRef, group), o.groupsRank)
	if v := o.groups.Get(group); v != nil {
		mm := v.(*memberMap)
		tx.Lock(mm.sem, tx.CachedMode1(o.uniMemRef, member), o.memRank)
		return mm.m.Get(member) != nil
	}
	return false
}

// SendReq is one unicast inside a batched prologue: a run of adjacent
// unicast frames pipelined on one server connection.
type SendReq struct {
	Group, Dst core.Value
	Payload    []byte
}

// BatchScratch holds the reusable slices of UnicastBatchV so a steady
// connection batches without allocating. The zero value is ready; one
// scratch belongs to one connection goroutine at a time.
type BatchScratch struct {
	outer []core.BatchLock
	inner []core.BatchLock
	mms   []*memberMap
}

// UnicastBatchV routes a run of unicasts as ONE atomic section whose
// prologue is fused: every outer-map mode is acquired in a single
// LockBatch (one AcquireBatch pass over the groups mechanism, one
// union-mask waiter on conflict), then — the member maps now resolvable
// under the outer locks — every inner-map mode in a second LockBatch,
// then the sends. This is the PR 4 fused-prologue path fed by the
// network: adjacent requests on a connection take the place of adjacent
// lock statements in a synthesized section.
//
// Coarsening k sections into one is always serializable (the batch is a
// legal single transaction over the union of the footprints; unicast
// modes are observers of both maps plus thread-local I/O, so batching
// cannot even widen a conflict), and the two LockBatch calls ascend the
// certificate's rank order — groups before members — exactly like the
// sequential prologues they replace.
func (o *Ours) UnicastBatchV(reqs []SendReq, sc *BatchScratch) {
	if len(reqs) == 1 {
		o.UnicastV(reqs[0].Group, reqs[0].Dst, reqs[0].Payload)
		return
	}
	core.Atomically(func(tx *core.Txn) {
		o.unicastBatchLocked(tx, reqs, sc)
	})
}

// unicastBatchLocked is the batch body, shared with the policied form.
func (o *Ours) unicastBatchLocked(tx *core.Txn, reqs []SendReq, sc *BatchScratch) {
	sc.outer = sc.outer[:0]
	for i := range reqs {
		sc.outer = append(sc.outer, core.BatchLock{
			Sem: o.groupsSem, Mode: o.uniGRef.Mode1(reqs[i].Group), Rank: o.groupsRank,
		})
	}
	tx.LockBatch(sc.outer...)
	sc.inner = sc.inner[:0]
	sc.mms = sc.mms[:0]
	for i := range reqs {
		var mm *memberMap
		if v := o.groups.Get(reqs[i].Group); v != nil {
			mm = v.(*memberMap)
		}
		sc.mms = append(sc.mms, mm)
		if mm != nil {
			sc.inner = append(sc.inner, core.BatchLock{
				Sem: mm.sem, Mode: o.uniMemRef.Mode1(reqs[i].Dst), Rank: o.memRank,
			})
		}
	}
	if len(sc.inner) > 0 {
		tx.LockBatch(sc.inner...)
	}
	for i := range reqs {
		if mm := sc.mms[i]; mm != nil {
			o.fault("unicast")
			if c := mm.m.Get(reqs[i].Dst); c != nil {
				c.(*Conn).Send(reqs[i].Payload) // I/O inside the section
			}
		}
	}
}
