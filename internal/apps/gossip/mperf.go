package gossip

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// MPerfConfig mirrors the JGroups MPerf tester used in §6.2: clients
// join one group and blast messages through the router.
type MPerfConfig struct {
	Clients  int // paper: 16
	Messages int // per client; paper: 5000
	// UnicastRatio is the fraction (percent) of messages sent unicast
	// to a random peer instead of multicast to the group.
	UnicastRatio int
	// SendCost is the synthetic per-frame I/O cost.
	SendCost int
	// Workers is the router's worker-pool size; the paper varies active
	// cores because the router manages its threads autonomously — the
	// worker count is this reproduction's equivalent knob.
	Workers int
}

// PaperMPerf is the Fig 25 configuration.
func PaperMPerf(workers int) MPerfConfig {
	return MPerfConfig{Clients: 16, Messages: 5000, UnicastRatio: 10, SendCost: 60, Workers: workers}
}

// message is one queued client request.
type message struct {
	unicast bool
	src     int
	dst     int
	payload []byte
}

// MPerfResult reports the run's delivery counts.
type MPerfResult struct {
	FramesDelivered int64
	Handled         int
}

// RunMPerf registers the clients, generates every client's message
// stream, and routes all messages through the given router with the
// configured worker pool. It returns delivery statistics; callers time
// it for throughput. The message mix is deterministic in the
// configuration.
func RunMPerf(r Router, cfg MPerfConfig) MPerfResult {
	return RunMPerfUntil(r, cfg, nil)
}

// RunMPerfUntil is RunMPerf with a shutdown channel: when stop closes,
// the workers stop picking up new messages and the run drains — routes
// already inside an atomic section always complete, so no lock is ever
// abandoned mid-acquisition. Handled counts only the messages actually
// routed. A nil stop never fires (plain RunMPerf).
func RunMPerfUntil(r Router, cfg MPerfConfig, stop <-chan struct{}) MPerfResult {
	const group = "mperf"
	conns := make([]*Conn, cfg.Clients)
	for i := range conns {
		conns[i] = NewConn(fmt.Sprintf("m%d", i), cfg.SendCost)
		r.Register(group, conns[i].Member, conns[i])
	}

	msgs := make([]message, 0, cfg.Clients*cfg.Messages)
	payload := []byte("0123456789abcdef0123456789abcdef")
	for c := 0; c < cfg.Clients; c++ {
		for i := 0; i < cfg.Messages; i++ {
			m := message{src: c, payload: payload}
			if (c*31+i*7)%100 < cfg.UnicastRatio {
				m.unicast = true
				m.dst = (c + i) % cfg.Clients
			}
			msgs = append(msgs, m)
		}
	}

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	var handled atomic.Int64
	var wg sync.WaitGroup
	chunk := (len(msgs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(msgs) {
			hi = len(msgs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(ms []message) {
			defer wg.Done()
			for _, m := range ms {
				if stop != nil {
					select {
					case <-stop:
						return // intake closed; the batch so far has drained
					default:
					}
				}
				if m.unicast {
					r.Unicast(group, fmt.Sprintf("m%d", m.dst), m.payload)
				} else {
					r.Multicast(group, m.payload)
				}
				handled.Add(1)
			}
		}(msgs[lo:hi])
	}
	wg.Wait()

	res := MPerfResult{Handled: int(handled.Load())}
	for _, c := range conns {
		res.FramesDelivered += c.Frames.Load()
	}
	return res
}

// ExpectedFrames computes the deterministic ground-truth delivery count
// for a configuration: each multicast delivers Clients frames, each
// unicast one.
func ExpectedFrames(cfg MPerfConfig) int64 {
	var frames int64
	for c := 0; c < cfg.Clients; c++ {
		for i := 0; i < cfg.Messages; i++ {
			if (c*31+i*7)%100 < cfg.UnicastRatio {
				frames++
			} else {
				frames += int64(cfg.Clients)
			}
		}
	}
	return frames
}
