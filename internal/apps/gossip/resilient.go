// Resilient is the gossip router under the resilience layer: every
// section runs through a resilience.Policy — admission-gated, breaker-
// checked, bounded-patience acquisitions with budgeted retries — and the
// read-only membership probe gets a hedged variant that races the
// pessimistic acquisition against the optimistic envelope when the
// pessimistic side exceeds its latency budget.
//
// The sections keep the irrevocability discipline of Ours: every ADT
// mutation and every I/O happens only after the last acquisition of the
// section, so a bounded acquisition that stalls aborts the attempt with
// at most one benign partial effect — register's creation of an empty
// member map under the outer lock, which a retry (or any later
// register) completes idempotently.

package gossip

import (
	"sync/atomic"

	"repro/internal/adt"
	"repro/internal/core"
	"repro/internal/resilience"
)

// Resilient wraps an Ours router with a resilience policy. The embedded
// router's blocking methods remain available; the overridden Router
// methods run policy-guarded and drop the operation (counted) when the
// policy gives up — the router analogue of a network server shedding a
// request instead of wedging a handler goroutine on it.
type Resilient struct {
	*Ours
	policy *resilience.Policy

	// Dropped counts operations abandoned after the policy gave up:
	// shed by the gate, refused by the breaker, or stalled past the
	// retry budget.
	Dropped atomic.Uint64
}

// NewResilient wraps o with policy p.
func NewResilient(o *Ours, p *resilience.Policy) *Resilient {
	return &Resilient{Ours: o, policy: p}
}

// Policy returns the wrapped policy (telemetry registration, tests).
func (r *Resilient) Policy() *resilience.Policy { return r.policy }

func (r *Resilient) drop(err error) {
	if err != nil {
		r.Dropped.Add(1)
	}
}

// Register routes through RegisterErr, dropping the operation if the
// policy gives up.
func (r *Resilient) Register(group, member string, conn *Conn) {
	r.drop(r.RegisterErr(group, member, conn))
}

// Unregister routes through UnregisterErr.
func (r *Resilient) Unregister(group, member string) {
	r.drop(r.UnregisterErr(group, member))
}

// Unicast routes through UnicastErr.
func (r *Resilient) Unicast(group, dst string, payload []byte) {
	r.drop(r.UnicastErr(group, dst, payload))
}

// Multicast routes through MulticastErr.
func (r *Resilient) Multicast(group string, payload []byte) {
	r.drop(r.MulticastErr(group, payload))
}

// RegisterErr is the register section under the policy: gate admission,
// breaker check, bounded acquisitions, budgeted retries. The error is
// nil on success, ErrShed/ErrBreakerOpen when refused up front, or the
// final attempt's StallError (wrapped in ErrBudgetExhausted when the
// retry budget bound) when every attempt stalled.
func (r *Resilient) RegisterErr(group, member string, conn *Conn) error {
	return r.policy.Run(func(tx *core.Txn) error {
		if err := r.policy.Acquire(tx, r.groupsSem, tx.CachedMode1(r.regGroupsRef, group), r.groupsRank); err != nil {
			return err
		}
		var mm *memberMap
		if v := r.groups.Get(group); v != nil {
			mm = v.(*memberMap)
		} else {
			mm = &memberMap{m: adt.NewHashMap(), sem: core.NewSemantic(r.memTable)}
			r.groups.Put(group, mm)
		}
		if err := r.policy.Acquire(tx, mm.sem, r.regMem2(member, conn), r.memRank); err != nil {
			return err
		}
		r.fault("register")
		mm.m.Put(member, conn)
		return nil
	})
}

// UnregisterErr is the unregister section under the policy.
func (r *Resilient) UnregisterErr(group, member string) error {
	return r.policy.Run(func(tx *core.Txn) error {
		if err := r.policy.Acquire(tx, r.groupsSem, tx.CachedMode1(r.unregGRef, group), r.groupsRank); err != nil {
			return err
		}
		if v := r.groups.Get(group); v != nil {
			mm := v.(*memberMap)
			if err := r.policy.Acquire(tx, mm.sem, tx.CachedMode1(r.unregMemRef, member), r.memRank); err != nil {
				return err
			}
			r.fault("unregister")
			mm.m.Remove(member)
		}
		return nil
	})
}

// UnicastErr is the unicast section under the policy. The I/O stays
// inside the section, after the last acquisition — an aborted attempt
// never half-sends.
func (r *Resilient) UnicastErr(group, dst string, payload []byte) error {
	return r.policy.Run(func(tx *core.Txn) error {
		if err := r.policy.Acquire(tx, r.groupsSem, tx.CachedMode1(r.uniGRef, group), r.groupsRank); err != nil {
			return err
		}
		if v := r.groups.Get(group); v != nil {
			mm := v.(*memberMap)
			if err := r.policy.Acquire(tx, mm.sem, tx.CachedMode1(r.uniMemRef, dst), r.memRank); err != nil {
				return err
			}
			r.fault("unicast")
			if c := mm.m.Get(dst); c != nil {
				c.(*Conn).Send(payload)
			}
		}
		return nil
	})
}

// MulticastErr is the multicast section under the policy.
func (r *Resilient) MulticastErr(group string, payload []byte) error {
	return r.policy.Run(func(tx *core.Txn) error {
		if err := r.policy.Acquire(tx, r.groupsSem, tx.CachedMode1(r.mcGRef, group), r.groupsRank); err != nil {
			return err
		}
		if v := r.groups.Get(group); v != nil {
			mm := v.(*memberMap)
			if err := r.policy.Acquire(tx, mm.sem, r.mcMemMode, r.memRank); err != nil {
				return err
			}
			r.fault("multicast")
			for _, c := range mm.m.Values() {
				c.(*Conn).Send(payload)
			}
		}
		return nil
	})
}

// LookupHedged is the membership probe as a hedged read: the
// pessimistic acquisition runs with the policy's patience and a cancel
// channel; if it exceeds the hedge budget, the optimistic envelope —
// observing exactly the modes the pessimistic side locks — races it,
// and the loser is cancelled (the pessimistic side withdraws its
// waiter cleanly, holding nothing). Both sides compute the same
// membership answer, so whichever commits is a correct serializable
// read.
func (r *Resilient) LookupHedged(group, member string) (bool, resilience.HedgeOutcome, error) {
	return resilience.HedgedRead(r.policy,
		func(tx *core.Txn, cancel <-chan struct{}) (bool, error) {
			if err := r.policy.AcquireCancel(tx, r.groupsSem, tx.CachedMode1(r.uniGRef, group), r.groupsRank, cancel); err != nil {
				return false, err
			}
			if v := r.groups.Get(group); v != nil {
				mm := v.(*memberMap)
				if err := r.policy.AcquireCancel(tx, mm.sem, tx.CachedMode1(r.uniMemRef, member), r.memRank, cancel); err != nil {
					return false, err
				}
				return mm.m.Get(member) != nil, nil
			}
			return false, nil
		},
		func(tx *core.Txn) (bool, bool) {
			if !tx.Observe(r.groupsSem, tx.CachedMode1(r.uniGRef, group), r.groupsRank) {
				return false, false
			}
			if v := r.groups.Get(group); v != nil {
				mm := v.(*memberMap)
				if !tx.Observe(mm.sem, tx.CachedMode1(r.uniMemRef, member), r.memRank) {
					return false, false
				}
				return mm.m.Get(member) != nil, true
			}
			return false, true
		})
}
