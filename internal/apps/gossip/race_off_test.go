//go:build !race

package gossip

const raceEnabled = false
