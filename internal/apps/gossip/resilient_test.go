package gossip

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/modules/plan"
	"repro/internal/resilience"
)

// TestResilientRouterShedsAndRecovers: with a fault injected into the
// register section (a sleep while both locks are held), policy-guarded
// operations against the same group must stall, burn their retry
// budget, and be dropped — not wedge forever — and once the fault
// clears, the same operations must succeed again.
func TestResilientRouterShedsAndRecovers(t *testing.T) {
	o := NewOurs(0, plan.Options{})
	p := resilience.New("gossip", resilience.Config{
		Patience: time.Millisecond,
		Retries:  2,
		Backoff:  resilience.Backoff{Base: 50 * time.Microsecond, Max: 200 * time.Microsecond},
		Budget:   &resilience.BudgetConfig{Capacity: 100, RefillPerSec: 1e4},
	})
	r := NewResilient(o, p)

	r.Register("g", "m1", NewConn("m1", 0))

	// Hold the register fault point — both the outer mode for "g" and
	// the member lock — for 40ms on a helper goroutine.
	release := make(chan struct{})
	held := make(chan struct{})
	o.FaultHook = func(site string) {
		if site == "register" {
			close(held)
			<-release
		}
	}
	var faultWG sync.WaitGroup
	faultWG.Add(1)
	go func() {
		defer faultWG.Done()
		o.Register("g", "m2", NewConn("m2", 0)) // blocking variant carries the fault
	}()
	<-held
	o.FaultHook = nil

	// Conflicting policy-guarded writes must be dropped, not wedge.
	if err := r.RegisterErr("g", "m3", NewConn("m3", 0)); err == nil {
		t.Fatal("RegisterErr succeeded against a held conflicting lock")
	} else if !resilience.Retryable(err) && !errors.Is(err, resilience.ErrBudgetExhausted) {
		t.Fatalf("RegisterErr error lost its type: %v", err)
	}
	r.Register("g", "m4", NewConn("m4", 0))
	if r.Dropped.Load() == 0 {
		t.Fatal("dropped counter untouched by a shed Register")
	}

	close(release)
	faultWG.Wait()

	// Fault cleared: everything flows again.
	if err := r.RegisterErr("g", "m3", NewConn("m3", 0)); err != nil {
		t.Fatalf("RegisterErr after recovery: %v", err)
	}
	if err := r.UnicastErr("g", "m1", []byte("x")); err != nil {
		t.Fatalf("UnicastErr after recovery: %v", err)
	}
	found, _, err := r.LookupHedged("g", "m3")
	if err != nil || !found {
		t.Fatalf("LookupHedged(g, m3) = (%v, %v), want (true, nil)", found, err)
	}
	found, _, err = r.LookupHedged("g", "nobody")
	if err != nil || found {
		t.Fatalf("LookupHedged(g, nobody) = (%v, %v), want (false, nil)", found, err)
	}
	for _, sem := range o.Sems() {
		if err := sem.CheckQuiesced(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestResilientRouterHammer races all four policy-guarded operations
// and hedged lookups across groups while a saboteur repeatedly parks on
// the register fault point of one hot group. Run under -race; the
// invariants are liveness (no wedged goroutine survives the hammer),
// no leaked waiters, and quiesced locks.
func TestResilientRouterHammer(t *testing.T) {
	o := NewOurs(0, plan.Options{})
	p := resilience.New("gossip", resilience.Config{
		Patience:    time.Millisecond,
		Retries:     5,
		Backoff:     resilience.Backoff{Base: 20 * time.Microsecond, Max: 200 * time.Microsecond},
		Budget:      &resilience.BudgetConfig{Capacity: 10000, RefillPerSec: 1e6},
		HedgeBudget: 100 * time.Microsecond,
	})
	r := NewResilient(o, p)
	groups := []string{"hot", "warm", "cold"}
	for _, g := range groups {
		r.Register(g, "seed", NewConn("seed", 0))
	}
	o.FaultHook = func(site string) {
		if site == "register" {
			time.Sleep(200 * time.Microsecond) // slow-hold saboteur window
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ops, lookups atomic.Int64
	wg.Add(1)
	go func() { // saboteur: slow registers on the hot group
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			o.Register("hot", "sab", NewConn("sab", 0))
		}
	}()
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				g := groups[i%len(groups)]
				switch i % 4 {
				case 0:
					r.Register(g, "m", NewConn("m", 0))
				case 1:
					r.Unicast(g, "seed", []byte("x"))
				case 2:
					r.Multicast(g, []byte("y"))
				case 3:
					if _, _, err := r.LookupHedged(g, "seed"); err == nil {
						lookups.Add(1)
					}
				}
				ops.Add(1)
			}
		}(w)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	o.FaultHook = nil

	if ops.Load() == 0 || lookups.Load() == 0 {
		t.Fatalf("hammer did no work: ops=%d lookups=%d", ops.Load(), lookups.Load())
	}
	t.Logf("ops=%d lookups=%d dropped=%d", ops.Load(), lookups.Load(), r.Dropped.Load())
	for _, sem := range o.Sems() {
		if err := sem.CheckQuiesced(); err != nil {
			t.Fatal(err)
		}
	}
	if n := core.WaitersOutstanding(); n != 0 {
		t.Fatalf("leaked %d waiter(s)", n)
	}
}
