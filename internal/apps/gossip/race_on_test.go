//go:build race

package gossip

// raceEnabled skips exact allocs/op assertions under the race detector,
// whose conservative escape analysis heap-allocates closures the normal
// build keeps on the stack.
const raceEnabled = true
