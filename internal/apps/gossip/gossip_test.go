package gossip

import (
	"sync"
	"testing"

	"repro/internal/modules/plan"
)

func testOpts() plan.Options { return plan.Options{AbstractValues: 8, MaxModes: 1024} }

// TestPlanShape asserts the synthesized router plan.
func TestPlanShape(t *testing.T) {
	p := BuildPlan(testOpts())
	if set := p.LockSet(0, "groups").Key(); set != "{get(g),put(g,*)}" {
		t.Errorf("register groups lock = %s", set)
	}
	if set := p.LockSet(0, "members").Key(); set != "{put(m,conn)}" {
		t.Errorf("register members lock = %s", set)
	}
	if set := p.LockSet(2, "members").Key(); set != "{get(dst)}" {
		t.Errorf("unicast members lock = %s", set)
	}
	if set := p.LockSet(3, "members").Key(); set != "{values()}" {
		t.Errorf("multicast members lock = %s", set)
	}
	if p.Rank("Map$groups") >= p.Rank("Map$members") {
		t.Error("groups must rank before members")
	}
	// Multicasts commute with each other and with unicasts (reads).
	tbl := p.Table("Map$members")
	mc := p.Ref(3, "members").Mode()
	uni := p.Ref(2, "members").Mode("peer")
	if !tbl.Commute(mc, mc) {
		t.Error("multicast modes must commute")
	}
	if !tbl.Commute(mc, uni) {
		t.Error("multicast and unicast modes must commute")
	}
	// Registration conflicts with multicast on the same instance.
	reg := p.Ref(0, "members").Mode(nil, "m1")
	if tbl.Commute(mc, reg) {
		t.Error("multicast must conflict with registration")
	}
}

// TestRouterSemantics: registration, unicast, multicast, unregister.
func TestRouterSemantics(t *testing.T) {
	for _, pol := range Policies() {
		t.Run(pol, func(t *testing.T) {
			r := New(pol, 0, testOpts())
			a, b := NewConn("a", 0), NewConn("b", 0)
			r.Register("g", "a", a)
			r.Register("g", "b", b)
			r.Unicast("g", "a", []byte("x"))
			if a.Frames.Load() != 1 || b.Frames.Load() != 0 {
				t.Fatalf("unicast delivered a=%d b=%d", a.Frames.Load(), b.Frames.Load())
			}
			r.Multicast("g", []byte("yy"))
			if a.Frames.Load() != 2 || b.Frames.Load() != 1 {
				t.Fatalf("multicast delivered a=%d b=%d", a.Frames.Load(), b.Frames.Load())
			}
			r.Unregister("g", "a")
			r.Multicast("g", []byte("z"))
			if a.Frames.Load() != 2 || b.Frames.Load() != 2 {
				t.Fatalf("post-unregister delivery a=%d b=%d", a.Frames.Load(), b.Frames.Load())
			}
			// Unknown group / member: no panic, no delivery.
			r.Unicast("nope", "a", []byte("x"))
			r.Multicast("nope", []byte("x"))
			r.Unregister("nope", "a")
		})
	}
}

// TestRouterConcurrent: concurrent registers/routes across groups; all
// frames are eventually delivered and membership converges.
func TestRouterConcurrent(t *testing.T) {
	for _, pol := range Policies() {
		t.Run(pol, func(t *testing.T) {
			r := New(pol, 0, testOpts())
			groups := []string{"g0", "g1", "g2"}
			conns := make([]*Conn, 12)
			var wg sync.WaitGroup
			for i := range conns {
				conns[i] = NewConn("m"+string(rune('0'+i)), 0)
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					r.Register(groups[i%3], conns[i].Member, conns[i])
				}(i)
			}
			wg.Wait()
			for w := 0; w < 6; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 200; i++ {
						r.Multicast(groups[(w+i)%3], []byte("payload"))
					}
				}(w)
			}
			wg.Wait()
			var total int64
			for _, c := range conns {
				total += c.Frames.Load()
			}
			// 6 workers × 200 multicasts, each to a group of 4 members.
			if total != 6*200*4 {
				t.Errorf("%s: delivered %d frames, want %d", pol, total, 6*200*4)
			}
		})
	}
}

// TestMPerfGroundTruth: every policy delivers exactly the expected
// frame count at several worker counts.
func TestMPerfGroundTruth(t *testing.T) {
	cfg := MPerfConfig{Clients: 4, Messages: 100, UnicastRatio: 10, SendCost: 0, Workers: 3}
	want := ExpectedFrames(cfg)
	for _, pol := range Policies() {
		for _, workers := range []int{1, 4} {
			cfg.Workers = workers
			r := New(pol, cfg.SendCost, testOpts())
			res := RunMPerf(r, cfg)
			if res.FramesDelivered != want {
				t.Errorf("%s/%d workers: %d frames, want %d", pol, workers, res.FramesDelivered, want)
			}
			if res.Handled != cfg.Clients*cfg.Messages {
				t.Errorf("%s: handled %d messages", pol, res.Handled)
			}
		}
	}
}
