// Boxed-key policied sections: the resilience-layer counterparts of
// boxed.go, used by the TCP server so a policied wire path stays
// allocation-free too. Shapes and irrevocability discipline match
// resilient.go exactly; only the key boxing moves to the caller.

package gossip

import (
	"repro/internal/adt"
	"repro/internal/core"
)

// RegisterErrV is RegisterErr with pre-boxed keys.
func (r *Resilient) RegisterErrV(group, member core.Value, conn *Conn) error {
	return r.policy.Run(func(tx *core.Txn) error {
		if err := r.policy.Acquire(tx, r.groupsSem, tx.CachedMode1(r.regGroupsRef, group), r.groupsRank); err != nil {
			return err
		}
		var mm *memberMap
		if v := r.groups.Get(group); v != nil {
			mm = v.(*memberMap)
		} else {
			mm = &memberMap{m: adt.NewHashMap(), sem: core.NewSemantic(r.memTable)}
			r.groups.Put(group, mm)
		}
		if err := r.policy.Acquire(tx, mm.sem, r.regMem2(member, conn), r.memRank); err != nil {
			return err
		}
		r.fault("register")
		mm.m.Put(member, conn)
		return nil
	})
}

// UnregisterErrV is UnregisterErr with pre-boxed keys.
func (r *Resilient) UnregisterErrV(group, member core.Value) error {
	return r.policy.Run(func(tx *core.Txn) error {
		if err := r.policy.Acquire(tx, r.groupsSem, tx.CachedMode1(r.unregGRef, group), r.groupsRank); err != nil {
			return err
		}
		if v := r.groups.Get(group); v != nil {
			mm := v.(*memberMap)
			if err := r.policy.Acquire(tx, mm.sem, tx.CachedMode1(r.unregMemRef, member), r.memRank); err != nil {
				return err
			}
			r.fault("unregister")
			mm.m.Remove(member)
		}
		return nil
	})
}

// UnicastErrV is UnicastErr with pre-boxed keys.
func (r *Resilient) UnicastErrV(group, dst core.Value, payload []byte) error {
	return r.policy.Run(func(tx *core.Txn) error {
		if err := r.policy.Acquire(tx, r.groupsSem, tx.CachedMode1(r.uniGRef, group), r.groupsRank); err != nil {
			return err
		}
		if v := r.groups.Get(group); v != nil {
			mm := v.(*memberMap)
			if err := r.policy.Acquire(tx, mm.sem, tx.CachedMode1(r.uniMemRef, dst), r.memRank); err != nil {
				return err
			}
			r.fault("unicast")
			if c := mm.m.Get(dst); c != nil {
				c.(*Conn).Send(payload)
			}
		}
		return nil
	})
}

// MulticastErrV is MulticastErr with a pre-boxed key.
func (r *Resilient) MulticastErrV(group core.Value, payload []byte) error {
	return r.policy.Run(func(tx *core.Txn) error {
		if err := r.policy.Acquire(tx, r.groupsSem, tx.CachedMode1(r.mcGRef, group), r.groupsRank); err != nil {
			return err
		}
		if v := r.groups.Get(group); v != nil {
			mm := v.(*memberMap)
			if err := r.policy.Acquire(tx, mm.sem, r.mcMemMode, r.memRank); err != nil {
				return err
			}
			r.fault("multicast")
			for _, c := range mm.m.Values() {
				c.(*Conn).Send(payload)
			}
		}
		return nil
	})
}

// LookupErrV is the membership probe under the policy with pre-boxed
// keys: the section first rides the optimistic envelope (lock-free, so
// it can neither stall nor trip the breaker's stall feed) and only the
// pessimistic fallback pays bounded acquisitions. Admission — gate and
// breaker — still guards the whole section, so an open breaker sheds
// the read before it touches anything.
func (r *Resilient) LookupErrV(group, member core.Value) (bool, error) {
	var found bool
	err := r.policy.Run(func(tx *core.Txn) error {
		if tx.TryOptimistic(func(tx *core.Txn) bool {
			if !tx.Observe(r.groupsSem, tx.CachedMode1(r.uniGRef, group), r.groupsRank) {
				return false
			}
			found = false
			if v := r.groups.Get(group); v != nil {
				mm := v.(*memberMap)
				if !tx.Observe(mm.sem, tx.CachedMode1(r.uniMemRef, member), r.memRank) {
					return false
				}
				found = mm.m.Get(member) != nil
			}
			return true
		}) {
			return nil
		}
		if err := r.policy.Acquire(tx, r.groupsSem, tx.CachedMode1(r.uniGRef, group), r.groupsRank); err != nil {
			return err
		}
		found = false
		if v := r.groups.Get(group); v != nil {
			mm := v.(*memberMap)
			if err := r.policy.Acquire(tx, mm.sem, tx.CachedMode1(r.uniMemRef, member), r.memRank); err != nil {
				return err
			}
			found = mm.m.Get(member) != nil
		}
		return nil
	})
	return found, err
}

// UnicastBatchErrV is UnicastBatchV under the policy: the gate and
// breaker decide admission for the whole batch (one shed refuses the
// run of frames before any lock is touched), and the fused LockBatch
// prologue then acquires blocking — the batch claim path has no
// bounded-patience variant, so patience and the retry budget do not
// apply inside an admitted batch. A batch therefore cannot stall-fail:
// the only errors are ErrShed and ErrBreakerOpen.
func (r *Resilient) UnicastBatchErrV(reqs []SendReq, sc *BatchScratch) error {
	if len(reqs) == 1 {
		return r.UnicastErrV(reqs[0].Group, reqs[0].Dst, reqs[0].Payload)
	}
	return r.policy.Run(func(tx *core.Txn) error {
		r.unicastBatchLocked(tx, reqs, sc)
		return nil
	})
}
