package gossip

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/modules/plan"
	"repro/internal/resilience"
)

// TestBoxedEquivalence: the V variants compute exactly what the string
// variants compute — same membership answers, same delivered frames.
func TestBoxedEquivalence(t *testing.T) {
	os := NewOursFused(0, plan.Options{})
	ov := NewOursFused(0, plan.Options{})

	groups := []string{"g0", "g1"}
	members := []string{"m0", "m1", "m2"}
	connsS := map[string]*Conn{}
	connsV := map[string]*Conn{}
	box := func(s string) core.Value { return s }

	for _, g := range groups {
		for _, m := range members {
			key := g + "/" + m
			connsS[key] = NewConn(m, 0)
			connsV[key] = NewConn(m, 0)
			os.Register(g, m, connsS[key])
			ov.RegisterV(box(g), box(m), connsV[key])
		}
	}
	payload := []byte("p")
	for i := 0; i < 200; i++ {
		g := groups[i%2]
		m := members[i%3]
		switch i % 7 {
		case 0:
			os.Unicast(g, m, payload)
			ov.UnicastV(box(g), box(m), payload)
		case 1:
			os.Multicast(g, payload)
			ov.MulticastV(box(g), payload)
		case 2:
			if a, b := os.Lookup(g, m), ov.LookupV(box(g), box(m)); a != b {
				t.Fatalf("lookup(%s,%s): string=%v boxed=%v", g, m, a, b)
			}
		case 3:
			os.Unregister(g, m)
			ov.UnregisterV(box(g), box(m))
		case 4:
			os.Register(g, m, connsS[g+"/"+m])
			ov.RegisterV(box(g), box(m), connsV[g+"/"+m])
		case 5:
			reqs := []SendReq{{box(g), box(members[0]), payload}, {box(g), box(members[1]), payload},
				{box(groups[(i+1)%2]), box(m), payload}}
			var sc BatchScratch
			ov.UnicastBatchV(reqs, &sc)
			for _, r := range reqs {
				os.Unicast(r.Group.(string), r.Dst.(string), payload)
			}
		case 6:
			// Lookup of a never-registered member and group.
			if a, b := os.Lookup("absent", m), ov.LookupV(box("absent"), box(m)); a != b {
				t.Fatalf("absent-group lookup mismatch: %v vs %v", a, b)
			}
		}
	}
	for _, g := range groups {
		for _, m := range members {
			key := g + "/" + m
			if a, b := connsS[key].Frames.Load(), connsV[key].Frames.Load(); a != b {
				t.Fatalf("conn %s frames: string=%d boxed=%d", key, a, b)
			}
			if a, b := os.Lookup(g, m), ov.LookupV(box(g), box(m)); a != b {
				t.Fatalf("final lookup(%s,%s) mismatch: %v vs %v", g, m, a, b)
			}
		}
	}
}

// TestBoxedAllocs: with pre-boxed keys the fused sections allocate
// nothing in steady state — the router half of the wire path's
// 0 allocs/op pin (the server half is pinned in internal/net/server).
func TestBoxedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation heap-allocates stack closures; the 0 allocs/op pin holds on the normal build")
	}
	o := NewOursFused(0, plan.Options{})
	var g, m core.Value = "g0", "m0"
	o.RegisterV(g, m, NewConn("m0", 0))
	payload := []byte("payload")

	if n := testing.AllocsPerRun(2000, func() { o.LookupV(g, m) }); n != 0 {
		t.Errorf("LookupV allocs/op = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(2000, func() { o.UnicastV(g, m, payload) }); n != 0 {
		t.Errorf("UnicastV allocs/op = %v, want 0", n)
	}
	reqs := []SendReq{{g, m, payload}, {g, m, payload}, {g, m, payload}, {g, m, payload}}
	var sc BatchScratch
	o.UnicastBatchV(reqs, &sc) // warm the scratch capacity
	if n := testing.AllocsPerRun(2000, func() { o.UnicastBatchV(reqs, &sc) }); n != 0 {
		t.Errorf("UnicastBatchV allocs/op = %v, want 0", n)
	}
}

// TestUnicastBatchRace: batched and single-frame unicasts, membership
// churn, and lookups race under -race; delivered-frame accounting must
// balance and nothing may leak.
func TestUnicastBatchRace(t *testing.T) {
	o := NewOursFused(0, plan.Options{})
	const G, M = 4, 8
	conns := map[string]*Conn{}
	for g := 0; g < G; g++ {
		for m := 0; m < M; m++ {
			gn, mn := fmt.Sprintf("g%d", g), fmt.Sprintf("m%d", m)
			c := NewConn(mn, 0)
			conns[gn+"/"+mn] = c
			o.Register(gn, mn, c)
		}
	}
	payload := []byte("x")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var sc BatchScratch
			var reqs [6]SendReq
			for i := 0; i < 300; i++ {
				gn := fmt.Sprintf("g%d", (i+w)%G)
				switch i % 3 {
				case 0:
					n := 2 + i%5
					for j := 0; j < n; j++ {
						reqs[j] = SendReq{
							Group: fmt.Sprintf("g%d", (i+j)%G),
							Dst:   fmt.Sprintf("m%d", (w+j)%M), Payload: payload,
						}
					}
					o.UnicastBatchV(reqs[:n], &sc)
				case 1:
					o.LookupV(gn, fmt.Sprintf("m%d", i%M))
				case 2:
					mn := fmt.Sprintf("m%d", w)
					o.UnregisterV(gn, mn)
					o.RegisterV(gn, mn, conns[gn+"/"+mn])
				}
			}
		}(w)
	}
	wg.Wait()
	leaked := int64(0)
	for _, s := range o.Sems() {
		leaked += s.OutstandingHolds()
		if err := s.CheckQuiesced(); err != nil {
			t.Fatalf("quiesce: %v", err)
		}
	}
	if leaked != 0 {
		t.Fatalf("leaked holds: %d", leaked)
	}
}

// TestResilientBoxedEquivalence: the policied V variants agree with the
// plain V variants when the policy never refuses.
func TestResilientBoxedEquivalence(t *testing.T) {
	o := NewOursFused(0, plan.Options{})
	r := NewResilient(o, resilience.New("test", resilience.Config{}))
	var g, m core.Value = "g0", "m0"
	c := NewConn("m0", 0)
	if err := r.RegisterErrV(g, m, c); err != nil {
		t.Fatal(err)
	}
	found, err := r.LookupErrV(g, m)
	if err != nil || !found {
		t.Fatalf("LookupErrV = %v, %v; want true, nil", found, err)
	}
	if err := r.UnicastErrV(g, m, []byte("p")); err != nil {
		t.Fatal(err)
	}
	if err := r.MulticastErrV(g, []byte("q")); err != nil {
		t.Fatal(err)
	}
	if got := c.Frames.Load(); got != 2 {
		t.Fatalf("frames = %d, want 2", got)
	}
	var sc BatchScratch
	if err := r.UnicastBatchErrV([]SendReq{{g, m, nil}, {g, m, nil}}, &sc); err != nil {
		t.Fatal(err)
	}
	if got := c.Frames.Load(); got != 4 {
		t.Fatalf("frames after batch = %d, want 4", got)
	}
	if err := r.UnregisterErrV(g, m); err != nil {
		t.Fatal(err)
	}
	if found, _ := r.LookupErrV(g, m); found {
		t.Fatal("member still present after UnregisterErrV")
	}
}
