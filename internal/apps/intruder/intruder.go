// Package intruder is a from-scratch Go port of the STAMP Intruder
// benchmark (§6.2): an emulation of signature-based network intrusion
// detection. Packets of fragmented flows are pulled from a capture
// queue; the reassembly step — the benchmark's atomic section, the code
// that inspired Fig 1 — inserts fragments into a shared flow map and,
// on completion, moves the assembled flow to a decoded queue; the
// detection step scans assembled payloads against a signature
// dictionary.
//
// The paper's configuration "-a 10 -l 256 -n 16384 -s 1" maps to
// Config{Attacks: 10, MaxLength: 256, Flows: 16384, Seed: 1}.
package intruder

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"repro/internal/adt"
	"repro/internal/adtspecs"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/modules/plan"
)

// Config is the workload configuration (STAMP's -a -l -n -s).
type Config struct {
	Attacks   int   // percentage of flows carrying an attack signature
	MaxLength int   // maximum flow payload length in bytes
	Flows     int   // number of flows
	Seed      int64 // PRNG seed
}

// PaperConfig is the configuration used in Fig 24.
func PaperConfig() Config {
	return Config{Attacks: 10, MaxLength: 256, Flows: 16384, Seed: 1}
}

// Packet is one fragment of a flow.
type Packet struct {
	FlowID   int
	FragID   int
	NumFrags int
	Payload  string
}

// signatures is the attack dictionary planted into ~Attacks% of flows.
var signatures = []string{
	"ATTACK-AAAA", "ATTACK-BBBB", "ATTACK-CCCC", "ATTACK-DDDD",
	"ATTACK-EEEE", "ATTACK-FFFF", "ATTACK-GGGG", "ATTACK-HHHH",
}

// Workload is the generated packet trace plus ground truth.
type Workload struct {
	Packets     []Packet
	AttackFlows int // number of flows carrying a signature
}

// Generate builds the packet trace: Flows flows with random payloads of
// length ≤ MaxLength split into random fragments, Attacks% carrying a
// planted signature, all packets shuffled (fragments of one flow stay
// in relative order only with respect to reassembly needs — reassembly
// tolerates any order).
func Generate(cfg Config) *Workload {
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{}
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	for f := 0; f < cfg.Flows; f++ {
		n := 16 + rng.Intn(cfg.MaxLength-15)
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		payload := string(b)
		if rng.Intn(100) < cfg.Attacks {
			sig := signatures[rng.Intn(len(signatures))]
			pos := rng.Intn(len(payload) - len(sig) + 1)
			if pos < 0 {
				pos = 0
			}
			payload = payload[:pos] + sig + payload[pos+len(sig):]
			w.AttackFlows++
		}
		// Split into 1..8 fragments.
		nf := 1 + rng.Intn(8)
		if nf > len(payload) {
			nf = len(payload)
		}
		cuts := rng.Perm(len(payload) - 1)[:nf-1]
		sort.Ints(cuts)
		prev := 0
		frags := make([]string, 0, nf)
		for _, c := range cuts {
			frags = append(frags, payload[prev:c+1])
			prev = c + 1
		}
		frags = append(frags, payload[prev:])
		for i, fr := range frags {
			w.Packets = append(w.Packets, Packet{FlowID: f, FragID: i, NumFrags: len(frags), Payload: fr})
		}
	}
	rng.Shuffle(len(w.Packets), func(i, j int) {
		w.Packets[i], w.Packets[j] = w.Packets[j], w.Packets[i]
	})
	return w
}

// flowState accumulates fragments of one flow.
type flowState struct {
	frags    []string
	received int
	total    int
}

func newFlowState(total int) *flowState {
	return &flowState{frags: make([]string, total), total: total}
}

// add stores a fragment; it reports whether the flow is complete.
func (fs *flowState) add(p Packet) bool {
	if fs.frags[p.FragID] == "" {
		fs.frags[p.FragID] = p.Payload
		fs.received++
	}
	return fs.received == fs.total
}

func (fs *flowState) assemble() string { return strings.Join(fs.frags, "") }

// detect scans an assembled payload for signatures (pure computation).
func detect(payload string) bool {
	for _, sig := range signatures {
		if strings.Contains(payload, sig) {
			return true
		}
	}
	return false
}

// Processor reassembles packets under one synchronization policy. The
// decoded queue hands assembled flows to the detection phase; Pop is
// the (single-operation) atomic section that drains it.
type Processor interface {
	// Process handles one packet (the reassembly atomic section); a
	// completed flow is enqueued on the decoded queue.
	Process(p Packet)
	// Pop dequeues one assembled payload (its own atomic section).
	Pop() (payload string, ok bool)
}

// Section returns the reassembly atomic section in IR — Fig 1's shape:
// a Map of flows and a Queue of decoded payloads.
func Section() *ir.Atomic {
	return &ir.Atomic{
		Name: "reassemble",
		Vars: []ir.Param{
			{Name: "fmap", Type: "Map", IsADT: true, NonNull: true},
			{Name: "decoded", Type: "Queue", IsADT: true, NonNull: true},
			{Name: "flow", Type: "int"},
			{Name: "state", Type: "FlowState"},
			{Name: "done", Type: "boolean"},
			{Name: "payload", Type: "string"},
		},
		Body: ir.Block{
			&ir.Call{Recv: "fmap", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "flow"}}, Assign: "state"},
			&ir.If{
				Cond: ir.IsNull{Var: "state"},
				Then: ir.Block{
					&ir.Assign{Lhs: "state", Rhs: ir.Opaque{Text: "newFlowState()"}},
					&ir.Call{Recv: "fmap", Method: "put", Args: []ir.Expr{ir.VarRef{Name: "flow"}, ir.VarRef{Name: "state"}}},
				},
			},
			&ir.Assign{Lhs: "done", Rhs: ir.Opaque{Text: "state.add(pkt)", Reads: []string{"state"}}},
			&ir.If{
				Cond: ir.OpaqueCond{Text: "done", Reads: []string{"done"}},
				Then: ir.Block{
					&ir.Call{Recv: "fmap", Method: "remove", Args: []ir.Expr{ir.VarRef{Name: "flow"}}},
					&ir.Assign{Lhs: "payload", Rhs: ir.Opaque{Text: "state.assemble()", Reads: []string{"state"}}},
					&ir.Call{Recv: "decoded", Method: "enqueue", Args: []ir.Expr{ir.VarRef{Name: "payload"}}},
				},
			},
		},
	}
}

// PopSection returns the detection-feed atomic section: one dequeue.
func PopSection() *ir.Atomic {
	return &ir.Atomic{
		Name: "popDecoded",
		Vars: []ir.Param{
			{Name: "decoded", Type: "Queue", IsADT: true, NonNull: true},
			{Name: "payload", Type: "string"},
		},
		Body: ir.Block{
			&ir.Call{Recv: "decoded", Method: "dequeue", Assign: "payload"},
		},
	}
}

var planCache = plan.NewCache(func(opt plan.Options) *plan.Plan {
	return plan.MustBuild([]*ir.Atomic{Section(), PopSection()}, adtspecs.All(), nil, opt)
})

// BuildPlan synthesizes the reassembly and pop sections; plans are
// memoized per Options.
func BuildPlan(opt plan.Options) *plan.Plan { return planCache.Get(opt) }

// NewProcessor creates the named variant: "ours", "global", "2pl" or
// "manual".
func NewProcessor(policy string, opt plan.Options) Processor {
	switch policy {
	case "ours":
		return NewOurs(opt)
	case "ours-fused":
		return NewOursFused(opt)
	case "global":
		return &globalProc{fmap: adt.NewHashMap(), decoded: adt.NewQueue()}
	case "2pl":
		return &twoPLProc{fmap: adt.NewHashMap(), decoded: adt.NewQueue(),
			fmapL: cc.NewInstanceLock(0), decodedL: cc.NewInstanceLock(1)}
	case "manual":
		return &manualProc{fmap: adt.NewHashMap(), decoded: adt.NewQueue(), stripes: cc.NewStriped(64)}
	default:
		panic(fmt.Sprintf("intruder: unknown policy %q", policy))
	}
}

// Policies lists the variants in the order Fig 24 plots them.
func Policies() []string { return []string{"ours", "global", "2pl", "manual"} }

// Ours executes the synthesized plan: fmap mode
// {get(flow),put(flow,*),remove(flow)} and a decoded-queue enqueue mode
// that commutes with itself (no blocking between completing flows).
// Sections run under core.Atomically on pooled transactions, so a panic
// inside reassembly — including one injected through FaultHook —
// releases every held lock before unwinding.
type Ours struct {
	fmap    *adt.HashMap
	decoded *adt.Queue

	fmapSem  *core.Semantic
	decSem   *core.Semantic
	fmapRank int
	decRank  int
	fmapRef  core.SetRef
	encRef   core.SetRef // reassembly: {enqueue(payload)}
	popRef   core.SetRef // pop: {dequeue()}
	popMode  core.ModeID // interned pop mode (constant set, one mode)

	// fused selects the fused-prologue hot path (-exp hotpath): every
	// mode of the per-packet prologue goes through a fixed-arity
	// interned selector instead of the variadic Mode call, so it never
	// allocates a variadic []Value. The transaction memo is not used
	// here — flow ids are near-uniform over thousands of flows, so an
	// 8-entry memo cannot hit and its probe would be pure overhead
	// (unlike gossip, whose group names repeat).
	fused bool

	// FaultHook, when non-nil, is called at each section's fault point —
	// with the section's locks held — with the section name ("process",
	// "pop"). The chaos harness injects panics and delays here.
	FaultHook func(site string)
}

// NewOurs creates the semantic-locking processor with access to the
// concrete type (fault hook, lock introspection); NewProcessor("ours",
// ...) returns the same thing as a Processor.
func NewOurs(opt plan.Options) *Ours {
	p := BuildPlan(opt)
	o := &Ours{fmap: adt.NewHashMap(), decoded: adt.NewQueue()}
	o.fmapSem = core.NewSemantic(p.Table("Map"))
	o.decSem = core.NewSemantic(p.Table("Queue"))
	o.fmapRank = p.Rank("Map")
	o.decRank = p.Rank("Queue")
	o.fmapRef = p.Ref(0, "fmap")
	o.encRef = p.Ref(0, "decoded")
	o.popRef = p.Ref(1, "decoded")
	o.popMode = modeOf(o.popRef)
	return o
}

// NewOursFused is NewOurs with the fused-prologue hot path enabled; see
// the fused field. NewProcessor("ours-fused", ...) returns the same
// thing as a Processor.
func NewOursFused(opt plan.Options) *Ours {
	o := NewOurs(opt)
	o.fused = true
	return o
}

func modeOf(ref core.SetRef, vals ...core.Value) core.ModeID {
	if len(ref.Vars()) == 0 {
		return ref.Mode()
	}
	return ref.Mode(vals...)
}

func (o *Ours) fault(site string) {
	if o.FaultHook != nil {
		o.FaultHook(site)
	}
}

// Sems returns the semantic locks of the processor's two instances for
// quiescence introspection.
func (o *Ours) Sems() []*core.Semantic {
	return []*core.Semantic{o.fmapSem, o.decSem}
}

func (o *Ours) Process(p Packet) {
	if o.fused {
		o.processFused(p)
		return
	}
	mf := modeOf(o.fmapRef, p.FlowID)
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(o.fmapSem, mf, o.fmapRank)
		o.fault("process")
		if payload, done := reassemble(o.fmap, p); done {
			tx.Lock(o.decSem, modeOf(o.encRef, payload), o.decRank)
			o.decoded.Enqueue(payload)
		}
	})
}

func (o *Ours) processFused(p Packet) {
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(o.fmapSem, o.fmapRef.Mode1(p.FlowID), o.fmapRank)
		o.fault("process")
		if payload, done := reassemble(o.fmap, p); done {
			// Payloads are fresh strings, so the memo cannot hit; the
			// fixed-arity selector still skips the variadic allocation.
			tx.Lock(o.decSem, o.encRef.Mode1(payload), o.decRank)
			o.decoded.Enqueue(payload)
		}
	})
}

func (o *Ours) Pop() (payload string, ok bool) {
	md := o.popMode
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(o.decSem, md, o.decRank)
		o.fault("pop")
		var v core.Value
		if v, ok = o.decoded.Dequeue(); ok {
			payload = v.(string)
		}
	})
	return payload, ok
}

type globalProc struct {
	mu      cc.GlobalLock
	fmap    *adt.HashMap
	decoded *adt.Queue
}

func (g *globalProc) Process(p Packet) {
	g.mu.Enter()
	defer g.mu.Exit()
	if payload, done := reassemble(g.fmap, p); done {
		g.decoded.Enqueue(payload)
	}
}

func (g *globalProc) Pop() (string, bool) {
	g.mu.Enter()
	defer g.mu.Exit()
	v, ok := g.decoded.Dequeue()
	if !ok {
		return "", false
	}
	return v.(string), true
}

type twoPLProc struct {
	fmap            *adt.HashMap
	decoded         *adt.Queue
	fmapL, decodedL *cc.InstanceLock
}

func (t *twoPLProc) Process(p Packet) {
	var tx cc.TwoPL
	tx.Lock(t.fmapL)
	defer tx.UnlockAll()
	if payload, done := reassemble(t.fmap, p); done {
		tx.Lock(t.decodedL)
		t.decoded.Enqueue(payload)
	}
}

func (t *twoPLProc) Pop() (string, bool) {
	var tx cc.TwoPL
	tx.Lock(t.decodedL)
	defer tx.UnlockAll()
	v, ok := t.decoded.Dequeue()
	if !ok {
		return "", false
	}
	return v.(string), true
}

// manualProc is the ad-hoc variant of §6.2: lock striping over flow ids
// combined with linearizable Map and Queue implementations (the queue's
// own synchronization suffices because a completed flow's state is
// thread-owned once removed from the map).
type manualProc struct {
	fmap    *adt.HashMap
	decoded *adt.Queue
	stripes *cc.Striped
}

func (m *manualProc) Process(p Packet) {
	m.stripes.Lock(p.FlowID)
	payload, done := reassemble(m.fmap, p)
	m.stripes.Unlock(p.FlowID)
	if done {
		m.decoded.Enqueue(payload)
	}
}

func (m *manualProc) Pop() (string, bool) {
	//semlockvet:ignore guardedby -- single linearizable op: the manual pipeline hands off through the internally synchronized queue, no compound to protect
	v, ok := m.decoded.Dequeue()
	if !ok {
		return "", false
	}
	return v.(string), true
}

// reassemble is the shared reassembly body: fragment insertion, and on
// completion removal plus assembly.
func reassemble(fmap *adt.HashMap, p Packet) (string, bool) {
	var st *flowState
	if v := fmap.Get(p.FlowID); v != nil {
		st = v.(*flowState)
	} else {
		st = newFlowState(p.NumFrags)
		fmap.Put(p.FlowID, st)
	}
	if st.add(p) {
		fmap.Remove(p.FlowID)
		return st.assemble(), true
	}
	return "", false
}

// Run executes the whole benchmark with the given processor and worker
// count: capture (shared input queue) → reassembly (Process) →
// detection (signature scan). It returns the number of attacks found.
func Run(w *Workload, proc Processor, workers int) int {
	input := adt.NewQueue()
	for _, p := range w.Packets {
		input.Enqueue(p)
	}
	var attacks atomicCounter
	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				//semlockvet:ignore guardedby -- single linearizable op: workers steal packets from the internally synchronized capture queue
				v, ok := input.Dequeue() // capture phase
				if !ok {
					break
				}
				proc.Process(v.(Packet)) // reassembly
				if payload, ok := proc.Pop(); ok && detect(payload) {
					attacks.inc() // detection
				}
			}
			// Input drained: finish the decoded backlog.
			for {
				payload, ok := proc.Pop()
				if !ok {
					break
				}
				if detect(payload) {
					attacks.inc()
				}
			}
		}()
	}
	wg.Wait()
	return attacks.get()
}

type atomicCounter struct{ c adt.Counter }

//semlockvet:ignore guardedby -- adt.Counter.Inc is a single atomic increment; the tally needs no section
func (a *atomicCounter) inc() int64 { a.c.Inc(1); return 0 }

//semlockvet:ignore guardedby -- read after wg.Wait() quiescence in Run; single atomic load
func (a *atomicCounter) get() int { return int(a.c.Read()) }
