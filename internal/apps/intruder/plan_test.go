package intruder

import (
	"testing"

	"repro/internal/modules/plan"
)

// TestPlanGolden pins the full synthesized reassembly plan — the Fig 1
// shape specialized to the Intruder state (flow map + decoded queue).
// Note the early release inside the section: the queue is locked only on
// the completion branch, and the trailing unlockAll on the ¬done path is
// the runtime-tolerant no-op discussed in Appendix A.
func TestPlanGolden(t *testing.T) {
	p := BuildPlan(plan.Options{})
	want := `atomic reassemble {
  fmap.lock({get(flow),put(flow,*),remove(flow)});
  state=fmap.get(flow);
  if(state==null) {
    state=newFlowState();
    fmap.put(flow, state);
  }
  done=state.add(pkt);
  if(done) {
    fmap.remove(flow);
    payload=state.assemble();
    decoded.lock({enqueue(payload)});
    decoded.enqueue(payload);
  }
  fmap.unlockAll();
  decoded.unlockAll();
}
`
	if got := p.Print(0); got != want {
		t.Errorf("reassembly plan:\n%s\nwant:\n%s", got, want)
	}
	wantPop := `atomic popDecoded {
  decoded.lock({dequeue()});
  payload=decoded.dequeue();
  decoded.unlockAll();
}
`
	if got := p.Print(1); got != wantPop {
		t.Errorf("pop plan:\n%s\nwant:\n%s", got, wantPop)
	}
}
