package intruder

import (
	"testing"

	"repro/internal/modules/plan"
)

func smallConfig() Config {
	return Config{Attacks: 10, MaxLength: 64, Flows: 400, Seed: 1}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig())
	b := Generate(smallConfig())
	if len(a.Packets) != len(b.Packets) || a.AttackFlows != b.AttackFlows {
		t.Fatal("generation not deterministic")
	}
	for i := range a.Packets {
		if a.Packets[i] != b.Packets[i] {
			t.Fatal("packet traces differ")
		}
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := PaperConfig()
	cfg.Flows = 1000 // keep the test quick; same distribution
	w := Generate(cfg)
	if w.AttackFlows < 50 || w.AttackFlows > 200 {
		t.Errorf("attack flows = %d, expected ≈10%% of 1000", w.AttackFlows)
	}
	// Each flow's fragments must cover contiguous, in-order pieces.
	perFlow := map[int][]Packet{}
	for _, p := range w.Packets {
		perFlow[p.FlowID] = append(perFlow[p.FlowID], p)
	}
	if len(perFlow) != cfg.Flows {
		t.Fatalf("flows = %d", len(perFlow))
	}
	for f, ps := range perFlow {
		if len(ps) != ps[0].NumFrags {
			t.Fatalf("flow %d: %d packets, want %d", f, len(ps), ps[0].NumFrags)
		}
	}
}

// TestPlanShape asserts the synthesized reassembly plan — the Fig 1
// shape: {get(flow),put(flow,*),remove(flow)} on the map, a commuting
// enqueue mode on the queue, an exclusive dequeue mode for Pop.
func TestPlanShape(t *testing.T) {
	p := BuildPlan(plan.Options{AbstractValues: 8})
	if set := p.LockSet(0, "fmap").Key(); set != "{get(flow),put(flow,*),remove(flow)}" {
		t.Errorf("fmap lock set = %s", set)
	}
	if set := p.LockSet(0, "decoded").Key(); set != "{enqueue(payload)}" {
		t.Errorf("decoded enqueue set = %s", set)
	}
	if set := p.LockSet(1, "decoded").Key(); set != "{dequeue()}" {
		t.Errorf("decoded dequeue set = %s", set)
	}
	qt := p.Table("Queue")
	enc := p.Ref(0, "decoded").Mode("x")
	if !qt.Commute(enc, enc) {
		t.Error("enqueue modes must commute (pool semantics)")
	}
	pop := p.Ref(1, "decoded").Mode()
	if qt.Commute(pop, pop) || qt.Commute(pop, enc) {
		t.Error("dequeue must conflict with dequeue and enqueue")
	}
}

// TestAllVariantsDetectAllAttacks: every policy at several worker
// counts must find exactly the injected attacks — reassembly atomicity
// is what guarantees no flow is torn or lost.
func TestAllVariantsDetectAllAttacks(t *testing.T) {
	w := Generate(smallConfig())
	for _, pol := range Policies() {
		for _, workers := range []int{1, 4, 8} {
			proc := NewProcessor(pol, plan.Options{AbstractValues: 8})
			got := Run(w, proc, workers)
			if got != w.AttackFlows {
				t.Errorf("%s/%d workers: detected %d attacks, want %d", pol, workers, got, w.AttackFlows)
			}
		}
	}
}

func TestDetect(t *testing.T) {
	if !detect("xxxATTACK-AAAAyyy") {
		t.Error("signature not detected")
	}
	if detect("clean payload") {
		t.Error("false positive")
	}
}
