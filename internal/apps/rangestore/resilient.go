// Resilient is the range store under the resilience layer: point writes
// and pair toggles run policy-guarded (bounded acquisitions, budgeted
// retries, gate/breaker admission), and the whole-store scan gets a
// hedged variant — the pessimistic shard-by-shard acquisition races the
// optimistic validated scan once it exceeds the hedge budget. The
// PutPair evenness oracle carries over unchanged: a hedged scan that
// returns an odd count has seen a torn pair write, whichever side won.

package rangestore

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/resilience"
)

// Resilient wraps a Store with a resilience policy.
type Resilient struct {
	*Store
	policy *resilience.Policy

	// Dropped counts operations abandoned after the policy gave up.
	Dropped atomic.Uint64
}

// NewResilient wraps s with policy p.
func NewResilient(s *Store, p *resilience.Policy) *Resilient {
	return &Resilient{Store: s, policy: p}
}

// Policy returns the wrapped policy.
func (r *Resilient) Policy() *resilience.Policy { return r.policy }

// PutErr is the point write under the policy.
func (r *Resilient) PutErr(k int, v core.Value) error {
	sh := r.shardOf(k)
	return r.policy.Run(func(tx *core.Txn) error {
		if err := r.policy.Acquire(tx, sh.sem, tx.CachedMode1(r.writeRef, k), 0); err != nil {
			return err
		}
		sh.m.Put(k, v)
		return nil
	})
}

// PutPairErr is the pair toggle under the policy. The two shard locks
// are taken sequentially in (rank, id) order with bounded patience —
// the fused batch claim has no bounded variant — and the mutations run
// only after both are held, so an aborted attempt toggles nothing.
func (r *Resilient) PutPairErr(k int) error {
	k2 := r.Partner(k)
	a, b := r.shardOf(k), r.shardOf(k2)
	// Same φ-ordering contract as LockBatch: ascending instance id.
	first, second, kf, ks := a, b, k, k2
	if b.sem.ID() < a.sem.ID() {
		first, second, kf, ks = b, a, k2, k
	}
	return r.policy.Run(func(tx *core.Txn) error {
		if err := r.policy.Acquire(tx, first.sem, tx.CachedMode1(r.writeRef, kf), 0); err != nil {
			return err
		}
		if first != second {
			if err := r.policy.Acquire(tx, second.sem, tx.CachedMode1(r.writeRef, ks), 0); err != nil {
				return err
			}
		}
		if a.m.Get(k) != nil {
			a.m.Remove(k)
			b.m.Remove(k2)
		} else {
			a.m.Put(k, k)
			b.m.Put(k2, k2)
		}
		return nil
	})
}

// GetHedged is the point read as a hedged read: pessimistic bounded
// acquisition of the key mode races the optimistic observation once the
// hedge budget elapses.
func (r *Resilient) GetHedged(k int) (core.Value, resilience.HedgeOutcome, error) {
	sh := r.shardOf(k)
	return resilience.HedgedRead(r.policy,
		func(tx *core.Txn, cancel <-chan struct{}) (core.Value, error) {
			if err := r.policy.AcquireCancel(tx, sh.sem, tx.CachedMode1(r.getRef, k), 0, cancel); err != nil {
				return nil, err
			}
			return sh.m.Get(k), nil
		},
		func(tx *core.Txn) (core.Value, bool) {
			if !tx.Observe(sh.sem, tx.CachedMode1(r.getRef, k), 0) {
				return nil, false
			}
			return sh.m.Get(k), true
		})
}

// ScanHedged is the whole-store count as a hedged read. The pessimistic
// side acquires every shard's values() mode shard-by-shard — ascending
// shard index, which is ascending instance id, the same (rank, id)
// order the batch claim uses — each with bounded patience and the
// shared cancel channel, so a scan stuck behind a slow writer can be
// abandoned mid-prologue with every already-held shard released by the
// section epilogue and the in-flight waiter withdrawn. The optimistic
// side is Scan's validated lock-free count.
func (r *Resilient) ScanHedged() (int, resilience.HedgeOutcome, error) {
	return resilience.HedgedRead(r.policy,
		func(tx *core.Txn, cancel <-chan struct{}) (int, error) {
			for i := range r.shards {
				if err := r.policy.AcquireCancel(tx, r.shards[i].sem, r.scanMode, 0, cancel); err != nil {
					return 0, err
				}
			}
			n := 0
			for i := range r.shards {
				n += r.shards[i].m.Size()
			}
			return n, nil
		},
		func(tx *core.Txn) (int, bool) {
			for i := range r.shards {
				if !tx.Observe(r.shards[i].sem, r.scanMode, 0) {
					return 0, false
				}
			}
			n := 0
			for i := range r.shards {
				n += r.shards[i].m.Size()
			}
			return n, true
		})
}
