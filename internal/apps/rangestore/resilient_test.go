package rangestore

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/resilience"
)

func testPolicy() *resilience.Policy {
	return resilience.New("rs", resilience.Config{
		Patience:    2 * time.Millisecond,
		Retries:     20,
		Backoff:     resilience.Backoff{Base: 20 * time.Microsecond, Max: 500 * time.Microsecond},
		Budget:      &resilience.BudgetConfig{Capacity: 10000, RefillPerSec: 1e6},
		HedgeBudget: 50 * time.Microsecond,
	})
}

func TestResilientPointOps(t *testing.T) {
	r := NewResilient(New(4, 64), testPolicy())
	if err := r.PutErr(3, "x"); err != nil {
		t.Fatalf("PutErr: %v", err)
	}
	v, _, err := r.GetHedged(3)
	if err != nil || v != "x" {
		t.Fatalf("GetHedged(3) = (%v, %v), want (x, nil)", v, err)
	}
	if err := r.PutPairErr(5); err != nil {
		t.Fatalf("PutPairErr: %v", err)
	}
	n, _, err := r.ScanHedged()
	if err != nil || n != 3 {
		t.Fatalf("ScanHedged = (%d, %v), want (3, nil)", n, err)
	}
}

// TestResilientScanOracleHedged hammers hedged scans and hedged point
// reads against policy-guarded pair toggles. PutPairErr keeps the entry
// count even in every serial state (mutations run only after both shard
// locks are held, and a stalled attempt toggles nothing), so ANY hedged
// scan returning an odd count — from the pessimistic side, the
// optimistic side, or a cancelled-loser interleaving — is a torn read
// that escaped validation. Run under -race.
func TestResilientScanOracleHedged(t *testing.T) {
	s := New(8, 256)
	r := NewResilient(s, testPolicy())
	const writers, scanners = 2, 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var scans, hedgeWins, toggles atomic.Int64

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := w
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := r.PutPairErr(k % s.Capacity()); err == nil {
					toggles.Add(1)
				} else if !resilience.Retryable(err) && !errors.Is(err, resilience.ErrBudgetExhausted) {
					t.Errorf("PutPairErr: %v", err)
					return
				}
				k += 7
			}
		}(w)
	}
	for g := 0; g < scanners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := g
			for {
				select {
				case <-stop:
					return
				default:
				}
				n, outcome, err := r.ScanHedged()
				if err != nil {
					if !resilience.Retryable(err) && !errors.Is(err, resilience.ErrBudgetExhausted) {
						t.Errorf("ScanHedged: %v", err)
						return
					}
					continue
				}
				if n%2 != 0 {
					t.Errorf("torn scan: count %d is odd (outcome %v)", n, outcome)
					return
				}
				scans.Add(1)
				if outcome == resilience.HedgeWon {
					hedgeWins.Add(1)
				}
				if _, _, err := r.GetHedged(k % s.Capacity()); err != nil &&
					!resilience.Retryable(err) && !errors.Is(err, resilience.ErrBudgetExhausted) {
					t.Errorf("GetHedged: %v", err)
					return
				}
				k += 3
			}
		}(g)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	if scans.Load() == 0 || toggles.Load() == 0 {
		t.Fatalf("hammer did no work: scans=%d toggles=%d", scans.Load(), toggles.Load())
	}
	t.Logf("scans=%d hedgeWins=%d toggles=%d", scans.Load(), hedgeWins.Load(), toggles.Load())
	for _, sem := range s.Sems() {
		if err := sem.CheckQuiesced(); err != nil {
			t.Fatal(err)
		}
	}
	if n := core.WaitersOutstanding(); n != 0 {
		t.Fatalf("leaked %d waiter(s)", n)
	}
}
