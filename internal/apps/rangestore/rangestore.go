// Package rangestore is a range-sharded key-value store: the second
// workload of the hybrid optimistic/pessimistic experiment
// (benchall -exp optimistic). Keys [0, Capacity) are partitioned into
// contiguous ranges, one shard — an adt.HashMap plus its own Semantic
// lock — per range. Point writes lock one shard's key mode; the pair
// write locks two shards in one fused LockBatch; the scan is the
// read-only section that wants the optimistic envelope, because
// pessimistically it must hold every shard's values() mode at once.
//
// The store doubles as its own consistency oracle: PutPair atomically
// inserts or removes the pair (k, partner(k)) in one section, so the
// total entry count is even in every serial state. A Scan that returns
// an odd count has therefore seen a torn pair write — exactly the
// anomaly version validation must rule out on the lock-free path.
//
// Like gossip's Ours router, this is a hand transcription of the plan
// a synthesized scan/put/pair program would produce: every section runs
// under core.Atomically, acquisitions flow through core.Txn, and the
// optimistic sections observe exactly the modes their fallbacks lock.
package rangestore

import (
	"repro/internal/adt"
	"repro/internal/adtspecs"
	"repro/internal/core"
)

// shard is one contiguous key range: the map and its semantic lock.
type shard struct {
	m   *adt.HashMap
	sem *core.Semantic
}

// Store is the range-sharded map.
type Store struct {
	shards   []shard
	capacity int
	width    int

	writeRef core.SetRef // {put(k,*), remove(k)}
	getRef   core.SetRef // {get(k)}
	scanMode core.ModeID // {values()}
}

// New creates a store of nShards shards covering keys [0, capacity).
// capacity is rounded up to a multiple of nShards.
func New(nShards, capacity int) *Store {
	if nShards < 1 {
		nShards = 1
	}
	width := (capacity + nShards - 1) / nShards
	if width < 1 {
		width = 1
	}
	writeSet := core.SymSetOf(
		core.SymOpOf("put", core.VarArg("k"), core.Star()),
		core.SymOpOf("remove", core.VarArg("k")))
	getSet := core.SymSetOf(core.SymOpOf("get", core.VarArg("k")))
	scanSet := core.SymSetOf(core.SymOpOf("values"))
	tbl := core.NewModeTable(adtspecs.Map(), []core.SymSet{writeSet, getSet, scanSet},
		core.TableOptions{Phi: core.NewPhi(16)})

	s := &Store{
		capacity: width * nShards,
		width:    width,
		writeRef: tbl.Set(writeSet),
		getRef:   tbl.Set(getSet),
		scanMode: tbl.Set(scanSet).Mode(),
	}
	s.shards = make([]shard, nShards)
	for i := range s.shards {
		s.shards[i] = shard{m: adt.NewHashMap(), sem: core.NewSemantic(tbl)}
	}
	return s
}

// Capacity returns the (rounded) key-space size.
func (s *Store) Capacity() int { return s.capacity }

// Partner returns the key paired with k by PutPair.
func (s *Store) Partner(k int) int { return (k + s.capacity/2) % s.capacity }

// Sems returns every shard's semantic lock, for telemetry registration
// and quiescence checks.
func (s *Store) Sems() []*core.Semantic {
	out := make([]*core.Semantic, len(s.shards))
	for i := range s.shards {
		out[i] = s.shards[i].sem
	}
	return out
}

func (s *Store) shardOf(k int) *shard {
	i := (k % s.capacity) / s.width
	return &s.shards[i]
}

// Put stores v under k, pessimistically (a point write can never run
// lock-free: it mutates).
func (s *Store) Put(k int, v core.Value) {
	sh := s.shardOf(k)
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(sh.sem, tx.CachedMode1(s.writeRef, k), 0)
		sh.m.Put(k, v)
	})
}

// PutPair toggles the pair (k, Partner(k)) in one atomic section: both
// present -> both removed, else both inserted. The two shards are
// acquired as one fused LockBatch — the all-or-nothing claim with a
// union waiter mask — so a concurrent pessimistic scan can never see
// one half of the toggle, and an optimistic scan that saw one half can
// never validate (the batch's acquisition bumps each shard's version
// counter, so a scan snapshot taken before the toggle cannot survive
// validation once the toggle's claim stood).
func (s *Store) PutPair(k int) {
	k2 := s.Partner(k)
	a, b := s.shardOf(k), s.shardOf(k2)
	core.Atomically(func(tx *core.Txn) {
		tx.LockBatch(
			core.BatchLock{Sem: a.sem, Mode: s.writeRef.Mode1(k), Rank: 0},
			core.BatchLock{Sem: b.sem, Mode: s.writeRef.Mode1(k2), Rank: 0},
		)
		if a.m.Get(k) != nil {
			a.m.Remove(k)
			b.m.Remove(k2)
		} else {
			a.m.Put(k, k)
			b.m.Put(k2, k2)
		}
	})
}

// Get returns the value under k via the optimistic fast path, falling
// back to the pessimistic point read.
func (s *Store) Get(k int) core.Value {
	sh := s.shardOf(k)
	var v core.Value
	core.Atomically(func(tx *core.Txn) {
		if tx.TryOptimistic(func(tx *core.Txn) bool {
			if !tx.Observe(sh.sem, tx.CachedMode1(s.getRef, k), 0) {
				return false
			}
			v = sh.m.Get(k)
			return true
		}) {
			return
		}
		tx.Lock(sh.sem, tx.CachedMode1(s.getRef, k), 0)
		v = sh.m.Get(k)
	})
	return v
}

// GetPessimistic is the point read under the ordinary prologue — the
// experiment's baseline.
func (s *Store) GetPessimistic(k int) core.Value {
	sh := s.shardOf(k)
	var v core.Value
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(sh.sem, tx.CachedMode1(s.getRef, k), 0)
		v = sh.m.Get(k)
	})
	return v
}

// Scan counts the store's entries via the optimistic fast path:
// observe every shard's values() mode, read every size lock-free, and
// validate. On failure it re-runs under the pessimistic whole-store
// batch. Because PutPair keeps the entry count even in every serial
// state, an odd return would prove a torn read escaped validation.
func (s *Store) Scan() int {
	var n int
	core.Atomically(func(tx *core.Txn) {
		if tx.TryOptimistic(func(tx *core.Txn) bool {
			for i := range s.shards {
				if !tx.Observe(s.shards[i].sem, s.scanMode, 0) {
					return false
				}
			}
			n = 0
			for i := range s.shards {
				n += s.shards[i].m.Size()
			}
			return true
		}) {
			return
		}
		n = s.scanLocked(tx)
	})
	return n
}

// ScanPessimistic counts the entries under the whole-store LockBatch —
// the experiment's baseline scan.
func (s *Store) ScanPessimistic() int {
	var n int
	core.Atomically(func(tx *core.Txn) {
		n = s.scanLocked(tx)
	})
	return n
}

func (s *Store) scanLocked(tx *core.Txn) int {
	locks := make([]core.BatchLock, len(s.shards))
	for i := range s.shards {
		locks[i] = core.BatchLock{Sem: s.shards[i].sem, Mode: s.scanMode, Rank: 0}
	}
	tx.LockBatch(locks...)
	n := 0
	for i := range s.shards {
		n += s.shards[i].m.Size()
	}
	return n
}
