package rangestore

import (
	"sync"
	"testing"
)

func TestPointOps(t *testing.T) {
	s := New(4, 64)
	s.Put(3, "x")
	if got := s.Get(3); got != "x" {
		t.Errorf("Get(3) = %v, want x", got)
	}
	if got := s.GetPessimistic(3); got != "x" {
		t.Errorf("GetPessimistic(3) = %v, want x", got)
	}
	if got := s.Get(4); got != nil {
		t.Errorf("Get(4) = %v, want nil", got)
	}
	if st := s.shardOf(3).sem.Stats(); st.OptimisticHits == 0 {
		t.Errorf("uncontended Get never committed optimistically: %+v", st)
	}
}

func TestPairToggle(t *testing.T) {
	s := New(4, 64)
	s.PutPair(5)
	if n := s.Scan(); n != 2 {
		t.Errorf("Scan after one PutPair = %d, want 2", n)
	}
	if s.Get(5) == nil || s.Get(s.Partner(5)) == nil {
		t.Error("pair halves missing after insert toggle")
	}
	s.PutPair(5)
	if n := s.ScanPessimistic(); n != 0 {
		t.Errorf("Scan after toggle-off = %d, want 0", n)
	}
}

// TestScanOracle hammers optimistic scans against concurrent pair
// toggles: PutPair keeps the count even in every serial state, so a
// validated scan returning an odd count means version validation let a
// torn pair write through.
func TestScanOracle(t *testing.T) {
	s := New(8, 256)
	const writers, scanners, iters = 2, 4, 500
	var wg sync.WaitGroup
	torn := make(chan int, scanners)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.PutPair((w*31 + i*7) % (s.Capacity() / 2))
			}
		}(w)
	}
	for r := 0; r < scanners; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if n := s.Scan(); n%2 != 0 {
					torn <- n
					return
				}
			}
		}()
	}
	wg.Wait()
	close(torn)
	for n := range torn {
		t.Fatalf("validated scan returned odd count %d: torn pair write escaped validation", n)
	}
	var hits, retries uint64
	for _, sem := range s.Sems() {
		st := sem.Stats()
		hits += st.OptimisticHits
		retries += st.OptimisticRetries
	}
	if hits+retries == 0 {
		t.Error("no optimistic attempts recorded during the hammer")
	}
}
