package chaos_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/apps/gossip"
	"repro/internal/apps/intruder"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/modules/plan"
)

// All tests here are named TestChaos* so CI's `-run Chaos` selects the
// whole file; they are sized to finish quickly under -race.

// gossipMix drives a deterministic mixed workload (register/unregister/
// unicast/multicast) with every op shielded against injected faults,
// returning how many ops were absorbed as faults.
func gossipMix(r *gossip.Ours, workers, opsPer int) uint64 {
	var faulted atomic64
	payload := []byte("chaos-payload")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				g := fmt.Sprintf("g%d", (w+i)%4)
				m := fmt.Sprintf("m%d", i%8)
				op := (w*31 + i*7) % 100
				hit := chaos.Shield(func() {
					switch {
					case op < 10:
						r.Register(g, m, gossip.NewConn(m, 0))
					case op < 20:
						r.Unregister(g, m)
					case op < 60:
						r.Unicast(g, m, payload)
					default:
						r.Multicast(g, payload)
					}
				})
				if hit {
					faulted.add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	return faulted.load()
}

type atomic64 struct {
	mu sync.Mutex
	n  uint64
}

func (a *atomic64) add(d uint64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() uint64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }

func seedGossip(r *gossip.Ours) {
	for g := 0; g < 4; g++ {
		for m := 0; m < 8; m++ {
			name := fmt.Sprintf("m%d", m)
			r.Register(fmt.Sprintf("g%d", g), name, gossip.NewConn(name, 0))
		}
	}
}

// TestChaosGossipPanicRecovery injects panics and scheduler delays into
// the router's atomic sections under concurrency and asserts full
// recovery: faults actually fired, every instance quiesced (counters
// zero, waitMask empty, no registered waiters), the waiter free-list
// did not leak, and a fault-free batch afterwards completes.
func TestChaosGossipPanicRecovery(t *testing.T) {
	r := gossip.NewOurs(0, plan.Options{})
	inj := chaos.NewInjector(chaos.Config{
		PanicEvery: 7,
		DelayEvery: 5,
		MaxDelay:   200 * time.Microsecond,
	})
	r.FaultHook = inj.Hook
	seedGossip(r)

	inj.Arm()
	faulted := gossipMix(r, 8, 300)
	inj.Disarm()

	panics, _, delays := inj.Counts()
	if panics == 0 || delays == 0 {
		t.Fatalf("injector idle: %d panics, %d delays", panics, delays)
	}
	if faulted == 0 {
		t.Fatal("no op observed an absorbed fault")
	}
	if err := chaos.CheckRecovered(r.Sems()...); err != nil {
		t.Fatal(err)
	}
	if n := core.WaitersOutstanding(); n != 0 {
		t.Fatalf("waiter free-list leaked: %d outstanding", n)
	}

	// Disarmed recovery batch: everything must succeed.
	if f := gossipMix(r, 4, 100); f != 0 {
		t.Fatalf("disarmed run absorbed %d faults", f)
	}
	if err := chaos.CheckRecovered(r.Sems()...); err != nil {
		t.Fatal(err)
	}
}

// TestChaosIntruderPanicRecovery runs the reassembly pipeline with
// injected mid-section panics: dropped packets are acceptable (their
// flows never complete), leaked locks are not.
func TestChaosIntruderPanicRecovery(t *testing.T) {
	proc := intruder.NewOurs(plan.Options{})
	inj := chaos.NewInjector(chaos.Config{PanicEvery: 13, DelayEvery: 9})
	proc.FaultHook = inj.Hook

	w := intruder.Generate(intruder.Config{Attacks: 10, MaxLength: 64, Flows: 1500, Seed: 1})
	inj.Arm()
	var wg sync.WaitGroup
	var faulted atomic64
	const workers = 8
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for i := wk; i < len(w.Packets); i += workers {
				p := w.Packets[i]
				if chaos.Shield(func() { proc.Process(p) }) {
					faulted.add(1)
				}
				chaos.Shield(func() { proc.Pop() })
			}
		}(wk)
	}
	wg.Wait()
	inj.Disarm()

	if faulted.load() == 0 {
		t.Fatal("no reassembly op observed an absorbed fault")
	}
	if err := chaos.CheckRecovered(proc.Sems()...); err != nil {
		t.Fatal(err)
	}
	if n := core.WaitersOutstanding(); n != 0 {
		t.Fatalf("waiter free-list leaked: %d outstanding", n)
	}
}

// TestChaosSlowHolderWatchdog plants a slow holder inside multicast and
// checks that the stall watchdog observes the blocked acquisition:
// a report naming at least one holder slot and one over-threshold
// waiter with its wait duration.
func TestChaosSlowHolderWatchdog(t *testing.T) {
	r := gossip.NewOurs(0, plan.Options{})
	seedGossip(r)

	release := make(chan struct{})
	var once sync.Once
	r.FaultHook = func(site string) {
		if site == "multicast" {
			once.Do(func() { <-release }) // one deliberately stuck holder
		}
	}

	d := core.NewWatchdog(core.WatchdogConfig{Threshold: 10 * time.Millisecond, Interval: 5 * time.Millisecond})
	for _, s := range r.Sems() {
		d.Watch(s)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); r.Multicast("g0", []byte("x")) }()
	go func() {
		defer wg.Done()
		time.Sleep(20 * time.Millisecond) // let the multicast grab its locks
		r.Register("g0", "m0", gossip.NewConn("m0", 0))
	}()

	deadline := time.After(2 * time.Second)
	var got core.StallReport
	found := false
	for !found {
		select {
		case <-deadline:
			close(release)
			wg.Wait()
			t.Fatal("watchdog never reported the stalled register")
		default:
		}
		for _, rep := range d.Scan() {
			if len(rep.Holders) > 0 && len(rep.Waiters) > 0 {
				got, found = rep, true
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got.Class == "" || got.Holders[0].Mode == "" {
		t.Errorf("report lacks names: %+v", got)
	}
	if got.Waiters[0].Waited < 10*time.Millisecond {
		t.Errorf("waiter under threshold reported: %v", got.Waiters[0].Waited)
	}
	if err := chaos.CheckRecovered(r.Sems()...); err != nil {
		t.Fatal(err)
	}
}

// TestChaosShieldForeignPanic: Shield only absorbs injected faults —
// a genuine bug's panic keeps unwinding (wrapped as SectionPanic).
func TestChaosShieldForeignPanic(t *testing.T) {
	defer func() {
		r := recover()
		sp, ok := r.(*core.SectionPanic)
		if !ok {
			t.Fatalf("expected *core.SectionPanic, got %#v", r)
		}
		if s, ok := sp.Value.(string); !ok || !strings.Contains(s, "real bug") {
			t.Fatalf("wrong wrapped value: %#v", sp.Value)
		}
	}()
	chaos.Shield(func() {
		core.Atomically(func(tx *core.Txn) { panic("real bug") })
	})
	t.Fatal("foreign panic was absorbed")
}
