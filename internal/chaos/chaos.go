// Package chaos is the fault-injection harness of the transaction
// runtime: it plants panics, scheduler delays, and slow lock holders
// inside atomic sections (through the apps' FaultHook seams) and then
// proves full recovery — every slot counter back to zero, no published
// waiter-interest bits, no leaked waiters — via core's quiescence
// introspection. The injection schedule is deterministic (counter
// modulo), so a chaos run is reproducible and cheap enough for CI.
package chaos

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Config selects which faults an Injector plants and how often. Every
// schedule is a counter modulo over armed hook calls, checked in the
// order panic, slow hold, delay (at most one fault fires per call).
type Config struct {
	// PanicEvery panics at every Nth armed hook call (0 = never). The
	// panic carries a Fault value and unwinds through core.Atomically,
	// which releases the section's locks and re-panics a
	// *core.SectionPanic that Shield absorbs.
	PanicEvery int
	// SlowHoldEvery sleeps for SlowHold at every Nth armed hook call
	// (0 = never) — a slow holder, since hooks run with the section's
	// locks held.
	SlowHoldEvery int
	SlowHold      time.Duration
	// DelayEvery injects a scheduler delay at every Nth armed hook call
	// (0 = never): a pseudo-random sleep up to MaxDelay, or a bare
	// Gosched when MaxDelay is zero. Delays shake out interleavings the
	// scheduler would rarely produce on its own.
	DelayEvery int
	MaxDelay   time.Duration
}

// Fault is the panic value an Injector throws: which fault site fired
// and the hook-call ordinal. Shield recognizes it inside a
// *core.SectionPanic; anything else keeps unwinding.
type Fault struct {
	Site string
	N    uint64
}

func (f Fault) String() string {
	return fmt.Sprintf("chaos: injected fault #%d at %q", f.N, f.Site)
}

// Injector plants faults at hook call sites. Arm/Disarm bound the fault
// burst; a disarmed injector's Hook is a cheap counter increment, so
// the hook can stay wired during baseline and recovery phases.
type Injector struct {
	cfg   Config
	armed atomic.Bool
	n     atomic.Uint64

	panics atomic.Uint64
	slows  atomic.Uint64
	delays atomic.Uint64
}

// NewInjector creates a disarmed injector for the given schedule.
func NewInjector(cfg Config) *Injector { return &Injector{cfg: cfg} }

// Arm starts injecting faults; Disarm stops. Both are safe to call
// concurrently with running hooks.
func (i *Injector) Arm()    { i.armed.Store(true) }
func (i *Injector) Disarm() { i.armed.Store(false) }

// Counts reports how many faults of each kind have fired.
func (i *Injector) Counts() (panics, slowHolds, delays uint64) {
	return i.panics.Load(), i.slows.Load(), i.delays.Load()
}

// Hook is the injection point: wire it as the app's FaultHook so it
// runs inside atomic sections with locks held. At most one fault fires
// per call, selected deterministically from the call ordinal.
func (i *Injector) Hook(site string) {
	n := i.n.Add(1)
	if !i.armed.Load() {
		return
	}
	if c := i.cfg.PanicEvery; c > 0 && n%uint64(c) == 0 {
		i.panics.Add(1)
		panic(Fault{Site: site, N: n})
	}
	if c := i.cfg.SlowHoldEvery; c > 0 && n%uint64(c) == 0 {
		i.slows.Add(1)
		time.Sleep(i.cfg.SlowHold)
		return
	}
	if c := i.cfg.DelayEvery; c > 0 && n%uint64(c) == 0 {
		i.delays.Add(1)
		if i.cfg.MaxDelay <= 0 {
			runtime.Gosched()
			return
		}
		// Deterministic pseudo-random delay from the call ordinal
		// (Fibonacci hashing spreads consecutive ordinals).
		time.Sleep(time.Duration(n*2654435761) % i.cfg.MaxDelay)
	}
}

// Shield runs fn and absorbs an injected fault unwinding out of it: a
// *core.SectionPanic whose value is a Fault. It reports whether a fault
// was absorbed. Any other panic — a real bug — keeps unwinding.
func Shield(fn func()) (faulted bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		sp, ok := r.(*core.SectionPanic)
		if !ok {
			panic(r)
		}
		if _, ok := sp.Value.(Fault); !ok {
			panic(r)
		}
		faulted = true
	}()
	fn()
	return false
}

// CheckRecovered verifies full recovery after a fault burst has
// drained: every given instance is quiescent (slot counters zero,
// summaries zero, waitMask empty, no registered waiters). Call it only
// after all in-flight sections have finished.
func CheckRecovered(sems ...*core.Semantic) error {
	for _, s := range sems {
		if err := s.CheckQuiesced(); err != nil {
			return fmt.Errorf("chaos: instance not recovered: %w", err)
		}
	}
	return nil
}
