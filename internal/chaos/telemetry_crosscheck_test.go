package chaos_test

import (
	"testing"
	"time"

	"repro/internal/apps/gossip"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/modules/plan"
	"repro/internal/telemetry"
)

// TestChaosTelemetryCrossCheck pins the agreement between the chaos
// harness's own accounting and the telemetry layer's view of the same
// run: after a faulted burst drains, a telemetry snapshot over the
// router's instances must report zero outstanding holds (what
// CheckRecovered proves by direct inspection), the recovered-panic
// counter delta must equal the injector's panic count exactly (every
// injected panic unwinds through exactly one atomic section, is counted
// there, and is absorbed by Shield), and the registered-waiter total
// must return to its pre-run value. A disagreement in any of the three
// means the observability layer would misreport a real incident.
func TestChaosTelemetryCrossCheck(t *testing.T) {
	panics0 := core.SectionPanicsRecovered()
	aborts0 := core.SectionAborts()
	waiters0 := core.WaitersOutstanding()

	r := gossip.NewOurs(0, plan.Options{})
	inj := chaos.NewInjector(chaos.Config{
		PanicEvery: 7,
		DelayEvery: 5,
		MaxDelay:   200 * time.Microsecond,
	})
	r.FaultHook = inj.Hook
	seedGossip(r)

	inj.Arm()
	faulted := gossipMix(r, 8, 300)
	inj.Disarm()

	panics, _, _ := inj.Counts()
	if panics == 0 || faulted == 0 {
		t.Fatalf("injector idle: %d panics, %d faulted ops", panics, faulted)
	}
	if err := chaos.CheckRecovered(r.Sems()...); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	reg.Register("gossip", "Map", r.Sems()...)
	snap := reg.Snapshot()

	var holds int64
	for _, g := range snap.Groups {
		holds += g.OutstandingHolds
	}
	if holds != 0 {
		t.Errorf("telemetry reports %d outstanding holds on a quiesced router, want 0", holds)
	}
	if got := snap.SectionPanicsRecovered - panics0; got != panics {
		t.Errorf("recovered-panic counter delta = %d, injector fired %d panics", got, panics)
	}
	// Injected faults abort by panic, never by Txn.Abort: the abort
	// counter must not have moved.
	if got := snap.SectionAborts - aborts0; got != 0 {
		t.Errorf("section-abort counter delta = %d during a panic-only chaos run, want 0", got)
	}
	if got := snap.WaitersOutstanding - waiters0; got != 0 {
		t.Errorf("registered-waiter delta = %d after drain, want 0", got)
	}

	// The burst did real locking through these instances — the snapshot
	// must show it (otherwise "0 holds" would be vacuous).
	var acquired uint64
	for _, g := range snap.Groups {
		acquired += g.FastPath + g.Slow
	}
	if acquired == 0 {
		t.Error("telemetry snapshot saw no acquisitions from the chaos burst")
	}
}
