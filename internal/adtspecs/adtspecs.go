// Package adtspecs is the registry of commutativity specifications
// (§5.2, Fig 3b) for the ADT classes used throughout the repository:
// the paper's running examples (Map, Set, Queue) and the evaluation's
// composite modules and applications (Multimap, Deque, Counter,
// PriorityQueue, List, Register).
//
// Each specification relates every pair of methods with a condition
// under which their operations commute; unlisted pairs default to
// "never commute" (conservative).
package adtspecs

import "repro/internal/core"

// Set returns the Fig 3(b) specification of the Set ADT:
//
//	            add(v')  remove(v')  contains(v')  size()  clear()
//	add(v)      true     v≠v'        v≠v'          false   false
//	remove(v)            true        v≠v'          false   false
//	contains(v)                      true          true    false
//	size()                                         true    false
//	clear()                                                true
func Set() *core.Spec {
	s := core.NewSpec("Set",
		core.MethodSig{Name: "add", Arity: 1},
		core.MethodSig{Name: "remove", Arity: 1},
		core.MethodSig{Name: "contains", Arity: 1},
		core.MethodSig{Name: "size", Arity: 0},
		core.MethodSig{Name: "clear", Arity: 0},
	)
	s.Commute("add", "add", core.Always)
	s.Commute("add", "remove", core.ArgsNE(0, 0))
	s.Commute("add", "contains", core.ArgsNE(0, 0))
	s.Commute("remove", "remove", core.Always)
	s.Commute("remove", "contains", core.ArgsNE(0, 0))
	s.Commute("contains", "contains", core.Always)
	s.Commute("contains", "size", core.Always)
	s.Commute("size", "size", core.Always)
	s.Commute("clear", "clear", core.Always)
	s.Observer("contains", "size")
	return s
}

// Map returns the Map ADT specification: operations on distinct keys
// commute; reads on one key commute with each other; writes on one key
// conflict; size/isEmpty conflict with writes. containsKey behaves like
// get.
func Map() *core.Spec {
	s := core.NewSpec("Map",
		core.MethodSig{Name: "get", Arity: 1},
		core.MethodSig{Name: "put", Arity: 2},
		core.MethodSig{Name: "remove", Arity: 1},
		core.MethodSig{Name: "containsKey", Arity: 1},
		core.MethodSig{Name: "putIfAbsent", Arity: 2},
		core.MethodSig{Name: "size", Arity: 0},
		core.MethodSig{Name: "clear", Arity: 0},
		core.MethodSig{Name: "putAll", Arity: 1},
		core.MethodSig{Name: "values", Arity: 0},
	)
	// putAll copies another map wholesale; it conflicts with everything
	// (no Commute entries — the conservative default). values() is a
	// whole-map read: it commutes with every read but no write.
	reads := []string{"get", "containsKey"}
	writes := []string{"put", "remove", "putIfAbsent"}
	for _, r := range reads {
		for _, r2 := range reads {
			s.Commute(r, r2, core.Always)
		}
		for _, w := range writes {
			s.Commute(r, w, core.ArgsNE(0, 0))
		}
		s.Commute(r, "size", core.Always)
	}
	for _, w := range writes {
		for _, w2 := range writes {
			s.Commute(w, w2, core.ArgsNE(0, 0))
		}
	}
	// putIfAbsent commutes with itself on the same key? No: both observe
	// presence; order matters for the return value. Distinct keys only
	// (covered above). remove/remove on one key both end absent but the
	// returned old values differ; keep conservative (ArgsNE, above).
	s.Commute("size", "size", core.Always)
	s.Commute("clear", "clear", core.Always)
	s.Commute("values", "values", core.Always)
	s.Commute("values", "get", core.Always)
	s.Commute("values", "containsKey", core.Always)
	s.Commute("values", "size", core.Always)
	s.Observer("get", "containsKey", "size", "values")
	return s
}

// Queue returns the Queue ADT specification. Enqueues commute with each
// other only under a multiset (pool) semantics; the paper's benchmarks
// (Intruder's work queues) tolerate reordering of concurrently inserted
// elements, which is the standard "commutative enqueue" relaxation used
// for semantic concurrency control. Dequeue conflicts with everything.
func Queue() *core.Spec {
	s := core.NewSpec("Queue",
		core.MethodSig{Name: "enqueue", Arity: 1},
		core.MethodSig{Name: "dequeue", Arity: 0},
		core.MethodSig{Name: "isEmpty", Arity: 0},
		core.MethodSig{Name: "size", Arity: 0},
	)
	s.Commute("enqueue", "enqueue", core.Always)
	s.Commute("isEmpty", "isEmpty", core.Always)
	s.Commute("isEmpty", "size", core.Always)
	s.Commute("size", "size", core.Always)
	s.Observer("isEmpty", "size")
	return s
}

// Multimap returns the Multimap ADT specification (Guava-style,
// key → collection of values), used by the Graph benchmark: operations
// on distinct keys commute, gets commute, puts of distinct (key,value)
// pairs commute, and put/remove commute unless both key and value may
// collide.
func Multimap() *core.Spec {
	s := core.NewSpec("Multimap",
		core.MethodSig{Name: "get", Arity: 1},
		core.MethodSig{Name: "put", Arity: 2},
		core.MethodSig{Name: "remove", Arity: 2},
		core.MethodSig{Name: "removeAll", Arity: 1},
		core.MethodSig{Name: "containsEntry", Arity: 2},
		core.MethodSig{Name: "size", Arity: 0},
	)
	s.Commute("get", "get", core.Always)
	s.Commute("get", "put", core.ArgsNE(0, 0))
	s.Commute("get", "remove", core.ArgsNE(0, 0))
	s.Commute("get", "removeAll", core.ArgsNE(0, 0))
	s.Commute("get", "containsEntry", core.Always)
	s.Commute("put", "put", core.OrCond(core.ArgsNE(0, 0), core.ArgsNE(1, 1)))
	s.Commute("put", "remove", core.OrCond(core.ArgsNE(0, 0), core.ArgsNE(1, 1)))
	s.Commute("put", "removeAll", core.ArgsNE(0, 0))
	s.Commute("put", "containsEntry", core.OrCond(core.ArgsNE(0, 0), core.ArgsNE(1, 1)))
	s.Commute("remove", "remove", core.Always)
	s.Commute("remove", "removeAll", core.ArgsNE(0, 0))
	s.Commute("remove", "containsEntry", core.OrCond(core.ArgsNE(0, 0), core.ArgsNE(1, 1)))
	s.Commute("removeAll", "removeAll", core.Always)
	s.Commute("containsEntry", "containsEntry", core.Always)
	s.Commute("size", "size", core.Always)
	s.Observer("get", "containsEntry", "size")
	return s
}

// Deque returns a double-ended queue specification; only same-end
// insertions commute under pool semantics, so it is deliberately more
// conservative than Queue.
func Deque() *core.Spec {
	s := core.NewSpec("Deque",
		core.MethodSig{Name: "pushFront", Arity: 1},
		core.MethodSig{Name: "pushBack", Arity: 1},
		core.MethodSig{Name: "popFront", Arity: 0},
		core.MethodSig{Name: "popBack", Arity: 0},
		core.MethodSig{Name: "size", Arity: 0},
	)
	s.Commute("pushFront", "pushBack", core.Always)
	s.Commute("size", "size", core.Always)
	s.Observer("size")
	return s
}

// Counter returns a commutative counter specification: increments
// commute with each other (and decrements), reads commute with reads.
func Counter() *core.Spec {
	s := core.NewSpec("Counter",
		core.MethodSig{Name: "inc", Arity: 1},
		core.MethodSig{Name: "dec", Arity: 1},
		core.MethodSig{Name: "read", Arity: 0},
	)
	s.Commute("inc", "inc", core.Always)
	s.Commute("inc", "dec", core.Always)
	s.Commute("dec", "dec", core.Always)
	s.Commute("read", "read", core.Always)
	s.Observer("read")
	return s
}

// PQueue returns a priority-queue specification: inserts commute under
// pool semantics; extractMin conflicts with inserts and itself.
func PQueue() *core.Spec {
	s := core.NewSpec("PQueue",
		core.MethodSig{Name: "insert", Arity: 2},
		core.MethodSig{Name: "extractMin", Arity: 0},
		core.MethodSig{Name: "peekMin", Arity: 0},
		core.MethodSig{Name: "size", Arity: 0},
	)
	s.Commute("insert", "insert", core.Always)
	s.Commute("peekMin", "peekMin", core.Always)
	s.Commute("peekMin", "size", core.Always)
	s.Commute("size", "size", core.Always)
	s.Observer("peekMin", "size")
	return s
}

// List returns an indexed-list specification: reads commute; writes to
// distinct indices commute; append conflicts with reads of unknown
// indices and with size.
func List() *core.Spec {
	s := core.NewSpec("List",
		core.MethodSig{Name: "get", Arity: 1},
		core.MethodSig{Name: "set", Arity: 2},
		core.MethodSig{Name: "append", Arity: 1},
		core.MethodSig{Name: "size", Arity: 0},
	)
	s.Commute("get", "get", core.Always)
	s.Commute("get", "set", core.ArgsNE(0, 0))
	s.Commute("set", "set", core.ArgsNE(0, 0))
	s.Commute("append", "get", core.Always) // existing indices unaffected
	s.Commute("append", "set", core.Always)
	s.Commute("size", "size", core.Always)
	s.Commute("size", "get", core.Always)
	s.Commute("size", "set", core.Always)
	s.Observer("get", "size")
	return s
}

// OrderedMap returns the ordered-map (Treap) specification — the
// range-operation extension of the condition algebra: a range scan
// rangeCount(lo,hi) commutes with put(k,v)/remove(k) exactly when the
// key lies outside the range (k < lo or k > hi). Keys are int64 by the
// ADT's contract, which is what makes the ordered conditions' symbolic
// reasoning over core.IntervalPhi buckets sound.
func OrderedMap() *core.Spec {
	s := core.NewSpec("OrderedMap",
		core.MethodSig{Name: "get", Arity: 1},
		core.MethodSig{Name: "put", Arity: 2},
		core.MethodSig{Name: "remove", Arity: 1},
		core.MethodSig{Name: "rangeCount", Arity: 2},
		core.MethodSig{Name: "size", Arity: 0},
	)
	outside := func(keyIdx int) core.Cond {
		// key < lo  OR  key > hi  (the second op is the range op).
		return core.OrCond(core.ArgsLT(keyIdx, 0), core.ArgsGT(keyIdx, 1))
	}
	s.Commute("get", "get", core.Always)
	s.Commute("get", "put", core.ArgsNE(0, 0))
	s.Commute("get", "remove", core.ArgsNE(0, 0))
	s.Commute("get", "rangeCount", core.Always) // both read
	s.Commute("get", "size", core.Always)
	s.Commute("put", "put", core.ArgsNE(0, 0))
	s.Commute("put", "remove", core.ArgsNE(0, 0))
	s.Commute("put", "rangeCount", outside(0))
	s.Commute("remove", "remove", core.Always)
	s.Commute("remove", "rangeCount", outside(0))
	s.Commute("rangeCount", "rangeCount", core.Always)
	s.Commute("rangeCount", "size", core.Always)
	s.Commute("size", "size", core.Always)
	s.Observer("get", "rangeCount", "size")
	return s
}

// Register returns a read/write register specification (the degenerate
// ADT whose semantic locking is exactly a read-write lock).
func Register() *core.Spec {
	s := core.NewSpec("Register",
		core.MethodSig{Name: "read", Arity: 0},
		core.MethodSig{Name: "write", Arity: 1},
	)
	s.Commute("read", "read", core.Always)
	s.Observer("read")
	return s
}

// All returns the full registry keyed by ADT class name, as the
// synthesizer consumes it.
func All() map[string]*core.Spec {
	return map[string]*core.Spec{
		"Set":        Set(),
		"Map":        Map(),
		"Queue":      Queue(),
		"Multimap":   Multimap(),
		"Deque":      Deque(),
		"Counter":    Counter(),
		"PQueue":     PQueue(),
		"List":       List(),
		"Register":   Register(),
		"OrderedMap": OrderedMap(),
	}
}
