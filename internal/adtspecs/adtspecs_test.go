package adtspecs

import (
	"testing"

	"repro/internal/core"
)

// TestAllValidate: every registered specification is internally
// consistent (condition indices within arities).
func TestAllValidate(t *testing.T) {
	for name, spec := range All() {
		if errs := spec.Validate(); len(errs) != 0 {
			t.Errorf("%s: %v", name, errs)
		}
		if spec.ADT != name {
			t.Errorf("registry key %q != spec name %q", name, spec.ADT)
		}
	}
}

// TestSymmetry: commutativity is symmetric for every pair over a probe
// of concrete operations.
func TestSymmetry(t *testing.T) {
	vals := []core.Value{0, 1, 2}
	for name, spec := range All() {
		var probes []core.Op
		for _, m := range spec.Methods() {
			switch m.Arity {
			case 0:
				probes = append(probes, core.NewOp(m.Name))
			case 1:
				for _, v := range vals {
					probes = append(probes, core.NewOp(m.Name, v))
				}
			case 2:
				for _, v := range vals {
					probes = append(probes, core.NewOp(m.Name, v, v), core.NewOp(m.Name, v, (v.(int)+1)%3))
				}
			}
		}
		for _, a := range probes {
			for _, b := range probes {
				if spec.OpsCommute(a, b) != spec.OpsCommute(b, a) {
					t.Errorf("%s: commutativity of (%s, %s) asymmetric", name, a, b)
				}
			}
		}
	}
}

// TestMapSemantics: spot-checks against sequential Map semantics.
func TestMapSemantics(t *testing.T) {
	m := Map()
	cases := []struct {
		a, b core.Op
		want bool
	}{
		{core.NewOp("get", 1), core.NewOp("get", 1), true},
		{core.NewOp("get", 1), core.NewOp("put", 1, "v"), false},
		{core.NewOp("get", 1), core.NewOp("put", 2, "v"), true},
		{core.NewOp("put", 1, "a"), core.NewOp("put", 1, "b"), false},
		{core.NewOp("put", 1, "a"), core.NewOp("remove", 2), true},
		{core.NewOp("size"), core.NewOp("put", 1, "a"), false},
		{core.NewOp("size"), core.NewOp("get", 1), true},
		{core.NewOp("values"), core.NewOp("get", 1), true},
		{core.NewOp("values"), core.NewOp("put", 1, "a"), false},
		{core.NewOp("putAll", 9), core.NewOp("get", 1), false},
		{core.NewOp("clear"), core.NewOp("clear"), true},
	}
	for _, c := range cases {
		if got := m.OpsCommute(c.a, c.b); got != c.want {
			t.Errorf("Map: commute(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestQueueSemantics: pool-relaxed enqueues commute; dequeues don't.
func TestQueueSemantics(t *testing.T) {
	q := Queue()
	if !q.OpsCommute(core.NewOp("enqueue", 1), core.NewOp("enqueue", 2)) {
		t.Error("enqueues must commute")
	}
	if q.OpsCommute(core.NewOp("enqueue", 1), core.NewOp("dequeue")) {
		t.Error("enqueue/dequeue must conflict")
	}
	if q.OpsCommute(core.NewOp("dequeue"), core.NewOp("dequeue")) {
		t.Error("dequeues must conflict")
	}
	if q.OpsCommute(core.NewOp("enqueue", 1), core.NewOp("isEmpty")) {
		t.Error("enqueue/isEmpty must conflict")
	}
}

// TestMultimapSemantics: the two-argument disequalities.
func TestMultimapSemantics(t *testing.T) {
	mm := Multimap()
	cases := []struct {
		a, b core.Op
		want bool
	}{
		{core.NewOp("put", 1, 2), core.NewOp("put", 1, 2), false},
		{core.NewOp("put", 1, 2), core.NewOp("put", 1, 3), true},
		{core.NewOp("put", 1, 2), core.NewOp("put", 2, 2), true},
		{core.NewOp("put", 1, 2), core.NewOp("remove", 1, 2), false},
		{core.NewOp("put", 1, 2), core.NewOp("remove", 1, 3), true},
		{core.NewOp("get", 1), core.NewOp("put", 1, 2), false},
		{core.NewOp("get", 1), core.NewOp("put", 2, 2), true},
		{core.NewOp("removeAll", 1), core.NewOp("put", 1, 5), false},
		{core.NewOp("removeAll", 1), core.NewOp("put", 2, 5), true},
		{core.NewOp("remove", 1, 2), core.NewOp("remove", 1, 2), true},
	}
	for _, c := range cases {
		if got := mm.OpsCommute(c.a, c.b); got != c.want {
			t.Errorf("Multimap: commute(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestCounterSemantics: increments commute, reads conflict with writes
// (unlisted pair defaults to never).
func TestCounterSemantics(t *testing.T) {
	c := Counter()
	if !c.OpsCommute(core.NewOp("inc", 1), core.NewOp("inc", 5)) ||
		!c.OpsCommute(core.NewOp("inc", 1), core.NewOp("dec", 2)) {
		t.Error("inc/dec must commute")
	}
	if c.OpsCommute(core.NewOp("read"), core.NewOp("inc", 1)) {
		t.Error("read/inc must conflict")
	}
}

// TestRegisterIsRWLock: the degenerate ADT.
func TestRegisterIsRWLock(t *testing.T) {
	r := Register()
	if !r.OpsCommute(core.NewOp("read"), core.NewOp("read")) {
		t.Error("reads commute")
	}
	if r.OpsCommute(core.NewOp("read"), core.NewOp("write", 1)) ||
		r.OpsCommute(core.NewOp("write", 1), core.NewOp("write", 2)) {
		t.Error("writes exclusive")
	}
}

// TestDequeAndPQueueAndList sanity.
func TestDequeAndPQueueAndList(t *testing.T) {
	d := Deque()
	if !d.OpsCommute(core.NewOp("pushFront", 1), core.NewOp("pushBack", 2)) {
		t.Error("opposite-end pushes commute")
	}
	if d.OpsCommute(core.NewOp("pushFront", 1), core.NewOp("popFront")) {
		t.Error("same-end push/pop conflict")
	}
	p := PQueue()
	if !p.OpsCommute(core.NewOp("insert", int64(1), "a"), core.NewOp("insert", int64(2), "b")) {
		t.Error("inserts commute (pool)")
	}
	if p.OpsCommute(core.NewOp("insert", int64(1), "a"), core.NewOp("extractMin")) {
		t.Error("insert/extractMin conflict")
	}
	l := List()
	if !l.OpsCommute(core.NewOp("set", 1, "a"), core.NewOp("set", 2, "b")) {
		t.Error("distinct-index sets commute")
	}
	if l.OpsCommute(core.NewOp("set", 1, "a"), core.NewOp("set", 1, "b")) {
		t.Error("same-index sets conflict")
	}
	if !l.OpsCommute(core.NewOp("append", "x"), core.NewOp("get", 0)) {
		t.Error("append commutes with existing-index reads")
	}
}
