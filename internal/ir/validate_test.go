package ir_test

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/papersec"
)

func TestValidateCleanSections(t *testing.T) {
	for _, sec := range []*ir.Atomic{papersec.Fig1(), papersec.Fig4(), papersec.Fig7(), papersec.Fig9()} {
		if errs := sec.Validate(); len(errs) != 0 {
			t.Errorf("%s: %v", sec.Name, errs)
		}
	}
	if err := ir.ValidateAll([]*ir.Atomic{papersec.Fig1(), papersec.Fig7()}); err != nil {
		t.Error(err)
	}
}

func TestValidateDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		sec  *ir.Atomic
		want string
	}{
		{
			name: "duplicate var",
			sec: &ir.Atomic{Name: "d", Vars: []ir.Param{
				{Name: "m", Type: "Map", IsADT: true},
				{Name: "m", Type: "Map", IsADT: true},
			}},
			want: "declared twice",
		},
		{
			name: "undeclared receiver",
			sec: &ir.Atomic{Name: "u", Body: ir.Block{
				&ir.Call{Recv: "ghost", Method: "get"},
			}},
			want: "is not declared",
		},
		{
			name: "non-ADT receiver",
			sec: &ir.Atomic{Name: "n",
				Vars: []ir.Param{{Name: "k", Type: "int"}},
				Body: ir.Block{&ir.Call{Recv: "k", Method: "get"}},
			},
			want: "not an ADT pointer",
		},
		{
			name: "allocation without declaration",
			sec: &ir.Atomic{Name: "a", Body: ir.Block{
				&ir.Assign{Lhs: "s", NewType: "Set"},
			}},
			want: "needs an ADT variable declaration",
		},
		{
			name: "synthetic input",
			sec: &ir.Atomic{Name: "s", Body: ir.Block{
				&ir.Prologue{},
			}},
			want: "synthetic statement",
		},
		{
			name: "nested in branch",
			sec: &ir.Atomic{Name: "b", Body: ir.Block{
				&ir.If{Cond: ir.OpaqueCond{Text: "c"}, Then: ir.Block{
					&ir.While{Cond: ir.OpaqueCond{Text: "w"}, Body: ir.Block{
						&ir.Call{Recv: "ghost", Method: "get"},
					}},
				}},
			}},
			want: "is not declared",
		},
	}
	for _, c := range cases {
		errs := c.sec.Validate()
		if len(errs) == 0 {
			t.Errorf("%s: expected diagnostics", c.name)
			continue
		}
		found := false
		for _, err := range errs {
			if strings.Contains(err.Error(), c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: diagnostics %v missing %q", c.name, errs, c.want)
		}
	}
}

func TestValidateAllJoins(t *testing.T) {
	bad := &ir.Atomic{Name: "x", Body: ir.Block{&ir.Call{Recv: "g", Method: "f"}}}
	err := ir.ValidateAll([]*ir.Atomic{bad, bad})
	if err == nil || !strings.Contains(err.Error(), ";") {
		t.Errorf("joined error expected, got %v", err)
	}
}
