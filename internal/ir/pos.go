package ir

import (
	"fmt"
	"strings"
)

// StmtPos locates a statement inside an atomic section as a structural
// path from the section body: each step is a block index, qualified by
// the arm taken at a branching statement ("then", "else", "body"). It is
// the positional context shared by Validate diagnostics and the
// internal/verify counterexamples, so both print locations identically.
type StmtPos struct {
	// Section is the section name.
	Section string
	// Path is the structural path, e.g. "body[1].then[0]".
	Path string
}

// String renders the position as "section: path".
func (p StmtPos) String() string {
	if p.Path == "" {
		return p.Section
	}
	return p.Section + ": " + p.Path
}

// PosOf returns the position of a statement in the section, searching
// the block tree by statement identity (pointer equality). The second
// result is false when the statement is not part of the section.
func (a *Atomic) PosOf(target Stmt) (StmtPos, bool) {
	if path, ok := findPath(a.Body, target, "body"); ok {
		return StmtPos{Section: a.Name, Path: path}, true
	}
	return StmtPos{Section: a.Name}, false
}

func findPath(b Block, target Stmt, prefix string) (string, bool) {
	for i, s := range b {
		here := fmt.Sprintf("%s[%d]", prefix, i)
		if s == target {
			return here, true
		}
		switch x := s.(type) {
		case *If:
			if p, ok := findPath(x.Then, target, here+".then"); ok {
				return p, true
			}
			if p, ok := findPath(x.Else, target, here+".else"); ok {
				return p, true
			}
		case *While:
			if p, ok := findPath(x.Body, target, here+".body"); ok {
				return p, true
			}
		case *Optimistic:
			if p, ok := findPath(x.Body, target, here+".opt"); ok {
				return p, true
			}
			if p, ok := findPath(x.Fallback, target, here+".fb"); ok {
				return p, true
			}
		}
	}
	return "", false
}

// StmtText renders a statement as a single line in the paper's notation
// (nested bodies of branching statements are elided to "..."), for use
// in diagnostics and counterexample traces.
func StmtText(s Stmt) string {
	switch x := s.(type) {
	case *If:
		return "if(" + condString(x.Cond) + ") {...}"
	case *While:
		return "while(" + condString(x.Cond) + ") {...}"
	case *Optimistic:
		return "optimistic {...} fallback {...}"
	case nil:
		return "<nil>"
	default:
		var b strings.Builder
		printStmt(&b, s, 0)
		return strings.TrimSuffix(strings.TrimSpace(b.String()), ";")
	}
}

// Trace is an execution path through one section: a sequence of
// statements from the section entry to a point of interest. The
// verifier's counterexamples are Traces.
type Trace struct {
	Sec   *Atomic
	Stmts []Stmt
}

// String renders the trace one statement per line, each with its
// structural position, e.g.
//
//	get: body[0]: LV(map)
//	get: body[1]: v=map.get(k)
func (tr Trace) String() string {
	var b strings.Builder
	for _, s := range tr.Stmts {
		pos, _ := tr.Sec.PosOf(s)
		fmt.Fprintf(&b, "%s: %s\n", pos, StmtText(s))
	}
	return b.String()
}
