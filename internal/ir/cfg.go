package ir

// NodeKind classifies CFG nodes.
type NodeKind uint8

const (
	// KindEntry is the unique section entry.
	KindEntry NodeKind = iota
	// KindExit is the unique section exit.
	KindExit
	// KindStmt is a simple statement (Call, Assign, or a synthetic
	// locking statement).
	KindStmt
	// KindBranch evaluates a condition and forks.
	KindBranch
	// KindJoin merges control flow.
	KindJoin
)

// Node is one CFG node. Stmt points into the structured AST for KindStmt
// nodes; Cond is set for KindBranch nodes.
type Node struct {
	ID    int
	Kind  NodeKind
	Stmt  Stmt
	Cond  Cond
	Succs []int
	Preds []int
}

// CFG is the control-flow graph of one atomic section, with precomputed
// reflexive (reach0) and one-or-more-step (reach1) reachability.
type CFG struct {
	Atomic *Atomic
	Nodes  []*Node
	Entry  int
	Exit   int

	byStmt  map[Stmt]int
	endNode map[Stmt]int
	reach0  [][]bool // path of length ≥ 0
	reach1  [][]bool // path of length ≥ 1
}

// BuildCFG constructs the CFG of an atomic section and computes the
// reachability relations. Branch conditions contribute both outcomes
// (the analysis is path-insensitive except for the null-check reasoning,
// which the optimizer performs structurally).
func BuildCFG(a *Atomic) *CFG {
	g := &CFG{Atomic: a, byStmt: make(map[Stmt]int), endNode: make(map[Stmt]int)}
	g.Entry = g.newNode(KindEntry, nil, nil)
	g.Exit = g.newNode(KindExit, nil, nil)
	last := g.buildBlock(a.Body, g.Entry)
	g.edge(last, g.Exit)
	g.computeReach()
	return g
}

func (g *CFG) newNode(k NodeKind, s Stmt, c Cond) int {
	n := &Node{ID: len(g.Nodes), Kind: k, Stmt: s, Cond: c}
	g.Nodes = append(g.Nodes, n)
	if s != nil {
		g.byStmt[s] = n.ID
	}
	return n.ID
}

func (g *CFG) edge(from, to int) {
	g.Nodes[from].Succs = append(g.Nodes[from].Succs, to)
	g.Nodes[to].Preds = append(g.Nodes[to].Preds, from)
}

// buildBlock threads the block after node `from`, returning the last
// node of the block's straight-line spine.
func (g *CFG) buildBlock(b Block, from int) int {
	cur := from
	for _, s := range b {
		cur = g.buildStmt(s, cur)
	}
	return cur
}

func (g *CFG) buildStmt(s Stmt, from int) int {
	switch x := s.(type) {
	case *If:
		br := g.newNode(KindBranch, s, x.Cond)
		g.edge(from, br)
		thenEnd := g.buildBlock(x.Then, br)
		join := g.newNode(KindJoin, nil, nil)
		g.edge(thenEnd, join)
		if x.Else != nil {
			elseEnd := g.buildBlock(x.Else, br)
			g.edge(elseEnd, join)
		} else {
			g.edge(br, join)
		}
		g.endNode[s] = join
		return join
	case *While:
		br := g.newNode(KindBranch, s, x.Cond)
		g.edge(from, br)
		bodyEnd := g.buildBlock(x.Body, br)
		g.edge(bodyEnd, br) // back edge
		exit := g.newNode(KindJoin, nil, nil)
		g.edge(br, exit)
		g.endNode[s] = exit
		return exit
	default:
		n := g.newNode(KindStmt, s, nil)
		g.edge(from, n)
		g.endNode[s] = n
		return n
	}
}

func (g *CFG) computeReach() {
	n := len(g.Nodes)
	g.reach1 = make([][]bool, n)
	for i := range g.reach1 {
		g.reach1[i] = make([]bool, n)
		for _, s := range g.Nodes[i].Succs {
			g.reach1[i][s] = true
		}
	}
	// Warshall closure for reach1 (≥ 1 step).
	for k := 0; k < n; k++ {
		rk := g.reach1[k]
		for i := 0; i < n; i++ {
			if !g.reach1[i][k] {
				continue
			}
			ri := g.reach1[i]
			for j := 0; j < n; j++ {
				if rk[j] {
					ri[j] = true
				}
			}
		}
	}
	g.reach0 = make([][]bool, n)
	for i := range g.reach0 {
		g.reach0[i] = make([]bool, n)
		copy(g.reach0[i], g.reach1[i])
		g.reach0[i][i] = true
	}
}

// EndNodeOf returns the CFG node reached immediately after the given
// statement completes: the statement's own node for simple statements,
// the join node for an If, and the loop-exit node for a While. It is the
// program point "just after s".
func (g *CFG) EndNodeOf(s Stmt) (int, bool) {
	id, ok := g.endNode[s]
	return id, ok
}

// NodeOf returns the CFG node id of an AST statement (Call, Assign, or
// synthetic). Branching statements map to their branch node.
func (g *CFG) NodeOf(s Stmt) (int, bool) {
	id, ok := g.byStmt[s]
	return id, ok
}

// Reaches reports a path of length ≥ 0 from a to b.
func (g *CFG) Reaches(a, b int) bool { return g.reach0[a][b] }

// ReachesProperly reports a path of length ≥ 1 from a to b (needed for
// self-reachability through loops, as in Fig 9).
func (g *CFG) ReachesProperly(a, b int) bool { return g.reach1[a][b] }

// CallNodes returns the ids of all Call nodes in the section.
func (g *CFG) CallNodes() []int {
	var out []int
	for _, n := range g.Nodes {
		if n.Kind == KindStmt {
			if _, ok := n.Stmt.(*Call); ok {
				out = append(out, n.ID)
			}
		}
	}
	return out
}

// AssignedVar returns the variable a node writes, or "". Both explicit
// assignments and calls that bind their result write a variable.
func (g *CFG) AssignedVar(id int) string {
	n := g.Nodes[id]
	if n.Kind != KindStmt {
		return ""
	}
	switch x := n.Stmt.(type) {
	case *Assign:
		return x.Lhs
	case *Call:
		return x.Assign
	}
	return ""
}

// AssignedBetween reports whether, on some path from l to an execution
// of l', the variable v is written strictly before that execution of l'
// reaches its lock point. Writes at l itself count (they happen after
// the point where a lock before l would be taken); the write performed
// by l' itself does not. This is the "x' is assigned a value along the
// path between l and l'" test of §3.2.
func (g *CFG) AssignedBetween(l, lp int, v string) bool {
	for _, n := range g.Nodes {
		if g.AssignedVar(n.ID) != v {
			continue
		}
		if g.reach0[l][n.ID] && g.reach1[n.ID][lp] {
			return true
		}
	}
	return false
}

// UsedAtOrAfter reports whether some call with receiver v is reachable
// from l by a path of length ≥ 0 (including l itself). This is the
// future-use test of LS(l) in §3.3.
func (g *CFG) UsedAtOrAfter(l int, v string) bool {
	for _, id := range g.CallNodes() {
		if g.Nodes[id].Stmt.(*Call).Recv == v && g.reach0[l][id] {
			return true
		}
	}
	return false
}

// ShortestDistanceFromEntry returns BFS distances from the entry node;
// unreachable nodes get -1. Used by the early-lock-release optimization
// to pick the earliest program point.
func (g *CFG) ShortestDistanceFromEntry() []int {
	dist := make([]int, len(g.Nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[g.Entry] = 0
	queue := []int{g.Entry}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, s := range g.Nodes[u].Succs {
			if dist[s] == -1 {
				dist[s] = dist[u] + 1
				queue = append(queue, s)
			}
		}
	}
	return dist
}

// PostDominates reports whether every path from a to the exit passes
// through b. (b post-dominates a.) Computed by checking that a cannot
// reach the exit in the graph with b removed.
func (g *CFG) PostDominates(b, a int) bool {
	if a == b {
		return true
	}
	// DFS from a to exit avoiding b.
	seen := make([]bool, len(g.Nodes))
	stack := []int{a}
	seen[a] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u == g.Exit {
			return false
		}
		for _, s := range g.Nodes[u].Succs {
			if s != b && !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return true
}
