package ir

import (
	"fmt"
	"strings"
)

// Validate checks an atomic section's well-formedness before synthesis
// and returns every problem found:
//
//   - duplicate variable declarations;
//   - calls whose receiver is undeclared or not an ADT pointer;
//   - ADT pointer variables used as plain assignment targets of
//     non-pointer expressions are permitted (conservative), but a new
//     allocation assigned to an undeclared variable is flagged;
//   - synthetic locking statements present in the input (they are the
//     synthesizer's output, not its input).
//
// Diagnostics carry the statement's structural position (see StmtPos),
// in the same "section: path" form the internal/verify counterexamples
// use.
func (a *Atomic) Validate() []error {
	var errs []error
	seen := map[string]bool{}
	for _, p := range a.Vars {
		if p.Name == "" {
			errs = append(errs, fmt.Errorf("%s: variable with empty name", a.Name))
			continue
		}
		if seen[p.Name] {
			errs = append(errs, fmt.Errorf("%s: variable %q declared twice", a.Name, p.Name))
		}
		seen[p.Name] = true
	}

	at := func(s Stmt) string {
		pos, _ := a.PosOf(s)
		return pos.String()
	}
	var walk func(b Block)
	walk = func(b Block) {
		for _, s := range b {
			switch x := s.(type) {
			case *Call:
				if x.Recv == "" {
					errs = append(errs, fmt.Errorf("%s: call %s with empty receiver", at(s), x.Method))
					continue
				}
				p, ok := a.Var(x.Recv)
				if !ok {
					errs = append(errs, fmt.Errorf("%s: receiver %q of %s.%s is not declared",
						at(s), x.Recv, x.Recv, x.Method))
				} else if !p.IsADT {
					errs = append(errs, fmt.Errorf("%s: receiver %q of method %s is not an ADT pointer",
						at(s), x.Recv, x.Method))
				}
			case *Assign:
				if x.NewType != "" {
					if p, ok := a.Var(x.Lhs); !ok || !p.IsADT {
						errs = append(errs, fmt.Errorf("%s: allocation %q = new %s needs an ADT variable declaration",
							at(s), x.Lhs, x.NewType))
					}
				}
			case *If:
				walk(x.Then)
				walk(x.Else)
			case *While:
				walk(x.Body)
			case *Prologue, *Epilogue, *LV, *LV2, *UnlockAllVar, *LockBatch, *Observe, *Optimistic:
				errs = append(errs, fmt.Errorf("%s: synthetic statement %T in synthesis input", at(s), s))
			}
		}
	}
	walk(a.Body)
	return errs
}

// ValidateAll validates several sections and joins the diagnostics into
// one error (nil when everything is well-formed).
func ValidateAll(secs []*Atomic) error {
	var msgs []string
	for _, sec := range secs {
		for _, err := range sec.Validate() {
			msgs = append(msgs, err.Error())
		}
	}
	if len(msgs) == 0 {
		return nil
	}
	return fmt.Errorf("ir: %s", strings.Join(msgs, "; "))
}
