package ir

import (
	"fmt"
	"strings"
)

// Print renders an atomic section in the paper's notation (one statement
// per line), used by the golden tests that reproduce Figs 2, 13–15, 17
// and 26–28.
func Print(a *Atomic) string {
	var b strings.Builder
	fmt.Fprintf(&b, "atomic %s {\n", a.Name)
	printBlock(&b, a.Body, 1)
	b.WriteString("}\n")
	return b.String()
}

func printBlock(b *strings.Builder, blk Block, depth int) {
	for _, s := range blk {
		printStmt(b, s, depth)
	}
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	switch x := s.(type) {
	case *Prologue:
		indent(b, depth)
		b.WriteString("LOCAL_SET.init(); // prologue\n")
	case *Epilogue:
		indent(b, depth)
		b.WriteString("foreach(t : LOCAL_SET) t.unlockAll(); // epilogue\n")
	case *LV:
		indent(b, depth)
		b.WriteString(lvString(x))
		b.WriteString(";\n")
	case *LV2:
		indent(b, depth)
		if x.NoLocalSet {
			fmt.Fprintf(b, "lock2(%s, %s)", strings.Join(x.Vars, ","), setString(x.Set, x.Generic))
		} else {
			fmt.Fprintf(b, "LV2(%s%s)", strings.Join(x.Vars, ","), setSuffix(x.Set, x.Generic))
		}
		b.WriteString(";\n")
	case *UnlockAllVar:
		indent(b, depth)
		if x.Guarded {
			fmt.Fprintf(b, "if(%s!=null) %s.unlockAll();\n", x.Var, x.Var)
		} else {
			fmt.Fprintf(b, "%s.unlockAll();\n", x.Var)
		}
	case *LockBatch:
		indent(b, depth)
		parts := make([]string, len(x.Entries))
		for i, e := range x.Entries {
			parts[i] = fmt.Sprintf("[%s%s]", strings.Join(e.Vars, ","), setSuffix(e.Set, e.Generic))
		}
		fmt.Fprintf(b, "lockBatch(%s);\n", strings.Join(parts, ", "))
	case *Observe:
		indent(b, depth)
		fmt.Fprintf(b, "observe(%s%s);\n", strings.Join(x.Vars, ","), setSuffix(x.Set, x.Generic))
	case *Optimistic:
		indent(b, depth)
		b.WriteString("optimistic {\n")
		printBlock(b, x.Body, depth+1)
		indent(b, depth)
		b.WriteString("} fallback {\n")
		printBlock(b, x.Fallback, depth+1)
		indent(b, depth)
		b.WriteString("}\n")
	case *Call:
		indent(b, depth)
		if x.Assign != "" {
			fmt.Fprintf(b, "%s=", x.Assign)
		}
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = exprString(a)
		}
		fmt.Fprintf(b, "%s.%s(%s);\n", x.Recv, x.Method, strings.Join(args, ", "))
	case *Assign:
		indent(b, depth)
		if x.NewType != "" {
			fmt.Fprintf(b, "%s=new %s();\n", x.Lhs, x.NewType)
		} else {
			fmt.Fprintf(b, "%s=%s;\n", x.Lhs, exprString(x.Rhs))
		}
	case *If:
		indent(b, depth)
		fmt.Fprintf(b, "if(%s) {\n", condString(x.Cond))
		printBlock(b, x.Then, depth+1)
		if len(x.Else) > 0 {
			indent(b, depth)
			b.WriteString("} else {\n")
			printBlock(b, x.Else, depth+1)
		}
		indent(b, depth)
		b.WriteString("}\n")
	case *While:
		indent(b, depth)
		fmt.Fprintf(b, "while(%s) {\n", condString(x.Cond))
		printBlock(b, x.Body, depth+1)
		indent(b, depth)
		b.WriteString("}\n")
	default:
		indent(b, depth)
		fmt.Fprintf(b, "/* unknown stmt %T */\n", s)
	}
}

func lvString(x *LV) string {
	if x.NoLocalSet {
		lock := fmt.Sprintf("%s.lock(%s)", x.Var, setString(x.Set, x.Generic))
		if x.Guarded {
			return fmt.Sprintf("if(%s!=null) %s", x.Var, lock)
		}
		return lock
	}
	return fmt.Sprintf("LV(%s%s)", x.Var, setSuffix(x.Set, x.Generic))
}

func setString(set interface{ String() string }, generic bool) string {
	if generic {
		return "+"
	}
	return set.String()
}

func setSuffix(set interface{ String() string }, generic bool) string {
	if generic {
		return ""
	}
	return ", " + set.String()
}

func exprString(e Expr) string {
	switch x := e.(type) {
	case VarRef:
		return x.Name
	case Lit:
		return fmt.Sprint(x.Val)
	case Opaque:
		return x.Text
	case nil:
		return "?"
	default:
		return fmt.Sprintf("%v", e)
	}
}

func condString(c Cond) string {
	switch x := c.(type) {
	case IsNull:
		return x.Var + "==null"
	case NotNull:
		return x.Var + "!=null"
	case OpaqueCond:
		return x.Text
	default:
		return "?"
	}
}
