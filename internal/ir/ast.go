// Package ir defines the intermediate representation of client atomic
// sections (§2.1 of the paper): a small structured language of ADT
// method calls, assignments, conditionals and loops, plus the synthetic
// locking statements the synthesizer inserts (prologue/epilogue, LV, LV2,
// lock, unlockAll). It also provides a control-flow graph with the
// reachability and dataflow queries the synthesis algorithm needs.
//
// The paper's client language is Java with atomic blocks; the IR is the
// language-independent core of that. The go/ast frontend (internal/gosrc)
// translates annotated Go functions into this IR, and the pretty-printer
// renders synthesized sections in the paper's notation for the golden
// tests of Figs 2, 13–15, 17, 18 and 26–28.
package ir

import "repro/internal/core"

// Expr is an expression. The synthesis algorithm only needs to know
// which variables an expression reads and whether it is a literal, so
// the expression language is deliberately shallow.
type Expr interface{ exprNode() }

// VarRef reads a (thread-local) program variable.
type VarRef struct{ Name string }

// Lit is a literal value.
type Lit struct{ Val core.Value }

// Opaque is an arbitrary pure computation over thread-local state; Reads
// lists the variables it mentions. Text is used for printing only.
type Opaque struct {
	Text  string
	Reads []string
}

func (VarRef) exprNode() {}
func (Lit) exprNode()    {}
func (Opaque) exprNode() {}

// Cond is a branch condition. IsNull/NotNull conditions are recognized
// by the null-check-removal optimization (Appendix A); everything else
// is opaque.
type Cond interface{ condNode() }

// IsNull tests x == null.
type IsNull struct{ Var string }

// NotNull tests x != null.
type NotNull struct{ Var string }

// OpaqueCond is any other boolean expression; Reads lists mentioned
// variables and Text is used for printing.
type OpaqueCond struct {
	Text  string
	Reads []string
}

func (IsNull) condNode()     {}
func (NotNull) condNode()    {}
func (OpaqueCond) condNode() {}

// Stmt is a statement of an atomic section.
type Stmt interface{ stmtNode() }

// Call invokes an ADT method: [Assign =] Recv.Method(Args...). Recv is a
// pointer variable naming the ADT instance. If Assign names an ADT
// pointer variable the call is also a pointer update (e.g.
// "set = map.get(id)"), which the restrictions-graph construction and
// the backward refinement treat as a kill of Assign.
type Call struct {
	Recv   string
	Method string
	Args   []Expr
	Assign string // "" when the result is unused or not bound
}

// Assign binds a variable: Lhs = Rhs. When Rhs is nil and NewType is
// non-empty the statement is an allocation "Lhs = new NewType()" (ADT
// constructors are pure, §2.1, so allocation is not a shared-state
// operation but it is a pointer kill and yields a non-null value).
type Assign struct {
	Lhs     string
	Rhs     Expr
	NewType string
}

// If is a two-armed conditional; Else may be nil.
type If struct {
	Cond Cond
	Then Block
	Else Block
}

// While is a pre-test loop.
type While struct {
	Cond Cond
	Body Block
}

// Block is a statement sequence.
type Block []Stmt

func (*Call) stmtNode()   {}
func (*Assign) stmtNode() {}
func (*If) stmtNode()     {}
func (*While) stmtNode()  {}

// ---- Synthetic statements inserted by the synthesizer ----

// Prologue initializes LOCAL_SET (§3.1). Guard additionally demands a
// panic-guarded epilogue: the emitted section must release LOCAL_SET on
// every exit path — normal return, early unlock, abort, or panic — by
// wrapping the section body in core.Atomically. The synthesizer always
// sets Guard, making every synthesized section panic-safe by
// construction; an unguarded Prologue is only constructible by hand.
type Prologue struct {
	Guard bool
}

// Epilogue unlocks every ADT in LOCAL_SET (§3.1).
type Epilogue struct{}

// LV is the locking macro of Fig 5 applied to Var: lock the ADT pointed
// to by Var (with symbolic set Set, or the generic lock(+) when Generic)
// unless it is null or already in LOCAL_SET. Guarded indicates the
// "if(x!=null)" form used after LOCAL_SET elision (Fig 27); when the
// null check is proven redundant, Guarded is false and NoLocalSet true
// (Fig 17 / Fig 2).
type LV struct {
	Var        string
	Set        core.SymSet
	Generic    bool
	NoLocalSet bool // LOCAL_SET elided (Appendix A)
	Guarded    bool // retains the explicit null check
}

// LV2 locks several same-class variables in dynamic unique-id order
// (Fig 12).
type LV2 struct {
	Vars       []string
	Set        core.SymSet
	Generic    bool
	NoLocalSet bool
}

// UnlockAllVar is "if(x!=null) x.unlockAll()" (or unguarded when
// Guarded is false), produced by LOCAL_SET elision and possibly moved
// earlier by the early-lock-release optimization (Appendix A).
type UnlockAllVar struct {
	Var     string
	Guarded bool
}

// BatchEntry is one constituent of a fused prologue acquisition: the
// variables to lock (one for a fused LV, several for a fused LV2 —
// same-class variables locked in dynamic unique-id order at run time),
// their symbolic set, and the flags of the statement it was fused from.
type BatchEntry struct {
	Vars       []string
	Set        core.SymSet
	Generic    bool
	NoLocalSet bool
	Guarded    bool
}

// LockBatch is a fused prologue: consecutive LV/LV2 insertions merged
// into one batched runtime acquisition (core.Txn.LockBatch). Entries
// are ordered by ascending equivalence-class rank; fusion never merges
// or reorders across a rank boundary, so the entry sequence realizes
// the same topological order of §3.3 the unfused statements did.
// Within one entry, same-rank variables order dynamically by unique id
// exactly as LV2 does.
type LockBatch struct {
	Entries []BatchEntry
}

// Observe is the optimistic counterpart of LV/LV2 inside an Optimistic
// body: instead of locking the ADT pointed to by Vars it snapshots the
// version counter of the mode the pessimistic section would take
// (core.Txn.Observe), for end-of-body validation. Several same-class
// variables share one Observe exactly as they share an LV2 — observation
// acquires nothing, so no dynamic ordering is needed, only one snapshot
// per instance. Guarded retains the explicit null check of the LV it
// replaced.
type Observe struct {
	Vars    []string
	Set     core.SymSet
	Generic bool
	Guarded bool
}

// Optimistic is the hybrid execution envelope (core.Txn.TryOptimistic):
// Body is the certified read-only variant of the section, with every
// lock statement replaced by an Observe; Fallback is the unchanged
// pessimistic expansion (prologue, LV/LV2/LockBatch, epilogue). The
// runtime runs Body lock-free, validates the observations, and on
// mismatch discards Body's results and re-runs Fallback. The synthesizer
// emits this node only for sections it proved read-only, and
// internal/verify independently certifies both halves.
type Optimistic struct {
	Body     Block
	Fallback Block
}

func (*Prologue) stmtNode()     {}
func (*Epilogue) stmtNode()     {}
func (*LV) stmtNode()           {}
func (*LV2) stmtNode()          {}
func (*UnlockAllVar) stmtNode() {}
func (*LockBatch) stmtNode()    {}
func (*Observe) stmtNode()      {}
func (*Optimistic) stmtNode()   {}

// Param declares a variable visible in an atomic section: a pointer to
// an ADT instance (IsADT) or a plain thread-local value. Type names the
// ADT class for pointer variables (the default equivalence-class
// abstraction groups pointers by this type, §3.2). NonNull records that
// the variable is known non-null on entry (globals initialized at
// startup, receiver-style parameters).
type Param struct {
	Name    string
	Type    string
	IsADT   bool
	NonNull bool
}

// Atomic is one atomic section: a named block with its variable
// declarations. Vars must declare every variable used in the body
// (pointer variables and thread-local values alike); variables assigned
// in the body need not be pre-declared but may be.
type Atomic struct {
	Name string
	Vars []Param
	Body Block
}

// Var returns the declaration of a variable, if present.
func (a *Atomic) Var(name string) (Param, bool) {
	for _, p := range a.Vars {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// IsADTVar reports whether name is declared as an ADT pointer.
func (a *Atomic) IsADTVar(name string) bool {
	p, ok := a.Var(name)
	return ok && p.IsADT
}

// ADTType returns the declared ADT class of a pointer variable.
func (a *Atomic) ADTType(name string) string {
	p, _ := a.Var(name)
	return p.Type
}

// Clone returns a deep copy of the atomic section (the synthesizer
// transforms copies, leaving the input intact).
func (a *Atomic) Clone() *Atomic {
	out := &Atomic{Name: a.Name, Vars: append([]Param(nil), a.Vars...)}
	out.Body = cloneBlock(a.Body)
	return out
}

func cloneBlock(b Block) Block {
	out := make(Block, len(b))
	for i, s := range b {
		out[i] = cloneStmt(s)
	}
	return out
}

func cloneStmt(s Stmt) Stmt {
	switch x := s.(type) {
	case *Call:
		c := *x
		c.Args = append([]Expr(nil), x.Args...)
		return &c
	case *Assign:
		c := *x
		return &c
	case *If:
		return &If{Cond: x.Cond, Then: cloneBlock(x.Then), Else: cloneBlock(x.Else)}
	case *While:
		return &While{Cond: x.Cond, Body: cloneBlock(x.Body)}
	case *Prologue:
		cp := *x
		return &cp
	case *Epilogue:
		return &Epilogue{}
	case *LV:
		c := *x
		return &c
	case *LV2:
		c := *x
		c.Vars = append([]string(nil), x.Vars...)
		return &c
	case *UnlockAllVar:
		c := *x
		return &c
	case *LockBatch:
		c := &LockBatch{Entries: make([]BatchEntry, len(x.Entries))}
		for i, e := range x.Entries {
			e.Vars = append([]string(nil), e.Vars...)
			c.Entries[i] = e
		}
		return c
	case *Observe:
		c := *x
		c.Vars = append([]string(nil), x.Vars...)
		return &c
	case *Optimistic:
		return &Optimistic{Body: cloneBlock(x.Body), Fallback: cloneBlock(x.Fallback)}
	default:
		panic("ir: unknown statement type in clone")
	}
}

// exprReads appends the variables read by e to dst.
func exprReads(e Expr, dst []string) []string {
	switch x := e.(type) {
	case VarRef:
		return append(dst, x.Name)
	case Opaque:
		return append(dst, x.Reads...)
	default:
		return dst
	}
}

// condReads appends the variables read by c to dst.
func condReads(c Cond, dst []string) []string {
	switch x := c.(type) {
	case IsNull:
		return append(dst, x.Var)
	case NotNull:
		return append(dst, x.Var)
	case OpaqueCond:
		return append(dst, x.Reads...)
	default:
		return dst
	}
}
