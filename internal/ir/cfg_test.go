package ir_test

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/papersec"
)

func callNodeByMethodArg(t *testing.T, g *ir.CFG, recv, method string) int {
	t.Helper()
	for _, id := range g.CallNodes() {
		c := g.Nodes[id].Stmt.(*ir.Call)
		if c.Recv == recv && c.Method == method {
			return id
		}
	}
	t.Fatalf("no call %s.%s in CFG", recv, method)
	return -1
}

func TestCFGFig1Shape(t *testing.T) {
	a := papersec.Fig1()
	g := ir.BuildCFG(a)
	calls := g.CallNodes()
	if len(calls) != 6 {
		t.Fatalf("Fig 1 has %d call nodes, want 6", len(calls))
	}
	get := callNodeByMethodArg(t, g, "map", "get")
	put := callNodeByMethodArg(t, g, "map", "put")
	remove := callNodeByMethodArg(t, g, "map", "remove")
	enq := callNodeByMethodArg(t, g, "queue", "enqueue")

	if !g.ReachesProperly(get, put) {
		t.Error("put must be reachable from get")
	}
	if g.ReachesProperly(put, get) {
		t.Error("get must not be reachable from put (no loop)")
	}
	if !g.ReachesProperly(enq, remove) {
		t.Error("remove must be reachable from enqueue")
	}
	if g.ReachesProperly(get, get) {
		t.Error("no self-reachability without a loop")
	}
}

func TestCFGFig9Loop(t *testing.T) {
	a := papersec.Fig9()
	g := ir.BuildCFG(a)
	get := callNodeByMethodArg(t, g, "map", "get")
	size := callNodeByMethodArg(t, g, "set", "size")
	if !g.ReachesProperly(size, size) {
		t.Error("set.size must reach itself through the loop (Fig 9)")
	}
	if !g.ReachesProperly(size, get) {
		t.Error("map.get must be reachable from set.size through the back edge")
	}
	// set is assigned between two dynamic occurrences of set.size.
	if !g.AssignedBetween(size, size, "set") {
		t.Error("set must be assigned between loop iterations of set.size")
	}
	// map is never reassigned.
	if g.AssignedBetween(get, size, "map") {
		t.Error("map is never assigned")
	}
}

func TestAssignedBetweenFig7(t *testing.T) {
	a := papersec.Fig7()
	g := ir.BuildCFG(a)
	get1 := callNodeByMethodArg(t, g, "m", "get") // first get (s1)
	add1 := callNodeByMethodArg(t, g, "s1", "add")
	add2 := callNodeByMethodArg(t, g, "s2", "add")

	// Example 3.2: s1 is changed between m.get(key1) and s1.add(1)
	// (the assignment happens at the get itself).
	if !g.AssignedBetween(get1, add1, "s1") {
		t.Error("s1 assigned between m.get and s1.add")
	}
	// s2 is assigned by the second get, between get1 and s2.add.
	if !g.AssignedBetween(get1, add2, "s2") {
		t.Error("s2 assigned between m.get(key1) and s2.add")
	}
	// The write of l' itself does not count: nothing assigns s1
	// strictly between s1.add(1) and q.enqueue(s1).
	enq := callNodeByMethodArg(t, g, "q", "enqueue")
	if g.AssignedBetween(add1, enq, "s1") {
		t.Error("s1 not assigned between s1.add and q.enqueue")
	}
}

func TestUsedAtOrAfter(t *testing.T) {
	a := papersec.Fig1()
	g := ir.BuildCFG(a)
	get := callNodeByMethodArg(t, g, "map", "get")
	enq := callNodeByMethodArg(t, g, "queue", "enqueue")
	addX := callNodeByMethodArg(t, g, "set", "add")

	if !g.UsedAtOrAfter(get, "map") {
		t.Error("map used at get itself")
	}
	if !g.UsedAtOrAfter(addX, "map") {
		t.Error("map.remove is after set.add")
	}
	if !g.UsedAtOrAfter(enq, "queue") {
		t.Error("queue used at enqueue itself")
	}
	if g.UsedAtOrAfter(enq, "set") {
		t.Error("set is not a receiver at or after queue.enqueue")
	}
}

func TestPostDominates(t *testing.T) {
	a := papersec.Fig1()
	g := ir.BuildCFG(a)
	get := callNodeByMethodArg(t, g, "map", "get")
	addX := callNodeByMethodArg(t, g, "set", "add")
	enq := callNodeByMethodArg(t, g, "queue", "enqueue")
	if !g.PostDominates(addX, get) {
		t.Error("set.add(x) post-dominates map.get")
	}
	if g.PostDominates(enq, get) {
		t.Error("queue.enqueue is conditional; it cannot post-dominate map.get")
	}
	if !g.PostDominates(get, get) {
		t.Error("a node post-dominates itself")
	}
}

func TestShortestDistance(t *testing.T) {
	g := ir.BuildCFG(papersec.Fig4())
	d := g.ShortestDistanceFromEntry()
	if d[g.Entry] != 0 {
		t.Error("entry distance must be 0")
	}
	size := callNodeByMethodArg(t, g, "x", "size")
	add := callNodeByMethodArg(t, g, "y", "add")
	if !(d[size] < d[add]) {
		t.Errorf("size (%d) should be closer to entry than add (%d)", d[size], d[add])
	}
	if d[g.Exit] <= d[add] {
		t.Error("exit must be after the last call")
	}
}

func TestClone(t *testing.T) {
	a := papersec.Fig1()
	c := a.Clone()
	if ir.Print(a) != ir.Print(c) {
		t.Error("clone must print identically")
	}
	// Mutating the clone must not affect the original.
	c.Body = append(ir.Block{&ir.Prologue{}}, c.Body...)
	if strings.Contains(ir.Print(a), "LOCAL_SET") {
		t.Error("mutating clone leaked into original")
	}
}

func TestPrintFig1(t *testing.T) {
	got := ir.Print(papersec.Fig1())
	want := `atomic fig1 {
  set=map.get(id);
  if(set==null) {
    set=new Set();
    map.put(id, set);
  }
  set.add(x);
  set.add(y);
  if(flag) {
    queue.enqueue(set);
    map.remove(id);
  }
}
`
	if got != want {
		t.Errorf("Print(Fig1) =\n%s\nwant\n%s", got, want)
	}
}

func TestPrintSynthetic(t *testing.T) {
	a := &ir.Atomic{Name: "s", Body: ir.Block{
		&ir.Prologue{},
		&ir.LV{Var: "map", Generic: true},
		&ir.LV2{Vars: []string{"s1", "s2"}, Generic: true},
		&ir.UnlockAllVar{Var: "q", Guarded: true},
		&ir.Epilogue{},
	}}
	got := ir.Print(a)
	for _, want := range []string{
		"LOCAL_SET.init(); // prologue",
		"LV(map);",
		"LV2(s1,s2);",
		"if(q!=null) q.unlockAll();",
		"foreach(t : LOCAL_SET) t.unlockAll(); // epilogue",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("printed output missing %q:\n%s", want, got)
		}
	}
}

func TestAtomicVarHelpers(t *testing.T) {
	a := papersec.Fig1()
	if !a.IsADTVar("map") || a.IsADTVar("id") || a.IsADTVar("nope") {
		t.Error("IsADTVar misclassifies")
	}
	if a.ADTType("set") != "Set" {
		t.Errorf("ADTType(set) = %q", a.ADTType("set"))
	}
	if p, ok := a.Var("queue"); !ok || !p.NonNull {
		t.Error("queue must be declared non-null")
	}
}
