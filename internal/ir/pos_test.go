package ir

import (
	"strings"
	"testing"
)

func TestPosOfAndTrace(t *testing.T) {
	get := &Call{Recv: "m", Method: "get", Args: []Expr{VarRef{Name: "k"}}, Assign: "v"}
	add := &Call{Recv: "s", Method: "add", Args: []Expr{VarRef{Name: "v"}}}
	inner := &Assign{Lhs: "s", NewType: "Set"}
	cond := &If{Cond: IsNull{Var: "v"}, Then: Block{inner, add}}
	sec := &Atomic{
		Name: "demo",
		Vars: []Param{
			{Name: "m", Type: "Map", IsADT: true},
			{Name: "s", Type: "Set", IsADT: true},
			{Name: "k"}, {Name: "v"},
		},
		Body: Block{get, cond},
	}

	for _, tc := range []struct {
		stmt Stmt
		want string
	}{
		{get, "demo: body[0]"},
		{cond, "demo: body[1]"},
		{inner, "demo: body[1].then[0]"},
		{add, "demo: body[1].then[1]"},
	} {
		pos, ok := sec.PosOf(tc.stmt)
		if !ok {
			t.Fatalf("PosOf(%s): not found", StmtText(tc.stmt))
		}
		if pos.String() != tc.want {
			t.Errorf("PosOf(%s) = %q, want %q", StmtText(tc.stmt), pos.String(), tc.want)
		}
	}
	if _, ok := sec.PosOf(&Call{Recv: "m", Method: "get"}); ok {
		t.Errorf("PosOf found a statement that is not in the section")
	}

	tr := Trace{Sec: sec, Stmts: []Stmt{get, cond, add}}
	got := tr.String()
	for _, line := range []string{
		"demo: body[0]: v=m.get(k)",
		"demo: body[1]: if(v==null) {...}",
		"demo: body[1].then[1]: s.add(v)",
	} {
		if !strings.Contains(got, line) {
			t.Errorf("trace lacks %q:\n%s", line, got)
		}
	}
}

// TestValidatePositions pins the positional form of Validate
// diagnostics to the same "section: path" rendering the verifier's
// counterexamples use.
func TestValidatePositions(t *testing.T) {
	bad := &Call{Recv: "ghost", Method: "get"}
	sec := &Atomic{
		Name: "demo",
		Vars: []Param{{Name: "m", Type: "Map", IsADT: true}, {Name: "c"}},
		Body: Block{
			&If{Cond: OpaqueCond{Text: "c", Reads: []string{"c"}}, Then: Block{bad}},
		},
	}
	errs := sec.Validate()
	if len(errs) != 1 {
		t.Fatalf("got %d errors, want 1: %v", len(errs), errs)
	}
	want := "demo: body[0].then[0]: "
	if !strings.HasPrefix(errs[0].Error(), want) {
		t.Errorf("error %q does not start with position %q", errs[0].Error(), want)
	}
}
