// Package controlplane is the adaptive feedback loop over the lock
// runtime's tunable knobs (internal/core/tuning.go): a Controller
// periodically snapshots a telemetry.Registry, derives per-group
// signals from the counter deltas — conflict share of acquisitions,
// optimistic validation-failure rate, stall pressure, measured wait
// time — and retunes every registered instance's knobs through the
// core.Tuner surface.
//
// The loop is split observe/decide/apply:
//
//	observe — one Registry.Snapshot per tick; signals are deltas
//	          between consecutive snapshots, never lifetime totals, so
//	          the controller reacts to what the workload is doing NOW.
//	decide  — pure regime functions (DecideSpin, DecideGate,
//	          DecideSummaryScan) map signals to desired knob settings.
//	          They are deliberately coarse three-regime policies: a
//	          feedback controller chasing precision on noisy counters
//	          oscillates, one picking among a few well-separated
//	          settings converges.
//	apply   — a decision is applied only after it has been reproduced
//	          on DecideStreak consecutive ticks (hysteresis), and each
//	          apply starts a cooldown during which the knob holds
//	          still. The controller therefore never flaps between
//	          regimes on boundary workloads; the cost is reaction
//	          latency of DecideStreak ticks.
//
// Controller state (current regime, live knob values, raw signals) is
// exported through the registry's policy-source hook, so wherever
// /debug/semlock is mounted the controller shows up alongside the
// breaker and budget rows with zero extra wiring.
package controlplane

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Signals are one group's observed behavior over the last tick.
type Signals struct {
	// AcqSamples is the number of acquisitions in the interval
	// (fast + slow); deciders hold below MinAcqSamples.
	AcqSamples uint64 `json:"acq_samples"`
	// ConflictRate is the slow-path share of acquisitions: how often an
	// acquisition found a conflicting holder.
	ConflictRate float64 `json:"conflict_rate"`
	// OptSamples is the number of completed optimistic attempts in the
	// interval (validated commits plus discarded re-runs). Observe-time
	// refusals are not samples: they carry no information about whether
	// optimistic work survives, only that a holder was present.
	OptSamples uint64 `json:"opt_samples"`
	// OptFailRate is the validation-failure share of those attempts.
	OptFailRate float64 `json:"opt_fail_rate"`
	// OptRetriesDelta is the raw validation-failure count behind
	// OptFailRate, kept so the controller can pool gate evidence across
	// sample-starved ticks without re-deriving counts from a float.
	OptRetriesDelta uint64 `json:"opt_retries_delta"`
	// OptRefusalRate is observe-time turn-aways per completed attempt —
	// diagnostic only (it measures fallback pressure, largely
	// self-inflicted when the gate is closed), never a decider input.
	OptRefusalRate float64 `json:"opt_refusal_rate"`
	// WaitsDelta is the number of parked waits in the interval.
	WaitsDelta uint64 `json:"waits_delta"`
	// AvgWaitNanos is mean measured blocking time per wait (0 unless
	// wait timing was on).
	AvgWaitNanos float64 `json:"avg_wait_nanos"`
	// StallRate is stall events per second (from the StallFeed when
	// wired, else from the group's stall-counter delta).
	StallRate float64 `json:"stall_rate"`
}

// signalsFrom derives the interval signals from two consecutive
// snapshots of one group. Counter deltas are clamped at zero: group
// membership can shrink between snapshots (provider-backed groups), and
// a negative delta means "restarted population", not negative work.
func signalsFrom(prev, cur telemetry.GroupStats, dt time.Duration) Signals {
	d := func(a, b uint64) uint64 {
		if b < a {
			return 0
		}
		return b - a
	}
	fast := d(prev.FastPath, cur.FastPath)
	slow := d(prev.Slow, cur.Slow)
	hits := d(prev.OptimisticHits, cur.OptimisticHits)
	retries := d(prev.OptimisticRetries, cur.OptimisticRetries)
	refusals := d(prev.OptimisticRefusals, cur.OptimisticRefusals)
	waits := d(prev.Waits, cur.Waits)
	stalls := d(prev.Stalls, cur.Stalls)
	var waitNanos int64
	if cur.WaitNanos > prev.WaitNanos {
		waitNanos = cur.WaitNanos - prev.WaitNanos
	}
	sig := Signals{
		AcqSamples:      fast + slow,
		OptSamples:      hits + retries,
		OptRetriesDelta: retries,
		WaitsDelta:      waits,
	}
	if sig.AcqSamples > 0 {
		sig.ConflictRate = float64(slow) / float64(sig.AcqSamples)
	}
	if sig.OptSamples > 0 {
		sig.OptFailRate = float64(retries) / float64(sig.OptSamples)
		sig.OptRefusalRate = float64(refusals) / float64(sig.OptSamples)
	}
	if waits > 0 {
		sig.AvgWaitNanos = float64(waitNanos) / float64(waits)
	}
	if dt > 0 {
		sig.StallRate = float64(stalls) / dt.Seconds()
	}
	return sig
}

// ---------------------------------------------------------------------
// Decision policies
// ---------------------------------------------------------------------

// Regime thresholds. The bands are deliberately wide apart (a decade or
// more between opposite decisions) so a workload sitting between two
// regimes maps stably to one of them instead of straddling a knife
// edge; the hysteresis streak handles whatever noise remains.
const (
	spinContendedAt = 0.05 // conflict share where longer spinning starts paying
	spinSaturatedAt = 0.40 // conflict share where spinning only burns CPU
	// The gate thresholds follow the re-execution cost model rather than
	// intuition about "low" failure rates. A failed optimistic attempt
	// wastes at most one section body — often less, because observation
	// refuses outright (no body runs at all) while a conflicting holder
	// is visible. The pessimistic envelope it would replace costs
	// multiples of a body for the whole-structure sections that dominate
	// optimistic traffic: real lock acquisitions, plus every writer
	// blocked for the section's full duration. Optimism therefore
	// amortizes up to surprisingly high failure rates, and the measured
	// rate is itself biased upward whenever the gate has recently been
	// closed — the sparse probe traffic collides with the serialized
	// pessimistic fallback the closure caused. Only when nearly every
	// attempt re-executes is closing clearly right; the band between the
	// thresholds is left to the per-instance default gate, which
	// resolves the gray zone locally.
	gateHostileAt  = 0.85 // validation-failure share where optimism is hopeless
	gateFriendlyAt = 0.55 // failure share below which optimism still amortizes
	summaryOnAt     = 0.10 // conflict share where summary-guided scans amortize
	summaryOffAt    = 0.01 // conflict share where exact scans win back
)

// Spin regimes. "calm" is the untuned default; "contended" spins longer
// to dodge the park/unpark round trip while holders churn quickly;
// "saturated" parks almost immediately — with many holders ahead, every
// spin iteration is wasted CPU that the holders themselves need.
var (
	spinCalm      = core.DefaultSpinBounds()
	spinContended = core.SpinBounds{Min: 1, Max: 16}
	spinSaturated = core.SpinBounds{Min: 1, Max: 2}
)

// Gate regimes. "hostile" closes fast (1/8 failures over a short
// window) and stays closed long; "friendly" needs three quarters of a
// long window failing before it closes and probes back quickly. The
// friendly window is deliberately much longer than the failure bursts
// the regime is expected to ride out: validation failures arrive
// correlated — one conflicting write invalidates every optimist whose
// read window contains it, a burst the size of the concurrent-reader
// population — and a short window sampled inside one burst reads as
// near-total failure even when the long-run rate is far below
// break-even. The controller only selects this regime after measuring
// a sustained sub-break-even rate, so the gate's own trigger is set
// where that measurement would have to be wrong by 3x to matter.
var (
	gateHostile  = core.OptGateParams{Window: 32, DisableNum: 1, DisableDen: 8, ProbeInterval: 16384}
	gateNeutral  = core.DefaultOptGateParams()
	gateFriendly = core.OptGateParams{Window: 1024, DisableNum: 3, DisableDen: 4, ProbeInterval: 1024}
)

// DecideSpin maps the group's conflict regime to spin bounds. The
// second result names the regime (for state export and hysteresis
// keying); "hold" keeps the current bounds.
func DecideSpin(sig Signals, minSamples uint64) (core.SpinBounds, string) {
	switch {
	case sig.AcqSamples < minSamples:
		return core.SpinBounds{}, "hold"
	case sig.ConflictRate >= spinSaturatedAt:
		return spinSaturated, "saturated"
	case sig.ConflictRate >= spinContendedAt:
		return spinContended, "contended"
	default:
		return spinCalm, "calm"
	}
}

// DecideGate maps the group's optimistic validation-failure regime to
// gate parameters; "hold" keeps the current ones (too few attempts to
// judge — including an optimism-free workload, whose gate is idle
// anyway).
func DecideGate(sig Signals, minSamples uint64) (core.OptGateParams, string) {
	switch {
	case sig.OptSamples < minSamples:
		return core.OptGateParams{}, "hold"
	case sig.OptFailRate >= gateHostileAt:
		return gateHostile, "hostile"
	case sig.OptFailRate <= gateFriendlyAt:
		return gateFriendly, "friendly"
	default:
		return gateNeutral, "neutral"
	}
}

// DecideSummaryScan maps the conflict regime to summary-scan usage:
// contended conflict checks amortize the summary read, near-idle ones
// are cheaper exact. Between the thresholds the current setting holds.
func DecideSummaryScan(sig Signals, cur bool, minSamples uint64) (bool, string) {
	switch {
	case sig.AcqSamples < minSamples:
		return cur, "hold"
	case sig.ConflictRate >= summaryOnAt:
		return true, "scan"
	case sig.ConflictRate <= summaryOffAt:
		return false, "exact"
	default:
		return cur, "hold"
	}
}

// ---------------------------------------------------------------------
// Hysteresis
// ---------------------------------------------------------------------

// hyst is per-knob flap damping: a decision differing from the applied
// setting must repeat on `streakNeed` consecutive ticks before Step
// reports it applicable, and each apply starts a cooldown during which
// every decision is ignored. Keys are regime names — comparing regimes
// rather than raw values keeps "hold" decisions from resetting streaks.
type hyst struct {
	applied  string // regime currently in force ("" = startup default)
	pending  string
	streak   int
	cooldown int
}

// Step feeds one tick's desired regime; it returns true when the
// desire has persisted long enough and should be applied now.
//
// "hold" freezes the pending streak rather than resetting it: hold
// means "no evidence this tick" (sample floor not met, dead band), and
// no-evidence must not be conflated with contradicting evidence. A
// mostly-closed gate produces decidable signals only every few ticks —
// if the starved ticks in between wiped the streak, two consecutive
// agreeing decisions could never accumulate and the knob would be
// pinned at whatever it started as. Only an opposing decision, a
// re-decision of the applied regime, or a cooldown resets the streak.
func (h *hyst) Step(desired string, streakNeed, cooldownTicks int) bool {
	if h.cooldown > 0 {
		h.cooldown--
		h.pending, h.streak = "", 0
		return false
	}
	if desired == "hold" {
		return false
	}
	if desired == h.applied {
		h.pending, h.streak = "", 0
		return false
	}
	if desired != h.pending {
		h.pending, h.streak = desired, 0
	}
	h.streak++
	if h.streak < streakNeed {
		return false
	}
	h.applied = desired
	h.pending, h.streak = "", 0
	h.cooldown = cooldownTicks
	return true
}

// ---------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------

// Config tunes a Controller. Registry is required; everything else has
// working defaults.
type Config struct {
	// Registry supplies both the observations (Snapshot) and the retune
	// targets (Groups). Required.
	Registry *telemetry.Registry
	// Interval is the tick period. Default 250ms.
	Interval time.Duration
	// Feed, when set, supplies the windowed stall rate; otherwise the
	// per-group stall-counter deltas stand in.
	Feed *telemetry.StallFeed
	// Watchdog, when set, has its sampling interval retuned: quartered
	// while stalls are flowing, restored when they stop.
	Watchdog *core.Watchdog
	// DecideStreak is how many consecutive ticks must agree on a regime
	// change before it is applied. Default 2.
	DecideStreak int
	// CooldownTicks is how many ticks a knob holds still after an
	// apply. Default 4.
	CooldownTicks int
	// ManageWaitTiming lets the controller toggle global wait-time
	// sampling: on while waits or stalls are flowing (so AvgWaitNanos
	// and the stall bounds mean something), off again after a quiet
	// spell. Off by default — the process may have its own policy.
	ManageWaitTiming bool
	// MinAcqSamples / MinOptSamples are the per-tick sample floors
	// below which the spin/summary and gate deciders hold. Defaults
	// 256 and 64.
	MinAcqSamples uint64
	MinOptSamples uint64
}

func (cfg Config) withDefaults() Config {
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.DecideStreak <= 0 {
		cfg.DecideStreak = 2
	}
	if cfg.CooldownTicks <= 0 {
		cfg.CooldownTicks = 4
	}
	if cfg.MinAcqSamples == 0 {
		cfg.MinAcqSamples = 256
	}
	if cfg.MinOptSamples == 0 {
		cfg.MinOptSamples = 64
	}
	return cfg
}

// groupKey identifies one registry row.
type groupKey struct{ group, class string }

// groupState is the controller's memory of one group.
type groupState struct {
	prev     telemetry.GroupStats
	havePrev bool
	sig      Signals

	spinH, gateH, sumH hyst
	applies            uint64

	// gateStarve counts consecutive sample-starved ticks spent in the
	// applied hostile regime; at gateExploreTicks the controller runs an
	// exploration epoch (see Tick). explorations counts those epochs.
	gateStarve   int
	explorations uint64

	// optAccSamples/optAccRetries pool gate evidence across ticks whose
	// own optimistic-sample count stays below MinOptSamples: a closed
	// gate admits only sparse probe bursts per interval, and discarding
	// each sub-floor tick would starve the gate decider indefinitely.
	// Reset whenever the gate decider receives a decidable signal.
	optAccSamples uint64
	optAccRetries uint64
}

// Controller is the adaptive control plane. Create with New, then
// either Start the background ticker or drive Tick directly (tests and
// benchmarks do the latter for determinism).
type Controller struct {
	cfg Config

	mu     sync.Mutex
	groups map[groupKey]*groupState
	ticks  uint64

	// wait-timing management
	waitOn     bool
	quietTicks int

	// watchdog management
	wdBase   time.Duration
	wdFast   bool
	wdCalm   int
	lastTick time.Time

	stop chan struct{}
	done chan struct{}
}

// waitQuietTicks is how many consecutive no-wait ticks turn managed
// wait timing back off; same damping role as CooldownTicks but for a
// global switch with a global cost.
const waitQuietTicks = 8

// gateExploreTicks is how many consecutive sample-starved ticks a group
// may sit in the hostile gate regime before the controller reopens the
// gate to re-measure. This is a backstop, not the primary recovery
// path: the gate's own probe point reopens it periodically, and a
// workload whose refusal handling lets the pessimistic queue drain
// (see internal/bench yieldStore.Refresh) recovers through ordinary
// probe measurements well before this fires. Large enough that a
// genuinely hostile workload spends only a small duty cycle re-proving
// itself (DecideStreak open ticks per gateExploreTicks closed ones).
const gateExploreTicks = 64

// New creates a controller. It does not start ticking; call Start, or
// Tick directly.
func New(cfg Config) *Controller {
	if cfg.Registry == nil {
		panic("controlplane: Config.Registry is required")
	}
	c := &Controller{cfg: cfg.withDefaults(), groups: map[groupKey]*groupState{}}
	if c.cfg.Watchdog != nil {
		c.wdBase = c.cfg.Watchdog.Interval()
	}
	return c
}

// Start launches the background ticker and registers the controller's
// state rows with the registry (policy source "controlplane"). Safe to
// call once; Stop undoes both.
func (c *Controller) Start() {
	c.mu.Lock()
	if c.stop != nil {
		c.mu.Unlock()
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	stop, done := c.stop, c.done
	c.mu.Unlock()
	c.cfg.Registry.RegisterPolicySource("controlplane", c.State)
	go func() {
		defer close(done)
		t := time.NewTicker(c.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.Tick()
			}
		}
	}()
}

// Stop halts the ticker, unregisters the state rows, and — when the
// controller managed wait timing — turns it back off. Knob values stay
// where the controller left them; call ResetKnobs to restore defaults.
func (c *Controller) Stop() {
	c.mu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	managedOn := c.waitOn
	c.waitOn = false
	c.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
		c.cfg.Registry.UnregisterPolicySource("controlplane")
	}
	if c.cfg.ManageWaitTiming && managedOn {
		core.SetWaitTiming(false)
	}
	if c.cfg.Watchdog != nil && c.wdBase > 0 {
		c.cfg.Watchdog.SetInterval(c.wdBase)
	}
}

// ResetKnobs restores every registered instance to the default knob
// settings (benchmark harnesses use it between profiles).
func (c *Controller) ResetKnobs() {
	for _, g := range c.cfg.Registry.Groups() {
		for _, s := range g.Sems {
			s.SetSpinBounds(core.DefaultSpinBounds())
			s.SetOptGateParams(core.DefaultOptGateParams())
			s.SetSummaryScan(s.SummaryMaintained())
		}
	}
}

// Tick runs one observe/decide/apply round. Exported so tests and
// benchmark harnesses can drive the controller deterministically.
func (c *Controller) Tick() {
	snap := c.cfg.Registry.Snapshot()
	groups := c.cfg.Registry.Groups()

	stats := make(map[groupKey]telemetry.GroupStats, len(snap.Groups))
	for _, g := range snap.Groups {
		stats[groupKey{g.Group, g.Class}] = g
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.ticks++
	now := time.Now()
	dt := c.cfg.Interval
	if !c.lastTick.IsZero() {
		if d := now.Sub(c.lastTick); d > 0 {
			dt = d
		}
	}
	c.lastTick = now

	feedRate := -1.0
	if c.cfg.Feed != nil {
		feedRate = c.cfg.Feed.Rate()
	}

	anyWaits := false
	stallTotal := 0.0
	for _, g := range groups {
		if len(g.Sems) == 0 {
			continue
		}
		k := groupKey{g.Group, g.Class}
		cur, ok := stats[k]
		if !ok {
			continue
		}
		st := c.groups[k]
		if st == nil {
			st = &groupState{}
			c.groups[k] = st
		}
		sig := Signals{}
		if st.havePrev {
			sig = signalsFrom(st.prev, cur, dt)
		}
		st.prev, st.havePrev = cur, true
		if feedRate >= 0 {
			sig.StallRate = feedRate
		}
		st.sig = sig
		stallTotal += sig.StallRate
		if sig.WaitsDelta > 0 {
			anyWaits = true
		}

		// Knobs are kept in step across a group's instances, so the
		// first instance's current values stand for all.
		lead := g.Sems[0]

		if _, regime := DecideSpin(sig, c.cfg.MinAcqSamples); st.spinH.Step(regime, c.cfg.DecideStreak, c.cfg.CooldownTicks) {
			b, _ := DecideSpin(sig, c.cfg.MinAcqSamples)
			for _, s := range g.Sems {
				s.SetSpinBounds(b)
			}
			st.applies++
		}
		// The gate decider reads pooled evidence: a tick that clears
		// MinOptSamples on its own decides from its fresh signal, but a
		// mostly-closed gate admits only sparse probe bursts — a trickle
		// of samples per tick that would individually be discarded as
		// undersampled. Pool the trickle until it clears the floor, then
		// decide from the pooled rate; either way a decidable signal
		// resets the pool so stale evidence does not linger.
		gsig := sig
		st.optAccSamples += sig.OptSamples
		st.optAccRetries += sig.OptRetriesDelta
		if sig.OptSamples < c.cfg.MinOptSamples && st.optAccSamples >= c.cfg.MinOptSamples {
			gsig.OptSamples = st.optAccSamples
			gsig.OptFailRate = float64(st.optAccRetries) / float64(st.optAccSamples)
		}
		if gsig.OptSamples >= c.cfg.MinOptSamples {
			st.optAccSamples, st.optAccRetries = 0, 0
		}
		// A closed gate starves its own evidence: with optimism parked,
		// the only validation samples are sparse probes, and those
		// collide with the serialized pessimistic fallback the closure
		// itself caused, so the measured failure rate stays pinned high
		// no matter what the workload now looks like. After enough
		// sample-starved ticks in the hostile regime, run an exploration
		// epoch: reopen the gate and let the following ticks decide from
		// a healthy open-gate measurement. A genuinely hostile workload
		// re-earns its closure within DecideStreak ticks; a wrongly
		// closed one is released for good.
		if _, regime := DecideGate(gsig, c.cfg.MinOptSamples); regime == "hold" && st.gateH.applied == "hostile" {
			st.gateStarve++
			if st.gateStarve >= gateExploreTicks {
				st.gateStarve = 0
				st.gateH = hyst{}
				st.explorations++
				for _, s := range g.Sems {
					s.SetOptGateParams(gateFriendly)
				}
			}
		} else {
			st.gateStarve = 0
		}
		if _, regime := DecideGate(gsig, c.cfg.MinOptSamples); st.gateH.Step(regime, c.cfg.DecideStreak, c.cfg.CooldownTicks) {
			p, _ := DecideGate(gsig, c.cfg.MinOptSamples)
			for _, s := range g.Sems {
				s.SetOptGateParams(p)
			}
			st.applies++
		}
		if _, regime := DecideSummaryScan(sig, lead.SummaryScanNow(), c.cfg.MinAcqSamples); st.sumH.Step(regime, c.cfg.DecideStreak, c.cfg.CooldownTicks) {
			on, _ := DecideSummaryScan(sig, lead.SummaryScanNow(), c.cfg.MinAcqSamples)
			for _, s := range g.Sems {
				s.SetSummaryScan(on)
			}
			st.applies++
		}
	}

	// Global wait-timing management: on at the first sign of parked
	// waiters or stalls (so the next interval's AvgWaitNanos is real),
	// off again after a sustained quiet spell.
	if c.cfg.ManageWaitTiming {
		active := anyWaits || stallTotal > 0
		if active {
			c.quietTicks = 0
			if !c.waitOn {
				c.waitOn = true
				core.SetWaitTiming(true)
			}
		} else if c.waitOn {
			c.quietTicks++
			if c.quietTicks >= waitQuietTicks {
				c.waitOn = false
				c.quietTicks = 0
				core.SetWaitTiming(false)
			}
		}
	}

	// Watchdog sampling: quarter the interval while stalls are flowing,
	// restore after the same quiet spell the wait switch uses.
	if c.cfg.Watchdog != nil && c.wdBase > 0 {
		if stallTotal > 0 {
			c.wdCalm = 0
			if !c.wdFast {
				c.wdFast = true
				iv := c.wdBase / 4
				if iv < time.Millisecond {
					iv = time.Millisecond
				}
				c.cfg.Watchdog.SetInterval(iv)
			}
		} else if c.wdFast {
			c.wdCalm++
			if c.wdCalm >= waitQuietTicks {
				c.wdFast = false
				c.wdCalm = 0
				c.cfg.Watchdog.SetInterval(c.wdBase)
			}
		}
	}
}

// Ticks returns how many observe/decide/apply rounds have run.
func (c *Controller) Ticks() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ticks
}

// Applies returns the total number of knob applications across groups.
func (c *Controller) Applies() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n uint64
	for _, st := range c.groups {
		n += st.applies
	}
	return n
}

// State renders the controller's per-group state as policy rows —
// current regimes, live knob values, and raw signals — for
// Snapshot.Policies and /debug/semlock. Registered automatically by
// Start; callable directly for tests.
func (c *Controller) State() []telemetry.PolicyStats {
	groups := c.cfg.Registry.Groups()
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []telemetry.PolicyStats
	for _, g := range groups {
		if len(g.Sems) == 0 {
			continue
		}
		st := c.groups[groupKey{g.Group, g.Class}]
		if st == nil {
			continue
		}
		k := g.Sems[0].KnobsNow()
		regime := func(h hyst) string {
			if h.applied == "" {
				return "default"
			}
			return h.applied
		}
		row := telemetry.PolicyStats{
			Policy: fmt.Sprintf("controlplane/%s/%s", g.Group, g.Class),
			Kind:   "controller",
			State: fmt.Sprintf("spin=%s gate=%s summary=%s",
				regime(st.spinH), regime(st.gateH), regime(st.sumH)),
			Counters: map[string]uint64{
				"applies":       st.applies,
				"ticks":         c.ticks,
				"spin_min":      uint64(k.Spin.Min),
				"spin_max":      uint64(k.Spin.Max),
				"gate_window":   uint64(k.OptGate.Window),
				"gate_num":      uint64(k.OptGate.DisableNum),
				"gate_den":      uint64(k.OptGate.DisableDen),
				"gate_probe":    uint64(k.OptGate.ProbeInterval),
				"summary_scan":  boolCounter(k.SummaryScan),
				"wait_timing":   boolCounter(core.WaitTimingEnabled()),
				"mode_memo_lim": uint64(core.ModeMemoLimit()),
				"gate_explores": st.explorations,
				"gate_starve":   uint64(st.gateStarve),
				"gate_acc":      st.optAccSamples,
			},
			Rates: map[string]float64{
				"conflict_rate":    st.sig.ConflictRate,
				"opt_fail_rate":    st.sig.OptFailRate,
				"opt_refusal_rate": st.sig.OptRefusalRate,
				"stall_rate":       st.sig.StallRate,
				"avg_wait_ns":      st.sig.AvgWaitNanos,
			},
		}
		out = append(out, row)
	}
	return out
}

func boolCounter(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
