package controlplane

import (
	"testing"
	"time"

	"repro/internal/adtspecs"
	"repro/internal/apps/rangestore"
	"repro/internal/core"
	"repro/internal/telemetry"
)

func TestHysteresisStreakAndCooldown(t *testing.T) {
	var h hyst
	// A single tick of desire is not enough at streak 2.
	if h.Step("contended", 2, 3) {
		t.Fatal("applied after one tick, want streak of 2")
	}
	if h.Step("contended", 2, 3) != true {
		t.Fatal("not applied after the streak completed")
	}
	if h.applied != "contended" {
		t.Fatalf("applied regime = %q", h.applied)
	}
	// Cooldown: three ticks of a different desire are swallowed.
	for i := 0; i < 3; i++ {
		if h.Step("calm", 2, 3) {
			t.Fatalf("applied during cooldown tick %d", i)
		}
	}
	// Cooldown over; the streak must still be re-earned from scratch.
	if h.Step("calm", 2, 3) {
		t.Fatal("applied on first post-cooldown tick")
	}
	if !h.Step("calm", 2, 3) {
		t.Fatal("not applied after post-cooldown streak")
	}
	// An interrupted streak resets: A, B, B needs two more Bs? No — B
	// twice in a row after the interruption suffices; the A tick must
	// not count toward B's streak.
	h = hyst{applied: "calm"}
	h.Step("saturated", 2, 0)
	if h.Step("contended", 2, 0) {
		t.Fatal("applied contended with streak broken by saturated")
	}
	if !h.Step("contended", 2, 0) {
		t.Fatal("contended not applied after its own streak")
	}
	// "hold" means no evidence, and must FREEZE the pending streak, not
	// reset it — a mostly-closed gate decides only every few ticks, and
	// the starved ticks in between must not wipe agreeing decisions.
	h = hyst{applied: "calm"}
	h.Step("saturated", 2, 0)
	h.Step("hold", 2, 0)
	if !h.Step("saturated", 2, 0) {
		t.Fatal("hold reset the pending streak; no-evidence must freeze it")
	}
	// A re-decision of the applied regime is contradicting evidence and
	// does reset.
	h = hyst{applied: "calm"}
	h.Step("saturated", 2, 0)
	h.Step("calm", 2, 0)
	if h.Step("saturated", 2, 0) {
		t.Fatal("re-decided applied regime did not reset the pending streak")
	}
}

func TestDecideRegimes(t *testing.T) {
	spin := func(rate float64, samples uint64) string {
		_, r := DecideSpin(Signals{ConflictRate: rate, AcqSamples: samples}, 100)
		return r
	}
	if got := spin(0.9, 10); got != "hold" {
		t.Fatalf("undersampled spin regime = %q, want hold", got)
	}
	if got := spin(0.01, 1000); got != "calm" {
		t.Fatalf("calm spin regime = %q", got)
	}
	if got := spin(0.10, 1000); got != "contended" {
		t.Fatalf("contended spin regime = %q", got)
	}
	if got := spin(0.50, 1000); got != "saturated" {
		t.Fatalf("saturated spin regime = %q", got)
	}
	b, _ := DecideSpin(Signals{ConflictRate: 0.5, AcqSamples: 1000}, 100)
	if b != spinSaturated {
		t.Fatalf("saturated bounds = %+v", b)
	}

	gate := func(rate float64, samples uint64) string {
		_, r := DecideGate(Signals{OptFailRate: rate, OptSamples: samples}, 64)
		return r
	}
	if got := gate(0.9, 10); got != "hold" {
		t.Fatalf("undersampled gate regime = %q, want hold", got)
	}
	if got := gate(0.95, 1000); got != "hostile" {
		t.Fatalf("hostile gate regime = %q", got)
	}
	if got := gate(0.005, 1000); got != "friendly" {
		t.Fatalf("friendly gate regime = %q", got)
	}
	// A ~40% failure rate still amortizes — re-executing four attempts
	// in ten costs less than always paying the pessimistic envelope —
	// so the regime stays lenient, not hostile.
	if got := gate(0.40, 1000); got != "friendly" {
		t.Fatalf("moderate-failure gate regime = %q, want friendly", got)
	}
	if got := gate(0.70, 1000); got != "neutral" {
		t.Fatalf("neutral gate regime = %q", got)
	}

	if on, r := DecideSummaryScan(Signals{ConflictRate: 0.2, AcqSamples: 1000}, false, 100); !on || r != "scan" {
		t.Fatalf("contended summary decision = (%v, %q)", on, r)
	}
	if on, r := DecideSummaryScan(Signals{ConflictRate: 0.005, AcqSamples: 1000}, true, 100); on || r != "exact" {
		t.Fatalf("idle summary decision = (%v, %q)", on, r)
	}
	// The dead band holds whatever is current.
	if on, r := DecideSummaryScan(Signals{ConflictRate: 0.05, AcqSamples: 1000}, true, 100); !on || r != "hold" {
		t.Fatalf("dead-band summary decision = (%v, %q)", on, r)
	}
}

func TestSignalsFrom(t *testing.T) {
	prev := telemetry.GroupStats{FastPath: 100, Slow: 10, OptimisticHits: 50, OptimisticRetries: 0, Waits: 5, WaitNanos: 1000, Stalls: 1}
	cur := telemetry.GroupStats{FastPath: 160, Slow: 50, OptimisticHits: 110, OptimisticRetries: 40, Waits: 15, WaitNanos: 21000, Stalls: 3}
	sig := signalsFrom(prev, cur, time.Second)
	if sig.AcqSamples != 100 {
		t.Fatalf("AcqSamples = %d", sig.AcqSamples)
	}
	if sig.ConflictRate != 0.4 {
		t.Fatalf("ConflictRate = %v", sig.ConflictRate)
	}
	if sig.OptSamples != 100 || sig.OptFailRate != 0.4 {
		t.Fatalf("opt signals = (%d, %v)", sig.OptSamples, sig.OptFailRate)
	}
	if sig.OptRetriesDelta != 40 {
		t.Fatalf("OptRetriesDelta = %d, want 40", sig.OptRetriesDelta)
	}
	if sig.WaitsDelta != 10 || sig.AvgWaitNanos != 2000 {
		t.Fatalf("wait signals = (%d, %v)", sig.WaitsDelta, sig.AvgWaitNanos)
	}
	if sig.StallRate != 2 {
		t.Fatalf("StallRate = %v", sig.StallRate)
	}
	// A shrunk population (provider churn) clamps to zero, not negative.
	neg := signalsFrom(cur, prev, time.Second)
	if neg.AcqSamples != 0 || neg.OptSamples != 0 || neg.WaitsDelta != 0 {
		t.Fatalf("negative deltas not clamped: %+v", neg)
	}
}

// contendedTable builds a one-mode table whose mode conflicts with
// itself (a point write on a map key), the simplest way to manufacture
// any contention level.
func contendedTable(t *testing.T) (*core.ModeTable, core.ModeID) {
	t.Helper()
	set := core.SymSetOf(
		core.SymOpOf("put", core.VarArg("k"), core.Star()),
		core.SymOpOf("remove", core.VarArg("k")))
	tbl := core.NewModeTable(adtspecs.Map(), []core.SymSet{set},
		core.TableOptions{Phi: core.NewPhi(4)})
	return tbl, tbl.Set(set).Mode1(core.Value(1))
}

// TestControllerSaturatedWorkload drives the full observe/decide/apply
// loop against a real instance pinned at 100% conflict: the controller
// must move the spin bounds to the saturated regime, speed the watchdog
// up while stalls flow, enable managed wait timing, and undo the global
// toggles after a quiet spell.
func TestControllerSaturatedWorkload(t *testing.T) {
	tbl, mode := contendedTable(t)
	s := core.NewSemantic(tbl)
	reg := telemetry.NewRegistry()
	reg.Register("hot", "map", s)

	wd := core.NewWatchdog(core.WatchdogConfig{Threshold: time.Hour, Interval: 40 * time.Millisecond})
	defer core.SetWaitTiming(false)
	c := New(Config{
		Registry:         reg,
		Interval:         10 * time.Millisecond,
		Watchdog:         wd,
		DecideStreak:     2,
		CooldownTicks:    2,
		ManageWaitTiming: true,
		MinAcqSamples:    1,
		MinOptSamples:    1,
	})

	// Hold the self-conflicting mode so every bounded acquisition below
	// runs the slow path and times out (conflict rate 1.0, stalls > 0).
	s.Acquire(mode)
	c.Tick() // baseline snapshot
	for round := 0; round < 2; round++ {
		for i := 0; i < 4; i++ {
			if err := s.AcquireWithin(mode, time.Millisecond); err == nil {
				t.Fatal("conflicting AcquireWithin unexpectedly succeeded")
			}
		}
		c.Tick()
	}
	s.Release(mode)

	if got := s.SpinBoundsNow(); got != spinSaturated {
		t.Fatalf("spin bounds = %+v, want saturated %+v", got, spinSaturated)
	}
	if got := wd.Interval(); got != 10*time.Millisecond {
		t.Fatalf("watchdog interval = %v, want quartered 10ms", got)
	}
	if !core.WaitTimingEnabled() {
		t.Fatal("managed wait timing not enabled under stalls")
	}
	if c.Applies() == 0 {
		t.Fatal("controller reports zero applies")
	}

	// State rows carry the regime and the live knob values.
	rows := c.State()
	if len(rows) != 1 {
		t.Fatalf("state rows = %d, want 1", len(rows))
	}
	if rows[0].Kind != "controller" || rows[0].Policy != "controlplane/hot/map" {
		t.Fatalf("state row identity = %+v", rows[0])
	}
	if rows[0].Counters["spin_max"] != uint64(spinSaturated.Max) {
		t.Fatalf("state spin_max = %d, want %d", rows[0].Counters["spin_max"], spinSaturated.Max)
	}

	// Quiet spell: no traffic for enough ticks turns the global toggles
	// back off and restores the watchdog.
	for i := 0; i < waitQuietTicks+1; i++ {
		c.Tick()
	}
	if core.WaitTimingEnabled() {
		t.Fatal("managed wait timing still on after quiet spell")
	}
	if got := wd.Interval(); got != 40*time.Millisecond {
		t.Fatalf("watchdog interval = %v, want restored 40ms", got)
	}
}

// TestControllerFriendlyGate: an uncontested optimistic workload (scans
// with zero validation failures) must move the gate to the lenient
// regime through the same loop.
func TestControllerFriendlyGate(t *testing.T) {
	st := rangestore.New(4, 64)
	for k := 0; k < 8; k++ {
		st.PutPair(k)
	}
	reg := telemetry.NewRegistry()
	reg.Register("store", "map", st.Sems()...)
	c := New(Config{Registry: reg, DecideStreak: 2, CooldownTicks: 2, MinAcqSamples: 1, MinOptSamples: 1})

	c.Tick()
	for round := 0; round < 2; round++ {
		for i := 0; i < 200; i++ {
			if st.Scan()%2 != 0 {
				t.Fatal("torn scan")
			}
		}
		c.Tick()
	}
	for _, s := range st.Sems() {
		if got := s.OptGateParamsNow(); got != gateFriendly {
			t.Fatalf("gate params = %+v, want friendly %+v", got, gateFriendly)
		}
	}
	// ResetKnobs restores the defaults on every registered instance.
	c.ResetKnobs()
	for _, s := range st.Sems() {
		if got := s.OptGateParamsNow(); got != core.DefaultOptGateParams() {
			t.Fatalf("gate params after reset = %+v", got)
		}
		if got := s.SpinBoundsNow(); got != core.DefaultSpinBounds() {
			t.Fatalf("spin bounds after reset = %+v", got)
		}
	}
}

// TestControllerGateEvidencePoolsAcrossStarvedTicks: a workload whose
// optimistic traffic arrives as a per-tick trickle below MinOptSamples
// must still reach a gate decision — the controller pools the starved
// ticks' evidence until it clears the floor, and the hysteresis streak
// survives the hold ticks in between. Every attempt here is a genuine
// validation failure (a conflicting acquire lands inside the read
// window), so the pooled rate is 1.0 and the gate must go hostile.
func TestControllerGateEvidencePoolsAcrossStarvedTicks(t *testing.T) {
	readSet := core.SymSetOf(core.SymOpOf("get", core.VarArg("k")))
	writeSet := core.SymSetOf(
		core.SymOpOf("put", core.VarArg("k"), core.Star()),
		core.SymOpOf("remove", core.VarArg("k")))
	tbl := core.NewModeTable(adtspecs.Map(), []core.SymSet{readSet, writeSet},
		core.TableOptions{Phi: core.NewPhi(8)})
	s := core.NewSemantic(tbl)
	rm := tbl.Set(readSet).Mode1(core.Value(3))
	wm := tbl.Set(writeSet).Mode1(core.Value(3))

	reg := telemetry.NewRegistry()
	reg.Register("trickle", "map", s)
	c := New(Config{
		Registry:      reg,
		DecideStreak:  2,
		CooldownTicks: 2,
		MinAcqSamples: 1 << 20, // spin/summary deciders stay out of the way
		MinOptSamples: 32,
	})

	tx := core.NewTxn()
	failOnce := func() {
		if tx.TryOptimistic(func(tt *core.Txn) bool {
			if !tt.Observe(s, rm, 0) {
				return false
			}
			s.Acquire(wm)
			s.Release(wm)
			return true
		}) {
			t.Fatal("attempt validated despite an in-window conflicting acquire")
		}
	}

	c.Tick() // baseline snapshot
	// 8 failures per tick: each tick alone is far under the 32-sample
	// floor. Pooling reaches the floor every 4th tick; two pooled
	// hostile decisions (streak 2) must apply the hostile gate by tick 8.
	for round := 1; round <= 8; round++ {
		for i := 0; i < 8; i++ {
			failOnce()
		}
		c.Tick()
		if round == 7 && s.OptGateParamsNow() == gateHostile {
			t.Fatal("hostile gate applied before the second pooled decision")
		}
	}
	if got := s.OptGateParamsNow(); got != gateHostile {
		t.Fatalf("gate params = %+v, want hostile %+v — starved-tick evidence was not pooled", got, gateHostile)
	}
}

// TestControllerStartStop exercises the background ticker end to end:
// policy rows appear in registry snapshots while running and vanish on
// Stop.
func TestControllerStartStop(t *testing.T) {
	tbl, mode := contendedTable(t)
	s := core.NewSemantic(tbl)
	reg := telemetry.NewRegistry()
	reg.Register("g", "map", s)
	c := New(Config{Registry: reg, Interval: 2 * time.Millisecond, MinAcqSamples: 1})
	c.Start()
	defer c.Stop()
	s.Acquire(mode)
	s.Release(mode)

	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := reg.Snapshot()
		if len(snap.Policies) > 0 {
			if snap.Policies[0].Kind != "controller" {
				t.Fatalf("policy row kind = %q", snap.Policies[0].Kind)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no controller policy rows after 2s of background ticking")
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	if snap := reg.Snapshot(); len(snap.Policies) != 0 {
		t.Fatalf("policy rows survive Stop: %+v", snap.Policies)
	}
	if n := c.Ticks(); n == 0 {
		t.Fatal("background ticker never ticked")
	}
}
