package adt

import (
	"container/heap"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Deque is a linearizable double-ended queue.
type Deque struct {
	mu   sync.Mutex
	vals []core.Value // vals[0] is the front
}

// NewDeque creates an empty deque.
func NewDeque() *Deque { return &Deque{} }

// PushFront inserts v at the front.
func (d *Deque) PushFront(v core.Value) {
	d.mu.Lock()
	d.vals = append([]core.Value{v}, d.vals...)
	d.mu.Unlock()
}

// PushBack inserts v at the back.
func (d *Deque) PushBack(v core.Value) {
	d.mu.Lock()
	d.vals = append(d.vals, v)
	d.mu.Unlock()
}

// PopFront removes and returns the front element.
func (d *Deque) PopFront() (core.Value, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.vals) == 0 {
		return nil, false
	}
	v := d.vals[0]
	d.vals = d.vals[1:]
	return v, true
}

// PopBack removes and returns the back element.
func (d *Deque) PopBack() (core.Value, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.vals) == 0 {
		return nil, false
	}
	v := d.vals[len(d.vals)-1]
	d.vals = d.vals[:len(d.vals)-1]
	return v, true
}

// Size returns the element count.
func (d *Deque) Size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.vals)
}

// Counter is a linearizable counter whose increments commute.
type Counter struct {
	n atomic.Int64
}

// NewCounter creates a zeroed counter.
func NewCounter() *Counter { return &Counter{} }

// Inc adds d.
func (c *Counter) Inc(d int64) { c.n.Add(d) }

// Dec subtracts d.
func (c *Counter) Dec(d int64) { c.n.Add(-d) }

// Read returns the current value.
func (c *Counter) Read() int64 { return c.n.Load() }

// PQueue is a linearizable min-priority queue.
type PQueue struct {
	mu sync.Mutex
	h  pqHeap
}

type pqItem struct {
	prio int64
	val  core.Value
}

type pqHeap []pqItem

func (h pqHeap) Len() int            { return len(h) }
func (h pqHeap) Less(i, j int) bool  { return h[i].prio < h[j].prio }
func (h pqHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pqHeap) Push(x any)         { *h = append(*h, x.(pqItem)) }
func (h *pqHeap) Pop() any           { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// NewPQueue creates an empty priority queue.
func NewPQueue() *PQueue { return &PQueue{} }

// Insert adds v with priority prio (smaller is extracted first).
func (p *PQueue) Insert(prio int64, v core.Value) {
	p.mu.Lock()
	heap.Push(&p.h, pqItem{prio, v})
	p.mu.Unlock()
}

// ExtractMin removes and returns the minimum-priority element.
func (p *PQueue) ExtractMin() (core.Value, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.h) == 0 {
		return nil, false
	}
	return heap.Pop(&p.h).(pqItem).val, true
}

// PeekMin returns the minimum-priority element without removing it.
func (p *PQueue) PeekMin() (core.Value, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.h) == 0 {
		return nil, false
	}
	return p.h[0].val, true
}

// Size returns the element count.
func (p *PQueue) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.h)
}

// List is a linearizable growable list.
type List struct {
	mu   sync.RWMutex
	vals []core.Value
}

// NewList creates an empty list.
func NewList() *List { return &List{} }

// Append adds v at the end and returns its index.
func (l *List) Append(v core.Value) int {
	l.mu.Lock()
	l.vals = append(l.vals, v)
	i := len(l.vals) - 1
	l.mu.Unlock()
	return i
}

// Get returns the element at index i (nil when out of range).
func (l *List) Get(i int) core.Value {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if i < 0 || i >= len(l.vals) {
		return nil
	}
	return l.vals[i]
}

// Set writes the element at index i; it reports whether i was in range.
func (l *List) Set(i int, v core.Value) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < 0 || i >= len(l.vals) {
		return false
	}
	l.vals[i] = v
	return true
}

// Size returns the element count.
func (l *List) Size() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.vals)
}
