package adt

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

type setShard struct {
	mu sync.Mutex
	m  map[core.Value]struct{}
}

// HashSet is a linearizable hash set with striped internal locking —
// the Set ADT of Fig 3(a).
type HashSet struct {
	shards [numShards]setShard
	size   atomic.Int64
}

// NewHashSet creates an empty set.
func NewHashSet() *HashSet {
	h := &HashSet{}
	for i := range h.shards {
		h.shards[i].m = make(map[core.Value]struct{})
	}
	return h
}

// Add inserts v.
func (h *HashSet) Add(v core.Value) {
	s := &h.shards[shardIndex(v)]
	s.mu.Lock()
	if _, had := s.m[v]; !had {
		s.m[v] = struct{}{}
		s.mu.Unlock()
		h.size.Add(1)
		return
	}
	s.mu.Unlock()
}

// Remove deletes v.
func (h *HashSet) Remove(v core.Value) {
	s := &h.shards[shardIndex(v)]
	s.mu.Lock()
	if _, had := s.m[v]; had {
		delete(s.m, v)
		s.mu.Unlock()
		h.size.Add(-1)
		return
	}
	s.mu.Unlock()
}

// Contains reports membership of v.
func (h *HashSet) Contains(v core.Value) bool {
	s := &h.shards[shardIndex(v)]
	s.mu.Lock()
	_, ok := s.m[v]
	s.mu.Unlock()
	return ok
}

// Size returns the element count.
func (h *HashSet) Size() int { return int(h.size.Load()) }

// Clear removes every element.
func (h *HashSet) Clear() {
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		h.size.Add(int64(-len(s.m)))
		s.m = make(map[core.Value]struct{})
		s.mu.Unlock()
	}
}

// Range calls f for every element until f returns false (shard at a
// time; see HashMap.Range for the atomicity caveat).
func (h *HashSet) Range(f func(v core.Value) bool) {
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		for v := range s.m {
			if !f(v) {
				s.mu.Unlock()
				return
			}
		}
		s.mu.Unlock()
	}
}
