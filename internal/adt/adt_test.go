package adt

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestHashMapBasics(t *testing.T) {
	m := NewHashMap()
	if m.Get("k") != nil || m.Size() != 0 || m.ContainsKey("k") {
		t.Fatal("fresh map not empty")
	}
	if old := m.Put("k", 1); old != nil {
		t.Errorf("Put on absent key returned %v", old)
	}
	if old := m.Put("k", 2); old != 1 {
		t.Errorf("Put returned %v, want 1", old)
	}
	if m.Get("k") != 2 || m.Size() != 1 || !m.ContainsKey("k") {
		t.Error("map state wrong after puts")
	}
	if got := m.PutIfAbsent("k", 9); got != 2 {
		t.Errorf("PutIfAbsent on present key returned %v", got)
	}
	if got := m.PutIfAbsent("j", 7); got != nil {
		t.Errorf("PutIfAbsent on absent key returned %v", got)
	}
	if m.Get("j") != 7 || m.Size() != 2 {
		t.Error("putIfAbsent state wrong")
	}
	if got := m.Remove("k"); got != 2 {
		t.Errorf("Remove returned %v", got)
	}
	if got := m.Remove("k"); got != nil {
		t.Errorf("double Remove returned %v", got)
	}
	m.Clear()
	if m.Size() != 0 || m.ContainsKey("j") {
		t.Error("Clear incomplete")
	}
}

// TestHashMapModel: random op sequences agree with Go's built-in map.
func TestHashMapModel(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewHashMap()
		ref := make(map[int]int)
		for _, o := range ops {
			k := int(o % 13)
			v := int(o >> 4)
			switch (o >> 2) % 3 {
			case 0:
				got := m.Put(k, v)
				want, had := ref[k]
				if had && got != want || !had && got != nil {
					return false
				}
				ref[k] = v
			case 1:
				got := m.Remove(k)
				want, had := ref[k]
				if had && got != want || !had && got != nil {
					return false
				}
				delete(ref, k)
			case 2:
				got := m.Get(k)
				want, had := ref[k]
				if had && got != want || !had && got != nil {
					return false
				}
			}
			if m.Size() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHashMapRange(t *testing.T) {
	m := NewHashMap()
	for i := 0; i < 100; i++ {
		m.Put(i, i*i)
	}
	seen := 0
	m.Range(func(k, v any) bool {
		if v != k.(int)*k.(int) {
			t.Errorf("Range saw %v→%v", k, v)
		}
		seen++
		return true
	})
	if seen != 100 {
		t.Errorf("Range visited %d, want 100", seen)
	}
	// Early stop.
	n := 0
	m.Range(func(k, v any) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("Range early stop visited %d", n)
	}
}

func TestHashMapConcurrent(t *testing.T) {
	m := NewHashMap()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := g*1000 + i
				m.Put(k, k)
				if m.Get(k) != k {
					t.Errorf("lost update for %d", k)
					return
				}
				if i%3 == 0 {
					m.Remove(k)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestHashSetBasics(t *testing.T) {
	s := NewHashSet()
	s.Add(1)
	s.Add(1)
	s.Add(2)
	if s.Size() != 2 || !s.Contains(1) || !s.Contains(2) || s.Contains(3) {
		t.Error("set state wrong")
	}
	s.Remove(1)
	s.Remove(1)
	if s.Size() != 1 || s.Contains(1) {
		t.Error("remove wrong")
	}
	count := 0
	s.Range(func(v any) bool { count++; return true })
	if count != 1 {
		t.Errorf("Range visited %d", count)
	}
	s.Clear()
	if s.Size() != 0 {
		t.Error("clear wrong")
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue()
	if !q.IsEmpty() || q.Size() != 0 {
		t.Fatal("fresh queue not empty")
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue on empty succeeded")
	}
	for i := 0; i < 100; i++ {
		q.Enqueue(i)
	}
	if q.Size() != 100 || q.IsEmpty() {
		t.Error("size wrong")
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d returned %v,%v", i, v, ok)
		}
	}
	if !q.IsEmpty() {
		t.Error("not empty after drain")
	}
}

// TestQueueGrowWrap exercises ring growth with a wrapped head.
func TestQueueGrowWrap(t *testing.T) {
	q := NewQueue()
	for i := 0; i < 12; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < 10; i++ {
		q.Dequeue()
	}
	for i := 100; i < 140; i++ { // forces growth while head > 0
		q.Enqueue(i)
	}
	want := []int{10, 11}
	for i := 100; i < 140; i++ {
		want = append(want, i)
	}
	for _, w := range want {
		v, ok := q.Dequeue()
		if !ok || v != w {
			t.Fatalf("got %v,%v want %d", v, ok, w)
		}
	}
}

func TestQueueConcurrentDrain(t *testing.T) {
	q := NewQueue()
	const total = 4000
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < total/4; i++ {
				q.Enqueue(g*10000 + i)
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[any]bool)
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("duplicate element %v", v)
		}
		seen[v] = true
	}
	if len(seen) != total {
		t.Errorf("drained %d, want %d", len(seen), total)
	}
}

func TestMultimap(t *testing.T) {
	mm := NewMultimap()
	if !mm.Put("a", 1) || !mm.Put("a", 2) || mm.Put("a", 1) {
		t.Error("Put newness wrong")
	}
	if mm.Size() != 2 || !mm.ContainsEntry("a", 1) || mm.ContainsEntry("a", 3) {
		t.Error("state wrong")
	}
	vs := mm.Get("a")
	if len(vs) != 2 {
		t.Errorf("Get returned %v", vs)
	}
	if !mm.Remove("a", 1) || mm.Remove("a", 1) {
		t.Error("Remove wrong")
	}
	if mm.Size() != 1 {
		t.Error("size after remove wrong")
	}
	mm.Put("b", 9)
	removed := mm.RemoveAll("a")
	if len(removed) != 1 || removed[0] != 2 {
		t.Errorf("RemoveAll returned %v", removed)
	}
	if mm.Size() != 1 || len(mm.Get("a")) != 0 {
		t.Error("RemoveAll state wrong")
	}
}

func TestDeque(t *testing.T) {
	d := NewDeque()
	d.PushBack(2)
	d.PushFront(1)
	d.PushBack(3)
	if d.Size() != 3 {
		t.Fatal("size wrong")
	}
	if v, _ := d.PopFront(); v != 1 {
		t.Errorf("PopFront = %v", v)
	}
	if v, _ := d.PopBack(); v != 3 {
		t.Errorf("PopBack = %v", v)
	}
	if v, _ := d.PopFront(); v != 2 {
		t.Errorf("PopFront = %v", v)
	}
	if _, ok := d.PopBack(); ok {
		t.Error("pop on empty succeeded")
	}
	if _, ok := d.PopFront(); ok {
		t.Error("pop on empty succeeded")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc(2)
				c.Dec(1)
			}
		}()
	}
	wg.Wait()
	if c.Read() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Read())
	}
}

func TestPQueueOrdering(t *testing.T) {
	p := NewPQueue()
	for _, pr := range []int64{5, 1, 4, 1, 9, 0} {
		p.Insert(pr, pr*10)
	}
	if p.Size() != 6 {
		t.Fatal("size wrong")
	}
	if v, ok := p.PeekMin(); !ok || v != int64(0) {
		t.Errorf("PeekMin = %v", v)
	}
	prev := int64(-1)
	for {
		v, ok := p.ExtractMin()
		if !ok {
			break
		}
		if v.(int64) < prev {
			t.Errorf("extracted %v after %v", v, prev)
		}
		prev = v.(int64)
	}
	if _, ok := p.PeekMin(); ok {
		t.Error("peek on empty succeeded")
	}
}

func TestList(t *testing.T) {
	l := NewList()
	if l.Get(0) != nil || l.Size() != 0 {
		t.Fatal("fresh list wrong")
	}
	i0 := l.Append("a")
	i1 := l.Append("b")
	if i0 != 0 || i1 != 1 {
		t.Error("append indices wrong")
	}
	if !l.Set(0, "z") || l.Set(5, "x") {
		t.Error("Set bounds wrong")
	}
	if l.Get(0) != "z" || l.Get(1) != "b" || l.Get(-1) != nil {
		t.Error("Get wrong")
	}
}
