package adt

import (
	"sync"

	"repro/internal/core"
)

// Treap is a linearizable ordered map over int64 keys (a randomized
// balanced BST guarded by one mutex). It backs the OrderedMap ADT class
// — the range-operation family whose semantic locks use the ordered
// commutativity conditions (core.ArgsLT/ArgsGT with an IntervalPhi).
// Keys are int64 by contract; that typing is what makes symbolic
// ordered reasoning over φ's interval buckets sound.
type Treap struct {
	mu   sync.Mutex
	root *treapNode
	rng  uint64
	size int
}

type treapNode struct {
	key         int64
	val         core.Value
	prio        uint64
	left, right *treapNode
}

// NewTreap creates an empty ordered map.
func NewTreap() *Treap { return &Treap{rng: 0x9e3779b97f4a7c15} }

func (t *Treap) nextPrio() uint64 {
	// xorshift64*
	t.rng ^= t.rng >> 12
	t.rng ^= t.rng << 25
	t.rng ^= t.rng >> 27
	return t.rng * 0x2545f4914f6cdd1d
}

// Put binds k to v; it returns the previous value (nil when absent).
func (t *Treap) Put(k int64, v core.Value) core.Value {
	t.mu.Lock()
	defer t.mu.Unlock()
	var old core.Value
	t.root, old = t.insert(t.root, k, v)
	if old == nil {
		t.size++
	}
	return old
}

func (t *Treap) insert(n *treapNode, k int64, v core.Value) (*treapNode, core.Value) {
	if n == nil {
		return &treapNode{key: k, val: v, prio: t.nextPrio()}, nil
	}
	switch {
	case k == n.key:
		old := n.val
		n.val = v
		return n, old
	case k < n.key:
		var old core.Value
		n.left, old = t.insert(n.left, k, v)
		if n.left.prio > n.prio {
			n = rotateRight(n)
		}
		return n, old
	default:
		var old core.Value
		n.right, old = t.insert(n.right, k, v)
		if n.right.prio > n.prio {
			n = rotateLeft(n)
		}
		return n, old
	}
}

func rotateRight(n *treapNode) *treapNode {
	l := n.left
	n.left = l.right
	l.right = n
	return l
}

func rotateLeft(n *treapNode) *treapNode {
	r := n.right
	n.right = r.left
	r.left = n
	return r
}

// Get returns the binding of k (nil when absent).
func (t *Treap) Get(k int64) core.Value {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.root
	for n != nil {
		switch {
		case k == n.key:
			return n.val
		case k < n.key:
			n = n.left
		default:
			n = n.right
		}
	}
	return nil
}

// Remove unbinds k; it returns the removed value (nil when absent).
func (t *Treap) Remove(k int64) core.Value {
	t.mu.Lock()
	defer t.mu.Unlock()
	var old core.Value
	t.root, old = t.remove(t.root, k)
	if old != nil {
		t.size--
	}
	return old
}

func (t *Treap) remove(n *treapNode, k int64) (*treapNode, core.Value) {
	if n == nil {
		return nil, nil
	}
	switch {
	case k < n.key:
		var old core.Value
		n.left, old = t.remove(n.left, k)
		return n, old
	case k > n.key:
		var old core.Value
		n.right, old = t.remove(n.right, k)
		return n, old
	default:
		old := n.val
		return merge(n.left, n.right), old
	}
}

func merge(l, r *treapNode) *treapNode {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio > r.prio:
		l.right = merge(l.right, r)
		return l
	default:
		r.left = merge(l, r.left)
		return r
	}
}

// RangeCount returns the number of keys in [lo, hi].
func (t *Treap) RangeCount(lo, hi int64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	count := 0
	var walk func(n *treapNode)
	walk = func(n *treapNode) {
		if n == nil {
			return
		}
		if n.key >= lo {
			walk(n.left)
		}
		if n.key >= lo && n.key <= hi {
			count++
		}
		if n.key <= hi {
			walk(n.right)
		}
	}
	walk(t.root)
	return count
}

// RangeKeys returns the sorted keys in [lo, hi].
func (t *Treap) RangeKeys(lo, hi int64) []int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []int64
	var walk func(n *treapNode)
	walk = func(n *treapNode) {
		if n == nil {
			return
		}
		if n.key >= lo {
			walk(n.left)
		}
		if n.key >= lo && n.key <= hi {
			out = append(out, n.key)
		}
		if n.key <= hi {
			walk(n.right)
		}
	}
	walk(t.root)
	return out
}

// Size returns the binding count.
func (t *Treap) Size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.size
}
