package adt

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestTreapBasics(t *testing.T) {
	tr := NewTreap()
	if tr.Get(1) != nil || tr.Size() != 0 {
		t.Fatal("fresh treap not empty")
	}
	if old := tr.Put(1, "a"); old != nil {
		t.Error("put on absent returned value")
	}
	if old := tr.Put(1, "b"); old != "a" {
		t.Errorf("put returned %v", old)
	}
	if tr.Get(1) != "b" || tr.Size() != 1 {
		t.Error("state wrong")
	}
	if got := tr.Remove(1); got != "b" {
		t.Errorf("remove returned %v", got)
	}
	if tr.Remove(1) != nil || tr.Size() != 0 {
		t.Error("double remove wrong")
	}
}

// TestTreapModel: random op sequences agree with a sorted-map model.
func TestTreapModel(t *testing.T) {
	f := func(ops []int16) bool {
		tr := NewTreap()
		ref := map[int64]int{}
		for i, o := range ops {
			k := int64(o % 31)
			switch i % 3 {
			case 0:
				got := tr.Put(k, i)
				want, had := ref[k]
				if had && got != want || !had && got != nil {
					return false
				}
				ref[k] = i
			case 1:
				got := tr.Get(k)
				want, had := ref[k]
				if had && got != want || !had && got != nil {
					return false
				}
			default:
				got := tr.Remove(k)
				want, had := ref[k]
				if had && got != want || !had && got != nil {
					return false
				}
				delete(ref, k)
			}
			if tr.Size() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestTreapRange(t *testing.T) {
	tr := NewTreap()
	keys := []int64{5, 1, 9, 3, 7, 20, 15}
	for _, k := range keys {
		tr.Put(k, k)
	}
	if got := tr.RangeCount(3, 9); got != 4 { // 3,5,7,9
		t.Errorf("RangeCount(3,9) = %d", got)
	}
	if got := tr.RangeCount(100, 200); got != 0 {
		t.Errorf("empty range = %d", got)
	}
	ks := tr.RangeKeys(1, 20)
	if !sort.SliceIsSorted(ks, func(i, j int) bool { return ks[i] < ks[j] }) {
		t.Errorf("RangeKeys not sorted: %v", ks)
	}
	if len(ks) != len(keys) {
		t.Errorf("RangeKeys = %v", ks)
	}
	if got := tr.RangeKeys(6, 14); len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Errorf("RangeKeys(6,14) = %v", got)
	}
}

// TestTreapRandomRange cross-checks range queries against sorting.
func TestTreapRandomRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := NewTreap()
	present := map[int64]bool{}
	for i := 0; i < 500; i++ {
		k := int64(rng.Intn(200))
		tr.Put(k, k)
		present[k] = true
	}
	for trial := 0; trial < 50; trial++ {
		lo := int64(rng.Intn(200))
		hi := lo + int64(rng.Intn(60))
		want := 0
		for k := range present {
			if k >= lo && k <= hi {
				want++
			}
		}
		if got := tr.RangeCount(lo, hi); got != want {
			t.Fatalf("RangeCount(%d,%d) = %d, want %d", lo, hi, got, want)
		}
	}
}

func TestTreapConcurrent(t *testing.T) {
	tr := NewTreap()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int64(g * 10000)
			for i := int64(0); i < 500; i++ {
				tr.Put(base+i, i)
				if tr.Get(base+i) != i {
					t.Errorf("lost key %d", base+i)
					return
				}
				if i%5 == 0 {
					tr.Remove(base + i)
				}
			}
		}(g)
	}
	wg.Wait()
	if tr.Size() != 4*400 {
		t.Errorf("size = %d, want %d", tr.Size(), 4*400)
	}
}
