package adt

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

type mmShard struct {
	mu sync.Mutex
	m  map[core.Value]map[core.Value]struct{}
}

// Multimap is a linearizable key → set-of-values container (the Guava
// SetMultimap shape the Graph benchmark of §6.1 builds on), with striped
// internal locking.
type Multimap struct {
	shards [numShards]mmShard
	size   atomic.Int64
}

// NewMultimap creates an empty multimap.
func NewMultimap() *Multimap {
	h := &Multimap{}
	for i := range h.shards {
		h.shards[i].m = make(map[core.Value]map[core.Value]struct{})
	}
	return h
}

// Put associates v with k; it reports whether the entry was new.
func (h *Multimap) Put(k, v core.Value) bool {
	s := &h.shards[shardIndex(k)]
	s.mu.Lock()
	vs, ok := s.m[k]
	if !ok {
		vs = make(map[core.Value]struct{})
		s.m[k] = vs
	}
	if _, had := vs[v]; had {
		s.mu.Unlock()
		return false
	}
	vs[v] = struct{}{}
	s.mu.Unlock()
	h.size.Add(1)
	return true
}

// Get returns a snapshot of the values associated with k.
func (h *Multimap) Get(k core.Value) []core.Value {
	s := &h.shards[shardIndex(k)]
	s.mu.Lock()
	vs := s.m[k]
	out := make([]core.Value, 0, len(vs))
	for v := range vs {
		out = append(out, v)
	}
	s.mu.Unlock()
	return out
}

// ContainsEntry reports whether (k, v) is present.
func (h *Multimap) ContainsEntry(k, v core.Value) bool {
	s := &h.shards[shardIndex(k)]
	s.mu.Lock()
	_, ok := s.m[k][v]
	s.mu.Unlock()
	return ok
}

// Remove deletes the entry (k, v); it reports whether it was present.
func (h *Multimap) Remove(k, v core.Value) bool {
	s := &h.shards[shardIndex(k)]
	s.mu.Lock()
	vs, ok := s.m[k]
	if !ok {
		s.mu.Unlock()
		return false
	}
	if _, had := vs[v]; !had {
		s.mu.Unlock()
		return false
	}
	delete(vs, v)
	if len(vs) == 0 {
		delete(s.m, k)
	}
	s.mu.Unlock()
	h.size.Add(-1)
	return true
}

// RemoveAll deletes every entry of k and returns the removed values.
func (h *Multimap) RemoveAll(k core.Value) []core.Value {
	s := &h.shards[shardIndex(k)]
	s.mu.Lock()
	vs := s.m[k]
	out := make([]core.Value, 0, len(vs))
	for v := range vs {
		out = append(out, v)
	}
	delete(s.m, k)
	s.mu.Unlock()
	h.size.Add(int64(-len(out)))
	return out
}

// Size returns the number of (key, value) entries.
func (h *Multimap) Size() int { return int(h.size.Load()) }
