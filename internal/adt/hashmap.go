// Package adt provides the linearizable abstract data types the paper's
// clients compose (§2.1): hash map, hash set, queue, multimap, deque,
// counter, priority queue and list. Each type is safe for concurrent use
// and linearizable with respect to its sequential specification — the
// property the semantic-locking methodology assumes of every shared ADT.
// The matching commutativity specifications live in internal/adtspecs.
//
// The implementations use internal fine-grained synchronization (striped
// shards for the keyed containers), exercising the paper's modularity
// claim: each ADT may use its own concurrency control internally while
// the synthesized semantic locks coordinate whole transactions.
package adt

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// numShards is the stripe count of the keyed containers.
const numShards = 64

// shardIndex buckets a key into a stripe using the same 64-bit mixer as
// the runtime's φ.
func shardIndex(k core.Value) int {
	return int(core.HashOf(k) % numShards)
}

type mapShard struct {
	mu sync.Mutex
	m  map[core.Value]core.Value
}

// HashMap is a linearizable hash map with striped internal locking.
// The zero value is not usable; call NewHashMap.
type HashMap struct {
	shards [numShards]mapShard
	size   atomic.Int64
}

// NewHashMap creates an empty map.
func NewHashMap() *HashMap {
	h := &HashMap{}
	for i := range h.shards {
		h.shards[i].m = make(map[core.Value]core.Value)
	}
	return h
}

// Get returns the value bound to k, or nil when absent.
func (h *HashMap) Get(k core.Value) core.Value {
	s := &h.shards[shardIndex(k)]
	s.mu.Lock()
	v := s.m[k]
	s.mu.Unlock()
	return v
}

// ContainsKey reports whether k is bound.
func (h *HashMap) ContainsKey(k core.Value) bool {
	s := &h.shards[shardIndex(k)]
	s.mu.Lock()
	_, ok := s.m[k]
	s.mu.Unlock()
	return ok
}

// Put binds k to v and returns the previous value (nil when absent).
func (h *HashMap) Put(k, v core.Value) core.Value {
	s := &h.shards[shardIndex(k)]
	s.mu.Lock()
	old, had := s.m[k]
	s.m[k] = v
	s.mu.Unlock()
	if !had {
		h.size.Add(1)
		return nil
	}
	return old
}

// PutIfAbsent binds k to v unless k is already bound; it returns the
// existing value, or nil when the put happened.
func (h *HashMap) PutIfAbsent(k, v core.Value) core.Value {
	s := &h.shards[shardIndex(k)]
	s.mu.Lock()
	if old, had := s.m[k]; had {
		s.mu.Unlock()
		return old
	}
	s.m[k] = v
	s.mu.Unlock()
	h.size.Add(1)
	return nil
}

// Remove unbinds k and returns the removed value (nil when absent).
func (h *HashMap) Remove(k core.Value) core.Value {
	s := &h.shards[shardIndex(k)]
	s.mu.Lock()
	old, had := s.m[k]
	if had {
		delete(s.m, k)
	}
	s.mu.Unlock()
	if had {
		h.size.Add(-1)
		return old
	}
	return nil
}

// Size returns the number of bindings.
func (h *HashMap) Size() int { return int(h.size.Load()) }

// Clear removes every binding.
func (h *HashMap) Clear() {
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		h.size.Add(int64(-len(s.m)))
		s.m = make(map[core.Value]core.Value)
		s.mu.Unlock()
	}
}

// Values returns a snapshot of all bound values (shard at a time; see
// Range for the atomicity caveat).
func (h *HashMap) Values() []core.Value {
	out := make([]core.Value, 0, h.Size())
	h.Range(func(_, v core.Value) bool {
		out = append(out, v)
		return true
	})
	return out
}

// PutAll copies every binding of src into h (the Tomcat cache's
// longterm.putAll(eden)). It locks one source shard at a time; callers
// needing the copy to be atomic must hold a conflicting mode on both
// maps, as the synthesized cache transactions do.
func (h *HashMap) PutAll(src *HashMap) {
	src.Range(func(k, v core.Value) bool {
		h.Put(k, v)
		return true
	})
}

// ComputeIfAbsent returns the value bound to k, computing and binding it
// under the key's shard lock when absent — the hand-crafted CHM-V8 style
// primitive the ComputeIfAbsent benchmark compares against (§6.1). The
// compute function runs while the shard is locked, so it must not touch
// this map.
func (h *HashMap) ComputeIfAbsent(k core.Value, compute func() core.Value) core.Value {
	s := &h.shards[shardIndex(k)]
	s.mu.Lock()
	if v, ok := s.m[k]; ok {
		s.mu.Unlock()
		return v
	}
	v := compute()
	s.m[k] = v
	s.mu.Unlock()
	h.size.Add(1)
	return v
}

// Range calls f for every binding until f returns false. It locks one
// shard at a time, so it is not atomic with respect to concurrent
// writers; transactions wanting an atomic scan must hold a mode
// conflicting with all writes (as the synthesized clients do).
func (h *HashMap) Range(f func(k, v core.Value) bool) {
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		for k, v := range s.m {
			if !f(k, v) {
				s.mu.Unlock()
				return
			}
		}
		s.mu.Unlock()
	}
}
