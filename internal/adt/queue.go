package adt

import (
	"sync"

	"repro/internal/core"
)

// Queue is a linearizable FIFO queue (mutex-protected ring buffer).
// Under the pool relaxation used by the commutativity specification,
// concurrently enqueued elements may be observed in either order; the
// implementation itself is strictly FIFO with respect to the
// linearization order of the enqueues.
type Queue struct {
	mu    sync.Mutex
	buf   []core.Value
	head  int
	count int
}

// NewQueue creates an empty queue.
func NewQueue() *Queue {
	return &Queue{buf: make([]core.Value, 16)}
}

// Enqueue appends v.
func (q *Queue) Enqueue(v core.Value) {
	q.mu.Lock()
	if q.count == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.count)%len(q.buf)] = v
	q.count++
	q.mu.Unlock()
}

// Dequeue removes and returns the oldest element; ok is false when the
// queue is empty.
func (q *Queue) Dequeue() (v core.Value, ok bool) {
	q.mu.Lock()
	if q.count == 0 {
		q.mu.Unlock()
		return nil, false
	}
	v = q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	q.mu.Unlock()
	return v, true
}

// IsEmpty reports emptiness.
func (q *Queue) IsEmpty() bool {
	q.mu.Lock()
	empty := q.count == 0
	q.mu.Unlock()
	return empty
}

// Size returns the element count.
func (q *Queue) Size() int {
	q.mu.Lock()
	n := q.count
	q.mu.Unlock()
	return n
}

func (q *Queue) grow() {
	nb := make([]core.Value, 2*len(q.buf))
	for i := 0; i < q.count; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}
