package synth

import (
	"repro/internal/ir"
)

// This file is the prologue-fusion pass (StageFuse): consecutive lock
// statements are merged into single ir.LockBatch nodes so the emitted
// code performs one batched acquisition (core.Txn.LockBatch) instead of
// N independent trips through the lock mechanism. It is the same
// move-work-from-runtime-to-synthesis lever as the §4 refinement — the
// ranks and sets are static, so the runtime should not rediscover them
// one call at a time.
//
// Fusion is a pure re-bracketing of the acquisition sequence:
//
//   - A maximal run of adjacent LV/LV2 statements becomes one LockBatch
//     whose entries preserve statement order. Runs are only taken while
//     class ranks are non-decreasing (insertLocking emits rank groups
//     in ascending order, so in practice whole runs fuse).
//
//   - Adjacent entries of the SAME rank with identical set and flags
//     merge into one multi-variable entry — the LV2 shape of Fig 12,
//     ordered dynamically by unique id at run time.
//
//   - Entries of DIFFERENT ranks stay separate entries of the batch, in
//     ascending rank order. Fusion never merges or reorders across a
//     rank boundary, so the acquisition order the batch performs is
//     exactly the topological order of §3.3 the unfused statements
//     performed; the OS2PL certificate obligations are unchanged
//     (internal/verify checks a LockBatch by expanding its entries).
//
// Guarded LV statements ("if(x!=null) x.lock(s)") are not fused: their
// null guard must be evaluated before the mode selection for x runs,
// while a batched call evaluates every constituent's mode eagerly.
// The runtime skips nil instances either way; the restriction only
// keeps codegen's argument evaluation faithful to the guard.

// fuseLockBatches rewrites a synthesized section in place, fusing
// adjacent lock statements into LockBatch nodes. Single lock statements
// (no adjacent partner) are left as they are — a one-entry batch would
// be the same runtime call with extra boxing.
func fuseLockBatches(si int, sec *ir.Atomic, cs *Classes) {
	rankOf := func(v string) int {
		k, ok := cs.ClassOfVar(si, v)
		if !ok {
			return -1
		}
		c, ok := cs.ByKey[k]
		if !ok {
			return -1
		}
		return c.Rank
	}
	sec.Body = fuseBlock(sec.Body, rankOf)
}

func fuseBlock(b ir.Block, rankOf func(string) int) ir.Block {
	out := make(ir.Block, 0, len(b))
	i := 0
	for i < len(b) {
		if x, ok := b[i].(*ir.If); ok {
			x.Then = fuseBlock(x.Then, rankOf)
			x.Else = fuseBlock(x.Else, rankOf)
			out = append(out, x)
			i++
			continue
		}
		if x, ok := b[i].(*ir.While); ok {
			x.Body = fuseBlock(x.Body, rankOf)
			out = append(out, x)
			i++
			continue
		}
		e, ok := fusible(b[i])
		if !ok {
			out = append(out, b[i])
			i++
			continue
		}
		// Extend the run while statements stay fusible and ranks stay
		// non-decreasing.
		entries := []ir.BatchEntry{e}
		ranks := []int{rankOf(e.Vars[0])}
		j := i + 1
		for j < len(b) {
			e2, ok := fusible(b[j])
			if !ok {
				break
			}
			r2 := rankOf(e2.Vars[0])
			if r2 < ranks[len(ranks)-1] {
				break
			}
			entries = append(entries, e2)
			ranks = append(ranks, r2)
			j++
		}
		if len(entries) < 2 {
			out = append(out, b[i])
			i++
			continue
		}
		out = append(out, mergeEntries(entries, ranks))
		i = j
	}
	return out
}

// fusible returns the batch-entry payload of a lock statement, or
// ok=false for everything else (including guarded LVs, see above).
func fusible(s ir.Stmt) (ir.BatchEntry, bool) {
	switch x := s.(type) {
	case *ir.LV:
		if x.Guarded {
			return ir.BatchEntry{}, false
		}
		return ir.BatchEntry{
			Vars:       []string{x.Var},
			Set:        x.Set,
			Generic:    x.Generic,
			NoLocalSet: x.NoLocalSet,
		}, true
	case *ir.LV2:
		return ir.BatchEntry{
			Vars:       append([]string(nil), x.Vars...),
			Set:        x.Set,
			Generic:    x.Generic,
			NoLocalSet: x.NoLocalSet,
		}, true
	}
	return ir.BatchEntry{}, false
}

// mergeEntries builds the LockBatch, merging adjacent same-rank entries
// with identical set and flags into one multi-variable entry. Same rank
// means same equivalence class (ranks are assigned one per class), so a
// merged entry is exactly the LV2 pattern.
func mergeEntries(entries []ir.BatchEntry, ranks []int) *ir.LockBatch {
	lb := &ir.LockBatch{}
	for i, e := range entries {
		if n := len(lb.Entries); n > 0 && ranks[i] == ranks[i-1] {
			last := &lb.Entries[n-1]
			if last.Generic == e.Generic && last.NoLocalSet == e.NoLocalSet &&
				setsEqual(last.Set, e.Set, last.Generic) {
				last.Vars = append(last.Vars, e.Vars...)
				continue
			}
		}
		lb.Entries = append(lb.Entries, e)
	}
	return lb
}

func setsEqual(a, b interface{ Key() string }, generic bool) bool {
	if generic {
		return true // generic lock(+) carries no set
	}
	return a.Key() == b.Key()
}
