package synth_test

import (
	"strings"
	"testing"

	"repro/internal/papersec"
	"repro/internal/synth"
)

func TestReport(t *testing.T) {
	res := synthesizeAt(t, paperProgram(papersec.Fig1(), papersec.Fig9()), synth.StageRefine)
	out := synth.Report(res)
	for _, want := range []string{
		"== pointer abstraction and lock order ==",
		"rank 0: class Map",
		"== restrictions-graph ==",
		"Map->Set",
		"cyclic component wrapped: [Set]",
		"global wrapper p1 over [Set]",
		"== synthesized sections ==",
		"map.lock({get(id),put(id,*),remove(id)});",
		"== locking modes per class ==",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportNoEdges(t *testing.T) {
	res := synthesizeAt(t, paperProgram(papersec.Fig4()), synth.StageRefine)
	out := synth.Report(res)
	if !strings.Contains(out, "(no edges)") {
		t.Errorf("edge-free graph should print placeholder:\n%s", out)
	}
	// Small tables print their modes.
	if !strings.Contains(out, "mode 0:") {
		t.Errorf("small mode tables should be listed:\n%s", out)
	}
}
