package synth

import (
	"strings"
	"testing"

	"repro/internal/adtspecs"
	"repro/internal/ir"
)

// fuseProgram is a two-section program whose second section gets an
// adjacent pair of lock insertions: the Set class appears first in the
// program (section "warm"), so it outranks nothing and sorts before Map
// in the topological order; section "both" then calls the Map first, and
// §3.3's LS(l) pulls the later-used Set lock up to that call — two
// adjacent lock statements of increasing rank.
func fuseProgram() *Program {
	warm := &ir.Atomic{
		Name: "warm",
		Vars: []ir.Param{{Name: "s", Type: "Set", IsADT: true, NonNull: true}, {Name: "k", Type: "int"}},
		Body: ir.Block{&ir.Call{Recv: "s", Method: "add", Args: []ir.Expr{ir.VarRef{Name: "k"}}}},
	}
	both := &ir.Atomic{
		Name: "both",
		Vars: []ir.Param{
			{Name: "m", Type: "Map", IsADT: true, NonNull: true},
			{Name: "s2", Type: "Set", IsADT: true, NonNull: true},
			{Name: "k", Type: "int"}, {Name: "j", Type: "int"},
		},
		Body: ir.Block{
			&ir.Call{Recv: "m", Method: "put", Args: []ir.Expr{ir.VarRef{Name: "k"}, ir.VarRef{Name: "s2"}}},
			&ir.Call{Recv: "s2", Method: "add", Args: []ir.Expr{ir.VarRef{Name: "j"}}},
		},
	}
	return &Program{Sections: []*ir.Atomic{warm, both}, Specs: adtspecs.All()}
}

// TestFuseAdjacentLocks: StageFuse merges the adjacent pair into one
// LockBatch whose entries keep ascending rank order, and the fused
// section still passes certificate verification (Verify is on).
func TestFuseAdjacentLocks(t *testing.T) {
	res, err := Synthesize(fuseProgram(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := ir.Print(res.Sections[1])
	if !strings.Contains(out, "lockBatch([s2, {add(j)}], [m, {put(k,s2)}]);") {
		t.Errorf("expected fused prologue with s2 before m (rank order):\n%s", out)
	}
	var batches []*ir.LockBatch
	walkStmts(res.Sections[1].Body, func(s ir.Stmt) {
		if b, ok := s.(*ir.LockBatch); ok {
			batches = append(batches, b)
		}
	})
	if len(batches) != 1 || len(batches[0].Entries) != 2 {
		t.Fatalf("batches = %v", batches)
	}
	r0 := res.Rank("Set")
	r1 := res.Rank("Map")
	if !(r0 < r1) {
		t.Fatalf("rank(Set)=%d rank(Map)=%d; test premise broken", r0, r1)
	}
}

// TestFuseOffByDefaultBeforeStageFuse: stopping at StageRefine keeps the
// unfused output (the paper's figures are produced below StageFuse).
func TestFuseOffByDefaultBeforeStageFuse(t *testing.T) {
	res, err := Synthesize(fuseProgram(), Options{StopAfter: StageRefine, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	out := ir.Print(res.Sections[1])
	if strings.Contains(out, "lockBatch") {
		t.Errorf("StageRefine output must not contain lockBatch:\n%s", out)
	}
	if !strings.Contains(out, "s2.lock({add(j)});") || !strings.Contains(out, "m.lock({put(k,s2)});") {
		t.Errorf("unfused locks missing:\n%s", out)
	}
}

// TestFuseNeverCrossesRankBoundary: entries of a batch are in
// non-decreasing rank order and same-rank neighbours merge into one
// multi-variable entry — but a guarded LV is never pulled into a batch.
func TestFuseNeverCrossesRankBoundary(t *testing.T) {
	rankOf := func(v string) int {
		switch v {
		case "a", "b":
			return 0
		case "c":
			return 1
		}
		return -1
	}
	set := adtspecs.All()["Set"].AllOpsSet()
	mk := func(v string, guarded bool) *ir.LV {
		return &ir.LV{Var: v, Set: set, Guarded: guarded}
	}

	// a, b (rank 0, same set) then c (rank 1): one batch, two entries,
	// the first covering both rank-0 variables.
	blk := fuseBlock(ir.Block{mk("a", false), mk("b", false), mk("c", false)}, rankOf)
	if len(blk) != 1 {
		t.Fatalf("expected one fused statement, got %d: %v", len(blk), blk)
	}
	lb, ok := blk[0].(*ir.LockBatch)
	if !ok {
		t.Fatalf("not a LockBatch: %T", blk[0])
	}
	if len(lb.Entries) != 2 || len(lb.Entries[0].Vars) != 2 || lb.Entries[1].Vars[0] != "c" {
		t.Fatalf("entries = %+v", lb.Entries)
	}

	// A rank decrease splits the run: c (rank 1) then a, b (rank 0)
	// yields an unfused c plus a batch over {a, b}.
	blk = fuseBlock(ir.Block{mk("c", false), mk("a", false), mk("b", false)}, rankOf)
	if len(blk) != 2 {
		t.Fatalf("expected 2 statements after rank-decrease split, got %d", len(blk))
	}
	if _, ok := blk[0].(*ir.LV); !ok {
		t.Errorf("rank-1 lock should stay unfused, got %T", blk[0])
	}
	if lb, ok := blk[1].(*ir.LockBatch); !ok || len(lb.Entries) != 1 || len(lb.Entries[0].Vars) != 2 {
		t.Errorf("rank-0 pair should fuse, got %v", blk[1])
	}

	// Guarded locks break runs: a, guarded(b), c leaves everything
	// unfused (no run of length ≥ 2 remains).
	blk = fuseBlock(ir.Block{mk("a", false), mk("b", true), mk("c", false)}, rankOf)
	if len(blk) != 3 {
		t.Fatalf("guarded lock must not fuse: got %d statements", len(blk))
	}
	for _, s := range blk {
		if _, ok := s.(*ir.LockBatch); ok {
			t.Errorf("unexpected LockBatch around a guarded lock")
		}
	}

	// Single statements never become one-entry batches.
	blk = fuseBlock(ir.Block{mk("a", false)}, rankOf)
	if _, ok := blk[0].(*ir.LV); !ok {
		t.Errorf("lone lock must stay an LV, got %T", blk[0])
	}
}

// TestFuseRecursesIntoBranches: runs inside if/while bodies fuse too.
func TestFuseRecursesIntoBranches(t *testing.T) {
	rankOf := func(string) int { return 0 }
	set := adtspecs.All()["Set"].AllOpsSet()
	blk := fuseBlock(ir.Block{
		&ir.If{
			Cond: ir.NotNull{Var: "a"},
			Then: ir.Block{&ir.LV{Var: "a", Set: set}, &ir.LV{Var: "b", Set: set}},
		},
		&ir.While{
			Cond: ir.OpaqueCond{Text: "more"},
			Body: ir.Block{&ir.LV{Var: "a", Set: set}, &ir.LV{Var: "b", Set: set}},
		},
	}, rankOf)
	ifs := blk[0].(*ir.If)
	if _, ok := ifs.Then[0].(*ir.LockBatch); !ok || len(ifs.Then) != 1 {
		t.Errorf("then-branch not fused: %v", ifs.Then)
	}
	wh := blk[1].(*ir.While)
	if _, ok := wh.Body[0].(*ir.LockBatch); !ok || len(wh.Body) != 1 {
		t.Errorf("while-body not fused: %v", wh.Body)
	}
}
