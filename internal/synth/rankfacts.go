package synth

import (
	"repro/internal/ir"
	"repro/internal/verify"
)

// ExportOrder feeds a synthesized plan's certified acquisition facts
// into a program-wide lock-order accumulator: every equivalence class
// at its rank, and every (earlier, later) class pair a section can
// acquire on one transaction. Class keys are namespaced by domain (the
// plan's owner — one module's "Map$m" is not another's), so several
// independently synthesized plans embed into one graph; edges are
// branch-aware (the arms of an If, and an Optimistic body versus its
// fallback, extend the same prefix but impose no order on each other).
//
// cmd/semlockvet drives this over every registered plan and then runs
// verify.(*GlobalOrder).Check, extending the per-section Ordering
// certificate to the global deadlock-freedom claim.
func (r *Result) ExportOrder(domain string, g *verify.GlobalOrder) {
	for _, key := range r.Classes.SortedKeys() {
		c := r.Classes.ByKey[key]
		g.AddClass(domain, domain+":"+key, c.Rank)
	}
	for si, sec := range r.Sections {
		section := domain + "/" + sec.Name
		classAt := func(v string) (string, bool) {
			k, ok := r.Classes.ClassOfVar(si, v)
			if !ok {
				return "", false
			}
			return domain + ":" + k, true
		}
		emit := func(prior []string, class string) []string {
			for _, p := range prior {
				g.AddEdge(section, p, class)
			}
			for _, p := range prior {
				if p == class {
					return prior
				}
			}
			return append(prior, class)
		}
		var walk func(blk ir.Block, prior []string) []string
		walk = func(blk ir.Block, prior []string) []string {
			for _, s := range blk {
				switch x := s.(type) {
				case *ir.LV:
					if k, ok := classAt(x.Var); ok {
						prior = emit(prior, k)
					}
				case *ir.LV2:
					if len(x.Vars) > 0 {
						if k, ok := classAt(x.Vars[0]); ok {
							prior = emit(prior, k)
						}
					}
				case *ir.LockBatch:
					// Entries are rank-ordered constituents of one
					// batched acquisition: each gets the prefix edges,
					// plus the batch's own internal order.
					for _, e := range x.Entries {
						if len(e.Vars) == 0 {
							continue
						}
						if k, ok := classAt(e.Vars[0]); ok {
							prior = emit(prior, k)
						}
					}
				case *ir.Observe:
					if len(x.Vars) > 0 {
						if k, ok := classAt(x.Vars[0]); ok {
							prior = emit(prior, k)
						}
					}
				case *ir.If:
					thenOut := walk(x.Then, append([]string(nil), prior...))
					elseOut := walk(x.Else, append([]string(nil), prior...))
					prior = mergePrior(prior, thenOut, elseOut)
				case *ir.While:
					prior = walk(x.Body, prior)
				case *ir.Optimistic:
					bodyOut := walk(x.Body, append([]string(nil), prior...))
					fbOut := walk(x.Fallback, append([]string(nil), prior...))
					prior = mergePrior(prior, bodyOut, fbOut)
				}
			}
			return prior
		}
		walk(sec.Body, nil)
	}
}

func mergePrior(base []string, alts ...[]string) []string {
	merged := append([]string(nil), base...)
	for _, alt := range alts {
		for _, k := range alt {
			dup := false
			for _, have := range merged {
				if have == k {
					dup = true
					break
				}
			}
			if !dup {
				merged = append(merged, k)
			}
		}
	}
	return merged
}
