package synth

import (
	"repro/internal/ir"
)

// This file is the StageOptimistic pass: the static half of the hybrid
// optimistic/pessimistic execution scheme. A synthesized section whose
// every ADT call is a declared observer (core.Spec.Observer) is rewritten
// into the envelope
//
//	optimistic { <body with LV/LV2/LockBatch replaced by observe> }
//	fallback   { <the unchanged pessimistic expansion> }
//
// which internal/gosrc emits as core.Txn.TryOptimistic: the body runs
// without acquiring anything, snapshotting the version counter of every
// mode the pessimistic section would have locked, and validates the
// snapshots at the end; on mismatch the body's results are discarded and
// the fallback — the exact section the pipeline would have emitted
// without this pass — re-runs under locks.
//
// Certification is deliberately conservative. A section is eligible only
// when:
//
//   - every ir.Call resolves to a class whose spec declares the method
//     an observer (abstract-state purity: discarding the body's results
//     after a failed validation must leave no trace in shared state);
//   - no ir.Opaque expression appears anywhere (Opaque is the frontier
//     of the IR's knowledge — applications route I/O and other
//     irrevocable effects through it, and an irrevocable effect cannot
//     be re-run by the fallback);
//   - the section actually locks something (a lock-free section gains
//     nothing from the envelope).
//
// Calls on cycle-wrapped classes are excluded automatically: the
// wrapper's synthetic spec declares no observers.

// makeOptimistic rewrites section si into the optimistic envelope when
// it is certified read-only, and reports whether it did. The fallback
// block aliases the original body; the optimistic body is a transformed
// deep copy, so the two halves share no statement nodes.
func makeOptimistic(si int, sec *ir.Atomic, cs *Classes) bool {
	if !optimisticEligible(si, sec, cs) {
		return false
	}
	body := observeBlock(sec.Clone().Body)
	sec.Body = ir.Block{&ir.Optimistic{Body: body, Fallback: sec.Body}}
	return true
}

// optimisticEligible is the read-only certificate described above.
func optimisticEligible(si int, sec *ir.Atomic, cs *Classes) bool {
	locks := 0
	ok := true
	walkStmts(sec.Body, func(s ir.Stmt) {
		switch x := s.(type) {
		case *ir.LV, *ir.LV2, *ir.LockBatch:
			locks++
		case *ir.Call:
			key, found := cs.ClassOfVar(si, x.Recv)
			if !found {
				ok = false
				return
			}
			c := cs.ByKey[key]
			if c == nil || c.Spec == nil || !c.Spec.IsObserver(x.Method) {
				ok = false
				return
			}
			for _, a := range x.Args {
				if _, opaque := a.(ir.Opaque); opaque {
					ok = false
					return
				}
			}
		case *ir.Assign:
			if _, opaque := x.Rhs.(ir.Opaque); opaque {
				ok = false
			}
		case *ir.Optimistic:
			ok = false // already rewritten; never nest
		}
	})
	return ok && locks > 0
}

// observeBlock rewrites a (freshly cloned) pessimistic block into the
// optimistic body: lock statements become observations of the same
// symbolic sets, and the lock bookkeeping — prologue, epilogue, early
// releases — disappears, since the body holds nothing. The runtime
// observation dedupes per instance exactly as LV dedupes through
// LOCAL_SET, so structural repetition is harmless.
func observeBlock(b ir.Block) ir.Block {
	out := make(ir.Block, 0, len(b))
	for _, s := range b {
		switch x := s.(type) {
		case *ir.Prologue, *ir.Epilogue, *ir.UnlockAllVar:
			// Lock bookkeeping: nothing is held, nothing to track.
		case *ir.LV:
			out = append(out, &ir.Observe{
				Vars:    []string{x.Var},
				Set:     x.Set,
				Generic: x.Generic,
				Guarded: x.Guarded || !x.NoLocalSet,
			})
		case *ir.LV2:
			out = append(out, &ir.Observe{
				Vars:    x.Vars,
				Set:     x.Set,
				Generic: x.Generic,
				Guarded: true,
			})
		case *ir.LockBatch:
			for _, e := range x.Entries {
				out = append(out, &ir.Observe{
					Vars:    e.Vars,
					Set:     e.Set,
					Generic: e.Generic,
					Guarded: e.Guarded || !e.NoLocalSet || len(e.Vars) > 1,
				})
			}
		case *ir.If:
			x.Then = observeBlock(x.Then)
			if x.Else != nil {
				x.Else = observeBlock(x.Else)
			}
			out = append(out, x)
		case *ir.While:
			x.Body = observeBlock(x.Body)
			out = append(out, x)
		default:
			out = append(out, s)
		}
	}
	return out
}
