package synth

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
)

// Stage selects how far the synthesis pipeline runs, so tests and tools
// can inspect the intermediate programs that the paper's figures show.
type Stage int

const (
	// StageInsert stops after the basic OS2PL insertion of §3.3
	// (Figs 13–15).
	StageInsert Stage = iota
	// StageRemoveRedundant additionally removes redundant LV statements
	// (Fig 26).
	StageRemoveRedundant
	// StageElideLocalSet additionally removes LOCAL_SET usage (Fig 27).
	StageElideLocalSet
	// StageEarlyRelease additionally moves unlockAll calls earlier
	// (Fig 28).
	StageEarlyRelease
	// StageNullChecks additionally removes redundant null checks
	// (Fig 17).
	StageNullChecks
	// StageRefine additionally refines the generic symbolic sets (§4),
	// producing the paper's final output (Fig 2).
	StageRefine
	// StageFuse additionally fuses adjacent lock statements into
	// ir.LockBatch nodes for the batched runtime acquisition (see
	// fuse.go). Fusion re-brackets the acquisition sequence without
	// changing it, so every earlier stage's output — the paper's
	// figures — is unaffected.
	StageFuse
	// StageOptimistic additionally rewrites sections certified read-only
	// into the hybrid optimistic/pessimistic envelope (ir.Optimistic,
	// see optimistic.go): the body runs lock-free with version-counter
	// observations, falling back to the unchanged pessimistic expansion
	// on validation failure. Opt-in: the default pipeline stops at
	// StageFuse, because an optimistic fast path acquires no locks and
	// therefore changes the runtime acquisition trace that schedule-level
	// tooling (telemetry schedule corpora, counter maps) predicts from
	// the plan.
	StageOptimistic
)

// Options configures synthesis.
type Options struct {
	// StopAfter truncates the pipeline (default: run everything).
	StopAfter Stage
	// NoRefine keeps the generic lock(+) sets — ablation A1. Equivalent
	// to StopAfter = StageNullChecks.
	NoRefine bool
	// NoMergeSameMethod disables the argument-widening merge of
	// same-method operations in refined sets (§4 / Fig 2's {add(*)}).
	NoMergeSameMethod bool
	// Mode-table compilation parameters (§5); see core.TableOptions.
	Phi                 core.Phi
	MaxModes            int
	DisablePartitioning bool
	DisableMerging      bool
	// Verify runs the internal/verify certificate checker over every
	// synthesized section as a post-pass; synthesis fails with the
	// counterexample paths if any OS2PL obligation is falsified.
	Verify bool
}

// DefaultOptions runs the full pipeline with the paper's evaluation
// parameters (φ onto 64 abstract values), including prologue fusion.
func DefaultOptions() Options {
	return Options{StopAfter: StageFuse, Verify: true}
}

// Result is the synthesis output.
type Result struct {
	// Sections are the transformed atomic sections, in input order,
	// with locking statements inserted.
	Sections []*ir.Atomic
	// Classes is the pointer abstraction, with ranks assigned.
	Classes *Classes
	// Graph is the restrictions-graph of the (possibly wrapped) program.
	Graph *Graph
	// PreWrapGraph is the restrictions-graph before cycle wrapping; it
	// equals Graph when no wrapping occurred.
	PreWrapGraph *Graph
	// Wrappers lists the global-wrapper ADTs introduced for cyclic
	// components (§3.4).
	Wrappers []*WrapperADT
	// Tables holds the compiled locking modes per locked class (§5).
	Tables map[string]*core.ModeTable
}

// WrapperADT is the public view of a global wrapper.
type WrapperADT struct {
	Key       string
	GlobalVar string
	Members   []string
	Spec      *core.Spec
}

// Rank returns the lock-order rank of a class key.
func (r *Result) Rank(classKey string) int {
	c, ok := r.Classes.ByKey[classKey]
	if !ok {
		return -1
	}
	return c.Rank
}

// Synthesize runs the compiler on a program: §3's OS2PL insertion
// (including cycle wrapping), Appendix A's optimizations, §4's
// refinement, and §5's locking-mode compilation.
func Synthesize(p *Program, opts Options) (*Result, error) {
	if len(p.Sections) == 0 {
		return nil, fmt.Errorf("synth: no atomic sections")
	}
	if err := ir.ValidateAll(p.Sections); err != nil {
		return nil, fmt.Errorf("synth: invalid input: %w", err)
	}
	cs, err := computeClasses(p)
	if err != nil {
		return nil, err
	}
	g := buildRestrictions(p, cs)
	preWrap := g

	p2, wrappers := wrapCycles(p, cs, g)
	if len(wrappers) > 0 {
		cs, err = computeClasses(p2)
		if err != nil {
			return nil, fmt.Errorf("synth: after wrapping: %w", err)
		}
		g = buildRestrictions(p2, cs)
	}

	order, err := topoOrder(g, cs.appearance)
	if err != nil {
		return nil, err
	}
	for rank, key := range order {
		cs.ByKey[key].Rank = rank
	}
	res := &Result{Classes: cs, Graph: g, PreWrapGraph: preWrap}
	for _, w := range wrappers {
		res.Wrappers = append(res.Wrappers, &WrapperADT{
			Key: w.Key, GlobalVar: w.GlobalVar, Members: w.Members, Spec: w.Spec,
		})
		c := cs.ByKey[w.Key]
		c.Wrapped = true
		c.Members = w.Members
		c.GlobalVar = w.GlobalVar
	}

	for si, sec := range p2.Sections {
		out := insertLocking(si, sec, cs)
		if opts.StopAfter >= StageRemoveRedundant {
			removeRedundantLV(out)
		}
		if opts.StopAfter >= StageElideLocalSet {
			elideLocalSet(si, out, cs)
		}
		if opts.StopAfter >= StageEarlyRelease {
			earlyRelease(si, out, cs)
		}
		if opts.StopAfter >= StageNullChecks {
			removeNullChecks(out)
		}
		if opts.StopAfter >= StageRefine && !opts.NoRefine {
			refineSection(si, out, cs, !opts.NoMergeSameMethod)
		}
		res.Sections = append(res.Sections, out)
	}

	res.Tables = buildTables(res, cs, opts)

	// Fusion runs after buildTables (which collects sets from LV/LV2
	// statements) and before verification, so every fused section is
	// certified in its fused form — the verifier expands each LockBatch
	// into its per-set obligations.
	if opts.StopAfter >= StageFuse {
		for si, sec := range res.Sections {
			fuseLockBatches(si, sec, cs)
		}
	}

	// The optimistic rewrite runs last, after fusion, so the fallback
	// block is exactly the section the pessimistic pipeline would have
	// emitted (batched prologue included) and the observe statements
	// mirror the final lock statements one-for-one. Verification then
	// certifies the envelope itself: the fallback under the three OS2PL
	// obligations, the body under the read-only obligations.
	if opts.StopAfter >= StageOptimistic {
		for si, sec := range res.Sections {
			makeOptimistic(si, sec, cs)
		}
	}

	if opts.Verify {
		if violations := VerifyResult(res); len(violations) > 0 {
			return nil, verifyError(violations)
		}
	}
	return res, nil
}

// refineSection replaces each lock statement's generic set with the
// refined symbolic set holding at its program point (§4).
func refineSection(si int, sec *ir.Atomic, cs *Classes, mergeSameMethod bool) {
	cfg := ir.BuildCFG(sec)
	ref := refineSets(si, cs, cfg, mergeSameMethod)
	classOf := func(v string) string {
		k, _ := cs.ClassOfVar(si, v)
		return k
	}
	walkStmts(sec.Body, func(s ir.Stmt) {
		id, ok := cfg.NodeOf(s)
		if !ok {
			return
		}
		switch x := s.(type) {
		case *ir.LV:
			if set := ref.At(id, classOf(x.Var)); len(set) > 0 {
				x.Set = set
				x.Generic = false
			}
		case *ir.LV2:
			if set := ref.At(id, classOf(x.Vars[0])); len(set) > 0 {
				x.Set = set
				x.Generic = false
			}
		}
	})
}

// buildTables compiles one mode table per locked class from the
// symbolic sets its lock statements use (§5).
func buildTables(res *Result, cs *Classes, opts Options) map[string]*core.ModeTable {
	setsByClass := make(map[string][]core.SymSet)
	for si, sec := range res.Sections {
		classOf := func(v string) string {
			k, _ := cs.ClassOfVar(si, v)
			return k
		}
		walkStmts(sec.Body, func(s ir.Stmt) {
			var v string
			var set core.SymSet
			var generic bool
			switch x := s.(type) {
			case *ir.LV:
				v, set, generic = x.Var, x.Set, x.Generic
			case *ir.LV2:
				v, set, generic = x.Vars[0], x.Set, x.Generic
			default:
				return
			}
			key := classOf(v)
			if generic {
				set = cs.ByKey[key].Spec.AllOpsSet()
			}
			setsByClass[key] = append(setsByClass[key], set)
		})
	}
	tables := make(map[string]*core.ModeTable, len(setsByClass))
	for key, sets := range setsByClass {
		tables[key] = core.NewModeTable(cs.ByKey[key].Spec, sets, core.TableOptions{
			Phi:                 opts.Phi,
			MaxModes:            opts.MaxModes,
			DisablePartitioning: opts.DisablePartitioning,
			DisableMerging:      opts.DisableMerging,
		})
	}
	return tables
}

// RefinedSetsAtCalls runs the §4 analysis on an original (untransformed)
// section and returns, for each Call statement, the per-class symbolic
// sets holding just before it — the data shown in Fig 18.
func RefinedSetsAtCalls(p *Program, si int, mergeSameMethod bool) (map[*ir.Call]map[string]core.SymSet, error) {
	cs, err := computeClasses(p)
	if err != nil {
		return nil, err
	}
	sec := p.Sections[si]
	cfg := ir.BuildCFG(sec)
	ref := refineSets(si, cs, cfg, mergeSameMethod)
	out := make(map[*ir.Call]map[string]core.SymSet)
	for _, id := range cfg.CallNodes() {
		c := cfg.Nodes[id].Stmt.(*ir.Call)
		m := make(map[string]core.SymSet, len(ref.in[id]))
		for k, v := range ref.in[id] {
			m[k] = v
		}
		out[c] = m
	}
	return out, nil
}
