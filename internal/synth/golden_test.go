package synth_test

import (
	"testing"

	"repro/internal/adtspecs"
	"repro/internal/ir"
	"repro/internal/papersec"
	"repro/internal/synth"
)

// paperProgram bundles the paper's example sections with the Fig 3(b)
// style specifications.
func paperProgram(secs ...*ir.Atomic) *synth.Program {
	return &synth.Program{Sections: secs, Specs: adtspecs.All()}
}

func synthesizeAt(t *testing.T, p *synth.Program, stage synth.Stage) *synth.Result {
	t.Helper()
	res, err := synth.Synthesize(p, synth.Options{StopAfter: stage, Verify: true})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	return res
}

func expectSection(t *testing.T, got *ir.Atomic, want string) {
	t.Helper()
	if s := ir.Print(got); s != want {
		t.Errorf("synthesized section mismatch:\n--- got ---\n%s--- want ---\n%s", s, want)
	}
}

// TestFig14 reproduces the basic (non-optimized) insertion for the
// atomic section of Fig 1, using the order map < set < queue.
func TestFig14(t *testing.T) {
	res := synthesizeAt(t, paperProgram(papersec.Fig1()), synth.StageInsert)
	expectSection(t, res.Sections[0], `atomic fig1 {
  LOCAL_SET.init(); // prologue
  LV(map);
  set=map.get(id);
  if(set==null) {
    set=new Set();
    LV(map);
    map.put(id, set);
  }
  LV(map);
  LV(set);
  set.add(x);
  LV(map);
  LV(set);
  set.add(y);
  if(flag) {
    LV(map);
    LV(queue);
    queue.enqueue(set);
    LV(map);
    map.remove(id);
  }
  foreach(t : LOCAL_SET) t.unlockAll(); // epilogue
}
`)
}

// TestFig13 reproduces the basic insertion for the atomic section of
// Fig 7 (m < s1,s2 < q), including the LV2 dynamic ordering of the two
// same-class Sets.
func TestFig13(t *testing.T) {
	res := synthesizeAt(t, paperProgram(papersec.Fig7()), synth.StageInsert)
	expectSection(t, res.Sections[0], `atomic fig7 {
  LOCAL_SET.init(); // prologue
  LV(m);
  s1=m.get(key1);
  LV(m);
  s2=m.get(key2);
  if(s1!=null && s2!=null) {
    LV2(s1,s2);
    s1.add(1);
    LV(s2);
    s2.add(2);
    LV(q);
    q.enqueue(s1);
  }
  foreach(t : LOCAL_SET) t.unlockAll(); // epilogue
}
`)
}

// TestFig15 reproduces the cyclic-component handling for the loop
// section of Fig 9: the Set class self-loops in the restrictions-graph
// (Fig 10), so its objects are wrapped behind the global ADT p1 and
// set.size() becomes p1.size(set).
func TestFig15(t *testing.T) {
	res := synthesizeAt(t, paperProgram(papersec.Fig9()), synth.StageInsert)
	if len(res.Wrappers) != 1 {
		t.Fatalf("wrappers = %d, want 1", len(res.Wrappers))
	}
	w := res.Wrappers[0]
	if w.GlobalVar != "p1" || len(w.Members) != 1 || w.Members[0] != "Set" {
		t.Errorf("wrapper = %+v, want p1 wrapping [Set]", w)
	}
	expectSection(t, res.Sections[0], `atomic fig9 {
  LOCAL_SET.init(); // prologue
  sum=0;
  i=0;
  while(i<n) {
    LV(map);
    set=map.get(i);
    if(set!=null) {
      LV(map);
      LV(p1);
      sz=p1.size(set);
      sum=sum+sz;
    }
    i=i+1;
  }
  foreach(t : LOCAL_SET) t.unlockAll(); // epilogue
}
`)
}

// TestFig26 reproduces the removal of redundant LV statements.
func TestFig26(t *testing.T) {
	res := synthesizeAt(t, paperProgram(papersec.Fig1()), synth.StageRemoveRedundant)
	expectSection(t, res.Sections[0], `atomic fig1 {
  LOCAL_SET.init(); // prologue
  LV(map);
  set=map.get(id);
  if(set==null) {
    set=new Set();
    map.put(id, set);
  }
  LV(set);
  set.add(x);
  set.add(y);
  if(flag) {
    LV(queue);
    queue.enqueue(set);
    map.remove(id);
  }
  foreach(t : LOCAL_SET) t.unlockAll(); // epilogue
}
`)
}

// TestFig27 reproduces the LOCAL_SET elision: every LV becomes a guarded
// direct lock, per-variable unlocks appear at the end, and the
// prologue/epilogue disappear.
func TestFig27(t *testing.T) {
	res := synthesizeAt(t, paperProgram(papersec.Fig1()), synth.StageElideLocalSet)
	expectSection(t, res.Sections[0], `atomic fig1 {
  if(map!=null) map.lock(+);
  set=map.get(id);
  if(set==null) {
    set=new Set();
    map.put(id, set);
  }
  if(set!=null) set.lock(+);
  set.add(x);
  set.add(y);
  if(flag) {
    if(queue!=null) queue.lock(+);
    queue.enqueue(set);
    map.remove(id);
  }
  if(map!=null) map.unlockAll();
  if(set!=null) set.unlockAll();
  if(queue!=null) queue.unlockAll();
}
`)
}

// TestFig28 reproduces the early lock release: the queue's unlockAll
// moves to just after queue.enqueue, before map.remove.
func TestFig28(t *testing.T) {
	res := synthesizeAt(t, paperProgram(papersec.Fig1()), synth.StageEarlyRelease)
	expectSection(t, res.Sections[0], `atomic fig1 {
  if(map!=null) map.lock(+);
  set=map.get(id);
  if(set==null) {
    set=new Set();
    map.put(id, set);
  }
  if(set!=null) set.lock(+);
  set.add(x);
  set.add(y);
  if(flag) {
    if(queue!=null) queue.lock(+);
    queue.enqueue(set);
    if(queue!=null) queue.unlockAll();
    map.remove(id);
  }
  if(map!=null) map.unlockAll();
  if(set!=null) set.unlockAll();
}
`)
}

// TestFig17 reproduces the removal of redundant null checks: map and
// queue are non-null globals, and set is non-null after the
// if(set==null) branch on both arms.
func TestFig17(t *testing.T) {
	res := synthesizeAt(t, paperProgram(papersec.Fig1()), synth.StageNullChecks)
	expectSection(t, res.Sections[0], `atomic fig1 {
  map.lock(+);
  set=map.get(id);
  if(set==null) {
    set=new Set();
    map.put(id, set);
  }
  set.lock(+);
  set.add(x);
  set.add(y);
  if(flag) {
    queue.lock(+);
    queue.enqueue(set);
    queue.unlockAll();
    map.remove(id);
  }
  map.unlockAll();
  set.unlockAll();
}
`)
}

// TestFig2 reproduces the final compiler output of Fig 2: the optimized
// section with refined symbolic sets.
func TestFig2(t *testing.T) {
	res := synthesizeAt(t, paperProgram(papersec.Fig1()), synth.StageRefine)
	expectSection(t, res.Sections[0], `atomic fig1 {
  map.lock({get(id),put(id,*),remove(id)});
  set=map.get(id);
  if(set==null) {
    set=new Set();
    map.put(id, set);
  }
  set.lock({add(*)});
  set.add(x);
  set.add(y);
  if(flag) {
    queue.lock({enqueue(set)});
    queue.enqueue(set);
    queue.unlockAll();
    map.remove(id);
  }
  map.unlockAll();
  set.unlockAll();
}
`)
}

// TestFig18 reproduces the inferred symbolic sets for the variable map
// at each call of Fig 1 (the annotations of Fig 18).
func TestFig18(t *testing.T) {
	p := paperProgram(papersec.Fig1())
	sets, err := synth.RefinedSetsAtCalls(p, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	// The set holding just before each call. Note Fig 18's annotations
	// sit after each line: the {put(id,*),remove(id)} annotation holds
	// before "set=new Set()", whose kill is what stars the put's second
	// argument; immediately before the put itself the set still names
	// the (freshly assigned) variable.
	want := map[string]string{ // recv.method → Map set just before it
		"map.get":       "{get(id),put(id,*),remove(id)}",
		"map.put":       "{put(id,set),remove(id)}",
		"set.add":       "{remove(id)}", // both adds
		"queue.enqueue": "{remove(id)}",
		"map.remove":    "{remove(id)}",
	}
	found := make(map[string]bool)
	for call, byClass := range sets {
		key := call.Recv + "." + call.Method
		w, ok := want[key]
		if !ok {
			t.Errorf("unexpected call %s", key)
			continue
		}
		found[key] = true
		if got := byClass["Map"].Key(); got != w {
			t.Errorf("Map set before %s = %s, want %s", key, got, w)
		}
	}
	for key := range want {
		if !found[key] {
			t.Errorf("call %s not analyzed", key)
		}
	}
}

// TestFig18BeforePut checks the un-merged set just before map.put still
// names the set variable position as * (killed by "set=new Set()").
func TestFig18BeforePut(t *testing.T) {
	p := paperProgram(papersec.Fig1())
	sets, err := synth.RefinedSetsAtCalls(p, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for call, byClass := range sets {
		if call.Method != "put" {
			continue
		}
		// Directly before the put, the op is put(id,set): the analysis
		// evaluates arguments at the call point, where set is the fresh
		// Set.
		if got := byClass["Map"].Key(); got != "{put(id,set),remove(id)}" {
			t.Errorf("Map set before put = %s, want {put(id,set),remove(id)}", got)
		}
	}
}
