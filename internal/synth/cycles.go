package synth

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
)

// wrapperInfo describes one global-wrapper ADT introduced for a cyclic
// component of the restrictions-graph (§3.4).
type wrapperInfo struct {
	Key       string   // class key of the wrapper
	GlobalVar string   // the paper's p_C
	Members   []string // the wrapped class keys
	Spec      *core.Spec
	// methodName maps (member class key, original method) to the
	// wrapper method name.
	methodName map[[2]string]string
}

// wrapCycles finds the cyclic components of the restrictions-graph and
// rewrites the program so every call on a member class goes through a
// fresh global wrapper ADT whose operations take the original instance
// as their first argument (as in Fig 15's GlobalWrapper1). It returns
// the rewritten program (sections are cloned) and the wrappers created.
func wrapCycles(p *Program, cs *Classes, g *Graph) (*Program, []*wrapperInfo) {
	comps := g.CyclicComponents()
	if len(comps) == 0 {
		return p, nil
	}

	memberOf := make(map[string]*wrapperInfo)
	var wrappers []*wrapperInfo
	for i, comp := range comps {
		w := &wrapperInfo{
			Key:        "GlobalWrapper" + fmt.Sprint(i+1),
			GlobalVar:  "p" + fmt.Sprint(i+1),
			Members:    comp,
			methodName: make(map[[2]string]string),
		}
		w.Spec = buildWrapperSpec(w, cs)
		wrappers = append(wrappers, w)
		for _, m := range comp {
			memberOf[m] = w
		}
	}

	out := &Program{Specs: make(map[string]*core.Spec), ClassOf: nil}
	for k, v := range p.Specs {
		out.Specs[k] = v
	}
	for _, w := range wrappers {
		out.Specs[w.Key] = w.Spec
	}
	// Wrapper variables form one class each (keyed by the wrapper
	// type); original variables keep their abstraction.
	wrapKeys := make(map[string]bool, len(wrappers))
	for _, w := range wrappers {
		wrapKeys[w.Key] = true
	}
	orig := p.ClassOf
	out.ClassOf = func(sec *ir.Atomic, v string) string {
		if prm, ok := sec.Var(v); ok && wrapKeys[prm.Type] {
			return prm.Type
		}
		if orig != nil {
			return orig(sec, v)
		}
		return sec.ADTType(v)
	}

	for si, sec := range p.Sections {
		nsec := sec.Clone()
		used := make(map[string]bool)
		nsec.Body = rewriteBlock(nsec.Body, func(c *ir.Call) {
			key, ok := cs.ClassOfVar(si, c.Recv)
			if !ok {
				return
			}
			w, wrapped := memberOf[key]
			if !wrapped {
				return
			}
			c.Args = append([]ir.Expr{ir.VarRef{Name: c.Recv}}, c.Args...)
			c.Method = w.methodName[[2]string{key, c.Method}]
			c.Recv = w.GlobalVar
			used[w.GlobalVar] = true
		})
		for _, w := range wrappers {
			if used[w.GlobalVar] {
				nsec.Vars = append(nsec.Vars, ir.Param{
					Name: w.GlobalVar, Type: w.Key, IsADT: true, NonNull: true,
				})
			}
		}
		out.Sections = append(out.Sections, nsec)
	}
	return out, wrappers
}

// buildWrapperSpec derives the wrapper's commutativity specification:
// wrapped operations on instances of different member classes always
// commute (distinct ADT instances share no state, §2.1); operations on
// the same member class commute when the instances differ (first
// arguments unequal) or when the original condition holds on the
// shifted argument positions.
func buildWrapperSpec(w *wrapperInfo, cs *Classes) *core.Spec {
	multi := len(w.Members) > 1
	var sigs []core.MethodSig
	type method struct {
		member string
		orig   core.MethodSig
		name   string
	}
	var methods []method
	for _, m := range w.Members {
		spec := cs.ByKey[m].Spec
		for _, sig := range spec.Methods() {
			name := sig.Name
			if multi {
				name = m + "_" + sig.Name
			}
			w.methodName[[2]string{m, sig.Name}] = name
			sigs = append(sigs, core.MethodSig{Name: name, Arity: sig.Arity + 1})
			methods = append(methods, method{member: m, orig: sig, name: name})
		}
	}
	spec := core.NewSpec(w.Key, sigs...)
	for i, a := range methods {
		for j, b := range methods {
			if j < i {
				continue
			}
			if a.member != b.member {
				spec.Commute(a.name, b.name, core.Always)
				continue
			}
			orig := cs.ByKey[a.member].Spec.Cond(a.orig.Name, b.orig.Name)
			spec.Commute(a.name, b.name,
				core.OrCond(core.ArgsNE(0, 0), core.ShiftCond(orig, 1, 1)))
		}
	}
	return spec
}

// rewriteBlock applies f to every Call statement in place (the blocks
// themselves are already clones) and returns the block.
func rewriteBlock(b ir.Block, f func(*ir.Call)) ir.Block {
	for _, s := range b {
		switch x := s.(type) {
		case *ir.Call:
			f(x)
		case *ir.If:
			rewriteBlock(x.Then, f)
			rewriteBlock(x.Else, f)
		case *ir.While:
			rewriteBlock(x.Body, f)
		}
	}
	return b
}
