package synth

import (
	"sort"

	"repro/internal/ir"
)

// ---- shared structural forward-analysis framework ----
//
// Facts are sets of variable names flowing forward through the section;
// branches refine facts per arm, joins intersect, loops iterate to a
// fixpoint. record is invoked with the facts holding just before each
// statement on the final (converged) pass.

type facts map[string]bool

func (f facts) clone() facts {
	c := make(facts, len(f))
	for k := range f {
		c[k] = true
	}
	return c
}

func intersect(a, b facts) facts {
	out := make(facts)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func factsEqual(a, b facts) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

type forwardAnalysis struct {
	// transfer updates facts for a non-branching statement.
	transfer func(s ir.Stmt, in facts)
	// branch returns the facts for the then and else arms.
	branch func(c ir.Cond, in facts) (thenIn, elseIn facts)
	// record is called with the facts holding before each statement.
	record func(s ir.Stmt, in facts)
}

func (fa *forwardAnalysis) run(b ir.Block, in facts) facts {
	cur := in
	for _, s := range b {
		if fa.record != nil {
			fa.record(s, cur)
		}
		switch x := s.(type) {
		case *ir.If:
			thenIn, elseIn := fa.branch(x.Cond, cur)
			thenOut := fa.run(x.Then, thenIn)
			elseOut := elseIn
			if x.Else != nil {
				elseOut = fa.run(x.Else, elseIn)
			}
			cur = intersect(thenOut, elseOut)
		case *ir.While:
			head := cur
			for {
				bodyIn, _ := fa.branch(x.Cond, head)
				bodyOut := fa.run(x.Body, bodyIn)
				next := intersect(head, bodyOut)
				if factsEqual(next, head) {
					break
				}
				head = next
			}
			// One more pass so record sees converged facts.
			bodyIn, exitIn := fa.branch(x.Cond, head)
			fa.run(x.Body, bodyIn)
			cur = exitIn
		default:
			fa.transfer(s, cur)
		}
	}
	return cur
}

func sameBranch(_ ir.Cond, in facts) (facts, facts) { return in.clone(), in.clone() }

// ---- Transformation 1: removing redundant LV (Appendix A) ----

// removeRedundantLV removes LV/LV2 statements that are provably
// redundant:
//
//   - rule 1: the variable's object is already locked on every path from
//     the section entry (and the variable has not been reassigned since
//     the lock), so the LV has no effect — e.g. the LV(map) at Fig 14
//     line 9 removed in Fig 26;
//   - rule 2: the variable has no ADT use reachable from the LV, so the
//     lock is never needed.
//
// The section is modified in place.
func removeRedundantLV(sec *ir.Atomic) {
	// Pass 1: must-locked facts before every lock statement.
	lockedAt := make(map[ir.Stmt]facts)
	fa := &forwardAnalysis{
		branch: sameBranch,
		transfer: func(s ir.Stmt, in facts) {
			switch x := s.(type) {
			case *ir.LV:
				in[x.Var] = true
			case *ir.LV2:
				for _, v := range x.Vars {
					in[v] = true
				}
			case *ir.Assign:
				delete(in, x.Lhs)
			case *ir.Call:
				if x.Assign != "" {
					delete(in, x.Assign)
				}
			}
		},
		record: func(s ir.Stmt, in facts) {
			switch s.(type) {
			case *ir.LV, *ir.LV2:
				lockedAt[s] = in.clone()
			}
		},
	}
	fa.run(sec.Body, make(facts))

	// Rule 2 needs reachable-use queries on the current AST.
	cfg := ir.BuildCFG(sec)

	redundant := func(s ir.Stmt) bool {
		switch x := s.(type) {
		case *ir.LV:
			if lockedAt[s][x.Var] {
				return true
			}
			if id, ok := cfg.NodeOf(s); ok && !cfg.UsedAtOrAfter(id, x.Var) {
				return true
			}
		case *ir.LV2:
			all := true
			for _, v := range x.Vars {
				if !lockedAt[s][v] {
					all = false
					break
				}
			}
			if all {
				return true
			}
		}
		return false
	}
	sec.Body = filterBlock(sec.Body, redundant)
}

// filterBlock removes statements for which drop returns true, recursing
// into branches and loops.
func filterBlock(b ir.Block, drop func(ir.Stmt) bool) ir.Block {
	var out ir.Block
	for _, s := range b {
		if drop(s) {
			continue
		}
		switch x := s.(type) {
		case *ir.If:
			x.Then = filterBlock(x.Then, drop)
			x.Else = filterBlock(x.Else, drop)
		case *ir.While:
			x.Body = filterBlock(x.Body, drop)
		}
		out = append(out, s)
	}
	return out
}

// ---- Transformation 2: removing redundant LOCAL_SET usage ----

// elideLocalSet converts LV(x) into "if(x!=null) x.lock(...)" and adds
// "if(x!=null) x.unlockAll()" at the section end for every variable x
// for which LOCAL_SET is provably unnecessary (Appendix A):
//
//	(1) no path contains two locking operations on variables that may
//	    point to the same object (same equivalence class), so
//	    re-locking cannot occur;
//	(2) x is not modified on any path from an LV(x) to the section end,
//	    so the end-of-section unlock releases the locked object.
//
// The paper's condition (3) — x is null at the end of LV-free paths —
// exists because the paper's unlockAll must only run on ADTs the
// transaction actually locked; our runtime's per-transaction unlock is a
// no-op on unheld instances, so spurious unlocks are harmless and (3)
// is not required. (Fig 27 itself relies on this tolerance: on ¬flag
// paths queue is non-null, never locked, and still unlockAll'd.)
//
// When every lock statement is elided, the prologue and epilogue are
// removed (Fig 27).
func elideLocalSet(si int, sec *ir.Atomic, cs *Classes) {
	cfg := ir.BuildCFG(sec)

	type lockOcc struct {
		stmt ir.Stmt
		vars []string
	}
	var occs []lockOcc
	walkStmts(sec.Body, func(s ir.Stmt) {
		switch x := s.(type) {
		case *ir.LV:
			occs = append(occs, lockOcc{s, []string{x.Var}})
		case *ir.LV2:
			occs = append(occs, lockOcc{s, x.Vars})
		}
	})

	classOf := func(v string) string {
		k, _ := cs.ClassOfVar(si, v)
		return k
	}

	// Condition (1), per class: no lock occurrence of the class reaches
	// another (or itself through a loop).
	classOK := make(map[string]bool)
	for _, o := range occs {
		for _, v := range o.vars {
			classOK[classOf(v)] = true
		}
	}
	for key := range classOK {
		var ids []int
		for _, o := range occs {
			locksClass := false
			for _, v := range o.vars {
				if classOf(v) == key {
					locksClass = true
				}
			}
			if locksClass {
				if id, ok := cfg.NodeOf(o.stmt); ok {
					ids = append(ids, id)
				}
			}
		}
		for _, u := range ids {
			for _, v := range ids {
				if cfg.ReachesProperly(u, v) {
					classOK[key] = false
				}
			}
		}
	}

	// Condition (2), per variable: no assignment after a lock of it.
	varOK := func(v string) bool {
		if !classOK[classOf(v)] {
			return false
		}
		for _, o := range occs {
			holds := false
			for _, ov := range o.vars {
				if ov == v {
					holds = true
				}
			}
			if !holds {
				continue
			}
			u, _ := cfg.NodeOf(o.stmt)
			for _, n := range cfg.Nodes {
				if cfg.AssignedVar(n.ID) == v && cfg.ReachesProperly(u, n.ID) {
					return false
				}
			}
		}
		return true
	}

	// Apply: flip eligible lock statements and collect unlock vars.
	var elided []string
	anyKept := false
	walkStmts(sec.Body, func(s ir.Stmt) {
		switch x := s.(type) {
		case *ir.LV:
			if varOK(x.Var) {
				x.NoLocalSet = true
				x.Guarded = true
				elided = append(elided, x.Var)
			} else {
				anyKept = true
			}
		case *ir.LV2:
			ok := true
			for _, v := range x.Vars {
				if !varOK(v) {
					ok = false
				}
			}
			if ok {
				x.NoLocalSet = true
				elided = append(elided, x.Vars...)
			} else {
				anyKept = true
			}
		}
	})
	if len(elided) == 0 {
		return
	}

	// Deterministic unlock order: class rank, then name.
	sort.Slice(elided, func(i, j int) bool {
		ri := cs.ByKey[classOf(elided[i])].Rank
		rj := cs.ByKey[classOf(elided[j])].Rank
		if ri != rj {
			return ri < rj
		}
		return elided[i] < elided[j]
	})
	var unlocks ir.Block
	seen := make(map[string]bool)
	for _, v := range elided {
		if !seen[v] {
			seen[v] = true
			unlocks = append(unlocks, &ir.UnlockAllVar{Var: v, Guarded: true})
		}
	}

	// Insert unlocks before the epilogue; drop prologue/epilogue when
	// nothing uses LOCAL_SET anymore.
	var out ir.Block
	for _, s := range sec.Body {
		if _, isEpi := s.(*ir.Epilogue); isEpi {
			out = append(out, unlocks...)
			if anyKept {
				out = append(out, s)
			}
			continue
		}
		if _, isPro := s.(*ir.Prologue); isPro && !anyKept {
			continue
		}
		out = append(out, s)
	}
	sec.Body = out
}

// walkStmts visits every statement in the block tree.
func walkStmts(b ir.Block, f func(ir.Stmt)) {
	for _, s := range b {
		f(s)
		switch x := s.(type) {
		case *ir.If:
			walkStmts(x.Then, f)
			walkStmts(x.Else, f)
		case *ir.While:
			walkStmts(x.Body, f)
		case *ir.Optimistic:
			walkStmts(x.Body, f)
			walkStmts(x.Fallback, f)
		}
	}
}

// ---- Transformation 3: early lock release ----

// earlyRelease moves trailing "if(x!=null) x.unlockAll()" statements to
// the earliest program point at which (Appendix A):
//
//	(1) no operation on x's object is reachable — under the pointer
//	    abstraction "x's object" means any call whose receiver is in
//	    x's equivalence class, since a same-class variable may alias x
//	    and unlockAll releases the shared instance;
//	(2) no locking operation is reachable (two-phase rule);
//	(3) the point post-dominates every lock of x (so the object is
//	    always released; paths bypassing the point never locked x).
//
// A move is performed only when some ADT operation remains reachable
// from the new point — otherwise the unlock already sits at an
// equivalent position and stays at the section end (this keeps map and
// set at the end in Fig 28 while queue moves inside the branch).
func earlyRelease(si int, sec *ir.Atomic, cs *Classes) {
	classOf := func(v string) string {
		k, _ := cs.ClassOfVar(si, v)
		return k
	}
	// Trailing unlock statements at the section's top level.
	var trailing []*ir.UnlockAllVar
	for _, s := range sec.Body {
		if u, ok := s.(*ir.UnlockAllVar); ok {
			trailing = append(trailing, u)
		}
	}
	for _, u := range trailing {
		// Rebuild the CFG each round: a previous move changes node ids.
		cfg := ir.BuildCFG(sec)
		dist := cfg.ShortestDistanceFromEntry()
		var lockNodes []int
		locksOf := make(map[string][]int)
		walkStmts(sec.Body, func(s ir.Stmt) {
			switch x := s.(type) {
			case *ir.LV:
				if id, ok := cfg.NodeOf(s); ok {
					lockNodes = append(lockNodes, id)
					locksOf[x.Var] = append(locksOf[x.Var], id)
				}
			case *ir.LV2:
				if id, ok := cfg.NodeOf(s); ok {
					lockNodes = append(lockNodes, id)
					for _, v := range x.Vars {
						locksOf[v] = append(locksOf[v], id)
					}
				}
			}
		})
		callNodes := cfg.CallNodes()
		x := u.Var
		// Candidate points: immediately after each statement S
		// (represented by S's CFG end node).
		best := -1
		bestDist := 1 << 30
		var bestStmt ir.Stmt
		walkStmts(sec.Body, func(s ir.Stmt) {
			if _, isUnlock := s.(*ir.UnlockAllVar); isUnlock {
				return
			}
			n, ok := cfg.EndNodeOf(s)
			if !ok {
				return
			}
			// (1) no use of an object x may point to after the point.
			for _, c := range callNodes {
				recv := cfg.Nodes[c].Stmt.(*ir.Call).Recv
				if classOf(recv) == classOf(x) && cfg.ReachesProperly(n, c) {
					return
				}
			}
			// (2) no lock after the point.
			for _, l := range lockNodes {
				if cfg.ReachesProperly(n, l) {
					return
				}
			}
			// (3) the point post-dominates every lock of x.
			for _, l := range locksOf[x] {
				if !cfg.PostDominates(n, l) {
					return
				}
			}
			// Only worthwhile when work remains after the point.
			works := false
			for _, c := range callNodes {
				if cfg.ReachesProperly(n, c) {
					works = true
				}
			}
			if !works {
				return
			}
			if dist[n] >= 0 && dist[n] < bestDist {
				bestDist = dist[n]
				best = n
				bestStmt = s
			}
		})
		if best < 0 {
			continue
		}
		// Move: remove from the tail, insert right after bestStmt.
		sec.Body = removeStmt(sec.Body, u)
		sec.Body = insertAfter(sec.Body, bestStmt, u)
	}
}

func removeStmt(b ir.Block, target ir.Stmt) ir.Block {
	return filterBlock(b, func(s ir.Stmt) bool { return s == target })
}

func insertAfter(b ir.Block, after ir.Stmt, ins ir.Stmt) ir.Block {
	var out ir.Block
	for _, s := range b {
		switch x := s.(type) {
		case *ir.If:
			x.Then = insertAfter(x.Then, after, ins)
			x.Else = insertAfter(x.Else, after, ins)
		case *ir.While:
			x.Body = insertAfter(x.Body, after, ins)
		}
		out = append(out, s)
		if s == after {
			out = append(out, ins)
		}
	}
	return out
}

// ---- Transformation 4: removing redundant if-statements ----

// removeNullChecks drops the "if(x!=null)" guard from lock and unlock
// statements at points where x is provably non-null: non-null on entry
// (declared NonNull), allocated by "new", or dominated by a null-check
// branch that pins the fact (Appendix A; Fig 27 → Fig 17).
func removeNullChecks(sec *ir.Atomic) {
	nonNullAt := make(map[ir.Stmt]facts)
	fa := &forwardAnalysis{
		transfer: func(s ir.Stmt, in facts) {
			switch x := s.(type) {
			case *ir.Assign:
				switch {
				case x.NewType != "":
					in[x.Lhs] = true
				default:
					if vr, ok := x.Rhs.(ir.VarRef); ok && in[vr.Name] {
						in[x.Lhs] = true
					} else if _, isLit := x.Rhs.(ir.Lit); isLit {
						in[x.Lhs] = true
					} else {
						delete(in, x.Lhs)
					}
				}
			case *ir.Call:
				if x.Assign != "" {
					delete(in, x.Assign) // result may be null (e.g. get)
				}
			}
		},
		branch: func(c ir.Cond, in facts) (facts, facts) {
			thenIn, elseIn := in.clone(), in.clone()
			switch x := c.(type) {
			case ir.IsNull:
				delete(thenIn, x.Var)
				elseIn[x.Var] = true
			case ir.NotNull:
				thenIn[x.Var] = true
				delete(elseIn, x.Var)
			}
			return thenIn, elseIn
		},
		record: func(s ir.Stmt, in facts) {
			switch s.(type) {
			case *ir.LV, *ir.LV2, *ir.UnlockAllVar:
				nonNullAt[s] = in.clone()
			}
		},
	}
	init := make(facts)
	for _, p := range sec.Vars {
		if p.NonNull {
			init[p.Name] = true
		}
	}
	fa.run(sec.Body, init)

	walkStmts(sec.Body, func(s ir.Stmt) {
		switch x := s.(type) {
		case *ir.LV:
			if x.Guarded && nonNullAt[s][x.Var] {
				x.Guarded = false
			}
		case *ir.UnlockAllVar:
			if x.Guarded && nonNullAt[s][x.Var] {
				x.Guarded = false
			}
		}
	})
}
