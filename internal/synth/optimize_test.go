package synth_test

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/papersec"
	"repro/internal/synth"
)

// secOf builds a one-section program over the standard specs.
func secOf(body ir.Block, vars ...ir.Param) *ir.Atomic {
	return &ir.Atomic{Name: "t", Vars: vars, Body: body}
}

var (
	pMap   = ir.Param{Name: "m", Type: "Map", IsADT: true, NonNull: true}
	pMap2  = ir.Param{Name: "m2", Type: "Map", IsADT: true, NonNull: true}
	pSet   = ir.Param{Name: "s", Type: "Set", IsADT: true}
	pKey   = ir.Param{Name: "k", Type: "int"}
)

func mGet(assign string) *ir.Call {
	return &ir.Call{Recv: "m", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "k"}}, Assign: assign}
}

// TestElisionBlockedByReassignment: when a locked variable is reassigned
// after its lock, LOCAL_SET elision condition (2) fails — the output
// keeps the LV form and the prologue/epilogue.
func TestElisionBlockedByReassignment(t *testing.T) {
	sec := secOf(ir.Block{
		mGet("s"),
		&ir.If{Cond: ir.NotNull{Var: "s"}, Then: ir.Block{
			&ir.Call{Recv: "s", Method: "add", Args: []ir.Expr{ir.VarRef{Name: "k"}}},
		}},
		// s reassigned AFTER its lock site — the locked object would be
		// unreachable for the trailing unlock.
		&ir.Assign{Lhs: "s", Rhs: ir.Opaque{Text: "null"}},
		&ir.Call{Recv: "m", Method: "remove", Args: []ir.Expr{ir.VarRef{Name: "k"}}},
	}, pMap, pSet, pKey)
	res := synthesizeAt(t, paperProgram(sec), synth.StageNullChecks)
	out := ir.Print(res.Sections[0])
	if !strings.Contains(out, "LOCAL_SET.init()") {
		t.Errorf("LOCAL_SET must be kept when elision conditions fail:\n%s", out)
	}
	if !strings.Contains(out, "LV(s)") {
		t.Errorf("s's lock must stay in LV form:\n%s", out)
	}
	// m is still eligible: it is never reassigned and locked once.
	if !strings.Contains(out, "m.lock(+)") {
		t.Errorf("m should still be elided:\n%s", out)
	}
}

// TestElisionBlockedByLoop: a lock site inside a loop reaches itself, so
// condition (1) (no path with two locking operations of one class)
// fails and LOCAL_SET stays.
func TestElisionBlockedByLoop(t *testing.T) {
	sec := secOf(ir.Block{
		&ir.While{
			Cond: ir.OpaqueCond{Text: "k>0", Reads: []string{"k"}},
			Body: ir.Block{
				mGet("s"),
				&ir.If{Cond: ir.NotNull{Var: "s"}, Then: ir.Block{
					&ir.Call{Recv: "s", Method: "size", Assign: "k"},
				}},
			},
		},
	}, pMap, pSet, pKey)
	res := synthesizeAt(t, paperProgram(sec), synth.StageElideLocalSet)
	out := ir.Print(res.Sections[0])
	// The Set class self-cycles (s reassigned in the loop), so it is
	// wrapped; the wrapper pointer p1 is locked inside the loop and its
	// lock site reaches itself — condition (1) fails for it.
	if len(res.Wrappers) != 1 {
		t.Fatalf("expected the Set class to be wrapped; got %d wrappers", len(res.Wrappers))
	}
	if !strings.Contains(out, "LOCAL_SET.init()") {
		t.Errorf("loop-locked section must keep LOCAL_SET:\n%s", out)
	}
}

// TestEarlyReleaseNeedsWorkAfter: the unlock only moves earlier when an
// ADT operation remains after the new point; a section whose last
// action is the unlocked variable's own call keeps everything at the
// end (like map and set in Fig 28).
func TestEarlyReleaseNeedsWorkAfter(t *testing.T) {
	sec := secOf(ir.Block{
		mGet("v"),
	}, pMap, ir.Param{Name: "v", Type: "val"}, pKey)
	res := synthesizeAt(t, paperProgram(sec), synth.StageEarlyRelease)
	out := ir.Print(res.Sections[0])
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := strings.TrimSpace(lines[len(lines)-2]) // line before "}"
	if last != "if(m!=null) m.unlockAll();" && last != "m.unlockAll();" {
		t.Errorf("unlock should stay at the end:\n%s", out)
	}
}

// TestEarlyReleaseAcrossInstances: with two independent maps used in
// sequence, the first map's unlock moves to just after its last use.
func TestEarlyReleaseAcrossInstances(t *testing.T) {
	p := paperProgram(secOf(ir.Block{
		mGet("a"),
		&ir.Call{Recv: "m2", Method: "put", Args: []ir.Expr{ir.VarRef{Name: "k"}, ir.VarRef{Name: "a"}}},
	}, pMap, pMap2, pKey, ir.Param{Name: "a", Type: "val"}))
	// Distinct classes for the two maps (independent instances).
	p.ClassOf = func(sec *ir.Atomic, v string) string {
		if v == "m2" {
			return "Map$2"
		}
		return sec.ADTType(v)
	}
	res, err := synth.Synthesize(p, synth.Options{StopAfter: synth.StageEarlyRelease})
	if err != nil {
		t.Fatal(err)
	}
	out := ir.Print(res.Sections[0])
	// m's unlock must appear before m2.put — but m2's lock also stands
	// before m2.put, and no locking may follow an unlock (two-phase), so
	// the earliest legal point is after m2's lock.
	iUnlockM := strings.Index(out, "m.unlockAll()")
	iPut := strings.Index(out, "m2.put")
	if iUnlockM == -1 || iPut == -1 {
		t.Fatalf("missing statements:\n%s", out)
	}
	if iUnlockM > iPut {
		t.Errorf("m should be released before m2.put:\n%s", out)
	}
}

// TestNullCheckKeptWhenUnknown: a variable whose value comes from a map
// get (may be null) keeps its guard when no dominating null test pins
// it.
func TestNullCheckKeptWhenUnknown(t *testing.T) {
	sec := secOf(ir.Block{
		mGet("s"),
		// No null check: s.add would crash at runtime on nil, but the
		// synthesized guard must stay conservative.
		&ir.Call{Recv: "s", Method: "add", Args: []ir.Expr{ir.VarRef{Name: "k"}}},
	}, pMap, pSet, pKey)
	res := synthesizeAt(t, paperProgram(sec), synth.StageNullChecks)
	out := ir.Print(res.Sections[0])
	if !strings.Contains(out, "if(s!=null) s.lock(+)") {
		t.Errorf("s's guard must be kept (value may be null):\n%s", out)
	}
	if strings.Contains(out, "if(m!=null)") {
		t.Errorf("m is a non-null global; its guard must go:\n%s", out)
	}
}

// TestRedundantLVRule2: an LV whose variable has no future ADT use is
// removed. Construct it via a call that is only reachable on one branch
// while the insertion's LS is computed before branching... the simplest
// observable case: after full optimization no LV remains for a variable
// never used as a receiver.
func TestNoLockForUnusedADT(t *testing.T) {
	sec := secOf(ir.Block{
		mGet("v"),
	}, pMap, pSet, pKey, ir.Param{Name: "v", Type: "val"})
	res := synthesizeAt(t, paperProgram(sec), synth.StageRefine)
	out := ir.Print(res.Sections[0])
	if strings.Contains(out, "s.lock") || strings.Contains(out, "LV(s") {
		t.Errorf("unused ADT variable s must not be locked:\n%s", out)
	}
}

// TestFig4StagePipeline: each stage of the pipeline is runnable on the
// two-Set section and output stays protocol-correct (smoke across
// stages).
func TestFig4StagePipeline(t *testing.T) {
	for stage := synth.StageInsert; stage <= synth.StageRefine; stage++ {
		res := synthesizeAt(t, paperProgram(papersec.Fig4()), stage)
		out := ir.Print(res.Sections[0])
		if !strings.Contains(out, "x.size") || !strings.Contains(out, "y.add") {
			t.Errorf("stage %d lost statements:\n%s", stage, out)
		}
	}
}
