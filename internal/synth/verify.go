package synth

import (
	"fmt"
	"strings"

	"repro/internal/verify"
)

// VerifyInput packages section index si of a synthesis result for the
// internal/verify certificate checker: the section plus closures over
// the pointer abstraction, the lock-order ranks, and the cyclic-component
// wrappers.
func (r *Result) VerifyInput(si int) verify.Input {
	return verify.Input{
		Section: r.Sections[si],
		ClassOf: func(v string) (string, bool) { return r.Classes.ClassOfVar(si, v) },
		Rank:    r.Rank,
		WrappedGlobal: func(key string) (string, bool) {
			c, ok := r.Classes.ByKey[key]
			if !ok || !c.Wrapped {
				return "", false
			}
			return c.GlobalVar, true
		},
		Observer: func(key, method string) bool {
			c, ok := r.Classes.ByKey[key]
			return ok && c.Spec != nil && c.Spec.IsObserver(method)
		},
	}
}

// VerifyResult re-proves the OS2PL obligations (coverage, two-phase,
// ordering — §3.3 Theorem 1) on every synthesized section and returns
// all falsified obligations with counterexample paths. A nil result is
// the certificate that the output is safe under the protocol.
func VerifyResult(r *Result) []*verify.Violation {
	var out []*verify.Violation
	for si := range r.Sections {
		out = append(out, verify.Section(r.VerifyInput(si))...)
	}
	return out
}

// verifyError folds violations into one synthesis error.
func verifyError(violations []*verify.Violation) error {
	msgs := make([]string, len(violations))
	for i, v := range violations {
		msgs[i] = v.Error()
	}
	return fmt.Errorf("synth: certificate check failed:\n%s", strings.Join(msgs, "\n"))
}
