package synth

import (
	"strings"
	"testing"

	"repro/internal/adtspecs"
	"repro/internal/ir"
)

// occProgram is a two-section program: "lookup" is read-only (every call
// a declared observer) and "update" mutates, so StageOptimistic must
// rewrite exactly the first.
func occProgram() *Program {
	lookup := &ir.Atomic{
		Name: "lookup",
		Vars: []ir.Param{
			{Name: "m", Type: "Map", IsADT: true, NonNull: true},
			{Name: "s", Type: "Set", IsADT: true, NonNull: true},
			{Name: "k", Type: "int"}, {Name: "j", Type: "int"},
			{Name: "v", Type: "val"}, {Name: "has", Type: "bool"},
		},
		Body: ir.Block{
			&ir.Call{Recv: "m", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "k"}}, Assign: "v"},
			&ir.Call{Recv: "s", Method: "contains", Args: []ir.Expr{ir.VarRef{Name: "j"}}, Assign: "has"},
		},
	}
	update := &ir.Atomic{
		Name: "update",
		Vars: []ir.Param{
			{Name: "m", Type: "Map", IsADT: true, NonNull: true},
			{Name: "s", Type: "Set", IsADT: true, NonNull: true},
			{Name: "k", Type: "int"}, {Name: "j", Type: "int"},
		},
		Body: ir.Block{
			&ir.Call{Recv: "m", Method: "put", Args: []ir.Expr{ir.VarRef{Name: "k"}, ir.VarRef{Name: "j"}}},
			&ir.Call{Recv: "s", Method: "add", Args: []ir.Expr{ir.VarRef{Name: "j"}}},
		},
	}
	return &Program{Sections: []*ir.Atomic{lookup, update}, Specs: adtspecs.All()}
}

// TestOptimisticRewritesReadOnlySection: at StageOptimistic the read-only
// section becomes a single certified envelope — observations in the body,
// the unchanged pessimistic expansion in the fallback — while the
// mutating section is untouched. Verify is on, so the synthesis itself
// proves the fourth obligation.
func TestOptimisticRewritesReadOnlySection(t *testing.T) {
	res, err := Synthesize(occProgram(), Options{StopAfter: StageOptimistic, Verify: true})
	if err != nil {
		t.Fatal(err)
	}

	sec := res.Sections[0]
	if len(sec.Body) != 1 {
		t.Fatalf("lookup body = %d statements, want 1 envelope:\n%s", len(sec.Body), ir.Print(sec))
	}
	opt, ok := sec.Body[0].(*ir.Optimistic)
	if !ok {
		t.Fatalf("lookup body[0] = %T, want *ir.Optimistic", sec.Body[0])
	}

	observes, locks := 0, 0
	walkStmts(opt.Body, func(s ir.Stmt) {
		switch s.(type) {
		case *ir.Observe:
			observes++
		case *ir.LV, *ir.LV2, *ir.LockBatch, *ir.Prologue, *ir.Epilogue, *ir.UnlockAllVar:
			locks++
		}
	})
	if observes == 0 || locks != 0 {
		t.Errorf("optimistic body: %d observes, %d lock statements (want >0, 0):\n%s",
			observes, locks, ir.Print(sec))
	}

	fallbackLocks := 0
	walkStmts(opt.Fallback, func(s ir.Stmt) {
		switch s.(type) {
		case *ir.LV, *ir.LV2, *ir.LockBatch:
			fallbackLocks++
		}
	})
	if fallbackLocks == 0 {
		t.Errorf("fallback lost its lock statements:\n%s", ir.Print(sec))
	}

	if out := ir.Print(res.Sections[1]); strings.Contains(out, "optimistic") {
		t.Errorf("mutating section must stay pessimistic:\n%s", out)
	}
}

// TestOptimisticFallbackMatchesFuseOutput: the fallback block is exactly
// the section the pipeline emits when stopping at StageFuse — the rewrite
// wraps, it does not alter.
func TestOptimisticFallbackMatchesFuseOutput(t *testing.T) {
	fused, err := Synthesize(occProgram(), Options{StopAfter: StageFuse, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	occ, err := Synthesize(occProgram(), Options{StopAfter: StageOptimistic, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	opt := occ.Sections[0].Body[0].(*ir.Optimistic)
	want := ir.Print(fused.Sections[0])
	got := ir.Print(&ir.Atomic{Name: "lookup", Vars: occ.Sections[0].Vars, Body: opt.Fallback})
	if got != want {
		t.Errorf("fallback differs from StageFuse output:\n--- fuse\n%s\n--- fallback\n%s", want, got)
	}
}

// TestOptimisticOffByDefault: DefaultOptions stops at StageFuse; no
// envelope appears (schedule-predicting tooling depends on the
// pessimistic acquisition trace).
func TestOptimisticOffByDefault(t *testing.T) {
	res, err := Synthesize(occProgram(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, sec := range res.Sections {
		if out := ir.Print(sec); strings.Contains(out, "optimistic") {
			t.Errorf("DefaultOptions output contains an envelope:\n%s", out)
		}
	}
}

// TestOptimisticRejectsOpaque: an ir.Opaque expression (the IR's escape
// hatch for I/O and other irrevocable effects) disqualifies a section
// even when every ADT call is an observer.
func TestOptimisticRejectsOpaque(t *testing.T) {
	p := occProgram()
	p.Sections = p.Sections[:1]
	lookup := p.Sections[0]
	lookup.Vars = append(lookup.Vars, ir.Param{Name: "out", Type: "val"})
	lookup.Body = append(lookup.Body,
		&ir.Assign{Lhs: "out", Rhs: ir.Opaque{Text: "send(v)", Reads: []string{"v"}}})

	res, err := Synthesize(p, Options{StopAfter: StageOptimistic, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if out := ir.Print(res.Sections[0]); strings.Contains(out, "optimistic") {
		t.Errorf("section with Opaque must stay pessimistic:\n%s", out)
	}
}

// TestOptimisticEligibleCounts: the certificate demands at least one lock
// statement — a section over never-locked variables gains nothing.
func TestOptimisticEligibleNeedsLocks(t *testing.T) {
	sec := &ir.Atomic{Name: "empty", Vars: []ir.Param{{Name: "k", Type: "int"}}}
	if optimisticEligible(0, sec, &Classes{}) {
		t.Error("lock-free section must not be eligible")
	}
}
