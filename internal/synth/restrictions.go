package synth

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
)

// Graph is the restrictions-graph of §3.2: nodes are equivalence classes
// of pointer variables; an edge u → v records that some execution path
// may have to lock an instance of u before an instance of v (because v's
// pointer is assigned between the two uses, so v's identity is unknown
// at u's lock point).
type Graph struct {
	Nodes []string
	Edges map[string]map[string]bool
}

// newGraph creates an empty graph over the given nodes.
func newGraph(nodes []string) *Graph {
	g := &Graph{Nodes: append([]string(nil), nodes...), Edges: make(map[string]map[string]bool)}
	for _, n := range g.Nodes {
		g.Edges[n] = make(map[string]bool)
	}
	return g
}

func (g *Graph) addEdge(u, v string) { g.Edges[u][v] = true }

// HasEdge reports an edge u → v.
func (g *Graph) HasEdge(u, v string) bool { return g.Edges[u][v] }

// String renders the graph deterministically, e.g. "Map->Set Map->Queue".
func (g *Graph) String() string {
	var parts []string
	nodes := append([]string(nil), g.Nodes...)
	sort.Strings(nodes)
	for _, u := range nodes {
		var vs []string
		for v := range g.Edges[u] {
			vs = append(vs, v)
		}
		sort.Strings(vs)
		for _, v := range vs {
			parts = append(parts, u+"->"+v)
		}
	}
	return strings.Join(parts, " ")
}

// buildRestrictions computes the restrictions-graph over all atomic
// sections of the program (as in Fig 11, which combines the sections of
// Figs 1 and 7).
//
// For every pair of calls l: x.f(...) and l': x'.f'(...) in one section
// with l' reachable from l by a path of length ≥ 1 (l' may equal l when
// a loop makes the call self-reachable, Fig 9), an edge [x] → [x'] is
// added when x' may be assigned between the two calls — in that case the
// identity of the ADT x' will point to is unknown at l, so it cannot be
// locked before [x]'s instance.
func buildRestrictions(p *Program, cs *Classes) *Graph {
	g := newGraph(cs.Keys())
	for si, sec := range p.Sections {
		cfg := ir.BuildCFG(sec)
		calls := cfg.CallNodes()
		for _, l := range calls {
			x := cfg.Nodes[l].Stmt.(*ir.Call).Recv
			cx, _ := cs.ClassOfVar(si, x)
			for _, lp := range calls {
				if !cfg.ReachesProperly(l, lp) {
					continue
				}
				xp := cfg.Nodes[lp].Stmt.(*ir.Call).Recv
				if !cfg.AssignedBetween(l, lp, xp) {
					continue
				}
				cxp, _ := cs.ClassOfVar(si, xp)
				g.addEdge(cx, cxp)
			}
		}
	}
	return g
}

// SCCs returns the strongly connected components of the graph (Tarjan).
// Components are returned with their member keys sorted.
func (g *Graph) SCCs() [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var out [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var ws []string
		for w := range g.Edges[v] {
			ws = append(ws, w)
		}
		sort.Strings(ws)
		for _, w := range ws {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			out = append(out, comp)
		}
	}
	nodes := append([]string(nil), g.Nodes...)
	sort.Strings(nodes)
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return out
}

// CyclicComponents returns the SCCs that contain a cycle: components of
// size > 1, or single nodes with a self-loop (§3.4, Fig 16).
func (g *Graph) CyclicComponents() [][]string {
	var out [][]string
	for _, comp := range g.SCCs() {
		if len(comp) > 1 || g.HasEdge(comp[0], comp[0]) {
			out = append(out, comp)
		}
	}
	return out
}

// topoOrder sorts the nodes of an acyclic graph topologically (Kahn),
// breaking ties by the first-appearance order of the classes in the
// program — this reproduces the paper's orders (map < set < queue for
// Fig 1, m < s1,s2 < q for Fig 7). It fails on cyclic graphs.
func topoOrder(g *Graph, appearance []string) ([]string, error) {
	pos := make(map[string]int, len(appearance))
	for i, k := range appearance {
		pos[k] = i
	}
	indeg := make(map[string]int)
	for _, n := range g.Nodes {
		indeg[n] = 0
	}
	for u, es := range g.Edges {
		for v := range es {
			if u == v {
				return nil, fmt.Errorf("synth: self-loop on %s; cyclic components must be wrapped first", u)
			}
			indeg[v]++
		}
	}
	var ready []string
	for _, n := range g.Nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	byAppearance := func(xs []string) {
		sort.Slice(xs, func(i, j int) bool { return pos[xs[i]] < pos[xs[j]] })
	}
	byAppearance(ready)
	var order []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		var released []string
		for v := range g.Edges[n] {
			indeg[v]--
			if indeg[v] == 0 {
				released = append(released, v)
			}
		}
		byAppearance(released)
		ready = append(ready, released...)
		byAppearance(ready)
	}
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("synth: restrictions-graph has a cycle; %d of %d nodes ordered", len(order), len(g.Nodes))
	}
	return order, nil
}
