package synth_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/papersec"
	"repro/internal/synth"
)

// TestFig8RestrictionsGraph: the restrictions-graph of the Fig 7 section
// has the single edge Map → Set (Example 3.3: the only restriction).
func TestFig8RestrictionsGraph(t *testing.T) {
	res := synthesizeAt(t, paperProgram(papersec.Fig7()), synth.StageInsert)
	if got := res.Graph.String(); got != "Map->Set" {
		t.Errorf("Fig 7 restrictions-graph = %q, want \"Map->Set\"", got)
	}
}

// TestFig10RestrictionsGraph: the Fig 9 loop makes the Set class
// self-reachable with reassignment, yielding a self-loop (the cycle of
// Fig 10) before wrapping.
func TestFig10RestrictionsGraph(t *testing.T) {
	res := synthesizeAt(t, paperProgram(papersec.Fig9()), synth.StageInsert)
	pre := res.PreWrapGraph
	if !pre.HasEdge("Set", "Set") {
		t.Errorf("pre-wrap graph %q must contain the Set self-loop", pre)
	}
	if !pre.HasEdge("Map", "Set") {
		t.Errorf("pre-wrap graph %q must contain Map->Set", pre)
	}
	if pre.HasEdge("Set", "Map") || pre.HasEdge("Map", "Map") {
		t.Errorf("unexpected edges in %q", pre)
	}
	// After wrapping the graph is acyclic and the wrapper is never a
	// lock-order target.
	for _, comp := range res.Graph.CyclicComponents() {
		t.Errorf("post-wrap graph still has cyclic component %v", comp)
	}
}

// TestFig11CombinedGraph: the graph computed for the sections of Fig 1
// and Fig 7 together, and the induced order map < set < queue.
func TestFig11CombinedGraph(t *testing.T) {
	res := synthesizeAt(t, paperProgram(papersec.Fig1(), papersec.Fig7()), synth.StageInsert)
	if got := res.Graph.String(); got != "Map->Set" {
		t.Errorf("combined graph = %q, want \"Map->Set\"", got)
	}
	if !(res.Rank("Map") < res.Rank("Set") && res.Rank("Set") < res.Rank("Queue")) {
		t.Errorf("order should be Map < Set < Queue; got ranks %d %d %d",
			res.Rank("Map"), res.Rank("Set"), res.Rank("Queue"))
	}
	if len(res.Sections) != 2 {
		t.Fatalf("expected both sections transformed")
	}
}

// TestSelfLoopFromReceiverReassignment: reassigning a receiver variable
// inside a loop makes its own class cyclic and forces wrapping.
func TestSelfLoopFromReceiverReassignment(t *testing.T) {
	sec := &ir.Atomic{
		Name: "walk",
		Vars: []ir.Param{
			{Name: "m", Type: "Map", IsADT: true, NonNull: true},
			{Name: "k", Type: "int"},
		},
		Body: ir.Block{
			&ir.While{
				Cond: ir.OpaqueCond{Text: "k>0", Reads: []string{"k"}},
				Body: ir.Block{
					&ir.Call{Recv: "m", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "k"}}, Assign: "m"},
					&ir.Assign{Lhs: "k", Rhs: ir.Opaque{Text: "k-1", Reads: []string{"k"}}},
				},
			},
		},
	}
	res := synthesizeAt(t, paperProgram(sec), synth.StageInsert)
	if len(res.Wrappers) != 1 {
		t.Fatalf("expected a wrapper for the self-cyclic Map class; got %d", len(res.Wrappers))
	}
	out := ir.Print(res.Sections[0])
	if !strings.Contains(out, "p1.get(m, k)") {
		t.Errorf("call not rewritten through wrapper:\n%s", out)
	}
}

// TestWrapperSpec: wrapped operations commute across distinct instances
// and fall back to the shifted original condition on one instance.
func TestWrapperSpec(t *testing.T) {
	res := synthesizeAt(t, paperProgram(papersec.Fig9()), synth.StageInsert)
	spec := res.Wrappers[0].Spec
	// size(s) vs size(s'): size/size always commute.
	if !spec.OpsCommute(core.NewOp("size", "inst1"), core.NewOp("size", "inst2")) {
		t.Error("wrapped size ops must commute")
	}
	// add(s,v) vs clear(s): same instance, originals never commute.
	if spec.OpsCommute(core.NewOp("add", "inst1", 5), core.NewOp("clear", "inst1")) {
		t.Error("wrapped add/clear on one instance must conflict")
	}
	// add(s,v) vs clear(s'): distinct instances always commute.
	if !spec.OpsCommute(core.NewOp("add", "inst1", 5), core.NewOp("clear", "inst2")) {
		t.Error("wrapped ops on distinct instances must commute")
	}
	// add(s,5) vs remove(s,6): same instance, distinct values — the
	// shifted original condition applies.
	if !spec.OpsCommute(core.NewOp("add", "i", 5), core.NewOp("remove", "i", 6)) {
		t.Error("shifted add/remove condition must hold for distinct values")
	}
	if spec.OpsCommute(core.NewOp("add", "i", 5), core.NewOp("remove", "i", 5)) {
		t.Error("add/remove of one value on one instance must conflict")
	}
}

// TestTablesBuilt: the full pipeline compiles a mode table for every
// locked class, and the Fig 1 Map table admits per-key parallelism.
func TestTablesBuilt(t *testing.T) {
	res := synthesizeAt(t, paperProgram(papersec.Fig1()), synth.StageRefine)
	for _, key := range []string{"Map", "Set", "Queue"} {
		if res.Tables[key] == nil {
			t.Fatalf("no mode table for class %s", key)
		}
	}
	mapTbl := res.Tables["Map"]
	set := core.SymSetOf(
		core.SymOpOf("get", core.VarArg("id")),
		core.SymOpOf("put", core.VarArg("id"), core.Star()),
		core.SymOpOf("remove", core.VarArg("id")),
	)
	ref := mapTbl.Set(set)
	m1 := ref.Mode(1)
	m2 := ref.Mode(2)
	if m1 == m2 {
		t.Skip("keys 1 and 2 hash to one bucket; extremely unlikely with 64 buckets")
	}
	if !mapTbl.Commute(m1, m2) {
		t.Error("distinct-key Fig 1 Map modes must commute (the scalability source)")
	}
	if mapTbl.Commute(m1, m1) {
		t.Error("same-key get/put/remove mode must self-conflict")
	}
}

// TestAblationNoRefine: with refinement disabled (A1), lock statements
// stay generic and the Map table degenerates to modes that never admit
// same-instance parallelism.
func TestAblationNoRefine(t *testing.T) {
	res, err := synth.Synthesize(paperProgram(papersec.Fig1()),
		synth.Options{StopAfter: synth.StageRefine, NoRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	out := ir.Print(res.Sections[0])
	if !strings.Contains(out, "map.lock(+)") {
		t.Errorf("A1 must keep generic locks:\n%s", out)
	}
	mapTbl := res.Tables["Map"]
	if len(mapTbl.Modes()) != 1 {
		t.Fatalf("generic Map table should have 1 mode, got %d", len(mapTbl.Modes()))
	}
	if mapTbl.Commute(0, 0) {
		t.Error("the generic whole-ADT mode must be exclusive")
	}
}

// TestMissingSpecError and friends: input validation.
func TestMissingSpecError(t *testing.T) {
	p := &synth.Program{
		Sections: []*ir.Atomic{papersec.Fig1()},
		Specs:    map[string]*core.Spec{}, // nothing registered
	}
	if _, err := synth.Synthesize(p, synth.DefaultOptions()); err == nil {
		t.Error("missing spec must be an error")
	}
}

func TestEmptyProgramError(t *testing.T) {
	if _, err := synth.Synthesize(&synth.Program{}, synth.DefaultOptions()); err == nil {
		t.Error("empty program must be an error")
	}
}

func TestUndeclaredReceiverError(t *testing.T) {
	sec := &ir.Atomic{
		Name: "bad",
		Body: ir.Block{&ir.Call{Recv: "ghost", Method: "get"}},
	}
	if _, err := synth.Synthesize(paperProgram(sec), synth.DefaultOptions()); err == nil {
		t.Error("undeclared receiver must be an error")
	}
}

// TestCustomClassOf: a caller-provided abstraction that splits two Sets
// into separate classes removes the need for LV2.
func TestCustomClassOf(t *testing.T) {
	p := paperProgram(papersec.Fig7())
	p.ClassOf = func(sec *ir.Atomic, v string) string {
		if v == "s1" || v == "s2" {
			return "Set$" + v // each variable its own class
		}
		return sec.ADTType(v)
	}
	res, err := synth.Synthesize(p, synth.Options{StopAfter: synth.StageInsert})
	if err != nil {
		t.Fatal(err)
	}
	out := ir.Print(res.Sections[0])
	if strings.Contains(out, "LV2") {
		t.Errorf("per-variable classes should not need LV2:\n%s", out)
	}
	if !strings.Contains(out, "LV(s1)") || !strings.Contains(out, "LV(s2)") {
		t.Errorf("both sets must still be locked:\n%s", out)
	}
}

// TestStableOutput: synthesis is deterministic.
func TestStableOutput(t *testing.T) {
	a := synthesizeAt(t, paperProgram(papersec.Fig1(), papersec.Fig7(), papersec.Fig9()), synth.StageRefine)
	b := synthesizeAt(t, paperProgram(papersec.Fig1(), papersec.Fig7(), papersec.Fig9()), synth.StageRefine)
	for i := range a.Sections {
		if ir.Print(a.Sections[i]) != ir.Print(b.Sections[i]) {
			t.Errorf("section %d differs across runs", i)
		}
	}
}

// TestInputNotMutated: the synthesizer works on clones.
func TestInputNotMutated(t *testing.T) {
	sec := papersec.Fig1()
	before := ir.Print(sec)
	synthesizeAt(t, paperProgram(sec), synth.StageRefine)
	if after := ir.Print(sec); after != before {
		t.Errorf("input section mutated:\n%s", after)
	}
}

// TestFig4TwoSets: the minimal S2PL example — two Sets locked with
// different refined sets ({size()} then {add(i)} generalized).
func TestFig4TwoSets(t *testing.T) {
	res := synthesizeAt(t, paperProgram(papersec.Fig4()), synth.StageRefine)
	out := ir.Print(res.Sections[0])
	if !strings.Contains(out, "lock2(x,y, {add(*),size()})") {
		// x and y share the Set class, so they are locked together with
		// the union of their future operations; i is killed by the
		// x.size() assignment, so add(i) widens to add(*).
		t.Errorf("Fig 4 synthesis unexpected:\n%s", out)
	}
}
