// Package synth implements the paper's synthesis algorithm: given client
// atomic sections (internal/ir) and per-ADT commutativity specifications
// (internal/core), it inserts semantic locking operations that guarantee
// atomicity and deadlock-freedom under the OS2PL protocol (§3), refines
// the locked symbolic sets by a backward analysis (§4), applies the
// optimizations of Appendix A, and compiles the locking modes (§5).
package synth

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/ir"
)

// Program is the synthesis input: all atomic sections that access the
// shared state (§2.1 requires they all be available), plus one
// commutativity specification per ADT class name.
type Program struct {
	Sections []*ir.Atomic
	// Specs maps an ADT type name (ir.Param.Type) to its commutativity
	// specification.
	Specs map[string]*core.Spec
	// ClassOf optionally overrides the pointer abstraction (§3.2): it
	// maps a pointer variable to its equivalence-class key. Variables
	// with equal keys are in the same class. The default abstraction
	// uses the variable's static ADT type, which the paper notes is a
	// valid abstraction ("or simply using the static types").
	ClassOf func(section *ir.Atomic, varName string) string
}

func (p *Program) classKey(sec *ir.Atomic, v string) string {
	if p.ClassOf != nil {
		return p.ClassOf(sec, v)
	}
	return sec.ADTType(v)
}

// Class is one equivalence class of pointer variables: a node of the
// restrictions-graph (§3.2).
type Class struct {
	Key  string
	Spec *core.Spec
	// Rank is the class's position in the total order <ts produced by
	// the topological sort (§3.3); filled in by computeOrder.
	Rank int
	// Wrapped marks a global-wrapper class introduced for a cyclic
	// component (§3.4); Members lists the original class keys it wraps
	// and GlobalVar the fresh global pointer (the paper's p_C).
	Wrapped   bool
	Members   []string
	GlobalVar string
}

// Classes is the pointer abstraction of a program: the set of
// equivalence classes and the per-section variable→class mapping.
type Classes struct {
	ByKey map[string]*Class
	// VarClass maps (section index, var name) to class key.
	varClass map[varKey]string
	// appearance records first-appearance order of class keys across
	// the program, used as the deterministic topological tie-break.
	appearance []string
}

type varKey struct {
	sec int
	v   string
}

// computeClasses builds the abstraction for all ADT pointer variables.
// Class keys are recorded in first-use order (the order their variables
// first appear as call receivers across the program), which serves as
// the deterministic tie-break of the topological sort and reproduces the
// paper's orders (map < set < queue for Fig 1).
func computeClasses(p *Program) (*Classes, error) {
	cs := &Classes{ByKey: make(map[string]*Class), varClass: make(map[varKey]string)}
	for si, sec := range p.Sections {
		for _, prm := range sec.Vars {
			if !prm.IsADT {
				continue
			}
			key := p.classKey(sec, prm.Name)
			if key == "" {
				return nil, fmt.Errorf("synth: variable %s.%s has no class (missing type?)", sec.Name, prm.Name)
			}
			if _, ok := cs.ByKey[key]; !ok {
				spec := p.Specs[sec.ADTType(prm.Name)]
				if spec == nil {
					return nil, fmt.Errorf("synth: no commutativity spec for ADT type %q (variable %s.%s)",
						sec.ADTType(prm.Name), sec.Name, prm.Name)
				}
				cs.ByKey[key] = &Class{Key: key, Spec: spec}
			}
			cs.varClass[varKey{si, prm.Name}] = key
		}
	}
	seen := make(map[string]bool)
	for si, sec := range p.Sections {
		walkCalls(sec.Body, func(c *ir.Call) {
			if key, ok := cs.ClassOfVar(si, c.Recv); ok && !seen[key] {
				seen[key] = true
				cs.appearance = append(cs.appearance, key)
			}
		})
	}
	for si, sec := range p.Sections {
		for _, prm := range sec.Vars {
			if !prm.IsADT {
				continue
			}
			if key, ok := cs.ClassOfVar(si, prm.Name); ok && !seen[key] {
				seen[key] = true
				cs.appearance = append(cs.appearance, key)
			}
		}
	}
	// Sanity: every call receiver must be a declared ADT variable.
	for si, sec := range p.Sections {
		var err error
		walkCalls(sec.Body, func(c *ir.Call) {
			if _, ok := cs.varClass[varKey{si, c.Recv}]; !ok && err == nil {
				err = fmt.Errorf("synth: receiver %q in section %s is not a declared ADT variable", c.Recv, sec.Name)
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return cs, nil
}

// ClassOfVar returns the class key of a variable in section index si.
func (cs *Classes) ClassOfVar(si int, v string) (string, bool) {
	k, ok := cs.varClass[varKey{si, v}]
	return k, ok
}

// SameClass reports whether two variables of one section share a class.
func (cs *Classes) SameClass(si int, a, b string) bool {
	ka, oka := cs.ClassOfVar(si, a)
	kb, okb := cs.ClassOfVar(si, b)
	return oka && okb && ka == kb
}

// Keys returns all class keys in first-appearance order.
func (cs *Classes) Keys() []string {
	return append([]string(nil), cs.appearance...)
}

// SortedKeys returns class keys sorted by rank (after ordering).
func (cs *Classes) SortedKeys() []string {
	keys := cs.Keys()
	sort.Slice(keys, func(i, j int) bool { return cs.ByKey[keys[i]].Rank < cs.ByKey[keys[j]].Rank })
	return keys
}

// walkCalls visits every Call in a block, recursing into branches and
// loops.
func walkCalls(b ir.Block, f func(*ir.Call)) {
	for _, s := range b {
		switch x := s.(type) {
		case *ir.Call:
			f(x)
		case *ir.If:
			walkCalls(x.Then, f)
			walkCalls(x.Else, f)
		case *ir.While:
			walkCalls(x.Body, f)
		}
	}
}
