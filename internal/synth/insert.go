package synth

import (
	"sort"

	"repro/internal/ir"
)

// insertLocking inserts the basic (non-optimized) locking code of §3.3
// into a cloned section: a prologue initializing LOCAL_SET, an LV/LV2
// group before every ADT call covering the set LS(l), and the epilogue
// unlocking everything. Locking is generic ("lock(+)", the whole-ADT
// symbolic set); refinement later narrows the sets (§4).
//
// LS(l), for a call l: x.f(...), is the set of variables y with y ≤ x
// (class rank ≤) that have a (future) ADT use reachable from l. Vars of
// the same class are grouped into one LV2 (dynamic unique-id ordering,
// Fig 12); classes are emitted in rank order.
func insertLocking(si int, sec *ir.Atomic, cs *Classes) *ir.Atomic {
	out := sec.Clone()
	cfg := ir.BuildCFG(out)

	// Compute the LV groups for every call statement up front (the
	// insertion below restructures blocks, invalidating nothing since
	// the CFG references statement pointers of the clone).
	groups := make(map[*ir.Call][]ir.Stmt)
	for _, l := range cfg.CallNodes() {
		call := cfg.Nodes[l].Stmt.(*ir.Call)
		x := call.Recv
		xKey, _ := cs.ClassOfVar(si, x)
		xRank := cs.ByKey[xKey].Rank

		// LS(l): ADT vars y with rank(y) ≤ rank(x) and a use at or
		// after l.
		byRank := make(map[int][]string)
		for _, prm := range out.Vars {
			if !prm.IsADT {
				continue
			}
			yKey, ok := cs.ClassOfVar(si, prm.Name)
			if !ok {
				continue
			}
			r := cs.ByKey[yKey].Rank
			if r > xRank {
				continue
			}
			if !cfg.UsedAtOrAfter(l, prm.Name) {
				continue
			}
			byRank[r] = append(byRank[r], prm.Name)
		}
		var ranks []int
		for r := range byRank {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		var stmts []ir.Stmt
		for _, r := range ranks {
			vars := byRank[r]
			sort.Strings(vars)
			if len(vars) == 1 {
				stmts = append(stmts, &ir.LV{Var: vars[0], Generic: true})
			} else {
				stmts = append(stmts, &ir.LV2{Vars: vars, Generic: true})
			}
		}
		groups[call] = stmts
	}

	out.Body = insertBefore(out.Body, groups)
	// The prologue demands a panic guard (Prologue.Guard): the emitted
	// epilogue must run on every exit path including panics, so a fault
	// inside the section can never leak LOCAL_SET's locks. gosrc renders
	// this as a core.Atomically wrapper around the section body.
	out.Body = append(ir.Block{&ir.Prologue{Guard: true}}, out.Body...)
	out.Body = append(out.Body, &ir.Epilogue{})
	return out
}

// insertBefore rebuilds a block inserting each call's LV group directly
// before it.
func insertBefore(b ir.Block, groups map[*ir.Call][]ir.Stmt) ir.Block {
	var out ir.Block
	for _, s := range b {
		switch x := s.(type) {
		case *ir.Call:
			out = append(out, groups[x]...)
			out = append(out, x)
		case *ir.If:
			x.Then = insertBefore(x.Then, groups)
			x.Else = insertBefore(x.Else, groups)
			out = append(out, x)
		case *ir.While:
			x.Body = insertBefore(x.Body, groups)
			out = append(out, x)
		default:
			out = append(out, s)
		}
	}
	return out
}
