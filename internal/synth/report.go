package synth

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/ir"
)

// Report renders a complete human-readable account of a synthesis
// result: the pointer abstraction with its lock order, the
// restrictions-graph, any global wrappers, each transformed section in
// the paper's notation, and a per-class summary of the compiled locking
// modes. semlockc's -plan output is built on this.
func Report(res *Result) string {
	var b strings.Builder

	b.WriteString("== pointer abstraction and lock order ==\n")
	for _, key := range res.Classes.SortedKeys() {
		c := res.Classes.ByKey[key]
		fmt.Fprintf(&b, "  rank %d: class %s (spec %s)", c.Rank, c.Key, c.Spec.ADT)
		if c.Wrapped {
			fmt.Fprintf(&b, " — global wrapper %s over %v", c.GlobalVar, c.Members)
		}
		b.WriteString("\n")
	}

	b.WriteString("\n== restrictions-graph ==\n")
	if g := res.Graph.String(); g == "" {
		b.WriteString("  (no edges)\n")
	} else {
		fmt.Fprintf(&b, "  %s\n", g)
	}
	if res.PreWrapGraph != nil && res.PreWrapGraph.String() != res.Graph.String() {
		fmt.Fprintf(&b, "  before wrapping: %s\n", res.PreWrapGraph)
		for _, comp := range res.PreWrapGraph.CyclicComponents() {
			fmt.Fprintf(&b, "  cyclic component wrapped: %v\n", comp)
		}
	}

	b.WriteString("\n== synthesized sections ==\n")
	for _, sec := range res.Sections {
		b.WriteString(ir.Print(sec))
		b.WriteString("\n")
	}

	b.WriteString("== locking modes per class ==\n")
	keys := make([]string, 0, len(res.Tables))
	for k := range res.Tables {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		tbl := res.Tables[key]
		fmt.Fprintf(&b, "  %s: %d modes, %d counters after merging, %d mechanisms",
			key, len(tbl.Modes()), tbl.CanonicalCount(), tbl.NumMechanisms())
		if tbl.NumMechanisms() == 0 {
			b.WriteString(" (all modes commute: lock-free class)")
		}
		b.WriteString("\n")
		if len(tbl.Modes()) <= 8 {
			for i, m := range tbl.Modes() {
				fmt.Fprintf(&b, "      mode %d: %s\n", i, m)
			}
		}
	}
	return b.String()
}

// CounterMap renders the static-to-runtime counter annotation behind
// semlockc's -counters flag: every lock-acquisition site the synthesis
// inserted, mapped to the mechanism (and counter slots) its selected
// modes bump at run time. This is the join key between a compiled plan
// and a live telemetry snapshot: a snapshot's per-mechanism fast/slow
// counters attribute back to these sites, and only these.
func CounterMap(res *Result) string {
	var b strings.Builder
	b.WriteString("== lock sites → runtime counters ==\n")
	for si, sec := range res.Sections {
		fmt.Fprintf(&b, "section %s:\n", sec.Name)
		n := 0
		var site func(vars []string, set core.SymSet, generic bool, kind string)
		site = func(vars []string, set core.SymSet, generic bool, kind string) {
			n++
			k, ok := res.Classes.ClassOfVar(si, vars[0])
			if !ok {
				fmt.Fprintf(&b, "  %-12s %v — no class (unlocked)\n", kind, vars)
				return
			}
			fmt.Fprintf(&b, "  %-12s %-14v class %-8s rank %d  ", kind, vars, k, res.Rank(k))
			tbl := res.Tables[k]
			switch {
			case tbl == nil:
				b.WriteString("no mode table\n")
			case generic:
				// A generic acquisition conflicts with everything; it takes
				// whichever mechanisms the instance has.
				fmt.Fprintf(&b, "generic → all %d mechanisms\n", tbl.NumMechanisms())
			default:
				ref := tbl.Set(set)
				// Group the set's selectable modes by the mechanism whose
				// counters they bump; part < 0 means the mode conflicts with
				// nothing and costs no counter at all.
				bySlots := map[int][]int{}
				free := 0
				for _, id := range ref.ModeIDs() {
					if mech := tbl.MechanismOf(id); mech < 0 {
						free++
					} else {
						bySlots[mech] = append(bySlots[mech], tbl.SlotOf(id))
					}
				}
				fmt.Fprintf(&b, "set %v: %d modes → ", set, ref.NumModes())
				mechs := make([]int, 0, len(bySlots))
				for m := range bySlots {
					mechs = append(mechs, m)
					sort.Ints(bySlots[m])
				}
				sort.Ints(mechs)
				// Collapse runs of adjacent mechanisms with identical slot
				// lists (a one-counter-per-partition class has 64 of them).
				for i := 0; i < len(mechs); {
					j := i
					for j+1 < len(mechs) && mechs[j+1] == mechs[j]+1 &&
						fmt.Sprint(bySlots[mechs[j+1]]) == fmt.Sprint(bySlots[mechs[i]]) {
						j++
					}
					if i > 0 {
						b.WriteString(", ")
					}
					if j > i {
						fmt.Fprintf(&b, "mechanisms %d–%d slots %v each", mechs[i], mechs[j], bySlots[mechs[i]])
					} else {
						fmt.Fprintf(&b, "mechanism %d slots %v", mechs[i], bySlots[mechs[i]])
					}
					i = j + 1
				}
				if free > 0 {
					if len(mechs) > 0 {
						b.WriteString(", ")
					}
					fmt.Fprintf(&b, "%d lock-free (no mechanism)", free)
				}
				if len(mechs) == 0 && free == 0 {
					b.WriteString("no mechanism")
				}
				b.WriteString("\n")
			}
		}
		var walk func(blk ir.Block)
		walk = func(blk ir.Block) {
			for _, s := range blk {
				switch x := s.(type) {
				case *ir.LV:
					site([]string{x.Var}, x.Set, x.Generic, "LV")
				case *ir.LV2:
					site(x.Vars, x.Set, x.Generic, "LV2")
				case *ir.LockBatch:
					for i, e := range x.Entries {
						site(e.Vars, e.Set, e.Generic, fmt.Sprintf("batch[%d]", i))
					}
				case *ir.If:
					walk(x.Then)
					walk(x.Else)
				case *ir.While:
					walk(x.Body)
				}
			}
		}
		walk(sec.Body)
		if n == 0 {
			b.WriteString("  (no lock sites)\n")
		}
	}
	return b.String()
}
