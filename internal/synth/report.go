package synth

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
)

// Report renders a complete human-readable account of a synthesis
// result: the pointer abstraction with its lock order, the
// restrictions-graph, any global wrappers, each transformed section in
// the paper's notation, and a per-class summary of the compiled locking
// modes. semlockc's -plan output is built on this.
func Report(res *Result) string {
	var b strings.Builder

	b.WriteString("== pointer abstraction and lock order ==\n")
	for _, key := range res.Classes.SortedKeys() {
		c := res.Classes.ByKey[key]
		fmt.Fprintf(&b, "  rank %d: class %s (spec %s)", c.Rank, c.Key, c.Spec.ADT)
		if c.Wrapped {
			fmt.Fprintf(&b, " — global wrapper %s over %v", c.GlobalVar, c.Members)
		}
		b.WriteString("\n")
	}

	b.WriteString("\n== restrictions-graph ==\n")
	if g := res.Graph.String(); g == "" {
		b.WriteString("  (no edges)\n")
	} else {
		fmt.Fprintf(&b, "  %s\n", g)
	}
	if res.PreWrapGraph != nil && res.PreWrapGraph.String() != res.Graph.String() {
		fmt.Fprintf(&b, "  before wrapping: %s\n", res.PreWrapGraph)
		for _, comp := range res.PreWrapGraph.CyclicComponents() {
			fmt.Fprintf(&b, "  cyclic component wrapped: %v\n", comp)
		}
	}

	b.WriteString("\n== synthesized sections ==\n")
	for _, sec := range res.Sections {
		b.WriteString(ir.Print(sec))
		b.WriteString("\n")
	}

	b.WriteString("== locking modes per class ==\n")
	keys := make([]string, 0, len(res.Tables))
	for k := range res.Tables {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		tbl := res.Tables[key]
		fmt.Fprintf(&b, "  %s: %d modes, %d counters after merging, %d mechanisms",
			key, len(tbl.Modes()), tbl.CanonicalCount(), tbl.NumMechanisms())
		if tbl.NumMechanisms() == 0 {
			b.WriteString(" (all modes commute: lock-free class)")
		}
		b.WriteString("\n")
		if len(tbl.Modes()) <= 8 {
			for i, m := range tbl.Modes() {
				fmt.Fprintf(&b, "      mode %d: %s\n", i, m)
			}
		}
	}
	return b.String()
}
