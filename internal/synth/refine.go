package synth

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// refineSets runs the backward analysis of §4: for every CFG node n and
// equivalence class c it computes the symbolic set conservatively
// describing the ADT operations that may still be invoked on class-c
// instances at or after n. Assigning a variable v kills v in the flowing
// sets (its occurrences generalize to *), which is what turns
// put(id,set) into put(id,*) in Fig 18 once the analysis crosses
// "set = new Set()".
//
// When mergeSameMethod is set, symbolic sets containing several
// operations of one method are widened argument-wise (differing
// positions become *): {add(x),add(y)} becomes {add(*)}, matching the
// set.lock({add(*)}) of Fig 2 and bounding the locking-mode count.
type refineResult struct {
	in []map[string]core.SymSet // per node id, class key → set
}

func refineSets(si int, cs *Classes, cfg *ir.CFG, mergeSameMethod bool) *refineResult {
	n := len(cfg.Nodes)
	res := &refineResult{in: make([]map[string]core.SymSet, n)}
	for i := range res.in {
		res.in[i] = make(map[string]core.SymSet)
	}

	// Worklist fixpoint, seeded with every node.
	inWork := make([]bool, n)
	var work []int
	for i := n - 1; i >= 0; i-- {
		work = append(work, i)
		inWork[i] = true
	}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[id] = false
		node := cfg.Nodes[id]

		// out[n] = ⋃ in[s] over successors.
		out := make(map[string]core.SymSet)
		for _, s := range node.Succs {
			for k, set := range res.in[s] {
				out[k] = out[k].Union(set)
			}
		}
		// Kill: assigned variable generalizes to * in every class set.
		if v := cfg.AssignedVar(id); v != "" {
			for k, set := range out {
				out[k] = starOutVar(set, v)
			}
		}
		// Gen: the node's own ADT operation.
		if node.Kind == ir.KindStmt {
			if c, ok := node.Stmt.(*ir.Call); ok {
				if key, ok := cs.ClassOfVar(si, c.Recv); ok {
					out[key] = out[key].Union(core.SymSetOf(symOpOfCall(c)))
				}
			}
		}
		changed := len(out) != len(res.in[id])
		if !changed {
			for k, set := range out {
				if !set.Equal(res.in[id][k]) {
					changed = true
					break
				}
			}
		}
		if changed {
			res.in[id] = out
			for _, p := range node.Preds {
				if !inWork[p] {
					inWork[p] = true
					work = append(work, p)
				}
			}
		}
	}

	if mergeSameMethod {
		for i := range res.in {
			for k, set := range res.in[i] {
				res.in[i][k] = mergeSameMethodOps(set)
			}
		}
	}
	return res
}

// At returns the refined symbolic set for class key at the point just
// before node id.
func (r *refineResult) At(id int, key string) core.SymSet { return r.in[id][key] }

// symOpOfCall lowers a call's argument expressions to symbolic-operation
// arguments: literals become constants, variable reads become symbolic
// variables, anything else is *.
func symOpOfCall(c *ir.Call) core.SymOp {
	args := make([]core.SymArg, len(c.Args))
	for i, a := range c.Args {
		switch x := a.(type) {
		case ir.Lit:
			args[i] = core.ConstArg(x.Val)
		case ir.VarRef:
			args[i] = core.VarArg(x.Name)
		default:
			args[i] = core.Star()
		}
	}
	return core.SymOpOf(c.Method, args...)
}

// starOutVar replaces occurrences of variable v with * in every
// symbolic operation of the set.
func starOutVar(set core.SymSet, v string) core.SymSet {
	any := false
	out := make([]core.SymOp, len(set))
	for i, op := range set {
		var args []core.SymArg
		for j, a := range op.Args {
			if a.Kind == core.SymVar && a.Var == v {
				if args == nil {
					args = append([]core.SymArg(nil), op.Args...)
				}
				args[j] = core.Star()
			}
		}
		if args == nil {
			out[i] = op
		} else {
			out[i] = core.SymOp{Method: op.Method, Args: args}
			any = true
		}
	}
	if !any {
		return set
	}
	return core.SymSetOf(out...)
}

// mergeSameMethodOps widens a set so that each method appears at most
// once per arity: argument positions that differ across the merged
// operations become *.
func mergeSameMethodOps(set core.SymSet) core.SymSet {
	type key struct {
		m string
		n int
	}
	groups := make(map[key][]core.SymOp)
	var order []key
	for _, op := range set {
		k := key{op.Method, len(op.Args)}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], op)
	}
	var out []core.SymOp
	for _, k := range order {
		ops := groups[k]
		merged := ops[0]
		for _, op := range ops[1:] {
			args := make([]core.SymArg, len(merged.Args))
			for i := range args {
				if symArgEqual(merged.Args[i], op.Args[i]) {
					args[i] = merged.Args[i]
				} else {
					args[i] = core.Star()
				}
			}
			merged = core.SymOp{Method: k.m, Args: args}
		}
		out = append(out, merged)
	}
	return core.SymSetOf(out...)
}

func symArgEqual(a, b core.SymArg) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case core.SymStar:
		return true
	case core.SymVar:
		return a.Var == b.Var
	default:
		return a.Val == b.Val
	}
}
