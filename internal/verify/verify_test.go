package verify_test

import (
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/adtspecs"
	"repro/internal/apps/gossip"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/modules/cache"
	"repro/internal/modules/cia"
	"repro/internal/modules/graph"
	"repro/internal/papersec"
	"repro/internal/synth"
	"repro/internal/verify"
)

// mkInput builds a verify.Input over a hand-written section: the class
// of an ADT variable is its declared type, ranks come from the table.
func mkInput(sec *ir.Atomic, ranks map[string]int) verify.Input {
	return verify.Input{
		Section: sec,
		ClassOf: func(v string) (string, bool) {
			p, ok := sec.Var(v)
			if !ok || !p.IsADT {
				return "", false
			}
			return p.Type, true
		},
		Rank: func(key string) int {
			r, ok := ranks[key]
			if !ok {
				return -1
			}
			return r
		},
	}
}

func adt(name, typ string) ir.Param { return ir.Param{Name: name, Type: typ, IsADT: true} }

func lv(v string) *ir.LV { return &ir.LV{Var: v, Generic: true} }
func call(recv, method string, args ...ir.Expr) *ir.Call {
	return &ir.Call{Recv: recv, Method: method, Args: args}
}

// TestObligations drives the verifier over hand-broken (and a few
// deliberately tricky but correct) sections and asserts exactly the
// expected obligations fire, with counterexample paths.
func TestObligations(t *testing.T) {
	k := ir.VarRef{Name: "k"}
	getK := core.SymSetOf(core.SymOpOf("get", core.VarArg("k")))
	putAny := core.SymSetOf(core.SymOpOf("put", core.Star(), core.Star()))

	cases := []struct {
		name  string
		input func() verify.Input
		// want lists the expected obligations, sorted.
		want []verify.Obligation
		// msgHas must appear in some violation message.
		msgHas string
		// traceHas / traceNot check the first violation's rendered trace.
		traceHas string
		traceNot string
	}{
		{
			name: "uncovered call",
			input: func() verify.Input {
				sec := &ir.Atomic{Name: "t", Vars: []ir.Param{adt("m", "Map"), {Name: "k"}},
					Body: ir.Block{call("m", "get", k)}}
				return mkInput(sec, map[string]int{"Map": 0})
			},
			want:   []verify.Obligation{verify.Coverage},
			msgHas: `not dominated by a lock of "m"`,
		},
		{
			name: "lock only on one branch",
			input: func() verify.Input {
				sec := &ir.Atomic{Name: "t", Vars: []ir.Param{adt("m", "Map"), {Name: "k"}, {Name: "c"}},
					Body: ir.Block{
						&ir.If{Cond: ir.OpaqueCond{Text: "c", Reads: []string{"c"}}, Then: ir.Block{lv("m")}},
						call("m", "get", k),
					}}
				return mkInput(sec, map[string]int{"Map": 0})
			},
			want:   []verify.Obligation{verify.Coverage},
			msgHas: "not dominated",
			// The counterexample must take the lock-free arm.
			traceHas: "if(c)",
			traceNot: "lock",
		},
		{
			name: "held set does not cover the call",
			input: func() verify.Input {
				sec := &ir.Atomic{Name: "t", Vars: []ir.Param{adt("m", "Map"), {Name: "k"}},
					Body: ir.Block{&ir.LV{Var: "m", Set: putAny}, call("m", "get", k)}}
				return mkInput(sec, map[string]int{"Map": 0})
			},
			want:   []verify.Obligation{verify.Coverage},
			msgHas: "does not cover",
		},
		{
			name: "set variable reassigned after acquisition",
			input: func() verify.Input {
				sec := &ir.Atomic{Name: "t", Vars: []ir.Param{adt("m", "Map"), {Name: "k"}},
					Body: ir.Block{
						&ir.LV{Var: "m", Set: getK},
						&ir.Assign{Lhs: "k", Rhs: ir.Lit{Val: 7}},
						call("m", "get", k),
					}}
				return mkInput(sec, map[string]int{"Map": 0})
			},
			want:   []verify.Obligation{verify.Coverage},
			msgHas: "does not cover",
		},
		{
			name: "refined set covers its call",
			input: func() verify.Input {
				sec := &ir.Atomic{Name: "t", Vars: []ir.Param{adt("m", "Map"), {Name: "k"}},
					Body: ir.Block{&ir.LV{Var: "m", Set: getK}, call("m", "get", k)}}
				return mkInput(sec, map[string]int{"Map": 0})
			},
		},
		{
			name: "release then acquire",
			input: func() verify.Input {
				sec := &ir.Atomic{Name: "t", Vars: []ir.Param{adt("m", "Map"), adt("s", "Set"), {Name: "k"}},
					Body: ir.Block{
						lv("m"), call("m", "get", k),
						&ir.UnlockAllVar{Var: "m"},
						lv("s"), call("s", "add", k),
					}}
				return mkInput(sec, map[string]int{"Map": 0, "Set": 1})
			},
			want:     []verify.Obligation{verify.TwoPhase},
			msgHas:   "reachable after release",
			traceHas: "unlockAll",
		},
		{
			name: "inverted lock order",
			input: func() verify.Input {
				sec := &ir.Atomic{Name: "t", Vars: []ir.Param{adt("m", "Map"), adt("s", "Set"), {Name: "k"}},
					Body: ir.Block{
						lv("s"), call("s", "add", k),
						lv("m"), call("m", "get", k),
					}}
				return mkInput(sec, map[string]int{"Map": 0, "Set": 1})
			},
			want:   []verify.Obligation{verify.Ordering},
			msgHas: "rank 0 reachable after an acquisition at rank 1",
		},
		{
			name: "same-class alias released early",
			input: func() verify.Input {
				// The fig4 shape the verifier caught in the optimizer: s1
				// and s2 may alias, so releasing s1 may release s2's
				// instance before its use.
				sec := &ir.Atomic{Name: "t", Vars: []ir.Param{adt("s1", "Set"), adt("s2", "Set"), {Name: "i"}},
					Body: ir.Block{
						&ir.LV2{Vars: []string{"s1", "s2"}, Generic: true},
						&ir.Call{Recv: "s1", Method: "size", Assign: "i"},
						&ir.UnlockAllVar{Var: "s1"},
						call("s2", "add", ir.VarRef{Name: "i"}),
					}}
				return mkInput(sec, map[string]int{"Set": 0})
			},
			want:   []verify.Obligation{verify.Coverage},
			msgHas: `not dominated by a lock of "s2"`,
		},
		{
			name: "same-rank variables locked by separate statements",
			input: func() verify.Input {
				sec := &ir.Atomic{Name: "t", Vars: []ir.Param{adt("s1", "Set"), adt("s2", "Set"), {Name: "k"}},
					Body: ir.Block{
						lv("s1"), call("s1", "add", k),
						lv("s2"), call("s2", "add", k),
					}}
				return mkInput(sec, map[string]int{"Set": 0})
			},
			want:   []verify.Obligation{verify.Ordering},
			msgHas: "rank 0 reachable after an acquisition at rank 0",
		},
		{
			name: "same-rank variables locked as one LV2 group",
			input: func() verify.Input {
				sec := &ir.Atomic{Name: "t", Vars: []ir.Param{adt("s1", "Set"), adt("s2", "Set"), {Name: "k"}},
					Body: ir.Block{
						&ir.LV2{Vars: []string{"s1", "s2"}, Generic: true},
						call("s1", "add", k), call("s2", "add", k),
					}}
				return mkInput(sec, map[string]int{"Set": 0})
			},
		},
		{
			name: "branch-local higher-rank lock is not an order violation",
			input: func() verify.Input {
				// On the arm that locks y (rank 1), x is already held, so
				// the trailing LV(x) fires no acquisition there; on the
				// other arm nothing fired. A path-max join would flag
				// this; the per-variable domain must not.
				sec := &ir.Atomic{Name: "t", Vars: []ir.Param{adt("x", "Map"), adt("y", "Set"), {Name: "k"}, {Name: "c"}},
					Body: ir.Block{
						&ir.If{Cond: ir.OpaqueCond{Text: "c", Reads: []string{"c"}},
							Then: ir.Block{lv("x"), lv("y"), call("y", "add", k)}},
						lv("x"), call("x", "get", k),
					}}
				return mkInput(sec, map[string]int{"Map": 0, "Set": 1})
			},
		},
		{
			name: "relock of a reassigned variable in a loop",
			input: func() verify.Input {
				sec := &ir.Atomic{Name: "t", Vars: []ir.Param{adt("x", "Set"), {Name: "k"}, {Name: "c"}},
					Body: ir.Block{
						&ir.While{Cond: ir.OpaqueCond{Text: "c", Reads: []string{"c"}}, Body: ir.Block{
							&ir.Assign{Lhs: "x", NewType: "Set"},
							lv("x"), call("x", "add", k),
						}},
					}}
				return mkInput(sec, map[string]int{"Set": 0})
			},
			want:   []verify.Obligation{verify.Ordering},
			msgHas: "rank 0 reachable after an acquisition at rank 0",
		},
		{
			name: "call on wrapped class bypasses the global wrapper",
			input: func() verify.Input {
				sec := &ir.Atomic{Name: "t", Vars: []ir.Param{adt("w", "Wrap"), {Name: "k"}},
					Body: ir.Block{lv("w"), call("w", "f", k)}}
				in := mkInput(sec, map[string]int{"Wrap": 0})
				in.WrappedGlobal = func(key string) (string, bool) {
					if key == "Wrap" {
						return "g", true
					}
					return "", false
				}
				return in
			},
			want:   []verify.Obligation{verify.Coverage},
			msgHas: `bypasses its global wrapper variable "g"`,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := tc.input()
			got := verify.Section(in)
			var obs []verify.Obligation
			for _, v := range got {
				obs = append(obs, v.Obligation)
			}
			sort.Slice(obs, func(i, j int) bool { return obs[i] < obs[j] })
			want := append([]verify.Obligation(nil), tc.want...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(obs) != len(want) {
				t.Fatalf("got %d violations %v, want %v:\n%s", len(got), obs, want, renderAll(got))
			}
			for i := range obs {
				if obs[i] != want[i] {
					t.Fatalf("obligations %v, want %v:\n%s", obs, want, renderAll(got))
				}
			}
			if len(got) == 0 {
				return
			}
			if tc.msgHas != "" && !anyMsgHas(got, tc.msgHas) {
				t.Errorf("no violation message contains %q:\n%s", tc.msgHas, renderAll(got))
			}
			if len(got[0].Trace.Stmts) == 0 {
				t.Errorf("violation has no counterexample path: %s", got[0].Error())
			}
			trace := got[0].Trace.String()
			if tc.traceHas != "" && !strings.Contains(trace, tc.traceHas) {
				t.Errorf("trace lacks %q:\n%s", tc.traceHas, trace)
			}
			if tc.traceNot != "" && strings.Contains(trace, tc.traceNot) {
				t.Errorf("trace should not contain %q:\n%s", tc.traceNot, trace)
			}
			// The trace must end at the offending statement.
			last := got[0].Trace.Stmts[len(got[0].Trace.Stmts)-1]
			if last != got[0].Stmt {
				t.Errorf("trace ends at %s, want %s", ir.StmtText(last), ir.StmtText(got[0].Stmt))
			}
		})
	}
}

func anyMsgHas(vs []*verify.Violation, sub string) bool {
	for _, v := range vs {
		if strings.Contains(v.Msg, sub) {
			return true
		}
	}
	return false
}

func renderAll(vs []*verify.Violation) string {
	var b strings.Builder
	for _, v := range vs {
		b.WriteString(v.Error())
		b.WriteString("\n")
	}
	return b.String()
}

// TestCorpusCertifies runs the verifier over every section of the
// example corpus — the paper's figures and the library modules — at
// every pipeline stage, and asserts the certificate holds everywhere.
// It also reports the verifier's wall time over the corpus (recorded in
// EXPERIMENTS.md).
func TestCorpusCertifies(t *testing.T) {
	progs := []struct {
		name string
		p    *synth.Program
	}{
		{"fig1", &synth.Program{Sections: []*ir.Atomic{papersec.Fig1()}, Specs: adtspecs.All()}},
		{"fig4", &synth.Program{Sections: []*ir.Atomic{papersec.Fig4()}, Specs: adtspecs.All()}},
		{"fig7", &synth.Program{Sections: []*ir.Atomic{papersec.Fig7()}, Specs: adtspecs.All()}},
		{"fig9", &synth.Program{Sections: []*ir.Atomic{papersec.Fig9()}, Specs: adtspecs.All()}},
		{"cache", &synth.Program{Sections: cache.Sections(), Specs: adtspecs.All(), ClassOf: cache.ClassOf}},
		{"graph", &synth.Program{Sections: graph.Sections(), Specs: adtspecs.All(), ClassOf: graph.ClassOf}},
		{"gossip", &synth.Program{Sections: gossip.Sections(), Specs: adtspecs.All(), ClassOf: gossip.ClassOf}},
		{"cia", &synth.Program{Sections: []*ir.Atomic{cia.Section()}, Specs: adtspecs.All()}},
	}
	stages := []synth.Stage{
		synth.StageInsert, synth.StageRemoveRedundant, synth.StageElideLocalSet,
		synth.StageEarlyRelease, synth.StageNullChecks, synth.StageRefine,
	}
	sections := 0
	var verifyTime time.Duration
	for _, pr := range progs {
		for _, stage := range stages {
			// Re-clone: Synthesize shares no state, but the sections are
			// mutated by the pipeline, so each run needs fresh input.
			fresh := &synth.Program{Specs: pr.p.Specs, ClassOf: pr.p.ClassOf}
			for _, sec := range pr.p.Sections {
				fresh.Sections = append(fresh.Sections, sec.Clone())
			}
			res, err := synth.Synthesize(fresh, synth.Options{StopAfter: stage})
			if err != nil {
				t.Fatalf("%s@%d: Synthesize: %v", pr.name, stage, err)
			}
			start := time.Now()
			vs := synth.VerifyResult(res)
			verifyTime += time.Since(start)
			sections += len(res.Sections)
			for _, v := range vs {
				t.Errorf("%s@%d: %s", pr.name, stage, v.Error())
			}
		}
	}
	t.Logf("verified %d section instances in %v", sections, verifyTime)
}
