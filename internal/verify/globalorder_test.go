package verify

import (
	"strings"
	"testing"
)

// TestGlobalOrderClean: consistent ranks, ascending edges, no cycle.
func TestGlobalOrderClean(t *testing.T) {
	g := NewGlobalOrder()
	g.AddClass("s1", "a:Map$m", 0)
	g.AddClass("s1", "a:Set$s", 1)
	g.AddClass("s2", "a:Map$m", 0) // same rank: fine
	g.AddEdge("s1", "a:Map$m", "a:Set$s")
	g.AddEdge("s2", "a:Map$m", "a:Set$s")
	g.AddEdge("s2", "a:Map$m", "a:Map$m") // self edge: ignored
	if problems := g.Check(); len(problems) != 0 {
		t.Fatalf("clean order reported problems: %v", problems)
	}
	if g.Classes() != 2 || g.Edges() != 1 {
		t.Errorf("got %d classes, %d edges; want 2, 1", g.Classes(), g.Edges())
	}
}

// TestGlobalOrderRankConflict: one class certified at two ranks.
func TestGlobalOrderRankConflict(t *testing.T) {
	g := NewGlobalOrder()
	g.AddClass("s1", "a:Map$m", 0)
	g.AddClass("s2", "a:Map$m", 3)
	problems := g.Check()
	if len(problems) != 1 || !strings.Contains(problems[0], "rank 0") || !strings.Contains(problems[0], "rank 3") {
		t.Fatalf("want one rank-conflict problem naming both ranks, got %v", problems)
	}
}

// TestGlobalOrderDescendingEdge: an edge against the rank order.
func TestGlobalOrderDescendingEdge(t *testing.T) {
	g := NewGlobalOrder()
	g.AddClass("s1", "a:Map$m", 2)
	g.AddClass("s1", "a:Set$s", 0)
	g.AddEdge("s1", "a:Map$m", "a:Set$s")
	problems := g.Check()
	if len(problems) != 1 || !strings.Contains(problems[0], "descending edge") {
		t.Fatalf("want one descending-edge problem, got %v", problems)
	}
}

// TestGlobalOrderCycle: two sections acquiring two classes in opposite
// orders — the seeded potential-deadlock counterexample.
func TestGlobalOrderCycle(t *testing.T) {
	g := NewGlobalOrder()
	g.AddEdge("s1", "a:Map$m", "a:Set$s")
	g.AddEdge("s2", "a:Set$s", "a:Map$m")
	problems := g.Check()
	if len(problems) != 1 || !strings.Contains(problems[0], "cycle") {
		t.Fatalf("want one cycle problem, got %v", problems)
	}
	if !strings.Contains(problems[0], "a:Map$m -> a:Set$s -> a:Map$m") &&
		!strings.Contains(problems[0], "a:Set$s -> a:Map$m -> a:Set$s") {
		t.Errorf("cycle counterexample should print the path, got %q", problems[0])
	}
}
