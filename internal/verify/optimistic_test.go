package verify_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/verify"
)

// occObserver is the observer declaration the optimistic tests use:
// read-only Map/Set methods only.
func occObserver(_, method string) bool {
	switch method {
	case "get", "contains", "containsKey", "size":
		return true
	}
	return false
}

// occSection wraps an envelope (or any statements) into a one-ADT
// section over a Map m and key k.
func occSection(body ...ir.Stmt) *ir.Atomic {
	return &ir.Atomic{
		Name: "t",
		Vars: []ir.Param{adt("m", "Map"), {Name: "k"}, {Name: "v"}},
		Body: ir.Block(body),
	}
}

// goodFallback is a complete pessimistic expansion: prologue, generic
// lock, call, epilogue.
func goodFallback() ir.Block {
	return ir.Block{
		&ir.Prologue{Guard: true},
		lv("m"),
		&ir.Call{Recv: "m", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "k"}}, Assign: "v"},
		&ir.Epilogue{},
	}
}

// TestOptimisticObligations drives obligation (4) over hand-built
// envelopes: the certified shape passes, and each way of breaking the
// read-only certificate fires the expected obligation.
func TestOptimisticObligations(t *testing.T) {
	k := ir.VarRef{Name: "k"}
	getK := core.SymSetOf(core.SymOpOf("get", core.VarArg("k")))

	cases := []struct {
		name     string
		section  *ir.Atomic
		observer func(string, string) bool
		want     []verify.Obligation
		msgHas   string
	}{
		{
			name: "certified envelope",
			section: occSection(&ir.Optimistic{
				Body: ir.Block{
					&ir.Observe{Vars: []string{"m"}, Set: getK},
					&ir.Call{Recv: "m", Method: "get", Args: []ir.Expr{k}, Assign: "v"},
				},
				Fallback: goodFallback(),
			}),
			observer: occObserver,
			want:     nil,
		},
		{
			name: "mutator in body",
			section: occSection(&ir.Optimistic{
				Body: ir.Block{
					&ir.Observe{Vars: []string{"m"}, Generic: true},
					&ir.Call{Recv: "m", Method: "put", Args: []ir.Expr{k, k}},
				},
				Fallback: goodFallback(),
			}),
			observer: occObserver,
			want:     []verify.Obligation{verify.Optimistic},
			msgHas:   "not a declared observer",
		},
		{
			name: "no observer information fails closed",
			section: occSection(&ir.Optimistic{
				Body: ir.Block{
					&ir.Observe{Vars: []string{"m"}, Set: getK},
					&ir.Call{Recv: "m", Method: "get", Args: []ir.Expr{k}, Assign: "v"},
				},
				Fallback: goodFallback(),
			}),
			observer: nil,
			want:     []verify.Obligation{verify.Optimistic},
			msgHas:   "not a declared observer",
		},
		{
			name: "lock inside body",
			section: occSection(&ir.Optimistic{
				Body: ir.Block{
					lv("m"),
					&ir.Call{Recv: "m", Method: "get", Args: []ir.Expr{k}, Assign: "v"},
				},
				Fallback: goodFallback(),
			}),
			observer: occObserver,
			want:     []verify.Obligation{verify.Optimistic},
			msgHas:   "must acquire nothing",
		},
		{
			name: "observation does not cover call",
			section: occSection(&ir.Optimistic{
				Body: ir.Block{
					&ir.Observe{Vars: []string{"m"}, Set: getK},
					&ir.Call{Recv: "m", Method: "size"},
				},
				Fallback: goodFallback(),
			}),
			observer: occObserver,
			want:     []verify.Obligation{verify.Coverage},
			msgHas:   "does not cover call",
		},
		{
			name: "broken fallback",
			section: occSection(&ir.Optimistic{
				Body: ir.Block{
					&ir.Observe{Vars: []string{"m"}, Set: getK},
					&ir.Call{Recv: "m", Method: "get", Args: []ir.Expr{k}, Assign: "v"},
				},
				Fallback: ir.Block{
					&ir.Call{Recv: "m", Method: "get", Args: []ir.Expr{k}, Assign: "v"},
				},
			}),
			observer: occObserver,
			want:     []verify.Obligation{verify.Coverage},
			msgHas:   "not dominated by a lock",
		},
		{
			name: "envelope after release",
			section: occSection(
				&ir.Prologue{Guard: true},
				lv("m"),
				&ir.Call{Recv: "m", Method: "get", Args: []ir.Expr{k}, Assign: "v"},
				&ir.Epilogue{},
				&ir.Optimistic{
					Body: ir.Block{
						&ir.Observe{Vars: []string{"m"}, Set: getK},
						&ir.Call{Recv: "m", Method: "get", Args: []ir.Expr{k}, Assign: "v"},
					},
					Fallback: goodFallback(),
				},
			),
			observer: occObserver,
			want:     []verify.Obligation{verify.TwoPhase},
			msgHas:   "optimistic envelope reachable after release",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := mkInput(tc.section, map[string]int{"Map": 0})
			in.Observer = tc.observer
			vs := verify.Section(in)

			got := map[verify.Obligation]bool{}
			for _, v := range vs {
				got[v.Obligation] = true
			}
			want := map[verify.Obligation]bool{}
			for _, ob := range tc.want {
				want[ob] = true
			}
			if len(got) != len(want) {
				t.Fatalf("obligations = %v, want %v\nviolations:\n%s", keys(got), tc.want, renderAll(vs))
			}
			for ob := range want {
				if !got[ob] {
					t.Errorf("missing obligation %s\nviolations:\n%s", ob, renderAll(vs))
				}
			}
			if tc.msgHas != "" {
				found := false
				for _, v := range vs {
					if strings.Contains(v.Msg, tc.msgHas) {
						found = true
					}
				}
				if !found {
					t.Errorf("no violation message contains %q:\n%s", tc.msgHas, renderAll(vs))
				}
			}
		})
	}
}

func keys(m map[verify.Obligation]bool) []verify.Obligation {
	var out []verify.Obligation
	for k := range m {
		out = append(out, k)
	}
	return out
}
