package verify

import "repro/internal/ir"

// witness constructs a concrete counterexample path for a violation: a
// statement trace from the section entry to the offending statement,
// routed through the conflicting statement (the acquiring lock, the
// preceding release, or the earlier higher-rank lock) when there is one.
func (v *verifier) witness(viol *Violation) ir.Trace {
	target, ok := v.cfg.NodeOf(viol.Stmt)
	if !ok {
		return ir.Trace{Sec: v.in.Section}
	}
	var nodes []int
	switch viol.Obligation {
	case Coverage:
		if viol.Related != nil {
			// Set mismatch: entry → acquiring lock → call.
			nodes = v.pathVia(viol.Related, target)
		} else if c, isCall := viol.Stmt.(*ir.Call); isCall {
			// Uncovered call: prefer a path on which the receiver is
			// genuinely never held at the call.
			nodes = v.unlockedPath(target, c.Recv)
		}
	case TwoPhase:
		nodes = v.pathVia(viol.Related, target)
	case Ordering:
		// Find an earlier lock whose acquisition event has rank ≥ the
		// offending lock's, reaching it by a nonempty path.
		rank := v.eventRank(viol.Stmt)
		for _, n := range v.cfg.Nodes {
			if n.Kind != ir.KindStmt || !v.cfg.ReachesProperly(n.ID, target) {
				continue
			}
			if r := v.eventRank(n.Stmt); r >= 0 && r >= rank {
				viol.Related = n.Stmt
				nodes = v.pathVia(n.Stmt, target)
				break
			}
		}
	}
	if nodes == nil {
		nodes = v.path(v.cfg.Entry, target)
	}
	return ir.Trace{Sec: v.in.Section, Stmts: v.stmtsOf(nodes)}
}

// eventRank returns the class rank a lock statement acquires at, or -1
// for non-lock statements.
func (v *verifier) eventRank(s ir.Stmt) int {
	switch x := s.(type) {
	case *ir.LV:
		return v.rankOfVar(x.Var)
	case *ir.LV2:
		if len(x.Vars) > 0 {
			return v.rankOfVar(x.Vars[0])
		}
	case *ir.LockBatch:
		// The batch's last entry has the highest rank (entries are in
		// non-decreasing rank order), which is what an ordering witness
		// routed through the batch needs.
		if n := len(x.Entries); n > 0 && len(x.Entries[n-1].Vars) > 0 {
			return v.rankOfVar(x.Entries[n-1].Vars[0])
		}
	}
	return -1
}

// pathVia returns entry → via → target, or nil when no such path exists.
func (v *verifier) pathVia(via ir.Stmt, target int) []int {
	mid, ok := v.cfg.NodeOf(via)
	if !ok {
		return nil
	}
	first := v.path(v.cfg.Entry, mid)
	second := v.path(mid, target)
	if first == nil || second == nil {
		return nil
	}
	return append(first, second[1:]...)
}

// path returns the BFS-shortest node sequence from → to (inclusive), or
// nil when unreachable. A from == to request returns a cycle through the
// graph back to the node when one exists (needed for loop witnesses),
// otherwise the single node.
func (v *verifier) path(from, to int) []int {
	if from == to {
		for _, s := range v.cfg.Nodes[from].Succs {
			if s == to {
				return []int{from, to}
			}
			if rest := v.path(s, to); rest != nil {
				return append([]int{from}, rest...)
			}
		}
		return []int{from}
	}
	parent := make([]int, len(v.cfg.Nodes))
	for i := range parent {
		parent[i] = -1
	}
	parent[from] = from
	queue := []int{from}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == to {
			return unwind(parent, from, to)
		}
		for _, s := range v.cfg.Nodes[u].Succs {
			if parent[s] == -1 {
				parent[s] = u
				queue = append(queue, s)
			}
		}
	}
	return nil
}

func unwind(parent []int, from, to int) []int {
	var rev []int
	for n := to; ; n = parent[n] {
		rev = append(rev, n)
		if n == from {
			break
		}
	}
	out := make([]int, len(rev))
	for i, n := range rev {
		out[len(rev)-1-i] = n
	}
	return out
}

// unlockedPath searches the product of the CFG with the boolean "is the
// receiver's lock fact live" for a path from the entry to the call on
// which the receiver arrives unheld — the exact execution the coverage
// failure describes. Falls back to nil (plain path) when the product
// search fails.
func (v *verifier) unlockedPath(callNode int, recv string) []int {
	n := len(v.cfg.Nodes)
	// State encoding: node*2 + lockedBit.
	parent := make([]int, 2*n)
	for i := range parent {
		parent[i] = -1
	}
	start := v.cfg.Entry * 2
	parent[start] = start
	queue := []int{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		un, ub := u/2, u%2
		if un == callNode && ub == 0 {
			// Unwind over product states, then project to nodes.
			var rev []int
			for s := u; ; s = parent[s] {
				rev = append(rev, s/2)
				if s == start {
					break
				}
			}
			out := make([]int, len(rev))
			for i, id := range rev {
				out[len(rev)-1-i] = id
			}
			return out
		}
		nb := v.lockedAfter(un, ub, recv)
		for _, s := range v.cfg.Nodes[un].Succs {
			st := s*2 + nb
			if parent[st] == -1 {
				parent[st] = u
				queue = append(queue, st)
			}
		}
	}
	return nil
}

// lockedAfter transfers the receiver's "held" bit across node id, exactly
// mirroring the must-analysis on a single path.
func (v *verifier) lockedAfter(id, bit int, recv string) int {
	node := v.cfg.Nodes[id]
	if node.Kind != ir.KindStmt {
		return bit
	}
	switch x := node.Stmt.(type) {
	case *ir.LV:
		if x.Var == recv {
			return 1
		}
	case *ir.LV2:
		for _, name := range x.Vars {
			if name == recv {
				return 1
			}
		}
	case *ir.LockBatch:
		for _, e := range x.Entries {
			for _, name := range e.Vars {
				if name == recv {
					return 1
				}
			}
		}
	case *ir.Assign:
		if x.Lhs == recv {
			return 0
		}
	case *ir.Call:
		if x.Assign == recv {
			return 0
		}
	case *ir.UnlockAllVar:
		if x.Var == recv {
			return 0
		}
		if kr, ok := v.classOf(recv); ok {
			if kx, ok2 := v.classOf(x.Var); ok2 && kr == kx {
				return 0
			}
		}
	case *ir.Epilogue:
		return 0
	}
	return bit
}

// stmtsOf projects a node sequence to the statement trace: simple
// statements appear as themselves, branch nodes as their one-line
// "if(cond) {...}" form, join/entry/exit nodes are elided.
func (v *verifier) stmtsOf(nodes []int) []ir.Stmt {
	var out []ir.Stmt
	for _, id := range nodes {
		n := v.cfg.Nodes[id]
		if (n.Kind == ir.KindStmt || n.Kind == ir.KindBranch) && n.Stmt != nil {
			out = append(out, n.Stmt)
		}
	}
	return out
}
