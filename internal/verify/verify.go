// Package verify is the static certificate checker for synthesized
// atomic sections: an independent re-proof of the three obligations
// behind the paper's Theorem 1 (§3.3) on the synthesizer's actual
// output, after all optimizations. The synthesizer argues its insertions
// are correct by construction; this package re-derives the guarantees
// from nothing but the emitted section, the pointer abstraction, and the
// class ranks — so a silent bug in an optimization (redundant-LV
// removal, LOCAL_SET elision, early release, null-check removal,
// refinement) is caught as a falsified obligation with a concrete
// counterexample path instead of a rare runtime panic.
//
// The three obligations, checked by one forward dataflow over
// ir.BuildCFG:
//
//  1. Coverage: every ADT call is dominated by a lock statement whose
//     symbolic set covers the call's operation, with no intervening kill
//     (reassignment of the receiver, release of a possibly-aliasing
//     instance, or reassignment of a variable the locked set mentions).
//  2. Two-phase: no lock acquisition is reachable after any effective
//     release (early release included).
//  3. Ordering: along every path, acquisition events occur in strictly
//     increasing class-rank order — an LV2 group counts as one
//     dynamically-ordered event — matching the runtime OS2PL assertion
//     of core.Txn.
//
// The analysis is path-insensitive but alias-aware: two variables of one
// equivalence class may point to the same instance, so releasing one
// kills the lock facts of the whole class. Lock statements on
// already-held variables are no-ops (LOCAL_SET semantics, which
// core.Txn.Lock preserves even for elided sections), so they generate no
// acquisition event.
//
// Sections containing an ir.Optimistic envelope carry a fourth
// obligation (see the Optimistic constant): the optimistic body must be
// provably read-only and lock-free, and the fallback block is re-proved
// as a pessimistic section under the original three obligations.
package verify

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/ir"
)

// Obligation names one of the three checked properties.
type Obligation string

const (
	// Coverage is obligation (1): calls dominated by covering locks.
	Coverage Obligation = "coverage"
	// TwoPhase is obligation (2): no acquisition after a release.
	TwoPhase Obligation = "two-phase"
	// Ordering is obligation (3): acquisitions in restriction-graph
	// (class-rank) order.
	Ordering Obligation = "ordering"
	// Optimistic is obligation (4), checked only on sections containing
	// an ir.Optimistic envelope: the optimistic body acquires and
	// releases nothing, every ADT call in it is a declared observer of
	// its class (so a discarded run leaves no trace in shared state),
	// and — via an Observe→LV substitution re-run through obligation
	// (1) — every call is dominated by an observation whose symbolic
	// set covers it. The fallback block is certified separately as an
	// ordinary pessimistic section under obligations (1)–(3).
	Optimistic Obligation = "optimistic"
)

// Input is one section to verify plus the synthesis context it was
// produced under.
type Input struct {
	// Section is the synthesized section (any pipeline stage).
	Section *ir.Atomic
	// ClassOf maps an ADT variable of the section to its
	// equivalence-class key.
	ClassOf func(varName string) (string, bool)
	// Rank gives the class's position in the topological order of the
	// restrictions graph.
	Rank func(classKey string) int
	// WrappedGlobal reports, for a class wrapped into a cyclic-component
	// global wrapper (§3.4), the designated global pointer variable.
	// Optional; when set, calls on wrapped classes must go through that
	// variable (global-lock dominance).
	WrappedGlobal func(classKey string) (string, bool)
	// Observer reports whether a method of a class is a declared
	// observer (core.Spec.IsObserver). Required to certify sections
	// containing an ir.Optimistic envelope: without it every ADT call in
	// an optimistic body is a violation (the checker fails closed —
	// read-only cannot be proven from the section alone).
	Observer func(classKey, method string) bool
}

// Violation is one falsified obligation with its counterexample.
type Violation struct {
	Obligation Obligation
	Section    *ir.Atomic
	// Stmt is the offending statement (the uncovered call, the
	// out-of-order or post-release lock).
	Stmt ir.Stmt
	// Related is the other end of the conflict, when there is one: the
	// lock whose set fails to cover, the release preceding a lock, the
	// higher-rank lock preceding an acquisition.
	Related ir.Stmt
	// Msg describes the failure.
	Msg string
	// Trace is a concrete counterexample path from the section entry to
	// the offending statement (through Related when set).
	Trace ir.Trace
}

// Error renders the violation with its position and counterexample, in
// the same "section: path" form as ir.Validate diagnostics.
func (v *Violation) Error() string {
	pos, _ := v.Section.PosOf(v.Stmt)
	s := fmt.Sprintf("verify: %s: %s: %s", v.Obligation, pos, v.Msg)
	if len(v.Trace.Stmts) > 0 {
		s += "\n  counterexample path:\n"
		for _, st := range v.Trace.Stmts {
			p, _ := v.Section.PosOf(st)
			s += fmt.Sprintf("    %s: %s\n", p, ir.StmtText(st))
		}
	}
	return s
}

// ---------------------------------------------------------------------
// Abstract state
// ---------------------------------------------------------------------

// heldSet is one symbolic set a variable may currently be locked under,
// keyed by the lock statement that acquired it. stale records variables
// reassigned since the acquisition: a set argument naming a stale
// variable no longer denotes the value the mode was instantiated with,
// so it covers nothing.
type heldSet struct {
	generic bool
	set     core.SymSet
	stale   map[string]bool
}

func (h *heldSet) clone() *heldSet {
	c := &heldSet{generic: h.generic, set: h.set}
	if len(h.stale) > 0 {
		c.stale = make(map[string]bool, len(h.stale))
		for k := range h.stale {
			c.stale[k] = true
		}
	}
	return c
}

// mentions reports whether the set names variable v in an argument.
func (h *heldSet) mentions(v string) bool {
	if h.generic {
		return false
	}
	for _, op := range h.set {
		for _, a := range op.Args {
			if a.Kind == core.SymVar && a.Var == v {
				return true
			}
		}
	}
	return false
}

// noEvent is the urank value for "no acquisition event fired yet" (ranks
// are ≥ 0).
const noEvent = -1

// varFacts is the per-variable lattice element.
type varFacts struct {
	// must: the variable's instance is locked on every path reaching
	// this point (and the variable has not been reassigned since).
	must bool
	// sets are the symbolic sets the instance may be held under, keyed
	// by acquiring statement.
	sets map[ir.Stmt]*heldSet
	// urank is the maximum rank of an acquisition event fired on some
	// path on which this variable is currently NOT held. The ordering
	// check at a lock of this variable compares against urank rather
	// than a global path maximum: on paths where the variable is already
	// held the lock is a no-op and fires no event, so ranks fired only
	// on those paths cannot order-conflict with it. Meaningless (and
	// kept at noEvent) while must is true.
	urank int
}

func (vf *varFacts) clone() *varFacts {
	c := &varFacts{must: vf.must, urank: vf.urank, sets: make(map[ir.Stmt]*heldSet, len(vf.sets))}
	for k, h := range vf.sets {
		c.sets[k] = h.clone()
	}
	return c
}

// state is the dataflow fact at a CFG node entry.
type state struct {
	vars map[string]*varFacts
	// releases are the release statements that may have released a held
	// instance on some path reaching this point (two-phase tracking).
	releases map[ir.Stmt]bool
	// allRank is the maximum rank of an acquisition event fired on any
	// path reaching this point (used to seed urank on kills).
	allRank int
}

func newState(sec *ir.Atomic) *state {
	st := &state{vars: make(map[string]*varFacts), releases: make(map[ir.Stmt]bool), allRank: noEvent}
	for _, p := range sec.Vars {
		if p.IsADT {
			st.vars[p.Name] = &varFacts{urank: noEvent, sets: make(map[ir.Stmt]*heldSet)}
		}
	}
	return st
}

func (st *state) clone() *state {
	c := &state{vars: make(map[string]*varFacts, len(st.vars)),
		releases: make(map[ir.Stmt]bool, len(st.releases)), allRank: st.allRank}
	for v, vf := range st.vars {
		c.vars[v] = vf.clone()
	}
	for r := range st.releases {
		c.releases[r] = true
	}
	return c
}

// join merges b into a (a is mutated) and reports whether a changed.
func (a *state) join(b *state) bool {
	changed := false
	if b.allRank > a.allRank {
		a.allRank = b.allRank
		changed = true
	}
	for r := range b.releases {
		if !a.releases[r] {
			a.releases[r] = true
			changed = true
		}
	}
	for v, bf := range b.vars {
		af, ok := a.vars[v]
		if !ok {
			a.vars[v] = bf.clone()
			changed = true
			continue
		}
		if af.must && !bf.must {
			af.must = false
			changed = true
		}
		// urank joins by max over the predecessors that have an unheld
		// path; a must-held predecessor contributes nothing.
		bu := bf.urank
		if bf.must {
			bu = noEvent
		}
		if !af.must && bu > af.urank {
			af.urank = bu
			changed = true
		}
		for k, bh := range b.vars[v].sets {
			ah, ok := af.sets[k]
			if !ok {
				af.sets[k] = bh.clone()
				changed = true
				continue
			}
			for sv := range bh.stale {
				if !ah.stale[sv] {
					if ah.stale == nil {
						ah.stale = make(map[string]bool)
					}
					ah.stale[sv] = true
					changed = true
				}
			}
		}
	}
	return changed
}

// ---------------------------------------------------------------------
// Verifier
// ---------------------------------------------------------------------

type verifier struct {
	in  Input
	cfg *ir.CFG
	// states[n] is the fact at node n's entry; nil = unreached.
	states []*state
	report func(*Violation)
}

// Section verifies one synthesized section and returns every falsified
// obligation (nil when the section is certified). The input section is
// not modified.
func Section(in Input) []*Violation {
	v := &verifier{in: in, cfg: ir.BuildCFG(in.Section)}
	v.states = make([]*state, len(v.cfg.Nodes))
	v.states[v.cfg.Entry] = newState(in.Section)

	// Forward fixpoint.
	work := []int{v.cfg.Entry}
	inWork := make([]bool, len(v.cfg.Nodes))
	inWork[v.cfg.Entry] = true
	for len(work) > 0 {
		id := work[0]
		work = work[1:]
		inWork[id] = false
		out := v.states[id].clone()
		v.transfer(v.cfg.Nodes[id], out, nil)
		for _, s := range v.cfg.Nodes[id].Succs {
			if v.states[s] == nil {
				v.states[s] = out.clone()
			} else if !v.states[s].join(out) {
				continue
			}
			if !inWork[s] {
				inWork[s] = true
				work = append(work, s)
			}
		}
	}

	// Reporting pass over the converged facts, in node order so the
	// violation list is deterministic.
	var out []*Violation
	seen := make(map[string]bool)
	for _, n := range v.cfg.Nodes {
		if v.states[n.ID] == nil {
			continue
		}
		st := v.states[n.ID].clone()
		v.transfer(n, st, func(viol *Violation) {
			key := string(viol.Obligation) + "\x00" + viol.Msg
			if pos, ok := in.Section.PosOf(viol.Stmt); ok {
				key += "\x00" + pos.Path
			}
			if !seen[key] {
				seen[key] = true
				viol.Trace = v.witness(viol)
				out = append(out, viol)
			}
		})
	}

	// Obligation (4): certify every optimistic envelope — the fallback
	// recursively as a pessimistic section, the body as read-only.
	out = append(out, v.optimisticObligations(in.Section.Body)...)
	return out
}

// optimisticObligations walks the block tree for ir.Optimistic envelopes
// and certifies each one.
func (v *verifier) optimisticObligations(b ir.Block) []*Violation {
	var out []*Violation
	for _, s := range b {
		switch x := s.(type) {
		case *ir.If:
			out = append(out, v.optimisticObligations(x.Then)...)
			out = append(out, v.optimisticObligations(x.Else)...)
		case *ir.While:
			out = append(out, v.optimisticObligations(x.Body)...)
		case *ir.Optimistic:
			out = append(out, v.certifyEnvelope(x)...)
		}
	}
	return out
}

// certifyEnvelope proves the three parts of obligation (4) for one
// envelope. Failures in the derived sub-sections (the fallback re-proof,
// the Observe→LV coverage re-run) surface as ordinary coverage /
// two-phase / ordering violations against a synthetic section whose name
// marks which half failed.
func (v *verifier) certifyEnvelope(opt *ir.Optimistic) []*Violation {
	var out []*Violation

	// (4a) The body acquires and releases nothing, and every ADT call
	// is a declared observer. Nested envelopes are rejected outright.
	var bodyWalk func(b ir.Block)
	bodyWalk = func(b ir.Block) {
		for _, s := range b {
			switch x := s.(type) {
			case *ir.Prologue, *ir.Epilogue, *ir.LV, *ir.LV2, *ir.LockBatch, *ir.UnlockAllVar, *ir.Optimistic:
				out = append(out, &Violation{
					Obligation: Optimistic, Section: v.in.Section, Stmt: s,
					Msg: fmt.Sprintf("optimistic body must acquire nothing: found %s", ir.StmtText(s)),
				})
			case *ir.Call:
				key, ok := v.classOf(x.Recv)
				if !ok {
					break // non-ADT receiver: ir.Validate's problem
				}
				if v.in.Observer == nil || !v.in.Observer(key, x.Method) {
					out = append(out, &Violation{
						Obligation: Optimistic, Section: v.in.Section, Stmt: s,
						Msg: fmt.Sprintf("call %s in optimistic body is not a declared observer of class %s",
							ir.StmtText(s), key),
					})
				}
			case *ir.If:
				bodyWalk(x.Then)
				bodyWalk(x.Else)
			case *ir.While:
				bodyWalk(x.Body)
			}
		}
	}
	bodyWalk(opt.Body)

	// (4b) The fallback is a complete pessimistic section in its own
	// right: re-prove coverage, two-phase and ordering on it.
	fb := v.subInput("#fallback", opt.Fallback)
	out = append(out, Section(fb)...)

	// (4c) Coverage of the body: substitute each Observe with the lock
	// statement it mirrors and re-run the dataflow, proving every call
	// dominated by an observation whose set covers it (with the same
	// kill rules for reassigned receivers and stale set arguments).
	cov := v.subInput("#optimistic", opt.Body)
	cov.Section = cov.Section.Clone()
	substituteObserves(cov.Section.Body)
	out = append(out, Section(cov)...)

	return out
}

// subInput derives a verification input for one half of an envelope: the
// same abstraction closures over a synthetic section sharing the outer
// declarations.
func (v *verifier) subInput(suffix string, body ir.Block) Input {
	in := v.in
	in.Section = &ir.Atomic{
		Name: v.in.Section.Name + suffix,
		Vars: v.in.Section.Vars,
		Body: body,
	}
	return in
}

// substituteObserves rewrites Observe statements into the LV/LV2 they
// mirror, in place (the caller passes a clone).
func substituteObserves(b ir.Block) {
	for i, s := range b {
		switch x := s.(type) {
		case *ir.Observe:
			if len(x.Vars) == 1 {
				b[i] = &ir.LV{Var: x.Vars[0], Set: x.Set, Generic: x.Generic, Guarded: x.Guarded}
			} else {
				b[i] = &ir.LV2{Vars: x.Vars, Set: x.Set, Generic: x.Generic}
			}
		case *ir.If:
			substituteObserves(x.Then)
			substituteObserves(x.Else)
		case *ir.While:
			substituteObserves(x.Body)
		}
	}
}

func (v *verifier) classOf(name string) (string, bool) {
	if v.in.ClassOf == nil {
		return "", false
	}
	return v.in.ClassOf(name)
}

func (v *verifier) rankOfVar(name string) int {
	key, ok := v.classOf(name)
	if !ok || v.in.Rank == nil {
		return noEvent
	}
	return v.in.Rank(key)
}

// transfer applies node n to st in place. When report is non-nil,
// falsified obligations are reported (the fixpoint pass runs with a nil
// reporter).
func (v *verifier) transfer(n *ir.Node, st *state, report func(*Violation)) {
	if n.Kind != ir.KindStmt {
		return
	}
	switch x := n.Stmt.(type) {
	case *ir.Prologue:
		// LOCAL_SET := ∅; no lock effect.
	case *ir.LV:
		v.lockEvent(n.Stmt, []string{x.Var}, x.Set, x.Generic, st, report)
	case *ir.LV2:
		v.lockEvent(n.Stmt, x.Vars, x.Set, x.Generic, st, report)
	case *ir.LockBatch:
		// A fused prologue is certified by expanding it: each entry is
		// one acquisition event at its own rank, in entry order, under
		// the same two-phase and ordering obligations the unfused
		// statements carried. Nothing about the batch is trusted.
		for _, e := range x.Entries {
			v.lockEvent(n.Stmt, e.Vars, e.Set, e.Generic, st, report)
		}
	case *ir.UnlockAllVar:
		v.release(n.Stmt, x.Var, st)
	case *ir.Epilogue:
		// unlockAll over LOCAL_SET: releases everything still held.
		released := false
		for _, vf := range st.vars {
			if len(vf.sets) > 0 {
				released = true
			}
		}
		if released {
			st.releases[n.Stmt] = true
		}
		for name := range st.vars {
			v.killVar(name, st)
		}
	case *ir.Optimistic:
		// The envelope is a black box to the surrounding dataflow: both
		// halves start from an empty lock state and release everything
		// before returning (certified by the recursive pass in
		// Section). For the enclosing section that means the node both
		// acquires (its fallback locks, so it must not be reachable
		// after a release) and releases (every lock fact dies across
		// it, and later acquisitions are two-phase violations).
		if report != nil && len(st.releases) > 0 {
			rel := firstRelease(v.in.Section, st.releases)
			report(&Violation{
				Obligation: TwoPhase, Section: v.in.Section, Stmt: n.Stmt, Related: rel,
				Msg: fmt.Sprintf("optimistic envelope reachable after release %s", ir.StmtText(rel)),
			})
		}
		st.releases[n.Stmt] = true
		for name := range st.vars {
			v.killVar(name, st)
		}
	case *ir.Call:
		v.checkCall(n.Stmt.(*ir.Call), st, report)
		if x.Assign != "" {
			v.assign(x.Assign, st)
		}
	case *ir.Assign:
		v.assign(x.Lhs, st)
	}
}

// lockEvent processes an LV or LV2: a no-op when every variable is
// already held (LOCAL_SET semantics), otherwise one acquisition event at
// the group's class rank, checked against the two-phase and ordering
// obligations.
func (v *verifier) lockEvent(stmt ir.Stmt, vars []string, set core.SymSet, generic bool, st *state, report func(*Violation)) {
	allHeld := true
	urank := noEvent
	for _, name := range vars {
		vf := st.vars[name]
		if vf == nil {
			continue // not an ADT variable; nothing to verify
		}
		if !vf.must {
			allHeld = false
			if vf.urank > urank {
				urank = vf.urank
			}
		}
	}
	if allHeld {
		return // re-lock of held instances: no acquisition at runtime
	}
	rank := v.rankOfVar(vars[0])

	if report != nil {
		if len(st.releases) > 0 {
			rel := firstRelease(v.in.Section, st.releases)
			report(&Violation{
				Obligation: TwoPhase, Section: v.in.Section, Stmt: stmt, Related: rel,
				Msg: fmt.Sprintf("lock %s reachable after release %s", ir.StmtText(stmt), ir.StmtText(rel)),
			})
		}
		if rank >= 0 && rank <= urank {
			report(&Violation{
				Obligation: Ordering, Section: v.in.Section, Stmt: stmt,
				Msg: fmt.Sprintf("acquisition %s at rank %d reachable after an acquisition at rank %d on a path where it still locks",
					ir.StmtText(stmt), rank, urank),
			})
		}
	}

	// The event raises urank for every variable not held on the firing
	// paths; the locked variables themselves become must-held.
	if rank > st.allRank {
		st.allRank = rank
	}
	locked := make(map[string]bool, len(vars))
	for _, name := range vars {
		locked[name] = true
	}
	for name, vf := range st.vars {
		if locked[name] || vf.must {
			continue
		}
		if rank > vf.urank {
			vf.urank = rank
		}
	}
	for _, name := range vars {
		vf := st.vars[name]
		if vf == nil {
			continue
		}
		vf.must = true
		vf.urank = noEvent
		if _, ok := vf.sets[stmt]; !ok {
			vf.sets[stmt] = &heldSet{generic: generic, set: set}
		}
	}
}

// release processes "x.unlockAll()": if x may be held, the release is
// effective (two-phase tracking), and — because any same-class variable
// may point to the released instance — the lock facts of the whole class
// die.
func (v *verifier) release(stmt ir.Stmt, name string, st *state) {
	vf := st.vars[name]
	if vf == nil {
		return
	}
	if len(vf.sets) > 0 {
		st.releases[stmt] = true
	}
	key, ok := v.classOf(name)
	for other := range st.vars {
		if other == name {
			v.killVar(other, st)
		} else if ok {
			if k2, ok2 := v.classOf(other); ok2 && k2 == key {
				v.killVar(other, st)
			}
		}
	}
}

// killVar invalidates every lock fact about name: the variable now
// denotes an unknown (or released) instance.
func (v *verifier) killVar(name string, st *state) {
	vf := st.vars[name]
	if vf == nil {
		return
	}
	vf.must = false
	vf.sets = make(map[ir.Stmt]*heldSet)
	vf.urank = st.allRank
}

// assign processes a write to name: the lock facts of name die, and any
// held set mentioning name becomes stale in that argument (the mode was
// instantiated with the old value).
func (v *verifier) assign(name string, st *state) {
	v.killVar(name, st)
	for _, vf := range st.vars {
		for _, h := range vf.sets {
			if h.mentions(name) {
				if h.stale == nil {
					h.stale = make(map[string]bool)
				}
				h.stale[name] = true
			}
		}
	}
}

// checkCall verifies obligation (1) — and, for wrapped classes, global
// dominance — at one ADT call.
func (v *verifier) checkCall(c *ir.Call, st *state, report func(*Violation)) {
	if report == nil {
		return
	}
	vf := st.vars[c.Recv]
	if vf == nil {
		return // non-ADT receiver: ir.Validate's problem, not ours
	}
	key, haveKey := v.classOf(c.Recv)
	if haveKey && v.in.WrappedGlobal != nil {
		if gv, wrapped := v.in.WrappedGlobal(key); wrapped && c.Recv != gv {
			report(&Violation{
				Obligation: Coverage, Section: v.in.Section, Stmt: c,
				Msg: fmt.Sprintf("call on wrapped class %s bypasses its global wrapper variable %q", key, gv),
			})
		}
	}
	if !vf.must {
		report(&Violation{
			Obligation: Coverage, Section: v.in.Section, Stmt: c,
			Msg: fmt.Sprintf("call %s not dominated by a lock of %q", ir.StmtText(c), c.Recv),
		})
		return
	}
	// Every possible held set must cover the call.
	for _, origin := range sortedOrigins(v.in.Section, vf.sets) {
		h := vf.sets[origin]
		if !coversCall(h, c) {
			report(&Violation{
				Obligation: Coverage, Section: v.in.Section, Stmt: c, Related: origin,
				Msg: fmt.Sprintf("held set %s of %s does not cover call %s",
					describeSet(h), ir.StmtText(origin), ir.StmtText(c)),
			})
		}
	}
}

// coversCall reports whether a held symbolic set covers the call's
// operation in every environment consistent with the program point: a
// wildcard argument covers anything, a constant covers the equal
// literal, and a variable covers the same variable read as long as it
// has not been reassigned since the acquisition.
func coversCall(h *heldSet, c *ir.Call) bool {
	if h.generic {
		return true // lock(+): the whole-ADT set
	}
	for _, op := range h.set {
		if op.Method != c.Method || len(op.Args) != len(c.Args) {
			continue
		}
		ok := true
		for i, sa := range op.Args {
			switch sa.Kind {
			case core.SymStar:
				// covers any value
			case core.SymConst:
				lit, isLit := c.Args[i].(ir.Lit)
				if !isLit || lit.Val != sa.Val {
					ok = false
				}
			case core.SymVar:
				vr, isVar := c.Args[i].(ir.VarRef)
				if !isVar || vr.Name != sa.Var || h.stale[sa.Var] {
					ok = false
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func describeSet(h *heldSet) string {
	if h.generic {
		return "(+)"
	}
	return h.set.String()
}

// sortedOrigins orders held-set origin statements by structural position
// so reports are deterministic.
func sortedOrigins(sec *ir.Atomic, sets map[ir.Stmt]*heldSet) []ir.Stmt {
	out := make([]ir.Stmt, 0, len(sets))
	for s := range sets {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, _ := sec.PosOf(out[i])
		pj, _ := sec.PosOf(out[j])
		return pi.Path < pj.Path
	})
	return out
}

// firstRelease picks the structurally earliest release statement for
// deterministic two-phase reports.
func firstRelease(sec *ir.Atomic, rs map[ir.Stmt]bool) ir.Stmt {
	var out ir.Stmt
	best := ""
	for s := range rs {
		p, _ := sec.PosOf(s)
		if out == nil || p.Path < best {
			out, best = s, p.Path
		}
	}
	return out
}
