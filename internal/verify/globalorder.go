package verify

import (
	"fmt"
	"sort"
)

// GlobalOrder extends the per-section OS2PL certificate to a
// program-wide claim. Each synthesized plan certifies its own sections
// against its own rank table (the Ordering obligation of Section); the
// paper's deadlock-freedom argument, however, is global — every
// transaction in the program must walk one shared rank order. This
// accumulator takes the class-rank facts and acquisition edges of every
// plan (internal/synth exports them, cmd/semlockvet feeds them in) and
// checks the embedding:
//
//  1. a class keeps one rank everywhere it appears,
//  2. every acquisition edge ascends (rank(from) <= rank(to); equal
//     ranks fall back to the runtime's instance-id order), and
//  3. the union of all edges is acyclic.
//
// The API is primitive strings and ints so the package stays importable
// from internal/synth (which feeds it) without a cycle.
type GlobalOrder struct {
	ranks    map[string]int
	owner    map[string]string // class -> section that first declared it
	edges    map[[2]string]string
	problems []string
}

// NewGlobalOrder returns an empty accumulator.
func NewGlobalOrder() *GlobalOrder {
	return &GlobalOrder{
		ranks: make(map[string]int),
		owner: make(map[string]string),
		edges: make(map[[2]string]string),
	}
}

// AddClass registers a class at its certified rank. Re-registration at
// a different rank is an embedding conflict.
func (g *GlobalOrder) AddClass(section, class string, rank int) {
	if have, ok := g.ranks[class]; ok {
		if have != rank {
			g.problems = append(g.problems, fmt.Sprintf(
				"class %s certified at rank %d by %s but at rank %d by %s",
				class, have, g.owner[class], rank, section))
		}
		return
	}
	g.ranks[class] = rank
	g.owner[class] = section
}

// AddEdge records that section acquires class from before class to on
// one transaction.
func (g *GlobalOrder) AddEdge(section, from, to string) {
	if from == to {
		return
	}
	key := [2]string{from, to}
	if _, have := g.edges[key]; !have {
		g.edges[key] = section
	}
}

// Classes and Edges report the accumulated sizes (for status output).
func (g *GlobalOrder) Classes() int { return len(g.ranks) }
func (g *GlobalOrder) Edges() int   { return len(g.edges) }

// Check proves the embedding and returns the list of problems, empty
// when every certificate's order embeds into one acyclic global graph.
func (g *GlobalOrder) Check() []string {
	problems := append([]string(nil), g.problems...)

	keys := make([][2]string, 0, len(g.edges))
	for k := range g.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		rf, okf := g.ranks[k[0]]
		rt, okt := g.ranks[k[1]]
		if okf && okt && rf > rt {
			problems = append(problems, fmt.Sprintf(
				"section %s acquires %s (rank %d) before %s (rank %d): descending edge",
				g.edges[k], k[0], rf, k[1], rt))
		}
	}

	if cyc := g.findCycle(); cyc != nil {
		path := ""
		for i, n := range cyc {
			if i > 0 {
				path += " -> "
			}
			path += n
		}
		problems = append(problems, "global lock-order graph has a cycle: "+path)
	}
	return problems
}

// findCycle runs a deterministic DFS over the edge relation.
func (g *GlobalOrder) findCycle() []string {
	adj := make(map[string][]string)
	for k := range g.edges {
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
		sort.Strings(adj[n])
	}
	sort.Strings(nodes)

	color := make(map[string]int) // 0 white, 1 gray, 2 black
	var stack []string
	onStack := make(map[string]int)
	var dfs func(n string) []string
	dfs = func(n string) []string {
		color[n] = 1
		onStack[n] = len(stack)
		stack = append(stack, n)
		for _, m := range adj[n] {
			switch color[m] {
			case 0:
				if cyc := dfs(m); cyc != nil {
					return cyc
				}
			case 1:
				return append(append([]string(nil), stack[onStack[m]:]...), m)
			}
		}
		stack = stack[:len(stack)-1]
		delete(onStack, n)
		color[n] = 2
		return nil
	}
	for _, n := range nodes {
		if color[n] == 0 {
			if cyc := dfs(n); cyc != nil {
				return cyc
			}
		}
	}
	return nil
}
