package bench

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/adtspecs"
	"repro/internal/apps/rangestore"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/telemetry"
)

// AdaptiveBench is the control-plane experiment behind
// `benchall -exp adaptive`: workloads with opposite knob sweet spots,
// each run under every static knob profile and under the adaptive
// controller, plus an idle-controller cell that prices the observe
// loop itself.
//
// Workloads:
//
//	scan-preempt    — read-mostly whole-map refreshes that deschedule
//	                  once mid-fold, against just enough put churn that
//	                  ~30% of refresh attempts absorb a write and fail
//	                  validation. Re-executing a third of the refreshes
//	                  is still far cheaper than the exclusive fallback,
//	                  so the right gate never closes — but 30% trips the
//	                  default per-instance gate's close threshold, so
//	                  the untuned gate oscillates into long closed
//	                  spells of serialized refreshes.
//	churn-preempt   — the same store at 90% put churn: nearly every
//	                  descheduled refresh window absorbs writes, the
//	                  optimistic retry budget burns to no effect, and
//	                  the right gate is closed ~always.
//	rangestore-f99  — whole-store scans at read fraction 0.99 with no
//	                  deschedule point. Validation almost always
//	                  succeeds; the right gate stays open, the wrong one
//	                  forces every scan to lock all shards
//	                  pessimistically. Also the overhead yardstick: a
//	                  plain lock-dominated load the controller must not
//	                  slow down.
//
// Profiles:
//
//	static-default  — the former compile-time constants (controller off)
//	static-read     — read-tuned extreme: gate effectively never closes,
//	                  long spin, summary scans on
//	static-write    — write-tuned extreme: gate closes on the first
//	                  failure and probes ~never, short spin, exact scans
//	adaptive        — defaults at start, controlplane.Controller ticking
//	                  in the background and retuning from telemetry
//	controller-idle — defaults plus a ticking controller whose decision
//	                  floors are unreachable: it observes every tick and
//	                  never applies. Its deficit against static-default
//	                  is the whole cost of an attached controller.
//
// The controller must match or beat the best static profile on the
// PAIRED geomean across both workloads — any single static setting is
// wrong somewhere, the controller is allowed to be wrong nowhere.
type AdaptiveConfig struct {
	OpsPerThread int
	Threads      []int
	Reps         int
}

// AdaptiveCell is one (workload, profile, threads) measurement.
type AdaptiveCell struct {
	Workload string  `json:"workload"`
	Profile  string  `json:"profile"`
	Threads  int     `json:"threads"`
	OpsPerMs float64 `json:"ops_per_ms"`
}

// AdaptiveKnobs records where the controller left one workload's knobs
// after convergence — the proof it picked different regimes for the
// two workloads.
type AdaptiveKnobs struct {
	Workload string     `json:"workload"`
	Knobs    core.Knobs `json:"knobs"`
	Applies  uint64     `json:"applies"`
	Ticks    uint64     `json:"ticks"`
}

// AdaptiveReport is the full result, the content of BENCH_adaptive.json.
type AdaptiveReport struct {
	GOMAXPROCS   int                           `json:"gomaxprocs"`
	OpsPerThread int                           `json:"ops_per_thread"`
	Cells        []AdaptiveCell                `json:"cells"`
	Ratio        map[string]map[string]float64 `json:"ratio_adaptive_over_profile"`
	FinalKnobs   []AdaptiveKnobs               `json:"final_knobs"`
	Criteria     map[string]float64            `json:"criteria"`
}

const (
	profDefault  = "static-default"
	profRead     = "static-read"
	profWrite    = "static-write"
	profAdaptive = "adaptive"
	profIdle     = "controller-idle"
)

// adaptiveProfile is one knob setting under test. controller selects
// none, a live one, or an idle one.
type adaptiveProfile struct {
	name       string
	spin       core.SpinBounds
	gate       core.OptGateParams
	summary    bool
	controller string // "" | "on" | "idle"
}

func adaptiveProfiles() []adaptiveProfile {
	return []adaptiveProfile{
		{profDefault, core.DefaultSpinBounds(), core.DefaultOptGateParams(), true, ""},
		{profRead, core.SpinBounds{Min: 1, Max: 16},
			// A window so long and a threshold so high the gate never
			// closes in practice: optimism unconditionally on.
			core.OptGateParams{Window: 1 << 15, DisableNum: 255, DisableDen: 255, ProbeInterval: 1 << 15}, true, ""},
		{profWrite, core.SpinBounds{Min: 1, Max: 2},
			// Any failure in a 2-attempt window closes the gate and the
			// probe countdown is ~a billion: optimism effectively off.
			core.OptGateParams{Window: 2, DisableNum: 1, DisableDen: 255, ProbeInterval: 1 << 30}, false, ""},
		{profAdaptive, core.DefaultSpinBounds(), core.DefaultOptGateParams(), true, "on"},
		{profIdle, core.DefaultSpinBounds(), core.DefaultOptGateParams(), true, "idle"},
	}
}

// adaptiveApp is one constructed workload instance: the per-op body and
// the semantic locks to tune/register.
type adaptiveApp struct {
	fn   func(t, i int)
	sems []*core.Semantic
}

// yieldStore is a hand-rolled map workload over the core runtime whose
// read op is a whole-map "refresh": fold half the slots, deschedule
// (runtime.Gosched — the single-core stand-in for a section preempted
// mid-read; on multicore true parallelism opens the same window), fold
// the rest, publish the aggregate to a cache slot. The refresh runs
// optimistically under a values() observation with a bounded retry
// loop; when optimism is gated off or the budget runs dry it falls
// back to a pessimistic putAll-class lock — the refresh writes the
// shared cache, so its fallback mode is exclusive against everything,
// itself included, and a closed gate serializes every refresh across
// its deschedule point. Writers are plain point puts that yield
// between ops, pinning the scheduling granularity at one op: a
// refresh's descheduled window spans ~threads-1 foreign ops, so the
// write share directly sets the validation-failure rate.
type yieldStore struct {
	sem     *core.Semantic
	keys    []core.ModeID
	values  core.ModeID // whole-map read: observed by optimistic refreshes
	refresh core.ModeID // putAll-class exclusive: the pessimistic refresh envelope
	vals    []atomic.Int64
	cache   atomic.Int64
}

const (
	yieldKeys       = 256
	refreshRetries  = 8
	refusalBackoffs = 16
)

func newYieldStore() *yieldStore {
	keySet := core.SymSetOf(
		core.SymOpOf("get", core.VarArg("k")),
		core.SymOpOf("put", core.VarArg("k"), core.Star()),
		core.SymOpOf("remove", core.VarArg("k")))
	valuesSet := core.SymSetOf(core.SymOpOf("values"))
	refreshSet := core.SymSetOf(core.SymOpOf("putAll", core.Star()))
	tbl := core.NewModeTable(adtspecs.Map(),
		[]core.SymSet{keySet, valuesSet, refreshSet},
		core.TableOptions{Phi: core.NewPhi(16)})
	st := &yieldStore{
		sem:     core.NewSemantic(tbl),
		keys:    make([]core.ModeID, yieldKeys),
		values:  tbl.Set(valuesSet).Mode(),
		refresh: tbl.Set(refreshSet).Mode(),
		vals:    make([]atomic.Int64, yieldKeys),
	}
	for k := range st.keys {
		st.keys[k] = tbl.Set(keySet).Mode(core.Value(k))
	}
	return st
}

func (st *yieldStore) fold() int64 {
	var sum int64
	for k := 0; k < yieldKeys/2; k++ {
		sum += st.vals[k].Load()
	}
	runtime.Gosched() // descheduled mid-read
	for k := yieldKeys / 2; k < yieldKeys; k++ {
		sum += st.vals[k].Load()
	}
	return sum
}

// Refresh recomputes the aggregate and publishes it. Validation
// failures retry immediately (the failed fold already yielded, so the
// interleaving writer is gone). Observation refusals split by cause:
// refused by a closed gate, fall back to the pessimistic envelope at
// once; refused under an open gate — a pessimistic holder is visible —
// orbit with a yield instead of piling onto the fallback lock behind
// the holder. The orbit matters: every refresh that joins the fallback
// queue extends the serialized spell for everyone, so a queue that
// formed during a closed-gate phase would otherwise sustain itself
// indefinitely after the gate reopens.
func (st *yieldStore) Refresh() {
	core.Atomically(func(tx *core.Txn) {
		attempts, refusals := 0, 0
		for attempts < refreshRetries && refusals <= refusalBackoffs {
			var sum int64
			refused := false
			if tx.TryOptimistic(func(tx *core.Txn) bool {
				if !tx.Observe(st.sem, st.values, 0) {
					refused = true
					return false
				}
				sum = st.fold()
				return true
			}) {
				st.cache.Store(sum)
				return
			}
			if refused {
				if !st.sem.OptimisticOpen() {
					break
				}
				refusals++
				runtime.Gosched()
				continue
			}
			attempts++
		}
		tx.Lock(st.sem, st.refresh, 0)
		st.cache.Store(st.fold())
	})
}

func (st *yieldStore) Put(k int) {
	core.Atomically(func(tx *core.Txn) {
		tx.Lock(st.sem, st.keys[k%yieldKeys], 0)
		st.vals[k%yieldKeys].Add(1)
	})
	runtime.Gosched() // per-op yield: one-op scheduling granularity
}

// mixed returns an op mix over st at the given writes-per-mille; the
// per-thread scatter keeps write ops from phase-locking across
// goroutines.
func (st *yieldStore) mixed(writePerMille int) func(t, i int) {
	return func(t, i int) {
		if (t*7919+i*271)%1000 < writePerMille {
			st.Put(t*131 + i*7)
			return
		}
		st.Refresh()
	}
}

// newScanPreempt builds the read-mostly refresh workload. The write
// share is scaled with the thread count so the interleave pressure
// stays constant: a refresh's descheduled window spans ~threads-1
// foreign ops, and P(some write lands in it) is held near 0.30 —
// squarely in the band where re-execution amortizes but the default
// per-instance gate keeps closing.
func newScanPreempt(threads int) adaptiveApp {
	st := newYieldStore()
	perMille := 1000
	if threads > 1 {
		perMille = int(1000 * (1 - math.Pow(0.7, 1/float64(threads-1))))
	}
	if perMille < 1 {
		perMille = 1
	}
	return adaptiveApp{
		sems: []*core.Semantic{st.sem},
		fn:   st.mixed(perMille),
	}
}

// newChurnPreempt builds the write-heavy variant: 80% put churn makes
// optimistic refreshes fail validation nearly always, so every attempt
// the gate lets through is a wasted fold.
func newChurnPreempt(threads int) adaptiveApp {
	st := newYieldStore()
	return adaptiveApp{
		sems: []*core.Semantic{st.sem},
		fn:   st.mixed(800),
	}
}

// newRangestoreF99 builds the read-heavy rangestore workload (scans
// 99%, pair toggles 1%).
func newRangestoreF99(threads int) adaptiveApp {
	s := rangestore.New(8, 256)
	for k := 0; k < 32; k++ {
		s.PutPair(k)
	}
	return adaptiveApp{
		sems: s.Sems(),
		fn: func(t, i int) {
			if i%100 < 99 {
				s.Scan()
				return
			}
			s.PutPair((t*131 + i*7) % (s.Capacity() / 2))
		},
	}
}

// applyProfile pins every instance's knobs to the profile's statics.
func applyProfile(p adaptiveProfile, sems []*core.Semantic) {
	for _, s := range sems {
		s.SetSpinBounds(p.spin)
		s.SetOptGateParams(p.gate)
		s.SetSummaryScan(p.summary)
	}
}

// adaptiveCell is one (profile, app) pairing inside a measurement row:
// the app with the profile's knobs pinned (or a controller attached),
// already warmed, ready to run measured passes.
type adaptiveCell struct {
	profile adaptiveProfile
	app     adaptiveApp
	ctl     *controlplane.Controller
	best    float64
}

// setupAdaptiveCell builds the app, pins or attaches knobs, and runs
// the warm-up pass. For controller cells the warm-up is also the
// convergence window, and it must be long enough for the
// observe/decide/apply loop to settle: with the gate still at its
// default parameters the workload can spend its first ~100ms in
// oscillating closed spells running at a fraction of converged speed,
// and a warm-up sized for cache warming alone would leak that
// transient into the measured passes. The experiment's claim is about
// converged behavior — convergence latency is reported separately via
// applies/ticks.
func setupAdaptiveCell(p adaptiveProfile, mk func(int) adaptiveApp, workload string,
	threads, opsPerThread int) *adaptiveCell {
	app := mk(threads)
	applyProfile(p, app.sems)

	var ctl *controlplane.Controller
	if p.controller != "" {
		reg := telemetry.NewRegistry()
		reg.Register(workload, "app", app.sems...)
		cfg := controlplane.Config{
			Registry:      reg,
			Interval:      5 * time.Millisecond,
			DecideStreak:  2,
			CooldownTicks: 2,
			MinAcqSamples: 64,
			MinOptSamples: 32,
		}
		if p.controller == "idle" {
			// Unreachable floors: every decider holds forever, so the
			// cell prices pure observation.
			cfg.MinAcqSamples = math.MaxUint64
			cfg.MinOptSamples = math.MaxUint64
		}
		ctl = controlplane.New(cfg)
		ctl.Start()
	}

	warmup := opsPerThread/5 + 1
	if p.controller != "" {
		warmup = opsPerThread
	}
	measure(threads, warmup, app.fn)
	return &adaptiveCell{profile: p, app: app, ctl: ctl}
}

// runAdaptiveRow measures all profiles at one (workload, threads)
// point. The profiles are NOT measured as sequential best-of-N cells:
// on a single shared core, throughput drifts ±10–20% on a timescale of
// seconds (scheduler, GC, host interference), and sequential cells put
// whole profiles minutes apart, turning that drift into a systematic
// bias on every ratio. Instead every profile is set up (and, for
// controller profiles, converged) first, then measured passes are
// interleaved round-robin — within a round all profiles run within a
// few hundred milliseconds of each other, so drift hits them alike —
// and each profile keeps its best pass across rounds. Returns ops/ms
// per profile (index-aligned) plus the adaptive profile's converged
// knob state.
func runAdaptiveRow(profiles []adaptiveProfile, mk func(int) adaptiveApp, workload string,
	threads, opsPerThread, reps int) ([]float64, *AdaptiveKnobs) {
	cells := make([]*adaptiveCell, len(profiles))
	for i, p := range profiles {
		cells[i] = setupAdaptiveCell(p, mk, workload, threads, opsPerThread)
	}
	for r := 0; r < reps; r++ {
		for _, c := range cells {
			if v := measure(threads, opsPerThread, c.app.fn); v > c.best {
				c.best = v
			}
		}
	}
	var knobs *AdaptiveKnobs
	out := make([]float64, len(profiles))
	for i, c := range cells {
		out[i] = c.best
		if c.ctl != nil {
			if c.profile.controller == "on" {
				k := c.app.sems[0].KnobsNow()
				knobs = &AdaptiveKnobs{Workload: workload, Knobs: k, Applies: c.ctl.Applies(), Ticks: c.ctl.Ticks()}
			}
			c.ctl.Stop()
		}
	}
	return out, knobs
}

// AdaptiveBench runs the full experiment and computes the summary
// criteria.
func AdaptiveBench(cfg AdaptiveConfig) *AdaptiveReport {
	if cfg.OpsPerThread == 0 {
		cfg.OpsPerThread = 20000
	}
	if len(cfg.Threads) == 0 {
		cfg.Threads = []int{4, 8, 16}
	}
	if cfg.Reps == 0 {
		cfg.Reps = 3
	}
	rep := &AdaptiveReport{
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		OpsPerThread: cfg.OpsPerThread,
		Ratio:        map[string]map[string]float64{},
		Criteria:     map[string]float64{},
	}

	workloads := []struct {
		name string
		mk   func(int) adaptiveApp
	}{
		{"scan-preempt", newScanPreempt},
		{"churn-preempt", newChurnPreempt},
		{"rangestore-f99", newRangestoreF99},
	}
	profiles := adaptiveProfiles()

	// perf[workload][profile] = geomean over thread counts.
	perf := map[string]map[string]float64{}
	for _, w := range workloads {
		perf[w.name] = map[string]float64{}
		byProfile := map[string][]float64{}
		var lastKnobs *AdaptiveKnobs
		for _, T := range cfg.Threads {
			row, knobs := runAdaptiveRow(profiles, w.mk, w.name, T, cfg.OpsPerThread, cfg.Reps)
			for i, p := range profiles {
				rep.Cells = append(rep.Cells, AdaptiveCell{
					Workload: w.name, Profile: p.name, Threads: T, OpsPerMs: row[i],
				})
				byProfile[p.name] = append(byProfile[p.name], row[i])
			}
			if knobs != nil {
				lastKnobs = knobs
			}
		}
		for name, xs := range byProfile {
			perf[w.name][name] = geomean(xs)
		}
		if lastKnobs != nil {
			rep.FinalKnobs = append(rep.FinalKnobs, *lastKnobs)
		}
	}

	// Ratios: adaptive over each profile, per workload.
	for _, w := range workloads {
		rep.Ratio[w.name] = map[string]float64{}
		for _, p := range profiles {
			if p.name == profAdaptive {
				continue
			}
			if v := perf[w.name][p.name]; v > 0 {
				rep.Ratio[w.name][p.name] = perf[w.name][profAdaptive] / v
			}
		}
	}

	// The headline criterion compares PAIRED geomeans: a static profile
	// is judged on both workloads together, because the whole point of
	// the controller is that no single static setting fits both.
	statics := []string{profDefault, profRead, profWrite}
	paired := func(profile string) float64 {
		xs := make([]float64, 0, len(workloads))
		for _, w := range workloads {
			xs = append(xs, perf[w.name][profile])
		}
		return geomean(xs)
	}
	adaptivePaired := paired(profAdaptive)
	bestStatic, worstStatic := 0.0, math.Inf(1)
	for _, s := range statics {
		v := paired(s)
		if v > bestStatic {
			bestStatic = v
		}
		if v < worstStatic {
			worstStatic = v
		}
	}
	if bestStatic > 0 {
		rep.Criteria["adaptive_over_best_static_geomean"] = adaptivePaired / bestStatic
	}
	if worstStatic > 0 {
		rep.Criteria["static_spread"] = bestStatic / worstStatic
	}
	// Per-workload: the controller against the best static FOR THAT
	// workload (a stricter, diagnostic view — the extreme profile tuned
	// for a workload is nearly unbeatable on home turf).
	worstHomeTurf := math.Inf(1)
	for _, w := range workloads {
		best := 0.0
		for _, s := range statics {
			if v := perf[w.name][s]; v > best {
				best = v
			}
		}
		if best > 0 {
			r := perf[w.name][profAdaptive] / best
			rep.Criteria[strings.ReplaceAll(w.name, "-", "_")+"_adaptive_over_best_static"] = r
			if r < worstHomeTurf {
				worstHomeTurf = r
			}
		}
	}
	rep.Criteria["adaptive_over_best_static_worst_workload"] = worstHomeTurf

	// The observe-loop price: an attached, ticking, never-applying
	// controller against no controller at all. Measured on the
	// rangestore workload only — it is the stable, lock-dominated
	// yardstick; the preemptible workloads' throughput under the default
	// gate is bimodal (open vs closed spells), which would drown the
	// few-permille observation cost in gate-oscillation variance.
	overhead := 0.0
	if off, idle := perf["rangestore-f99"][profDefault], perf["rangestore-f99"][profIdle]; off > 0 && idle > 0 {
		overhead = (1 - idle/off) * 100
	}
	rep.Criteria["controller_off_overhead_pct"] = overhead
	return rep
}

// Format renders the report as aligned tables, one per workload.
func (r *AdaptiveReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Adaptive — telemetry-driven control plane vs static knob profiles\n")
	fmt.Fprintf(&b, "GOMAXPROCS=%d, %d ops/goroutine per pass\n", r.GOMAXPROCS, r.OpsPerThread)

	type cellKey struct {
		workload, profile string
		threads           int
	}
	cells := map[cellKey]float64{}
	var workloads, profiles []string
	var threads []int
	seenW, seenP, seenT := map[string]bool{}, map[string]bool{}, map[int]bool{}
	for _, c := range r.Cells {
		cells[cellKey{c.Workload, c.Profile, c.Threads}] = c.OpsPerMs
		if !seenW[c.Workload] {
			seenW[c.Workload] = true
			workloads = append(workloads, c.Workload)
		}
		if !seenP[c.Profile] {
			seenP[c.Profile] = true
			profiles = append(profiles, c.Profile)
		}
		if !seenT[c.Threads] {
			seenT[c.Threads] = true
			threads = append(threads, c.Threads)
		}
	}
	sort.Ints(threads)
	for _, w := range workloads {
		fmt.Fprintf(&b, "\n%s (ops/ms)\n", w)
		fmt.Fprintf(&b, "%-8s", "threads")
		for _, p := range profiles {
			fmt.Fprintf(&b, "%18s", p)
		}
		fmt.Fprintln(&b)
		for _, T := range threads {
			fmt.Fprintf(&b, "%-8d", T)
			for _, p := range profiles {
				fmt.Fprintf(&b, "%18.1f", cells[cellKey{w, p, T}])
			}
			fmt.Fprintln(&b)
		}
		if m := r.Ratio[w]; len(m) > 0 {
			fmt.Fprintf(&b, "adaptive over:")
			for _, k := range sortedStringKeys(m) {
				fmt.Fprintf(&b, "  %s %.2f", k, m[k])
			}
			fmt.Fprintln(&b)
		}
	}
	for _, fk := range r.FinalKnobs {
		fmt.Fprintf(&b, "\nconverged knobs [%s]: spin [%d,%d], gate %d/%d per %d probe %d, summary=%v (%d applies / %d ticks)\n",
			fk.Workload, fk.Knobs.Spin.Min, fk.Knobs.Spin.Max,
			fk.Knobs.OptGate.DisableNum, fk.Knobs.OptGate.DisableDen, fk.Knobs.OptGate.Window,
			fk.Knobs.OptGate.ProbeInterval, fk.Knobs.SummaryScan, fk.Applies, fk.Ticks)
	}
	fmt.Fprintf(&b, "\ncriteria:\n")
	for _, k := range sortedStringKeys(r.Criteria) {
		fmt.Fprintf(&b, "  %s = %.3f\n", k, r.Criteria[k])
	}
	return b.String()
}
