package bench

import (
	"strings"
	"testing"

	"repro/internal/apps/gossip"
	"repro/internal/apps/intruder"
)

func testCfg() SimConfig { return SimConfig{TxnsPerThread: 2000, Seed: 1} }

// TestFig21Shape checks the qualitative claims of Fig 21: Ours scales
// with threads, tracks Manual within a modest factor, and beats
// Global/2PL by a wide margin at 32 threads.
func TestFig21Shape(t *testing.T) {
	f := Fig21Sim(testCfg())
	if err := f.Check("ours", "global", 32, 5); err != nil {
		t.Error(err)
	}
	if err := f.Check("ours", "2pl", 32, 5); err != nil {
		t.Error(err)
	}
	if err := f.Check("manual", "ours", 32, 0.8); err != nil {
		t.Error(err) // manual may be a bit faster, not 25% slower
	}
	if err := f.Check("ours", "manual", 32, 0.7); err != nil {
		t.Error(err) // ours tracks manual within ~30%
	}
	if sc := f.Scalability("ours"); sc < 8 {
		t.Errorf("ours scalability 1→32 = %.1f, want ≥ 8", sc)
	}
	if sc := f.Scalability("global"); sc > 3 {
		t.Errorf("global must not scale; got %.1f", sc)
	}
}

// TestFig22Shape: Graph — ours scales, 2PL only marginally better than
// Global (single hot instances), Manual modestly above ours.
func TestFig22Shape(t *testing.T) {
	f := Fig22Sim(testCfg())
	if err := f.Check("ours", "global", 32, 5); err != nil {
		t.Error(err)
	}
	if err := f.Check("ours", "2pl", 32, 4); err != nil {
		t.Error(err)
	}
	if sc := f.Scalability("ours"); sc < 8 {
		t.Errorf("ours scalability = %.1f", sc)
	}
	if sc := f.Scalability("2pl"); sc > 3 {
		t.Errorf("2pl should not scale on two hot instances; got %.1f", sc)
	}
}

// TestFig23Shape: Cache — ours scales on the Get side but is capped by
// the size()-carrying Put mode; still well above Global/2PL.
func TestFig23Shape(t *testing.T) {
	f := Fig23Sim(testCfg())
	if err := f.Check("ours", "global", 32, 2); err != nil {
		t.Error(err)
	}
	sc := f.Scalability("ours")
	if sc < 3 {
		t.Errorf("ours cache scalability = %.1f, want ≥ 3", sc)
	}
	if f.Scalability("manual") < sc {
		t.Error("manual striping should scale at least as well as ours on cache")
	}
}

// TestFig24Shape: Intruder speedups.
func TestFig24Shape(t *testing.T) {
	f := Fig24Sim(testCfg())
	if err := f.Check("ours", "global", 16, 2); err != nil {
		t.Error(err)
	}
	ours, _ := f.SeriesByName("ours")
	if ours.Values[16] < 400 {
		t.Errorf("ours speedup at 16 threads = %.0f%%, want ≥ 400%%", ours.Values[16])
	}
	global, _ := f.SeriesByName("global")
	if global.Values[32] > 300 {
		t.Errorf("global speedup at 32 = %.0f%%, want < 300%%", global.Values[32])
	}
}

// TestFig25Shape: GossipRouter speedups — ours ≈ manual scale with
// cores, global/2pl stay flat.
func TestFig25Shape(t *testing.T) {
	f := Fig25Sim(testCfg())
	ours, _ := f.SeriesByName("ours")
	if ours.Values[16] < 800 {
		t.Errorf("ours speedup at 16 cores = %.0f%%", ours.Values[16])
	}
	for _, flat := range []string{"global", "2pl"} {
		s, _ := f.SeriesByName(flat)
		if s.Values[32] > 200 {
			t.Errorf("%s speedup at 32 = %.0f%%, want flat", flat, s.Values[32])
		}
	}
}

// TestAblationShape: the ablations order as designed — more abstract
// values → more parallelism; refinement off ≈ φ=1; disabling
// partitioning costs throughput at high thread counts.
func TestAblationShape(t *testing.T) {
	f := AblationSim(testCfg())
	if err := f.Check("phi-16", "phi-4", 32, 1.5); err != nil {
		t.Error(err)
	}
	if err := f.Check("phi-4", "phi-1", 32, 1.5); err != nil {
		t.Error(err)
	}
	if err := f.Check("ours-64", "nopart", 32, 1.2); err != nil {
		t.Error(err)
	}
	if err := f.Check("nofast", "nopart", 32, 1.1); err != nil {
		t.Error(err) // per-partition internal locks beat one global one
	}
	nr, _ := f.SeriesByName("norefine")
	p1, _ := f.SeriesByName("phi-1")
	for _, x := range f.Xs {
		ratio := nr.Values[x] / p1.Values[x]
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("norefine should behave like phi-1 at %d threads (ratio %.2f)", x, ratio)
		}
	}
}

// TestFigureFormat covers the text rendering.
func TestFigureFormat(t *testing.T) {
	f := &Figure{
		ID: "figX", Title: "T", YLabel: "y", Xs: []int{1, 2},
		Series: []Series{{Name: "a", Values: map[int]float64{1: 1.5, 2: 3}}},
		Notes:  []string{"n1"},
	}
	out := f.Format()
	for _, want := range []string{"FigX — T", "threads", "a", "1.50", "3.00", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
	if _, ok := f.SeriesByName("nope"); ok {
		t.Error("SeriesByName of missing series")
	}
	if err := f.Check("a", "missing", 1, 1); err == nil {
		t.Error("Check with missing series must error")
	}
	if f.Scalability("missing") != 0 {
		t.Error("Scalability of missing series")
	}
}

// TestDeterministicFigures: simulated figures are reproducible.
func TestDeterministicFigures(t *testing.T) {
	a := Fig21Sim(testCfg())
	b := Fig21Sim(testCfg())
	if a.Format() != b.Format() {
		t.Error("Fig21Sim not deterministic")
	}
}

// TestRealRunnersSmoke: the real-execution runners work end to end with
// tiny workloads (values are host-dependent; only plumbing is checked).
func TestRealRunnersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := RealConfig{OpsPerThread: 500, Threads: []int{1, 2}}
	for _, f := range []*Figure{Fig21Real(cfg), Fig22Real(cfg), Fig23Real(cfg)} {
		for _, s := range f.Series {
			for _, x := range cfg.Threads {
				if s.Values[x] <= 0 {
					t.Errorf("%s/%s at %d threads: nonpositive throughput", f.ID, s.Name, x)
				}
			}
		}
	}
	icfg := intruder.Config{Attacks: 10, MaxLength: 64, Flows: 200, Seed: 1}
	if f := Fig24Real(cfg, icfg); len(f.Series) != 4 {
		t.Error("fig24-real series missing")
	}
	mcfg := gossip.MPerfConfig{Clients: 4, Messages: 50, UnicastRatio: 10, SendCost: 0, Workers: 1}
	if f := Fig25Real(cfg, mcfg); len(f.Series) != 4 {
		t.Error("fig25-real series missing")
	}
}
