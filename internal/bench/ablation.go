package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// AblationSim reproduces the design-choice ablations of DESIGN.md
// (A1–A5) on the ComputeIfAbsent workload:
//
//	A1 refinement off   — generic lock(+): one exclusive whole-ADT mode;
//	A2 abstract values  — φ range n ∈ {1, 4, 16, 64};
//	A3 partitioning off — one internal mechanism lock serializes every
//	                      acquisition (Fig 20's single internal lock);
//	A4 fast path off    — every acquisition takes its partition's
//	                      internal lock even when uncontended;
//	A5 mechanism v1     — unpadded counters: every counter RMW holds its
//	                      shared cache line, modeled as 16 counters per
//	                      line (64B line / 4B counter). The real-execution
//	                      side of A5 (broadcast wakeups, O(modes) scans)
//	                      is measured by `benchall -exp lockmech`.
func AblationSim(cfg SimConfig) *Figure {
	const keySpace = 1 << 17
	fig := &Figure{
		ID:     "ablation",
		Title:  "ComputeIfAbsent under ablations of the synthesis/runtime design choices",
		YLabel: "transactions per kilotick (virtual-time simulation)",
		Xs:     ThreadCounts,
		Notes: []string{
			"ours-64 = full system; norefine = A1; phi-n = A2; nopart = A3; nofast = A4; mechv1 = A5",
		},
	}

	type variant struct {
		name     string
		buckets  int   // φ range (1 for norefine)
		mech     int   // number of internal mechanism locks (0 = none modeled)
		mechHold int64 // ticks the internal lock is held per acquisition
	}
	// The internal lock's critical section scans the conflicting
	// counters of its mechanism, so its hold time grows with the number
	// of modes the mechanism serves: the single unpartitioned mechanism
	// scans all 64 bucket modes, a per-partition one scans its own.
	variants := []variant{
		{name: "ours-64", buckets: 64},
		{name: "norefine", buckets: 1},
		{name: "phi-1", buckets: 1},
		{name: "phi-4", buckets: 4},
		{name: "phi-16", buckets: 16},
		{name: "nopart", buckets: 64, mech: 1, mechHold: 4},
		{name: "nofast", buckets: 64, mech: 64, mechHold: 1},
		// A5: the v1 mechanism's unpadded counter array. A 64-byte line
		// holds 16 int32 counters, so acquisitions of 16 consecutive
		// bucket modes serialize on one line; the four line resources
		// model that false sharing.
		{name: "mechv1", buckets: 64, mech: 4, mechHold: 1},
	}

	build := func(v variant, threads int) func(tid int) func() []sim.Step {
		seen := make(map[int]bool, keySpace/4)
		stripes := sim.NewStriped(v.name, v.buckets)
		var mechs []*sim.Res
		for i := 0; i < v.mech; i++ {
			mechs = append(mechs, sim.NewMutex(fmt.Sprintf("mech%d", i)))
		}
		return func(tid int) func() []sim.Step {
			rng := rand.New(rand.NewSource(int64(tid)*7919 + cfg.Seed))
			return countdown(DefaultN(threads, cfg.TxnsPerThread), func() []sim.Step {
				k := rng.Intn(keySpace)
				miss := !seen[k]
				if miss {
					seen[k] = true
				}
				b := 0
				if v.buckets > 1 {
					b = bucket(k) % v.buckets
				}
				var steps []sim.Step
				steps = append(steps, sim.W(semOverhead))
				if len(mechs) > 0 {
					// Contiguous bucket ranges share a mechanism resource (for
				// mechv1, the 16 counters of one cache line).
				m := mechs[b*len(mechs)/v.buckets]
					steps = append(steps, sim.Acq(m, 0), sim.W(v.mechHold), sim.Rel(m, 0))
				}
				steps = append(steps, sim.Acq(stripes, b), sim.W(opCost))
				if miss {
					steps = append(steps, sim.W(computeCost), sim.W(opCost))
				}
				steps = append(steps, sim.Rel(stripes, b))
				return steps
			})
		}
	}

	for _, v := range variants {
		s := Series{Name: v.name, Values: map[int]float64{}}
		for _, T := range fig.Xs {
			s.Values[T] = runPolicy(T, build(v, T))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}
