package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apps/gossip"
	"repro/internal/apps/intruder"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/modules/plan"
	"repro/internal/resilience"
	"repro/internal/telemetry"
)

// ChaosBench is the fault-recovery experiment behind
// `benchall -exp chaos`: it drives the gossip and intruder applications
// through three phases — a fault-free baseline, a burst with panics and
// scheduler delays injected inside atomic sections, and a fault-free
// recovery phase — and verifies that the runtime comes back intact. The
// acceptance criteria are structural (no leaked lock counts, no
// registered waiters, every instance quiescent after the burst) plus a
// throughput criterion: the recovery phase must reach at least 80% of
// the baseline's ops/sec, i.e. absorbed faults leave no lasting damage.
type ChaosConfig struct {
	OpsPerPhase int // gossip ops per phase (split across workers)
	Workers     int
	Flows       int // intruder flows per phase
}

// ChaosPhase is one measured phase of one app's chaos run.
type ChaosPhase struct {
	Phase     string  `json:"phase"` // "baseline", "faulted", "recovery"
	Ops       int     `json:"ops"`
	Faulted   uint64  `json:"faulted_ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// ChaosCell is one app's full three-phase run.
type ChaosCell struct {
	App           string       `json:"app"`
	Phases        []ChaosPhase `json:"phases"`
	Panics        uint64       `json:"injected_panics"`
	SlowHolds     uint64       `json:"injected_slow_holds"`
	Delays        uint64       `json:"injected_delays"`
	StallReports  int          `json:"stall_reports"` // watchdog reports during the faulted phase
	LeakedLocks   int64        `json:"leaked_locks"`  // outstanding holder counts after drain; must be 0
	QuiesceError  string       `json:"quiesce_error,omitempty"`
	RecoveryRatio float64      `json:"recovery_ratio"` // recovery ops/sec ÷ baseline ops/sec

	// Telemetry cross-check: the observability layer must agree with the
	// chaos harness's own accounting. TelemetryHolds is the outstanding-
	// holds total a telemetry snapshot reports after drain (must equal
	// LeakedLocks, i.e. 0); RecoveredPanics is the section-panic counter
	// delta across the cell (must equal the injector's panic count —
	// every injected panic unwinds through exactly one atomic section);
	// LeakedWaiters is the global registered-waiter delta (must be 0).
	TelemetryHolds  int64  `json:"telemetry_outstanding_holds"`
	RecoveredPanics uint64 `json:"telemetry_recovered_panics"`
	LeakedWaiters   int64  `json:"leaked_waiters"`

	// Resilience accounting, populated only by the policied cell:
	// operations the policy dropped instead of wedging on (stalled past
	// the retry budget, shed by the gate, or refused by the breaker),
	// and the hedged-lookup counters. The recovery criteria apply to
	// the policied cell unchanged — absorbing faults by dropping work
	// must still leave zero leaked locks and a recovered throughput.
	Dropped        uint64 `json:"dropped_ops,omitempty"`
	Shed           uint64 `json:"shed_ops,omitempty"`
	BreakerTrips   uint64 `json:"breaker_trips,omitempty"`
	BreakerRejects uint64 `json:"breaker_rejects,omitempty"`
	Hedges         uint64 `json:"hedges_launched,omitempty"`
	HedgeWins      uint64 `json:"hedge_wins,omitempty"`
}

// ChaosReport is the full result of the chaos experiment, the content
// of BENCH_chaos.json.
type ChaosReport struct {
	GOMAXPROCS int                `json:"gomaxprocs"`
	Cells      []ChaosCell        `json:"cells"`
	Criteria   map[string]float64 `json:"criteria"`
}

// chaosInjector is the shared fault schedule: frequent enough that a
// phase of a few thousand ops sees dozens of faults, slow holds long
// enough for the watchdog (threshold below) to observe them.
func chaosInjector() *chaos.Injector {
	return chaos.NewInjector(chaos.Config{
		PanicEvery:    17,
		SlowHoldEvery: 97,
		SlowHold:      3 * time.Millisecond,
		DelayEvery:    5,
		MaxDelay:      100 * time.Microsecond,
	})
}

const chaosWatchdogThreshold = time.Millisecond

// runChaosPhases runs the three phases for one app. run executes one
// workload pass with faults shielded and returns (ops attempted, ops
// absorbed as faults); sems lists the app's lock instances for the
// watchdog and the quiescence check.
func runChaosPhases(app string, inj *chaos.Injector, sems []*core.Semantic, run func() (int, uint64)) ChaosCell {
	cell := ChaosCell{App: app}
	panics0 := core.SectionPanicsRecovered()
	waiters0 := core.WaitersOutstanding()

	var stalls atomic.Int64
	d := core.NewWatchdog(core.WatchdogConfig{
		Threshold: chaosWatchdogThreshold,
		Interval:  chaosWatchdogThreshold / 2,
		OnStall:   func(core.StallReport) { stalls.Add(1) },
	})
	for _, s := range sems {
		d.Watch(s)
	}

	for _, phase := range []string{"baseline", "faulted", "recovery"} {
		if phase == "faulted" {
			inj.Arm()
			d.Start()
		}
		t0 := time.Now()
		ops, faulted := run()
		elapsed := time.Since(t0)
		if phase == "faulted" {
			inj.Disarm()
			d.Stop()
		}
		cell.Phases = append(cell.Phases, ChaosPhase{
			Phase:     phase,
			Ops:       ops,
			Faulted:   faulted,
			Seconds:   elapsed.Seconds(),
			OpsPerSec: float64(ops) / elapsed.Seconds(),
		})
	}

	cell.Panics, cell.SlowHolds, cell.Delays = inj.Counts()
	cell.StallReports = int(stalls.Load())
	for _, s := range sems {
		cell.LeakedLocks += s.OutstandingHolds()
	}
	if err := chaos.CheckRecovered(sems...); err != nil {
		cell.QuiesceError = err.Error()
	}

	// Telemetry cross-check: the same instances seen through a telemetry
	// registry snapshot must report the same outstanding holds the direct
	// walk above found, the section-panic counter delta must equal the
	// injector's panic count, and no waiter registration may leak.
	reg := telemetry.NewRegistry()
	reg.Register(app, "chaos", sems...)
	for _, g := range reg.Snapshot().Groups {
		cell.TelemetryHolds += g.OutstandingHolds
	}
	cell.RecoveredPanics = core.SectionPanicsRecovered() - panics0
	cell.LeakedWaiters = core.WaitersOutstanding() - waiters0
	if base := cell.Phases[0].OpsPerSec; base > 0 {
		cell.RecoveryRatio = cell.Phases[2].OpsPerSec / base
	}
	return cell
}

// chaosGossipCell runs the gossip router through the three phases.
func chaosGossipCell(cfg ChaosConfig) ChaosCell {
	r := gossip.NewOurs(0, plan.Options{})
	inj := chaosInjector()
	r.FaultHook = inj.Hook
	payload := []byte("chaos-payload")
	for g := 0; g < 4; g++ {
		for m := 0; m < 8; m++ {
			name := fmt.Sprintf("m%d", m)
			r.Register(fmt.Sprintf("g%d", g), name, gossip.NewConn(name, 0))
		}
	}

	opsPer := cfg.OpsPerPhase / cfg.Workers
	run := func() (int, uint64) {
		var faulted atomic.Uint64
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < opsPer; i++ {
					g := fmt.Sprintf("g%d", (w+i)%4)
					m := fmt.Sprintf("m%d", i%8)
					op := (w*31 + i*7) % 100
					hit := chaos.Shield(func() {
						switch {
						case op < 10:
							r.Register(g, m, gossip.NewConn(m, 0))
						case op < 20:
							r.Unregister(g, m)
						case op < 60:
							r.Unicast(g, m, payload)
						default:
							r.Multicast(g, payload)
						}
					})
					if hit {
						faulted.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
		return opsPer * cfg.Workers, faulted.Load()
	}
	return runChaosPhases("gossip", inj, r.Sems(), run)
}

// chaosGossipResilientCell runs the policied router through the same
// three phases. Unlike the plain cell, operations the policy gives up
// on — stalled past the retry budget, shed, or breaker-refused — are
// dropped (counted) instead of blocking until the fault clears; the
// structural recovery criteria apply unchanged, and the policy's
// shed/hedge counters land in the cell for the -chaos-strict artifact.
func chaosGossipResilientCell(cfg ChaosConfig) ChaosCell {
	o := gossip.NewOurs(0, plan.Options{})
	inj := chaosInjector()
	o.FaultHook = inj.Hook
	pol := resilience.New("gossip-chaos", resilience.Config{
		Patience:    500 * time.Microsecond,
		Retries:     3,
		Backoff:     resilience.Backoff{Base: 50 * time.Microsecond, Max: 500 * time.Microsecond},
		Budget:      &resilience.BudgetConfig{Capacity: 5000, RefillPerSec: 50000},
		HedgeBudget: 200 * time.Microsecond,
		Breaker: &resilience.BreakerConfig{
			Window:        100 * time.Millisecond,
			Buckets:       4,
			TripStallRate: 2000,
			Cooldown:      time.Millisecond,
			Probes:        2,
		},
	})
	r := gossip.NewResilient(o, pol)
	mgr := resilience.NewManager(nil, time.Millisecond)
	mgr.Add(pol)
	mgr.Start()
	payload := []byte("chaos-payload")
	for g := 0; g < 4; g++ {
		for m := 0; m < 8; m++ {
			name := fmt.Sprintf("m%d", m)
			o.Register(fmt.Sprintf("g%d", g), name, gossip.NewConn(name, 0))
		}
	}

	var dropped atomic.Uint64
	opsPer := cfg.OpsPerPhase / cfg.Workers
	run := func() (int, uint64) {
		var faulted atomic.Uint64
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < opsPer; i++ {
					g := fmt.Sprintf("g%d", (w+i)%4)
					m := fmt.Sprintf("m%d", i%8)
					op := (w*31 + i*7) % 100
					var err error
					hit := chaos.Shield(func() {
						switch {
						case op < 10:
							err = r.RegisterErr(g, m, gossip.NewConn(m, 0))
						case op < 20:
							err = r.UnregisterErr(g, m)
						case op < 50:
							err = r.UnicastErr(g, m, payload)
						case op < 60:
							_, _, err = r.LookupHedged(g, m)
						default:
							err = r.MulticastErr(g, payload)
						}
					})
					if hit {
						faulted.Add(1)
					}
					if resilienceDropped(err) {
						dropped.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
		return opsPer * cfg.Workers, faulted.Load()
	}
	cell := runChaosPhases("gossip-resilient", inj, o.Sems(), run)
	mgr.Stop()
	cell.Dropped = dropped.Load()
	for _, row := range pol.Stats() {
		switch row.Kind {
		case "policy":
			cell.Hedges = row.Counters["hedges_launched"]
			cell.HedgeWins = row.Counters["hedge_wins"]
		case "breaker":
			cell.BreakerTrips = row.Counters["tripped"]
			cell.BreakerRejects = row.Counters["rejected"]
		case "gate":
			cell.Shed = row.Counters["shed"]
		}
	}
	return cell
}

// chaosIntruderCell runs the reassembly pipeline through the three
// phases; each phase processes a fresh capture of cfg.Flows flows.
func chaosIntruderCell(cfg ChaosConfig) ChaosCell {
	proc := intruder.NewOurs(plan.Options{})
	inj := chaosInjector()
	proc.FaultHook = inj.Hook

	seed := int64(0)
	run := func() (int, uint64) {
		seed++
		w := intruder.Generate(intruder.Config{Attacks: 10, MaxLength: 64, Flows: cfg.Flows, Seed: seed})
		// Injected panics drop packets, leaving their flows incomplete in
		// the reassembly map across phases — so each phase must use a
		// disjoint FlowID range or a stale half-built flow would collide
		// with a fresh flow of the same ID (and different fragment count).
		for i := range w.Packets {
			w.Packets[i].FlowID += int(seed) * cfg.Flows
		}
		var faulted atomic.Uint64
		var wg sync.WaitGroup
		for wk := 0; wk < cfg.Workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				for i := wk; i < len(w.Packets); i += cfg.Workers {
					p := w.Packets[i]
					if chaos.Shield(func() { proc.Process(p) }) {
						faulted.Add(1)
					}
					chaos.Shield(func() { proc.Pop() })
				}
			}(wk)
		}
		wg.Wait()
		return len(w.Packets), faulted.Load()
	}
	return runChaosPhases("intruder", inj, proc.Sems(), run)
}

// ChaosBench runs the chaos experiment for both applications and
// computes the summary criteria.
func ChaosBench(cfg ChaosConfig) *ChaosReport {
	if cfg.OpsPerPhase == 0 {
		cfg.OpsPerPhase = 6000
	}
	if cfg.Workers == 0 {
		cfg.Workers = 8
	}
	if cfg.Flows == 0 {
		cfg.Flows = 2000
	}
	rep := &ChaosReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Criteria:   map[string]float64{},
	}
	rep.Cells = append(rep.Cells, chaosGossipCell(cfg), chaosGossipResilientCell(cfg), chaosIntruderCell(cfg))

	minRatio := 0.0
	var leaked, holdsMismatch, leakedWaiters int64
	var quiesceFailures, panicMismatch float64
	for i, c := range rep.Cells {
		if i == 0 || c.RecoveryRatio < minRatio {
			minRatio = c.RecoveryRatio
		}
		leaked += c.LeakedLocks
		if c.QuiesceError != "" {
			quiesceFailures++
		}
		if d := c.TelemetryHolds - c.LeakedLocks; d >= 0 {
			holdsMismatch += d
		} else {
			holdsMismatch -= d
		}
		if c.RecoveredPanics != c.Panics {
			panicMismatch++
		}
		leakedWaiters += c.LeakedWaiters
	}
	// Pass condition: recovery_ratio_min ≥ 0.8, everything else exactly 0.
	rep.Criteria["recovery_ratio_min"] = minRatio
	rep.Criteria["leaked_locks_total"] = float64(leaked)
	rep.Criteria["quiesce_failures"] = quiesceFailures
	rep.Criteria["telemetry_holds_mismatch"] = float64(holdsMismatch)
	rep.Criteria["panic_recovery_mismatch"] = panicMismatch
	rep.Criteria["leaked_waiters_total"] = float64(leakedWaiters)
	return rep
}

// Format renders the report as one aligned table per app.
func (r *ChaosReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos — fault injection and recovery, GOMAXPROCS=%d\n", r.GOMAXPROCS)
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "\n%s  (panics=%d slow-holds=%d delays=%d stall-reports=%d leaked-locks=%d)\n",
			c.App, c.Panics, c.SlowHolds, c.Delays, c.StallReports, c.LeakedLocks)
		fmt.Fprintf(&b, "  telemetry: outstanding-holds=%d recovered-panics=%d leaked-waiters=%d\n",
			c.TelemetryHolds, c.RecoveredPanics, c.LeakedWaiters)
		if c.Dropped+c.Shed+c.BreakerTrips+c.Hedges > 0 {
			fmt.Fprintf(&b, "  resilience: dropped=%d shed=%d breaker-trips=%d breaker-rejects=%d hedges=%d hedge-wins=%d\n",
				c.Dropped, c.Shed, c.BreakerTrips, c.BreakerRejects, c.Hedges, c.HedgeWins)
		}
		if c.QuiesceError != "" {
			fmt.Fprintf(&b, "  QUIESCE FAILED: %s\n", c.QuiesceError)
		}
		fmt.Fprintf(&b, "%-10s%10s%14s%14s%14s\n", "phase", "ops", "faulted", "seconds", "ops/sec")
		for _, p := range c.Phases {
			fmt.Fprintf(&b, "%-10s%10d%14d%14.3f%14.0f\n", p.Phase, p.Ops, p.Faulted, p.Seconds, p.OpsPerSec)
		}
		fmt.Fprintf(&b, "  recovery ratio = %.3f\n", c.RecoveryRatio)
	}
	fmt.Fprintf(&b, "\ncriteria:\n")
	for _, k := range sortedStringKeys(r.Criteria) {
		fmt.Fprintf(&b, "  %s = %.3f\n", k, r.Criteria[k])
	}
	return b.String()
}
