package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/adtspecs"
	"repro/internal/apps/gossip"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/modules/plan"
	"repro/internal/papersec"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// TelemetryBench is the observability-cost experiment behind
// `benchall -exp telemetry`, the content of BENCH_telemetry.json. It
// answers the two questions the telemetry layer must survive:
//
//	overhead — the gossip hot path ("ours-fused", sendCost 0, the
//	           prologue-dominated mix of the hotpath experiment) with
//	           telemetry fully enabled (wait-time sampling on, a
//	           registry over the router's instances, a background
//	           reader snapshotting every millisecond) against the same
//	           pass with telemetry idle. The criteria demand the
//	           enabled variant keeps ≥98% of baseline throughput.
//	trace    — the per-transaction acquisition trace on the golden
//	           corpus (the synthesized Fig 7 section): every traced
//	           execution's schedule must realize the OS2PL order the
//	           static verifier certified (telemetry.ScheduleWidths /
//	           CheckSchedule), and on a checked transaction the trace
//	           must equal the checked acquisition log event for event.
//
// Passes follow the lockmech conventions: variants alternate pass by
// pass, a warm-up pass absorbs first-touch noise, best-of-N is kept.
type TelemetryConfig struct {
	OpsPerThread int   // gossip operations per goroutine per pass
	TraceIters   int   // traced golden-corpus executions
	Threads      []int // goroutine counts; defaults to ThreadCounts
}

// TelemetryAppCell is one (variant, threads) gossip throughput cell.
type TelemetryAppCell struct {
	Variant  string  `json:"variant"` // "off" or "on"
	Threads  int     `json:"threads"`
	OpsPerMs float64 `json:"ops_per_ms"`
}

// TelemetrySnapshotCell is the snapshot-cost microbenchmark: one
// Registry.Snapshot over a live gossip router's instances.
type TelemetrySnapshotCell struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// TelemetryReport is the full experiment result.
type TelemetryReport struct {
	GOMAXPROCS   int                `json:"gomaxprocs"`
	OpsPerThread int                `json:"app_ops_per_thread"`
	App          []TelemetryAppCell `json:"app_cells"`
	Overhead     map[int]float64    `json:"on_over_off_by_threads"`
	Snapshot     TelemetrySnapshotCell `json:"snapshot_cell"`
	// Trace dump: the predicted schedule of the golden section (max
	// same-rank acquisitions per class rank) and one recorded trace that
	// realized it, for eyeballing alongside the mismatch count.
	TraceSections   int                `json:"trace_sections_checked"`
	TraceMismatches int                `json:"trace_order_mismatches"`
	PredictedWidths map[int]int        `json:"predicted_max_at_rank"`
	TraceSample     []core.Acquisition `json:"trace_sample"`
	Criteria        map[string]float64 `json:"criteria"`
}

const telemetryReps = 5

// runTelemetryGossipPass is the hotpath gossip mix on the fused router,
// with the telemetry consumer either idle or fully attached: wait-time
// sampling on, the router's instances registered, and a background
// reader snapshotting every millisecond for the whole pass — the
// worst realistic case, a scraper polling far faster than production.
func runTelemetryGossipPass(on bool, threads, opsPerThread int) float64 {
	r := gossip.New("ours-fused", 0, plan.Options{})
	for _, d := range [2]string{"m0", "m1"} {
		r.Register("grp", d, gossip.NewConn(d, 0))
	}
	churn := gossip.NewConn("churn", 0)
	payload := []byte{1}

	var stop chan struct{}
	if on {
		core.SetWaitTiming(true)
		defer core.SetWaitTiming(false)
		reg := telemetry.NewRegistry()
		// Static registration of the instances alive after setup (the
		// groups lock and the one member map): Sems' walk over the group
		// table is unsynchronized, so the registry copies the list once
		// here, during quiescence, rather than re-walking it per snapshot
		// while the churn mix runs.
		reg.Register("gossip", "Map", r.(*gossip.Ours).Sems()...)
		stop = make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			tick := time.NewTicker(time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					_ = reg.Snapshot()
				}
			}
		}()
		defer func() { close(stop); <-done }()
	}

	return measure(threads, opsPerThread, func(_, i int) {
		switch {
		case i&7 == 0:
			r.Register("grp", "churn", churn)
		case i&7 == 4:
			r.Unregister("grp", "churn")
		case i&1 == 1:
			r.Unicast("grp", "m0", payload)
		default:
			r.Multicast("grp", payload)
		}
	})
}

// telemetryTraceCheck runs the golden corpus — the synthesized Fig 7
// section, the same program the checked-transaction crosscheck test
// uses — on traced unchecked transactions and counts schedule
// mismatches against the verifier's prediction. It also runs one
// checked transaction and verifies the trace equals the checked log.
func telemetryTraceCheck(iters int) (checked, mismatches int, widths map[int]int, sample []core.Acquisition, err error) {
	seeder := &ir.Atomic{
		Name: "seed",
		Vars: []ir.Param{
			{Name: "m", Type: "Map", IsADT: true, NonNull: true},
			{Name: "s", Type: "Set", IsADT: true, NonNull: true},
			{Name: "k", Type: "int"},
		},
		Body: ir.Block{
			&ir.Call{Recv: "m", Method: "put", Args: []ir.Expr{ir.VarRef{Name: "k"}, ir.VarRef{Name: "s"}}},
		},
	}
	res, serr := synth.Synthesize(
		&synth.Program{Sections: []*ir.Atomic{papersec.Fig7(), seeder}, Specs: adtspecs.All()},
		synth.DefaultOptions(),
	)
	if serr != nil {
		return 0, 0, nil, nil, fmt.Errorf("synthesize golden corpus: %w", serr)
	}
	widths = telemetry.ScheduleWidths(res, 0)

	e := interp.NewExecutor(res, false)
	e.EvalOpaque = func(text string, env map[string]core.Value) core.Value {
		return env["s1"] != nil && env["s2"] != nil
	}
	m := e.NewInstance("Map", "Map")
	q := e.NewInstance("Queue", "Queue")
	const keys = 4
	for k := 0; k < keys; k++ {
		env := map[string]core.Value{"m": m, "s": e.NewInstance("Set", "Set"), "k": k}
		if err := e.Run(1, env); err != nil {
			return 0, 0, nil, nil, fmt.Errorf("seed: %w", err)
		}
	}

	tx := core.NewTxn()
	// Each RunWithTxn releases via the section's own epilogue; the defer
	// covers an error return between iterations.
	defer tx.UnlockAll()
	for i := 0; i < iters; i++ {
		tx.Reset()
		tx.StartTrace(64)
		env := map[string]core.Value{
			"m": m, "q": q, "s1": nil, "s2": nil,
			"key1": i % keys, "key2": (i * 3) % keys,
		}
		if err := e.RunWithTxn(0, env, tx, nil); err != nil {
			return checked, mismatches, widths, sample, err
		}
		ev := tx.TraceEvents()
		checked++
		if cerr := telemetry.CheckSchedule(ev, widths); cerr != nil {
			mismatches++
		} else if sample == nil && len(ev) > 0 {
			sample = ev
		}
	}

	// Checked-transaction cross-check: trace == checked log.
	ctx := core.NewCheckedTxn()
	defer ctx.UnlockAll()
	ctx.StartTrace(64)
	env := map[string]core.Value{
		"m": m, "q": q, "s1": nil, "s2": nil, "key1": 0, "key2": 1,
	}
	if err := e.RunWithTxn(0, env, ctx, nil); err != nil {
		return checked, mismatches, widths, sample, err
	}
	log, ev := ctx.Acquisitions(), ctx.TraceEvents()
	checked++
	if len(log) != len(ev) {
		mismatches++
	} else {
		for i := range log {
			if log[i] != ev[i] {
				mismatches++
				break
			}
		}
	}
	return checked, mismatches, widths, sample, nil
}

// TelemetryBench runs the full experiment.
func TelemetryBench(cfg TelemetryConfig) (*TelemetryReport, error) {
	if cfg.OpsPerThread == 0 {
		cfg.OpsPerThread = 20000
	}
	if cfg.TraceIters == 0 {
		cfg.TraceIters = 200
	}
	if len(cfg.Threads) == 0 {
		cfg.Threads = ThreadCounts
	}
	rep := &TelemetryReport{
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		OpsPerThread: cfg.OpsPerThread,
		Overhead:     map[int]float64{},
		Criteria:     map[string]float64{},
	}

	variants := []bool{false, true}
	for _, T := range cfg.Threads {
		for _, on := range variants {
			runTelemetryGossipPass(on, T, cfg.OpsPerThread/10+1) // warm-up
		}
		best := map[bool]float64{}
		for r := 0; r < telemetryReps; r++ {
			for _, on := range variants {
				if got := runTelemetryGossipPass(on, T, cfg.OpsPerThread); got > best[on] {
					best[on] = got
				}
			}
		}
		for _, on := range variants {
			v := "off"
			if on {
				v = "on"
			}
			rep.App = append(rep.App, TelemetryAppCell{Variant: v, Threads: T, OpsPerMs: best[on]})
		}
		if best[false] > 0 {
			rep.Overhead[T] = best[true] / best[false]
		}
	}
	var ratios []float64
	for _, r := range rep.Overhead {
		ratios = append(ratios, r)
	}
	g := geomean(ratios)
	rep.Criteria["telemetry_on_over_off_throughput_geomean"] = g
	rep.Criteria["telemetry_overhead_pct"] = (1 - g) * 100

	// Snapshot-cost microbenchmark over a live router's instances.
	r := gossip.New("ours-fused", 0, plan.Options{})
	for _, d := range [2]string{"m0", "m1"} {
		r.Register("grp", d, gossip.NewConn(d, 0))
	}
	reg := telemetry.NewRegistry()
	reg.Register("gossip", "Map", r.(*gossip.Ours).Sems()...)
	var snapSink telemetry.Snapshot
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			snapSink = reg.Snapshot()
		}
	})
	_ = snapSink
	rep.Snapshot = TelemetrySnapshotCell{
		NsPerOp:     float64(br.NsPerOp()),
		AllocsPerOp: br.AllocsPerOp(),
	}

	checked, mismatches, widths, sample, err := telemetryTraceCheck(cfg.TraceIters)
	if err != nil {
		return nil, err
	}
	rep.TraceSections = checked
	rep.TraceMismatches = mismatches
	rep.PredictedWidths = widths
	rep.TraceSample = sample
	rep.Criteria["trace_sections_checked"] = float64(checked)
	rep.Criteria["trace_order_mismatches"] = float64(mismatches)
	return rep, nil
}

// Format renders the report as aligned tables.
func (r *TelemetryReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Telemetry — observability cost on the gossip hot path\n")
	fmt.Fprintf(&b, "GOMAXPROCS=%d, %d ops/goroutine ('on' = wait timing + registry + 1ms scraper)\n",
		r.GOMAXPROCS, r.OpsPerThread)

	cells := map[string]map[int]float64{"off": {}, "on": {}}
	var threads []int
	seen := map[int]bool{}
	for _, c := range r.App {
		cells[c.Variant][c.Threads] = c.OpsPerMs
		if !seen[c.Threads] {
			seen[c.Threads] = true
			threads = append(threads, c.Threads)
		}
	}
	sort.Ints(threads)
	fmt.Fprintf(&b, "\ngossip ours-fused (ops/ms)\n")
	fmt.Fprintf(&b, "%-8s%12s%12s%10s\n", "threads", "off", "on", "on/off")
	for _, T := range threads {
		fmt.Fprintf(&b, "%-8d%12.1f%12.1f%10.3f\n", T, cells["off"][T], cells["on"][T], r.Overhead[T])
	}

	fmt.Fprintf(&b, "\nsnapshot cost: %.0f ns/op, %d allocs/op\n", r.Snapshot.NsPerOp, r.Snapshot.AllocsPerOp)
	fmt.Fprintf(&b, "\ntrace vs verifier (golden corpus): %d schedules checked, %d mismatches\n",
		r.TraceSections, r.TraceMismatches)
	fmt.Fprintf(&b, "predicted max acquisitions per rank: %v\n", r.PredictedWidths)
	fmt.Fprintf(&b, "sample schedule:")
	for _, a := range r.TraceSample {
		fmt.Fprintf(&b, " (rank=%d,id=%d,mode=%d)", a.Rank, a.ID, a.Mode)
	}
	fmt.Fprintf(&b, "\n\ncriteria:\n")
	for _, k := range sortedStringKeys(r.Criteria) {
		fmt.Fprintf(&b, "  %s = %.3f\n", k, r.Criteria[k])
	}
	return b.String()
}
