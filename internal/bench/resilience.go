package bench

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apps/gossip"
	"repro/internal/core"
	"repro/internal/modules/plan"
	"repro/internal/resilience"
	"repro/internal/telemetry"
)

// ResilienceBench is the graceful-degradation experiment behind
// `benchall -exp resilience`: the gossip router under a time-based
// saboteur that repeatedly grabs one hot group's locks and sits on them
// (a slow-hold injected through the register fault point), swept over
// hold durations at a fixed re-hold interval. Each sweep point runs the
// same mixed workload twice — policies OFF (the plain blocking router)
// and policies ON (bounded-patience acquisitions, budgeted retries, a
// per-traffic-class circuit breaker and admission gate on the hot
// class, hedged lookups) — and the report's retention curve is the
// ratio of completed operations per second, ON over OFF.
//
// The injection is time-based, not op-count-based, deliberately: a
// per-op injector advances with completed work, which makes both sides
// equally injection-bound and flattens the curve. A saboteur holding
// the lock for 4ms out of every 5ms starves a blocking workload no
// matter how fast it is, while a policied workload sheds the hot class
// and keeps the cold classes flowing — exactly the degradation the
// resilience layer exists to bound.
type ResilienceConfig struct {
	Duration time.Duration   // per-cell measurement window (default 300ms)
	Workers  int             // client goroutines (default 8)
	Holds    []time.Duration // saboteur hold sweep (default 0, 2ms, 5ms, 9ms)
	Interval time.Duration   // saboteur re-hold period (default 10ms)
}

// ResiliencePoint is one sweep point: the same workload with and
// without policies at one saboteur hold duration.
type ResiliencePoint struct {
	HoldMS       float64 `json:"hold_ms"`
	OffOps       int     `json:"off_ops"`
	OffOpsPerSec float64 `json:"off_ops_per_sec"`
	OnOps        int     `json:"on_ops"`
	OnOpsPerSec  float64 `json:"on_ops_per_sec"`
	Retention    float64 `json:"retention"` // on ÷ off

	// Policy-side accounting for the ON run.
	Dropped        uint64 `json:"dropped_ops"`     // attempts abandoned after the policy gave up
	Shed           uint64 `json:"shed_ops"`        // refused by the admission gate
	BreakerTrips   uint64 `json:"breaker_trips"`   // hot-class breaker openings
	BreakerRejects uint64 `json:"breaker_rejects"` // attempts refused while open
	Retries        uint64 `json:"retries"`         // budgeted re-attempts
	BudgetDenied   uint64 `json:"budget_denied"`   // retries refused by the token bucket
	Hedges         uint64 `json:"hedges_launched"` // optimistic hedges launched by slow lookups
	HedgeWins      uint64 `json:"hedge_wins"`      // hedges that beat the pessimistic side

	LeakedLocks   int64  `json:"leaked_locks"`   // outstanding holds after the ON run; must be 0
	LeakedWaiters int64  `json:"leaked_waiters"` // registered-waiter delta after the ON run; must be 0
	QuiesceError  string `json:"quiesce_error,omitempty"`
}

// ResilienceReport is the content of BENCH_resilience.json.
type ResilienceReport struct {
	GOMAXPROCS int                     `json:"gomaxprocs"`
	Workers    int                     `json:"workers"`
	CellSec    float64                 `json:"cell_seconds"`
	IntervalMS float64                 `json:"saboteur_interval_ms"`
	Points     []ResiliencePoint       `json:"points"`
	Policies   []telemetry.PolicyStats `json:"policy_state"` // final policy rows from the max-hold ON cell
	Criteria   map[string]float64      `json:"criteria"`
}

// resilienceGroups is the workload's group layout: one hot group the
// saboteur sits on, three cold groups that must keep flowing.
var resilienceGroups = []string{"hot", "c0", "c1", "c2"}

// resilienceSeed registers eight members per group.
func resilienceSeed(r gossip.Router) {
	for _, g := range resilienceGroups {
		for m := 0; m < 8; m++ {
			name := fmt.Sprintf("m%d", m)
			r.Register(g, name, gossip.NewConn(name, 0))
		}
	}
}

// resilienceSaboteur holds the hot group's locks for `hold` out of
// every `interval` by running a register whose fault hook sleeps. The
// loop is self-paced (hold, then sleep the remainder) rather than
// ticker-driven so the duty cycle survives scheduler starvation on
// small GOMAXPROCS — a dropped-tick saboteur under-injects exactly when
// the machine is busiest. It owns the router's FaultHook; the workload
// never calls Register, so the injection clock is wall time,
// independent of workload progress.
func resilienceSaboteur(o *gossip.Ours, hold, interval time.Duration, stop <-chan struct{}, wg *sync.WaitGroup) {
	o.FaultHook = func(site string) {
		if site == "register" {
			time.Sleep(hold)
		}
	}
	gap := interval - hold
	if gap < 200*time.Microsecond {
		gap = 200 * time.Microsecond
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn := gossip.NewConn("sab", 0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			o.Register("hot", "sab", conn) // parks `hold` at the fault point
			time.Sleep(gap)
		}
	}()
}

// resilienceOffCell measures the blocking router under the saboteur:
// every operation completes, however long it blocks.
func resilienceOffCell(cfg ResilienceConfig, hold time.Duration) (int, float64) {
	o := gossip.NewOurs(0, plan.Options{})
	resilienceSeed(o)
	payload := []byte("resilience-payload")

	stop := make(chan struct{})
	var sabWG, wg sync.WaitGroup
	if hold > 0 {
		resilienceSaboteur(o, hold, cfg.Interval, stop, &sabWG)
	}
	var ops atomic.Int64
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i += 1 {
				select {
				case <-stop:
					return
				default:
				}
				g, m := resilienceOp(i)
				switch i % 5 {
				case 0, 1:
					o.Unicast(g, m, payload)
				case 2:
					o.Multicast(g, payload)
				default:
					o.Lookup(g, m)
				}
				ops.Add(1)
				// Yield between ops on both sides of the comparison:
				// router clients are I/O-bound in reality, and without
				// the yield a small-GOMAXPROCS scheduler lets the
				// CPU-bound client loops starve the saboteur itself,
				// silently under-injecting.
				runtime.Gosched()
			}
		}(w)
	}
	t0 := time.Now()
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	sabWG.Wait()
	elapsed := time.Since(t0)
	o.FaultHook = nil
	return int(ops.Load()), float64(ops.Load()) / elapsed.Seconds()
}

// resilienceOp maps a loop counter to (group, member): half the
// operations touch the hot group, half are spread over the cold ones.
func resilienceOp(i int) (string, string) {
	m := fmt.Sprintf("m%d", i%8)
	if i%2 == 0 {
		return "hot", m
	}
	return resilienceGroups[1+(i/2)%3], m
}

// resiliencePolicies builds the ON side's two traffic-class policies:
// the hot class gets the full stack — tight patience, one budgeted
// retry, a breaker tripping on the unified stall feed with a short
// cooldown (open = fast-fail shedding during a hold, probe recovery
// after), an admission gate pressured by the parked-waiter gauge, and a
// hedge budget for lookups — while the cold class runs with bounded
// patience and retries only (its traffic is healthy; a process-wide
// breaker would punish it for the hot class's stalls).
func resiliencePolicies() (hot, cold *resilience.Policy) {
	hot = resilience.New("gossip-hot", resilience.Config{
		Patience:    300 * time.Microsecond,
		Retries:     1,
		Backoff:     resilience.Backoff{Base: 50 * time.Microsecond, Max: 200 * time.Microsecond},
		Budget:      &resilience.BudgetConfig{Capacity: 2000, RefillPerSec: 20000},
		HedgeBudget: 150 * time.Microsecond,
		Breaker: &resilience.BreakerConfig{
			Window:        100 * time.Millisecond,
			Buckets:       4,
			TripStallRate: 500,
			Cooldown:      500 * time.Microsecond,
			Probes:        2,
		},
		Gate: &resilience.GateConfig{
			MaxConcurrent: 8,
			QueueDepth:    8,
			QueueTimeout:  200 * time.Microsecond,
			PressureOn:    4,
			PressureOff:   1,
		},
	})
	cold = resilience.New("gossip-cold", resilience.Config{
		Patience:    300 * time.Microsecond,
		Retries:     1,
		Backoff:     resilience.Backoff{Base: 50 * time.Microsecond, Max: 200 * time.Microsecond},
		Budget:      &resilience.BudgetConfig{Capacity: 2000, RefillPerSec: 20000},
		HedgeBudget: 150 * time.Microsecond,
	})
	return hot, cold
}

// resilienceOnCell measures the policied router under the same
// saboteur: operations complete, retry, or are dropped — never wedge.
func resilienceOnCell(cfg ResilienceConfig, hold time.Duration) (ResiliencePoint, []telemetry.PolicyStats) {
	o := gossip.NewOurs(0, plan.Options{})
	resilienceSeed(o)
	payload := []byte("resilience-payload")
	waiters0 := core.WaitersOutstanding()

	polHot, polCold := resiliencePolicies()
	rHot := gossip.NewResilient(o, polHot)
	rCold := gossip.NewResilient(o, polCold)
	mgr := resilience.NewManager(nil, time.Millisecond)
	mgr.Add(polHot)
	mgr.Add(polCold)
	mgr.Start()

	stop := make(chan struct{})
	var sabWG, wg sync.WaitGroup
	if hold > 0 {
		resilienceSaboteur(o, hold, cfg.Interval, stop, &sabWG)
	}
	var ops, dropped atomic.Int64
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i += 1 {
				select {
				case <-stop:
					return
				default:
				}
				g, m := resilienceOp(i)
				r := rCold
				if g == "hot" {
					r = rHot
				}
				var err error
				switch i % 5 {
				case 0, 1:
					err = r.UnicastErr(g, m, payload)
				case 2:
					err = r.MulticastErr(g, payload)
				default:
					_, _, err = r.LookupHedged(g, m)
				}
				if err == nil {
					ops.Add(1)
				} else {
					dropped.Add(1)
				}
				runtime.Gosched() // same yield as the OFF side

			}
		}(w)
	}
	t0 := time.Now()
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	sabWG.Wait()
	elapsed := time.Since(t0)
	mgr.Stop()
	o.FaultHook = nil

	pt := ResiliencePoint{
		HoldMS:      float64(hold) / float64(time.Millisecond),
		OnOps:       int(ops.Load()),
		OnOpsPerSec: float64(ops.Load()) / elapsed.Seconds(),
		Dropped:     uint64(dropped.Load()),
	}
	stats := append(polHot.Stats(), polCold.Stats()...)
	for _, row := range stats {
		switch row.Kind {
		case "policy":
			pt.Retries += row.Counters["retries"]
			pt.Hedges += row.Counters["hedges_launched"]
			pt.HedgeWins += row.Counters["hedge_wins"]
		case "budget":
			pt.BudgetDenied += row.Counters["denied"]
		case "breaker":
			pt.BreakerTrips += row.Counters["tripped"]
			pt.BreakerRejects += row.Counters["rejected"]
		case "gate":
			pt.Shed += row.Counters["shed"]
		}
	}
	for _, s := range o.Sems() {
		pt.LeakedLocks += s.OutstandingHolds()
		if err := s.CheckQuiesced(); err != nil && pt.QuiesceError == "" {
			pt.QuiesceError = err.Error()
		}
	}
	pt.LeakedWaiters = core.WaitersOutstanding() - waiters0
	return pt, stats
}

// ResilienceBench runs the sweep and computes the summary criteria.
func ResilienceBench(cfg ResilienceConfig) *ResilienceReport {
	if cfg.Duration == 0 {
		cfg.Duration = 300 * time.Millisecond
	}
	if cfg.Workers == 0 {
		cfg.Workers = 8
	}
	if len(cfg.Holds) == 0 {
		cfg.Holds = []time.Duration{0, 2 * time.Millisecond, 5 * time.Millisecond, 9 * time.Millisecond}
	}
	if cfg.Interval == 0 {
		cfg.Interval = 10 * time.Millisecond
	}
	rep := &ResilienceReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    cfg.Workers,
		CellSec:    cfg.Duration.Seconds(),
		IntervalMS: float64(cfg.Interval) / float64(time.Millisecond),
		Criteria:   map[string]float64{},
	}
	for _, hold := range cfg.Holds {
		offOps, offRate := resilienceOffCell(cfg, hold)
		pt, stats := resilienceOnCell(cfg, hold)
		pt.OffOps, pt.OffOpsPerSec = offOps, offRate
		if offRate > 0 {
			pt.Retention = pt.OnOpsPerSec / offRate
		}
		rep.Points = append(rep.Points, pt)
		rep.Policies = stats // keep the last (highest-hold) cell's rows
	}

	var leakedLocks, leakedWaiters int64
	var quiesceFailures, engaged float64
	for _, pt := range rep.Points {
		leakedLocks += pt.LeakedLocks
		leakedWaiters += pt.LeakedWaiters
		if pt.QuiesceError != "" {
			quiesceFailures++
		}
	}
	last := rep.Points[len(rep.Points)-1]
	engaged = float64(last.Dropped + last.Shed + last.BreakerRejects + last.Retries)
	// Pass condition (-chaos-strict): retention_at_max_hold ≥ 2.0 and
	// the leak/quiesce criteria exactly 0. retention_at_zero_hold is the
	// policy overhead check — informational, expected near 1.0.
	rep.Criteria["retention_at_max_hold"] = last.Retention
	rep.Criteria["retention_at_zero_hold"] = rep.Points[0].Retention
	rep.Criteria["policies_engaged_at_max_hold"] = engaged
	rep.Criteria["leaked_locks_total"] = float64(leakedLocks)
	rep.Criteria["leaked_waiters_total"] = float64(leakedWaiters)
	rep.Criteria["quiesce_failures"] = quiesceFailures
	return rep
}

// Format renders the report as the retention curve table.
func (r *ResilienceReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Resilience — graceful degradation under slow-hold injection, GOMAXPROCS=%d\n", r.GOMAXPROCS)
	fmt.Fprintf(&b, "(%d workers, %.0fms cells, saboteur re-hold every %.0fms; ops/sec are completed operations)\n",
		r.Workers, r.CellSec*1000, r.IntervalMS)
	fmt.Fprintf(&b, "%-9s%14s%14s%11s%9s%8s%9s%9s%8s%8s\n",
		"hold(ms)", "off ops/s", "on ops/s", "retention", "dropped", "shed", "b.trips", "retries", "hedges", "h.wins")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-9.1f%14.0f%14.0f%11.2f%9d%8d%9d%9d%8d%8d\n",
			p.HoldMS, p.OffOpsPerSec, p.OnOpsPerSec, p.Retention,
			p.Dropped, p.Shed, p.BreakerTrips, p.Retries, p.Hedges, p.HedgeWins)
	}
	fmt.Fprintf(&b, "\npolicy state (max-hold cell):\n")
	for _, row := range r.Policies {
		fmt.Fprintf(&b, "  %-12s %-8s %-10s %v\n", row.Policy, row.Kind, row.State, row.Counters)
	}
	fmt.Fprintf(&b, "\ncriteria:\n")
	for _, k := range sortedStringKeys(r.Criteria) {
		fmt.Fprintf(&b, "  %s = %.3f\n", k, r.Criteria[k])
	}
	return b.String()
}

// Retryable re-exports the policy's retry classifier for the chaos
// harness (a shed or budget-exhausted operation is an absorbed drop,
// not a failure).
func resilienceDropped(err error) bool {
	return err != nil && (resilience.Retryable(err) ||
		errors.Is(err, resilience.ErrBudgetExhausted) ||
		errors.Is(err, resilience.ErrShed) ||
		errors.Is(err, resilience.ErrBreakerOpen))
}
