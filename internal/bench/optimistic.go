package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/apps/gossip"
	"repro/internal/apps/rangestore"
	"repro/internal/core"
	"repro/internal/modules/plan"
)

// OptimisticBench is the hybrid-execution experiment behind
// `benchall -exp optimistic`: read-mostly workloads on two applications,
// each run in two variants —
//
//	optimistic  — reads go through the TryOptimistic envelope (observe
//	              version counters, read lock-free, validate; fall back
//	              to the pessimistic prologue on conflict, with the
//	              per-instance adaptive gate closing the fast path when
//	              the validation-failure rate crosses its threshold)
//	pessimistic — reads take the ordinary semantic-lock prologue, the
//	              baseline behavior before this experiment
//
// on two workloads —
//
//	gossip     — membership probes (Lookup: outer map get + member map
//	             get, two mechanisms observed) against register/
//	             unregister churn on the same group
//	rangestore — whole-store scans (values() mode observed on every
//	             shard) against fused two-shard pair toggles; the pair
//	             discipline keeps the entry count even in every serial
//	             state, so any validated scan returning an odd count is
//	             a torn read that escaped validation (counted in the
//	             torn_scans criterion, which must be zero)
//
// sweeping the read fraction over {0.5, 0.9, 0.99}. Writes are the
// complement of the fraction; both variants run the identical op
// sequence. Cells follow the lockmech conventions: variants alternate
// pass by pass, a warm-up pass absorbs first-touch noise, the best
// measured pass is kept.
type OptimisticConfig struct {
	OpsPerThread  int
	Threads       []int
	ReadFractions []float64
}

// OptimisticCell is one (app, read fraction, variant, threads)
// measurement. FailureRate is validation failures over optimistic
// attempts (0 for pessimistic cells, which never attempt).
type OptimisticCell struct {
	App          string  `json:"app"`
	ReadFraction float64 `json:"read_fraction"`
	Variant      string  `json:"variant"`
	Threads      int     `json:"threads"`
	OpsPerMs     float64 `json:"ops_per_ms"`
	FailureRate  float64 `json:"validation_failure_rate"`
}

// OptimisticReport is the full result, the content of
// BENCH_optimistic.json.
type OptimisticReport struct {
	GOMAXPROCS   int                                   `json:"gomaxprocs"`
	OpsPerThread int                                   `json:"ops_per_thread"`
	Cells        []OptimisticCell                      `json:"cells"`
	Ratio        map[string]map[string]map[int]float64 `json:"ratio_optimistic_over_pessimistic"`
	Criteria     map[string]float64                    `json:"criteria"`
}

const (
	optOptimistic  = "optimistic"
	optPessimistic = "pessimistic"
	optReps        = 5
)

// optPass is one measured pass: ops/ms plus the optimistic failure rate
// harvested from the app's instances.
type optPass struct {
	opsPerMs float64
	failRate float64
	torn     int
}

// failRateOf sums hits and retries across instances.
func failRateOf(sems []*core.Semantic) float64 {
	var hits, retries uint64
	for _, s := range sems {
		st := s.Stats()
		hits += st.OptimisticHits
		retries += st.OptimisticRetries
	}
	if hits+retries == 0 {
		return 0
	}
	return float64(retries) / float64(hits+retries)
}

// runOptGossipPass drives one router: lookups of a stable member
// against register/unregister churn, read fraction f. Each goroutine
// churns its own member so writes conflict on the group's maps, not on
// each other's identity.
func runOptGossipPass(variant string, threads, opsPerThread int, f float64) optPass {
	r := gossip.NewOurs(0, plan.Options{})
	for _, m := range [2]string{"m0", "m1"} {
		r.Register("grp", m, gossip.NewConn(m, 0))
	}
	churn := make([]*gossip.Conn, threads)
	for t := range churn {
		churn[t] = gossip.NewConn(fmt.Sprintf("w%d", t), 0)
	}
	cut := int(f * 100)
	opsPerMs := measure(threads, opsPerThread, func(t, i int) {
		if i%100 < cut {
			if variant == optOptimistic {
				r.Lookup("grp", "m0")
			} else {
				r.LookupPessimistic("grp", "m0")
			}
			return
		}
		name := churn[t].Member
		if i&1 == 0 {
			r.Register("grp", name, churn[t])
		} else {
			r.Unregister("grp", name)
		}
	})
	return optPass{opsPerMs: opsPerMs, failRate: failRateOf(r.Sems())}
}

// runOptRangestorePass drives one store: whole-store scans against
// fused pair toggles, read fraction f. Scans returning an odd count
// are torn reads (the pair discipline keeps every serial state even)
// and are counted — validation must make that count zero.
func runOptRangestorePass(variant string, threads, opsPerThread int, f float64) optPass {
	s := rangestore.New(8, 256)
	for k := 0; k < 32; k++ {
		s.PutPair(k)
	}
	cut := int(f * 100)
	torn := make([]int, threads)
	opsPerMs := measure(threads, opsPerThread, func(t, i int) {
		if i%100 < cut {
			var n int
			if variant == optOptimistic {
				n = s.Scan()
			} else {
				n = s.ScanPessimistic()
			}
			if n%2 != 0 {
				torn[t]++
			}
			return
		}
		s.PutPair((t*131 + i*7) % (s.Capacity() / 2))
	})
	p := optPass{opsPerMs: opsPerMs, failRate: failRateOf(s.Sems())}
	for _, n := range torn {
		p.torn += n
	}
	return p
}

// OptimisticBench runs the full experiment and computes the summary
// criteria.
func OptimisticBench(cfg OptimisticConfig) *OptimisticReport {
	if cfg.OpsPerThread == 0 {
		cfg.OpsPerThread = 20000
	}
	if len(cfg.Threads) == 0 {
		cfg.Threads = []int{1, 2, 4, 8, 16}
	}
	if len(cfg.ReadFractions) == 0 {
		cfg.ReadFractions = []float64{0.5, 0.9, 0.99}
	}
	rep := &OptimisticReport{
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		OpsPerThread: cfg.OpsPerThread,
		Ratio:        map[string]map[string]map[int]float64{},
		Criteria:     map[string]float64{},
	}

	apps := []struct {
		name string
		run  func(variant string, T int, ops int, f float64) optPass
	}{
		{"gossip", runOptGossipPass},
		{"rangestore", runOptRangestorePass},
	}
	variants := []string{optOptimistic, optPessimistic}

	tornTotal := 0
	var f99Ratios, f99Fail []float64
	perAppF99 := map[string][]float64{}
	perAppF50 := map[string][]float64{}
	for _, app := range apps {
		rep.Ratio[app.name] = map[string]map[int]float64{}
		for _, f := range cfg.ReadFractions {
			fk := strconv.FormatFloat(f, 'f', 2, 64)
			rep.Ratio[app.name][fk] = map[int]float64{}
			for _, T := range cfg.Threads {
				for _, v := range variants {
					app.run(v, T, cfg.OpsPerThread/10+1, f) // warm-up
				}
				best := map[string]optPass{}
				for r := 0; r < optReps; r++ {
					for _, v := range variants {
						p := app.run(v, T, cfg.OpsPerThread, f)
						tornTotal += p.torn
						if b, ok := best[v]; !ok || p.opsPerMs > b.opsPerMs {
							best[v] = p
						}
					}
				}
				for _, v := range variants {
					p := best[v]
					fr := p.failRate
					if v == optPessimistic {
						fr = 0
					}
					rep.Cells = append(rep.Cells, OptimisticCell{
						App: app.name, ReadFraction: f, Variant: v,
						Threads: T, OpsPerMs: p.opsPerMs, FailureRate: fr,
					})
				}
				if p := best[optPessimistic].opsPerMs; p > 0 {
					ratio := best[optOptimistic].opsPerMs / p
					rep.Ratio[app.name][fk][T] = ratio
					switch {
					case f >= 0.985:
						if T >= 8 {
							f99Ratios = append(f99Ratios, ratio)
							perAppF99[app.name] = append(perAppF99[app.name], ratio)
						}
						f99Fail = append(f99Fail, best[optOptimistic].failRate)
					case f <= 0.515:
						perAppF50[app.name] = append(perAppF50[app.name], ratio)
					}
				}
			}
		}
	}

	rep.Criteria["optimistic_over_pessimistic_f99_T8plus"] = geomean(f99Ratios)
	for app, rs := range perAppF99 {
		rep.Criteria[app+"_optimistic_over_pessimistic_f99_T8plus"] = geomean(rs)
	}
	mean := 0.0
	for _, x := range f99Fail {
		mean += x
	}
	if len(f99Fail) > 0 {
		mean /= float64(len(f99Fail))
	}
	rep.Criteria["validation_failure_rate_f99"] = mean
	// The write-heavy guardrail: at f=0.5 the adaptive gate should park
	// the optimistic path, leaving at most a small admission overhead.
	// Judged per app on the geomean across thread counts — a single
	// noisy cell on a small host is measurement error, a consistent
	// cross-thread deficit is a real regression.
	worstF50 := 0.0
	for _, rs := range perAppF50 {
		if reg := (1 - geomean(rs)) * 100; reg > worstF50 {
			worstF50 = reg
		}
	}
	rep.Criteria["f50_worst_regression_pct"] = worstF50
	rep.Criteria["torn_scans"] = float64(tornTotal)
	return rep
}

// Format renders the report as aligned tables, one per (app, fraction).
func (r *OptimisticReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Optimistic — hybrid lock-free reads vs pessimistic prologue\n")
	fmt.Fprintf(&b, "GOMAXPROCS=%d, %d ops/goroutine per pass\n", r.GOMAXPROCS, r.OpsPerThread)

	type cellKey struct {
		app     string
		frac    float64
		variant string
		threads int
	}
	cells := map[cellKey]OptimisticCell{}
	apps := []string{}
	fracs := map[string][]float64{}
	threads := []int{}
	seenApp := map[string]bool{}
	seenFrac := map[string]map[float64]bool{}
	seenT := map[int]bool{}
	for _, c := range r.Cells {
		cells[cellKey{c.App, c.ReadFraction, c.Variant, c.Threads}] = c
		if !seenApp[c.App] {
			seenApp[c.App] = true
			apps = append(apps, c.App)
			seenFrac[c.App] = map[float64]bool{}
		}
		if !seenFrac[c.App][c.ReadFraction] {
			seenFrac[c.App][c.ReadFraction] = true
			fracs[c.App] = append(fracs[c.App], c.ReadFraction)
		}
		if !seenT[c.Threads] {
			seenT[c.Threads] = true
			threads = append(threads, c.Threads)
		}
	}
	sort.Ints(threads)
	for _, app := range apps {
		for _, f := range fracs[app] {
			fk := strconv.FormatFloat(f, 'f', 2, 64)
			fmt.Fprintf(&b, "\n%s, read fraction %s (ops/ms)\n", app, fk)
			fmt.Fprintf(&b, "%-8s%14s%14s%8s%10s\n", "threads", "optimistic", "pessimistic", "ratio", "failrate")
			for _, T := range threads {
				o := cells[cellKey{app, f, optOptimistic, T}]
				p := cells[cellKey{app, f, optPessimistic, T}]
				fmt.Fprintf(&b, "%-8d%14.1f%14.1f%8.2f%10.3f\n",
					T, o.OpsPerMs, p.OpsPerMs, r.Ratio[app][fk][T], o.FailureRate)
			}
		}
	}
	fmt.Fprintf(&b, "\ncriteria:\n")
	for _, k := range sortedStringKeys(r.Criteria) {
		fmt.Fprintf(&b, "  %s = %.3f\n", k, r.Criteria[k])
	}
	return b.String()
}
