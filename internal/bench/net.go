package bench

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/net/client"
	"repro/internal/net/server"
	"repro/internal/net/wire"
	"repro/internal/telemetry"
)

// NetBench is the networked-gossipd experiment behind `benchall -exp
// net`: the router served over TCP by internal/net/server, driven by
// the closed-loop load generator in internal/net/client, swept over
// connection counts × read fractions. Each cell records completed
// ops/s and p50/p95/p99 round-trip latency, plus the server-side shed
// and batching counters; every cell gets a fresh server and must drain
// to zero connections, zero outstanding holds, and zero parked waiters.
//
// Two calibration rows anchor the sweep:
//
//   - the in-process baseline: one goroutine driving the identical
//     decode→handle→encode code through the server's Exerciser (no
//     sockets), at each read fraction. The networked-over-in-process
//     ratio isolates exactly what the wire adds — syscalls, scheduler
//     churn, TCP — because everything else (codec, interning, fused
//     sections, member sinks) is shared code.
//   - the steady-state frame-path allocation count, measured with
//     testing.AllocsPerRun over the same Exerciser paths the alloc
//     tests pin: it must be exactly zero.
type NetConfig struct {
	Duration     time.Duration // per-cell window (default 400ms)
	Conns        []int         // connection sweep (default 64, 256, 1024, 4096)
	ReadFracs    []float64     // lookup fraction sweep (default 0, 0.5, 0.9)
	Pipeline     int           // unicasts per pipelined window (default 8)
	PayloadBytes int           // unicast payload (default 64)
	SendCost     int           // synthetic sink I/O cost (default 0)
	Adaptive     bool          // attach the adaptive control plane to each cell's server
}

// NetPoint is one (conns, read fraction) cell.
type NetPoint struct {
	Conns     int     `json:"conns"`
	ReadFrac  float64 `json:"read_frac"`
	Ops       uint64  `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Shed      uint64  `json:"shed_ops"`
	Errors    uint64  `json:"hard_errors"`
	P50us     float64 `json:"p50_us"`
	P95us     float64 `json:"p95_us"`
	P99us     float64 `json:"p99_us"`

	// Server-side accounting for the cell.
	Batches       uint64 `json:"fused_batches"`
	BatchedFrames uint64 `json:"batched_frames"`

	// Drain outcome; all must be zero.
	LeakedConns   int64  `json:"leaked_conns"`
	LeakedLocks   int64  `json:"leaked_locks"`
	LeakedWaiters int64  `json:"leaked_waiters"`
	DrainError    string `json:"drain_error,omitempty"`
	QuiesceError  string `json:"quiesce_error,omitempty"`
}

// NetInproc is one in-process baseline row.
type NetInproc struct {
	ReadFrac  float64 `json:"read_frac"`
	Ops       uint64  `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// NetReport is the content of BENCH_net.json.
type NetReport struct {
	GOMAXPROCS   int         `json:"gomaxprocs"`
	CellSec      float64     `json:"cell_seconds"`
	Pipeline     int         `json:"pipeline"`
	PayloadBytes int         `json:"payload_bytes"`
	Points       []NetPoint  `json:"points"`
	Inproc       []NetInproc `json:"inproc_baseline"`
	// NetOverInproc maps read fraction to (best networked ops/s across
	// the conn sweep) ÷ (in-process ops/s at the same fraction).
	NetOverInproc     map[string]float64 `json:"net_over_inproc_ratio"`
	SteadyFrameAllocs float64            `json:"steady_frame_allocs_per_op"`
	Criteria          map[string]float64 `json:"criteria"`
}

func (c *NetConfig) defaults() {
	if c.Duration <= 0 {
		c.Duration = 400 * time.Millisecond
	}
	if len(c.Conns) == 0 {
		c.Conns = []int{64, 256, 1024, 4096}
	}
	if len(c.ReadFracs) == 0 {
		c.ReadFracs = []float64{0, 0.5, 0.9}
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 8
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 64
	}
}

// netCell runs one networked cell on a fresh server and audits the
// drain.
func netCell(cfg NetConfig, conns int, readFrac float64) (NetPoint, error) {
	waiters0 := core.WaitersOutstanding()
	s, err := server.New(server.Config{Addr: "127.0.0.1:0", SendCost: cfg.SendCost})
	if err != nil {
		return NetPoint{}, err
	}
	go s.Serve()

	if cfg.Adaptive {
		// Controller per cell, like the server: fresh knob state per
		// sweep point, stopped (and its applied knobs left in place —
		// the server is discarded with them) on cell teardown.
		reg := telemetry.NewRegistry()
		// Live provider, not a static list: the router's groups are
		// created lazily by the clients' Register frames, after this
		// point.
		reg.RegisterProvider("net", "Map", s.Router().Sems)
		ctl := controlplane.New(controlplane.Config{
			Registry: reg,
			Interval: 5 * time.Millisecond,
		})
		ctl.Start()
		defer ctl.Stop()
	}

	res, err := client.RunLoad(client.LoadConfig{
		Addr:         s.Addr().String(),
		Conns:        conns,
		Duration:     cfg.Duration,
		ReadFrac:     readFrac,
		Pipeline:     cfg.Pipeline,
		PayloadBytes: cfg.PayloadBytes,
	})
	if err != nil {
		s.Shutdown(10 * time.Second)
		return NetPoint{}, err
	}

	pt := NetPoint{
		Conns:         conns,
		ReadFrac:      readFrac,
		Ops:           res.Ops,
		OpsPerSec:     res.OpsPerSec(),
		Shed:          res.Shed,
		Errors:        res.Errors,
		P50us:         float64(res.Hist.Quantile(0.50)) / 1e3,
		P95us:         float64(res.Hist.Quantile(0.95)) / 1e3,
		P99us:         float64(res.Hist.Quantile(0.99)) / 1e3,
		Batches:       s.Stats.Batches.Load(),
		BatchedFrames: s.Stats.Batched.Load(),
	}
	if err := s.Shutdown(10 * time.Second); err != nil {
		pt.DrainError = err.Error()
	}
	pt.LeakedConns = s.ActiveConns()
	for _, sem := range s.Router().Sems() {
		pt.LeakedLocks += sem.OutstandingHolds()
		if err := sem.CheckQuiesced(); err != nil && pt.QuiesceError == "" {
			pt.QuiesceError = err.Error()
		}
	}
	pt.LeakedWaiters = core.WaitersOutstanding() - waiters0
	return pt, nil
}

// netInprocCell drives the Exerciser — the server's exact frame
// handling, minus sockets — with the same op mix for the same window.
func netInprocCell(cfg NetConfig, readFrac float64) (NetInproc, error) {
	s, err := server.New(server.Config{Addr: "127.0.0.1:0", SendCost: cfg.SendCost})
	if err != nil {
		return NetInproc{}, err
	}
	defer s.Shutdown(time.Second)
	e := s.Exerciser()

	resp := make([]byte, 0, 4<<10)
	body := func(f []byte, err error) []byte {
		if err != nil {
			panic(err)
		}
		return f[wire.HeaderLen:]
	}
	if resp, err = e.Handle(body(wire.AppendRegister(nil, "g0", "m0")), resp); err != nil {
		return NetInproc{}, err
	}
	look := body(wire.AppendLookup(nil, "g0", "m0"))
	uni := body(wire.AppendUnicast(nil, "g0", "m0", make([]byte, cfg.PayloadBytes)))
	batch := make([][]byte, cfg.Pipeline)
	for i := range batch {
		batch[i] = uni
	}

	readThreshold := int(readFrac * 1000)
	var ops uint64
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for i := 0; ; i++ {
		if i%256 == 0 && time.Now().After(deadline) {
			break
		}
		if (i*611)%1000 < readThreshold {
			if resp, err = e.Handle(look, resp[:0]); err != nil {
				return NetInproc{}, err
			}
			ops++
		} else {
			if resp, err = e.HandleBatch(batch, resp[:0]); err != nil {
				return NetInproc{}, err
			}
			ops += uint64(cfg.Pipeline)
		}
	}
	elapsed := time.Since(start)
	return NetInproc{ReadFrac: readFrac, Ops: ops, OpsPerSec: float64(ops) / elapsed.Seconds()}, nil
}

// netSteadyAllocs measures the steady-state frame path's allocations
// per operation over the Exerciser: the max across the lookup, single
// unicast, and fused batch paths.
func netSteadyAllocs(cfg NetConfig) (float64, error) {
	s, err := server.New(server.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		return 0, err
	}
	defer s.Shutdown(time.Second)
	e := s.Exerciser()
	body := func(f []byte, err error) []byte {
		if err != nil {
			panic(err)
		}
		return f[wire.HeaderLen:]
	}
	resp := make([]byte, 0, 4<<10)
	if resp, err = e.Handle(body(wire.AppendRegister(nil, "g0", "m0")), resp); err != nil {
		return 0, err
	}
	look := body(wire.AppendLookup(nil, "g0", "m0"))
	uni := body(wire.AppendUnicast(nil, "g0", "m0", make([]byte, cfg.PayloadBytes)))
	batch := make([][]byte, cfg.Pipeline)
	for i := range batch {
		batch[i] = uni
	}
	if resp, err = e.HandleBatch(batch, resp[:0]); err != nil { // warm scratch
		return 0, err
	}
	max := testing.AllocsPerRun(1000, func() { resp, _ = e.Handle(look, resp[:0]) })
	if n := testing.AllocsPerRun(1000, func() { resp, _ = e.Handle(uni, resp[:0]) }); n > max {
		max = n
	}
	if n := testing.AllocsPerRun(1000, func() { resp, _ = e.HandleBatch(batch, resp[:0]) }); n > max {
		max = n / float64(cfg.Pipeline)
	}
	return max, nil
}

// NetBench runs the sweep and computes the criteria.
func NetBench(cfg NetConfig) (*NetReport, error) {
	cfg.defaults()
	rep := &NetReport{
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		CellSec:       cfg.Duration.Seconds(),
		Pipeline:      cfg.Pipeline,
		PayloadBytes:  cfg.PayloadBytes,
		NetOverInproc: map[string]float64{},
		Criteria:      map[string]float64{},
	}

	allocs, err := netSteadyAllocs(cfg)
	if err != nil {
		return nil, err
	}
	rep.SteadyFrameAllocs = allocs

	for _, frac := range cfg.ReadFracs {
		base, err := netInprocCell(cfg, frac)
		if err != nil {
			return nil, err
		}
		rep.Inproc = append(rep.Inproc, base)

		best := 0.0
		for _, conns := range cfg.Conns {
			pt, err := netCell(cfg, conns, frac)
			if err != nil {
				return nil, err
			}
			rep.Points = append(rep.Points, pt)
			if pt.OpsPerSec > best {
				best = pt.OpsPerSec
			}
		}
		if base.OpsPerSec > 0 {
			rep.NetOverInproc[fmt.Sprintf("read_%02.0f", frac*100)] = best / base.OpsPerSec
		}
	}

	var leakedConns, leakedLocks, leakedWaiters int64
	var quiesceFailures, drainFailures, hardErrors float64
	maxConns := 0
	for _, pt := range rep.Points {
		leakedConns += pt.LeakedConns
		leakedLocks += pt.LeakedLocks
		leakedWaiters += pt.LeakedWaiters
		hardErrors += float64(pt.Errors)
		if pt.QuiesceError != "" {
			quiesceFailures++
		}
		if pt.DrainError != "" {
			drainFailures++
		}
		if pt.Conns > maxConns {
			maxConns = pt.Conns
		}
	}
	// steady_frame_allocs_per_op and the leak criteria are enforced
	// unconditionally by benchcheck; max_conns_swept is the sweep-floor
	// record (informational, so a short CI smoke cell still validates).
	rep.Criteria["steady_frame_allocs_per_op"] = rep.SteadyFrameAllocs
	rep.Criteria["leaked_conns_total"] = float64(leakedConns)
	rep.Criteria["leaked_locks_total"] = float64(leakedLocks)
	rep.Criteria["leaked_waiters_total"] = float64(leakedWaiters)
	rep.Criteria["quiesce_failures"] = quiesceFailures
	rep.Criteria["drain_failures"] = drainFailures
	rep.Criteria["hard_errors_total"] = hardErrors
	rep.Criteria["max_conns_swept"] = float64(maxConns)
	if r, ok := rep.NetOverInproc["read_50"]; ok {
		rep.Criteria["net_over_inproc_at_read50"] = r
	} else {
		// Ensure the criterion exists whatever fractions were swept.
		for _, v := range rep.NetOverInproc {
			rep.Criteria["net_over_inproc_at_read50"] = v
			break
		}
	}
	return rep, nil
}

// Format renders the report as the sweep table.
func (r *NetReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Net — gossipd over TCP, closed-loop sweep, GOMAXPROCS=%d\n", r.GOMAXPROCS)
	fmt.Fprintf(&b, "(%.0fms cells, pipeline depth %d, %dB payloads; latencies are per-op round trips)\n",
		r.CellSec*1000, r.Pipeline, r.PayloadBytes)
	fmt.Fprintf(&b, "%-7s%7s%12s%12s%10s%10s%10s%9s%8s\n",
		"conns", "read%", "ops", "ops/s", "p50(µs)", "p95(µs)", "p99(µs)", "batches", "shed")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-7d%7.0f%12d%12.0f%10.1f%10.1f%10.1f%9d%8d\n",
			p.Conns, p.ReadFrac*100, p.Ops, p.OpsPerSec, p.P50us, p.P95us, p.P99us, p.Batches, p.Shed)
	}
	fmt.Fprintf(&b, "\nin-process baseline (Exerciser, no sockets):\n")
	for _, ip := range r.Inproc {
		fmt.Fprintf(&b, "  read %3.0f%%: %12.0f ops/s\n", ip.ReadFrac*100, ip.OpsPerSec)
	}
	fmt.Fprintf(&b, "\nnetworked ÷ in-process (best cell per read fraction):\n")
	for _, k := range sortedStringKeys(r.NetOverInproc) {
		fmt.Fprintf(&b, "  %s = %.3f\n", k, r.NetOverInproc[k])
	}
	fmt.Fprintf(&b, "\ncriteria:\n")
	for _, k := range sortedStringKeys(r.Criteria) {
		fmt.Fprintf(&b, "  %s = %.3f\n", k, r.Criteria[k])
	}
	return b.String()
}
