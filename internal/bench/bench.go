// Package bench regenerates the paper's evaluation figures (§6): for
// each figure it runs every synchronization policy across the thread
// counts of the paper (1–32) on the virtual-time simulator
// (internal/sim, the 32-core substitute) and can additionally measure
// real execution on the host for overhead comparisons. Output is the
// same series the paper plots.
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// ThreadCounts is the x-axis of every figure in §6.
var ThreadCounts = []int{1, 2, 4, 8, 16, 32}

// Series is one policy's curve.
type Series struct {
	Name   string
	Values map[int]float64 // threads → value
}

// Figure is one reproduced evaluation figure.
type Figure struct {
	ID     string // "fig21" ... "fig25", "ablation-*"
	Title  string
	YLabel string
	Xs     []int
	Series []Series
	Notes  []string
}

// Format renders the figure as an aligned text table (the repository's
// equivalent of the paper's plots).
func (f *Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(f.ID[:1])+f.ID[1:], f.Title)
	fmt.Fprintf(&b, "y: %s\n", f.YLabel)
	fmt.Fprintf(&b, "%-8s", "threads")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%12s", s.Name)
	}
	b.WriteString("\n")
	for _, x := range f.Xs {
		fmt.Fprintf(&b, "%-8d", x)
		for _, s := range f.Series {
			fmt.Fprintf(&b, "%12.2f", s.Values[x])
		}
		b.WriteString("\n")
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// SeriesByName returns the named series.
func (f *Figure) SeriesByName(name string) (Series, bool) {
	for _, s := range f.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// Check verifies a qualitative claim: at the given thread count, series
// a ≥ factor × series b.
func (f *Figure) Check(a, b string, threads int, factor float64) error {
	sa, oka := f.SeriesByName(a)
	sb, okb := f.SeriesByName(b)
	if !oka || !okb {
		return fmt.Errorf("%s: missing series %q or %q", f.ID, a, b)
	}
	if sa.Values[threads] < factor*sb.Values[threads] {
		return fmt.Errorf("%s at %d threads: %s=%.2f < %.2f × %s=%.2f",
			f.ID, threads, a, sa.Values[threads], factor, b, sb.Values[threads])
	}
	return nil
}

// Scalability returns value(maxThreads)/value(1) for a series.
func (f *Figure) Scalability(name string) float64 {
	s, ok := f.SeriesByName(name)
	if !ok {
		return 0
	}
	base := s.Values[f.Xs[0]]
	if base == 0 {
		return 0
	}
	return s.Values[f.Xs[len(f.Xs)-1]] / base
}

// sortedKeys is a helper for deterministic map iteration in reports.
func sortedKeys[V any](m map[int]V) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}
