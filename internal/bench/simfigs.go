package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/apps/intruder"
	"repro/internal/core"
	"repro/internal/sim"
)

// Cost model (virtual ticks). Absolute throughput numbers follow these
// constants; the figures' comparative shapes follow the blocking
// structure, which is the property under reproduction.
const (
	opCost      = 8  // one ADT operation (hash + bucket access)
	computeCost = 20 // the CIA 128-byte computation
	semOverhead = 3  // semantic lock: φ, mode lookup, counter scan
	mutexCost   = 1  // plain mutex / striped / RW acquisition
	sendCost    = 40 // gossip: one frame write to a connection
	popCost     = 2  // queue pop
)

// SimConfig scales the simulated workload.
type SimConfig struct {
	TxnsPerThread int
	Seed          int64
}

// DefaultSimConfig balances fidelity and runtime.
func DefaultSimConfig() SimConfig { return SimConfig{TxnsPerThread: 20000, Seed: 1} }

// phi64 buckets keys the way the compiled tables do.
var phi64 = core.NewPhi(64)

func bucket(k int) int { return phi64.Abstract(k) }

// throughput converts (makespan, txns) into transactions per kilotick.
func throughput(makespan, txns int64) float64 {
	if makespan == 0 {
		return 0
	}
	return float64(txns) / float64(makespan) * 1000
}

// runPolicy builds a simulation with T threads from a per-thread
// generator factory and returns its throughput.
func runPolicy(threads int, gen func(tid int) func() []sim.Step) float64 {
	s := sim.New()
	for t := 0; t < threads; t++ {
		s.AddThread(gen(t))
	}
	mk, txns := s.Run()
	return throughput(mk, txns)
}

// countdown wraps a step builder into an n-shot generator.
func countdown(n int, build func() []sim.Step) func() []sim.Step {
	i := 0
	return func() []sim.Step {
		if i >= n {
			return nil
		}
		i++
		return build()
	}
}

// ---- Fig 21: ComputeIfAbsent ----

// Fig21Sim reproduces Fig 21: ComputeIfAbsent throughput vs threads for
// Ours / Global / 2PL / Manual / V8. Key space 2^17; the computation is
// charged only on the insert path, and key presence evolves over the
// run exactly as in the real module.
func Fig21Sim(cfg SimConfig) *Figure {
	const keySpace = 1 << 17
	fig := &Figure{
		ID:     "fig21",
		Title:  "ComputeIfAbsent throughput as a function of the number of threads",
		YLabel: "transactions per kilotick (virtual-time simulation)",
		Xs:     ThreadCounts,
		Notes: []string{
			"10M ops/thread in the paper; scaled per SimConfig.TxnsPerThread",
			"Manual = 64-way lock striping; V8 = per-bucket computeIfAbsent",
		},
	}

	build := func(name string, threads int) func(tid int) func() []sim.Step {
		seen := make(map[int]bool, keySpace/4)
		var gmu *sim.Res
		var stripes *sim.Res
		switch name {
		case "global", "2pl":
			gmu = sim.NewMutex(name)
		case "ours", "manual", "v8":
			stripes = sim.NewStriped(name, 64)
		}
		return func(tid int) func() []sim.Step {
			rng := rand.New(rand.NewSource(int64(tid)*7919 + cfg.Seed))
			return countdown(DefaultN(threads, cfg.TxnsPerThread), func() []sim.Step {
				k := rng.Intn(keySpace)
				miss := !seen[k]
				if miss {
					seen[k] = true
				}
				body := []sim.Step{sim.W(opCost)} // get
				if miss {
					body = append(body, sim.W(computeCost), sim.W(opCost)) // compute + put
				}
				switch name {
				case "global":
					return wrap(gmu, 0, mutexCost, body)
				case "2pl":
					return wrap(gmu, 0, mutexCost+1, body) // per-instance lock + txn bookkeeping
				case "manual":
					return wrap(stripes, bucket(k), mutexCost, body)
				case "v8":
					return wrap(stripes, bucket(k), mutexCost, body)
				default: // ours
					return wrap(stripes, bucket(k), semOverhead, body)
				}
			})
		}
	}

	for _, name := range []string{"ours", "global", "2pl", "manual", "v8"} {
		s := Series{Name: name, Values: map[int]float64{}}
		for _, T := range fig.Xs {
			s.Values[T] = runPolicy(T, build(name, T))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// wrap brackets body with an acquisition of (r, mode), charging the
// lock overhead before the acquire.
func wrap(r *sim.Res, mode int, overhead int64, body []sim.Step) []sim.Step {
	out := make([]sim.Step, 0, len(body)+3)
	out = append(out, sim.W(overhead), sim.Acq(r, mode))
	out = append(out, body...)
	out = append(out, sim.Rel(r, mode))
	return out
}

// DefaultN scales per-thread transaction counts so total work stays
// roughly constant across thread counts (like fixed-time throughput
// runs); it keeps the longest sweeps tractable.
func DefaultN(threads, txnsPerThread int) int {
	n := txnsPerThread
	if threads > 8 {
		n = txnsPerThread / 2
	}
	return n
}

// ---- Fig 22: Graph ----

// GraphMix is a Graph workload mix in percent (must sum to 100).
type GraphMix struct {
	FindSucc, FindPred, Insert, Remove int
}

// Fig22Sim reproduces Fig 22: Graph throughput vs threads with the
// paper's mix — 35% find successors, 35% find predecessors, 20% insert
// edge, 10% remove edge — over two striped-RW multimap resources.
func Fig22Sim(cfg SimConfig) *Figure {
	return Fig22SimMix(cfg, GraphMix{35, 35, 20, 10}, "fig22")
}

// Fig22SimMix runs the Graph figure under an arbitrary mix — §6.1 notes
// the results are similar across the workloads of Hawkins et al.; the
// read-heavy and write-heavy variants below let that be checked.
func Fig22SimMix(cfg SimConfig, mix GraphMix, id string) *Figure {
	const nodeSpace = 1 << 16
	fig := &Figure{
		ID:     id,
		Title:  "Graph throughput as a function of the number of threads",
		YLabel: "transactions per kilotick (virtual-time simulation)",
		Xs:     ThreadCounts,
		Notes: []string{fmt.Sprintf("%d%% find-succ, %d%% find-pred, %d%% insert, %d%% remove",
			mix.FindSucc, mix.FindPred, mix.Insert, mix.Remove)},
	}
	findCut := mix.FindSucc
	readCut := mix.FindSucc + mix.FindPred

	build := func(name string, threads int) func(tid int) func() []sim.Step {
		var succs, preds *sim.Res
		var gmu, succsMu, predsMu *sim.Res
		switch name {
		case "global":
			gmu = sim.NewMutex("g")
		case "2pl":
			succsMu, predsMu = sim.NewMutex("s"), sim.NewMutex("p")
		default: // ours, manual
			succs = sim.NewStripedRW("succs", 64)
			preds = sim.NewStripedRW("preds", 64)
		}
		overhead := int64(mutexCost)
		if name == "ours" {
			overhead = semOverhead
		}
		return func(tid int) func() []sim.Step {
			rng := rand.New(rand.NewSource(int64(tid)*104729 + cfg.Seed))
			return countdown(DefaultN(threads, cfg.TxnsPerThread), func() []sim.Step {
				op := rng.Intn(100)
				a, b := rng.Intn(nodeSpace), rng.Intn(nodeSpace)
				switch name {
				case "global":
					if op < readCut {
						return wrap(gmu, 0, mutexCost, []sim.Step{sim.W(opCost)})
					}
					return wrap(gmu, 0, mutexCost, []sim.Step{sim.W(opCost), sim.W(opCost)})
				case "2pl":
					if op < findCut {
						return wrap(succsMu, 0, mutexCost, []sim.Step{sim.W(opCost)})
					}
					if op < readCut {
						return wrap(predsMu, 0, mutexCost, []sim.Step{sim.W(opCost)})
					}
					return []sim.Step{
						sim.W(mutexCost), sim.Acq(succsMu, 0),
						sim.W(mutexCost), sim.Acq(predsMu, 0),
						sim.W(opCost), sim.W(opCost),
						sim.Rel(predsMu, 0), sim.Rel(succsMu, 0),
					}
				default: // ours / manual share the mode structure
					rd := func(res *sim.Res, n int) int { return 2 * bucket(n) }
					wr := func(res *sim.Res, n int) int { return 2*bucket(n) + 1 }
					switch {
					case op < findCut:
						return wrap(succs, rd(succs, a), overhead, []sim.Step{sim.W(opCost)})
					case op < readCut:
						return wrap(preds, rd(preds, a), overhead, []sim.Step{sim.W(opCost)})
					default:
						return []sim.Step{
							sim.W(overhead), sim.Acq(succs, wr(succs, a)),
							sim.W(opCost),
							sim.W(overhead), sim.Acq(preds, wr(preds, b)),
							sim.W(opCost),
							sim.Rel(preds, wr(preds, b)), sim.Rel(succs, wr(succs, a)),
						}
					}
				}
			})
		}
	}

	for _, name := range []string{"ours", "global", "2pl", "manual"} {
		s := Series{Name: name, Values: map[int]float64{}}
		for _, T := range fig.Xs {
			s.Values[T] = runPolicy(T, build(name, T))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// ---- Fig 23: Cache ----

// Fig23Sim reproduces Fig 23: Cache throughput vs threads, 90% Get /
// 10% Put, size large enough that eden never flushes (5000K in the
// paper). The synthesized Put mode contains size() and therefore
// conflicts with every Get mode — Ours scales on the Get side only,
// while Manual's striping scales both.
func Fig23Sim(cfg SimConfig) *Figure {
	return Fig23SimMix(cfg, 90, "fig23")
}

// Fig23SimMix runs the Cache figure with an arbitrary Get percentage
// (§6.1: "results similar to the other workload in [9]").
func Fig23SimMix(cfg SimConfig, getPct int, id string) *Figure {
	const keySpace = 1 << 20
	fig := &Figure{
		ID:     id,
		Title:  "Cache throughput as a function of the number of threads",
		YLabel: "transactions per kilotick (virtual-time simulation)",
		Xs:     ThreadCounts,
		Notes:  []string{fmt.Sprintf("%d%% Get, %d%% Put, size=5000K (eden never flushes)", getPct, 100-getPct)},
	}

	const putMode = 64 // ours: the size()-carrying put mode conflicts with all
	build := func(name string, threads int) func(tid int) func() []sim.Step {
		inEden := make(map[int]bool)
		var eden, longterm *sim.Res
		var gmu *sim.Res
		var stripes *sim.Res
		switch name {
		case "global", "2pl":
			gmu = sim.NewMutex("g")
		case "manual":
			stripes = sim.NewStriped("stripes", 64)
		case "ours":
			eden = sim.NewRes("eden", 65, func(x, y int) bool {
				if x == putMode || y == putMode {
					return false
				}
				return x != y
			})
			longterm = sim.NewStripedRW("long", 64)
		}
		return func(tid int) func() []sim.Step {
			rng := rand.New(rand.NewSource(int64(tid)*31337 + cfg.Seed))
			return countdown(DefaultN(threads, cfg.TxnsPerThread), func() []sim.Step {
				k := rng.Intn(keySpace)
				isPut := rng.Intn(100) >= getPct
				if isPut {
					inEden[k] = true
				}
				hit := inEden[k]
				switch name {
				case "global":
					if isPut {
						return wrap(gmu, 0, mutexCost, []sim.Step{sim.W(opCost), sim.W(opCost)})
					}
					body := []sim.Step{sim.W(opCost)}
					if !hit {
						body = append(body, sim.W(opCost)) // longterm miss
					}
					return wrap(gmu, 0, mutexCost, body)
				case "2pl":
					if isPut {
						return wrap(gmu, 0, mutexCost+1, []sim.Step{sim.W(opCost), sim.W(opCost)})
					}
					body := []sim.Step{sim.W(opCost)}
					if !hit {
						body = append(body, sim.W(opCost))
					}
					return wrap(gmu, 0, mutexCost+1, body)
				case "manual":
					body := []sim.Step{sim.W(opCost)}
					if isPut || !hit {
						body = append(body, sim.W(opCost))
					}
					return wrap(stripes, bucket(k), mutexCost, body)
				default: // ours
					if isPut {
						return wrap(eden, putMode, semOverhead, []sim.Step{sim.W(opCost), sim.W(opCost)})
					}
					if hit {
						return wrap(eden, bucket(k), semOverhead, []sim.Step{sim.W(opCost)})
					}
					// eden miss: nested longterm read lock
					return []sim.Step{
						sim.W(semOverhead), sim.Acq(eden, bucket(k)),
						sim.W(opCost),
						sim.W(semOverhead), sim.Acq(longterm, 2*bucket(k)),
						sim.W(opCost),
						sim.Rel(longterm, 2*bucket(k)), sim.Rel(eden, bucket(k)),
					}
				}
			})
		}
	}

	for _, name := range []string{"ours", "global", "2pl", "manual"} {
		s := Series{Name: name, Values: map[int]float64{}}
		for _, T := range fig.Xs {
			s.Values[T] = runPolicy(T, build(name, T))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// ---- Fig 24: Intruder ----

// Fig24Sim reproduces Fig 24: Intruder speedup over single-threaded
// execution, configuration "-a 10 -l 256 -n 16384 -s 1". Packets come
// from the real generator; each worker pops the shared capture queue,
// runs the reassembly transaction under the policy's locks, and scans
// completed flows.
func Fig24Sim(cfg SimConfig) *Figure {
	fig := &Figure{
		ID:     "fig24",
		Title:  "Intruder speedup over a single-threaded execution",
		YLabel: "speedup (%, virtual-time simulation)",
		Xs:     ThreadCounts,
		Notes:  []string{`STAMP configuration "-a 10 -l 256 -n 16384 -s 1"`},
	}
	wcfg := intruder.PaperConfig()
	if cfg.TxnsPerThread < 20000 {
		wcfg.Flows = 2048 // scaled-down workloads shrink the trace too
	}
	trace := intruder.Generate(wcfg)

	run := func(name string, threads int) int64 {
		var fmap, gmu *sim.Res
		inMu := sim.NewMutex("input")
		// decoded queue: mode 0 = enqueue (commutes with itself),
		// mode 1 = dequeue (conflicts with everything).
		decRes := sim.NewRes("decoded", 2, func(a, b int) bool { return a == 0 && b == 0 })
		switch name {
		case "global":
			gmu = sim.NewMutex("g")
		case "2pl":
			fmap = sim.NewMutex("fmap")
		default:
			fmap = sim.NewStriped("fmap", 64)
		}
		received := make(map[int]int)
		s := sim.New()
		for t := 0; t < threads; t++ {
			tid := t
			i := -1
			s.AddThread(func() []sim.Step {
				i++
				idx := tid + i*threads // static partition of the capture trace
				if idx >= len(trace.Packets) {
					return nil
				}
				p := trace.Packets[idx]
				received[p.FlowID]++
				complete := received[p.FlowID] == p.NumFrags

				steps := []sim.Step{sim.W(mutexCost), sim.Acq(inMu, 0), sim.W(popCost), sim.Rel(inMu, 0)}
				body := []sim.Step{sim.W(opCost)} // map get
				if received[p.FlowID] == 1 {
					body = append(body, sim.W(opCost)) // put fresh flow state
				}
				body = append(body, sim.W(int64(len(p.Payload)/8+1))) // fragment insert
				if complete {
					body = append(body, sim.W(opCost)) // remove
				}
				switch name {
				case "global":
					steps = append(steps, wrap(gmu, 0, mutexCost, body)...)
					if complete {
						steps = append(steps, wrap(gmu, 0, mutexCost, []sim.Step{sim.W(popCost)})...)
					}
				case "2pl":
					steps = append(steps, wrap(fmap, 0, mutexCost+1, body)...)
					if complete {
						steps = append(steps, wrap(decRes, 1, mutexCost, []sim.Step{sim.W(popCost)})...)
					}
				case "manual":
					steps = append(steps, wrap(fmap, bucket(p.FlowID), mutexCost, body)...)
					if complete {
						// linearizable queue: plain mutex-cost push + pop
						steps = append(steps, sim.W(mutexCost), sim.W(popCost), sim.W(mutexCost), sim.W(popCost))
					}
				default: // ours
					inner := append([]sim.Step{}, body...)
					if complete {
						// enqueue inside the txn under the commuting mode
						inner = append(inner,
							sim.W(semOverhead), sim.Acq(decRes, 0), sim.W(popCost), sim.Rel(decRes, 0))
					}
					steps = append(steps, wrap(fmap, bucket(p.FlowID), semOverhead, inner)...)
					if complete {
						steps = append(steps, wrap(decRes, 1, semOverhead, []sim.Step{sim.W(popCost)})...)
					}
				}
				if complete {
					// detection: thread-local signature scan
					steps = append(steps, sim.W(int64(len(p.Payload)/4+8)))
				}
				return steps
			})
		}
		mk, _ := s.Run()
		return mk
	}

	for _, name := range []string{"ours", "global", "2pl", "manual"} {
		s := Series{Name: name, Values: map[int]float64{}}
		base := run(name, 1)
		for _, T := range fig.Xs {
			s.Values[T] = float64(base) / float64(run(name, T)) * 100
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// ---- Fig 25: GossipRouter ----

// Fig25Sim reproduces Fig 25: GossipRouter speedup over a single-core
// execution under the MPerf workload (16 clients x 5000 messages, one
// group). Routing I/O happens inside the atomic sections; multicasts
// hold the member map's values() mode, which commutes with itself, so
// Ours overlaps the sends while Global and 2PL serialize them.
func Fig25Sim(cfg SimConfig) *Figure {
	fig := &Figure{
		ID:     "fig25",
		Title:  "GossipRouter speedup over a single-core execution",
		YLabel: "speedup (%, virtual-time simulation)",
		Xs:     ThreadCounts,
		Notes:  []string{"MPerf: 16 clients x 5000 messages; x-axis = active cores (worker count)"},
	}
	const clients = 16
	messages := 5000
	if cfg.TxnsPerThread < 20000 {
		messages = 1000
	}

	run := func(name string, threads int) int64 {
		var groupsRes, membersRW, gmu, groupsMu, membersMu *sim.Res
		switch name {
		case "global":
			gmu = sim.NewMutex("g")
		case "2pl":
			groupsMu = sim.NewMutex("groups")
			membersMu = sim.NewMutex("members")
		default:
			groupsRes = sim.NewStripedRW("groups", 64)
			membersRW = sim.NewRW("members")
		}
		overhead := int64(mutexCost)
		if name == "ours" {
			overhead = semOverhead
		}
		total := clients * messages
		per := (total + threads - 1) / threads
		s := sim.New()
		for t := 0; t < threads; t++ {
			tid := t
			i := -1
			s.AddThread(func() []sim.Step {
				i++
				if i >= per || tid*per+i >= total {
					return nil
				}
				n := tid*per + i
				unicast := (n*7)%100 < 10
				send := int64(clients) * sendCost
				memberMode := 0 // read mode: values() / get(dst)
				if unicast {
					send = sendCost
				}
				switch name {
				case "global":
					return wrap(gmu, 0, mutexCost, []sim.Step{sim.W(opCost), sim.W(opCost), sim.W(send)})
				case "2pl":
					return []sim.Step{
						sim.W(mutexCost), sim.Acq(groupsMu, 0),
						sim.W(opCost),
						sim.W(mutexCost), sim.Acq(membersMu, 0),
						sim.W(opCost), sim.W(send),
						sim.Rel(membersMu, 0), sim.Rel(groupsMu, 0),
					}
				default: // ours / manual: read modes on the member map
					gm := 2 * bucket(12345) // the single group's read stripe
					return []sim.Step{
						sim.W(overhead), sim.Acq(groupsRes, gm),
						sim.W(opCost),
						sim.W(overhead), sim.Acq(membersRW, memberMode),
						sim.W(opCost), sim.W(send),
						sim.Rel(membersRW, memberMode), sim.Rel(groupsRes, gm),
					}
				}
			})
		}
		mk, _ := s.Run()
		return mk
	}

	for _, name := range []string{"ours", "global", "2pl", "manual"} {
		s := Series{Name: name, Values: map[int]float64{}}
		base := run(name, 1)
		for _, T := range fig.Xs {
			s.Values[T] = float64(base) / float64(run(name, T)) * 100
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}
