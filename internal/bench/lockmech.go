package bench

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/adtspecs"
	"repro/internal/core"
)

//semlockvet:file-ignore txndiscipline -- this harness benchmarks the bare lock mechanism, below the Txn layer

// LockmechBench is the lock-mechanism microbenchmark behind
// `benchall -exp lockmech`: it measures ns per acquire/release cycle of
// the v2 mechanism against the v1 mechanism (ablation A5,
// Semantic.DisableMechV2) on four workloads chosen to isolate the v2
// design points:
//
//	no-conflict      — every goroutine cycles a distinct fine-grained
//	                   mode of a wildcard-free class: independent small
//	                   mechanisms, the uncontended fast path.
//	same-mode        — every goroutine cycles one self-commuting mode
//	                   (get(α0)): all RMWs land on one counter slot, no
//	                   blocking; measures the shared-counter path.
//	wildcard-vs-fine — every goroutine mixes fine-grained ops on its own
//	                   bucket with periodic size() acquisitions on a
//	                   wide-φ class (φ=256, so the wildcard's conflict
//	                   mask spans 257 slots): v1 pays an O(slots) counter
//	                   scan per wildcard acquisition where v2 pays an
//	                   O(words) summary scan, and the interleaved claims
//	                   produce real transient conflicts.
//	all-conflict     — every goroutine cycles the same self-conflicting
//	                   fine mode while holding across a scheduler yield:
//	                   pure blocking churn. Every waiter waits on one
//	                   slot here, so targeted wakeups degenerate to a
//	                   broadcast and the two mechanisms should be close —
//	                   the workload bounds the v2 blocking-path overhead
//	                   rather than showing it off. (The wakeup-precision
//	                   claim itself is asserted exactly, not by wall
//	                   time, in core's TestTargetedWakeup.)
//
// Each cell runs a fixed total number of acquire/release cycles split
// evenly across the goroutines, so cells are comparable across thread
// counts.
type LockmechConfig struct {
	TotalOps int   // acquire/release cycles per cell (split across goroutines)
	Threads  []int // goroutine counts; defaults to ThreadCounts
}

// LockmechCell is one measured cell of the lockmech experiment.
type LockmechCell struct {
	Workload     string  `json:"workload"`
	Mech         string  `json:"mech"` // "v2" or "v1"
	Threads      int     `json:"threads"`
	NsPerAcquire float64 `json:"ns_per_acquire"`
	FastPath     uint64  `json:"fast_path"`
	Slow         uint64  `json:"slow"`
	Waits        uint64  `json:"waits"`
}

// LockmechReport is the full result of the lockmech experiment, the
// content of BENCH_lockmech.json.
type LockmechReport struct {
	GOMAXPROCS int                        `json:"gomaxprocs"`
	TotalOps   int                        `json:"total_ops_per_cell"`
	Cells      []LockmechCell             `json:"cells"`
	Speedup    map[string]map[int]float64 `json:"speedup_v2_over_v1"` // workload → threads → v1 ns / v2 ns
	Criteria   map[string]float64         `json:"criteria"`
}

const (
	mechV2Name = "v2"
	mechV1Name = "v1"

	// lockmechReps measured passes per cell; the fastest one is kept.
	// Single-pass cells at T=1 are dominated by scheduler and frequency
	// noise on small hosts, which the min over repetitions removes.
	lockmechReps = 3
)

var lockmechWorkloads = []string{"no-conflict", "same-mode", "wildcard-vs-fine", "all-conflict"}

// lockmechTables compiles the mode tables the workloads run on. The
// fixed identity φ guarantees goroutine g's key lands in bucket g, so
// "distinct keys" really means distinct counter slots.
func lockmechTables() (fine, rw, wild *core.ModeTable, fineKey, rwGet, wildKey func(core.Value) core.ModeID, wildSize func() core.ModeID) {
	spec := adtspecs.Map()
	keySet := core.SymSetOf(
		core.SymOpOf("get", core.VarArg("k")),
		core.SymOpOf("put", core.VarArg("k"), core.Star()),
		core.SymOpOf("remove", core.VarArg("k")),
	)
	getSet := core.SymSetOf(core.SymOpOf("get", core.VarArg("k")))
	putSet := core.SymSetOf(core.SymOpOf("put", core.VarArg("k"), core.Star()))
	sizeSet := core.SymSetOf(core.SymOpOf("size"))

	identityPhi := func(n int) core.Phi {
		assign := make(map[core.Value]int, n)
		for i := 0; i < n; i++ {
			assign[i] = i
		}
		return core.NewFixedPhi(n, 0, assign)
	}

	// Wildcard-free: each key mode partitions into its own mechanism.
	fine = core.NewModeTable(spec, []core.SymSet{keySet}, core.TableOptions{Phi: identityPhi(64)})
	fineKey = fine.Set(keySet).Binder1("k")

	// Reader/writer split: get(α) commutes with itself, conflicts with
	// put(α) — a mechanism with concurrent holders on one slot.
	rw = core.NewModeTable(spec, []core.SymSet{getSet, putSet}, core.TableOptions{Phi: identityPhi(64)})
	rwGet = rw.Set(getSet).Binder1("k")

	// Fine modes plus the size() wildcard, at φ=256 to stress conflict-
	// mask width: one merged mechanism where size()'s mask spans 257
	// slots (summaries on), so each wildcard acquisition is an O(slots)
	// exact scan for v1 against an O(words) summary scan for v2.
	wild = core.NewModeTable(spec, []core.SymSet{keySet, sizeSet}, core.TableOptions{Phi: identityPhi(256)})
	wildKey = wild.Set(keySet).Binder1("k")
	wildSizeSel := wild.Set(sizeSet)
	wildSize = func() core.ModeID { return wildSizeSel.Mode() }
	return
}

// runLockmechCell runs one (workload, mechanism, threads) cell and
// returns the measured cell.
func runLockmechCell(workload, mech string, threads, totalOps int) LockmechCell {
	fine, rw, wild, fineKey, rwGet, wildKey, wildSize := lockmechTables()

	var s *core.Semantic
	switch workload {
	case "no-conflict", "all-conflict":
		s = core.NewSemantic(fine)
	case "same-mode":
		s = core.NewSemantic(rw)
	case "wildcard-vs-fine":
		s = core.NewSemantic(wild)
	default:
		panic("bench: unknown lockmech workload " + workload)
	}
	s.DisableMechV2 = mech == mechV1Name

	ops := totalOps / threads
	if ops < 1 {
		ops = 1
	}
	// body returns goroutine g's per-cycle work.
	body := func(g int) func(i int) {
		switch workload {
		case "no-conflict":
			m := fineKey(g % 64)
			return func(int) { s.Acquire(m); s.Release(m) }
		case "same-mode":
			m := rwGet(0)
			return func(int) { s.Acquire(m); s.Release(m) }
		case "wildcard-vs-fine":
			// Three fine ops on our own bucket, then one wildcard op.
			mf, mw := wildKey(g%256), wildSize()
			return func(i int) {
				m := mf
				if i&3 == 0 {
					m = mw
				}
				s.Acquire(m)
				s.Release(m)
			}
		case "all-conflict":
			// Hold across a yield so critical sections genuinely overlap
			// (on a small host an unyielding holder is never preempted
			// mid-section and no blocking would ever happen).
			m := fineKey(0)
			return func(int) {
				s.Acquire(m)
				runtime.Gosched()
				s.Release(m)
			}
		}
		panic("bench: unknown lockmech workload " + workload)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			work := body(g)
			<-start
			for i := 0; i < ops; i++ {
				work(i)
			}
		}(g)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)

	st := s.Stats()
	return LockmechCell{
		Workload:     workload,
		Mech:         mech,
		Threads:      threads,
		NsPerAcquire: float64(elapsed.Nanoseconds()) / float64(ops*threads),
		FastPath:     st.FastPath,
		Slow:         st.Slow,
		Waits:        st.Waits,
	}
}

// LockmechBench runs the full experiment grid and computes the summary
// criteria: the contended wildcard-vs-fine speedup of v2 over v1 and the
// uncontended fast-path ratio (best no-conflict v2 ns / best v1 ns;
// ≤ 1 means no regression).
func LockmechBench(cfg LockmechConfig) *LockmechReport {
	if cfg.TotalOps == 0 {
		cfg.TotalOps = 200000
	}
	if len(cfg.Threads) == 0 {
		cfg.Threads = ThreadCounts
	}
	rep := &LockmechReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		TotalOps:   cfg.TotalOps,
		Speedup:    map[string]map[int]float64{},
		Criteria:   map[string]float64{},
	}

	cells := map[string]map[string]map[int]LockmechCell{} // workload → mech → T
	for _, w := range lockmechWorkloads {
		cells[w] = map[string]map[int]LockmechCell{mechV2Name: {}, mechV1Name: {}}
		for _, T := range cfg.Threads {
			// The mechanisms alternate pass by pass so slow drift (CPU
			// frequency, host interference) hits both sides of every
			// comparison equally; a warm-up pass absorbs first-touch
			// noise, and of the measured passes the fastest is kept (the
			// least-interference estimate of the mechanism's cost).
			best := map[string]LockmechCell{}
			for _, mech := range []string{mechV2Name, mechV1Name} {
				runLockmechCell(w, mech, T, cfg.TotalOps/10)
			}
			for r := 0; r < lockmechReps; r++ {
				for _, mech := range []string{mechV2Name, mechV1Name} {
					c := runLockmechCell(w, mech, T, cfg.TotalOps)
					if b, ok := best[mech]; !ok || c.NsPerAcquire < b.NsPerAcquire {
						best[mech] = c
					}
				}
			}
			for _, mech := range []string{mechV2Name, mechV1Name} {
				cells[w][mech][T] = best[mech]
				rep.Cells = append(rep.Cells, best[mech])
			}
		}
		sp := map[int]float64{}
		for _, T := range cfg.Threads {
			v2 := cells[w][mechV2Name][T].NsPerAcquire
			v1 := cells[w][mechV1Name][T].NsPerAcquire
			if v2 > 0 {
				sp[T] = v1 / v2
			}
		}
		rep.Speedup[w] = sp
	}

	// Criteria. The contended wildcard-vs-fine speedup is the geometric
	// mean over the contended thread counts (T ≥ 2); the fast-path ratio
	// compares the mechanisms' best observed uncontended cycle (see below).
	var logSum float64
	var nContended int
	for _, T := range cfg.Threads {
		if T < 2 {
			continue
		}
		if sp := rep.Speedup["wildcard-vs-fine"][T]; sp > 0 {
			logSum += math.Log(sp)
			nContended++
		}
	}
	if nContended > 0 {
		rep.Criteria["wildcard_vs_fine_contended_speedup"] = math.Exp(logSum / float64(nContended))
	}
	// Every no-conflict cell is the same uncontended measurement here —
	// zero waits, all fast path, GOMAXPROCS bounds real parallelism — so
	// each thread count contributes one paired v2/v1 comparison whose
	// sides ran interleaved (temporally adjacent, same drift), and the
	// ratio is their geometric mean: len(Threads) controlled comparisons
	// instead of one noisy cell.
	fpLog, nPairs := 0.0, 0
	for _, T := range cfg.Threads {
		if sp := rep.Speedup["no-conflict"][T]; sp > 0 {
			fpLog += math.Log(1 / sp)
			nPairs++
		}
	}
	if nPairs > 0 {
		rep.Criteria["uncontended_fastpath_v2_over_v1_ns_ratio"] = math.Exp(fpLog / float64(nPairs))
	}
	return rep
}

// Format renders the report as aligned tables, one per workload.
func (r *LockmechReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Lockmech — mechanism v2 vs v1 (A5), ns per acquire/release cycle\n")
	fmt.Fprintf(&b, "GOMAXPROCS=%d, %d cycles per cell\n", r.GOMAXPROCS, r.TotalOps)
	byKey := map[string]LockmechCell{}
	for _, c := range r.Cells {
		byKey[fmt.Sprintf("%s/%s/%d", c.Workload, c.Mech, c.Threads)] = c
	}
	var threads []int
	seen := map[int]bool{}
	for _, c := range r.Cells {
		if !seen[c.Threads] {
			seen[c.Threads] = true
			threads = append(threads, c.Threads)
		}
	}
	sort.Ints(threads)
	for _, w := range lockmechWorkloads {
		fmt.Fprintf(&b, "\n%s\n", w)
		fmt.Fprintf(&b, "%-8s%12s%12s%10s%12s%12s\n", "threads", "v2 ns", "v1 ns", "speedup", "v2 waits", "v1 waits")
		for _, T := range threads {
			c2 := byKey[fmt.Sprintf("%s/%s/%d", w, mechV2Name, T)]
			c1 := byKey[fmt.Sprintf("%s/%s/%d", w, mechV1Name, T)]
			fmt.Fprintf(&b, "%-8d%12.1f%12.1f%10.2f%12d%12d\n",
				T, c2.NsPerAcquire, c1.NsPerAcquire, r.Speedup[w][T], c2.Waits, c1.Waits)
		}
	}
	fmt.Fprintf(&b, "\ncriteria:\n")
	for _, k := range sortedStringKeys(r.Criteria) {
		fmt.Fprintf(&b, "  %s = %.3f\n", k, r.Criteria[k])
	}
	return b.String()
}

func sortedStringKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
