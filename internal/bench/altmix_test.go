package bench

import (
	"strings"
	"testing"
)

// TestFig22AltMixes verifies the paper's §6.1 remark that the Graph
// results are similar across workloads: both the read-heavy and
// write-heavy mixes keep the qualitative ordering (ours scales, within
// a factor of manual, far above global/2pl).
func TestFig22AltMixes(t *testing.T) {
	mixes := map[string]GraphMix{
		"readheavy":  {FindSucc: 45, FindPred: 45, Insert: 8, Remove: 2},
		"writeheavy": {FindSucc: 25, FindPred: 25, Insert: 30, Remove: 20},
	}
	for name, mix := range mixes {
		f := Fig22SimMix(testCfg(), mix, "fig22-"+name)
		if err := f.Check("ours", "global", 32, 5); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if err := f.Check("ours", "manual", 32, 0.6); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if sc := f.Scalability("ours"); sc < 8 {
			t.Errorf("%s: ours scalability = %.1f", name, sc)
		}
	}
}

// TestFig23AltMix: the 50/50 cache workload shifts the crossover (more
// serializing puts cap ours lower) but ours still beats global/2pl.
func TestFig23AltMix(t *testing.T) {
	f := Fig23SimMix(testCfg(), 50, "fig23-5050")
	if err := f.Check("ours", "global", 32, 1.2); err != nil {
		t.Error(err)
	}
	nine := Fig23SimMix(testCfg(), 90, "fig23")
	// More puts → less scaling for ours (the size()-mode analysis).
	if f.Scalability("ours") >= nine.Scalability("ours") {
		t.Errorf("50/50 ours scalability (%.1f) should be below 90/10 (%.1f)",
			f.Scalability("ours"), nine.Scalability("ours"))
	}
}

// TestStatsReport: plumbing of the lock-statistics experiment.
func TestStatsReport(t *testing.T) {
	out := StatsReport(300, 2)
	for _, want := range []string{"cia", "graph", "cache", "fast-path", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats report missing %q:\n%s", want, out)
		}
	}
}

// TestFig21SeedInvariance: the qualitative shape does not depend on the
// workload seed.
func TestFig21SeedInvariance(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		f := Fig21Sim(SimConfig{TxnsPerThread: 1500, Seed: seed})
		if err := f.Check("ours", "global", 32, 4); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}
