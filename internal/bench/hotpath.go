package bench

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/adtspecs"
	"repro/internal/apps/gossip"
	"repro/internal/apps/intruder"
	"repro/internal/core"
	"repro/internal/modules/plan"
)

//semlockvet:file-ignore txndiscipline -- this harness times prologues below the Atomically layer

// HotpathBench is the fused-prologue experiment behind
// `benchall -exp hotpath`: it measures the acquisition hot path of the
// fused prologue (Txn.LockBatch + interned mode selection) against the
// sequential prologue it replaces, on five components:
//
//	gossip / intruder — the real applications, "ours-fused" (interned
//	                    selectors + transaction mode memo) against
//	                    "ours" (variadic Binder closures), ops/ms at
//	                    each worker count. sendCost is zero so the
//	                    prologue dominates the section body.
//	mode              — mode-construction microbenchmark: the full
//	                    symbolic build (ModeForValues), the variadic
//	                    Binder closure, the fixed-arity Binder1, the
//	                    interned SetRef.Mode1 selector, and the
//	                    transaction memo (Txn.CachedMode1) on a
//	                    repeated same-value selection; ns/op, B/op,
//	                    allocs/op via testing.Benchmark. The interned
//	                    paths must report allocs/op = 0.
//	batch             — core workload: a fused same-instance run, three
//	                    key modes on one instance as one AcquireBatch
//	                    (one claim pass, one conflict scan, at most one
//	                    union-mask waiter) against the three sequential
//	                    Acquire calls it replaces; ns per prologue plus
//	                    the fast-path ratio from Semantic.Stats, in two
//	                    regimes. "disjoint" (per-goroutine key triples)
//	                    is the pure fast path and reports the batch's
//	                    honest uncontended overhead: AcquireBatch is not
//	                    straight-lined the way Acquire is (variadic
//	                    slice, partition scan, claim loop), so expect
//	                    its speedup below 1 — the batch buys the union
//	                    waiter, intra-batch self-permission, and the
//	                    prologue fusion the app cells measure, not a
//	                    faster uncontended claim. "contended" (every
//	                    goroutine wants the same triple, held across a
//	                    yield) exercises the blocking path; on a 1-core
//	                    host it is parity-bound because a blocked
//	                    sequential prologue also parks only once per
//	                    cycle. (Cross-instance batches deliberately
//	                    degenerate to per-instance acquisition in rank
//	                    order — their win is the selector half, which
//	                    the app cells measure end to end.)
//	watchdog          — the getWaiter clock gating: ns per contended
//	                    acquire/release cycle on an unwatched instance
//	                    against the same instance registered with a
//	                    Watchdog (which turns on the per-waiter
//	                    time.Now sample the sampler reads).
//
// Cells follow the lockmech conventions: variants alternate pass by
// pass so host drift hits both sides of every comparison, a warm-up
// pass absorbs first-touch noise, and of the measured passes the best
// is kept.
type HotpathConfig struct {
	OpsPerThread int   // app-driver operations per goroutine per pass
	TotalOps     int   // core prologue cycles per cell (split across goroutines)
	Threads      []int // goroutine counts; defaults to ThreadCounts
}

// HotpathAppCell is one (app, variant, threads) throughput measurement.
type HotpathAppCell struct {
	App      string  `json:"app"`
	Variant  string  `json:"variant"` // "fused" or "sequential"
	Threads  int     `json:"threads"`
	OpsPerMs float64 `json:"ops_per_ms"`
}

// HotpathModeCell is one mode-construction microbenchmark result.
type HotpathModeCell struct {
	Path        string  `json:"path"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// HotpathBatchCell is one core AcquireBatch-vs-sequential measurement.
type HotpathBatchCell struct {
	Workload      string  `json:"workload"` // "disjoint" or "contended"
	Variant       string  `json:"variant"`  // "batched" or "sequential"
	Threads       int     `json:"threads"`
	NsPerPrologue float64 `json:"ns_per_prologue"`
	FastPathRatio float64 `json:"fast_path_ratio"`
}

// HotpathWatchdogCell is one watched-vs-unwatched contended cycle cost.
type HotpathWatchdogCell struct {
	Watched    bool    `json:"watched"`
	Threads    int     `json:"threads"`
	NsPerCycle float64 `json:"ns_per_cycle"`
}

// HotpathReport is the full result of the hotpath experiment, the
// content of BENCH_hotpath.json.
type HotpathReport struct {
	GOMAXPROCS   int                        `json:"gomaxprocs"`
	OpsPerThread int                        `json:"app_ops_per_thread"`
	TotalOps     int                        `json:"core_ops_per_cell"`
	App          []HotpathAppCell           `json:"app_cells"`
	AppSpeedup   map[string]map[int]float64 `json:"app_speedup_fused_over_sequential"`
	Mode         []HotpathModeCell          `json:"mode_cells"`
	Batch        []HotpathBatchCell         `json:"batch_cells"`
	Watchdog     []HotpathWatchdogCell      `json:"watchdog_cells"`
	Criteria     map[string]float64         `json:"criteria"`
}

const (
	hotpathFused = "fused"      // app policy "ours-fused"
	hotpathSeq   = "sequential" // app policy "ours"

	// hotpathReps measured passes per cell; the best one is kept (see
	// lockmechReps for why the extremum beats the mean on small hosts).
	// App cells get extra passes — whole-application passes carry more
	// scheduler and GC noise than the tight core loops.
	hotpathReps    = 3
	hotpathAppReps = 5
)

var (
	hotpathVariants = []string{hotpathFused, hotpathSeq}
	hotpathPolicies = map[string]string{hotpathFused: "ours-fused", hotpathSeq: "ours"}

	// Sinks keep the benchmarked selectors from being optimized away.
	hotpathModeSink    core.ModeID
	hotpathModeObjSink core.Mode
)

// hotpathTable builds the one-class key table the core cells run on:
// identity φ over 64 buckets, so distinct small keys are distinct
// counter slots and key modes are self-conflicting (they contain put).
func hotpathTable() (*core.ModeTable, core.SetRef) {
	keySet := core.SymSetOf(
		core.SymOpOf("get", core.VarArg("k")),
		core.SymOpOf("put", core.VarArg("k"), core.Star()),
		core.SymOpOf("remove", core.VarArg("k")),
	)
	assign := make(map[core.Value]int, 64)
	for i := 0; i < 64; i++ {
		assign[i] = i
	}
	tbl := core.NewModeTable(adtspecs.Map(), []core.SymSet{keySet},
		core.TableOptions{Phi: core.NewFixedPhi(64, 0, assign)})
	return tbl, tbl.Set(keySet)
}

// runGossipPass drives one router variant on one long-lived group — the
// app's steady state, where the fused variant's transaction memo sees
// repeated values. The mix is prologue-heavy: half unicasts (two locks
// around one map get and one zero-cost send), a quarter multicasts, and
// a register/unregister churn pair every eighth operation (two locks
// around a single map mutation — the op where mode selection is the
// largest fraction of the section).
func runGossipPass(policy string, threads, opsPerThread int) float64 {
	r := gossip.New(policy, 0, plan.Options{})
	for _, d := range [2]string{"m0", "m1"} {
		r.Register("grp", d, gossip.NewConn(d, 0))
	}
	churn := gossip.NewConn("churn", 0)
	payload := []byte{1}
	return measure(threads, opsPerThread, func(_, i int) {
		switch {
		case i&7 == 0:
			r.Register("grp", "churn", churn)
		case i&7 == 4:
			r.Unregister("grp", "churn")
		case i&1 == 1:
			r.Unicast("grp", "m0", payload)
		default:
			r.Multicast("grp", payload)
		}
	})
}

// runIntruderPass runs the full intruder pipeline over the shared trace
// and returns packets per millisecond.
func runIntruderPass(policy string, workers int, w *intruder.Workload) float64 {
	proc := intruder.NewProcessor(policy, plan.Options{})
	start := time.Now()
	intruder.Run(w, proc, workers)
	ms := float64(time.Since(start).Microseconds()) / 1000
	if ms == 0 {
		ms = 0.001
	}
	return float64(len(w.Packets)) / ms
}

// runBatchCell times the fused same-instance run: three key modes on
// one instance, acquired as one AcquireBatch or as three sequential
// Acquire calls. This shape is what Txn.Lock cannot express (its
// LOCAL_SET check makes a second lock of a held instance a no-op), so
// the comparison runs at the Semantic layer. The "disjoint" workload
// gives every goroutine its own key triple — the pure fast path, which
// bounds the batching overhead against three straight-lined claims; the
// "contended" workload makes every goroutine want the same triple and
// hold it across a yield, so sections overlap and blocked batches park
// one union-mask waiter where the sequential prologue parks one waiter
// per blocking constituent.
func runBatchCell(workload, variant string, threads, totalOps int) HotpathBatchCell {
	tbl, ref := hotpathTable()
	s := core.NewSemantic(tbl)
	ops := totalOps / threads
	if ops < 1 {
		ops = 1
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := (3 * g) % 64 // disjoint below 22 goroutines
			if workload == "contended" {
				base = 0 // every goroutine fights for keys 0,1,2
			}
			// Keep keys inside the 64-bucket φ and acquire in ascending
			// bucket order: past 21 goroutines the triples wrap and
			// overlap, and the sequential baseline deadlocks unless every
			// goroutine claims overlapping keys in one global order. (The
			// batched variant needs no such discipline — its claim is
			// all-or-nothing with a single union waiter mask.)
			k := [3]int{base, (base + 1) % 64, (base + 2) % 64}
			sort.Ints(k[:])
			m1 := ref.Mode1(k[0])
			m2 := ref.Mode1(k[1])
			m3 := ref.Mode1(k[2])
			hold := func() {}
			if workload == "contended" {
				hold = runtime.Gosched // overlap the critical sections
			}
			<-start
			if variant == "batched" {
				for i := 0; i < ops; i++ {
					s.AcquireBatch(m1, m2, m3)
					hold()
					s.Release(m1)
					s.Release(m2)
					s.Release(m3)
				}
			} else {
				for i := 0; i < ops; i++ {
					s.Acquire(m1)
					s.Acquire(m2)
					s.Acquire(m3)
					hold()
					s.Release(m1)
					s.Release(m2)
					s.Release(m3)
				}
			}
		}(g)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)

	st := s.Stats()
	ratio := 0.0
	if st.FastPath+st.Slow > 0 {
		ratio = float64(st.FastPath) / float64(st.FastPath+st.Slow)
	}
	return HotpathBatchCell{
		Workload:      workload,
		Variant:       variant,
		Threads:       threads,
		NsPerPrologue: float64(elapsed.Nanoseconds()) / float64(ops*threads),
		FastPathRatio: ratio,
	}
}

// runWatchdogCell times the contended acquire/release cycle of one
// self-conflicting mode held across a yield (the lockmech all-conflict
// shape, where every acquisition blocks and registers a waiter), with
// the instance either unwatched or registered with a Watchdog.
func runWatchdogCell(watched bool, threads, totalOps int) HotpathWatchdogCell {
	tbl, ref := hotpathTable()
	s := core.NewSemantic(tbl)
	if watched {
		// Watch flips the mechanisms' watched bit, which is what makes
		// getWaiter stamp each parked waiter with time.Now. The huge
		// thresholds keep the sampler itself out of the measurement.
		core.NewWatchdog(core.WatchdogConfig{Threshold: time.Hour, Interval: time.Hour}).Watch(s)
	}
	m := ref.Mode1(0)
	ops := totalOps / threads
	if ops < 1 {
		ops = 1
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < ops; i++ {
				s.Acquire(m)
				runtime.Gosched()
				s.Release(m)
			}
		}()
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	return HotpathWatchdogCell{
		Watched:    watched,
		Threads:    threads,
		NsPerCycle: float64(time.Since(t0).Nanoseconds()) / float64(ops*threads),
	}
}

// hotpathModeCells runs the mode-construction microbenchmark.
func hotpathModeCells() []HotpathModeCell {
	tbl, ref := hotpathTable()
	keySet := ref.SymSet()
	phi := tbl.Phi()
	binderVariadic := ref.Binder("k")
	binder1 := ref.Binder1("k")
	tx := core.NewTxn()
	tx.CachedMode1(ref, 7) // warm the memo: the cell measures the hit path

	run := func(path string, f func()) HotpathModeCell {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f()
			}
		})
		return HotpathModeCell{
			Path:        path,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
	}
	return []HotpathModeCell{
		run("modeforvalues", func() {
			hotpathModeObjSink = core.ModeForValues(keySet, phi, map[string]core.Value{"k": 7})
		}),
		run("binder-variadic", func() { hotpathModeSink = binderVariadic(7) }),
		run("binder1", func() { hotpathModeSink = binder1(7) }),
		run("setref-mode1", func() { hotpathModeSink = ref.Mode1(7) }),
		run("txn-memo", func() { hotpathModeSink = tx.CachedMode1(ref, 7) }),
	}
}

// geomean returns the geometric mean of the positive values in xs.
func geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// HotpathBench runs the full experiment and computes the summary
// criteria (see HotpathReport.Criteria keys in Format).
func HotpathBench(cfg HotpathConfig) *HotpathReport {
	if cfg.OpsPerThread == 0 {
		cfg.OpsPerThread = 20000
	}
	if cfg.TotalOps == 0 {
		cfg.TotalOps = 100000
	}
	if len(cfg.Threads) == 0 {
		cfg.Threads = ThreadCounts
	}
	rep := &HotpathReport{
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		OpsPerThread: cfg.OpsPerThread,
		TotalOps:     cfg.TotalOps,
		AppSpeedup:   map[string]map[int]float64{},
		Criteria:     map[string]float64{},
	}

	// ---- applications ----
	icfg := intruder.Config{Attacks: 10, MaxLength: 64, Flows: 4096, Seed: 1}
	if cfg.OpsPerThread < 20000 {
		icfg.Flows = 1024
	}
	trace := intruder.Generate(icfg)

	apps := []struct {
		name string
		warm func(policy string, T int)
		run  func(policy string, T int) float64
	}{
		{
			name: "gossip",
			warm: func(p string, T int) { runGossipPass(p, T, cfg.OpsPerThread/10+1) },
			run:  func(p string, T int) float64 { return runGossipPass(p, T, cfg.OpsPerThread) },
		},
		{
			name: "intruder",
			warm: func(p string, T int) { runIntruderPass(p, T, trace) },
			run:  func(p string, T int) float64 { return runIntruderPass(p, T, trace) },
		},
	}
	for _, app := range apps {
		sp := map[int]float64{}
		for _, T := range cfg.Threads {
			for _, v := range hotpathVariants {
				app.warm(hotpathPolicies[v], T)
			}
			best := map[string]float64{}
			for r := 0; r < hotpathAppReps; r++ {
				for _, v := range hotpathVariants {
					if got := app.run(hotpathPolicies[v], T); got > best[v] {
						best[v] = got
					}
				}
			}
			for _, v := range hotpathVariants {
				rep.App = append(rep.App, HotpathAppCell{App: app.name, Variant: v, Threads: T, OpsPerMs: best[v]})
			}
			if best[hotpathSeq] > 0 {
				sp[T] = best[hotpathFused] / best[hotpathSeq]
			}
		}
		rep.AppSpeedup[app.name] = sp
	}

	// ---- mode-construction microbenchmark ----
	rep.Mode = hotpathModeCells()
	for _, c := range rep.Mode {
		switch c.Path {
		case "txn-memo":
			rep.Criteria["mode_memo_allocs_per_op"] = float64(c.AllocsPerOp)
		case "setref-mode1":
			rep.Criteria["mode_setref_allocs_per_op"] = float64(c.AllocsPerOp)
		}
	}
	if memo := rep.Mode[4].NsPerOp; memo > 0 {
		rep.Criteria["mode_variadic_binder_over_memo_ns_ratio"] = rep.Mode[1].NsPerOp / memo
	}

	// ---- core batch prologue ----
	// Contended cells only make sense when sections can overlap, so that
	// workload starts at 2 goroutines.
	for _, wl := range []string{"disjoint", "contended"} {
		batchBest := map[string]map[int]HotpathBatchCell{"batched": {}, "sequential": {}}
		var threads []int
		for _, T := range cfg.Threads {
			if wl == "contended" && T < 2 {
				continue
			}
			threads = append(threads, T)
		}
		for _, T := range threads {
			for _, v := range []string{"batched", "sequential"} {
				runBatchCell(wl, v, T, cfg.TotalOps/10) // warm-up
			}
			for r := 0; r < hotpathReps; r++ {
				for _, v := range []string{"batched", "sequential"} {
					c := runBatchCell(wl, v, T, cfg.TotalOps)
					if b, ok := batchBest[v][T]; !ok || c.NsPerPrologue < b.NsPerPrologue {
						batchBest[v][T] = c
					}
				}
			}
			for _, v := range []string{"batched", "sequential"} {
				rep.Batch = append(rep.Batch, batchBest[v][T])
			}
		}
		var batchSp []float64
		for _, T := range threads {
			if b := batchBest["batched"][T].NsPerPrologue; b > 0 {
				batchSp = append(batchSp, batchBest["sequential"][T].NsPerPrologue/b)
			}
		}
		rep.Criteria["batch_"+wl+"_fused_over_sequential"] = geomean(batchSp)
		if wl == "disjoint" {
			rep.Criteria["batched_fastpath_ratio_uncontended"] = batchBest["batched"][threads[0]].FastPathRatio
		}
	}

	// ---- watchdog clock gating ----
	wdBest := map[bool]map[int]float64{false: {}, true: {}}
	wdThreads := []int{2, 8}
	for _, T := range wdThreads {
		for _, w := range []bool{false, true} {
			runWatchdogCell(w, T, cfg.TotalOps/10) // warm-up
		}
		for r := 0; r < hotpathReps; r++ {
			for _, w := range []bool{false, true} {
				c := runWatchdogCell(w, T, cfg.TotalOps)
				if b, ok := wdBest[w][T]; !ok || c.NsPerCycle < b {
					wdBest[w][T] = c.NsPerCycle
				}
			}
		}
		for _, w := range []bool{false, true} {
			rep.Watchdog = append(rep.Watchdog, HotpathWatchdogCell{Watched: w, Threads: T, NsPerCycle: wdBest[w][T]})
		}
	}
	var wdRatios []float64
	for _, T := range wdThreads {
		if w := wdBest[true][T]; w > 0 {
			wdRatios = append(wdRatios, wdBest[false][T]/w)
		}
	}
	rep.Criteria["unwatched_over_watched_ns_ratio"] = geomean(wdRatios)

	// ---- app criteria ----
	var gossipHi, intruderSp []float64
	for T, sp := range rep.AppSpeedup["gossip"] {
		if T >= 8 {
			gossipHi = append(gossipHi, sp)
		}
	}
	for T, sp := range rep.AppSpeedup["intruder"] {
		if T >= 2 {
			intruderSp = append(intruderSp, sp)
		}
	}
	rep.Criteria["gossip_fused_over_sequential_T8plus"] = geomean(gossipHi)
	rep.Criteria["intruder_fused_over_sequential_T2plus"] = geomean(intruderSp)
	return rep
}

// Format renders the report as aligned tables, one per component.
func (r *HotpathReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hotpath — fused prologue vs sequential prologue\n")
	fmt.Fprintf(&b, "GOMAXPROCS=%d, %d app ops/goroutine, %d core cycles per cell\n",
		r.GOMAXPROCS, r.OpsPerThread, r.TotalOps)

	appCells := map[string]map[string]map[int]HotpathAppCell{}
	var threads []int
	seen := map[int]bool{}
	for _, c := range r.App {
		if appCells[c.App] == nil {
			appCells[c.App] = map[string]map[int]HotpathAppCell{hotpathFused: {}, hotpathSeq: {}}
		}
		appCells[c.App][c.Variant][c.Threads] = c
		if !seen[c.Threads] {
			seen[c.Threads] = true
			threads = append(threads, c.Threads)
		}
	}
	sort.Ints(threads)
	for _, app := range []string{"gossip", "intruder"} {
		if appCells[app] == nil {
			continue
		}
		fmt.Fprintf(&b, "\n%s (ops/ms)\n", app)
		fmt.Fprintf(&b, "%-8s%12s%14s%10s\n", "threads", "fused", "sequential", "speedup")
		for _, T := range threads {
			fmt.Fprintf(&b, "%-8d%12.1f%14.1f%10.2f\n",
				T,
				appCells[app][hotpathFused][T].OpsPerMs,
				appCells[app][hotpathSeq][T].OpsPerMs,
				r.AppSpeedup[app][T])
		}
	}

	fmt.Fprintf(&b, "\nmode construction (repeated same-value selection)\n")
	fmt.Fprintf(&b, "%-18s%12s%10s%12s\n", "path", "ns/op", "B/op", "allocs/op")
	for _, c := range r.Mode {
		fmt.Fprintf(&b, "%-18s%12.1f%10d%12d\n", c.Path, c.NsPerOp, c.BytesPerOp, c.AllocsPerOp)
	}

	for _, wl := range []string{"disjoint", "contended"} {
		fmt.Fprintf(&b, "\ncore same-instance fused run, %s keys (ns per 3-mode prologue)\n", wl)
		fmt.Fprintf(&b, "%-8s%12s%14s%10s%12s\n", "threads", "batched", "sequential", "speedup", "fastpath")
		batch := map[string]map[int]HotpathBatchCell{"batched": {}, "sequential": {}}
		for _, c := range r.Batch {
			if c.Workload == wl {
				batch[c.Variant][c.Threads] = c
			}
		}
		var bt []int
		for T := range batch["batched"] {
			bt = append(bt, T)
		}
		sort.Ints(bt)
		for _, T := range bt {
			bc, sc := batch["batched"][T], batch["sequential"][T]
			sp := 0.0
			if bc.NsPerPrologue > 0 {
				sp = sc.NsPerPrologue / bc.NsPerPrologue
			}
			fmt.Fprintf(&b, "%-8d%12.1f%14.1f%10.2f%12.3f\n", T, bc.NsPerPrologue, sc.NsPerPrologue, sp, bc.FastPathRatio)
		}
	}

	fmt.Fprintf(&b, "\nwatchdog clock gating (contended cycle, ns)\n")
	fmt.Fprintf(&b, "%-8s%12s%12s\n", "threads", "unwatched", "watched")
	wd := map[bool]map[int]float64{false: {}, true: {}}
	var wt []int
	seenW := map[int]bool{}
	for _, c := range r.Watchdog {
		wd[c.Watched][c.Threads] = c.NsPerCycle
		if !seenW[c.Threads] {
			seenW[c.Threads] = true
			wt = append(wt, c.Threads)
		}
	}
	sort.Ints(wt)
	for _, T := range wt {
		fmt.Fprintf(&b, "%-8d%12.1f%12.1f\n", T, wd[false][T], wd[true][T])
	}

	fmt.Fprintf(&b, "\ncriteria:\n")
	for _, k := range sortedStringKeys(r.Criteria) {
		fmt.Fprintf(&b, "  %s = %.3f\n", k, r.Criteria[k])
	}
	return b.String()
}
