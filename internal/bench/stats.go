package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/modules/cache"
	"repro/internal/modules/cia"
	"repro/internal/modules/graph"
	"repro/internal/modules/plan"
)

// StatsReporter is implemented by the "ours" module variants: cumulative
// semantic-lock acquisition statistics (Fig 20's fast path vs the
// internal-lock slow path).
type StatsReporter interface {
	LockStats() core.LockStats
}

// StatsReport runs each composite module's "ours" variant under real
// concurrency and reports the fast-path hit rate and wait counts — the
// observable effectiveness of Fig 20 lines 3–4 and of lock
// partitioning. Returned as formatted text (`benchall -exp stats`).
func StatsReport(opsPerThread, threads int) string {
	var b strings.Builder
	b.WriteString("Lock-mechanism statistics (real execution, 'ours' variants)\n")
	fmt.Fprintf(&b, "%d threads × %d transactions each\n\n", threads, opsPerThread)
	fmt.Fprintf(&b, "%-10s %12s %12s %12s %10s\n", "module", "fast-path", "slow-path", "waits", "fast%")

	row := func(name string, r StatsReporter, run func(tid, i int)) {
		var wg sync.WaitGroup
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				for i := 0; i < opsPerThread; i++ {
					run(t, i)
				}
			}(t)
		}
		wg.Wait()
		st := r.LockStats()
		total := st.FastPath + st.Slow
		pct := 0.0
		if total > 0 {
			pct = float64(st.FastPath) / float64(total) * 100
		}
		fmt.Fprintf(&b, "%-10s %12d %12d %12d %9.2f%%\n", name, st.FastPath, st.Slow, st.Waits, pct)
	}

	{
		m := cia.New("ours", plan.Options{})
		r := m.(StatsReporter)
		rngs := perThreadRngs(threads)
		row("cia", r, func(t, _ int) { m.ComputeIfAbsent(rngs[t].Intn(1 << 17)) })
	}
	{
		g := graph.New("ours", plan.Options{})
		r := g.(StatsReporter)
		rngs := perThreadRngs(threads)
		row("graph", r, func(t, _ int) {
			rng := rngs[t]
			op := rng.Intn(100)
			a, d := rng.Intn(1<<16), rng.Intn(1<<16)
			switch {
			case op < 35:
				g.FindSuccessors(a)
			case op < 70:
				g.FindPredecessors(a)
			case op < 90:
				g.InsertEdge(a, d)
			default:
				g.RemoveEdge(a, d)
			}
		})
	}
	{
		c := cache.New("ours", 5_000_000, plan.Options{})
		r := c.(StatsReporter)
		rngs := perThreadRngs(threads)
		row("cache", r, func(t, _ int) {
			rng := rngs[t]
			k := rng.Intn(1 << 20)
			if rng.Intn(100) < 10 {
				c.Put(k, k)
			} else {
				c.Get(k)
			}
		})
	}
	return b.String()
}

func perThreadRngs(n int) []*rand.Rand {
	out := make([]*rand.Rand, n)
	for i := range out {
		out[i] = rand.New(rand.NewSource(int64(i) + 1))
	}
	return out
}
