package bench

import (
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/apps/gossip"
	"repro/internal/apps/intruder"
	"repro/internal/modules/cache"
	"repro/internal/modules/cia"
	"repro/internal/modules/graph"
	"repro/internal/modules/plan"
)

// Real-execution measurements run the actual modules with goroutines on
// the host and report wall-clock throughput. On the paper's 32-core
// machine these curves would match the simulated ones; on a small host
// they mainly expose the constant per-transaction overhead of each
// policy (the simulated figures carry the scaling story — DESIGN.md
// substitution 3). The host's core count is attached as a note.

// RealConfig scales the real-execution runs.
type RealConfig struct {
	OpsPerThread int
	Threads      []int
}

// DefaultRealConfig keeps runs short on small hosts.
func DefaultRealConfig() RealConfig {
	return RealConfig{OpsPerThread: 30000, Threads: []int{1, 2, 4, 8}}
}

func hostNote() string {
	return "real execution on this host: GOMAXPROCS = " + itoa(runtime.GOMAXPROCS(0))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// measure runs fn concurrently from T goroutines, opsPerThread calls
// each, and returns operations per millisecond.
func measure(threads, opsPerThread int, fn func(tid, i int)) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			for i := 0; i < opsPerThread; i++ {
				fn(t, i)
			}
		}(t)
	}
	wg.Wait()
	ms := float64(time.Since(start).Microseconds()) / 1000
	if ms == 0 {
		ms = 0.001
	}
	return float64(threads*opsPerThread) / ms
}

// Fig21Real measures the real ComputeIfAbsent modules.
func Fig21Real(cfg RealConfig) *Figure {
	fig := &Figure{
		ID:     "fig21-real",
		Title:  "ComputeIfAbsent throughput (real execution)",
		YLabel: "operations per millisecond",
		Xs:     cfg.Threads,
		Notes:  []string{hostNote()},
	}
	const keySpace = 1 << 17
	for _, pol := range cia.Policies() {
		s := Series{Name: pol, Values: map[int]float64{}}
		for _, T := range cfg.Threads {
			m := cia.New(pol, plan.Options{})
			rngs := make([]*rand.Rand, T)
			for t := range rngs {
				rngs[t] = rand.New(rand.NewSource(int64(t) + 1))
			}
			s.Values[T] = measure(T, cfg.OpsPerThread, func(t, _ int) {
				m.ComputeIfAbsent(rngs[t].Intn(keySpace))
			})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig22Real measures the real Graph modules with the paper's mix.
func Fig22Real(cfg RealConfig) *Figure {
	fig := &Figure{
		ID:     "fig22-real",
		Title:  "Graph throughput (real execution); 35/35/20/10 mix",
		YLabel: "operations per millisecond",
		Xs:     cfg.Threads,
		Notes:  []string{hostNote()},
	}
	const nodeSpace = 1 << 16
	for _, pol := range graph.Policies() {
		s := Series{Name: pol, Values: map[int]float64{}}
		for _, T := range cfg.Threads {
			g := graph.New(pol, plan.Options{})
			rngs := make([]*rand.Rand, T)
			for t := range rngs {
				rngs[t] = rand.New(rand.NewSource(int64(t) + 1))
			}
			s.Values[T] = measure(T, cfg.OpsPerThread, func(t, _ int) {
				rng := rngs[t]
				op := rng.Intn(100)
				a, b := rng.Intn(nodeSpace), rng.Intn(nodeSpace)
				switch {
				case op < 35:
					g.FindSuccessors(a)
				case op < 70:
					g.FindPredecessors(a)
				case op < 90:
					g.InsertEdge(a, b)
				default:
					g.RemoveEdge(a, b)
				}
			})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig23Real measures the real Cache modules (90% Get / 10% Put).
func Fig23Real(cfg RealConfig) *Figure {
	fig := &Figure{
		ID:     "fig23-real",
		Title:  "Cache throughput (real execution); 90% Get / 10% Put",
		YLabel: "operations per millisecond",
		Xs:     cfg.Threads,
		Notes:  []string{hostNote()},
	}
	const keySpace = 1 << 20
	for _, pol := range cache.Policies() {
		s := Series{Name: pol, Values: map[int]float64{}}
		for _, T := range cfg.Threads {
			c := cache.New(pol, 5_000_000, plan.Options{})
			rngs := make([]*rand.Rand, T)
			for t := range rngs {
				rngs[t] = rand.New(rand.NewSource(int64(t) + 1))
			}
			s.Values[T] = measure(T, cfg.OpsPerThread, func(t, _ int) {
				rng := rngs[t]
				k := rng.Intn(keySpace)
				if rng.Intn(100) < 10 {
					c.Put(k, k)
				} else {
					c.Get(k)
				}
			})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig24Real runs the real Intruder application and reports speedup over
// one worker.
func Fig24Real(cfg RealConfig, wcfg intruder.Config) *Figure {
	fig := &Figure{
		ID:     "fig24-real",
		Title:  "Intruder speedup over one worker (real execution)",
		YLabel: "speedup (%)",
		Xs:     cfg.Threads,
		Notes:  []string{hostNote()},
	}
	w := intruder.Generate(wcfg)
	for _, pol := range intruder.Policies() {
		s := Series{Name: pol, Values: map[int]float64{}}
		timeFor := func(workers int) float64 {
			proc := intruder.NewProcessor(pol, plan.Options{})
			start := time.Now()
			intruder.Run(w, proc, workers)
			return float64(time.Since(start).Microseconds())
		}
		base := timeFor(1)
		for _, T := range cfg.Threads {
			s.Values[T] = base / timeFor(T) * 100
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig25Real runs the real GossipRouter under MPerf and reports speedup
// over one worker.
func Fig25Real(cfg RealConfig, mcfg gossip.MPerfConfig) *Figure {
	fig := &Figure{
		ID:     "fig25-real",
		Title:  "GossipRouter MPerf speedup over one worker (real execution)",
		YLabel: "speedup (%)",
		Xs:     cfg.Threads,
		Notes:  []string{hostNote()},
	}
	for _, pol := range gossip.Policies() {
		s := Series{Name: pol, Values: map[int]float64{}}
		timeFor := func(workers int) float64 {
			r := gossip.New(pol, mcfg.SendCost, plan.Options{})
			c := mcfg
			c.Workers = workers
			start := time.Now()
			gossip.RunMPerf(r, c)
			return float64(time.Since(start).Microseconds())
		}
		base := timeFor(1)
		for _, T := range cfg.Threads {
			s.Values[T] = base / timeFor(T) * 100
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}
