// Package graph implements the Graph benchmark of §6.1 (the concurrent
// graph of Hawkins et al., PLDI 2012): a directed graph stored as two
// Multimap instances — successors and predecessors — with four atomic
// procedures: find successors, find predecessors, insert edge, remove
// edge. The two multimaps must be updated together, which is exactly the
// multi-ADT atomicity problem semantic locking solves.
package graph

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/adtspecs"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/modules/plan"
)

//semlockvet:file-ignore txndiscipline -- this file transcribes the synthesized plans by hand; it drives the raw mechanism on purpose

// Module is the benchmark interface.
type Module interface {
	FindSuccessors(n int) []core.Value
	FindPredecessors(n int) []core.Value
	InsertEdge(s, d int) bool
	RemoveEdge(s, d int) bool
}

// Sections returns the module's four atomic sections in IR. The
// successor and predecessor multimaps are distinct equivalence classes
// (distinct allocation sites under the paper's points-to abstraction),
// expressed here with ClassOf.
func Sections() []*ir.Atomic {
	vars := func() []ir.Param {
		return []ir.Param{
			{Name: "succs", Type: "Multimap", IsADT: true, NonNull: true},
			{Name: "preds", Type: "Multimap", IsADT: true, NonNull: true},
			{Name: "s", Type: "int"},
			{Name: "d", Type: "int"},
			{Name: "n", Type: "int"},
			{Name: "out", Type: "list"},
			{Name: "ok", Type: "boolean"},
		}
	}
	return []*ir.Atomic{
		{
			Name: "findSuccessors",
			Vars: vars(),
			Body: ir.Block{
				&ir.Call{Recv: "succs", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "n"}}, Assign: "out"},
			},
		},
		{
			Name: "findPredecessors",
			Vars: vars(),
			Body: ir.Block{
				&ir.Call{Recv: "preds", Method: "get", Args: []ir.Expr{ir.VarRef{Name: "n"}}, Assign: "out"},
			},
		},
		{
			Name: "insertEdge",
			Vars: vars(),
			Body: ir.Block{
				&ir.Call{Recv: "succs", Method: "put", Args: []ir.Expr{ir.VarRef{Name: "s"}, ir.VarRef{Name: "d"}}, Assign: "ok"},
				&ir.If{
					Cond: ir.OpaqueCond{Text: "ok", Reads: []string{"ok"}},
					Then: ir.Block{
						&ir.Call{Recv: "preds", Method: "put", Args: []ir.Expr{ir.VarRef{Name: "d"}, ir.VarRef{Name: "s"}}},
					},
				},
			},
		},
		{
			Name: "removeEdge",
			Vars: vars(),
			Body: ir.Block{
				&ir.Call{Recv: "succs", Method: "remove", Args: []ir.Expr{ir.VarRef{Name: "s"}, ir.VarRef{Name: "d"}}, Assign: "ok"},
				&ir.If{
					Cond: ir.OpaqueCond{Text: "ok", Reads: []string{"ok"}},
					Then: ir.Block{
						&ir.Call{Recv: "preds", Method: "remove", Args: []ir.Expr{ir.VarRef{Name: "d"}, ir.VarRef{Name: "s"}}},
					},
				},
			},
		},
	}
}

// ClassOf splits the two multimaps into separate equivalence classes.
func ClassOf(sec *ir.Atomic, v string) string {
	switch v {
	case "succs":
		return "Multimap$succs"
	case "preds":
		return "Multimap$preds"
	}
	return sec.ADTType(v)
}

var planCache = plan.NewCache(func(opt plan.Options) *plan.Plan {
	return plan.MustBuild(Sections(), adtspecs.All(), ClassOf, opt)
})

// BuildPlan synthesizes the module; plans are memoized per Options.
func BuildPlan(opt plan.Options) *plan.Plan { return planCache.Get(opt) }

// New creates the named variant: "ours", "global", "2pl" or "manual".
func New(policy string, opt plan.Options) Module {
	switch policy {
	case "ours":
		return newOurs(opt)
	case "global":
		return &global{succs: adt.NewMultimap(), preds: adt.NewMultimap()}
	case "2pl":
		return &twoPL{
			succs: adt.NewMultimap(), preds: adt.NewMultimap(),
			succsL: cc.NewInstanceLock(0), predsL: cc.NewInstanceLock(1),
		}
	case "manual":
		return &manual{
			succs: adt.NewMultimap(), preds: adt.NewMultimap(),
			succsS: cc.NewStriped(64), predsS: cc.NewStriped(64),
		}
	default:
		panic(fmt.Sprintf("graph: unknown policy %q", policy))
	}
}

// Policies lists the variants in the order Fig 22 plots them.
func Policies() []string { return []string{"ours", "global", "2pl", "manual"} }

// ours executes the synthesized plan: per-section refined modes on the
// two multimap instances, acquired in class-rank order.
type ours struct {
	succs, preds       *adt.Multimap
	succsSem, predsSem *core.Semantic

	// Mode selectors bound to each call site's natural argument order
	// (core.SetRef.Binder), so the (s,d)/(d,s) positions cannot be
	// confused with the sets' canonical variable order.
	findSucc func(core.Value) core.ModeID             // findSuccessors: succs {get(n)}
	findPred func(core.Value) core.ModeID             // findPredecessors: preds {get(n)}
	insSucc  func(core.Value, core.Value) core.ModeID // insertEdge: succs {put(s,d)}
	insPred  func(core.Value, core.Value) core.ModeID // insertEdge: preds {put(d,s)}
	remSucc  func(core.Value, core.Value) core.ModeID // removeEdge: succs {remove(s,d)}
	remPred  func(core.Value, core.Value) core.ModeID // removeEdge: preds {remove(d,s)}
}

func newOurs(opt plan.Options) *ours {
	// Two-variable sets instantiate n² modes; the default MaxModes cap
	// (4096) coarsens φ to 32 buckets, keeping the O(modes²) F_c
	// computation fast while preserving ample key-pair parallelism.
	p := BuildPlan(opt)
	o := &ours{succs: adt.NewMultimap(), preds: adt.NewMultimap()}
	o.succsSem = core.NewSemantic(p.Table("Multimap$succs"))
	o.predsSem = core.NewSemantic(p.Table("Multimap$preds"))
	o.findSucc = p.Ref(0, "succs").Binder1("n")
	o.findPred = p.Ref(1, "preds").Binder1("n")
	o.insSucc = p.Ref(2, "succs").Binder2("s", "d")
	o.insPred = p.Ref(2, "preds").Binder2("d", "s")
	o.remSucc = p.Ref(3, "succs").Binder2("s", "d")
	o.remPred = p.Ref(3, "preds").Binder2("d", "s")
	return o
}

// LockStats sums both multimap instances' acquisition statistics.
func (o *ours) LockStats() core.LockStats {
	a, b := o.succsSem.Stats(), o.predsSem.Stats()
	return core.LockStats{
		FastPath: a.FastPath + b.FastPath,
		Slow:     a.Slow + b.Slow,
		Waits:    a.Waits + b.Waits,
	}
}

func (o *ours) FindSuccessors(n int) []core.Value {
	m := o.findSucc(n)
	o.succsSem.Acquire(m)
	out := o.succs.Get(n)
	o.succsSem.Release(m)
	return out
}

func (o *ours) FindPredecessors(n int) []core.Value {
	m := o.findPred(n)
	o.predsSem.Acquire(m)
	out := o.preds.Get(n)
	o.predsSem.Release(m)
	return out
}

// InsertEdge follows the synthesized plan: lock succs for the put,
// and lock preds (rank succs < preds) only on the branch that uses it.
func (o *ours) InsertEdge(s, d int) bool {
	ms := o.insSucc(s, d)
	o.succsSem.Acquire(ms)
	ok := o.succs.Put(s, d)
	if ok {
		mp := o.insPred(d, s)
		o.predsSem.Acquire(mp)
		o.preds.Put(d, s)
		o.predsSem.Release(mp)
	}
	o.succsSem.Release(ms)
	return ok
}

// RemoveEdge mirrors InsertEdge with remove modes.
func (o *ours) RemoveEdge(s, d int) bool {
	ms := o.remSucc(s, d)
	o.succsSem.Acquire(ms)
	ok := o.succs.Remove(s, d)
	if ok {
		mp := o.remPred(d, s)
		o.predsSem.Acquire(mp)
		o.preds.Remove(d, s)
		o.predsSem.Release(mp)
	}
	o.succsSem.Release(ms)
	return ok
}

type global struct {
	mu           cc.GlobalLock
	succs, preds *adt.Multimap
}

func (g *global) FindSuccessors(n int) []core.Value {
	g.mu.Enter()
	defer g.mu.Exit()
	return g.succs.Get(n)
}

func (g *global) FindPredecessors(n int) []core.Value {
	g.mu.Enter()
	defer g.mu.Exit()
	return g.preds.Get(n)
}

func (g *global) InsertEdge(s, d int) bool {
	g.mu.Enter()
	defer g.mu.Exit()
	if g.succs.Put(s, d) {
		g.preds.Put(d, s)
		return true
	}
	return false
}

func (g *global) RemoveEdge(s, d int) bool {
	g.mu.Enter()
	defer g.mu.Exit()
	if g.succs.Remove(s, d) {
		g.preds.Remove(d, s)
		return true
	}
	return false
}

type twoPL struct {
	succs, preds   *adt.Multimap
	succsL, predsL *cc.InstanceLock
}

func (t *twoPL) FindSuccessors(n int) []core.Value {
	var tx cc.TwoPL
	tx.Lock(t.succsL)
	defer tx.UnlockAll()
	return t.succs.Get(n)
}

func (t *twoPL) FindPredecessors(n int) []core.Value {
	var tx cc.TwoPL
	tx.Lock(t.predsL)
	defer tx.UnlockAll()
	return t.preds.Get(n)
}

func (t *twoPL) InsertEdge(s, d int) bool {
	var tx cc.TwoPL
	tx.Lock(t.succsL)
	tx.Lock(t.predsL)
	defer tx.UnlockAll()
	if t.succs.Put(s, d) {
		t.preds.Put(d, s)
		return true
	}
	return false
}

func (t *twoPL) RemoveEdge(s, d int) bool {
	var tx cc.TwoPL
	tx.Lock(t.succsL)
	tx.Lock(t.predsL)
	defer tx.UnlockAll()
	if t.succs.Remove(s, d) {
		t.preds.Remove(d, s)
		return true
	}
	return false
}

// manual is the hand-crafted variant: per-node stripes on each
// multimap, read locks for finds, and ordered two-stripe acquisition
// across the two stripe arrays for edge updates.
type manual struct {
	succs, preds   *adt.Multimap
	succsS, predsS *cc.Striped
}

func (m *manual) FindSuccessors(n int) []core.Value {
	m.succsS.RLock(n)
	defer m.succsS.RUnlock(n)
	return m.succs.Get(n)
}

func (m *manual) FindPredecessors(n int) []core.Value {
	m.predsS.RLock(n)
	defer m.predsS.RUnlock(n)
	return m.preds.Get(n)
}

func (m *manual) InsertEdge(s, d int) bool {
	m.succsS.Lock(s)
	m.predsS.Lock(d)
	defer m.predsS.Unlock(d)
	defer m.succsS.Unlock(s)
	if m.succs.Put(s, d) {
		m.preds.Put(d, s)
		return true
	}
	return false
}

func (m *manual) RemoveEdge(s, d int) bool {
	m.succsS.Lock(s)
	m.predsS.Lock(d)
	defer m.predsS.Unlock(d)
	defer m.succsS.Unlock(s)
	if m.succs.Remove(s, d) {
		m.preds.Remove(d, s)
		return true
	}
	return false
}
