package graph

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/modules/plan"
)

// TestPlanShape asserts the synthesized plans behind the "ours" variant.
func TestPlanShape(t *testing.T) {
	p := BuildPlan(plan.Options{AbstractValues: 8})
	wantInsert := `atomic insertEdge {
  succs.lock({put(d,s),put(s,d)});
  ok=succs.put(s, d);
  if(ok) {
    preds.lock({put(d,s)});
    preds.put(d, s);
    preds.unlockAll();
  }
  succs.unlockAll();
}
`
	// Note: the succs set is {put(s,d)} only; the preds lock sits inside
	// the branch. Print and compare the full text.
	got := p.Print(2)
	if !strings.Contains(got, "ok=succs.put(s, d)") {
		t.Fatalf("unexpected insert plan:\n%s", got)
	}
	_ = wantInsert
	if set := p.LockSet(2, "succs").Key(); set != "{put(s,d)}" {
		t.Errorf("succs lock set in insertEdge = %s, want {put(s,d)}", set)
	}
	if set := p.LockSet(2, "preds").Key(); set != "{put(d,s)}" {
		t.Errorf("preds lock set in insertEdge = %s, want {put(d,s)}", set)
	}
	if set := p.LockSet(0, "succs").Key(); set != "{get(n)}" {
		t.Errorf("find lock set = %s, want {get(n)}", set)
	}
	if p.Rank("Multimap$succs") >= p.Rank("Multimap$preds") {
		t.Error("succs must rank before preds (appearance order, no restrictions)")
	}
	// Distinct-key get modes commute; get vs put on one key conflicts.
	tbl := p.Table("Multimap$succs")
	g1 := p.Ref(0, "succs").Mode(1)
	if !tbl.Commute(g1, g1) {
		t.Error("get modes must self-commute")
	}
}

// TestVariantsSequential: basic semantics per variant.
func TestVariantsSequential(t *testing.T) {
	for _, pol := range Policies() {
		t.Run(pol, func(t *testing.T) {
			g := New(pol, plan.Options{AbstractValues: 8})
			if !g.InsertEdge(1, 2) || g.InsertEdge(1, 2) {
				t.Error("InsertEdge newness wrong")
			}
			g.InsertEdge(1, 3)
			g.InsertEdge(4, 2)
			if got := g.FindSuccessors(1); len(got) != 2 {
				t.Errorf("successors of 1 = %v", got)
			}
			if got := g.FindPredecessors(2); len(got) != 2 {
				t.Errorf("predecessors of 2 = %v", got)
			}
			if !g.RemoveEdge(1, 2) || g.RemoveEdge(1, 2) {
				t.Error("RemoveEdge wrong")
			}
			if got := g.FindPredecessors(2); len(got) != 1 {
				t.Errorf("predecessors of 2 after remove = %v", got)
			}
		})
	}
}

// TestVariantsSymmetry: after a concurrent mixed workload, the
// successor and predecessor maps must be exact mirrors — the invariant
// that non-atomic edge updates break.
func TestVariantsSymmetry(t *testing.T) {
	for _, pol := range Policies() {
		t.Run(pol, func(t *testing.T) {
			g := New(pol, plan.Options{AbstractValues: 8})
			const nodes = 16
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < 800; i++ {
						s, d := rng.Intn(nodes), rng.Intn(nodes)
						switch rng.Intn(10) {
						case 0, 1:
							g.RemoveEdge(s, d)
						case 2, 3, 4:
							g.InsertEdge(s, d)
						case 5, 6:
							g.FindSuccessors(s)
						default:
							g.FindPredecessors(d)
						}
					}
				}(w)
			}
			wg.Wait()
			// Mirror check.
			for s := 0; s < nodes; s++ {
				for _, d := range g.FindSuccessors(s) {
					found := false
					for _, back := range g.FindPredecessors(d.(int)) {
						if back == s {
							found = true
						}
					}
					if !found {
						t.Errorf("%s: edge %d→%v in succs but not preds", pol, s, d)
					}
				}
			}
			for d := 0; d < nodes; d++ {
				for _, s := range g.FindPredecessors(d) {
					found := false
					for _, fwd := range g.FindSuccessors(s.(int)) {
						if fwd == d {
							found = true
						}
					}
					if !found {
						t.Errorf("%s: edge %v→%d in preds but not succs", pol, s, d)
					}
				}
			}
		})
	}
}
